// System-model ablations (DESIGN.md §5):
//   1. NoC:core clock ratio — how the communication share of inference
//      latency (and hence the attainable speedup of the paper's methods)
//      depends on the relative NoC speed. The paper's "~23% of AlexNet
//      latency is communication" lands between ratio 1 and 4 in our model.
//   2. Comm/compute overlap — the paper's metric charges blocking
//      communication; overlapping it behind the previous layer's compute
//      is the obvious system-level alternative and bounds the benefit.
//   3. Memory-bound mode — when weight streaming is charged (weights not
//      resident), large FC layers dominate and communication optimization
//      loses leverage.

#include <cstdio>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts("Learn-to-Scale bench: system-model ablations\n");

  // --- 1. NoC clock ratio ------------------------------------------------
  {
    util::Table t("comm share of latency vs NoC:core clock ratio (16 cores)");
    t.set_header({"network", "ratio 1", "ratio 2", "ratio 4"});
    for (const nn::NetSpec& spec :
         {nn::mlp_spec(), nn::lenet_spec(), nn::convnet_spec(),
          nn::alexnet_spec()}) {
      std::vector<std::string> row{spec.name};
      for (const double ratio : {1.0, 2.0, 4.0}) {
        sim::SystemConfig cfg;
        cfg.cores = 16;
        cfg.noc_clock_divider = ratio;
        sim::CmpSystem system(cfg);
        const auto traffic = core::traffic_dense(spec, system.topology(),
                                                 cfg.bytes_per_value);
        const auto r = system.run_inference(spec, traffic);
        row.push_back(util::fmt_percent(r.comm_fraction()));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::puts("");
  }

  // --- 2. Overlap --------------------------------------------------------
  {
    util::Table t("blocking vs overlapped communication (16 cores)");
    t.set_header({"network", "blocking-cyc", "overlapped-cyc", "gain"});
    for (const nn::NetSpec& spec :
         {nn::mlp_spec(), nn::lenet_spec(), nn::convnet_spec()}) {
      sim::SystemConfig blocked;
      blocked.cores = 16;
      sim::SystemConfig over = blocked;
      over.overlap_comm = true;
      sim::CmpSystem sb(blocked), so(over);
      const auto traffic = core::traffic_dense(spec, sb.topology(),
                                               blocked.bytes_per_value);
      const auto rb = sb.run_inference(spec, traffic);
      const auto ro = so.run_inference(spec, traffic);
      t.add_row({spec.name, std::to_string(rb.total_cycles),
                 std::to_string(ro.total_cycles),
                 util::fmt_speedup(static_cast<double>(rb.total_cycles) /
                                   static_cast<double>(ro.total_cycles))});
    }
    t.print();
    std::puts("");
  }

  // --- 3. Weight streaming ------------------------------------------------
  {
    util::Table t("weights resident vs streamed (AlexNet, 16 cores)");
    t.set_header({"mode", "total-cyc", "comm-share"});
    for (const bool streaming : {false, true}) {
      sim::SystemConfig cfg;
      cfg.cores = 16;
      cfg.accel.model_weight_streaming = streaming;
      sim::CmpSystem system(cfg);
      const auto spec = nn::alexnet_spec();
      const auto traffic = core::traffic_dense(spec, system.topology(),
                                               cfg.bytes_per_value);
      const auto r = system.run_inference(spec, traffic);
      t.add_row({streaming ? "streamed" : "resident",
                 std::to_string(r.total_cycles),
                 util::fmt_percent(r.comm_fraction())});
    }
    t.print();
  }
  return 0;
}
