// Reproduces the paper's motivational measurements (§I and §III.B):
//   * "data communication may account for more than 30% of inference
//     latency in DaDianNao" as the system scales,
//   * "it costs about 23% time for AlexNet to communicate between cores
//     during a single-pass inference" on a 16-core embedded chip.
//
// We run the traditional parallelization of each full-scale network on the
// simulated CMP and report the fraction of inference latency spent blocked
// on NoC communication, across core counts.

#include <cstdio>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts(
      "Learn-to-Scale bench: motivation — communication share of "
      "single-pass inference latency (traditional parallelization)\n");

  const nn::NetSpec specs[] = {nn::mlp_spec(), nn::lenet_spec(),
                               nn::convnet_spec(), nn::alexnet_spec()};

  util::Table table("blocking-communication share of inference latency");
  table.set_header({"network", "4 cores", "8 cores", "16 cores", "32 cores"});

  for (const nn::NetSpec& spec : specs) {
    std::vector<std::string> row{spec.name};
    for (std::size_t cores : {4u, 8u, 16u, 32u}) {
      sim::SystemConfig sys;
      sys.cores = cores;
      sim::CmpSystem system(sys);
      const auto traffic = core::traffic_dense(spec, system.topology(),
                                               sys.bytes_per_value);
      const auto result = system.run_inference(spec, traffic);
      row.push_back(util::fmt_percent(result.comm_fraction()));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::puts(
      "\nPaper reference points: ~23% for AlexNet on a 16-core embedded\n"
      "chip; >30% and growing with scale for DaDianNao-style systems.");
  return 0;
}
