// Reproduces paper TABLE V: structure-level parallelization (Parallel#3
// variant) on 4 / 8 / 16 / 32 cores, with the group count n equal to the
// core count. Speedup at each scale is against traditional (n = 1)
// parallelization of the same base network on the same core count.

#include <cstdio>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts(
      "Learn-to-Scale bench: TABLE V (structure-level scaling with core "
      "count)\n");

  const nn::NetSpec base_spec = nn::convnet_variant_expt_spec(32, 96, 160, 1);
  const data::Dataset train_set = sim::dataset_for(base_spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(base_spec, 256, 2);

  struct PaperRow {
    std::size_t cores;
    double accuracy, speedup;
  };
  const PaperRow paper[] = {
      {4, 0.694, 2.7}, {8, 0.718, 4.6}, {16, 0.742, 6.0}, {32, 0.722, 6.9}};

  util::Table table("TABLE V: Parallel#3 vs core count (ours | paper)");
  table.set_header(
      {"cores", "n", "accuracy", "speedup", "paper accu", "paper speedup"});

  for (const PaperRow& row : paper) {
    sim::ExperimentConfig cfg;
    cfg.cores = row.cores;
    cfg.train.epochs = 3;
    cfg.seed = 42;

    // n = 1 baseline on this core count (trained dense once per scale for
    // simplicity; accuracy is scale-independent, cycles are not).
    const auto base = sim::run_structure_level_variant(
        base_spec, train_set, test_set, cfg, nullptr);
    const nn::NetSpec grouped =
        nn::convnet_variant_expt_spec(32, 96, 160, row.cores);
    const auto r = sim::run_structure_level_variant(grouped, train_set,
                                                    test_set, cfg, &base);
    table.add_row({std::to_string(row.cores), std::to_string(row.cores),
                   util::fmt_double(r.accuracy, 3),
                   util::fmt_speedup(r.speedup, 1),
                   util::fmt_double(row.accuracy, 3),
                   util::fmt_speedup(row.speedup, 1)});
  }
  table.print();
  std::puts(
      "\nExpected shape: speedup grows with core count — per-core compute\n"
      "shrinks while the avoided synchronization grows with the mesh.");
  return 0;
}
