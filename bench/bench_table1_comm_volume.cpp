// Reproduces paper TABLE I: data volume to transmit in the NoC after layer
// partitioning (traditional parallelization, 16 cores).
//
// Prints, per network, every layer transition with the analytic volume
// (elements x 4 B x (P-1)^2/P; see core/comm_volume.hpp) next to the value
// published in the paper where one exists.

#include <cstdio>
#include <map>
#include <string>

#include "core/comm_volume.hpp"
#include "nn/model_zoo.hpp"
#include "util/table.hpp"

namespace {

using ls::core::comm_volume_table;
using ls::util::fmt_bytes;
using ls::util::Table;

// Published TABLE I entries (bytes), keyed by (network, consumer layer).
const std::map<std::pair<std::string, std::string>, double> kPaperBytes = {
    {{"MLP", "ip2"}, 28.0 * 1024},       {{"MLP", "ip3"}, 17.0 * 1024},
    {{"LeNet", "conv2"}, 225.0 * 1024},  {{"LeNet", "ip1"}, 57.0 * 1024},
    {{"LeNet", "ip2"}, 29.0 * 1024},     {{"ConvNet", "conv2"}, 450.0 * 1024},
    {{"ConvNet", "conv3"}, 113.0 * 1024},
    {{"ConvNet", "ip1"}, 57.0 * 1024},   {{"AlexNet", "conv2"}, 2.0e6},
    {{"AlexNet", "conv3"}, 2.4e6},       {{"AlexNet", "conv4"}, 1.8e6},
    {{"AlexNet", "conv5"}, 1.8e6},       {{"AlexNet", "ip1"}, 450.0 * 1024},
    {{"AlexNet", "ip2"}, 57.0 * 1024},   {{"VGG19", "conv2_1"}, 42.0e6},
    {{"VGG19", "conv3_1"}, 22.0e6},      {{"VGG19", "conv4_1"}, 11.0e6},
    {{"VGG19", "conv5_1"}, 5.4e6},       {{"VGG19", "ip1"}, 1.4e6},
    {{"VGG19", "ip2"}, 57.0 * 1024},
};

void print_network(const ls::nn::NetSpec& spec, std::size_t cores) {
  Table t("TABLE I / " + spec.name + " (" + spec.dataset + ", " +
          std::to_string(cores) + " cores)");
  t.set_header({"transition into", "elements", "ours", "paper"});
  for (const auto& e : comm_volume_table(spec, cores)) {
    const auto it = kPaperBytes.find({spec.name, e.layer_name});
    t.add_row({e.layer_name, std::to_string(e.elements), fmt_bytes(e.bytes),
               it != kPaperBytes.end() ? fmt_bytes(it->second) : "-"});
  }
  t.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("Learn-to-Scale bench: TABLE I (NoC data volume, traditional "
            "parallelization)\n");
  const std::size_t cores = 16;
  print_network(ls::nn::mlp_spec(), cores);
  print_network(ls::nn::lenet_spec(), cores);
  print_network(ls::nn::convnet_spec(), cores);
  print_network(ls::nn::alexnet_spec(), cores);
  print_network(ls::nn::vgg19_spec(), cores);
  return 0;
}
