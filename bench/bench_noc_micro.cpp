// Google-benchmark microbenchmarks for the simulator and kernel hot paths:
// mesh NoC simulation throughput, conv forward/backward, and the
// group-Lasso proximal update. These guard the performance of the
// experiment harnesses rather than reproducing a paper artifact.

#include <benchmark/benchmark.h>

#include "core/traffic.hpp"
#include "core/weight_groups.hpp"
#include "nn/conv2d.hpp"
#include "nn/model_zoo.hpp"
#include "noc/simulator.hpp"
#include "train/group_lasso.hpp"
#include "train/masks.hpp"
#include "util/rng.hpp"

namespace {

using namespace ls;

void BM_NocUniformRandom(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const auto msg_bytes = static_cast<std::size_t>(state.range(1));
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  const noc::MeshNocSimulator sim(topo, {});
  util::Rng rng(1);
  std::vector<noc::Message> msgs;
  for (std::size_t s = 0; s < cores; ++s) {
    std::size_t d = rng.uniform_index(cores);
    if (d == s) d = (d + 1) % cores;
    msgs.push_back({s, d, msg_bytes, 0});
  }
  std::uint64_t flits = 0;
  for (auto _ : state) {
    const auto stats = sim.run(msgs);
    flits += stats.total_flits;
    benchmark::DoNotOptimize(stats.completion_cycle);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flits));
}
BENCHMARK(BM_NocUniformRandom)
    ->Args({16, 4096})
    ->Args({16, 65536})
    ->Args({64, 4096});

void BM_NocAllToAll(benchmark::State& state) {
  const auto cores = static_cast<std::size_t>(state.range(0));
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  const noc::MeshNocSimulator sim(topo, {});
  std::vector<noc::Message> msgs;
  for (std::size_t s = 0; s < cores; ++s) {
    for (std::size_t d = 0; d < cores; ++d) {
      if (s != d) msgs.push_back({s, d, 1024, 0});
    }
  }
  for (auto _ : state) {
    const auto stats = sim.run(msgs);
    benchmark::DoNotOptimize(stats.completion_cycle);
  }
}
BENCHMARK(BM_NocAllToAll)->Arg(16)->Arg(32);

void BM_ConvForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2DConfig cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 32;
  cfg.kernel = 3;
  cfg.pad = 1;
  nn::Conv2D conv("bench", cfg, rng);
  const tensor::Tensor in =
      tensor::Tensor::uniform(tensor::Shape{8, 16, 16, 16}, -1.f, 1.f, rng);
  for (auto _ : state) {
    auto out = conv.forward(in, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 32 * 16 * 16 * 16 * 9);
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2DConfig cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 32;
  cfg.kernel = 3;
  cfg.pad = 1;
  nn::Conv2D conv("bench", cfg, rng);
  const tensor::Tensor in =
      tensor::Tensor::uniform(tensor::Shape{8, 16, 16, 16}, -1.f, 1.f, rng);
  const auto out = conv.forward(in, true);
  const tensor::Tensor grad =
      tensor::Tensor::uniform(out.shape(), -1.f, 1.f, rng);
  for (auto _ : state) {
    auto gi = conv.backward(grad);
    benchmark::DoNotOptimize(gi.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_GroupLassoProximal(benchmark::State& state) {
  util::Rng rng(3);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  train::GroupLassoRegularizer reg(core::build_group_sets(net, spec, 16),
                                   train::distance_mask(topo), 0.1);
  for (auto _ : state) {
    reg.apply(0.01);
    benchmark::DoNotOptimize(reg.penalty());
  }
}
BENCHMARK(BM_GroupLassoProximal);

void BM_TrafficLive(benchmark::State& state) {
  util::Rng rng(4);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  for (auto _ : state) {
    auto traffic = core::traffic_live(net, spec, topo, 2);
    benchmark::DoNotOptimize(traffic.total_bytes());
  }
}
BENCHMARK(BM_TrafficLive);

}  // namespace

BENCHMARK_MAIN();
