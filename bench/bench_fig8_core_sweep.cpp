// Reproduces paper Fig. 8: system performance speedup (left) and
// communication energy consumption (right) of structure-level
// parallelization across 4 / 8 / 16 / 32 cores.
//
// Beyond TABLE V's speedup column this bench separates the computation and
// communication components the figure plots: compute-cycle speedup,
// communication-cycle ratio, and the NoC energy of the baseline vs the
// grouped variant at each scale (normalized to the 4-core baseline).

#include <cstdio>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts(
      "Learn-to-Scale bench: Fig. 8 (structure-level across core counts)\n");

  const nn::NetSpec base_spec = nn::convnet_variant_expt_spec(32, 96, 160, 1);
  const data::Dataset train_set = sim::dataset_for(base_spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(base_spec, 256, 2);

  util::Table table("Fig. 8 series (normalized to the 4-core baseline)");
  table.set_header({"cores", "perf-speedup", "compute-speedup",
                    "base-comm-cycles", "base-noc-energy", "variant-noc-energy",
                    "comm-energy-red"});

  double norm_energy = 0.0;
  for (std::size_t cores : {4u, 8u, 16u, 32u}) {
    sim::ExperimentConfig cfg;
    cfg.cores = cores;
    cfg.train.epochs = 3;
    cfg.seed = 42;
    const auto base = sim::run_structure_level_variant(
        base_spec, train_set, test_set, cfg, nullptr);
    const nn::NetSpec grouped =
        nn::convnet_variant_expt_spec(32, 96, 160, cores);
    const auto r = sim::run_structure_level_variant(grouped, train_set,
                                                    test_set, cfg, &base);
    if (norm_energy == 0.0) norm_energy = base.result.noc_energy_pj;

    const double compute_speedup =
        static_cast<double>(base.result.compute_cycles) /
        static_cast<double>(
            std::max<std::uint64_t>(1, r.result.compute_cycles));
    table.add_row(
        {std::to_string(cores), util::fmt_speedup(r.speedup, 1),
         util::fmt_speedup(compute_speedup, 1),
         std::to_string(base.result.comm_cycles),
         util::fmt_double(base.result.noc_energy_pj / norm_energy, 2),
         util::fmt_double(r.result.noc_energy_pj / norm_energy, 2),
         util::fmt_percent(r.comm_energy_reduction)});
  }
  table.print();
  std::puts(
      "\nExpected shape (paper §V.B.1): compute speedup keeps climbing with\n"
      "core count while the baseline's communication cost stays roughly\n"
      "level (mean hop distance grows, bisection bandwidth grows too), so\n"
      "the grouped variant's relative advantage keeps increasing.");
  return 0;
}
