// Reproduces paper Fig. 7: system performance speedup (left axis) and
// communication energy reduction (right axis) for structure-level
// parallelization, plus the overall energy reductions quoted in §V.A.1
// (91% / 88% for Parallel#2 / #3).
//
// Same experiment as TABLE III, reported through the figure's metrics:
//   * system speedup           — total baseline cycles / variant cycles
//   * comm speedup             — blocking-communication cycle ratio
//   * comm energy reduction    — 1 - variant NoC energy / baseline
//   * overall energy reduction — 1 - variant total energy / baseline

#include <cstdio>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts(
      "Learn-to-Scale bench: Fig. 7 (structure-level speedup & energy, 16 "
      "cores)\n");

  sim::ExperimentConfig cfg;
  cfg.cores = 16;
  cfg.train.epochs = 3;
  cfg.seed = 42;

  const nn::NetSpec p1 = nn::convnet_variant_expt_spec(32, 64, 128, 1);
  const nn::NetSpec p2 = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  const nn::NetSpec p3 = nn::convnet_variant_expt_spec(32, 96, 160, 16);

  const data::Dataset train_set = sim::dataset_for(p1, 768, 1);
  const data::Dataset test_set = sim::dataset_for(p1, 256, 2);

  const auto base =
      sim::run_structure_level_variant(p1, train_set, test_set, cfg, nullptr);
  const auto r2 =
      sim::run_structure_level_variant(p2, train_set, test_set, cfg, &base);
  const auto r3 =
      sim::run_structure_level_variant(p3, train_set, test_set, cfg, &base);

  auto comm_speedup = [&](const sim::StrategyOutcome& o) {
    const auto base_comm = base.result.comm_cycles;
    const auto v_comm = o.result.comm_cycles;
    return v_comm == 0 ? 0.0
                       : static_cast<double>(base_comm) /
                             static_cast<double>(v_comm);
  };

  util::Table table("Fig. 7 metrics (paper: #2 4.9x perf / 91% overall "
                    "energy, #3 4.6x / 88%)");
  table.set_header({"variant", "perf-speedup", "comm-speedup",
                    "comm-energy-red", "overall-energy-red"});
  for (const auto* o : {&r2, &r3}) {
    const bool is2 = (o == &r2);
    const double cs = comm_speedup(*o);
    table.add_row({is2 ? "Parallel#2" : "Parallel#3",
                   util::fmt_speedup(o->speedup, 1),
                   cs == 0.0 ? "inf (no traffic)" : util::fmt_speedup(cs, 1),
                   util::fmt_percent(o->comm_energy_reduction),
                   util::fmt_percent(o->total_energy_reduction)});
  }
  table.print();
  return 0;
}
