// Reproduces paper TABLE III: performance of structure-level
// parallelization on 16 cores.
//
//   Parallel#1 — ConvNet variant (c1-c2-c3), n = 1 group  -> baseline
//   Parallel#2 — same channels, conv2/conv3 split into n = 16 groups
//   Parallel#3 — widened channels (compensating accuracy), n = 16 groups
//
// Channel counts are scaled from the paper's 64-128-256 / 64-160-320 to
// 32-64-128 / 32-96-160 so CPU training completes in-session (DESIGN.md);
// the published ratios (Parallel#3 ~1.25-1.5x wider than #2) are preserved.

#include <cstdio>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts(
      "Learn-to-Scale bench: TABLE III (structure-level parallelization, "
      "16 cores)\n");

  sim::ExperimentConfig cfg;
  cfg.cores = 16;
  cfg.train.epochs = 3;
  cfg.seed = 42;

  const nn::NetSpec p1 = nn::convnet_variant_expt_spec(32, 64, 128, 1);
  const nn::NetSpec p2 = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  const nn::NetSpec p3 = nn::convnet_variant_expt_spec(32, 96, 160, 16);

  const data::Dataset train_set = sim::dataset_for(p1, 768, 1);
  const data::Dataset test_set = sim::dataset_for(p1, 256, 2);

  const auto base =
      sim::run_structure_level_variant(p1, train_set, test_set, cfg, nullptr);
  const auto r2 =
      sim::run_structure_level_variant(p2, train_set, test_set, cfg, &base);
  const auto r3 =
      sim::run_structure_level_variant(p3, train_set, test_set, cfg, &base);

  util::Table table(
      "TABLE III: structure-level parallelization (ours | paper accu/speedup)");
  table.set_header(
      {"variant", "kernels", "n", "accuracy", "speedup", "paper"});
  table.add_row({"Parallel#1", "32-64-128", "1",
                 util::fmt_double(base.accuracy, 3), "1x", "0.726 / 1x"});
  table.add_row({"Parallel#2", "32-64-128", "16",
                 util::fmt_double(r2.accuracy, 3),
                 util::fmt_speedup(r2.speedup, 1), "0.698 / 4.9x"});
  table.add_row({"Parallel#3", "32-96-160", "16",
                 util::fmt_double(r3.accuracy, 3),
                 util::fmt_speedup(r3.speedup, 1), "0.742 / 4.6x"});
  table.print();

  std::puts(
      "\nExpected shape: both grouped variants speed up well beyond 1x\n"
      "(conv2/conv3 transitions carry zero NoC traffic and their kernels\n"
      "shrink by the group factor); Parallel#2 loses some accuracy to the\n"
      "removed cross-group connections, Parallel#3 wins it back by widening\n"
      "at a slightly lower speedup.");
  return 0;
}
