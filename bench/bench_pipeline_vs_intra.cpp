// Reproduces the paper's §II.B argument against inter-layer (pipeline)
// model parallelism on embedded CMPs: "pipelining layers with distinct
// hyper-parameters cause severe load-imbalance issue on cores", and a
// pipeline does nothing for *single-pass* latency, which is the metric
// embedded/real-time inference cares about.
//
// For each network we compare, on the same 16-core system:
//   * intra-layer (the paper's traditional parallelization) single-pass
//     latency,
//   * pipeline single-pass latency (stages run one after another),
//   * pipeline steady-state initiation interval (its best case, with many
//     inferences in flight) and the load imbalance that gates it.

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/pipeline_model.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts("Learn-to-Scale bench: inter-layer pipelining vs intra-layer "
            "parallelization (16 cores)\n");

  util::Table t("single-pass latency and pipeline characteristics");
  t.set_header({"network", "intra-cyc", "pipe-cyc", "pipe-penalty",
                "pipe-interval", "imbalance", "stages"});

  for (const nn::NetSpec& spec :
       {nn::mlp_spec(), nn::lenet_spec(), nn::convnet_spec(),
        nn::alexnet_spec()}) {
    sim::SystemConfig cfg;
    cfg.cores = 16;
    sim::CmpSystem system(cfg);
    const auto traffic =
        core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
    const auto intra = system.run_inference(spec, traffic);

    const auto assignment =
        core::assign_pipeline(spec, cfg.cores, cfg.bytes_per_value);
    const auto pipe = sim::run_pipeline(spec, assignment, cfg);

    t.add_row({spec.name, std::to_string(intra.total_cycles),
               std::to_string(pipe.single_pass_cycles),
               util::fmt_speedup(
                   static_cast<double>(pipe.single_pass_cycles) /
                       static_cast<double>(intra.total_cycles),
                   1),
               std::to_string(pipe.initiation_interval),
               util::fmt_double(pipe.load_imbalance, 2),
               std::to_string(assignment.stages.size())});
  }
  t.print();
  std::puts(
      "\nReading: pipe-penalty is how much *slower* a pipelined single pass\n"
      "is than intra-layer parallelization (stages execute sequentially on\n"
      "one core each). Even the pipeline's steady-state interval — its\n"
      "throughput best case — is gated by the largest layer (imbalance =\n"
      "max/mean stage MACs), supporting the paper's choice of intra-layer\n"
      "partitioning for latency-focused embedded inference.");
  return 0;
}
