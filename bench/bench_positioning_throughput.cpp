// Reproduces the paper's positioning argument (§I, §II.A): throughput-
// oriented designs (DaDianNao / TPU-class) run *independent* inferences on
// different cores — input-level parallelism, no inter-core traffic — which
// maximizes throughput but does nothing for the latency of one inference.
// Latency-focused embedded systems need the single pass itself partitioned.
//
// For each network on a 16-core CMP:
//   * single-core        — one inference on one core (latency reference)
//   * input-parallel     — 16 independent inferences, one per core:
//                          throughput x16, single-pass latency unchanged
//   * partitioned        — the paper's intra-layer parallelization:
//                          single-pass latency improves by ~P / comm-tax

#include <cstdio>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts("Learn-to-Scale bench: input-level vs intra-layer parallelism "
            "(16 cores)\n");

  util::Table t("single-pass latency (cycles) and throughput (inferences / "
                "Mcycle)");
  t.set_header({"network", "1-core lat", "input-par lat", "input-par thrpt",
                "partitioned lat", "partitioned thrpt", "latency gain"});

  for (const nn::NetSpec& spec :
       {nn::mlp_spec(), nn::lenet_spec(), nn::convnet_spec(),
        nn::alexnet_spec()}) {
    sim::SystemConfig one;
    one.cores = 1;
    sim::CmpSystem single(one);
    const auto r1 = single.run_inference(
        spec, core::traffic_dense(spec, single.topology(),
                                  one.bytes_per_value));

    sim::SystemConfig sixteen;
    sixteen.cores = 16;
    sim::CmpSystem cmp(sixteen);
    const auto rp = cmp.run_inference(
        spec, core::traffic_dense(spec, cmp.topology(),
                                  sixteen.bytes_per_value));

    const double m = 1e6;
    const double thr_input = 16.0 * m / static_cast<double>(r1.total_cycles);
    const double thr_part = m / static_cast<double>(rp.total_cycles);
    t.add_row(
        {spec.name, std::to_string(r1.total_cycles),
         std::to_string(r1.total_cycles),  // input-parallel: same latency
         util::fmt_double(thr_input, 1), std::to_string(rp.total_cycles),
         util::fmt_double(thr_part, 1),
         util::fmt_speedup(static_cast<double>(r1.total_cycles) /
                               static_cast<double>(rp.total_cycles),
                           1)});
  }
  t.print();
  std::puts(
      "\nReading: input-level parallelism wins on throughput (16 concurrent\n"
      "passes) but a single inference is exactly as slow as on one core —\n"
      "useless for a real-time QoS deadline. Partitioning the single pass\n"
      "delivers the latency gain, at the cost of the synchronization\n"
      "traffic this library is about reducing.");
  return 0;
}
