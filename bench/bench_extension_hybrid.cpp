// Extension experiment: composing the paper's two techniques.
//
// Structure-level grouping silences the grouped conv transitions by
// construction; communication-aware sparsified training (SS_Mask) thins
// whatever stays dense. They are orthogonal, so the hybrid should push
// traffic below either alone:
//
//   Baseline   — dense ConvNet variant, traditional parallelization
//   Grouped    — conv2/conv3 in 16 groups (TABLE III Parallel#2 style)
//   SS_Mask    — dense topology + distance-masked group-Lasso
//   Hybrid     — grouped conv + distance-masked group-Lasso on the rest

#include <cstdio>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts("Learn-to-Scale bench: hybrid strategy (structure-level + "
            "SS_Mask, 16 cores)\n");

  sim::ExperimentConfig cfg;
  cfg.cores = 16;
  cfg.train.epochs = 3;
  cfg.lambda_ss = 0.5;
  cfg.lambda_mask = 0.5;
  cfg.seed = 42;

  const nn::NetSpec dense = nn::convnet_variant_expt_spec(32, 64, 128, 1);
  const nn::NetSpec grouped = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  const data::Dataset train_set = sim::dataset_for(dense, 768, 1);
  const data::Dataset test_set = sim::dataset_for(dense, 256, 2);

  const auto base = sim::run_structure_level_variant(dense, train_set,
                                                     test_set, cfg, nullptr);
  const auto grp = sim::run_structure_level_variant(grouped, train_set,
                                                    test_set, cfg, &base);
  // SS_Mask on the dense network (reuse the sparsified pipeline's third
  // outcome).
  const auto sparsified =
      sim::run_sparsified_experiment(dense, train_set, test_set, cfg);
  // The sparsified pipeline computes metrics against its own internal
  // baseline, which is trained identically to `base` and simulated on the
  // same system, so the numbers are directly comparable.
  const auto& ss_mask = sparsified[2];
  const auto hybrid =
      sim::run_hybrid_variant(grouped, train_set, test_set, cfg, &base);

  util::Table t("dense vs grouped vs SS_Mask vs hybrid");
  t.set_header(
      {"scheme", "accuracy", "traffic", "speedup", "noc-energy-red"});
  auto row = [&](const char* label, const sim::StrategyOutcome& o) {
    t.add_row({label, util::fmt_percent(o.accuracy, 1),
               util::fmt_percent(o.traffic_rate), util::fmt_speedup(o.speedup),
               util::fmt_percent(o.comm_energy_reduction)});
  };
  row("Baseline", base);
  row("Grouped (n=16)", grp);
  row("SS_Mask (dense)", ss_mask);
  row("Hybrid", hybrid);
  t.print();

  std::puts("\nExpected: the hybrid has the lowest traffic and highest\n"
            "speedup — grouping removes the conv transitions' traffic and\n"
            "compute, the masked lasso thins the remaining FC transitions.");
  return 0;
}
