// Extension experiment: communication-aware *placement* vs communication-
// aware *training*.
//
// SS_Mask teaches the network to keep its surviving traffic between nearby
// cores. A post-hoc alternative for a distance-unaware SS model is to
// permute which mesh core hosts which partition (simulated annealing over
// byte-hops, core/placement.hpp). This bench trains MLP with SS and with
// SS_Mask, then reports for each: identity placement vs optimized
// placement. The question: can placement recover SS_Mask's advantage
// without distance-aware training?

#include <cstdio>

#include "core/placement.hpp"
#include "core/traffic.hpp"
#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "train/masks.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

namespace {

using namespace ls;

struct Row {
  std::string label;
  core::InferenceTraffic traffic;
};

}  // namespace

int main() {
  std::puts("Learn-to-Scale bench: placement optimization vs "
            "communication-aware training (MLP, 16 cores)\n");

  const std::size_t cores = 16;
  const nn::NetSpec spec = nn::mlp_expt_spec();
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  const data::Dataset train_set = sim::dataset_for(spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, 2);

  train::TrainConfig tcfg;
  tcfg.epochs = 5;

  std::vector<Row> rows;
  // Dense baseline.
  rows.push_back({"Baseline", core::traffic_dense(spec, topo, 2)});

  // SS and SS_Mask live traffic.
  for (const bool distance_aware : {false, true}) {
    util::Rng rng(42);
    nn::Network net = nn::build_network(spec, rng);
    train::GroupLassoRegularizer reg(
        core::build_group_sets(net, spec, cores),
        distance_aware ? train::distance_mask(topo)
                       : train::uniform_mask(cores),
        0.6);
    train::train_classifier(net, train_set, test_set, tcfg, &reg);
    rows.push_back({distance_aware ? "SS_Mask" : "SS",
                    core::traffic_live(net, spec, topo, 2)});
  }

  sim::SystemConfig cfg;
  cfg.cores = cores;
  sim::CmpSystem system(cfg);
  const auto base = system.run_inference(spec, rows[0].traffic);

  util::Table t("identity vs annealed placement (byte-hops and system "
                "metrics)");
  t.set_header({"scheme", "placement", "byte-hops", "comm-cyc", "speedup",
                "noc-energy-red"});
  for (const Row& row : rows) {
    for (const bool optimized : {false, true}) {
      util::Rng rng(7);
      const core::Placement placement =
          optimized ? core::optimize_placement(row.traffic, topo, rng)
                    : core::Placement::identity(cores);
      const auto mapped = core::remap_traffic(row.traffic, placement, topo);
      const auto r = system.run_inference(spec, mapped);
      t.add_row({row.label, optimized ? "annealed" : "identity",
                 std::to_string(mapped.total_byte_hops()),
                 std::to_string(r.comm_cycles),
                 util::fmt_speedup(sim::speedup(base, r)),
                 util::fmt_percent(sim::comm_energy_reduction(base, r))});
    }
  }
  t.print();
  std::puts(
      "\nReading: annealed placement cannot help the dense baseline or SS\n"
      "much — their traffic is all-to-all-ish, and every permutation of an\n"
      "all-to-all is an all-to-all. SS_Mask's structured traffic is already\n"
      "placed well by construction (training assumed the identity mapping),\n"
      "so the lesson is that locality must be *learned into the sparsity\n"
      "pattern*, not bolted on afterwards.");
  return 0;
}
