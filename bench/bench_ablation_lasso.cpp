// Ablations on the communication-aware sparsified training design choices
// (DESIGN.md §5):
//   1. Proximal vs subgradient group-Lasso: the proximal operator drives
//      blocks to *exact* zero, which the dead-block traffic analysis needs;
//      the subgradient form only shrinks them asymptotically.
//   2. Distance-mask exponent: how hard to push sparsity onto far pairs.
//   3. Traffic granularity: per-feature-map vs per-(core,core)-block
//      liveness.

#include <cstdio>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts("Learn-to-Scale bench: sparsified-training ablations (MLP, 16 "
            "cores)\n");

  const nn::NetSpec spec = nn::mlp_expt_spec();
  const data::Dataset train_set = sim::dataset_for(spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, 2);

  // --- 1. Proximal vs subgradient --------------------------------------
  {
    util::Table t("proximal vs subgradient group-Lasso (same lambda)");
    t.set_header({"mode", "accuracy", "traffic", "dead-blocks", "sparsity"});
    for (const auto mode :
         {train::LassoMode::kProximal, train::LassoMode::kSubgradient}) {
      sim::ExperimentConfig cfg;
      cfg.cores = 16;
      cfg.train.epochs = 5;
      cfg.lambda_ss = 0.6;
      cfg.lambda_mask = 0.6;
      cfg.seed = 42;

      const noc::MeshTopology topo = noc::MeshTopology::for_cores(cfg.cores);
      util::Rng rng(cfg.seed);
      nn::Network net = nn::build_network(spec, rng);
      train::GroupLassoRegularizer reg(
          core::build_group_sets(net, spec, cfg.cores),
          train::distance_mask(topo), cfg.lambda_mask, mode);
      const auto report =
          train::train_classifier(net, train_set, test_set, cfg.train, &reg);
      const auto live = core::traffic_live(net, spec, topo, 2);
      const auto dense = core::traffic_dense(spec, topo, 2);
      double dead = 0.0;
      for (const auto& set : reg.groups()) {
        dead += set.off_diagonal_dead_fraction();
      }
      dead /= static_cast<double>(reg.groups().size());
      t.add_row({mode == train::LassoMode::kProximal ? "proximal"
                                                     : "subgradient",
                 util::fmt_percent(report.test_accuracy, 1),
                 util::fmt_percent(static_cast<double>(live.total_bytes()) /
                                   static_cast<double>(dense.total_bytes())),
                 util::fmt_percent(dead),
                 util::fmt_percent(report.weight_sparsity)});
    }
    t.print();
    std::puts("Expected: subgradient mode leaves ~no exact zeros, so the\n"
              "traffic analysis sees a dense network; proximal mode is what\n"
              "makes the technique deployable.\n");
  }

  // --- 2. Mask exponent --------------------------------------------------
  {
    util::Table t("distance-mask exponent sweep (SS_Mask)");
    t.set_header({"exponent", "accuracy", "traffic", "speedup", "energy-red",
                  "avg-hops"});
    for (const double expo : {0.5, 1.0, 2.0, 3.0}) {
      sim::ExperimentConfig cfg;
      cfg.cores = 16;
      cfg.train.epochs = 5;
      cfg.lambda_ss = 0.6;
      cfg.lambda_mask = 0.6;
      cfg.mask_exponent = expo;
      cfg.seed = 42;
      const auto outcomes =
          sim::run_sparsified_experiment(spec, train_set, test_set, cfg);
      const auto& mask = outcomes[2];
      t.add_row({util::fmt_double(expo, 1),
                 util::fmt_percent(mask.accuracy, 1),
                 util::fmt_percent(mask.traffic_rate),
                 util::fmt_speedup(mask.speedup),
                 util::fmt_percent(mask.comm_energy_reduction),
                 util::fmt_double(mask.mean_traffic_hops, 2)});
    }
    t.print();
    std::puts("Expected: higher exponents squeeze surviving traffic onto\n"
              "ever-shorter links (avg-hops falls) until accuracy pressure\n"
              "pushes back.\n");
  }

  // --- 3. Traffic granularity -------------------------------------------
  {
    util::Table t("liveness granularity (SS_Mask traffic analysis)");
    t.set_header({"granularity", "traffic", "speedup"});
    for (const auto gran :
         {core::Granularity::kFeatureMap, core::Granularity::kBlock}) {
      sim::ExperimentConfig cfg;
      cfg.cores = 16;
      cfg.train.epochs = 5;
      cfg.lambda_ss = 0.6;
      cfg.lambda_mask = 0.6;
      cfg.granularity = gran;
      cfg.seed = 42;
      const auto outcomes =
          sim::run_sparsified_experiment(spec, train_set, test_set, cfg);
      t.add_row({gran == core::Granularity::kFeatureMap ? "feature-map"
                                                        : "core-block",
                 util::fmt_percent(outcomes[2].traffic_rate),
                 util::fmt_speedup(outcomes[2].speedup)});
    }
    t.print();
    std::puts("Expected: feature-map granularity is never worse — a block\n"
              "with one live feature map only ships that map.");
  }
  return 0;
}
