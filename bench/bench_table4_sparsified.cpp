// Reproduces paper TABLE IV: performance and energy reduction of
// communication-aware sparsified parallelization on a 16-core mesh CMP.
//
// For each network (MLP / LeNet / ConvNet / CaffeNet) three schemes are
// trained and simulated:
//   Baseline — dense training, traditional parallelization
//   SS       — structured sparsity (uniform group-Lasso strength)
//   SS_Mask  — communication-aware strength (distance-weighted mask)
// and the paper's four metrics are printed next to the published values.
// Architectures are channel-scaled and datasets synthetic (DESIGN.md
// substitution table); the comparison targets the *shape* — ordering, and
// rough win factors — not absolute numbers.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

namespace {

using ls::util::fmt_percent;
using ls::util::fmt_speedup;

struct PaperRow {
  double accuracy, traffic, speedup, energy_red;
};

// Published TABLE IV values, keyed by (network, scheme).
const std::map<std::pair<std::string, std::string>, PaperRow> kPaper = {
    {{"MLP", "Baseline"}, {0.9836, 1.00, 1.00, 0.00}},
    {{"MLP", "SS"}, {0.9838, 0.30, 1.40, 0.59}},
    {{"MLP", "SS_Mask"}, {0.9836, 0.11, 1.59, 0.81}},
    {{"LeNet", "Baseline"}, {0.9917, 1.00, 1.00, 0.00}},
    {{"LeNet", "SS"}, {0.9898, 0.82, 1.20, 0.15}},
    {{"LeNet", "SS_Mask"}, {0.9860, 0.23, 1.51, 0.89}},
    {{"ConvNet", "Baseline"}, {0.7875, 1.00, 1.00, 0.00}},
    {{"ConvNet", "SS"}, {0.8015, 0.46, 1.19, 0.25}},
    {{"ConvNet", "SS_Mask"}, {0.7961, 0.35, 1.32, 0.55}},
    {{"CaffeNet", "Baseline"}, {0.5519, 1.00, 1.00, 0.00}},
    {{"CaffeNet", "SS"}, {0.5502, 0.98, 1.02, 0.17}},
    {{"CaffeNet", "SS_Mask"}, {0.5421, 0.57, 1.10, 0.38}},
};

struct NetCase {
  ls::nn::NetSpec spec;
  double lambda;
  std::size_t epochs;
};

}  // namespace

int main() {
  using namespace ls;
  std::puts(
      "Learn-to-Scale bench: TABLE IV (communication-aware sparsified "
      "parallelization, 16 cores)\n");

  const std::vector<NetCase> cases = {
      {nn::mlp_expt_spec(), 0.6, 5},
      {nn::lenet_expt_spec(), 0.5, 4},
      {nn::convnet_expt_spec(), 0.4, 3},
      {nn::caffenet_expt_spec(), 0.45, 3},
  };

  util::Table table("TABLE IV: accuracy / NoC traffic rate / system speedup "
                    "/ NoC energy reduction (ours | paper)");
  table.set_header({"net", "scheme", "accuracy", "traffic", "speedup",
                    "energy-red", "avg-hops", "paper(t/s/e)"});

  for (const NetCase& c : cases) {
    sim::ExperimentConfig cfg;
    cfg.cores = 16;
    cfg.train.epochs = c.epochs;
    cfg.lambda_ss = c.lambda;
    cfg.lambda_mask = c.lambda;
    cfg.seed = 42;

    const data::Dataset train_set = sim::dataset_for(c.spec, 768, 1);
    const data::Dataset test_set = sim::dataset_for(c.spec, 256, 2);
    const auto outcomes =
        sim::run_sparsified_experiment(c.spec, train_set, test_set, cfg);
    for (const auto& o : outcomes) {
      const auto it = kPaper.find({c.spec.name, o.scheme});
      std::string paper = "-";
      if (it != kPaper.end()) {
        paper = fmt_percent(it->second.traffic) + "/" +
                fmt_speedup(it->second.speedup) + "/" +
                fmt_percent(it->second.energy_red);
      }
      table.add_row({c.spec.name, o.scheme, fmt_percent(o.accuracy, 1),
                     fmt_percent(o.traffic_rate), fmt_speedup(o.speedup),
                     fmt_percent(o.comm_energy_reduction),
                     ls::util::fmt_double(o.mean_traffic_hops, 2), paper});
    }
  }
  table.print();
  std::puts(
      "\nExpected shape: SS_Mask >= SS > Baseline on speedup and NoC energy\n"
      "reduction, with SS_Mask holding accuracy at or near the baseline.\n"
      "avg-hops shows the mechanism: SS_Mask's surviving traffic flows\n"
      "between nearby cores (approaching 1-2 hops), while SS's and the\n"
      "baseline's average the full mesh distance (~2.67 on a 4x4 mesh).");
  return 0;
}
