// Multi-chip scale-out bench: stage-pipelined execution across a package
// of identical mesh chips (sched::lower_pipelined + per-chip-resource
// run_stream) vs the same core budget as one flat mesh, in model cycles
// (deterministic — no wall-clock timing).
//
// The headline config is 64 total cores at the embedded-NoC clock
// (noc_clock_divider = 4): a monolithic 64-core mesh at that operating
// point is communication-bound — every layer transition floods one big
// shared NoC — while 4 x 16-core chips keep each transition on a quarter-
// size mesh and cross chip boundaries once per stage over the package's
// serial links. That is exactly the scale-out argument: the flat machine's
// NoC saturates before its cores do, the chip-partitioned one pipelines
// stages at the bottleneck chip's rate. Compute-dominated nets (AlexNet
// here) show the cost side: splitting a layer across fewer cores per chip
// lengthens every stage, and stage imbalance wastes gang time — the bench
// reports both so the trade is visible.
//
//   bench_multichip [--requests N] [--json PATH]
//
// `--json` writes the tier-1 artifact (BENCH_multichip.json): one row per
// (net, chips) point at 64 total cores with throughput, the speedup over
// the same net's 1-chip row, occupancies, and inter-chip link utilization.
// The acceptance gate reads the ConvNet 4-chip row's speedup_vs_one_chip
// (>= 1.3x).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sched/schedule.hpp"
#include "sim/system.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ls;

constexpr std::size_t kTotalCores = 64;
constexpr double kNocClockDivider = 4.0;  // embedded NoC: comm-bound flat mesh

struct Row {
  std::string net;
  std::size_t chips = 0;
  std::size_t requests = 0;
  sim::StreamResult s{};
  double speedup_vs_one_chip = 0.0;  // filled once the 1-chip row exists
};

Row run_point(const nn::NetSpec& spec, std::size_t chips,
              std::size_t requests) {
  sim::SystemConfig cfg;
  cfg.cores = kTotalCores;
  cfg.chips = chips;
  cfg.noc_clock_divider = kNocClockDivider;
  const sim::CmpSystem system(cfg);
  // Layer-transition traffic on one chip's mesh (the whole machine when
  // chips == 1) — the analysis lower_pipelined stages ride on.
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);
  Row row;
  row.net = spec.name;
  row.chips = chips;
  row.requests = requests;
  row.s = system.run_stream(schedule, requests);
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("multichip");
  w.key("total_cores").value(static_cast<std::uint64_t>(kTotalCores));
  w.key("noc_clock_divider").value(kNocClockDivider);
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("net").value(r.net);
    w.key("chips").value(static_cast<std::uint64_t>(r.chips));
    w.key("cores_per_chip")
        .value(static_cast<std::uint64_t>(kTotalCores / r.chips));
    w.key("requests").value(static_cast<std::uint64_t>(r.requests));
    w.key("single_pass_cycles").value(r.s.single_pass.total_cycles);
    w.key("makespan_cycles").value(r.s.makespan_cycles);
    w.key("throughput_per_mcycle").value(r.s.throughput_per_mcycle);
    w.key("speedup_vs_one_chip").value(r.speedup_vs_one_chip);
    w.key("compute_occupancy").value(r.s.compute_occupancy);
    w.key("noc_occupancy").value(r.s.noc_occupancy);
    w.key("inter_chip_occupancy").value(r.s.inter_chip_occupancy);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 32;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (requests == 0) requests = 1;

  std::vector<Row> rows;
  for (const nn::NetSpec& spec : {nn::convnet_spec(), nn::alexnet_spec()}) {
    const std::size_t first = rows.size();  // this net's 1-chip row
    for (const std::size_t chips : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
      Row row = run_point(spec, chips, requests);
      row.speedup_vs_one_chip =
          rows.size() == first
              ? 1.0
              : row.s.throughput_per_mcycle /
                    rows[first].s.throughput_per_mcycle;
      rows.push_back(std::move(row));
    }
  }

  util::Table t("multi-chip scale-out at " + std::to_string(kTotalCores) +
                " total cores (noc_clock_divider = 4)");
  t.set_header({"net", "chips", "1-pass cyc", "makespan", "inf/Mcyc",
                "vs 1-chip", "core-occ", "noc-occ", "xchip-occ"});
  for (const Row& r : rows) {
    t.add_row({r.net, std::to_string(r.chips),
               std::to_string(r.s.single_pass.total_cycles),
               std::to_string(r.s.makespan_cycles),
               util::fmt_double(r.s.throughput_per_mcycle, 2),
               util::fmt_speedup(r.speedup_vs_one_chip),
               util::fmt_percent(r.s.compute_occupancy),
               util::fmt_percent(r.s.noc_occupancy),
               util::fmt_percent(r.s.inter_chip_occupancy)});
  }
  t.print();

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
