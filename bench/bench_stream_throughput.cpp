// Streaming-throughput bench: software-pipelined multi-request execution
// (CmpSystem::run_stream) vs back-to-back single-pass inference, in model
// cycles (deterministic — no wall-clock timing). The headline config is the
// paper's 16-core ConvNet with the embedded-NoC clock (noc_clock_divider =
// 2), where layer-transition bursts are a large enough latency share that
// overlapping request k+1's communication under request k's compute pays.
//
//   bench_stream_throughput [--requests N] [--json PATH]
//
// `--json` writes the tier-1 artifact (BENCH_stream.json): one row per
// (net, cores, requests) point with latency, makespan, throughput in
// inferences per 1e6 cycles, pipeline-fill and occupancy numbers, and the
// streamed-vs-back-to-back speedup the acceptance gate reads.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sched/schedule.hpp"
#include "sim/system.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ls;

struct Row {
  std::string net;
  std::size_t cores = 0;
  std::size_t requests = 0;
  sim::StreamResult s{};
};

Row run_point(const nn::NetSpec& spec, std::size_t cores,
              std::size_t requests) {
  sim::SystemConfig cfg;
  cfg.cores = cores;
  cfg.noc_clock_divider = 2.0;  // embedded NoC: comm worth hiding
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);
  Row row;
  row.net = spec.name;
  row.cores = cores;
  row.requests = requests;
  row.s = system.run_stream(schedule, requests);
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("stream_throughput");
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("net").value(r.net);
    w.key("cores").value(static_cast<std::uint64_t>(r.cores));
    w.key("requests").value(static_cast<std::uint64_t>(r.requests));
    w.key("single_pass_cycles").value(r.s.single_pass.total_cycles);
    w.key("fill_cycles").value(r.s.fill_cycles);
    w.key("makespan_cycles").value(r.s.makespan_cycles);
    w.key("throughput_per_mcycle").value(r.s.throughput_per_mcycle);
    w.key("compute_occupancy").value(r.s.compute_occupancy);
    w.key("noc_occupancy").value(r.s.noc_occupancy);
    w.key("speedup_vs_back_to_back").value(r.s.speedup_vs_back_to_back);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 16;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (requests == 0) requests = 1;

  std::vector<Row> rows;
  // Headline: 16-core ConvNet, pipeline depth sweep up to --requests.
  for (std::size_t n = 1; n < requests; n *= 2) {
    rows.push_back(run_point(nn::convnet_spec(), 16, n));
  }
  rows.push_back(run_point(nn::convnet_spec(), 16, requests));
  // Context: a bigger net and a wider machine at full depth.
  rows.push_back(run_point(nn::alexnet_spec(), 16, requests));
  rows.push_back(run_point(nn::convnet_spec(), 64, requests));

  util::Table t("run_stream vs back-to-back (noc_clock_divider = 2)");
  t.set_header({"net", "cores", "reqs", "1-pass cyc", "makespan", "inf/Mcyc",
                "core-occ", "noc-occ", "vs b2b"});
  for (const Row& r : rows) {
    t.add_row({r.net, std::to_string(r.cores), std::to_string(r.requests),
               std::to_string(r.s.single_pass.total_cycles),
               std::to_string(r.s.makespan_cycles),
               util::fmt_double(r.s.throughput_per_mcycle, 2),
               util::fmt_percent(r.s.compute_occupancy),
               util::fmt_percent(r.s.noc_occupancy),
               util::fmt_speedup(r.s.speedup_vs_back_to_back)});
  }
  t.print();

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
