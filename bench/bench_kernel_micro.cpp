// Microbenchmark: naive loop-nest conv vs im2col+GEMM fast path, forward
// and backward, on every conv layer of the model-zoo experiment specs
// (LeNet / ConvNet / CaffeNet). Prints a speedup table; `--json PATH`
// additionally emits machine-readable results for the tier-1 wrapper.
//
// A second section measures the block-sparse fast path: dense GEMM vs the
// armed sparse path on the same pruned weights at 0/25/50/75/90 % block
// sparsity (`--sparse-json PATH` dumps it, tier-1 writes BENCH_sparse.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/block_sparsity.hpp"
#include "nn/conv2d.hpp"
#include "nn/fc.hpp"
#include "nn/layer_spec.hpp"
#include "nn/model_zoo.hpp"
#include "tensor/tensor.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using ls::nn::Conv2D;
using ls::nn::Conv2DConfig;
using ls::nn::ConvImpl;
using ls::tensor::Shape;
using ls::tensor::Tensor;

struct BenchCase {
  std::string net;
  std::string layer;
  Conv2DConfig cfg;
  Shape in_shape;
};

struct BenchResult {
  BenchCase c;
  double naive_fwd_ms = 0.0, gemm_fwd_ms = 0.0;
  double naive_bwd_ms = 0.0, gemm_bwd_ms = 0.0;
  double fwd_speedup() const { return naive_fwd_ms / gemm_fwd_ms; }
  double bwd_speedup() const { return naive_bwd_ms / gemm_bwd_ms; }
};

std::vector<BenchCase> cases_from_zoo() {
  std::vector<BenchCase> cases;
  const std::size_t batch = 8;
  for (const ls::nn::NetSpec& spec :
       {ls::nn::lenet_expt_spec(), ls::nn::convnet_expt_spec(),
        ls::nn::caffenet_expt_spec()}) {
    for (const ls::nn::LayerAnalysis& a : ls::nn::analyze(spec)) {
      if (a.spec.kind != ls::nn::LayerKind::kConv) continue;
      BenchCase c;
      c.net = spec.name;
      c.layer = a.spec.name;
      c.cfg.in_channels = a.in.c;
      c.cfg.out_channels = a.spec.out_channels;
      c.cfg.kernel = a.spec.kernel;
      c.cfg.stride = a.spec.stride;
      c.cfg.pad = a.spec.pad;
      c.cfg.groups = a.spec.groups;
      c.in_shape = Shape{batch, a.in.c, a.in.h, a.in.w};
      cases.push_back(c);
    }
  }
  return cases;
}

/// Wall-clock milliseconds per call of `fn`, repeated so each measurement
/// covers at least ~40 ms.
template <typename Fn>
double time_ms(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm up caches and the thread pool
  std::size_t reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t r = 0; r < reps; ++r) fn();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (ms >= 40.0 || reps >= 1024) return ms / static_cast<double>(reps);
    reps *= 4;
  }
}

BenchResult run_case(const BenchCase& c) {
  BenchResult r;
  r.c = c;
  ls::util::Rng rng_w(11), rng_in(5);
  Conv2DConfig gemm_cfg = c.cfg;
  gemm_cfg.impl = ConvImpl::kGemm;
  Conv2DConfig naive_cfg = c.cfg;
  naive_cfg.impl = ConvImpl::kNaive;
  Conv2D gemm("g", gemm_cfg, rng_w);
  ls::util::Rng rng_w2(11);
  Conv2D naive("n", naive_cfg, rng_w2);
  const Tensor in = Tensor::uniform(c.in_shape, -1.f, 1.f, rng_in);

  r.gemm_fwd_ms = time_ms([&] { gemm.forward(in, true); });
  r.naive_fwd_ms = time_ms([&] { naive.forward(in, true); });

  const Tensor grad = Tensor::uniform(gemm.output_shape(c.in_shape), -1.f,
                                      1.f, rng_in);
  gemm.forward(in, true);
  r.gemm_bwd_ms = time_ms([&] { gemm.backward(grad); });
  naive.forward(in, true);
  r.naive_bwd_ms = time_ms([&] { naive.backward(grad); });
  return r;
}

void write_json(const std::string& path, const std::vector<BenchResult>& rs) {
  ls::util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("kernel_micro");
  w.key("threads").value(static_cast<std::uint64_t>(ls::util::num_threads()));
  w.key("cases").begin_array();
  for (const BenchResult& r : rs) {
    w.begin_object();
    w.key("net").value(r.c.net);
    w.key("layer").value(r.c.layer);
    w.key("naive_fwd_ms").value(r.naive_fwd_ms);
    w.key("gemm_fwd_ms").value(r.gemm_fwd_ms);
    w.key("naive_bwd_ms").value(r.naive_bwd_ms);
    w.key("gemm_bwd_ms").value(r.gemm_bwd_ms);
    w.key("fwd_speedup").value(r.fwd_speedup());
    w.key("bwd_speedup").value(r.bwd_speedup());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(path);
}

// ---------------------------------------------------------------------------
// Block-sparse fast path: dense GEMM vs sparse-armed GEMM on pruned weights.

struct SparseBenchResult {
  std::string kind;  ///< "conv" or "fc"
  int sparsity_pct = 0;
  double dense_fwd_ms = 0.0, sparse_fwd_ms = 0.0;
  double speedup() const { return dense_fwd_ms / sparse_fwd_ms; }
};

/// Zeroes `frac` of the P x P weight blocks. Kill order is producer-panel-
/// major (all consumers of panel 0, then panel 1, ...) so that at high
/// sparsity whole input-unit panels go dead and the im2col channel skip
/// engages — the structure group-Lasso training converges to.
void kill_block_fraction(ls::nn::Param& w, std::size_t parts,
                         std::size_t in_units, std::size_t out_units,
                         std::size_t elems_per_in_unit, double frac) {
  const auto kb = ls::nn::balanced_bounds(in_units, parts);
  const auto ob = ls::nn::balanced_bounds(out_units, parts);
  const std::size_t target =
      static_cast<std::size_t>(frac * static_cast<double>(parts * parts) + 0.5);
  const std::size_t row_elems = w.value.numel() / out_units;
  float* data = w.value.data();
  std::size_t killed = 0;
  for (std::size_t p = 0; p < parts && killed < target; ++p) {
    for (std::size_t c = 0; c < parts && killed < target; ++c, ++killed) {
      for (std::size_t o = ob[c]; o < ob[c + 1]; ++o) {
        float* row = data + o * row_elems;
        std::fill(row + kb[p] * elems_per_in_unit,
                  row + kb[p + 1] * elems_per_in_unit, 0.0f);
      }
    }
  }
  w.bump();
}

SparseBenchResult run_sparse_conv(int pct, std::size_t parts) {
  SparseBenchResult r;
  r.kind = "conv";
  r.sparsity_pct = pct;
  Conv2DConfig cfg;
  cfg.in_channels = 64;
  cfg.out_channels = 64;
  cfg.kernel = 3;
  cfg.pad = 1;
  cfg.impl = ConvImpl::kGemm;
  ls::util::Rng rng_w(11), rng_w2(11), rng_in(5);
  Conv2D dense("d", cfg, rng_w);
  Conv2D sparse("s", cfg, rng_w2);
  sparse.set_sparsity_partition(parts);
  const double frac = pct / 100.0;
  // Same pruned weights on both layers: the dense baseline multiplies the
  // zeros, the sparse path skips them.
  kill_block_fraction(dense.weight(), parts, cfg.in_channels,
                      cfg.out_channels, cfg.kernel * cfg.kernel, frac);
  kill_block_fraction(sparse.weight(), parts, cfg.in_channels,
                      cfg.out_channels, cfg.kernel * cfg.kernel, frac);
  const Tensor in =
      Tensor::uniform(Shape{8, cfg.in_channels, 32, 32}, -1.f, 1.f, rng_in);
  r.dense_fwd_ms = time_ms([&] { dense.forward(in, false); });
  r.sparse_fwd_ms = time_ms([&] { sparse.forward(in, false); });
  return r;
}

SparseBenchResult run_sparse_fc(int pct, std::size_t parts) {
  SparseBenchResult r;
  r.kind = "fc";
  r.sparsity_pct = pct;
  const std::size_t in_f = 512, out_f = 512;
  ls::util::Rng rng_w(11), rng_w2(11), rng_in(5);
  ls::nn::FullyConnected dense("d", in_f, out_f, rng_w);
  ls::nn::FullyConnected sparse("s", in_f, out_f, rng_w2);
  sparse.set_sparsity_partition(parts, /*in_units=*/in_f);
  const double frac = pct / 100.0;
  kill_block_fraction(dense.weight(), parts, in_f, out_f, 1, frac);
  kill_block_fraction(sparse.weight(), parts, in_f, out_f, 1, frac);
  const Tensor in = Tensor::uniform(Shape{64, in_f, 1, 1}, -1.f, 1.f, rng_in);
  r.dense_fwd_ms = time_ms([&] { dense.forward(in, false); });
  r.sparse_fwd_ms = time_ms([&] { sparse.forward(in, false); });
  return r;
}

void write_sparse_json(const std::string& path,
                       const std::vector<SparseBenchResult>& rs) {
  ls::util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("kernel_sparse");
  w.key("threads").value(static_cast<std::uint64_t>(ls::util::num_threads()));
  w.key("cases").begin_array();
  for (const SparseBenchResult& r : rs) {
    w.begin_object();
    w.key("kind").value(r.kind);
    w.key("sparsity_pct").value(static_cast<std::uint64_t>(r.sparsity_pct));
    w.key("dense_fwd_ms").value(r.dense_fwd_ms);
    w.key("sparse_fwd_ms").value(r.sparse_fwd_ms);
    w.key("speedup").value(r.speedup());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string sparse_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sparse-json") == 0 && i + 1 < argc) {
      sparse_json_path = argv[++i];
    }
  }

  std::printf(
      "Learn-to-Scale bench: conv kernel micro (naive loop nest vs "
      "im2col+GEMM, %zu threads)\n\n",
      ls::util::num_threads());

  std::vector<BenchResult> results;
  ls::util::Table table("conv fwd/bwd wall-clock per call, batch 8");
  table.set_header({"net", "layer", "naive fwd", "gemm fwd", "fwd speedup",
                    "naive bwd", "gemm bwd", "bwd speedup"});
  for (const BenchCase& c : cases_from_zoo()) {
    const BenchResult r = run_case(c);
    table.add_row({r.c.net, r.c.layer,
                   ls::util::fmt_double(r.naive_fwd_ms, 2) + " ms",
                   ls::util::fmt_double(r.gemm_fwd_ms, 2) + " ms",
                   ls::util::fmt_speedup(r.fwd_speedup(), 1),
                   ls::util::fmt_double(r.naive_bwd_ms, 2) + " ms",
                   ls::util::fmt_double(r.gemm_bwd_ms, 2) + " ms",
                   ls::util::fmt_speedup(r.bwd_speedup(), 1)});
    results.push_back(r);
  }
  table.print();

  if (!json_path.empty()) {
    write_json(json_path, results);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --- Block-sparse fast path ------------------------------------------
  const std::size_t parts = 8;
  std::vector<SparseBenchResult> sparse_results;
  ls::util::Table sparse_table(
      "block-sparse GEMM forward vs dense, P=8 partitions");
  sparse_table.set_header(
      {"kind", "sparsity", "dense fwd", "sparse fwd", "speedup"});
  for (const int pct : {0, 25, 50, 75, 90}) {
    for (const bool is_fc : {false, true}) {
      const SparseBenchResult r =
          is_fc ? run_sparse_fc(pct, parts) : run_sparse_conv(pct, parts);
      sparse_table.add_row({r.kind, std::to_string(r.sparsity_pct) + "%",
                            ls::util::fmt_double(r.dense_fwd_ms, 2) + " ms",
                            ls::util::fmt_double(r.sparse_fwd_ms, 2) + " ms",
                            ls::util::fmt_speedup(r.speedup(), 2)});
      sparse_results.push_back(r);
    }
  }
  std::printf("\n");
  sparse_table.print();

  if (!sparse_json_path.empty()) {
    write_sparse_json(sparse_json_path, sparse_results);
    std::printf("\nwrote %s\n", sparse_json_path.c_str());
  }
  return 0;
}
