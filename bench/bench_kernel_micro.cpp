// Microbenchmark: naive loop-nest conv vs im2col+GEMM fast path, forward
// and backward, on every conv layer of the model-zoo experiment specs
// (LeNet / ConvNet / CaffeNet). Prints a speedup table; `--json PATH`
// additionally emits machine-readable results for the tier-1 wrapper.
//
// Schema 2 adds the vectorized backend: per layer, the simd conv wall
// clock, plus a *direct* single-thread GEMM measurement at the layer's
// forward GEMM shape (scalar vs simd, with GFLOP/s). The direct numbers
// are what the >=2x tier-1 gate reads — layer forward time includes the
// im2col packing, which dilutes the kernel speedup.
//
// A second section measures the block-sparse fast path: dense GEMM vs the
// armed sparse path on the same pruned weights at 0/25/50/75/90 % block
// sparsity, for the scalar and (when available) simd backends
// (`--sparse-json PATH` dumps it, tier-1 writes BENCH_sparse.json). The
// 0 % rows double as the sparse-dispatch overhead probe.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/block_sparsity.hpp"
#include "nn/conv2d.hpp"
#include "nn/fc.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_simd.hpp"
#include "nn/layer_spec.hpp"
#include "nn/model_zoo.hpp"
#include "tensor/tensor.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using ls::nn::Conv2D;
using ls::nn::Conv2DConfig;
using ls::nn::ConvImpl;
using ls::tensor::Shape;
using ls::tensor::Tensor;

struct BenchCase {
  std::string net;
  std::string layer;
  Conv2DConfig cfg;
  Shape in_shape;
};

struct BenchResult {
  BenchCase c;
  double naive_fwd_ms = 0.0, gemm_fwd_ms = 0.0;
  double naive_bwd_ms = 0.0, gemm_bwd_ms = 0.0;
  double simd_fwd_ms = 0.0, simd_bwd_ms = 0.0;
  // Direct forward-GEMM shape (per group, per sample) and single-thread
  // kernel timings at it.
  std::size_t mm_m = 0, mm_n = 0, mm_k = 0;
  double mm_scalar_ms = 0.0, mm_simd_ms = 0.0;
  double fwd_speedup() const { return naive_fwd_ms / gemm_fwd_ms; }
  double bwd_speedup() const { return naive_bwd_ms / gemm_bwd_ms; }
  double simd_fwd_speedup() const { return gemm_fwd_ms / simd_fwd_ms; }
  double simd_bwd_speedup() const { return gemm_bwd_ms / simd_bwd_ms; }
  double mm_flops() const {
    return 2.0 * static_cast<double>(mm_m) * static_cast<double>(mm_n) *
           static_cast<double>(mm_k);
  }
  double mm_scalar_gflops() const { return mm_flops() / mm_scalar_ms / 1e6; }
  double mm_simd_gflops() const { return mm_flops() / mm_simd_ms / 1e6; }
  double mm_simd_speedup() const { return mm_scalar_ms / mm_simd_ms; }
};

std::vector<BenchCase> cases_from_zoo() {
  std::vector<BenchCase> cases;
  const std::size_t batch = 8;
  for (const ls::nn::NetSpec& spec :
       {ls::nn::lenet_expt_spec(), ls::nn::convnet_expt_spec(),
        ls::nn::caffenet_expt_spec()}) {
    for (const ls::nn::LayerAnalysis& a : ls::nn::analyze(spec)) {
      if (a.spec.kind != ls::nn::LayerKind::kConv) continue;
      BenchCase c;
      c.net = spec.name;
      c.layer = a.spec.name;
      c.cfg.in_channels = a.in.c;
      c.cfg.out_channels = a.spec.out_channels;
      c.cfg.kernel = a.spec.kernel;
      c.cfg.stride = a.spec.stride;
      c.cfg.pad = a.spec.pad;
      c.cfg.groups = a.spec.groups;
      c.in_shape = Shape{batch, a.in.c, a.in.h, a.in.w};
      cases.push_back(c);
    }
  }
  return cases;
}

/// Wall-clock milliseconds per call of `fn`, repeated so each measurement
/// covers at least ~40 ms, best of three such windows — a single window on
/// a shared box can absorb a scheduler stall, which showed up as spurious
/// sub-threshold speedups in the tier-1 overhead gates.
template <typename Fn>
double time_ms(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm up caches and the thread pool
  std::size_t reps = 1;
  double ms = 0.0;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t r = 0; r < reps; ++r) fn();
    ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (ms >= 40.0 || reps >= 1024) break;
    reps *= 4;
  }
  double best = ms;
  for (int window = 0; window < 2; ++window) {
    const auto t0 = clock::now();
    for (std::size_t r = 0; r < reps; ++r) fn();
    const double again =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    best = std::min(best, again);
  }
  return best / static_cast<double>(reps);
}

BenchResult run_case(const BenchCase& c) {
  BenchResult r;
  r.c = c;
  ls::util::Rng rng_w(11), rng_in(5);
  Conv2DConfig gemm_cfg = c.cfg;
  gemm_cfg.impl = ConvImpl::kGemm;
  Conv2DConfig naive_cfg = c.cfg;
  naive_cfg.impl = ConvImpl::kNaive;
  Conv2DConfig simd_cfg = c.cfg;
  simd_cfg.impl = ConvImpl::kSimd;
  Conv2D gemm("g", gemm_cfg, rng_w);
  ls::util::Rng rng_w2(11), rng_w3(11);
  Conv2D naive("n", naive_cfg, rng_w2);
  Conv2D simd("v", simd_cfg, rng_w3);
  const Tensor in = Tensor::uniform(c.in_shape, -1.f, 1.f, rng_in);

  r.gemm_fwd_ms = time_ms([&] { gemm.forward(in, true); });
  r.naive_fwd_ms = time_ms([&] { naive.forward(in, true); });
  r.simd_fwd_ms = time_ms([&] { simd.forward(in, true); });

  const Tensor grad = Tensor::uniform(gemm.output_shape(c.in_shape), -1.f,
                                      1.f, rng_in);
  gemm.forward(in, true);
  r.gemm_bwd_ms = time_ms([&] { gemm.backward(grad); });
  naive.forward(in, true);
  r.naive_bwd_ms = time_ms([&] { naive.backward(grad); });
  simd.forward(in, true);
  r.simd_bwd_ms = time_ms([&] { simd.backward(grad); });

  // Direct forward-GEMM shape: weights (Cout/g x Cin/g*K*K) times the
  // im2col matrix (rows x OH*OW), timed single-thread (parallel=false) so
  // the gate measures the kernel, not the pool.
  const Shape out_shape = gemm.output_shape(c.in_shape);
  r.mm_m = c.cfg.out_channels / c.cfg.groups;
  r.mm_n = out_shape[2] * out_shape[3];
  r.mm_k = (c.cfg.in_channels / c.cfg.groups) * c.cfg.kernel * c.cfg.kernel;
  std::vector<float> A(r.mm_m * r.mm_k), B(r.mm_k * r.mm_n),
      C(r.mm_m * r.mm_n);
  ls::util::Rng rng_mm(17);
  for (float& v : A) v = static_cast<float>(rng_mm.uniform() - 0.5);
  for (float& v : B) v = static_cast<float>(rng_mm.uniform() - 0.5);
  r.mm_scalar_ms = time_ms([&] {
    ls::nn::gemm::gemm_nn(r.mm_m, r.mm_n, r.mm_k, A.data(), r.mm_k, B.data(),
                          r.mm_n, C.data(), r.mm_n, false, false);
  });
  r.mm_simd_ms = time_ms([&] {
    ls::nn::simd::gemm_nn(r.mm_m, r.mm_n, r.mm_k, A.data(), r.mm_k, B.data(),
                          r.mm_n, C.data(), r.mm_n, false, false);
  });
  return r;
}

void write_json(const std::string& path, const std::vector<BenchResult>& rs) {
  ls::util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("kernel_micro");
  w.key("schema").value(static_cast<std::uint64_t>(2));
  w.key("threads").value(static_cast<std::uint64_t>(ls::util::num_threads()));
  w.key("simd_available").value(ls::nn::simd::vectorized());
  w.key("simd_isa").value(ls::nn::simd::microkernel_isa());
  w.key("cases").begin_array();
  for (const BenchResult& r : rs) {
    w.begin_object();
    w.key("net").value(r.c.net);
    w.key("layer").value(r.c.layer);
    w.key("naive_fwd_ms").value(r.naive_fwd_ms);
    w.key("gemm_fwd_ms").value(r.gemm_fwd_ms);
    w.key("simd_fwd_ms").value(r.simd_fwd_ms);
    w.key("naive_bwd_ms").value(r.naive_bwd_ms);
    w.key("gemm_bwd_ms").value(r.gemm_bwd_ms);
    w.key("simd_bwd_ms").value(r.simd_bwd_ms);
    w.key("fwd_speedup").value(r.fwd_speedup());
    w.key("bwd_speedup").value(r.bwd_speedup());
    w.key("simd_fwd_speedup").value(r.simd_fwd_speedup());
    w.key("simd_bwd_speedup").value(r.simd_bwd_speedup());
    w.key("mm_m").value(static_cast<std::uint64_t>(r.mm_m));
    w.key("mm_n").value(static_cast<std::uint64_t>(r.mm_n));
    w.key("mm_k").value(static_cast<std::uint64_t>(r.mm_k));
    w.key("mm_scalar_ms").value(r.mm_scalar_ms);
    w.key("mm_simd_ms").value(r.mm_simd_ms);
    w.key("mm_scalar_gflops").value(r.mm_scalar_gflops());
    w.key("mm_simd_gflops").value(r.mm_simd_gflops());
    w.key("mm_simd_speedup").value(r.mm_simd_speedup());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(path);
}

// ---------------------------------------------------------------------------
// Block-sparse fast path: dense GEMM vs sparse-armed GEMM on pruned weights.

struct SparseBenchResult {
  std::string kind;  ///< "conv" or "fc"
  std::string impl;  ///< "gemm" (scalar) or "simd"
  int sparsity_pct = 0;
  double dense_fwd_ms = 0.0, sparse_fwd_ms = 0.0;
  double speedup() const { return dense_fwd_ms / sparse_fwd_ms; }
};

/// Zeroes `frac` of the P x P weight blocks. Kill order is producer-panel-
/// major (all consumers of panel 0, then panel 1, ...) so that at high
/// sparsity whole input-unit panels go dead and the im2col channel skip
/// engages — the structure group-Lasso training converges to.
void kill_block_fraction(ls::nn::Param& w, std::size_t parts,
                         std::size_t in_units, std::size_t out_units,
                         std::size_t elems_per_in_unit, double frac) {
  const auto kb = ls::nn::balanced_bounds(in_units, parts);
  const auto ob = ls::nn::balanced_bounds(out_units, parts);
  const std::size_t target =
      static_cast<std::size_t>(frac * static_cast<double>(parts * parts) + 0.5);
  const std::size_t row_elems = w.value.numel() / out_units;
  float* data = w.value.data();
  std::size_t killed = 0;
  for (std::size_t p = 0; p < parts && killed < target; ++p) {
    for (std::size_t c = 0; c < parts && killed < target; ++c, ++killed) {
      for (std::size_t o = ob[c]; o < ob[c + 1]; ++o) {
        float* row = data + o * row_elems;
        std::fill(row + kb[p] * elems_per_in_unit,
                  row + kb[p + 1] * elems_per_in_unit, 0.0f);
      }
    }
  }
  w.bump();
}

SparseBenchResult run_sparse_conv(int pct, std::size_t parts, bool use_simd) {
  SparseBenchResult r;
  r.kind = "conv";
  r.impl = use_simd ? "simd" : "gemm";
  r.sparsity_pct = pct;
  Conv2DConfig cfg;
  cfg.in_channels = 64;
  cfg.out_channels = 64;
  cfg.kernel = 3;
  cfg.pad = 1;
  cfg.impl = use_simd ? ConvImpl::kSimd : ConvImpl::kGemm;
  ls::util::Rng rng_w(11), rng_w2(11), rng_in(5);
  Conv2D dense("d", cfg, rng_w);
  Conv2D sparse("s", cfg, rng_w2);
  sparse.set_sparsity_partition(parts);
  const double frac = pct / 100.0;
  // Same pruned weights on both layers: the dense baseline multiplies the
  // zeros, the sparse path skips them.
  kill_block_fraction(dense.weight(), parts, cfg.in_channels,
                      cfg.out_channels, cfg.kernel * cfg.kernel, frac);
  kill_block_fraction(sparse.weight(), parts, cfg.in_channels,
                      cfg.out_channels, cfg.kernel * cfg.kernel, frac);
  const Tensor in =
      Tensor::uniform(Shape{8, cfg.in_channels, 32, 32}, -1.f, 1.f, rng_in);
  r.dense_fwd_ms = time_ms([&] { dense.forward(in, false); });
  r.sparse_fwd_ms = time_ms([&] { sparse.forward(in, false); });
  return r;
}

SparseBenchResult run_sparse_fc(int pct, std::size_t parts, bool use_simd) {
  SparseBenchResult r;
  r.kind = "fc";
  r.impl = use_simd ? "simd" : "gemm";
  r.sparsity_pct = pct;
  const std::size_t in_f = 512, out_f = 512;
  ls::util::Rng rng_w(11), rng_w2(11), rng_in(5);
  ls::nn::FullyConnected dense("d", in_f, out_f, rng_w);
  ls::nn::FullyConnected sparse("s", in_f, out_f, rng_w2);
  const auto backend = use_simd ? ls::nn::simd::GemmBackend::kSimd
                                : ls::nn::simd::GemmBackend::kScalar;
  dense.set_backend(backend);
  sparse.set_backend(backend);
  sparse.set_sparsity_partition(parts, /*in_units=*/in_f);
  const double frac = pct / 100.0;
  kill_block_fraction(dense.weight(), parts, in_f, out_f, 1, frac);
  kill_block_fraction(sparse.weight(), parts, in_f, out_f, 1, frac);
  const Tensor in = Tensor::uniform(Shape{64, in_f, 1, 1}, -1.f, 1.f, rng_in);
  r.dense_fwd_ms = time_ms([&] { dense.forward(in, false); });
  r.sparse_fwd_ms = time_ms([&] { sparse.forward(in, false); });
  return r;
}

void write_sparse_json(const std::string& path,
                       const std::vector<SparseBenchResult>& rs) {
  ls::util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("kernel_sparse");
  w.key("schema").value(static_cast<std::uint64_t>(2));
  w.key("threads").value(static_cast<std::uint64_t>(ls::util::num_threads()));
  w.key("simd_available").value(ls::nn::simd::vectorized());
  w.key("cases").begin_array();
  for (const SparseBenchResult& r : rs) {
    w.begin_object();
    w.key("kind").value(r.kind);
    w.key("impl").value(r.impl);
    w.key("sparsity_pct").value(static_cast<std::uint64_t>(r.sparsity_pct));
    w.key("dense_fwd_ms").value(r.dense_fwd_ms);
    w.key("sparse_fwd_ms").value(r.sparse_fwd_ms);
    w.key("speedup").value(r.speedup());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string sparse_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sparse-json") == 0 && i + 1 < argc) {
      sparse_json_path = argv[++i];
    }
  }

  std::printf(
      "Learn-to-Scale bench: conv kernel micro (naive loop nest vs "
      "im2col+GEMM, %zu threads)\n\n",
      ls::util::num_threads());

  std::vector<BenchResult> results;
  ls::util::Table table("conv fwd/bwd wall-clock per call, batch 8");
  table.set_header({"net", "layer", "naive fwd", "gemm fwd", "fwd speedup",
                    "naive bwd", "gemm bwd", "bwd speedup"});
  for (const BenchCase& c : cases_from_zoo()) {
    const BenchResult r = run_case(c);
    table.add_row({r.c.net, r.c.layer,
                   ls::util::fmt_double(r.naive_fwd_ms, 2) + " ms",
                   ls::util::fmt_double(r.gemm_fwd_ms, 2) + " ms",
                   ls::util::fmt_speedup(r.fwd_speedup(), 1),
                   ls::util::fmt_double(r.naive_bwd_ms, 2) + " ms",
                   ls::util::fmt_double(r.gemm_bwd_ms, 2) + " ms",
                   ls::util::fmt_speedup(r.bwd_speedup(), 1)});
    results.push_back(r);
  }
  table.print();

  ls::util::Table simd_table(
      std::string("vectorized backend (isa: ") +
      ls::nn::simd::microkernel_isa() +
      "): layer fwd vs scalar gemm + direct 1-thread GEMM at the fwd shape");
  simd_table.set_header({"net", "layer", "gemm fwd", "simd fwd", "fwd speedup",
                         "MxNxK", "scalar GF/s", "simd GF/s", "mm speedup"});
  for (const BenchResult& r : results) {
    simd_table.add_row(
        {r.c.net, r.c.layer, ls::util::fmt_double(r.gemm_fwd_ms, 2) + " ms",
         ls::util::fmt_double(r.simd_fwd_ms, 2) + " ms",
         ls::util::fmt_speedup(r.simd_fwd_speedup(), 2),
         std::to_string(r.mm_m) + "x" + std::to_string(r.mm_n) + "x" +
             std::to_string(r.mm_k),
         ls::util::fmt_double(r.mm_scalar_gflops(), 1),
         ls::util::fmt_double(r.mm_simd_gflops(), 1),
         ls::util::fmt_speedup(r.mm_simd_speedup(), 2)});
  }
  std::printf("\n");
  simd_table.print();

  if (!json_path.empty()) {
    write_json(json_path, results);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // --- Block-sparse fast path ------------------------------------------
  const std::size_t parts = 8;
  std::vector<SparseBenchResult> sparse_results;
  ls::util::Table sparse_table(
      "block-sparse GEMM forward vs dense, P=8 partitions");
  sparse_table.set_header(
      {"kind", "impl", "sparsity", "dense fwd", "sparse fwd", "speedup"});
  for (const int pct : {0, 25, 50, 75, 90}) {
    for (const bool is_fc : {false, true}) {
      for (const bool use_simd : {false, true}) {
        if (use_simd && !ls::nn::simd::vectorized()) continue;
        const SparseBenchResult r = is_fc
                                        ? run_sparse_fc(pct, parts, use_simd)
                                        : run_sparse_conv(pct, parts, use_simd);
        sparse_table.add_row({r.kind, r.impl,
                              std::to_string(r.sparsity_pct) + "%",
                              ls::util::fmt_double(r.dense_fwd_ms, 2) + " ms",
                              ls::util::fmt_double(r.sparse_fwd_ms, 2) + " ms",
                              ls::util::fmt_speedup(r.speedup(), 2)});
        sparse_results.push_back(r);
      }
    }
  }
  std::printf("\n");
  sparse_table.print();

  if (!sparse_json_path.empty()) {
    write_sparse_json(sparse_json_path, sparse_results);
    std::printf("\nwrote %s\n", sparse_json_path.c_str());
  }
  return 0;
}
