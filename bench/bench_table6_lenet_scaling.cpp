// Reproduces paper TABLE VI: communication-aware sparsified
// parallelization of LeNet on 8 and 32 cores (16-core results are in
// TABLE IV / bench_table4).

#include <cstdio>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  std::puts(
      "Learn-to-Scale bench: TABLE VI (sparsified LeNet on 8 and 32 "
      "cores)\n");

  const nn::NetSpec spec = nn::lenet_expt_spec();
  const data::Dataset train_set = sim::dataset_for(spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, 2);

  struct PaperRow {
    const char* scheme;
    double accuracy, traffic, speedup, energy_red;
  };
  const std::pair<std::size_t, std::vector<PaperRow>> paper[] = {
      {8,
       {{"Baseline", 0.991, 1.00, 1.00, 0.00},
        {"SS", 0.989, 0.80, 1.20, 0.10},
        {"SS_Mask", 0.989, 0.68, 1.22, 0.32}}},
      {32,
       {{"Baseline", 0.991, 1.00, 1.00, 0.00},
        {"SS", 0.987, 0.32, 1.49, 0.34},
        {"SS_Mask", 0.986, 0.18, 1.58, 0.56}}},
  };

  util::Table table(
      "TABLE VI: LeNet scaling (ours | paper traffic/speedup/energy-red)");
  table.set_header({"cores", "scheme", "accuracy", "traffic", "speedup",
                    "energy-red", "paper(t/s/e)"});

  for (const auto& [cores, rows] : paper) {
    sim::ExperimentConfig cfg;
    cfg.cores = cores;
    cfg.train.epochs = 4;
    cfg.lambda_ss = 0.5;
    cfg.lambda_mask = 0.5;
    cfg.seed = 42;
    const auto outcomes =
        sim::run_sparsified_experiment(spec, train_set, test_set, cfg);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& o = outcomes[i];
      const PaperRow& p = rows.at(i);
      table.add_row(
          {std::to_string(cores), o.scheme, util::fmt_percent(o.accuracy, 1),
           util::fmt_percent(o.traffic_rate), util::fmt_speedup(o.speedup),
           util::fmt_percent(o.comm_energy_reduction),
           util::fmt_percent(p.traffic) + "/" + util::fmt_speedup(p.speedup) +
               "/" + util::fmt_percent(p.energy_red)});
    }
  }
  table.print();
  std::puts(
      "\nExpected shape: both schemes improve as cores scale up (smaller\n"
      "per-core kernel groups prune at lower accuracy risk; the NoC\n"
      "diameter grows), with SS_Mask ahead of SS on energy.");
  return 0;
}
