// Schedule-autotuner bench (DESIGN.md §4g): for each (net, cores) point,
// run the analytic-model search over per-layer partition dims x core
// placement x overlap and report the tuned schedule against the kernel-wise
// baseline — both flit-level validated, so the headline speedup is a real
// simulator number, not the analytic score. Deterministic: fixed seed,
// fixed budget, no wall-clock timing.
//
//   bench_tune [--budget N] [--json PATH]
//
// `--json` writes the tier-1 artifact (BENCH_tune.json): one row per
// point with analytic and flit-level cycles for baseline and tuned, the
// validated speedup the acceptance gate reads, and the winning dims.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "tune/tuner.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ls;

struct Row {
  std::string net;
  std::size_t cores = 0;
  tune::TuneOutcome out{};
};

Row run_point(const nn::NetSpec& spec, std::size_t cores,
              std::uint64_t budget) {
  sim::SystemConfig cfg;
  cfg.cores = cores;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  tune::TunerConfig tcfg;
  tcfg.budget = budget;
  Row row;
  row.net = spec.name;
  row.cores = cores;
  row.out = tune::tune(spec, traffic, cfg, tcfg);
  return row;
}

std::string dims_string(const tune::Candidate& c) {
  std::string dims;
  for (const sched::PartitionDim d : c.layer_dims) {
    dims += dims.empty() ? "" : ",";
    dims += sched::to_string(d);
  }
  return dims;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("tune");
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("net").value(r.net);
    w.key("cores").value(static_cast<std::uint64_t>(r.cores));
    w.key("baseline_est_cycles").value(r.out.baseline_est_cycles);
    w.key("baseline_sim_cycles").value(r.out.baseline_sim_cycles);
    w.key("tuned_est_cycles").value(r.out.best_est_cycles);
    w.key("tuned_sim_cycles").value(r.out.best_sim_cycles);
    w.key("speedup_sim").value(r.out.speedup_sim());
    w.key("dims").value(dims_string(r.out.best));
    w.key("overlap").value(r.out.best.overlap_comm);
    w.key("evals").value(r.out.evals);
    w.key("validated").value(static_cast<std::uint64_t>(r.out.validated));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t budget = 2000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget = static_cast<std::uint64_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (budget == 0) budget = 1;

  std::vector<Row> rows;
  for (const std::size_t cores : {std::size_t{16}, std::size_t{64}}) {
    rows.push_back(run_point(nn::convnet_spec(), cores, budget));
    rows.push_back(run_point(nn::alexnet_spec(), cores, budget));
  }

  util::Table t("schedule autotuner vs kernel-wise baseline (flit-validated)");
  t.set_header({"net", "cores", "base sim-cyc", "tuned sim-cyc", "speedup",
                "overlap", "dims"});
  for (const Row& r : rows) {
    t.add_row({r.net, std::to_string(r.cores),
               std::to_string(r.out.baseline_sim_cycles),
               std::to_string(r.out.best_sim_cycles),
               util::fmt_speedup(r.out.speedup_sim()),
               r.out.best.overlap_comm ? "on" : "off",
               dims_string(r.out.best)});
  }
  t.print();

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
