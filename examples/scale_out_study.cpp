// Scalability study: how does the communication bottleneck of traditional
// single-pass inference parallelization evolve as the CMP scales from 2 to
// 64 cores — and how much of it can structure-level grouping remove?
//
// No training involved: this example exercises the analytic/architecture
// side of the library (NetSpec analysis, dense traffic synthesis, the
// flit-level NoC simulation and the accelerator cycle model).

#include <cstdio>

#include "core/grouping.hpp"
#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;
  const nn::NetSpec dense = nn::convnet_spec();  // Caffe cifar10_quick dims

  util::Table table("ConvNet single-pass inference vs core count");
  table.set_header({"cores", "compute-cyc", "comm-cyc", "comm-share",
                    "total-cyc", "speedup-vs-2", "grouped-total",
                    "grouped-gain"});

  double first_total = 0.0;
  for (std::size_t cores : {2u, 4u, 8u, 16u, 32u, 64u}) {
    sim::SystemConfig cfg;
    cfg.cores = cores;
    sim::CmpSystem system(cfg);
    const auto traffic =
        core::traffic_dense(dense, system.topology(), cfg.bytes_per_value);
    const auto r = system.run_inference(dense, traffic);

    // Structure-level variant: group conv2/conv3 by the core count (the
    // channel counts of cifar10_quick divide 2..32; cap the group count).
    const std::size_t n = std::min<std::size_t>(cores, 32);
    const auto grouped =
        core::apply_grouping(dense, core::default_grouping_targets(dense), n);
    const auto gtraffic =
        core::traffic_dense(grouped, system.topology(), cfg.bytes_per_value);
    const auto gr = system.run_inference(grouped, gtraffic);

    if (first_total == 0.0) first_total = static_cast<double>(r.total_cycles);
    table.add_row(
        {std::to_string(cores), std::to_string(r.compute_cycles),
         std::to_string(r.comm_cycles),
         util::fmt_percent(r.comm_fraction()),
         std::to_string(r.total_cycles),
         util::fmt_speedup(first_total / static_cast<double>(r.total_cycles)),
         std::to_string(gr.total_cycles),
         util::fmt_speedup(static_cast<double>(r.total_cycles) /
                           static_cast<double>(gr.total_cycles))});
  }
  table.print();

  std::printf(
      "\nReading: compute parallelizes (compute-cyc falls with cores) but\n"
      "the synchronization traffic grows, so the communication share of\n"
      "latency climbs and total speedup saturates — the paper's motivation\n"
      "(§III.B). The grouped variant removes conv2/conv3 synchronization\n"
      "entirely and its advantage widens with scale (§V.B).\n");
  return 0;
}
