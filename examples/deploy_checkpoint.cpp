// Deployment workflow: train a communication-aware sparsified model once,
// checkpoint it, then — as a deployment toolchain would — reload it into a
// fresh network, quantize to the accelerator's 16-bit fixed point, and
// execute it *functionally partitioned* across the 16 cores, verifying
// that accuracy survives and that the exchanges on the (simulated) NoC
// match what the traffic model promised.

#include <cstdio>

#include "core/partitioned_inference.hpp"
#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "nn/serialize.hpp"
#include "sim/experiment.hpp"
#include "train/masks.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace ls;
  const std::size_t cores = 16;
  const nn::NetSpec spec = nn::mlp_expt_spec();
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  const std::string ckpt = "/tmp/learn_to_scale_mlp.lsnn";

  // --- Training side ------------------------------------------------------
  const data::Dataset train_set = sim::dataset_for(spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, 2);
  util::Rng rng(42);
  nn::Network trained = nn::build_network(spec, rng);
  train::GroupLassoRegularizer reg(
      core::build_group_sets(trained, spec, cores),
      train::distance_mask(topo), 0.6);
  train::TrainConfig tcfg;
  tcfg.epochs = 5;
  const auto report =
      train::train_classifier(trained, train_set, test_set, tcfg, &reg);
  nn::save_params(trained, ckpt);
  std::printf("trained: accuracy %.3f, sparsity %.1f%% -> %s\n",
              report.test_accuracy, 100.0 * report.weight_sparsity,
              ckpt.c_str());

  // --- Deployment side ----------------------------------------------------
  util::Rng other(999);
  nn::Network deployed = nn::build_network(spec, other);
  nn::load_params(deployed, ckpt);
  for (nn::Param* p : deployed.params()) p->value.quantize_fixed16(12);

  core::PartitionedInference exec(deployed, spec, cores);
  const tensor::Tensor logits =
      exec.run(test_set.images, /*quantize_fixed16=*/true, /*frac_bits=*/12);
  const auto preds = nn::argmax_rows(logits);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == test_set.labels[i]) ++hits;
  }
  const double acc =
      static_cast<double>(hits) / static_cast<double>(preds.size());
  std::printf("deployed (16-bit, partitioned on %zu cores): accuracy %.3f\n",
              cores, acc);

  // --- Cross-check the exchanges against the traffic model ----------------
  const auto model = core::traffic_live(deployed, spec, topo, 2);
  const auto dense = core::traffic_dense(spec, topo, 2);
  std::printf("exchanged %zu B per inference (traffic model: %zu B; dense "
              "baseline: %zu B -> %.0f%% traffic rate)\n",
              exec.total_bytes(), model.total_bytes(), dense.total_bytes(),
              100.0 * static_cast<double>(exec.total_bytes()) /
                  static_cast<double>(dense.total_bytes()));
  for (const auto& e : exec.exchanges()) {
    std::printf("  into %-6s %6zu B in %zu transfers\n",
                e.layer_name.c_str(), e.bytes, e.transfers);
  }
  return 0;
}
