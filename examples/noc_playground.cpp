// Drive the flit-level mesh NoC simulator directly: compare traffic
// patterns (neighbor ring, bit-reverse, all-to-all burst, hotspot) on the
// paper's TABLE II configuration, and see how virtual channels and
// physical channels change latency under the all-to-all layer-transition
// burst the parallelized inference produces.

#include <cstdio>
#include <vector>

#include "noc/energy.hpp"
#include "noc/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace ls;
using noc::Message;

std::vector<Message> neighbor_ring(std::size_t cores, std::size_t bytes) {
  std::vector<Message> msgs;
  for (std::size_t s = 0; s < cores; ++s) {
    msgs.push_back({s, (s + 1) % cores, bytes, 0});
  }
  return msgs;
}

std::vector<Message> bit_reverse(std::size_t cores, std::size_t bytes) {
  std::vector<Message> msgs;
  std::size_t bits = 0;
  while ((1u << bits) < cores) ++bits;
  for (std::size_t s = 0; s < cores; ++s) {
    std::size_t d = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (s & (1u << b)) d |= 1u << (bits - 1 - b);
    }
    if (d != s) msgs.push_back({s, d, bytes, 0});
  }
  return msgs;
}

std::vector<Message> all_to_all(std::size_t cores, std::size_t bytes) {
  std::vector<Message> msgs;
  for (std::size_t s = 0; s < cores; ++s) {
    for (std::size_t d = 0; d < cores; ++d) {
      if (s != d) msgs.push_back({s, d, bytes, 0});
    }
  }
  return msgs;
}

std::vector<Message> hotspot(std::size_t cores, std::size_t bytes) {
  std::vector<Message> msgs;
  for (std::size_t s = 1; s < cores; ++s) msgs.push_back({s, 0, bytes, 0});
  return msgs;
}

void run_pattern(const char* name, const std::vector<Message>& msgs,
                 util::Table& table) {
  const noc::MeshTopology topo(4, 4);
  const noc::MeshNocSimulator sim(topo, {});
  const auto stats = sim.run(msgs);
  const auto energy =
      noc::energy_from_stats(stats, {}, topo.num_cores());
  table.add_row({name, std::to_string(msgs.size()),
                 std::to_string(stats.total_flits),
                 std::to_string(stats.completion_cycle),
                 util::fmt_double(stats.avg_packet_latency, 1),
                 util::fmt_double(energy.total_pj() / 1000.0, 2) + " nJ"});
}

}  // namespace

int main() {
  std::puts("NoC playground: 4x4 mesh, TABLE II configuration "
            "(512-bit flits, 20-flit packets, 3 VCs, DOR)\n");

  util::Table patterns("traffic patterns, 4 KiB per message");
  patterns.set_header(
      {"pattern", "messages", "flits", "drain-cycles", "avg-pkt-lat",
       "energy"});
  run_pattern("neighbor-ring", neighbor_ring(16, 4096), patterns);
  run_pattern("bit-reverse", bit_reverse(16, 4096), patterns);
  run_pattern("hotspot->core0", hotspot(16, 4096), patterns);
  run_pattern("all-to-all", all_to_all(16, 4096), patterns);
  patterns.print();

  std::puts("\nSweep: virtual channels and physical channels under the "
            "all-to-all burst");
  util::Table sweep("all-to-all, 4 KiB messages");
  sweep.set_header({"vcs", "phys-channels", "drain-cycles", "avg-pkt-lat"});
  for (std::size_t vcs : {1u, 2u, 3u, 4u}) {
    for (std::size_t phys : {1u, 2u}) {
      noc::NocConfig cfg;
      cfg.vcs = vcs;
      cfg.phys_channels = phys;
      const noc::MeshNocSimulator sim(noc::MeshTopology(4, 4), cfg);
      const auto stats = sim.run(all_to_all(16, 4096));
      sweep.add_row({std::to_string(vcs), std::to_string(phys),
                     std::to_string(stats.completion_cycle),
                     util::fmt_double(stats.avg_packet_latency, 1)});
    }
  }
  sweep.print();

  std::puts("\nReading: the all-to-all layer-transition burst is the worst\n"
            "pattern for the mesh — exactly the traffic traditional\n"
            "parallelization injects at every layer boundary. More VCs and\n"
            "wider links help but cannot change the asymptotics; removing\n"
            "the traffic (grouping / sparsification) can.");
  return 0;
}
