// Train a LeNet-style network with the communication-aware group-Lasso
// (SS_Mask) and visualize what it learned: the per-layer (producer core x
// consumer core) block liveness matrix — the ASCII analogue of the paper's
// Fig. 6(b) "final weights matrix in group-level".
//
// Live blocks ('#') mean core p still sends feature maps to core c; dead
// blocks ('.') mean that link was pruned away in training. Expect the
// diagonal to stay fully alive (free: same-core data), near-diagonal /
// short-hop blocks to survive, and long-hop blocks to die first.

#include <cstdio>

#include "core/traffic.hpp"
#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "train/masks.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

namespace {

void print_block_matrix(const ls::core::LayerGroupSet& set,
                        const ls::noc::MeshTopology& topo) {
  std::printf("\nlayer %s: %zux%zu blocks (producer rows, consumer cols)\n",
              set.layer_name.c_str(), set.cores, set.cores);
  std::printf("    ");
  for (std::size_t c = 0; c < set.cores; ++c) std::printf("%zx", c % 16);
  std::printf("\n");
  for (std::size_t p = 0; p < set.cores; ++p) {
    std::printf("  %zx ", p % 16);
    for (std::size_t c = 0; c < set.cores; ++c) {
      const bool dead = set.block(p, c).empty() || set.block_dead(p, c);
      std::printf("%c", dead ? '.' : '#');
    }
    std::printf("   mean hops of live: ");
    double hops = 0;
    std::size_t live = 0;
    for (std::size_t c = 0; c < set.cores; ++c) {
      if (p != c && !set.block(p, c).empty() && !set.block_dead(p, c)) {
        hops += static_cast<double>(topo.hops(p, c));
        ++live;
      }
    }
    if (live > 0) {
      std::printf("%.2f", hops / static_cast<double>(live));
    } else {
      std::printf("-");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace ls;
  const std::size_t cores = 16;
  const nn::NetSpec spec = nn::lenet_expt_spec();
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);

  const data::Dataset train_set = sim::dataset_for(spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, 2);

  util::Rng rng(42);
  nn::Network net = nn::build_network(spec, rng);
  train::GroupLassoRegularizer reg(core::build_group_sets(net, spec, cores),
                                   train::distance_mask(topo), 0.5);

  train::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.verbose = true;
  std::printf("training %s with SS_Mask group-Lasso on %zu cores...\n",
              spec.name.c_str(), cores);
  const auto report =
      train::train_classifier(net, train_set, test_set, cfg, &reg);

  std::printf("\ntest accuracy %.3f, weight sparsity %.1f%%, %zu blocks "
              "pruned to zero\n",
              report.test_accuracy, 100.0 * report.weight_sparsity,
              report.dead_blocks_killed);

  for (const auto& set : reg.groups()) print_block_matrix(set, topo);

  const auto traffic = core::traffic_live(net, spec, topo, 2);
  const auto dense = core::traffic_dense(spec, topo, 2);
  std::printf("\nNoC traffic: %zu bytes live vs %zu dense (%.0f%% rate)\n",
              traffic.total_bytes(), dense.total_bytes(),
              100.0 * static_cast<double>(traffic.total_bytes()) /
                  static_cast<double>(dense.total_bytes()));
  return 0;
}
