// Quickstart: train a small MLP with communication-aware group-Lasso
// sparsification (the paper's SS_Mask scheme), then simulate a partitioned
// single-pass inference on a 16-core mesh CMP and compare against the
// traditional-parallelization baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/traffic.hpp"
#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "train/masks.hpp"
#include "util/table.hpp"

int main() {
  using namespace ls;

  // 1. Pick an architecture and a dataset. The spec describes layer shapes;
  //    the dataset is a deterministic synthetic stand-in for MNIST.
  const nn::NetSpec spec = nn::mlp_expt_spec();
  const data::Dataset train_set = sim::dataset_for(spec, 768, /*seed=*/1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, /*seed=*/2);

  // 2. Configure the experiment: 16 cores, a short training run, moderate
  //    group-Lasso strength.
  sim::ExperimentConfig cfg;
  cfg.cores = 16;
  cfg.train.epochs = 5;
  cfg.train.batch_size = 32;
  cfg.lambda_ss = 0.6;   // group-Lasso strength; see bench_ablation_lasso
  cfg.lambda_mask = 0.6; // for the sensitivity of the trade-off
  cfg.verbose = true;

  // 3. Run the three schemes: dense baseline, SS, SS_Mask.
  const auto outcomes =
      sim::run_sparsified_experiment(spec, train_set, test_set, cfg);

  // 4. Report like the paper's TABLE IV.
  util::Table table("quickstart: MLP on 16-core mesh CMP");
  table.set_header({"scheme", "accuracy", "traffic", "speedup", "noc-energy"});
  for (const auto& o : outcomes) {
    table.add_row({o.scheme, util::fmt_percent(o.accuracy, 1),
                   util::fmt_percent(o.traffic_rate),
                   util::fmt_speedup(o.speedup),
                   "-" + util::fmt_percent(o.comm_energy_reduction)});
  }
  table.print();

  std::printf(
      "\nThe SS_Mask scheme should show the best speedup at baseline-level "
      "accuracy:\nthe distance-weighted group Lasso prunes long-distance "
      "core-to-core weight\nblocks first, so whatever traffic survives flows "
      "only between nearby cores\n(compare the two schemes' NoC energy per "
      "transmitted byte).\n");
  return 0;
}
