
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm_volume.cpp" "src/core/CMakeFiles/ls_core.dir/comm_volume.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/comm_volume.cpp.o.d"
  "/root/repo/src/core/grouping.cpp" "src/core/CMakeFiles/ls_core.dir/grouping.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/grouping.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/ls_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/partitioned_inference.cpp" "src/core/CMakeFiles/ls_core.dir/partitioned_inference.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/partitioned_inference.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/ls_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/ls_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/traffic.cpp" "src/core/CMakeFiles/ls_core.dir/traffic.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/traffic.cpp.o.d"
  "/root/repo/src/core/weight_groups.cpp" "src/core/CMakeFiles/ls_core.dir/weight_groups.cpp.o" "gcc" "src/core/CMakeFiles/ls_core.dir/weight_groups.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ls_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ls_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
