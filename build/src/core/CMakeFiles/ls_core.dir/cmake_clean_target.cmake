file(REMOVE_RECURSE
  "libls_core.a"
)
