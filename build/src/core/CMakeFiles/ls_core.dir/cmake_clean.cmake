file(REMOVE_RECURSE
  "CMakeFiles/ls_core.dir/comm_volume.cpp.o"
  "CMakeFiles/ls_core.dir/comm_volume.cpp.o.d"
  "CMakeFiles/ls_core.dir/grouping.cpp.o"
  "CMakeFiles/ls_core.dir/grouping.cpp.o.d"
  "CMakeFiles/ls_core.dir/partition.cpp.o"
  "CMakeFiles/ls_core.dir/partition.cpp.o.d"
  "CMakeFiles/ls_core.dir/partitioned_inference.cpp.o"
  "CMakeFiles/ls_core.dir/partitioned_inference.cpp.o.d"
  "CMakeFiles/ls_core.dir/pipeline.cpp.o"
  "CMakeFiles/ls_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ls_core.dir/placement.cpp.o"
  "CMakeFiles/ls_core.dir/placement.cpp.o.d"
  "CMakeFiles/ls_core.dir/traffic.cpp.o"
  "CMakeFiles/ls_core.dir/traffic.cpp.o.d"
  "CMakeFiles/ls_core.dir/weight_groups.cpp.o"
  "CMakeFiles/ls_core.dir/weight_groups.cpp.o.d"
  "libls_core.a"
  "libls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
