file(REMOVE_RECURSE
  "CMakeFiles/ls_sim.dir/experiment.cpp.o"
  "CMakeFiles/ls_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/ls_sim.dir/pipeline_model.cpp.o"
  "CMakeFiles/ls_sim.dir/pipeline_model.cpp.o.d"
  "CMakeFiles/ls_sim.dir/system.cpp.o"
  "CMakeFiles/ls_sim.dir/system.cpp.o.d"
  "libls_sim.a"
  "libls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
