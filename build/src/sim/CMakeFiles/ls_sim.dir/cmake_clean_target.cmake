file(REMOVE_RECURSE
  "libls_sim.a"
)
