file(REMOVE_RECURSE
  "CMakeFiles/ls_train.dir/group_lasso.cpp.o"
  "CMakeFiles/ls_train.dir/group_lasso.cpp.o.d"
  "CMakeFiles/ls_train.dir/masks.cpp.o"
  "CMakeFiles/ls_train.dir/masks.cpp.o.d"
  "CMakeFiles/ls_train.dir/sgd.cpp.o"
  "CMakeFiles/ls_train.dir/sgd.cpp.o.d"
  "CMakeFiles/ls_train.dir/trainer.cpp.o"
  "CMakeFiles/ls_train.dir/trainer.cpp.o.d"
  "libls_train.a"
  "libls_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
