
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/group_lasso.cpp" "src/train/CMakeFiles/ls_train.dir/group_lasso.cpp.o" "gcc" "src/train/CMakeFiles/ls_train.dir/group_lasso.cpp.o.d"
  "/root/repo/src/train/masks.cpp" "src/train/CMakeFiles/ls_train.dir/masks.cpp.o" "gcc" "src/train/CMakeFiles/ls_train.dir/masks.cpp.o.d"
  "/root/repo/src/train/sgd.cpp" "src/train/CMakeFiles/ls_train.dir/sgd.cpp.o" "gcc" "src/train/CMakeFiles/ls_train.dir/sgd.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/ls_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/ls_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ls_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ls_data.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ls_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
