# Empty dependencies file for ls_train.
# This may be replaced when dependencies are built.
