file(REMOVE_RECURSE
  "libls_train.a"
)
