file(REMOVE_RECURSE
  "CMakeFiles/ls_noc.dir/energy.cpp.o"
  "CMakeFiles/ls_noc.dir/energy.cpp.o.d"
  "CMakeFiles/ls_noc.dir/simulator.cpp.o"
  "CMakeFiles/ls_noc.dir/simulator.cpp.o.d"
  "CMakeFiles/ls_noc.dir/topology.cpp.o"
  "CMakeFiles/ls_noc.dir/topology.cpp.o.d"
  "libls_noc.a"
  "libls_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
