# Empty compiler generated dependencies file for ls_noc.
# This may be replaced when dependencies are built.
