file(REMOVE_RECURSE
  "libls_noc.a"
)
