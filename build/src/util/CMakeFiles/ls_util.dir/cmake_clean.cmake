file(REMOVE_RECURSE
  "CMakeFiles/ls_util.dir/log.cpp.o"
  "CMakeFiles/ls_util.dir/log.cpp.o.d"
  "CMakeFiles/ls_util.dir/rng.cpp.o"
  "CMakeFiles/ls_util.dir/rng.cpp.o.d"
  "CMakeFiles/ls_util.dir/stats.cpp.o"
  "CMakeFiles/ls_util.dir/stats.cpp.o.d"
  "CMakeFiles/ls_util.dir/table.cpp.o"
  "CMakeFiles/ls_util.dir/table.cpp.o.d"
  "libls_util.a"
  "libls_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
