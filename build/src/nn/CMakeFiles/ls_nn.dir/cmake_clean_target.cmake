file(REMOVE_RECURSE
  "libls_nn.a"
)
