file(REMOVE_RECURSE
  "CMakeFiles/ls_nn.dir/activations.cpp.o"
  "CMakeFiles/ls_nn.dir/activations.cpp.o.d"
  "CMakeFiles/ls_nn.dir/conv2d.cpp.o"
  "CMakeFiles/ls_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/ls_nn.dir/fc.cpp.o"
  "CMakeFiles/ls_nn.dir/fc.cpp.o.d"
  "CMakeFiles/ls_nn.dir/layer_spec.cpp.o"
  "CMakeFiles/ls_nn.dir/layer_spec.cpp.o.d"
  "CMakeFiles/ls_nn.dir/loss.cpp.o"
  "CMakeFiles/ls_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ls_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/ls_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/ls_nn.dir/network.cpp.o"
  "CMakeFiles/ls_nn.dir/network.cpp.o.d"
  "CMakeFiles/ls_nn.dir/pool.cpp.o"
  "CMakeFiles/ls_nn.dir/pool.cpp.o.d"
  "CMakeFiles/ls_nn.dir/serialize.cpp.o"
  "CMakeFiles/ls_nn.dir/serialize.cpp.o.d"
  "libls_nn.a"
  "libls_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
