
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/ls_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/ls_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/fc.cpp" "src/nn/CMakeFiles/ls_nn.dir/fc.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/fc.cpp.o.d"
  "/root/repo/src/nn/layer_spec.cpp" "src/nn/CMakeFiles/ls_nn.dir/layer_spec.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/layer_spec.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/ls_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/ls_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/ls_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/ls_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/ls_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/ls_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
