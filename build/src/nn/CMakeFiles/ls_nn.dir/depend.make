# Empty dependencies file for ls_nn.
# This may be replaced when dependencies are built.
