file(REMOVE_RECURSE
  "CMakeFiles/ls_data.dir/dataset.cpp.o"
  "CMakeFiles/ls_data.dir/dataset.cpp.o.d"
  "libls_data.a"
  "libls_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
