# Empty compiler generated dependencies file for ls_data.
# This may be replaced when dependencies are built.
