file(REMOVE_RECURSE
  "CMakeFiles/ls_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ls_tensor.dir/tensor.cpp.o.d"
  "libls_tensor.a"
  "libls_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
