file(REMOVE_RECURSE
  "libls_tensor.a"
)
