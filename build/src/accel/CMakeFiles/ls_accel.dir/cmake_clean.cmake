file(REMOVE_RECURSE
  "CMakeFiles/ls_accel.dir/core_model.cpp.o"
  "CMakeFiles/ls_accel.dir/core_model.cpp.o.d"
  "libls_accel.a"
  "libls_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
