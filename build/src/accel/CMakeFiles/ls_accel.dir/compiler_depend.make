# Empty compiler generated dependencies file for ls_accel.
# This may be replaced when dependencies are built.
