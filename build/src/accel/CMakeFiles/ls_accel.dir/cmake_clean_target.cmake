file(REMOVE_RECURSE
  "libls_accel.a"
)
