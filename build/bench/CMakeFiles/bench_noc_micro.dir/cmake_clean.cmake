file(REMOVE_RECURSE
  "CMakeFiles/bench_noc_micro.dir/bench_noc_micro.cpp.o"
  "CMakeFiles/bench_noc_micro.dir/bench_noc_micro.cpp.o.d"
  "bench_noc_micro"
  "bench_noc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
