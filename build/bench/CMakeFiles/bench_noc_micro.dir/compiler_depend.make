# Empty compiler generated dependencies file for bench_noc_micro.
# This may be replaced when dependencies are built.
