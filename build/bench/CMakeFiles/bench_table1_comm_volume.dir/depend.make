# Empty dependencies file for bench_table1_comm_volume.
# This may be replaced when dependencies are built.
