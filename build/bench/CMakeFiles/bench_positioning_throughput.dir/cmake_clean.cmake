file(REMOVE_RECURSE
  "CMakeFiles/bench_positioning_throughput.dir/bench_positioning_throughput.cpp.o"
  "CMakeFiles/bench_positioning_throughput.dir/bench_positioning_throughput.cpp.o.d"
  "bench_positioning_throughput"
  "bench_positioning_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_positioning_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
