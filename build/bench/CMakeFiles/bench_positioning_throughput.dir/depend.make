# Empty dependencies file for bench_positioning_throughput.
# This may be replaced when dependencies are built.
