# Empty dependencies file for bench_motivation_comm_share.
# This may be replaced when dependencies are built.
