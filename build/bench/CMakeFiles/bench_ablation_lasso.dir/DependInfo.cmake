
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_lasso.cpp" "bench/CMakeFiles/bench_ablation_lasso.dir/bench_ablation_lasso.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_lasso.dir/bench_ablation_lasso.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/ls_train.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/ls_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ls_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ls_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ls_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
