# Empty compiler generated dependencies file for bench_ablation_lasso.
# This may be replaced when dependencies are built.
