file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lasso.dir/bench_ablation_lasso.cpp.o"
  "CMakeFiles/bench_ablation_lasso.dir/bench_ablation_lasso.cpp.o.d"
  "bench_ablation_lasso"
  "bench_ablation_lasso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lasso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
