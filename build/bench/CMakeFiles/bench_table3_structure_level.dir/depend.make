# Empty dependencies file for bench_table3_structure_level.
# This may be replaced when dependencies are built.
