file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_structure_level.dir/bench_table3_structure_level.cpp.o"
  "CMakeFiles/bench_table3_structure_level.dir/bench_table3_structure_level.cpp.o.d"
  "bench_table3_structure_level"
  "bench_table3_structure_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_structure_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
