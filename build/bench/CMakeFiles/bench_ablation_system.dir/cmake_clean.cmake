file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_system.dir/bench_ablation_system.cpp.o"
  "CMakeFiles/bench_ablation_system.dir/bench_ablation_system.cpp.o.d"
  "bench_ablation_system"
  "bench_ablation_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
