# Empty dependencies file for bench_pipeline_vs_intra.
# This may be replaced when dependencies are built.
