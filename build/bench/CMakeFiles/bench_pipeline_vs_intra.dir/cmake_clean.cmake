file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_vs_intra.dir/bench_pipeline_vs_intra.cpp.o"
  "CMakeFiles/bench_pipeline_vs_intra.dir/bench_pipeline_vs_intra.cpp.o.d"
  "bench_pipeline_vs_intra"
  "bench_pipeline_vs_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_vs_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
