file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_structure_energy.dir/bench_fig7_structure_energy.cpp.o"
  "CMakeFiles/bench_fig7_structure_energy.dir/bench_fig7_structure_energy.cpp.o.d"
  "bench_fig7_structure_energy"
  "bench_fig7_structure_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_structure_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
