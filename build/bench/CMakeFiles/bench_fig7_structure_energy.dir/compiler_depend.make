# Empty compiler generated dependencies file for bench_fig7_structure_energy.
# This may be replaced when dependencies are built.
