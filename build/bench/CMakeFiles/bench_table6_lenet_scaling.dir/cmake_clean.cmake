file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_lenet_scaling.dir/bench_table6_lenet_scaling.cpp.o"
  "CMakeFiles/bench_table6_lenet_scaling.dir/bench_table6_lenet_scaling.cpp.o.d"
  "bench_table6_lenet_scaling"
  "bench_table6_lenet_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_lenet_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
