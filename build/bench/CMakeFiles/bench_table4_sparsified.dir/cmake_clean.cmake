file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sparsified.dir/bench_table4_sparsified.cpp.o"
  "CMakeFiles/bench_table4_sparsified.dir/bench_table4_sparsified.cpp.o.d"
  "bench_table4_sparsified"
  "bench_table4_sparsified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sparsified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
