# Empty dependencies file for bench_table4_sparsified.
# This may be replaced when dependencies are built.
