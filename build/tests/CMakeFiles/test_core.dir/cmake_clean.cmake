file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/comm_volume_grouping_test.cpp.o"
  "CMakeFiles/test_core.dir/core/comm_volume_grouping_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/partition_test.cpp.o"
  "CMakeFiles/test_core.dir/core/partition_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/partitioned_inference_test.cpp.o"
  "CMakeFiles/test_core.dir/core/partitioned_inference_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pipeline_placement_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pipeline_placement_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/traffic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/traffic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/weight_groups_test.cpp.o"
  "CMakeFiles/test_core.dir/core/weight_groups_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
