file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/conv2d_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/conv2d_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/conv_property_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/conv_property_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/fc_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/fc_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/layer_spec_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/layer_spec_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/loss_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/loss_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/model_build_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/model_build_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/network_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/network_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/pool_activation_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/pool_activation_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/serialize_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/serialize_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
