file(REMOVE_RECURSE
  "CMakeFiles/noc_playground.dir/noc_playground.cpp.o"
  "CMakeFiles/noc_playground.dir/noc_playground.cpp.o.d"
  "noc_playground"
  "noc_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
