file(REMOVE_RECURSE
  "CMakeFiles/sparsify_train.dir/sparsify_train.cpp.o"
  "CMakeFiles/sparsify_train.dir/sparsify_train.cpp.o.d"
  "sparsify_train"
  "sparsify_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsify_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
