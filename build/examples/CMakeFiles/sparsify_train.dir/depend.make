# Empty dependencies file for sparsify_train.
# This may be replaced when dependencies are built.
