# Empty compiler generated dependencies file for scale_out_study.
# This may be replaced when dependencies are built.
