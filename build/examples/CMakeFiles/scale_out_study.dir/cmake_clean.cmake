file(REMOVE_RECURSE
  "CMakeFiles/scale_out_study.dir/scale_out_study.cpp.o"
  "CMakeFiles/scale_out_study.dir/scale_out_study.cpp.o.d"
  "scale_out_study"
  "scale_out_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_out_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
