# Empty dependencies file for deploy_checkpoint.
# This may be replaced when dependencies are built.
