file(REMOVE_RECURSE
  "CMakeFiles/deploy_checkpoint.dir/deploy_checkpoint.cpp.o"
  "CMakeFiles/deploy_checkpoint.dir/deploy_checkpoint.cpp.o.d"
  "deploy_checkpoint"
  "deploy_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
