# Empty dependencies file for debug_lasso.
# This may be replaced when dependencies are built.
