file(REMOVE_RECURSE
  "CMakeFiles/debug_lasso.dir/debug_lasso.cpp.o"
  "CMakeFiles/debug_lasso.dir/debug_lasso.cpp.o.d"
  "debug_lasso"
  "debug_lasso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_lasso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
