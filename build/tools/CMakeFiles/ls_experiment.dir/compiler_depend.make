# Empty compiler generated dependencies file for ls_experiment.
# This may be replaced when dependencies are built.
