file(REMOVE_RECURSE
  "CMakeFiles/ls_experiment.dir/ls_experiment.cpp.o"
  "CMakeFiles/ls_experiment.dir/ls_experiment.cpp.o.d"
  "ls_experiment"
  "ls_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
