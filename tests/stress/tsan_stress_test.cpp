// Thread-sanitizer stress suite (ctest label `stress`; CI runs it under
// -DLS_SAN=thread). Hammers every cross-thread seam the fast paths share:
//
//   * concurrent *external* parallel_for callers — the pool runs one job at
//     a time and overflow callers fall back to inline serial execution, so
//     results must stay bit-identical to a serial run;
//   * concurrent NocRunCache lookups on hot and cold keys;
//   * whole CmpSystem::run_inference calls racing on two threads (pool
//     dispatch + burst cache + obs counters all exercised at once);
//   * concurrent block-sparse forwards on per-thread layers over the shared
//     pool;
//   * concurrent data-parallel training runs (replica fan-out + serial
//     reduction) contending for the shared pool;
//   * concurrent streamed executions each accumulating a private
//     StreamTimeline and attributing blame over it.
//
// The suite also runs (and must pass) unsanitized — the assertions pin the
// determinism contract the sanitizer jobs then prove race-free.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "core/traffic.hpp"
#include "data/dataset.hpp"
#include "nn/fc.hpp"
#include "nn/model_zoo.hpp"
#include "noc/sim_cache.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "prof/attribution.hpp"
#include "sched/schedule.hpp"
#include "sim/system.hpp"
#include "tensor/tensor.hpp"
#include "train/data_parallel.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ls {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(TsanStress, ConcurrentExternalParallelFor) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kItems = 2048;
  constexpr std::size_t kRounds = 8;

  std::vector<std::vector<double>> results(kThreads,
                                           std::vector<double>(kItems, 0.0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        util::parallel_for(0, kItems, [&](std::size_t i) {
          results[t][i] = static_cast<double>(i) * 1.5 + 1.0;
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(results[t][i], static_cast<double>(i) * 1.5 + 1.0)
          << "thread " << t << " item " << i;
    }
  }
}

TEST(TsanStress, ConcurrentNocRunCache) {
  noc::NocRunCache::instance().clear();
  const auto topo = noc::MeshTopology::for_cores(16);
  const noc::MeshNocSimulator sim(topo, noc::NocConfig{});

  // A few distinct bursts: every thread sweeps all of them repeatedly, so
  // the cache sees racing cold misses and hot hits on the same keys.
  std::vector<std::vector<noc::Message>> bursts;
  for (std::size_t b = 0; b < 4; ++b) {
    std::vector<noc::Message> msgs;
    for (std::size_t s = 0; s < 8; ++s) {
      msgs.push_back({s, (s + 3 + b) % 16, 64 * (b + 1) + 32 * s, 0});
    }
    bursts.push_back(std::move(msgs));
  }
  std::vector<noc::NocStats> expected;
  expected.reserve(bursts.size());
  for (const auto& msgs : bursts) expected.push_back(sim.run(msgs));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 16;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &bursts, &expected, &sim, &ok] {
      bool all_match = true;
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t b = 0; b < bursts.size(); ++b) {
          const noc::NocStats got =
              noc::NocRunCache::instance().run(sim, bursts[b]);
          all_match = all_match && got == expected[b];
        }
      }
      ok[t] = all_match;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t << " saw a mismatched cached stat";
  }
}

TEST(TsanStress, ConcurrentSystemRuns) {
  noc::NocRunCache::instance().clear();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);

  const sim::InferenceResult serial = system.run_inference(spec, traffic);

  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kRounds = 4;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &system, &spec, &traffic, &serial, &ok] {
      bool all_match = true;
      for (std::size_t round = 0; round < kRounds; ++round) {
        const sim::InferenceResult r = system.run_inference(spec, traffic);
        all_match = all_match && r.total_cycles == serial.total_cycles &&
                    r.compute_cycles == serial.compute_cycles &&
                    r.comm_cycles == serial.comm_cycles &&
                    r.traffic_bytes == serial.traffic_bytes;
      }
      ok[t] = all_match;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t << " diverged from the serial run";
  }
}

TEST(TsanStress, ConcurrentSparseForwards) {
  // One armed FC per thread (BlockSparsity::map is per-layer and not
  // thread-safe by contract); the racing surface is the shared pool the
  // sparse GEMMs fan out on.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 8;
  const Tensor in(Shape{4, 64}, 0.25f);

  std::vector<std::unique_ptr<nn::FullyConnected>> layers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    util::Rng rng(100 + t);
    auto fc = std::make_unique<nn::FullyConnected>("fc_stress", 64, 32, rng,
                                                   /*bias=*/false);
    fc->set_sparsity_partition(/*parts=*/4, /*in_units=*/8);
    // Prune block (p=0, c=0): rows 0..8 x cols 0..16 of the {32, 64} weight.
    for (std::size_t oc = 0; oc < 8; ++oc) {
      for (std::size_t k = 0; k < 16; ++k) {
        fc->weight().value.at2(oc, k) = 0.0f;
      }
    }
    fc->weight().bump();
    layers.push_back(std::move(fc));
  }

  std::vector<Tensor> first(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    first[t] = layers[t]->forward(in, false);
  }

  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &layers, &in, &first, &ok] {
      bool all_match = true;
      for (std::size_t round = 0; round < kRounds; ++round) {
        const Tensor out = layers[t]->forward(in, false);
        bool same = out.shape() == first[t].shape();
        for (std::size_t i = 0; same && i < out.numel(); ++i) {
          same = out[i] == first[t][i];
        }
        all_match = all_match && same;
      }
      ok[t] = all_match;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t << " sparse forward diverged";
  }
}

TEST(TsanStress, ConcurrentDataParallelTraining) {
  // PR 8 seam: each caller's replicas fan their shards out over the shared
  // pool while the reduction and optimizer step stay caller-serial. Racing
  // whole training runs hammers pool handoff on both sides; the trained
  // weights must still be byte-identical to an uncontended run.
  constexpr std::size_t kThreads = 3;

  nn::NetSpec spec;
  spec.name = "stress_tiny";
  spec.dataset = "stress_tiny";
  spec.input = {1, 8, 8};
  spec.layers = {nn::LayerSpec::conv("c1", 4, 3, 1, 1),
                 nn::LayerSpec::relu("r0"), nn::LayerSpec::flatten("flat"),
                 nn::LayerSpec::fc("fc1", 16), nn::LayerSpec::relu("r1"),
                 nn::LayerSpec::fc("fc2", 4)};

  data::SyntheticSpec syn;
  syn.num_classes = 4;
  syn.channels = 1;
  syn.height = 8;
  syn.width = 8;
  syn.samples = 48;
  syn.seed = 5;
  syn.sample_seed = 1;
  const data::Dataset train_set = data::make_synthetic(syn);
  syn.sample_seed = 2;
  const data::Dataset test_set = data::make_synthetic(syn);

  train::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  cfg.replicas = 2;

  const auto run_once = [&] {
    util::Rng rng(3);
    nn::Network net = nn::build_network(spec, rng);
    train::train_classifier_parallel(spec, net, train_set, test_set, cfg);
    std::vector<float> flat;
    for (nn::Param* p : net.params()) {
      flat.insert(flat.end(), p->value.data(),
                  p->value.data() + p->value.numel());
    }
    return flat;
  };
  const std::vector<float> reference = run_once();

  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &run_once, &reference, &ok] {
      const std::vector<float> got = run_once();
      ok[t] = got.size() == reference.size() &&
              std::memcmp(got.data(), reference.data(),
                          got.size() * sizeof(float)) == 0;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t
                       << " trained different bytes under contention";
  }
}

TEST(TsanStress, ConcurrentStreamTimelineAttribution) {
  // PR 7 seam: run_stream appends to a caller-owned StreamTimeline while
  // the shared CmpSystem (pool, burst cache) is raced by other streams.
  // Every private timeline must attribute to the same makespan and blame
  // split as an uncontended run.
  noc::NocRunCache::instance().clear();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);

  constexpr std::size_t kRequests = 6;
  sim::StreamTimeline ref_tl;
  system.run_stream(schedule, kRequests, 0, &ref_tl);
  const prof::StreamAttribution ref = prof::attribute_stream(schedule, ref_tl);

  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kRounds = 4;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &system, &schedule, &ref, &ok] {
      bool all_match = true;
      for (std::size_t round = 0; round < kRounds; ++round) {
        sim::StreamTimeline tl;
        system.run_stream(schedule, kRequests, 0, &tl);
        const prof::StreamAttribution a =
            prof::attribute_stream(schedule, tl);
        all_match = all_match && a.makespan_cycles == ref.makespan_cycles &&
                    a.blame.total() == ref.blame.total() &&
                    a.blame.compute_cycles == ref.blame.compute_cycles &&
                    a.blame.noc_cycles == ref.blame.noc_cycles &&
                    a.critical_chain == ref.critical_chain;
      }
      ok[t] = all_match;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[t]) << "thread " << t
                       << " attribution diverged under contention";
  }
}

}  // namespace
}  // namespace ls
