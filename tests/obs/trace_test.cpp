#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

namespace ls::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Trace, DisabledByDefaultAndSpansInert) {
  Tracer& tr = Tracer::instance();
  tr.stop();
  tr.clear();
  EXPECT_FALSE(trace_enabled());
  {
    Span s("noop", "test");  // not armed while disabled
    Span s2;
    if (trace_enabled()) s2.begin("never", "test");
  }
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST(Trace, SpanRecordsCompleteEvent) {
  Tracer& tr = Tracer::instance();
  tr.start("");  // in-memory capture
  EXPECT_TRUE(trace_enabled());
  {
    Span s;
    if (trace_enabled()) s.begin("unit.span", "test", "{\"k\":1}");
  }
  tr.stop();
  EXPECT_GE(tr.event_count(), 1u);
  tr.clear();
}

TEST(Trace, StartClearsPreviousEvents) {
  Tracer& tr = Tracer::instance();
  tr.start("");
  tr.complete("stale", "test", 0, 1, kWallPid, 0);
  ASSERT_GE(tr.event_count(), 1u);
  tr.start("");
  EXPECT_EQ(tr.event_count(), 0u);
  tr.stop();
}

TEST(Trace, WriteWithoutPathFails) {
  Tracer& tr = Tracer::instance();
  tr.start("");
  tr.stop();
  EXPECT_FALSE(tr.write());
  tr.clear();
}

TEST(Trace, WriteEmitsChromeTraceJson) {
  Tracer& tr = Tracer::instance();
  tr.start("");
  tr.complete("layerA", "compute", 10, 20, kSimPid, 3, "{\"flits\":7}");
  tr.complete("burstA", "noc.burst", 0, 10, kSimPid, 16);
  tr.set_virtual_thread_name(kSimPid, 3, "core-3");
  tr.stop();

  const std::string path = testing::TempDir() + "trace_test_out.json";
  ASSERT_TRUE(tr.write(path));
  const std::string doc = slurp(path);

  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Process metadata for both time domains and the named virtual thread.
  EXPECT_NE(doc.find("wall-clock"), std::string::npos);
  EXPECT_NE(doc.find("sim-cycles"), std::string::npos);
  EXPECT_NE(doc.find("core-3"), std::string::npos);
  // The complete events with verbatim args.
  EXPECT_NE(doc.find("\"name\":\"layerA\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("{\"flits\":7}"), std::string::npos);
  // Structurally balanced (no string content here contains braces).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
  tr.clear();
}

TEST(Trace, CounterAndFlowEventsEmitChromeTracePhases) {
  Tracer& tr = Tracer::instance();
  tr.start("");
  tr.counter("stream.inflight", "stream", 5, 2.0, kSimPid);
  // Both edges of one flow arrow, landing inside complete events on
  // their tracks (the viewer's binding requirement).
  tr.complete("burst", "noc.burst", 0, 10, kSimPid, 16);
  tr.complete("layer", "compute", 10, 20, kSimPid, 3);
  tr.flow(true, "stream.req0", "stream", 9, 77, kSimPid, 16);
  tr.flow(false, "stream.req0", "stream", 10, 77, kSimPid, 3);
  tr.stop();

  const std::string path = testing::TempDir() + "trace_counter_flow.json";
  ASSERT_TRUE(tr.write(path));
  const std::string doc = slurp(path);

  // Counter sample: "ph":"C", value in args, no tid (counters are
  // process-scoped tracks).
  const std::size_t cpos = doc.find("\"name\":\"stream.inflight\"");
  ASSERT_NE(cpos, std::string::npos);
  const std::string crec = doc.substr(cpos, doc.find('}', cpos) - cpos + 1);
  EXPECT_NE(crec.find("\"ph\":\"C\""), std::string::npos) << crec;
  EXPECT_NE(crec.find("\"value\":2"), std::string::npos) << crec;
  EXPECT_EQ(crec.find("\"tid\""), std::string::npos) << crec;

  // Flow edges: matching id, "ph":"s" start and "ph":"f" finish with the
  // enclosing-slice binding point.
  EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);
  const std::size_t fpos = doc.find("\"ph\":\"f\"");
  ASSERT_NE(fpos, std::string::npos);
  const std::string frec = doc.substr(fpos, doc.find('}', fpos) - fpos + 1);
  EXPECT_NE(frec.find("\"bp\":\"e\""), std::string::npos) << frec;
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  tr.clear();
}

TEST(Trace, ReArmedSpanClosesPreviousInterval) {
  Tracer& tr = Tracer::instance();
  tr.start("");
  Span s;
  s.begin("first", "test");
  s.begin("second", "test");  // should record "first" before re-arming
  s.end();
  tr.stop();
  EXPECT_GE(tr.event_count(), 2u);
  tr.clear();
}

}  // namespace
}  // namespace ls::obs
