#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

namespace ls::obs {
namespace {

TEST(Metrics, CounterIncrementsAndSameNameIsSameInstance) {
  Registry& reg = Registry::instance();
  reg.reset();
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.inc();
  a.inc(4);
  EXPECT_EQ(b.value(), 5u);
}

TEST(Metrics, GaugeStoresDoubles) {
  Registry& reg = Registry::instance();
  Gauge& g = reg.gauge("test.gauge");
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(Metrics, HistogramSummaryAndBins) {
  Registry& reg = Registry::instance();
  HistogramMetric& h = reg.histogram("test.hist", 0.0, 10.0, 5);
  for (double v : {1.0, 3.0, 5.0, 20.0}) h.observe(v);
  const util::RunningStats s = h.summary();
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  const auto bins = h.bins();
  ASSERT_TRUE(bins.has_value());
  EXPECT_EQ(bins->overflow(), 1u);
  EXPECT_EQ(bins->bin_count(0), 1u);  // 1.0
  EXPECT_EQ(bins->bin_count(1), 1u);  // 3.0
  EXPECT_EQ(bins->bin_count(2), 1u);  // 5.0
}

TEST(Metrics, QuantilesInterpolateWithinBins) {
  Registry& reg = Registry::instance();
  reg.reset();
  HistogramMetric& h = reg.histogram("test.quant", 0.0, 100.0, 10);
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  // Uniform fill: binned interpolation lands within one bin width of the
  // exact order statistic.
  ASSERT_TRUE(h.quantile(0.50).has_value());
  EXPECT_NEAR(*h.quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(*h.quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(*h.quantile(0.99), 99.0, 10.0);
  EXPECT_LE(*h.quantile(0.50), *h.quantile(0.95));
  EXPECT_LE(*h.quantile(0.95), *h.quantile(0.99));
}

TEST(Metrics, QuantileOnEmptyHistogramIsEmpty) {
  Registry& reg = Registry::instance();
  reg.reset();
  HistogramMetric& h = reg.histogram("test.quant.empty", 0.0, 1.0, 4);
  EXPECT_FALSE(h.quantile(0.5).has_value());
  EXPECT_FALSE(h.quantile(0.99).has_value());
  // And the JSON export omits the percentile keys rather than inventing
  // values.
  EXPECT_EQ(reg.to_json().find("\"p50\""), std::string::npos);
}

TEST(Metrics, QuantileOnSingleSampleIsThatSample) {
  Registry& reg = Registry::instance();
  reg.reset();
  HistogramMetric& h = reg.histogram("test.quant.one", 0.0, 100.0, 10);
  h.observe(42.0);
  // Interpolation inside the lone bin is clamped to the observed value:
  // every quantile of a one-sample distribution is that sample.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    ASSERT_TRUE(h.quantile(q).has_value()) << q;
    EXPECT_DOUBLE_EQ(*h.quantile(q), 42.0) << q;
  }
}

TEST(Metrics, QuantileClampsOutOfRangeMassToObservedExtrema) {
  Registry& reg = Registry::instance();
  reg.reset();
  HistogramMetric& h = reg.histogram("test.quant.range", 10.0, 20.0, 4);
  h.observe(-5.0);  // underflow bucket
  h.observe(15.0);
  h.observe(99.0);  // overflow bucket
  // Low quantiles resolve to the underflow mass, high to the overflow —
  // but always clamped to what was actually observed, never the bin
  // edges.
  EXPECT_DOUBLE_EQ(*h.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(*h.quantile(1.0), 99.0);
  const double mid = *h.quantile(0.5);
  EXPECT_GE(mid, -5.0);
  EXPECT_LE(mid, 99.0);
}

TEST(Metrics, JsonExportCarriesPercentiles) {
  Registry& reg = Registry::instance();
  reg.reset();
  HistogramMetric& h = reg.histogram("test.quant.json", 0.0, 10.0, 5);
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.observe(v);
  const std::string doc = reg.to_json();
  EXPECT_NE(doc.find("\"p50\""), std::string::npos);
  EXPECT_NE(doc.find("\"p95\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
  reg.reset();
}

TEST(Metrics, ResetZeroesButKeepsReferencesValid) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("test.reset.counter");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // the reference must survive reset()
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(reg.counter("test.reset.counter").value(), 1u);
}

TEST(Metrics, LinkHeatmapAccumulatesAndResetsOnShapeChange) {
  Registry& reg = Registry::instance();
  reg.reset();

  // 2x1 mesh: 2 routers * kLinkPorts entries.
  std::vector<std::uint64_t> burst(2 * kLinkPorts, 0);
  burst[0 * kLinkPorts + 4] = 3;  // router 0, east
  burst[1 * kLinkPorts + 3] = 2;  // router 1, west
  reg.accumulate_link_flits(2, 1, burst);
  reg.accumulate_link_flits(2, 1, burst);

  LinkHeatmap hm = reg.link_heatmap();
  EXPECT_EQ(hm.cols, 2u);
  EXPECT_EQ(hm.rows, 1u);
  ASSERT_EQ(hm.flits.size(), 2 * kLinkPorts);
  EXPECT_EQ(hm.flits[0 * kLinkPorts + 4], 6u);
  EXPECT_EQ(hm.flits[1 * kLinkPorts + 3], 4u);
  EXPECT_EQ(hm.router_total(0), 6u);
  EXPECT_EQ(hm.router_total(1), 4u);

  // Different mesh shape starts a fresh accumulation.
  std::vector<std::uint64_t> single(1 * kLinkPorts, 1);
  reg.accumulate_link_flits(1, 1, single);
  hm = reg.link_heatmap();
  EXPECT_EQ(hm.cols, 1u);
  EXPECT_EQ(hm.rows, 1u);
  EXPECT_EQ(hm.router_total(0), kLinkPorts);
  reg.reset();
}

TEST(Metrics, ToJsonContainsEverySection) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("json.counter").inc(3);
  reg.gauge("json.gauge").set(1.5);
  reg.histogram("json.hist", 0.0, 1.0, 2).observe(0.25);
  std::vector<std::uint64_t> burst(1 * kLinkPorts, 2);
  reg.accumulate_link_flits(1, 1, burst);

  const std::string doc = reg.to_json();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"json.counter\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"json.gauge\":1.5"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"json.hist\""), std::string::npos);
  EXPECT_NE(doc.find("\"noc_link_heatmap\""), std::string::npos);
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
  reg.reset();
}

TEST(Metrics, WriteProducesFile) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("write.counter").inc();
  const std::string path = testing::TempDir() + "metrics_test_out.json";
  EXPECT_TRUE(reg.write(path));
  reg.reset();
}

}  // namespace
}  // namespace ls::obs
