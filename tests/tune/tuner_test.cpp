// Autotuner suite (`ctest -L tune`): search determinism (same seed +
// budget -> identical winner and byte-identical cache files), the
// tuned-beats-baseline guarantee the bench gate reads, and the schedule
// cache store's round-trip / key-isolation contract.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "tune/schedule_cache.hpp"
#include "tune/tuner.hpp"

namespace ls {
namespace {

struct TunePoint {
  nn::NetSpec spec;
  sim::SystemConfig cfg;
  core::InferenceTraffic traffic;
};

TunePoint convnet16() {
  TunePoint p;
  p.spec = nn::convnet_spec();
  p.cfg.cores = 16;
  p.traffic = core::traffic_dense(
      p.spec, noc::MeshTopology::for_cores(p.cfg.cores),
      p.cfg.bytes_per_value);
  return p;
}

tune::TunerConfig small_search() {
  tune::TunerConfig tcfg;
  tcfg.budget = 300;
  tcfg.restarts = 3;
  tcfg.seed = 17;
  return tcfg;
}

tune::CacheKey key_for(const TunePoint& p) {
  tune::CacheKey key;
  key.net = p.spec.name;
  key.cores = p.cfg.cores;
  key.noc = p.cfg.noc;
  key.noc_clock_divider = p.cfg.noc_clock_divider;
  return key;
}

tune::CacheEntry entry_for(const tune::TuneOutcome& out,
                           const tune::TunerConfig& tcfg) {
  tune::CacheEntry e;
  e.candidate = out.best;
  e.est_cycles = out.best_est_cycles;
  e.sim_cycles = out.best_sim_cycles;
  e.baseline_sim_cycles = out.baseline_sim_cycles;
  e.seed = tcfg.seed;
  e.budget = tcfg.budget;
  return e;
}

TEST(Tuner, DeterministicAndByteIdenticalCache) {
  const TunePoint p = convnet16();
  const tune::TunerConfig tcfg = small_search();
  const tune::TuneOutcome a = tune::tune(p.spec, p.traffic, p.cfg, tcfg);
  const tune::TuneOutcome b = tune::tune(p.spec, p.traffic, p.cfg, tcfg);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_est_cycles, b.best_est_cycles);
  EXPECT_EQ(a.best_sim_cycles, b.best_sim_cycles);
  EXPECT_EQ(a.evals, b.evals);

  // End to end: two independently produced stores serialize to the same
  // bytes — on disk too, not just in memory.
  tune::ScheduleCache cache_a, cache_b;
  cache_a.put(key_for(p), entry_for(a, tcfg));
  cache_b.put(key_for(p), entry_for(b, tcfg));
  EXPECT_EQ(cache_a.to_json(), cache_b.to_json());

  const std::string path_a = ::testing::TempDir() + "tuner_det_a.json";
  const std::string path_b = ::testing::TempDir() + "tuner_det_b.json";
  ASSERT_TRUE(cache_a.save_file(path_a));
  ASSERT_TRUE(cache_b.save_file(path_b));
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(path_a), slurp(path_b));
  EXPECT_FALSE(slurp(path_a).empty());
}

TEST(Tuner, TunedBeatsKernelWiseBaseline) {
  const TunePoint p = convnet16();
  const tune::TuneOutcome out =
      tune::tune(p.spec, p.traffic, p.cfg, small_search());
  EXPECT_GT(out.evals, 0u);
  EXPECT_GT(out.validated, 0u);
  // The search space contains the baseline itself (restart 0 starts
  // there), so the flit-validated winner can never lose to it — and with
  // overlap in the space it strictly wins on this config.
  EXPECT_LT(out.best_sim_cycles, out.baseline_sim_cycles);
  EXPECT_GT(out.speedup_sim(), 1.0);
}

TEST(Tuner, ValidatedWinnerExecutesToItsReportedCycles) {
  const TunePoint p = convnet16();
  const tune::TuneOutcome out =
      tune::tune(p.spec, p.traffic, p.cfg, small_search());
  const sim::CmpSystem system(p.cfg);
  const sched::Schedule best = tune::lower_candidate(
      p.spec, p.traffic, p.cfg, out.best, sched::Strategy::kTraditional);
  EXPECT_EQ(system.execute(best).total_cycles, out.best_sim_cycles);
}

TEST(Tuner, TelemetryAccountsForEveryEvalAndValidation) {
  const TunePoint p = convnet16();
  const tune::TunerConfig tcfg = small_search();
  tune::TuneTelemetry t;
  const tune::TuneOutcome out = tune::tune(
      p.spec, p.traffic, p.cfg, tcfg, sched::Strategy::kTraditional, &t);

  // Restart trajectories: one per executed restart, each starting at its
  // seed score and descending monotonically to its local optimum.
  ASSERT_FALSE(t.restarts.empty());
  EXPECT_LE(t.restarts.size(), tcfg.restarts);
  std::size_t moves = 0;
  for (const tune::TuneRestartTrace& trace : t.restarts) {
    EXPECT_LE(trace.final_est_cycles, trace.start_est_cycles);
    std::uint64_t cur = trace.start_est_cycles;
    for (const tune::TuneMove& m : trace.moves) {
      if (m.accepted) {
        EXPECT_LT(m.est_cycles, cur);
        cur = m.est_cycles;
      } else {
        EXPECT_GE(m.est_cycles, cur);
      }
    }
    EXPECT_EQ(cur, trace.final_est_cycles);
    moves += trace.moves.size();
  }
  // Every analytic eval is either a restart seed or a recorded move.
  EXPECT_EQ(moves, t.moves_accepted + t.moves_rejected);
  EXPECT_EQ(out.evals, moves + t.restarts.size());

  // Validation scatter: one point per flit validation, exactly one best,
  // and the best point is the outcome's winner.
  ASSERT_EQ(t.validations.size(), out.validated);
  std::size_t best_count = 0;
  for (const tune::TuneValidationPoint& v : t.validations) {
    if (v.is_best) {
      ++best_count;
      EXPECT_EQ(v.sim_cycles, out.best_sim_cycles);
      EXPECT_EQ(v.est_cycles, out.best_est_cycles);
    }
  }
  EXPECT_EQ(best_count, 1u);
}

TEST(Tuner, TelemetryIsDeterministicAndNonPerturbing) {
  const TunePoint p = convnet16();
  const tune::TunerConfig tcfg = small_search();
  tune::TuneTelemetry ta;
  tune::TuneTelemetry tb;
  const tune::TuneOutcome a = tune::tune(
      p.spec, p.traffic, p.cfg, tcfg, sched::Strategy::kTraditional, &ta);
  const tune::TuneOutcome b = tune::tune(
      p.spec, p.traffic, p.cfg, tcfg, sched::Strategy::kTraditional, &tb);
  EXPECT_EQ(ta.moves_accepted, tb.moves_accepted);
  EXPECT_EQ(ta.moves_rejected, tb.moves_rejected);
  ASSERT_EQ(ta.restarts.size(), tb.restarts.size());
  for (std::size_t r = 0; r < ta.restarts.size(); ++r) {
    EXPECT_EQ(ta.restarts[r].moves, tb.restarts[r].moves);
  }
  EXPECT_EQ(ta.validations, tb.validations);

  // Collecting telemetry must not change what the search finds.
  const tune::TuneOutcome plain = tune::tune(p.spec, p.traffic, p.cfg, tcfg);
  EXPECT_EQ(a.best, plain.best);
  EXPECT_EQ(a.best_sim_cycles, plain.best_sim_cycles);
  EXPECT_EQ(a.evals, plain.evals);
  EXPECT_EQ(b.best, plain.best);
}

TEST(ScheduleCache, RoundTripPreservesEntries) {
  const TunePoint p = convnet16();
  tune::Candidate cand;
  cand.layer_dims = {sched::PartitionDim::kHeight,
                     sched::PartitionDim::kKernel,
                     sched::PartitionDim::kChannel,
                     sched::PartitionDim::kKernel,
                     sched::PartitionDim::kBatch};
  cand.placement = {5, 4, 3, 2, 1, 0, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  cand.overlap_comm = true;
  tune::CacheEntry e;
  e.candidate = cand;
  e.est_cycles = 1234;
  e.sim_cycles = 1300;
  e.baseline_sim_cycles = 2000;
  e.seed = 7;
  e.budget = 500;

  tune::ScheduleCache cache;
  cache.put(key_for(p), e);
  tune::ScheduleCache reloaded;
  std::string error;
  ASSERT_TRUE(reloaded.from_json(cache.to_json(), &error)) << error;
  const tune::CacheEntry* found = reloaded.find(key_for(p));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, e);
  // Canonical serialization is a fixed point of parse -> serialize.
  EXPECT_EQ(reloaded.to_json(), cache.to_json());
}

TEST(ScheduleCache, KeyIsolatesConfigurations) {
  const TunePoint p = convnet16();
  tune::ScheduleCache cache;
  cache.put(key_for(p), tune::CacheEntry{});

  tune::CacheKey other_cores = key_for(p);
  other_cores.cores = 64;
  EXPECT_EQ(cache.find(other_cores), nullptr);

  tune::CacheKey other_net = key_for(p);
  other_net.net = "AlexNet";
  EXPECT_EQ(cache.find(other_net), nullptr);

  tune::CacheKey other_noc = key_for(p);
  other_noc.noc.phys_channels += 1;
  EXPECT_EQ(cache.find(other_noc), nullptr);

  tune::CacheKey other_div = key_for(p);
  other_div.noc_clock_divider = 2.0;
  EXPECT_EQ(cache.find(other_div), nullptr);

  tune::CacheKey other_strategy = key_for(p);
  other_strategy.strategy = sched::Strategy::kSparsified;
  EXPECT_EQ(cache.find(other_strategy), nullptr);

  tune::CacheKey other_chips = key_for(p);
  other_chips.cores = 64;
  other_chips.chips = 4;
  EXPECT_EQ(cache.find(other_chips), nullptr);

  EXPECT_NE(cache.find(key_for(p)), nullptr);
}

TEST(ScheduleCache, KeyStringRoundTripsChipsDimension) {
  tune::CacheKey key = key_for(convnet16());
  key.cores = 64;
  key.chips = 4;
  const std::string s = tune::cache_key_string(key);
  EXPECT_NE(s.find("|chips=4"), std::string::npos) << s;
  tune::CacheKey parsed;
  ASSERT_TRUE(tune::parse_cache_key(s, &parsed)) << s;
  EXPECT_EQ(parsed.chips, 4u);
  EXPECT_EQ(parsed.cores, 64u);
  EXPECT_EQ(tune::cache_key_string(parsed), s);
  // The flat default spells chips=1 explicitly — no ambiguous legacy form.
  EXPECT_NE(tune::cache_key_string(key_for(convnet16())).find("|chips=1"),
            std::string::npos);
}

TEST(ScheduleCache, MissingFileLoadsEmpty) {
  tune::ScheduleCache cache;
  std::string error;
  EXPECT_TRUE(cache.load_file(::testing::TempDir() + "no_such_store.json",
                              &error));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCache, MalformedStoreIsRejected) {
  tune::ScheduleCache cache;
  std::string error;
  EXPECT_FALSE(cache.from_json("{not json", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(cache.from_json("{\"version\":3,\"entries\":{}}", &error));
  EXPECT_FALSE(cache.from_json("{\"entries\":{}}", &error));
  // A well-formed document still loads after failures.
  EXPECT_TRUE(cache.from_json("{\"version\":2,\"entries\":{}}", &error));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCache, StaleVersion1StoreRejectedLoudly) {
  // A pre-chips store exactly as version-1 builds wrote it: version 1 and
  // five-part keys with no chips field. It must be a loud miss — rejected
  // with a message naming the found and expected versions and telling the
  // operator to retune — never silently reinterpreted.
  const std::string v1_store =
      "{\"version\":1,\"entries\":{"
      "\"ConvNet|cores=16|traditional|noc=2,1,4,1|div=1\":{"
      "\"layer_dims\":[\"kernel\",\"kernel\",\"kernel\",\"kernel\","
      "\"kernel\"],"
      "\"placement\":[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15],"
      "\"overlap\":false,\"est_cycles\":1000,\"sim_cycles\":1100,"
      "\"baseline_sim_cycles\":1200,\"seed\":1,\"budget\":100}}}";
  tune::ScheduleCache cache;
  std::string error;
  EXPECT_FALSE(cache.from_json(v1_store, &error));
  EXPECT_NE(error.find("version 1"), std::string::npos) << error;
  EXPECT_NE(error.find("expects 2"), std::string::npos) << error;
  EXPECT_NE(error.find("retune"), std::string::npos) << error;
  EXPECT_EQ(cache.size(), 0u);
  // The old five-part key itself no longer parses as canonical.
  tune::CacheKey parsed;
  EXPECT_FALSE(tune::parse_cache_key(
      "ConvNet|cores=16|traditional|noc=2,1,4,1|div=1", &parsed));
}

}  // namespace
}  // namespace ls
