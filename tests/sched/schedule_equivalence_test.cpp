// Golden equivalence suite (`ctest -L sched`): the Schedule-IR path
// (build_schedule + execute) must reproduce the pre-IR per-layer loop
// bit-for-bit — InferenceResult::operator== is exact, down to the doubles.
// Coverage: all four strategies × {overlap on, off} × {sparsity profile
// present, absent}, plus the run_stream(n = 1) identity.

#include <gtest/gtest.h>

#include "core/grouping.hpp"
#include "core/sparsity_profile.hpp"
#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "nn/network.hpp"
#include "sched/builders.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"

namespace ls::sim {
namespace {

core::InferenceTraffic dense_traffic(const nn::NetSpec& spec,
                                     const SystemConfig& cfg) {
  return core::traffic_dense(spec, noc::MeshTopology::for_cores(cfg.cores),
                             cfg.bytes_per_value);
}

core::InferenceTraffic live_traffic(const nn::NetSpec& spec,
                                    const SystemConfig& cfg,
                                    std::uint64_t seed = 7) {
  util::Rng rng(seed);
  nn::Network net = nn::build_network(spec, rng);
  return core::traffic_live(net, spec,
                            noc::MeshTopology::for_cores(cfg.cores),
                            cfg.bytes_per_value,
                            core::Granularity::kFeatureMap);
}

// Hand-built profile with varied (and non-trivial) per-core live fractions
// for every compute layer but the first — the shape profile_from_groups
// produces, without paying for group-Lasso training in the test.
core::SparsityProfile synthetic_profile(const nn::NetSpec& spec,
                                        std::size_t cores) {
  core::SparsityProfile profile;
  bool first = true;
  for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
    if (!a.is_compute()) continue;
    if (first) {
      first = false;
      continue;
    }
    core::LayerSparsity ls;
    ls.layer_name = a.spec.name;
    ls.live_fraction.resize(cores);
    double sum = 0.0;
    for (std::size_t c = 0; c < cores; ++c) {
      ls.live_fraction[c] =
          0.25 + 0.70 * static_cast<double>((c * 7 + 3) % cores) /
                     static_cast<double>(cores);
      sum += ls.live_fraction[c];
    }
    ls.layer_live_fraction = sum / static_cast<double>(cores);
    profile.layers.push_back(std::move(ls));
  }
  return profile;
}

// One golden comparison: schedule path vs the preserved pre-IR loop.
void expect_bit_identical(const SystemConfig& cfg, const nn::NetSpec& spec,
                          const core::InferenceTraffic& traffic,
                          const core::SparsityProfile* profile) {
  const CmpSystem system(cfg);
  const InferenceResult via_schedule =
      system.run_inference(spec, traffic, profile);
  const InferenceResult golden =
      testing::reference_run_inference(cfg, spec, traffic, profile);
  EXPECT_EQ(via_schedule, golden) << spec.name;
}

class ScheduleEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(ScheduleEquivalence, TraditionalMatchesGolden) {
  SystemConfig cfg;
  cfg.overlap_comm = GetParam();
  for (const nn::NetSpec& spec :
       {nn::mlp_expt_spec(), nn::lenet_expt_spec(), nn::convnet_spec()}) {
    expect_bit_identical(cfg, spec, dense_traffic(spec, cfg), nullptr);
  }
}

TEST_P(ScheduleEquivalence, StructureLevelMatchesGolden) {
  SystemConfig cfg;
  cfg.overlap_comm = GetParam();
  // Grouped variant: the grouping transform removed transitions, the
  // lowering is unchanged.
  const nn::NetSpec grouped = nn::convnet_variant_expt_spec(16, 32, 64, 4);
  expect_bit_identical(cfg, grouped, dense_traffic(grouped, cfg), nullptr);
}

TEST_P(ScheduleEquivalence, SparsifiedMatchesGolden) {
  SystemConfig cfg;
  cfg.overlap_comm = GetParam();
  const nn::NetSpec spec = nn::lenet_expt_spec();
  const auto traffic = live_traffic(spec, cfg);
  const auto profile = synthetic_profile(spec, cfg.cores);
  expect_bit_identical(cfg, spec, traffic, &profile);
}

TEST_P(ScheduleEquivalence, SparsifiedWithModelOffMatchesGolden) {
  SystemConfig cfg;
  cfg.overlap_comm = GetParam();
  cfg.sparse_cycle_model = false;  // profile present but discounts disabled
  const nn::NetSpec spec = nn::lenet_expt_spec();
  const auto traffic = live_traffic(spec, cfg);
  const auto profile = synthetic_profile(spec, cfg.cores);
  expect_bit_identical(cfg, spec, traffic, &profile);
}

TEST_P(ScheduleEquivalence, HybridMatchesGolden) {
  SystemConfig cfg;
  cfg.overlap_comm = GetParam();
  const nn::NetSpec grouped = nn::convnet_variant_expt_spec(16, 32, 64, 4);
  const auto traffic = live_traffic(grouped, cfg);
  const auto profile = synthetic_profile(grouped, cfg.cores);
  expect_bit_identical(cfg, grouped, traffic, &profile);
}

INSTANTIATE_TEST_SUITE_P(OverlapOnOff, ScheduleEquivalence,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "overlap" : "no_overlap";
                         });

// The four strategy builders and the system's own build_schedule agree with
// the executor: executing an explicitly built schedule equals run_inference.
TEST(ScheduleEquivalence, ExplicitBuildersMatchRunInference) {
  SystemConfig cfg;
  const CmpSystem system(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic = dense_traffic(spec, cfg);

  sched::BuildOptions opts;
  opts.cores = cfg.cores;
  opts.bytes_per_value = cfg.bytes_per_value;
  opts.overlap_comm = cfg.overlap_comm;
  opts.sparse_cycle_model = cfg.sparse_cycle_model;
  const sched::Schedule traditional =
      sched::build_traditional(spec, traffic, opts);
  EXPECT_EQ(system.execute(traditional), system.run_inference(spec, traffic));

  const auto profile = synthetic_profile(spec, cfg.cores);
  const sched::Schedule sparsified =
      sched::build_sparsified(spec, traffic, opts, &profile);
  EXPECT_EQ(system.execute(sparsified),
            system.run_inference(spec, traffic, &profile));
}

// A one-request stream degenerates to a single pass: same result object,
// makespan == single-pass latency (non-overlapped schedules).
TEST(ScheduleEquivalence, StreamOfOneIsRunInference) {
  SystemConfig cfg;
  const CmpSystem system(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic = dense_traffic(spec, cfg);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);

  const InferenceResult single = system.run_inference(spec, traffic);
  const StreamResult stream = system.run_stream(schedule, 1);
  EXPECT_EQ(stream.single_pass, single);
  EXPECT_EQ(stream.makespan_cycles, single.total_cycles);
  EXPECT_EQ(stream.fill_cycles, single.total_cycles);
  ASSERT_EQ(stream.request_finish_cycle.size(), 1u);
  EXPECT_EQ(stream.request_finish_cycle[0], single.total_cycles);
  EXPECT_DOUBLE_EQ(stream.speedup_vs_back_to_back, 1.0);
}

// Streaming is work-conserving: makespan grows monotonically in request
// count but by at most one non-overlapped pass per extra request, and the
// pipeline beats back-to-back execution once bursts hide under compute.
TEST(ScheduleEquivalence, StreamPipelinesRequests) {
  SystemConfig cfg;
  cfg.noc_clock_divider = 2.0;  // embedded NoC: comm-heavy enough to matter
  const CmpSystem system(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic = dense_traffic(spec, cfg);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);

  const StreamResult s1 = system.run_stream(schedule, 1);
  const StreamResult s8 = system.run_stream(schedule, 8);
  EXPECT_GT(s8.makespan_cycles, s1.makespan_cycles);
  EXPECT_LE(s8.makespan_cycles, 8 * s1.makespan_cycles);
  EXPECT_GT(s8.throughput_per_mcycle, s1.throughput_per_mcycle);
  EXPECT_GT(s8.speedup_vs_back_to_back, 1.0);
  EXPECT_GT(s8.compute_occupancy, 0.0);
  EXPECT_LE(s8.compute_occupancy, 1.0);
  EXPECT_GT(s8.noc_occupancy, 0.0);
  EXPECT_LE(s8.noc_occupancy, 1.0);
  // Requests finish in order (FCFS tie-break) and all inside the makespan.
  for (std::size_t r = 1; r < s8.request_finish_cycle.size(); ++r) {
    EXPECT_GE(s8.request_finish_cycle[r], s8.request_finish_cycle[r - 1]);
    EXPECT_LE(s8.request_finish_cycle[r], s8.makespan_cycles);
  }
}

}  // namespace
}  // namespace ls::sim
