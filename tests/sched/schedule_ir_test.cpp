// Structural tests of the Schedule IR and its builders: event ordering and
// dependency invariants, payload accounting, sparsity discounts, and the
// --schedule-dump JSON shape.

#include "sched/builders.hpp"
#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "noc/topology.hpp"

namespace ls::sched {
namespace {

BuildOptions options(std::size_t cores = 16) {
  BuildOptions opts;
  opts.cores = cores;
  return opts;
}

core::InferenceTraffic dense_traffic(const nn::NetSpec& spec,
                                     std::size_t cores) {
  return core::traffic_dense(spec, noc::MeshTopology::for_cores(cores), 2);
}

TEST(ScheduleIr, LowersOneComputeEventPerComputeLayer) {
  const nn::NetSpec spec = nn::convnet_spec();
  const auto opts = options();
  const Schedule s =
      build_traditional(spec, dense_traffic(spec, opts.cores), opts);

  std::size_t compute_layers = 0;
  for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
    compute_layers += a.is_compute() ? 1 : 0;
  }
  EXPECT_EQ(s.compute_event_count(), compute_layers);
  EXPECT_EQ(s.cores, opts.cores);
  EXPECT_EQ(s.strategy, Strategy::kTraditional);

  // Every comm event is immediately followed by its consumer compute event;
  // every dependency points backwards.
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const Event& e = s.events[i];
    for (const EventId dep : e.deps) EXPECT_LT(dep, i);
    if (e.kind == EventKind::kComm) {
      ASSERT_LT(i + 1, s.events.size());
      EXPECT_EQ(s.events[i + 1].kind, EventKind::kCompute);
      EXPECT_EQ(s.events[i + 1].layer_name, e.layer_name);
      EXPECT_FALSE(e.messages.empty());
    } else {
      EXPECT_EQ(e.per_core_work.size(), s.cores);
    }
  }
}

TEST(ScheduleIr, TrafficBytesMatchInputTraffic) {
  const nn::NetSpec spec = nn::alexnet_spec();
  const auto opts = options();
  const auto traffic = dense_traffic(spec, opts.cores);
  const Schedule s = build_traditional(spec, traffic, opts);
  EXPECT_EQ(s.traffic_bytes(), traffic.total_bytes());
  // Per-event bytes equal the sum of the event's messages.
  for (const Event& e : s.events) {
    if (e.kind != EventKind::kComm) continue;
    std::size_t bytes = 0;
    for (const noc::Message& m : e.messages) bytes += m.bytes;
    EXPECT_EQ(bytes, e.traffic_bytes);
  }
}

TEST(ScheduleIr, OverlapFlagStampsEveryCommEvent) {
  const nn::NetSpec spec = nn::convnet_spec();
  auto opts = options();
  opts.overlap_comm = true;
  const Schedule s =
      build_traditional(spec, dense_traffic(spec, opts.cores), opts);
  std::size_t comm = 0;
  for (const Event& e : s.events) {
    if (e.kind != EventKind::kComm) continue;
    EXPECT_TRUE(e.overlap_with_prev_compute);
    ++comm;
  }
  EXPECT_EQ(comm, s.comm_event_count());
  EXPECT_GT(comm, 0u);
}

TEST(ScheduleIr, SparsityProfileDiscountsWork) {
  const nn::NetSpec spec = nn::lenet_expt_spec();
  auto opts = options();
  const auto traffic = dense_traffic(spec, opts.cores);

  core::SparsityProfile profile;
  core::LayerSparsity ls;
  ls.layer_name = "conv2";
  ls.live_fraction.assign(opts.cores, 0.5);
  ls.layer_live_fraction = 0.5;
  profile.layers.push_back(ls);

  const Schedule dense = build_traditional(spec, traffic, opts);
  const Schedule sparse = build_sparsified(spec, traffic, opts, &profile);
  ASSERT_EQ(dense.events.size(), sparse.events.size());
  EXPECT_EQ(sparse.strategy, Strategy::kSparsified);
  bool saw_discount = false;
  for (std::size_t i = 0; i < dense.events.size(); ++i) {
    const Event& d = dense.events[i];
    const Event& sp = sparse.events[i];
    if (d.kind != EventKind::kCompute) continue;
    if (d.layer_name == "conv2") {
      EXPECT_GT(sp.macs_discounted, 0u);
      saw_discount = true;
      for (std::size_t c = 0; c < d.per_core_work.size(); ++c) {
        EXPECT_LE(sp.per_core_work[c].macs, d.per_core_work[c].macs);
      }
    } else {
      // Unprofiled layers stay dense.
      EXPECT_EQ(sp.macs_discounted, 0u);
    }
  }
  EXPECT_TRUE(saw_discount);

  // The ablation switch kills the discount even with a profile in hand.
  opts.sparse_cycle_model = false;
  const Schedule ablated = build_sparsified(spec, traffic, opts, &profile);
  for (const Event& e : ablated.events) EXPECT_EQ(e.macs_discounted, 0u);
}

TEST(ScheduleIr, ToJsonCarriesTheDumpShape) {
  const nn::NetSpec spec = nn::convnet_spec();
  const auto opts = options();
  const Schedule s =
      build_traditional(spec, dense_traffic(spec, opts.cores), opts);
  const std::string json = to_json(s);
  EXPECT_NE(json.find("\"net\":\"ConvNet\""), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"traditional\""), std::string::npos);
  EXPECT_NE(json.find("\"cores\":16"), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"comm\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"messages\":["), std::string::npos);
  EXPECT_NE(json.find("\"per_core\":["), std::string::npos);
}

TEST(ScheduleIr, StrategyNamesRoundTrip) {
  EXPECT_STREQ(to_string(Strategy::kTraditional), "traditional");
  EXPECT_STREQ(to_string(Strategy::kStructureLevel), "structure_level");
  EXPECT_STREQ(to_string(Strategy::kSparsified), "sparsified");
  EXPECT_STREQ(to_string(Strategy::kHybrid), "hybrid");
  EXPECT_STREQ(to_string(EventKind::kComm), "comm");
  EXPECT_STREQ(to_string(EventKind::kCompute), "compute");
}

}  // namespace
}  // namespace ls::sched
