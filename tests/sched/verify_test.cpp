// Static schedule verifier suite (invariant class 10, DESIGN.md §4j).
//
// Negative half: seed each corruption class into an otherwise-valid
// lowered schedule via sched::testing::corrupt and assert verify()
// pinpoints the exact event with the exact violation code — no reliance
// on runtime LS_CHECK aborts, so these run identically in release and
// checked builds. Positive half: every builder strategy x partition dim x
// net in the golden suite verifies clean, and the verifier stays cheap
// next to the analytic cost model it gates in the tuner loop.

#include "sched/verify.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "noc/topology.hpp"
#include "sched/builders.hpp"
#include "sched/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sim/system.hpp"
#include "tune/tuner.hpp"

namespace ls::sched {
namespace {

BuildOptions options(std::size_t cores = 16) {
  BuildOptions opts;
  opts.cores = cores;
  return opts;
}

core::InferenceTraffic dense_traffic(const nn::NetSpec& spec,
                                     std::size_t cores) {
  return core::traffic_dense(spec, noc::MeshTopology::for_cores(cores), 2);
}

Schedule lowered_convnet(std::size_t cores = 16) {
  const nn::NetSpec spec = nn::convnet_spec();
  return build_traditional(spec, dense_traffic(spec, cores), options(cores));
}

// Synthetic per-core live fractions (the profile_from_groups shape)
// without paying for group-Lasso training in the test.
core::SparsityProfile synthetic_profile(const nn::NetSpec& spec,
                                        std::size_t cores) {
  core::SparsityProfile profile;
  bool first = true;
  for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
    if (!a.is_compute()) continue;
    if (first) {
      first = false;
      continue;
    }
    core::LayerSparsity ls;
    ls.layer_name = a.spec.name;
    ls.live_fraction.resize(cores);
    double sum = 0.0;
    for (std::size_t c = 0; c < cores; ++c) {
      ls.live_fraction[c] =
          0.25 + 0.70 * static_cast<double>((c * 7 + 3) % cores) /
                     static_cast<double>(cores);
      sum += ls.live_fraction[c];
    }
    ls.layer_live_fraction = sum / static_cast<double>(cores);
    profile.layers.push_back(std::move(ls));
  }
  return profile;
}

// Asserts the report contains a violation of `code` pinned to `event`
// (a corruption may legitimately ripple into further violations of the
// same class — zeroing a core's work orphans bursts on both sides — but
// the seeded event must be among them, with the seeded code).
void expect_pinpointed(const VerifyReport& report, VerifyCode code,
                       EventId event) {
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const Violation& v : report.violations) {
    found = found || (v.code == code && v.event == event);
  }
  EXPECT_TRUE(found) << "expected [" << to_string(code) << "] at event "
                     << static_cast<long long>(event) << "; report:\n"
                     << report.to_string();
}

// --- negative suite: one seeded corruption per violation class ----------

TEST(VerifyNegative, CyclicDependencePinpointed) {
  Schedule s = lowered_convnet();
  const EventId id =
      testing::corrupt(&s, testing::Corruption::kCyclicDependence);
  expect_pinpointed(verify(s), VerifyCode::kCyclicDependence, id);
}

TEST(VerifyNegative, NonBijectivePlacementPinpointed) {
  Schedule s = lowered_convnet();
  const EventId id =
      testing::corrupt(&s, testing::Corruption::kNonBijectivePlacement);
  EXPECT_EQ(id, kNoEvent);
  expect_pinpointed(verify(s), VerifyCode::kPlacementNotBijective, kNoEvent);
}

TEST(VerifyNegative, OrphanBurstEndpointPinpointed) {
  Schedule s = lowered_convnet();
  const EventId id =
      testing::corrupt(&s, testing::Corruption::kOrphanBurstEndpoint);
  expect_pinpointed(verify(s), VerifyCode::kOrphanBurstEndpoint, id);
}

TEST(VerifyNegative, ByteTotalMismatchPinpointed) {
  Schedule s = lowered_convnet();
  const EventId id =
      testing::corrupt(&s, testing::Corruption::kByteTotalMismatch);
  expect_pinpointed(verify(s), VerifyCode::kByteTotalMismatch, id);
}

TEST(VerifyNegative, OffMeshRoutePinpointed) {
  Schedule s = lowered_convnet();
  const EventId id = testing::corrupt(&s, testing::Corruption::kOffMeshRoute);
  expect_pinpointed(verify(s), VerifyCode::kOffMeshRoute, id);
}

TEST(VerifyNegative, CapacityOverflowPinpointed) {
  Schedule s = lowered_convnet();
  const EventId id =
      testing::corrupt(&s, testing::Corruption::kCapacityOverflow);
  // The capacity class only fires when the accelerator model has no DRAM
  // path to stream oversized weights; the default config streams.
  VerifyOptions opts;
  opts.accel.dram_bytes_per_cycle = 0.0;
  expect_pinpointed(verify(s, opts), VerifyCode::kCapacityOverflow, id);
  EXPECT_TRUE(verify(s).ok()) << "streaming config must tolerate big weights";
}

TEST(VerifyNegative, NondeterministicReductionPinpointed) {
  Schedule s = lowered_convnet();
  const EventId id =
      testing::corrupt(&s, testing::Corruption::kNondeterministicReduction);
  expect_pinpointed(verify(s), VerifyCode::kNondeterministicReduction, id);
}

TEST(VerifyNegative, ChannelSplitOnLastComputeLayerFlagged) {
  Schedule s = lowered_convnet();
  EventId last_compute = kNoEvent;
  for (EventId id = 0; id < s.events.size(); ++id) {
    if (s.events[id].kind == EventKind::kCompute) last_compute = id;
  }
  ASSERT_NE(last_compute, kNoEvent);
  s.events[last_compute].partition_dim = PartitionDim::kChannel;
  expect_pinpointed(verify(s), VerifyCode::kNondeterministicReduction,
                    last_compute);
}

TEST(VerifyNegative, ZeroCoresIsScheduleLevelViolation) {
  Schedule s = lowered_convnet();
  s.cores = 0;
  expect_pinpointed(verify(s), VerifyCode::kPlacementNotBijective, kNoEvent);
}

// The front door: a corrupted schedule must be rejected by execute() with
// a structured diagnostic in every build — before a single flit is
// simulated, with no reliance on a checked-build LS_CHECK abort.
TEST(VerifyFrontDoor, ExecuteRejectsCorruptSchedule) {
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  Schedule s = lowered_convnet(cfg.cores);
  ASSERT_NO_THROW(system.execute(s));
  testing::corrupt(&s, testing::Corruption::kByteTotalMismatch);
  EXPECT_THROW(system.execute(s), std::invalid_argument);
}

TEST(VerifyFrontDoor, ExecuteRejectsCoreCountMismatch) {
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const Schedule s = lowered_convnet(64);
  EXPECT_THROW(system.execute(s), std::invalid_argument);
}

// --- positive sweep: the golden suite verifies clean ---------------------

TEST(VerifyPositive, EveryBuilderStrategyVerifiesClean) {
  const auto opts = options();
  for (const nn::NetSpec& spec : {nn::mlp_spec(), nn::lenet_spec(),
                                  nn::convnet_spec(), nn::alexnet_spec()}) {
    const auto traffic = dense_traffic(spec, opts.cores);
    const VerifyReport r = verify(build_traditional(spec, traffic, opts));
    EXPECT_TRUE(r.ok()) << spec.name << " traditional:\n" << r.to_string();
  }

  const nn::NetSpec grouped = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  const auto grouped_traffic = dense_traffic(grouped, opts.cores);
  const core::SparsityProfile profile =
      synthetic_profile(grouped, opts.cores);
  const VerifyReport structure =
      verify(build_structure_level(grouped, grouped_traffic, opts));
  EXPECT_TRUE(structure.ok()) << structure.to_string();
  const VerifyReport hybrid =
      verify(build_hybrid(grouped, grouped_traffic, opts, &profile));
  EXPECT_TRUE(hybrid.ok()) << hybrid.to_string();

  const nn::NetSpec convnet = nn::convnet_spec();
  const core::SparsityProfile convnet_profile =
      synthetic_profile(convnet, opts.cores);
  const VerifyReport sparsified =
      verify(build_sparsified(convnet, dense_traffic(convnet, opts.cores),
                              opts, &convnet_profile));
  EXPECT_TRUE(sparsified.ok()) << sparsified.to_string();
}

// Every partition dim, applied to every layer it is legal on, across the
// nets the tuner actually searches — the schedules the tuner's candidate
// gate sees must all pass it.
TEST(VerifyPositive, EveryPartitionDimVerifiesClean) {
  sim::SystemConfig cfg;
  cfg.cores = 16;
  for (const nn::NetSpec& spec : {nn::convnet_spec(), nn::alexnet_spec()}) {
    const auto traffic = dense_traffic(spec, cfg.cores);
    std::size_t compute_layers = 0;
    for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
      compute_layers += a.is_compute() ? 1 : 0;
    }
    for (const PartitionDim dim :
         {PartitionDim::kKernel, PartitionDim::kBatch, PartitionDim::kHeight,
          PartitionDim::kWidth, PartitionDim::kChannel}) {
      tune::Candidate cand;
      for (std::size_t i = 0; i < compute_layers; ++i) {
        cand.layer_dims.push_back(dim_compatible(spec, i, dim)
                                      ? dim
                                      : PartitionDim::kKernel);
      }
      const Schedule s = tune::lower_candidate(spec, traffic, cfg, cand,
                                               Strategy::kTraditional);
      const VerifyReport r = verify(s);
      EXPECT_TRUE(r.ok()) << spec.name << " dim=" << to_string(dim) << ":\n"
                          << r.to_string();
    }
  }
}

// A permuted placement exercises the inverse-placement mapping inside the
// burst-order determinism check (message order is ascending in partition
// space, not physical-core space).
TEST(VerifyPositive, PermutedPlacementVerifiesClean) {
  const nn::NetSpec spec = nn::convnet_spec();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  tune::Candidate cand;
  for (std::size_t i = 0; i < cfg.cores; ++i) {
    cand.placement.push_back(cfg.cores - 1 - i);
  }
  const Schedule s =
      tune::lower_candidate(spec, dense_traffic(spec, cfg.cores), cfg, cand,
                            Strategy::kTraditional);
  const VerifyReport r = verify(s);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// The verifier gates the tuner's flit-level validation, so it must be
// negligible next to the analytic model that runs ~budget times per
// search: a full hill-climb spends `budget` (default 2000) calls on
// estimate_cycles and at most top_k (3) on verify, so verify <=
// estimate_cycles per call keeps the aggregate overhead under
// 3/2000 x (verify/estimate) < 1%.
TEST(VerifyPerf, CheaperThanAnalyticCostModel) {
  const Schedule s = lowered_convnet();
  const CostModelConfig cost;
  constexpr int kIters = 50;

  using clock = std::chrono::steady_clock;
  std::size_t sink = 0;
  const auto v0 = clock::now();
  for (int i = 0; i < kIters; ++i) sink += verify(s).violations.size();
  const auto v1 = clock::now();
  std::uint64_t cycles = 0;
  for (int i = 0; i < kIters; ++i) {
    cycles += estimate_cycles(s, cost).total_cycles;
  }
  const auto v2 = clock::now();
  EXPECT_EQ(sink, 0u);
  EXPECT_GT(cycles, 0u);
  EXPECT_LE((v1 - v0).count(), (v2 - v1).count())
      << "verify() must not dominate the cost model it gates";
}

}  // namespace
}  // namespace ls::sched
