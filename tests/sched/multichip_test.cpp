// Multi-chip stage-pipelining suite (DESIGN.md §4k).
//
// Covers the whole chip-spanning stack: partition_stages structural
// properties, lower_pipelined's chip-major schedule shape (verify-clean on
// every net x chip-count point), the single-chip degenerate case staying
// bit-identical to the flat lowering (IR JSON, analytic estimate, and
// executor results), CmpSystem's multi-chip front door (config validation,
// per-chip-resource streaming, inter-chip link accounting), and the
// verifier's kChipBoundaryViolation negative via the seeded corruption.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "noc/topology.hpp"
#include "prof/attribution.hpp"
#include "sched/builders.hpp"
#include "sched/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sched/verify.hpp"
#include "sim/system.hpp"

namespace ls::sched {
namespace {

std::size_t compute_layer_count(const nn::NetSpec& spec) {
  std::size_t n = 0;
  for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
    n += a.is_compute() ? 1 : 0;
  }
  return n;
}

core::InferenceTraffic chip_traffic(const nn::NetSpec& spec,
                                    std::size_t cores_per_chip) {
  return core::traffic_dense(spec, noc::MeshTopology::for_cores(cores_per_chip),
                             2);
}

Schedule pipelined(const nn::NetSpec& spec, std::size_t chips,
                   std::size_t cores_per_chip = 16) {
  BuildOptions opts;
  opts.cores = cores_per_chip;
  return lower_pipelined(spec, chip_traffic(spec, cores_per_chip), opts, chips);
}

TEST(PartitionStages, ContiguousOntoAndMonotone) {
  for (const nn::NetSpec& spec : {nn::convnet_spec(), nn::alexnet_spec()}) {
    const std::size_t layers = compute_layer_count(spec);
    for (std::size_t chips : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const std::vector<std::size_t> stages = partition_stages(spec, chips);
      ASSERT_EQ(stages.size(), layers);
      EXPECT_EQ(stages.front(), 0u);
      EXPECT_EQ(stages.back(), chips - 1);
      for (std::size_t i = 1; i < stages.size(); ++i) {
        // Non-decreasing in steps of at most one => contiguous and onto.
        ASSERT_GE(stages[i], stages[i - 1]);
        ASSERT_LE(stages[i] - stages[i - 1], 1u);
      }
    }
  }
}

TEST(PartitionStages, SingleChipIsAllStageZero) {
  const std::vector<std::size_t> stages =
      partition_stages(nn::convnet_spec(), 1);
  for (const std::size_t s : stages) EXPECT_EQ(s, 0u);
}

TEST(LowerPipelined, ChipMajorStructureVerifiesClean) {
  for (const nn::NetSpec& spec : {nn::convnet_spec(), nn::alexnet_spec()}) {
    for (std::size_t chips : {std::size_t{2}, std::size_t{4}}) {
      const Schedule s = pipelined(spec, chips);
      EXPECT_EQ(s.chips, chips);
      EXPECT_EQ(s.cores, chips * 16);
      std::size_t inter = 0;
      std::size_t prev_chip = 0;
      for (const Event& e : s.events) {
        ASSERT_GE(e.chip, prev_chip);  // stage order == event order
        prev_chip = e.chip;
        if (!e.inter_chip) continue;
        ++inter;
        ASSERT_EQ(e.kind, EventKind::kComm);
        // Single gateway(chip-1) -> gateway(chip) message per boundary.
        ASSERT_EQ(e.messages.size(), 1u);
        EXPECT_EQ(e.messages[0].src, (e.chip - 1) * 16);
        EXPECT_EQ(e.messages[0].dst, e.chip * 16);
        EXPECT_EQ(e.messages[0].bytes, e.traffic_bytes);
      }
      EXPECT_EQ(inter, chips - 1);  // one transfer per stage boundary
      const VerifyReport report = verify(s);
      EXPECT_TRUE(report.ok()) << report.to_string();
    }
  }
}

TEST(LowerPipelined, SingleChipDegeneratesToFlatLoweringExactly) {
  for (const nn::NetSpec& spec : {nn::convnet_spec(), nn::alexnet_spec()}) {
    BuildOptions opts;
    opts.cores = 16;
    const core::InferenceTraffic traffic = chip_traffic(spec, 16);
    const Schedule flat = lower(spec, traffic, opts);
    const Schedule pipe = lower_pipelined(spec, traffic, opts, 1);
    EXPECT_EQ(pipe.chips, 1u);
    // Byte-identical IR dump — the strongest equality the IR exposes.
    EXPECT_EQ(to_json(pipe), to_json(flat));
    // And byte-identical analytic estimates on top of it.
    const CostModelConfig cost;
    const CycleEstimate a = estimate_cycles(flat, cost);
    const CycleEstimate b = estimate_cycles(pipe, cost);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.compute_cycles, b.compute_cycles);
    EXPECT_EQ(a.comm_cycles, b.comm_cycles);
  }
}

TEST(LowerPipelined, SingleChipSystemResultsBitIdentical) {
  // cfg.chips = 1 must be indistinguishable from a config that never heard
  // of chips: same schedule bytes, same executed cycle counts, same stream.
  sim::SystemConfig base;
  base.cores = 16;
  sim::SystemConfig one = base;
  one.chips = 1;
  const sim::CmpSystem sys_base(base);
  const sim::CmpSystem sys_one(one);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic =
      core::traffic_dense(spec, sys_base.topology(), base.bytes_per_value);
  const Schedule a = sys_base.build_schedule(spec, traffic);
  const Schedule b = sys_one.build_schedule(spec, traffic);
  EXPECT_EQ(to_json(a), to_json(b));
  const sim::InferenceResult ra = sys_base.execute(a);
  const sim::InferenceResult rb = sys_one.execute(b);
  EXPECT_EQ(ra.total_cycles, rb.total_cycles);
  EXPECT_EQ(ra.compute_cycles, rb.compute_cycles);
  EXPECT_EQ(ra.comm_cycles, rb.comm_cycles);
  const sim::StreamResult sa = sys_base.run_stream(a, 8);
  const sim::StreamResult sb = sys_one.run_stream(b, 8);
  EXPECT_EQ(sa.makespan_cycles, sb.makespan_cycles);
  EXPECT_EQ(sa.request_finish_cycle, sb.request_finish_cycle);
  EXPECT_EQ(sa.compute_occupancy, sb.compute_occupancy);
  EXPECT_EQ(sa.noc_occupancy, sb.noc_occupancy);
  EXPECT_EQ(sb.inter_chip_occupancy, 0.0);
}

TEST(MultiChipSystem, RejectsBadChipTilingAndMismatchedSchedule) {
  sim::SystemConfig cfg;
  cfg.cores = 16;
  cfg.chips = 3;  // does not divide 16
  EXPECT_THROW(sim::CmpSystem{cfg}, std::invalid_argument);
  cfg.chips = 0;
  EXPECT_THROW(sim::CmpSystem{cfg}, std::invalid_argument);

  // A schedule lowered for 2 chips must not run on a 1-chip system.
  cfg.cores = 32;
  cfg.chips = 2;
  const sim::CmpSystem two(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic =
      core::traffic_dense(spec, two.topology(), cfg.bytes_per_value);
  const Schedule s = two.build_schedule(spec, traffic);
  EXPECT_EQ(s.chips, 2u);
  sim::SystemConfig flat = cfg;
  flat.chips = 1;
  EXPECT_THROW(sim::CmpSystem(flat).execute(s), std::invalid_argument);
}

TEST(MultiChipSystem, InterChipEventsPricedByLinkClassInExecute) {
  sim::SystemConfig cfg;
  cfg.cores = 32;
  cfg.chips = 2;
  const sim::CmpSystem system(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const Schedule s = system.build_schedule(spec, traffic);
  const sim::InferenceResult r = system.execute(s);
  EXPECT_GT(r.total_cycles, 0u);
  // Every inter-chip event's analytic price is the shared helper's answer
  // and shows up in the per-layer comm record.
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (!s.events[i].inter_chip) continue;
    const std::uint64_t want =
        inter_chip_transfer_cycles(cfg.inter_chip, s.events[i].traffic_bytes);
    EXPECT_EQ(want, cfg.inter_chip.latency_cycles +
                        (s.events[i].traffic_bytes +
                         static_cast<std::uint64_t>(
                             cfg.inter_chip.bytes_per_cycle) -
                         1) /
                            static_cast<std::uint64_t>(
                                cfg.inter_chip.bytes_per_cycle));
  }
}

TEST(MultiChipSystem, StreamPipelinesStagesAcrossChips) {
  sim::SystemConfig cfg;
  cfg.cores = 64;
  cfg.chips = 4;
  const sim::CmpSystem system(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const Schedule s = system.build_schedule(spec, traffic);
  ASSERT_TRUE(verify(s).ok());
  const std::size_t requests = 16;
  const sim::StreamResult r = system.run_stream(s, requests);
  EXPECT_EQ(r.requests, requests);
  // Pipelining across stages must beat back-to-back single passes.
  EXPECT_GT(r.speedup_vs_back_to_back, 1.0);
  EXPECT_LT(r.makespan_cycles, requests * r.single_pass.total_cycles);
  // The boundary links carried real traffic and the accounting saw it.
  EXPECT_GT(r.inter_chip_occupancy, 0.0);
  EXPECT_LE(r.inter_chip_occupancy, 1.0);
  // Finish cycles are per-request monotone (identical requests, in-order
  // release through identical stage resources).
  for (std::size_t i = 1; i < r.request_finish_cycle.size(); ++i) {
    EXPECT_GE(r.request_finish_cycle[i], r.request_finish_cycle[i - 1]);
  }
}

TEST(MultiChipSystem, StreamBlameCoversInterChipClass) {
  sim::SystemConfig cfg;
  cfg.cores = 32;
  cfg.chips = 2;
  const sim::CmpSystem system(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const Schedule s = system.build_schedule(spec, traffic);
  sim::StreamTimeline timeline;
  const sim::StreamResult r = system.run_stream(s, 8, 0, &timeline);
  const prof::StreamAttribution attr = prof::attribute_stream(s, timeline);
  // The blame walk still sums to the makespan with the inter-chip classes
  // in play (the sums-to-makespan invariant is LS_CHECKed inside, but pin
  // it here for unchecked builds too).
  EXPECT_EQ(attr.blame.total(), r.makespan_cycles);
  EXPECT_EQ(attr.makespan_cycles, r.makespan_cycles);
}

TEST(Verify, PinpointsChipBoundaryViolation) {
  Schedule s = pipelined(nn::convnet_spec(), 2);
  ASSERT_TRUE(verify(s).ok());
  const EventId seeded =
      testing::corrupt(&s, testing::Corruption::kChipBoundaryViolation);
  const VerifyReport report = verify(s);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const Violation& v : report.violations) {
    found |= v.code == VerifyCode::kChipBoundaryViolation && v.event == seeded;
  }
  EXPECT_TRUE(found) << report.to_string();
}

}  // namespace
}  // namespace ls::sched
