// Golden equivalence suite for the per-layer partition dimensions
// (sched::PartitionDim) and the placement permutation — the tuner's search
// space. Each dimension's lowering is pinned against an independent
// reference computation of what that split must produce (work shares, halo
// bytes, reduce-scatter traffic), and the kernel-wise fallback is pinned
// bit-exact against the historical path (`ctest -L sched`).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/partition.hpp"
#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "noc/topology.hpp"
#include "sched/builders.hpp"
#include "sched/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sim/system.hpp"

namespace ls {
namespace {

constexpr std::size_t kCores = 16;
constexpr std::size_t kBpv = 2;

core::InferenceTraffic convnet_traffic() {
  return core::traffic_dense(nn::convnet_spec(),
                             noc::MeshTopology::for_cores(kCores), kBpv);
}

sched::Schedule lower_convnet(std::vector<sched::PartitionDim> dims,
                              std::vector<std::size_t> placement = {}) {
  sched::BuildOptions opts;
  opts.cores = kCores;
  opts.bytes_per_value = kBpv;
  opts.layer_dims = std::move(dims);
  opts.placement = std::move(placement);
  return sched::build_traditional(nn::convnet_spec(), convnet_traffic(),
                                  opts);
}

const sched::Event& compute_event(const sched::Schedule& s,
                                  std::size_t layer_index) {
  std::size_t seen = 0;
  for (const sched::Event& e : s.events) {
    if (e.kind != sched::EventKind::kCompute) continue;
    if (seen == layer_index) return e;
    ++seen;
  }
  ADD_FAILURE() << "no compute event " << layer_index;
  static sched::Event none;
  return none;
}

std::uint64_t total_macs(const sched::Event& e) {
  std::uint64_t total = 0;
  for (const auto& w : e.per_core_work) total += w.macs;
  return total;
}

// Compute-layer analyses of ConvNet, in order: conv1..conv3, ip1, ip2.
std::vector<nn::LayerAnalysis> convnet_computes() {
  std::vector<nn::LayerAnalysis> computes;
  for (const nn::LayerAnalysis& a : nn::analyze(nn::convnet_spec())) {
    if (a.is_compute()) computes.push_back(a);
  }
  return computes;
}

// --- kernel-wise fallback: bit-exact with the historical path --------------

TEST(PartitionDim, ExplicitKernelDimsAndIdentityPlacementAreBitExact) {
  const sched::Schedule legacy = lower_convnet({});
  std::vector<std::size_t> identity(kCores);
  std::iota(identity.begin(), identity.end(), 0);
  const sched::Schedule tuned_default = lower_convnet(
      std::vector<sched::PartitionDim>(5, sched::PartitionDim::kKernel),
      identity);
  // Same document byte for byte: events, work arrays, messages, bytes.
  EXPECT_EQ(sched::to_json(legacy), sched::to_json(tuned_default));

  // And the executed result equals the pre-IR reference loop exactly.
  sim::SystemConfig cfg;
  cfg.cores = kCores;
  cfg.noc_result_cache = false;
  const sim::CmpSystem system(cfg);
  const nn::NetSpec spec = nn::convnet_spec();
  const auto traffic = convnet_traffic();
  EXPECT_EQ(system.execute(tuned_default),
            sim::testing::reference_run_inference(cfg, spec, traffic));
}

// --- placement permutation: endpoints move, numbers do not -----------------

TEST(PartitionDim, PlacementPermutationRemapsEndpointsOnly) {
  const sched::Schedule base = lower_convnet({});
  std::vector<std::size_t> place(kCores);
  for (std::size_t i = 0; i < kCores; ++i) place[i] = kCores - 1 - i;
  const sched::Schedule permuted = lower_convnet({}, place);
  ASSERT_EQ(permuted.events.size(), base.events.size());
  EXPECT_EQ(permuted.placement, place);

  for (std::size_t i = 0; i < base.events.size(); ++i) {
    const sched::Event& b = base.events[i];
    const sched::Event& p = permuted.events[i];
    if (b.kind == sched::EventKind::kComm) {
      // Same messages in the same order, endpoints mapped through place.
      ASSERT_EQ(p.messages.size(), b.messages.size());
      EXPECT_EQ(p.traffic_bytes, b.traffic_bytes);
      for (std::size_t m = 0; m < b.messages.size(); ++m) {
        EXPECT_EQ(p.messages[m].src, place[b.messages[m].src]);
        EXPECT_EQ(p.messages[m].dst, place[b.messages[m].dst]);
        EXPECT_EQ(p.messages[m].bytes, b.messages[m].bytes);
      }
    } else {
      // Partition j's work lands on physical core place[j], unchanged.
      for (std::size_t j = 0; j < kCores; ++j) {
        EXPECT_EQ(p.per_core_work[place[j]], b.per_core_work[j]);
      }
    }
  }

  // Compute cost is a max over cores — placement-invariant.
  sim::SystemConfig cfg;
  cfg.cores = kCores;
  cfg.noc_result_cache = false;
  const sim::CmpSystem system(cfg);
  EXPECT_EQ(system.execute(permuted).compute_cycles,
            system.execute(base).compute_cycles);
}

// --- height / width: spatial slices with halo inputs -----------------------

TEST(PartitionDim, HeightSplitMatchesReferenceSlices) {
  std::vector<sched::PartitionDim> dims(5, sched::PartitionDim::kKernel);
  dims[1] = sched::PartitionDim::kHeight;
  const sched::Schedule s = lower_convnet(dims);
  const nn::LayerAnalysis conv2 = convnet_computes()[1];
  const sched::Event& e = compute_event(s, 1);
  EXPECT_EQ(e.partition_dim, sched::PartitionDim::kHeight);

  const auto rows = core::balanced_ranges(conv2.out.h, kCores);
  const std::size_t in_bytes = conv2.in.numel() * kBpv;
  for (std::size_t c = 0; c < kCores; ++c) {
    const auto r = rows[c];
    if (r.count() == 0) {
      EXPECT_EQ(e.per_core_work[c].macs, 0u);
      continue;
    }
    // Reference: MACs scale with the row share, weights are replicated in
    // full, inputs are the halo-extended row slice.
    const double share = double(r.count()) / double(conv2.out.h);
    EXPECT_EQ(e.per_core_work[c].macs,
              std::uint64_t(double(conv2.macs) * share + 0.5));
    EXPECT_EQ(e.per_core_work[c].weight_bytes, conv2.weight_count * kBpv);
    const std::size_t s_ = conv2.spec.stride;
    const std::size_t k = conv2.spec.kernel;
    const std::size_t pad = conv2.spec.pad;
    const std::size_t lo = r.begin * s_ > pad ? r.begin * s_ - pad : 0;
    const std::size_t hi =
        std::min(conv2.in.h, (r.end - 1) * s_ + k - pad);
    EXPECT_EQ(e.per_core_work[c].input_bytes,
              in_bytes / conv2.in.h * (hi - lo));
  }
  // Rounding each per-core share to nearest keeps the total within P/2.
  EXPECT_NEAR(double(total_macs(e)), double(conv2.macs), kCores / 2.0);

  // The gather into a height-split conv is halo-sized: strictly less
  // traffic than the kernel-wise full-input gather.
  const sched::Schedule kernel_wise = lower_convnet({});
  EXPECT_LT(s.events[1].traffic_bytes, kernel_wise.events[1].traffic_bytes);
  EXPECT_GT(s.events[1].traffic_bytes, 0u);
}

TEST(PartitionDim, WidthSplitConservesMacs) {
  std::vector<sched::PartitionDim> dims(5, sched::PartitionDim::kKernel);
  dims[2] = sched::PartitionDim::kWidth;
  const sched::Schedule s = lower_convnet(dims);
  const nn::LayerAnalysis conv3 = convnet_computes()[2];
  const sched::Event& e = compute_event(s, 2);
  EXPECT_EQ(e.partition_dim, sched::PartitionDim::kWidth);
  EXPECT_NEAR(double(total_macs(e)), double(conv3.macs), kCores / 2.0);
  for (const auto& w : e.per_core_work) {
    if (w.macs == 0) continue;
    EXPECT_EQ(w.weight_bytes, conv3.weight_count * kBpv);
    EXPECT_LT(w.input_bytes, conv3.in.numel() * kBpv);  // a slice, not all
  }
}

// --- batch: partition 0 executes the whole layer ---------------------------

TEST(PartitionDim, BatchPutsAllWorkOnPartitionZero) {
  std::vector<sched::PartitionDim> dims(5, sched::PartitionDim::kKernel);
  dims[3] = sched::PartitionDim::kBatch;
  const sched::Schedule s = lower_convnet(dims);
  const nn::LayerAnalysis ip1 = convnet_computes()[3];
  const sched::Event& e = compute_event(s, 3);
  EXPECT_EQ(e.per_core_work[0].macs, ip1.macs);
  EXPECT_EQ(e.per_core_work[0].weight_bytes, ip1.weight_count * kBpv);
  for (std::size_t c = 1; c < kCores; ++c) {
    EXPECT_EQ(e.per_core_work[c].macs, 0u);
  }
}

// --- channel: full-output partial sums + reduce-scatter on the next burst --

TEST(PartitionDim, ChannelSplitFullOutputsAndReduceScatter) {
  std::vector<sched::PartitionDim> dims(5, sched::PartitionDim::kKernel);
  dims[3] = sched::PartitionDim::kChannel;  // ip1: 1024 -> 64
  const sched::Schedule s = lower_convnet(dims);
  const auto computes = convnet_computes();
  const nn::LayerAnalysis& ip1 = computes[3];
  const sched::Event& e = compute_event(s, 3);
  EXPECT_EQ(e.partition_dim, sched::PartitionDim::kChannel);
  EXPECT_NEAR(double(total_macs(e)), double(ip1.macs), kCores / 2.0);
  const auto in_ranges = core::balanced_ranges(ip1.in.c, kCores);
  const std::size_t in_bytes = ip1.in.numel() * kBpv;
  for (std::size_t c = 0; c < kCores; ++c) {
    if (in_ranges[c].count() == 0) continue;
    // Partial sums cover the whole output volume on every active core.
    EXPECT_EQ(e.per_core_work[c].output_bytes, ip1.out.numel() * kBpv);
    EXPECT_EQ(e.per_core_work[c].input_bytes,
              in_bytes / ip1.in.c * in_ranges[c].count());
  }

  // The transition into ip2 now carries ip1's reduce-scatter on top of the
  // kernel-wise gather: every partition p ships its partials of q's
  // output slice, sized by q's kernel range over ip1's 64 outputs.
  const auto kernel_ranges = core::balanced_ranges(64, kCores);
  std::size_t reduce_bytes = 0;
  for (std::size_t p = 0; p < kCores; ++p) {
    for (std::size_t q = 0; q < kCores; ++q) {
      if (p != q) reduce_bytes += kernel_ranges[q].count() * kBpv;
    }
  }
  const sched::Schedule kernel_wise = lower_convnet({});
  std::size_t burst_tuned = 0, burst_base = 0;
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (s.events[i].kind == sched::EventKind::kComm &&
        s.events[i].layer_name == "ip2") {
      burst_tuned = s.events[i].traffic_bytes;
    }
    if (kernel_wise.events[i].kind == sched::EventKind::kComm &&
        kernel_wise.events[i].layer_name == "ip2") {
      burst_base = kernel_wise.events[i].traffic_bytes;
    }
  }
  ASSERT_GT(burst_base, 0u);
  EXPECT_EQ(burst_tuned, burst_base + reduce_bytes);
}

// --- every dim executes and the analytic compute half is exact -------------

TEST(PartitionDim, ExecutedComputeMatchesAnalyticEstimateExactly) {
  std::vector<sched::PartitionDim> dims = {
      sched::PartitionDim::kHeight, sched::PartitionDim::kWidth,
      sched::PartitionDim::kChannel, sched::PartitionDim::kBatch,
      sched::PartitionDim::kKernel};
  std::vector<std::size_t> place(kCores);
  for (std::size_t i = 0; i < kCores; ++i) place[i] = (i + 5) % kCores;
  const sched::Schedule s = lower_convnet(dims, place);

  sim::SystemConfig cfg;
  cfg.cores = kCores;
  cfg.noc_result_cache = false;
  const sim::CmpSystem system(cfg);
  const sim::InferenceResult r = system.execute(s);
  EXPECT_GT(r.total_cycles, 0u);

  sched::CostModelConfig cost;
  cost.accel = cfg.accel;
  cost.chip_dram_bytes_per_cycle = cfg.chip_dram_bytes_per_cycle;
  cost.noc = cfg.noc;
  cost.noc_clock_divider = cfg.noc_clock_divider;
  const sched::CycleEstimate est = sched::estimate_cycles(s, cost);
  // The scorer's compute half is the executor's own partition_cost — it
  // must agree cycle for cycle; only comm is approximated.
  EXPECT_EQ(est.compute_cycles, r.compute_cycles);
}

// --- compatibility matrix --------------------------------------------------

TEST(PartitionDim, DimCompatibleRules) {
  const nn::NetSpec spec = nn::convnet_spec();  // conv1..3, ip1, ip2
  using sched::PartitionDim;
  for (std::size_t li = 0; li < 5; ++li) {
    EXPECT_TRUE(sched::dim_compatible(spec, li, PartitionDim::kKernel));
    EXPECT_TRUE(sched::dim_compatible(spec, li, PartitionDim::kBatch));
  }
  // Spatial dims: convs only.
  EXPECT_TRUE(sched::dim_compatible(spec, 0, PartitionDim::kHeight));
  EXPECT_TRUE(sched::dim_compatible(spec, 2, PartitionDim::kWidth));
  EXPECT_FALSE(sched::dim_compatible(spec, 3, PartitionDim::kHeight));
  EXPECT_FALSE(sched::dim_compatible(spec, 4, PartitionDim::kWidth));
  // Channel: fine mid-net, never on the last compute layer.
  EXPECT_TRUE(sched::dim_compatible(spec, 1, PartitionDim::kChannel));
  EXPECT_TRUE(sched::dim_compatible(spec, 3, PartitionDim::kChannel));
  EXPECT_FALSE(sched::dim_compatible(spec, 4, PartitionDim::kChannel));
  // Out-of-range layer index is simply incompatible.
  EXPECT_FALSE(sched::dim_compatible(spec, 99, PartitionDim::kKernel));
}

TEST(PartitionDim, StringRoundTrip) {
  using sched::PartitionDim;
  for (const PartitionDim d :
       {PartitionDim::kKernel, PartitionDim::kBatch, PartitionDim::kHeight,
        PartitionDim::kWidth, PartitionDim::kChannel}) {
    PartitionDim parsed;
    ASSERT_TRUE(sched::parse_partition_dim(sched::to_string(d), &parsed));
    EXPECT_EQ(parsed, d);
  }
  PartitionDim parsed;
  EXPECT_FALSE(sched::parse_partition_dim("diagonal", &parsed));
}

}  // namespace
}  // namespace ls
