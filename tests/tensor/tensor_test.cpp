#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace ls::tensor {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.numel(), 120u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Shape, RejectsZeroDim) {
  EXPECT_THROW(Shape({2, 0}), std::invalid_argument);
}

TEST(Shape, RejectsRankFive) {
  EXPECT_THROW(Shape(std::vector<std::size_t>{1, 2, 3, 4, 5}),
               std::invalid_argument);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
}

TEST(Shape, ToString) { EXPECT_EQ(Shape({1, 2, 3}).to_string(), "{1,2,3}"); }

TEST(Tensor, ZerosAndFill) {
  Tensor t = Tensor::zeros(Shape{3, 3});
  EXPECT_EQ(t.numel(), 9u);
  EXPECT_EQ(t.sum(), 0.0);
  t.fill(2.0f);
  EXPECT_DOUBLE_EQ(t.sum(), 18.0);
}

TEST(Tensor, At4Layout) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  // NCHW row-major: index = ((n*C + c)*H + h)*W + w
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, At4BoundsChecked) {
  Tensor t(Shape{1, 1, 2, 2});
  EXPECT_THROW(t.at4(0, 0, 2, 0), std::out_of_range);
  EXPECT_THROW(t.at4(1, 0, 0, 0), std::out_of_range);
}

TEST(Tensor, At2) {
  Tensor t(Shape{2, 3});
  t.at2(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  EXPECT_THROW(t.at2(2, 0), std::out_of_range);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::full(Shape{2, 6}, 1.5f);
  t[3] = 9.0f;
  const Tensor r = t.reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r[3], 9.0f);
  EXPECT_THROW(t.reshaped(Shape{5, 5}), std::invalid_argument);
}

TEST(Tensor, Axpy) {
  Tensor a = Tensor::full(Shape{4}, 1.0f);
  const Tensor b = Tensor::full(Shape{4}, 2.0f);
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  Tensor c(Shape{5});
  EXPECT_THROW(a.axpy(1.0f, c), std::invalid_argument);
}

TEST(Tensor, ScaleAndSums) {
  Tensor t = Tensor::from_data(Shape{3}, {1.0f, -2.0f, 3.0f});
  t.scale(2.0f);
  EXPECT_DOUBLE_EQ(t.sum(), 4.0);
  EXPECT_DOUBLE_EQ(t.sum_squares(), 4.0 + 16.0 + 36.0);
  EXPECT_FLOAT_EQ(t.max_abs(), 6.0f);
}

TEST(Tensor, CountZeros) {
  Tensor t = Tensor::from_data(Shape{4}, {0.0f, 1.0f, 0.0f, -1.0f});
  EXPECT_EQ(t.count_zeros(), 2u);
}

TEST(Tensor, HeNormalStats) {
  util::Rng rng(3);
  const std::size_t fan_in = 64;
  Tensor t = Tensor::he_normal(Shape{100, 100}, fan_in, rng);
  double sq = t.sum_squares() / static_cast<double>(t.numel());
  EXPECT_NEAR(sq, 2.0 / 64.0, 0.005);
  EXPECT_NEAR(t.sum() / static_cast<double>(t.numel()), 0.0, 0.005);
}

TEST(Tensor, UniformRange) {
  util::Rng rng(4);
  Tensor t = Tensor::uniform(Shape{1000}, -1.0f, 1.0f, rng);
  EXPECT_GE(t.span()[0], -1.0f);
  for (float v : t.span()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_THROW(Tensor::from_data(Shape{3}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, QuantizeFixed16) {
  Tensor t = Tensor::from_data(Shape{2}, {0.1234567f, -0.5f});
  t.quantize_fixed16(8);
  EXPECT_NEAR(t[0], 0.1234567f, 1.0 / 256.0);
  EXPECT_FLOAT_EQ(t[1], -0.5f);  // exactly representable
  EXPECT_THROW(t.quantize_fixed16(3), std::invalid_argument);
}

TEST(Tensor, MaxAbsDiff) {
  const Tensor a = Tensor::from_data(Shape{2}, {1.0f, 2.0f});
  const Tensor b = Tensor::from_data(Shape{2}, {1.5f, 1.0f});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

}  // namespace
}  // namespace ls::tensor
