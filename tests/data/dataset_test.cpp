#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ls::data {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec s;
  s.num_classes = 4;
  s.channels = 1;
  s.height = 8;
  s.width = 8;
  s.samples = 64;
  s.seed = 3;
  return s;
}

TEST(Synthetic, ShapeAndLabels) {
  const Dataset ds = make_synthetic(tiny_spec());
  EXPECT_EQ(ds.size(), 64u);
  EXPECT_EQ(ds.images.shape(), tensor::Shape({64, 1, 8, 8}));
  for (auto l : ds.labels) EXPECT_LT(l, 4u);
}

TEST(Synthetic, BalancedClasses) {
  const Dataset ds = make_synthetic(tiny_spec());
  std::size_t counts[4] = {};
  for (auto l : ds.labels) ++counts[l];
  for (auto c : counts) EXPECT_EQ(c, 16u);
}

TEST(Synthetic, PixelRangeBounded) {
  const Dataset ds = make_synthetic(tiny_spec());
  for (float v : ds.images.span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.5f);
  }
}

TEST(Synthetic, DeterministicForSameSeeds) {
  const Dataset a = make_synthetic(tiny_spec());
  const Dataset b = make_synthetic(tiny_spec());
  EXPECT_LT(tensor::max_abs_diff(a.images, b.images), 1e-9f);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Synthetic, SampleSeedChangesSamplesNotTask) {
  SyntheticSpec s1 = tiny_spec(), s2 = tiny_spec();
  s2.sample_seed = 99;
  const Dataset a = make_synthetic(s1);
  const Dataset b = make_synthetic(s2);
  EXPECT_GT(tensor::max_abs_diff(a.images, b.images), 0.01f);
  // Same class prototypes: the per-class mean images of the two splits are
  // strongly correlated (cosine similarity), jitter notwithstanding.
  for (std::uint32_t cls = 0; cls < 4; ++cls) {
    std::vector<double> ma(64, 0.0), mb(64, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t j = 0; j < 64; ++j) {
        if (a.labels[i] == cls) ma[j] += a.images[i * 64 + j];
        if (b.labels[i] == cls) mb[j] += b.images[i * 64 + j];
      }
    }
    double dot = 0, na2 = 0, nb2 = 0;
    for (std::size_t j = 0; j < 64; ++j) {
      dot += ma[j] * mb[j];
      na2 += ma[j] * ma[j];
      nb2 += mb[j] * mb[j];
    }
    EXPECT_GT(dot / std::sqrt(na2 * nb2), 0.85) << "class " << cls;
  }
}

TEST(Synthetic, PrototypeSeedChangesTask) {
  SyntheticSpec s1 = tiny_spec(), s2 = tiny_spec();
  s2.seed = 1234;
  const Dataset a = make_synthetic(s1);
  const Dataset b = make_synthetic(s2);
  EXPECT_GT(tensor::max_abs_diff(a.images, b.images), 0.05f);
}

TEST(Synthetic, ClassesAreDistinguishable) {
  SyntheticSpec s = tiny_spec();
  s.noise = 0.05;
  s.max_shift = 0;
  const Dataset ds = make_synthetic(s);
  // Nearest-prototype distances: same-class samples are closer to each
  // other than to other classes on average.
  auto dist = [&](std::size_t i, std::size_t j) {
    double d = 0;
    for (std::size_t k = 0; k < 64; ++k) {
      const double diff = ds.images[i * 64 + k] - ds.images[j * 64 + k];
      d += diff * diff;
    }
    return d;
  };
  double same = 0, cross = 0;
  std::size_t ns = 0, nc = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = i + 1; j < 32; ++j) {
      if (ds.labels[i] == ds.labels[j]) {
        same += dist(i, j);
        ++ns;
      } else {
        cross += dist(i, j);
        ++nc;
      }
    }
  }
  EXPECT_LT(same / static_cast<double>(ns), cross / static_cast<double>(nc));
}

TEST(Synthetic, NamedGeneratorsShapes) {
  EXPECT_EQ(mnist_like(10, 0).images.shape(), tensor::Shape({10, 1, 28, 28}));
  EXPECT_EQ(cifar_like(10, 0).images.shape(), tensor::Shape({10, 3, 32, 32}));
  EXPECT_EQ(imagenet10_like(4, 64, 0).images.shape(),
            tensor::Shape({4, 3, 64, 64}));
}

TEST(Synthetic, RejectsEmptySpec) {
  SyntheticSpec s = tiny_spec();
  s.samples = 0;
  EXPECT_THROW(make_synthetic(s), std::invalid_argument);
}

TEST(DatasetSlice, CopiesRange) {
  const Dataset ds = make_synthetic(tiny_spec());
  const Dataset part = ds.slice(8, 24);
  EXPECT_EQ(part.size(), 16u);
  EXPECT_EQ(part.labels[0], ds.labels[8]);
  EXPECT_FLOAT_EQ(part.images[0], ds.images[8 * 64]);
  EXPECT_THROW(ds.slice(10, 100), std::out_of_range);
}

TEST(Batcher, CoversEpochExactlyOnce) {
  const Dataset ds = make_synthetic(tiny_spec());
  Batcher batcher(ds, 10, 7);
  tensor::Tensor images;
  std::vector<std::uint32_t> labels;
  std::size_t total = 0, batches = 0;
  while (batcher.next(images, labels)) {
    total += labels.size();
    ++batches;
    EXPECT_EQ(images.shape()[0], labels.size());
  }
  EXPECT_EQ(total, 64u);
  EXPECT_EQ(batches, 7u);  // 6x10 + 1x4
  EXPECT_EQ(batcher.batches_per_epoch(), 7u);
}

TEST(Batcher, ShufflesBetweenEpochs) {
  const Dataset ds = make_synthetic(tiny_spec());
  Batcher batcher(ds, 64, 7);
  tensor::Tensor first, second;
  std::vector<std::uint32_t> l1, l2;
  batcher.next(first, l1);
  batcher.reset();
  batcher.next(second, l2);
  EXPECT_NE(l1, l2);  // astronomically unlikely to match
}

TEST(Batcher, RejectsZeroBatch) {
  const Dataset ds = make_synthetic(tiny_spec());
  EXPECT_THROW(Batcher(ds, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ls::data
