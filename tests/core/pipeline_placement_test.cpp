#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/placement.hpp"
#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace ls::core {
namespace {

TEST(Pipeline, StagesAreContiguousAndComplete) {
  const auto a = assign_pipeline(nn::lenet_spec(), 4, 2);
  ASSERT_FALSE(a.stages.empty());
  EXPECT_LE(a.stages.size(), 4u);
  std::size_t cursor = 0;
  for (const auto& s : a.stages) {
    EXPECT_EQ(s.begin, cursor);
    EXPECT_GT(s.end, s.begin);
    cursor = s.end;
  }
  EXPECT_EQ(cursor, 4u);  // LeNet has conv1, conv2, ip1, ip2
}

TEST(Pipeline, SingleCoreSingleStage) {
  const auto a = assign_pipeline(nn::lenet_spec(), 1, 2);
  ASSERT_EQ(a.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(a.imbalance(), 1.0);
}

TEST(Pipeline, MaxStageIsAtLeastLargestLayer) {
  const auto analysis = nn::analyze(nn::alexnet_spec());
  std::uint64_t largest = 0;
  for (const auto& la : analysis) {
    if (la.is_compute()) largest = std::max(largest, la.macs);
  }
  for (std::size_t cores : {2u, 4u, 16u}) {
    const auto a = assign_pipeline(nn::alexnet_spec(), cores, 2);
    EXPECT_GE(a.max_stage_macs(), largest);
  }
}

TEST(Pipeline, BottleneckShrinksWithMoreCores) {
  const auto a2 = assign_pipeline(nn::vgg19_spec(), 2, 2);
  const auto a8 = assign_pipeline(nn::vgg19_spec(), 8, 2);
  EXPECT_LE(a8.max_stage_macs(), a2.max_stage_macs());
}

TEST(Pipeline, StageMacsSumToNetwork) {
  const auto a = assign_pipeline(nn::convnet_spec(), 4, 2);
  std::uint64_t total = 0;
  for (const auto& s : a.stages) total += s.macs;
  EXPECT_EQ(total, nn::total_macs(nn::convnet_spec()));
}

TEST(Pipeline, ImbalanceExceedsOneForRealNets) {
  // The paper's claim: real layer mixes do not balance.
  const auto a = assign_pipeline(nn::lenet_spec(), 4, 2);
  EXPECT_GT(a.imbalance(), 1.1);
}

TEST(Pipeline, RejectsZeroCores) {
  EXPECT_THROW(assign_pipeline(nn::lenet_spec(), 0, 2),
               std::invalid_argument);
}

TEST(Placement, IdentityIsValidAndNoOp) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const auto traffic = traffic_dense(nn::mlp_expt_spec(), topo, 2);
  const Placement id = Placement::identity(16);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(placement_cost(traffic, id, topo), traffic.total_byte_hops());
  const auto mapped = remap_traffic(traffic, id, topo);
  EXPECT_EQ(mapped.total_bytes(), traffic.total_bytes());
  EXPECT_EQ(mapped.total_byte_hops(), traffic.total_byte_hops());
}

TEST(Placement, ValidRejectsDuplicates) {
  Placement p;
  p.partition_to_core = {0, 1, 1, 3};
  EXPECT_FALSE(p.valid());
  p.partition_to_core = {0, 1, 2, 5};
  EXPECT_FALSE(p.valid());
}

TEST(Placement, RemapRejectsInvalid) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(4);
  const auto traffic = traffic_dense(nn::mlp_expt_spec(), topo, 2);
  Placement bad;
  bad.partition_to_core = {0, 0, 1, 2};
  EXPECT_THROW(remap_traffic(traffic, bad, topo), std::invalid_argument);
}

TEST(Placement, CostChangesUnderSwap) {
  // Two partitions exchanging heavy traffic cost less when adjacent.
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  InferenceTraffic traffic;
  TransitionTraffic t;
  t.layer_name = "x";
  t.messages.push_back({0, 15, 1000, 0});  // corners: 6 hops
  t.total_bytes = 1000;
  t.total_byte_hops = 6000;
  traffic.transitions.push_back(t);

  Placement p = Placement::identity(16);
  std::swap(p.partition_to_core[15], p.partition_to_core[1]);  // now 1 hop
  EXPECT_EQ(placement_cost(traffic, p, topo), 1000u);
}

TEST(Placement, AnnealingNeverWorseThanIdentity) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  util::Rng rng(3);
  // Structured traffic: partition i talks to partition (i+4) % 16 only.
  InferenceTraffic traffic;
  TransitionTraffic t;
  t.layer_name = "ring";
  for (std::size_t i = 0; i < 16; ++i) {
    t.messages.push_back({i, (i + 4) % 16, 512, 0});
  }
  traffic.transitions.push_back(t);

  const Placement id = Placement::identity(16);
  const Placement opt = optimize_placement(traffic, topo, rng, 5000);
  EXPECT_TRUE(opt.valid());
  EXPECT_LE(placement_cost(traffic, opt, topo),
            placement_cost(traffic, id, topo));
}

TEST(Placement, AnnealingFindsObviousImprovement) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  util::Rng rng(4);
  // One hot pair placed at opposite corners: optimizer must co-locate it.
  InferenceTraffic traffic;
  TransitionTraffic t;
  t.layer_name = "pair";
  t.messages.push_back({0, 15, 100000, 0});
  t.messages.push_back({15, 0, 100000, 0});
  traffic.transitions.push_back(t);
  const Placement opt = optimize_placement(traffic, topo, rng, 10000);
  const std::size_t hops =
      topo.hops(opt.core_of(0), opt.core_of(15));
  EXPECT_EQ(hops, 1u);
}

TEST(Placement, DeterministicForSeed) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(8);
  const auto traffic = traffic_dense(nn::lenet_expt_spec(), topo, 2);
  util::Rng a(9), b(9);
  const auto pa = optimize_placement(traffic, topo, a, 2000);
  const auto pb = optimize_placement(traffic, topo, b, 2000);
  EXPECT_EQ(pa.partition_to_core, pb.partition_to_core);
}

}  // namespace
}  // namespace ls::core
