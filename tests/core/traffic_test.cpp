#include "core/traffic.hpp"

#include <gtest/gtest.h>

#include "core/grouping.hpp"
#include "core/weight_groups.hpp"
#include "nn/fc.hpp"
#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace ls::core {
namespace {

TEST(TrafficDense, MlpVolumesMatchFormula) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const auto traffic = traffic_dense(nn::mlp_expt_spec(), topo, 2);
  ASSERT_EQ(traffic.transitions.size(), 2u);
  // ip2 transition: 512 units, each core owns 32, each unit goes to the 15
  // other cores: 512 * 15 * 2 bytes.
  EXPECT_EQ(traffic.transitions[0].total_bytes, 512u * 15 * 2);
  // ip3 has only 10 output neurons, so just 10 of the 16 cores consume
  // data; each receives the 304 - 19 units it does not own.
  EXPECT_EQ(traffic.transitions[1].total_bytes, 10u * (304 - 19) * 2);
}

TEST(TrafficDense, MessageEndpointsAreAllPairs) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(4);
  const auto traffic = traffic_dense(nn::mlp_expt_spec(), topo, 2);
  EXPECT_EQ(traffic.transitions[0].messages.size(), 4u * 3);
}

TEST(TrafficDense, FirstLayerHasNoTraffic) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const auto traffic = traffic_dense(nn::lenet_expt_spec(), topo, 2);
  // Transitions into conv2, ip1, ip2 only (conv1 reads the broadcast image).
  ASSERT_EQ(traffic.transitions.size(), 3u);
  EXPECT_EQ(traffic.transitions[0].layer_name, "conv2");
}

TEST(TrafficDense, ConvTransitionCountsFeatureMapBytes) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const auto traffic = traffic_dense(nn::lenet_expt_spec(), topo, 2);
  // conv2 input: 16 maps of 12x12 after pool1, 2 bytes each element.
  EXPECT_EQ(traffic.transitions[0].total_bytes, 16u * 144 * 15 * 2);
}

TEST(TrafficDense, ByteHopsUsesMeshDistance) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(4);
  const auto traffic = traffic_dense(nn::mlp_expt_spec(), topo, 2);
  const auto& t = traffic.transitions[0];
  std::size_t expect = 0;
  for (const auto& m : t.messages) expect += m.bytes * topo.hops(m.src, m.dst);
  EXPECT_EQ(t.total_byte_hops, expect);
}

TEST(TrafficDense, FullyGroupedLayersAreSilent) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const nn::NetSpec spec = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  const auto traffic = traffic_dense(spec, topo, 2);
  for (const auto& t : traffic.transitions) {
    if (t.layer_name == "conv2" || t.layer_name == "conv3") {
      EXPECT_EQ(t.total_bytes, 0u) << t.layer_name;
    } else {
      EXPECT_GT(t.total_bytes, 0u) << t.layer_name;
    }
  }
}

TEST(TrafficDense, PartialGroupingReducesButKeepsTraffic) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const nn::NetSpec dense = nn::convnet_variant_expt_spec(32, 64, 128, 1);
  const nn::NetSpec g4 = nn::convnet_variant_expt_spec(32, 64, 128, 4);
  const auto td = traffic_dense(dense, topo, 2);
  const auto tg = traffic_dense(g4, topo, 2);
  std::size_t dense_conv2 = 0, g4_conv2 = 0;
  for (const auto& t : td.transitions) {
    if (t.layer_name == "conv2") dense_conv2 = t.total_bytes;
  }
  for (const auto& t : tg.transitions) {
    if (t.layer_name == "conv2") g4_conv2 = t.total_bytes;
  }
  EXPECT_GT(g4_conv2, 0u);
  EXPECT_LT(g4_conv2, dense_conv2);
}

TEST(TrafficLive, FreshDenseNetworkMatchesDenseTraffic) {
  util::Rng rng(1);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const auto live = traffic_live(net, spec, topo, 2);
  const auto dense = traffic_dense(spec, topo, 2);
  EXPECT_EQ(live.total_bytes(), dense.total_bytes());
}

TEST(TrafficLive, DeadBlockRemovesMessage) {
  util::Rng rng(2);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 16;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  auto sets = build_group_sets(net, spec, cores);
  sets[0].kill_block(3, 7);  // producer 3 -> consumer 7 in ip2

  const auto live = traffic_live(net, spec, topo, 2);
  bool found = false;
  for (const auto& m : live.transitions[0].messages) {
    if (m.src == 3 && m.dst == 7) found = true;
  }
  EXPECT_FALSE(found);
  const auto dense = traffic_dense(spec, topo, 2);
  // 512/16 = 32 units x 2 bytes less than dense.
  EXPECT_EQ(live.transitions[0].total_bytes,
            dense.transitions[0].total_bytes - 32 * 2);
}

TEST(TrafficLive, FeatureMapGranularityIsPerUnit) {
  util::Rng rng(3);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 4;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  // Zero every ip2 weight reading unit 0 (owned by core 0): consumers keep
  // receiving the rest of core 0's units.
  auto* fc = dynamic_cast<nn::FullyConnected*>(&net.layer_by_name("ip2"));
  ASSERT_NE(fc, nullptr);
  for (std::size_t o = 0; o < fc->out_features(); ++o) {
    fc->weight().value.at2(o, 0) = 0.0f;
  }
  const auto live = traffic_live(net, spec, topo, 2);
  const auto dense = traffic_dense(spec, topo, 2);
  // Unit 0 no longer travels to the 3 other cores.
  EXPECT_EQ(live.transitions[0].total_bytes,
            dense.transitions[0].total_bytes - 3 * 2);
}

TEST(TrafficLive, BlockGranularityCoarsens) {
  util::Rng rng(4);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 4;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  auto* fc = dynamic_cast<nn::FullyConnected*>(&net.layer_by_name("ip2"));
  for (std::size_t o = 0; o < fc->out_features(); ++o) {
    fc->weight().value.at2(o, 0) = 0.0f;
  }
  const auto fine = traffic_live(net, spec, topo, 2, Granularity::kFeatureMap);
  const auto coarse = traffic_live(net, spec, topo, 2, Granularity::kBlock);
  // Block granularity cannot be finer than per-feature-map.
  EXPECT_GE(coarse.total_bytes(), fine.total_bytes());
}

TEST(TrafficLive, SilentWhenAllOffDiagonalDead) {
  util::Rng rng(5);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 16;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  auto sets = build_group_sets(net, spec, cores);
  for (auto& set : sets) {
    for (std::size_t p = 0; p < cores; ++p) {
      for (std::size_t c = 0; c < cores; ++c) {
        if (p != c) set.kill_block(p, c);
      }
    }
  }
  const auto live = traffic_live(net, spec, topo, 2);
  EXPECT_EQ(live.total_bytes(), 0u);
}

}  // namespace
}  // namespace ls::core
