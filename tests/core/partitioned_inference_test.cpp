// Functional correctness of partitioned inference — the paper's central
// claims as executable properties.

#include "core/partitioned_inference.hpp"

#include <gtest/gtest.h>

#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace ls::core {
namespace {

tensor::Tensor sample_input(const nn::NetSpec& spec, std::size_t n,
                            util::Rng& rng) {
  return tensor::Tensor::uniform(
      tensor::Shape{n, spec.input.c, spec.input.h, spec.input.w}, 0.f, 1.f,
      rng);
}

// Paper §IV.A: traditional parallelization produces the same output as the
// non-parallelized network — for every network and core count.
class TraditionalEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(TraditionalEquivalence, PartitionedMatchesMonolithic) {
  const auto [which, cores] = GetParam();
  const nn::NetSpec spec = which == 0   ? nn::mlp_expt_spec()
                           : which == 1 ? nn::lenet_expt_spec()
                                        : nn::convnet_expt_spec();
  util::Rng rng(7 + static_cast<std::uint64_t>(which));
  nn::Network net = nn::build_network(spec, rng);
  const tensor::Tensor in = sample_input(spec, 2, rng);
  const tensor::Tensor mono = net.forward(in);
  PartitionedInference part(net, spec, cores);
  const tensor::Tensor dist = part.run(in);
  EXPECT_LT(tensor::max_abs_diff(mono, dist), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    NetsAndCores, TraditionalEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(2, 4, 16)));

TEST(PartitionedInference, DenseExchangesMatchDenseTrafficModel) {
  util::Rng rng(1);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 16;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  PartitionedInference part(net, spec, cores);
  part.run(sample_input(spec, 1, rng));
  const auto dense = traffic_dense(spec, topo, 2);
  EXPECT_EQ(part.total_bytes(), dense.total_bytes());
}

// Paper §IV.C: dropping transfers whose consumer weights are all zero
// changes nothing.
TEST(PartitionedInference, DeadBlockTransfersAreDroppableExactly) {
  util::Rng rng(2);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 16;
  auto sets = build_group_sets(net, spec, cores);
  // Kill a third of the off-diagonal blocks.
  for (auto& set : sets) {
    for (std::size_t p = 0; p < cores; ++p) {
      for (std::size_t c = 0; c < cores; ++c) {
        if (p != c && (p + 2 * c) % 3 == 0) set.kill_block(p, c);
      }
    }
  }
  const tensor::Tensor in = sample_input(spec, 2, rng);
  const tensor::Tensor mono = net.forward(in);
  PartitionedInference part(net, spec, cores);
  const tensor::Tensor dist = part.run(in);
  EXPECT_LT(tensor::max_abs_diff(mono, dist), 1e-5f);
  // And the exchanges actually shrank.
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  const auto dense = traffic_dense(spec, topo, 2);
  EXPECT_LT(part.total_bytes(), dense.total_bytes());
}

TEST(PartitionedInference, ExchangesCrossValidateTrafficLive) {
  // The functional executor and the analytic traffic model must agree on
  // the byte count, for both granularities, on a partially-dead network.
  util::Rng rng(3);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 8;
  auto sets = build_group_sets(net, spec, cores);
  for (auto& set : sets) {
    for (std::size_t p = 0; p < cores; ++p) {
      for (std::size_t c = 0; c < cores; ++c) {
        if (p != c && (p * 5 + c) % 4 == 0) set.kill_block(p, c);
      }
    }
  }
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  for (const auto gran :
       {Granularity::kFeatureMap, Granularity::kBlock}) {
    PartitionedInference part(net, spec, cores, gran);
    part.run(sample_input(spec, 1, rng));
    const auto model = traffic_live(net, spec, topo, 2, gran);
    EXPECT_EQ(part.total_bytes(), model.total_bytes())
        << (gran == Granularity::kFeatureMap ? "feature-map" : "block");
  }
}

TEST(PartitionedInference, GroupedConvLayersExchangeNothing) {
  util::Rng rng(4);
  const nn::NetSpec spec = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  nn::Network net = nn::build_network(spec, rng);
  PartitionedInference part(net, spec, 16);
  const tensor::Tensor in = sample_input(spec, 1, rng);
  const tensor::Tensor mono = net.forward(in);
  const tensor::Tensor dist = part.run(in);
  EXPECT_LT(tensor::max_abs_diff(mono, dist), 1e-4f);
  for (const auto& e : part.exchanges()) {
    if (e.layer_name == "conv2" || e.layer_name == "conv3") {
      EXPECT_EQ(e.bytes, 0u) << e.layer_name;
    }
  }
}

TEST(PartitionedInference, TrainedSparseNetworkStaysCorrect) {
  // End to end: train with the masked lasso, then verify the partitioned
  // execution (which drops all dead transfers) predicts identically to
  // the monolithic forward on test data.
  const nn::NetSpec spec = nn::mlp_expt_spec();
  const auto train_set = sim::dataset_for(spec, 256, 1);
  const auto test_set = sim::dataset_for(spec, 64, 2);
  util::Rng rng(5);
  nn::Network net = nn::build_network(spec, rng);
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  train::GroupLassoRegularizer reg(build_group_sets(net, spec, 16),
                                   train::distance_mask(topo), 0.8);
  train::TrainConfig tcfg;
  tcfg.epochs = 2;
  train::train_classifier(net, train_set, test_set, tcfg, &reg);

  PartitionedInference part(net, spec, 16);
  const tensor::Tensor logits_mono = net.forward(test_set.images);
  const tensor::Tensor logits_dist = part.run(test_set.images);
  EXPECT_LT(tensor::max_abs_diff(logits_mono, logits_dist), 1e-4f);
}

TEST(PartitionedInference, Fixed16ModePreservesPredictions) {
  util::Rng rng(6);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const tensor::Tensor in = sample_input(spec, 8, rng);
  PartitionedInference part(net, spec, 16);
  const auto float_preds = nn::argmax_rows(part.run(in, false));
  const auto fixed_preds = nn::argmax_rows(part.run(in, true, 12));
  std::size_t same = 0;
  for (std::size_t i = 0; i < float_preds.size(); ++i) {
    if (float_preds[i] == fixed_preds[i]) ++same;
  }
  EXPECT_GE(same, float_preds.size() - 1);
}

TEST(PartitionedInference, RejectsMismatchedSpec) {
  util::Rng rng(8);
  nn::Network net = nn::build_network(nn::mlp_expt_spec(), rng);
  const nn::NetSpec other = nn::lenet_expt_spec();
  EXPECT_THROW(PartitionedInference(net, other, 4), std::invalid_argument);
}

}  // namespace
}  // namespace ls::core
