#include "core/weight_groups.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace ls::core {
namespace {

TEST(WeightGroups, SkipsFirstComputeLayer) {
  util::Rng rng(1);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const auto sets = build_group_sets(net, spec, 16);
  // MLP has ip1/ip2/ip3; ip1 reads the replicated input -> 2 group sets.
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].layer_name, "ip2");
  EXPECT_EQ(sets[1].layer_name, "ip3");
  EXPECT_EQ(sets[0].in_units, 512u);
  EXPECT_EQ(sets[0].out_units, 304u);
}

TEST(WeightGroups, BlocksPartitionEveryWeightExactlyOnce) {
  util::Rng rng(2);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  for (std::size_t cores : {4u, 16u}) {
    const auto sets = build_group_sets(net, spec, cores);
    for (const auto& set : sets) {
      std::set<std::size_t> seen;
      std::size_t total = 0;
      for (std::size_t p = 0; p < cores; ++p) {
        for (std::size_t c = 0; c < cores; ++c) {
          for (std::size_t idx : set.block(p, c)) {
            EXPECT_TRUE(seen.insert(idx).second)
                << "duplicate index in " << set.layer_name;
            ++total;
          }
        }
      }
      EXPECT_EQ(total, set.weight->value.numel()) << set.layer_name;
    }
  }
}

TEST(WeightGroups, ConvBlockIndicesConnectCorrectChannels) {
  util::Rng rng(3);
  const nn::NetSpec spec = nn::lenet_expt_spec();  // conv2: 16 -> 32, k=5
  nn::Network net = nn::build_network(spec, rng);
  const std::size_t cores = 4;
  const auto sets = build_group_sets(net, spec, cores);
  const auto& conv2 = sets[0];
  ASSERT_EQ(conv2.layer_name, "conv2");
  EXPECT_EQ(conv2.in_units, 16u);
  EXPECT_EQ(conv2.out_units, 32u);
  // Block (p, c) holds (4 in-ch) x (8 out-ch) x 25 weights.
  for (std::size_t p = 0; p < cores; ++p) {
    for (std::size_t c = 0; c < cores; ++c) {
      EXPECT_EQ(conv2.block(p, c).size(), 4u * 8 * 25);
    }
  }
  // Spot-check: weight (oc=9, ic=5) belongs to block (p=owner(5), c=owner(9)).
  const std::size_t idx = (9 * 16 + 5) * 25 + 7;
  const std::size_t p = owner_of(5, 16, cores);
  const std::size_t c = owner_of(9, 32, cores);
  const auto& block = conv2.block(p, c);
  EXPECT_NE(std::find(block.begin(), block.end(), idx), block.end());
}

TEST(WeightGroups, FcAfterFlattenGroupsWholeFeatureMaps) {
  util::Rng rng(4);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const auto sets = build_group_sets(net, spec, 4);
  const auto& ip1 = sets[1];
  ASSERT_EQ(ip1.layer_name, "ip1");
  EXPECT_EQ(ip1.in_units, 32u);   // conv2 output channels
  EXPECT_EQ(ip1.out_units, 128u);
  // 512 features / 32 units = 16 elements (the 4x4 map) per unit; block
  // (0,0) = 8 producer units x 16 elements x 32 consumer rows.
  EXPECT_EQ(ip1.block(0, 0).size(), 8u * 16 * 32);
}

TEST(WeightGroups, BlockNormAndKill) {
  util::Rng rng(5);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  auto sets = build_group_sets(net, spec, 4);
  auto& set = sets[0];
  EXPECT_GT(set.block_norm(1, 2), 0.0);
  EXPECT_FALSE(set.block_dead(1, 2));
  set.kill_block(1, 2);
  EXPECT_TRUE(set.block_dead(1, 2));
  EXPECT_EQ(set.block_norm(1, 2), 0.0);
  // Other blocks untouched.
  EXPECT_FALSE(set.block_dead(1, 1));
  EXPECT_NEAR(set.off_diagonal_dead_fraction(), 1.0 / 12.0, 1e-9);
}

TEST(WeightGroups, GroupedConvLayersAreSkipped) {
  util::Rng rng(6);
  const nn::NetSpec spec = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  nn::Network net = nn::build_network(spec, rng);
  const auto sets = build_group_sets(net, spec, 16);
  for (const auto& set : sets) {
    EXPECT_NE(set.layer_name, "conv2");
    EXPECT_NE(set.layer_name, "conv3");
  }
}

TEST(WeightGroups, RaggedUnitCounts) {
  // 20 channels on 16 cores: fat cores own 2, others 1, trailing cores 0.
  util::Rng rng(7);
  nn::NetSpec spec;
  spec.name = "ragged";
  spec.dataset = "t";
  spec.input = {1, 12, 12};
  spec.layers = {nn::LayerSpec::conv("c1", 20, 3),
                 nn::LayerSpec::conv("c2", 24, 3)};
  nn::Network net = nn::build_network(spec, rng);
  const auto sets = build_group_sets(net, spec, 16);
  ASSERT_EQ(sets.size(), 1u);
  std::size_t total = 0;
  for (std::size_t p = 0; p < 16; ++p) {
    for (std::size_t c = 0; c < 16; ++c) {
      total += sets[0].block(p, c).size();
    }
  }
  EXPECT_EQ(total, 24u * 20 * 9);
}

TEST(WeightGroups, RejectsZeroCores) {
  util::Rng rng(8);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  EXPECT_THROW(build_group_sets(net, spec, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ls::core
