#include "core/partition.hpp"

#include <gtest/gtest.h>

namespace ls::core {
namespace {

TEST(BalancedRanges, EvenSplit) {
  const auto r = balanced_ranges(16, 4);
  ASSERT_EQ(r.size(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(r[p].count(), 4u);
    EXPECT_EQ(r[p].begin, p * 4);
  }
}

TEST(BalancedRanges, RaggedSplit) {
  const auto r = balanced_ranges(10, 4);
  EXPECT_EQ(r[0].count(), 3u);
  EXPECT_EQ(r[1].count(), 3u);
  EXPECT_EQ(r[2].count(), 2u);
  EXPECT_EQ(r[3].count(), 2u);
  EXPECT_EQ(r[3].end, 10u);
}

TEST(BalancedRanges, MorePartsThanUnits) {
  const auto r = balanced_ranges(3, 8);
  std::size_t total = 0;
  for (const auto& range : r) total += range.count();
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(r[3].count(), 0u);
  EXPECT_EQ(r[7].count(), 0u);
}

TEST(BalancedRanges, ContiguousAndComplete) {
  for (std::size_t units : {1u, 7u, 16u, 20u, 304u}) {
    for (std::size_t parts : {1u, 4u, 8u, 16u, 32u}) {
      const auto r = balanced_ranges(units, parts);
      std::size_t cursor = 0;
      for (const auto& range : r) {
        EXPECT_EQ(range.begin, cursor);
        cursor = range.end;
      }
      EXPECT_EQ(cursor, units);
    }
  }
}

TEST(BalancedRanges, RejectsZeroParts) {
  EXPECT_THROW(balanced_ranges(4, 0), std::invalid_argument);
}

TEST(OwnerOf, MatchesRanges) {
  for (std::size_t units : {1u, 5u, 16u, 20u, 50u, 304u}) {
    for (std::size_t parts : {1u, 3u, 8u, 16u, 32u}) {
      const auto r = balanced_ranges(units, parts);
      for (std::size_t u = 0; u < units; ++u) {
        const std::size_t owner = owner_of(u, units, parts);
        EXPECT_TRUE(r[owner].contains(u))
            << "u=" << u << " units=" << units << " parts=" << parts;
      }
    }
  }
}

TEST(OwnerOf, RejectsOutOfRange) {
  EXPECT_THROW(owner_of(5, 5, 2), std::out_of_range);
}

}  // namespace
}  // namespace ls::core
