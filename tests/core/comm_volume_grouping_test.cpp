#include <gtest/gtest.h>

#include "core/comm_volume.hpp"
#include "core/grouping.hpp"
#include "nn/model_zoo.hpp"

namespace ls::core {
namespace {

TEST(CommVolume, MlpMatchesPaperTable1) {
  const auto table = comm_volume_table(nn::mlp_spec(), 16);
  ASSERT_EQ(table.size(), 2u);
  // Paper TABLE I: 28K into ip2, 17K into ip2/3.
  EXPECT_NEAR(table[0].bytes / 1024.0, 28.0, 0.5);
  EXPECT_NEAR(table[1].bytes / 1024.0, 17.0, 0.5);
}

TEST(CommVolume, ConvNetMatchesPaperTable1) {
  const auto table = comm_volume_table(nn::convnet_spec(), 16);
  // conv2: 450K, conv3: 113K, ip1: 57K.
  EXPECT_NEAR(table[0].bytes / 1024.0, 450.0, 10.0);
  EXPECT_NEAR(table[1].bytes / 1024.0, 113.0, 2.0);
  EXPECT_NEAR(table[2].bytes / 1024.0, 57.0, 2.0);
}

TEST(CommVolume, ScalesWithBroadcastFactor) {
  const nn::NetSpec spec = nn::mlp_spec();
  const double v4 = total_comm_volume(spec, 4);
  const double v16 = total_comm_volume(spec, 16);
  // Factor (P-1)^2/P: 2.25 at P=4, 14.0625 at P=16.
  EXPECT_NEAR(v16 / v4, 14.0625 / 2.25, 1e-9);
}

TEST(CommVolume, MonotoneInModelSize) {
  EXPECT_LT(total_comm_volume(nn::lenet_spec(), 16),
            total_comm_volume(nn::alexnet_spec(), 16));
  EXPECT_LT(total_comm_volume(nn::alexnet_spec(), 16),
            total_comm_volume(nn::vgg19_spec(), 16));
}

TEST(Grouping, AppliesToNamedLayers) {
  const nn::NetSpec spec = nn::convnet_variant_spec(64, 128, 256, 1);
  const nn::NetSpec grouped = apply_grouping(spec, {"conv2", "conv3"}, 16);
  for (const auto& l : grouped.layers) {
    if (l.name == "conv2" || l.name == "conv3") {
      EXPECT_EQ(l.groups, 16u);
    } else if (l.kind == nn::LayerKind::kConv) {
      EXPECT_EQ(l.groups, 1u);
    }
  }
}

TEST(Grouping, RejectsUnknownOrNonConv) {
  const nn::NetSpec spec = nn::convnet_variant_spec(64, 128, 256, 1);
  EXPECT_THROW(apply_grouping(spec, {"nope"}, 4), std::invalid_argument);
  EXPECT_THROW(apply_grouping(spec, {"pool1"}, 4), std::invalid_argument);
}

TEST(Grouping, RejectsIndivisibleChannels) {
  const nn::NetSpec spec = nn::convnet_variant_spec(64, 100, 256, 1);
  EXPECT_THROW(apply_grouping(spec, {"conv2"}, 16), std::invalid_argument);
}

TEST(Grouping, RejectsIndivisibleInputChannels) {
  // conv2 out divisible, but its input (conv1 = 20 maps) is not.
  nn::NetSpec spec;
  spec.name = "t";
  spec.input = {3, 16, 16};
  spec.layers = {nn::LayerSpec::conv("conv1", 20, 3, 1, 1),
                 nn::LayerSpec::conv("conv2", 32, 3, 1, 1)};
  EXPECT_THROW(apply_grouping(spec, {"conv2"}, 16), std::invalid_argument);
}

TEST(Grouping, DefaultTargetsSkipFirstConv) {
  const auto targets = default_grouping_targets(nn::convnet_spec());
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], "conv2");
  EXPECT_EQ(targets[1], "conv3");
}

TEST(Grouping, ZeroGroupsRejected) {
  EXPECT_THROW(
      apply_grouping(nn::convnet_spec(), {"conv2"}, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace ls::core
