// Tests for the hybrid (grouping + masked lasso) experiment pipeline.

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace ls::sim {
namespace {

nn::NetSpec micro_dense() {
  nn::NetSpec spec;
  spec.name = "microconv";
  spec.dataset = "microconv";
  spec.input = {1, 12, 12};
  spec.layers = {nn::LayerSpec::conv("conv1", 8, 3, 1, 1),
                 nn::LayerSpec::relu("r1"),
                 nn::LayerSpec::pool("p1", 2, 2),
                 nn::LayerSpec::conv("conv2", 16, 3, 1, 1),
                 nn::LayerSpec::relu("r2"),
                 nn::LayerSpec::flatten("flat"),
                 nn::LayerSpec::fc("fc1", 16),
                 nn::LayerSpec::relu("r3"),
                 nn::LayerSpec::fc("fc2", 4)};
  return spec;
}

data::Dataset micro_data(std::uint64_t sample_seed) {
  data::SyntheticSpec s;
  s.num_classes = 4;
  s.channels = 1;
  s.height = 12;
  s.width = 12;
  s.samples = 192;
  s.noise = 0.10;
  s.seed = 21;
  s.sample_seed = sample_seed;
  return data::make_synthetic(s);
}

TEST(Hybrid, BeatsGroupingAloneOnTraffic) {
  nn::NetSpec grouped = micro_dense();
  grouped.layers[3].groups = 2;  // conv2 grouped

  ExperimentConfig cfg;
  cfg.cores = 4;
  cfg.train.epochs = 8;
  cfg.lambda_mask = 0.8;
  cfg.seed = 11;

  const auto train = micro_data(1);
  const auto test = micro_data(2);
  const auto base =
      run_structure_level_variant(micro_dense(), train, test, cfg, nullptr);
  const auto grp =
      run_structure_level_variant(grouped, train, test, cfg, &base);
  const auto hyb = run_hybrid_variant(grouped, train, test, cfg, &base);

  EXPECT_EQ(hyb.scheme.rfind("Hybrid", 0), 0u);
  // The hybrid sparsifies the FC transitions that grouping leaves dense.
  EXPECT_LE(hyb.result.traffic_bytes, grp.result.traffic_bytes);
  EXPECT_GT(hyb.dead_block_fraction, 0.0);
  EXPECT_GE(hyb.speedup, grp.speedup * 0.95);  // at worst on par
  EXPECT_GT(hyb.accuracy, 0.7);
}

TEST(Hybrid, GroupedLayersStaySilent) {
  nn::NetSpec grouped = micro_dense();
  grouped.layers[3].groups = 4;  // groups == cores -> silent transition
  ExperimentConfig cfg;
  cfg.cores = 4;
  cfg.train.epochs = 2;
  cfg.lambda_mask = 0.5;
  const auto train = micro_data(1);
  const auto test = micro_data(2);
  const auto hyb = run_hybrid_variant(grouped, train, test, cfg, nullptr);
  for (const auto& layer : hyb.result.layers) {
    if (layer.layer_name == "conv2") {
      EXPECT_EQ(layer.traffic_bytes, 0u);
    }
  }
}

}  // namespace
}  // namespace ls::sim
