#include "sim/pipeline_model.hpp"

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"

namespace ls::sim {
namespace {

TEST(PipelineModel, SinglePassIsSumOfStages) {
  SystemConfig cfg;
  cfg.cores = 4;
  const auto spec = nn::lenet_spec();
  const auto assignment = core::assign_pipeline(spec, 4, cfg.bytes_per_value);
  const auto r = run_pipeline(spec, assignment, cfg);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < r.stage_compute_cycles.size(); ++s) {
    total += r.stage_compute_cycles[s] + r.stage_transfer_cycles[s];
  }
  EXPECT_EQ(r.single_pass_cycles, total);
  EXPECT_EQ(r.stage_compute_cycles.size(), assignment.stages.size());
}

TEST(PipelineModel, IntervalIsSlowestStage) {
  SystemConfig cfg;
  cfg.cores = 4;
  const auto spec = nn::convnet_spec();
  const auto assignment = core::assign_pipeline(spec, 4, cfg.bytes_per_value);
  const auto r = run_pipeline(spec, assignment, cfg);
  std::uint64_t worst = 0;
  for (std::size_t s = 0; s < r.stage_compute_cycles.size(); ++s) {
    worst = std::max(worst,
                     r.stage_compute_cycles[s] + r.stage_transfer_cycles[s]);
  }
  EXPECT_EQ(r.initiation_interval, worst);
  EXPECT_LE(r.initiation_interval, r.single_pass_cycles);
}

TEST(PipelineModel, SinglePassSlowerThanIntraLayer) {
  // The paper's §II.B point, as an invariant.
  SystemConfig cfg;
  cfg.cores = 16;
  CmpSystem system(cfg);
  for (const auto& spec : {nn::mlp_spec(), nn::lenet_spec()}) {
    const auto traffic =
        core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
    const auto intra = system.run_inference(spec, traffic);
    const auto pipe = run_pipeline(
        spec, core::assign_pipeline(spec, cfg.cores, cfg.bytes_per_value),
        cfg);
    EXPECT_GT(pipe.single_pass_cycles, intra.total_cycles) << spec.name;
  }
}

TEST(PipelineModel, LastStageHasNoTransfer) {
  SystemConfig cfg;
  cfg.cores = 4;
  const auto spec = nn::mlp_spec();
  const auto r = run_pipeline(
      spec, core::assign_pipeline(spec, 4, cfg.bytes_per_value), cfg);
  EXPECT_EQ(r.stage_transfer_cycles.back(), 0u);
}

TEST(PipelineModel, RejectsTooManyStages) {
  SystemConfig cfg;
  cfg.cores = 2;
  const auto assignment = core::assign_pipeline(nn::vgg19_spec(), 8, 2);
  if (assignment.stages.size() > 2) {
    EXPECT_THROW(run_pipeline(nn::vgg19_spec(), assignment, cfg),
                 std::invalid_argument);
  }
}

TEST(PipelineModel, RejectsEmptyAssignment) {
  SystemConfig cfg;
  EXPECT_THROW(run_pipeline(nn::mlp_spec(), core::PipelineAssignment{}, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace ls::sim
