// End-to-end pipeline tests on a deliberately tiny network so the full
// train -> sparsify -> simulate flow stays fast.

#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace ls::sim {
namespace {

nn::NetSpec micro_spec() {
  nn::NetSpec spec;
  spec.name = "micro";
  spec.dataset = "micro";
  spec.input = {1, 8, 8};
  spec.layers = {nn::LayerSpec::flatten("flat"),
                 nn::LayerSpec::fc("fc1", 32), nn::LayerSpec::relu("r1"),
                 nn::LayerSpec::fc("fc2", 16), nn::LayerSpec::relu("r2"),
                 nn::LayerSpec::fc("fc3", 4)};
  return spec;
}

ExperimentConfig micro_cfg() {
  ExperimentConfig cfg;
  cfg.cores = 4;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 16;
  cfg.lambda_ss = 0.8;
  cfg.lambda_mask = 0.8;
  cfg.seed = 7;
  return cfg;
}

data::Dataset micro_data(std::uint64_t sample_seed) {
  data::SyntheticSpec s;
  s.num_classes = 4;
  s.channels = 1;
  s.height = 8;
  s.width = 8;
  s.samples = 128;
  s.noise = 0.15;
  s.max_shift = 1;
  s.seed = 77;
  s.sample_seed = sample_seed;
  return data::make_synthetic(s);
}

TEST(Experiment, DatasetForMatchesSpecShape) {
  const auto ds = dataset_for(nn::NetSpec{"x", "mnist-ish", {1, 28, 28}, {}},
                              32, 1);
  EXPECT_EQ(ds.images.shape(), tensor::Shape({32, 1, 28, 28}));
  EXPECT_EQ(ds.num_classes, 10u);
}

TEST(Experiment, DatasetForSplitsShareTask) {
  const nn::NetSpec spec{"x", "tag", {1, 28, 28}, {}};
  const auto train = dataset_for(spec, 16, 1);
  const auto test = dataset_for(spec, 16, 2);
  // Different samples...
  EXPECT_GT(tensor::max_abs_diff(train.images, test.images), 0.01f);
}

TEST(Experiment, SparsifiedPipelineShapes) {
  const auto outcomes = run_sparsified_experiment(micro_spec(), micro_data(1),
                                                  micro_data(2), micro_cfg());
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].scheme, "Baseline");
  EXPECT_EQ(outcomes[1].scheme, "SS");
  EXPECT_EQ(outcomes[2].scheme, "SS_Mask");

  const auto& base = outcomes[0];
  EXPECT_DOUBLE_EQ(base.speedup, 1.0);
  EXPECT_DOUBLE_EQ(base.traffic_rate, 1.0);
  EXPECT_GT(base.accuracy, 0.5);

  for (std::size_t i = 1; i < 3; ++i) {
    const auto& o = outcomes[i];
    EXPECT_LE(o.traffic_rate, 1.0) << o.scheme;
    EXPECT_GE(o.speedup, 1.0) << o.scheme;
    EXPECT_GE(o.comm_energy_reduction, 0.0) << o.scheme;
    EXPECT_GT(o.dead_block_fraction, 0.0) << o.scheme;
  }
}

TEST(Experiment, MaskKeepsResidualTrafficLocal) {
  auto cfg = micro_cfg();
  cfg.lambda_ss = 0.4;  // keep some traffic alive for both schemes
  cfg.lambda_mask = 0.4;
  const auto outcomes = run_sparsified_experiment(micro_spec(), micro_data(1),
                                                  micro_data(2), cfg);
  const auto& base = outcomes[0];
  const auto& mask = outcomes[2];
  if (mask.result.traffic_bytes > 0) {
    // Surviving SS_Mask traffic travels fewer hops on average than dense.
    EXPECT_LE(mask.mean_traffic_hops, base.mean_traffic_hops + 1e-9);
  }
}

TEST(Experiment, StructureLevelVariantAgainstBaseline) {
  // Grouped micro-conv network: conv2 grouped 4 ways on 4 cores.
  nn::NetSpec dense;
  dense.name = "microconv";
  dense.dataset = "microconv";
  dense.input = {1, 12, 12};
  dense.layers = {nn::LayerSpec::conv("conv1", 8, 3, 1, 1),
                  nn::LayerSpec::relu("r1"),
                  nn::LayerSpec::pool("p1", 2, 2),
                  nn::LayerSpec::conv("conv2", 8, 3, 1, 1),
                  nn::LayerSpec::relu("r2"),
                  nn::LayerSpec::flatten("flat"),
                  nn::LayerSpec::fc("fc", 4)};
  nn::NetSpec grouped = dense;
  grouped.layers[3].groups = 4;

  data::SyntheticSpec s;
  s.num_classes = 4;
  s.channels = 1;
  s.height = 12;
  s.width = 12;
  s.samples = 96;
  s.seed = 9;
  const auto train = data::make_synthetic(s);
  s.sample_seed = 1;
  const auto test = data::make_synthetic(s);

  ExperimentConfig cfg;
  cfg.cores = 4;
  cfg.train.epochs = 2;
  const auto base =
      run_structure_level_variant(dense, train, test, cfg, nullptr);
  const auto var =
      run_structure_level_variant(grouped, train, test, cfg, &base);
  EXPECT_GT(var.speedup, 1.0);
  EXPECT_LT(var.result.traffic_bytes, base.result.traffic_bytes);
}

}  // namespace
}  // namespace ls::sim
