// Golden regression tests: fixed seeds and configurations pin down the
// simulator's exact outputs. These exist to catch *unintentional* changes
// to the models — if a change is intentional, update the constants and
// say why in the commit.

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"

namespace ls::sim {
namespace {

TEST(Regression, MlpDenseInferenceCycles) {
  SystemConfig cfg;  // all defaults: 16 cores, TABLE II parameters
  CmpSystem system(cfg);
  const auto spec = nn::mlp_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const auto r = system.run_inference(spec, traffic);
  // Compute: 545,546 MACs over 16 cores at 256 MACs/cycle x 0.85.
  EXPECT_EQ(r.compute_cycles, 163u);
  EXPECT_EQ(r.layers.size(), 3u);
  EXPECT_EQ(r.traffic_bytes, 512u * 15 * 2 + 10u * (304 - 19) * 2);
  // NoC drain of the two bursts is deterministic.
  EXPECT_EQ(r.comm_cycles, r.layers[1].comm_cycles + r.layers[2].comm_cycles);
  EXPECT_GT(r.comm_cycles, 40u);
  EXPECT_LT(r.comm_cycles, 80u);
}

TEST(Regression, AlexNetMacsAndWeights) {
  EXPECT_EQ(nn::total_macs(nn::alexnet_spec()), 1'135'256'096u);
  EXPECT_EQ(nn::total_weights(nn::alexnet_spec()), 62'367'776u);
}

TEST(Regression, Vgg19Macs) {
  EXPECT_EQ(nn::total_macs(nn::vgg19_spec()), 19'632'062'464u);
}

TEST(Regression, LenetDenseTrafficBytes) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(16);
  const auto traffic = core::traffic_dense(nn::lenet_spec(), topo, 2);
  // conv2: 20 maps x 144 elems, ragged ownership on 16 cores; ip1: 50 maps
  // x 16 elems; ip2: 500 neurons over 16 cores to 10 consumers.
  ASSERT_EQ(traffic.transitions.size(), 3u);
  std::size_t conv2 = 0;
  for (const auto& m : traffic.transitions[0].messages) conv2 += m.bytes;
  EXPECT_EQ(conv2, traffic.transitions[0].total_bytes);
  EXPECT_EQ(traffic.total_bytes(),
            traffic.transitions[0].total_bytes +
                traffic.transitions[1].total_bytes +
                traffic.transitions[2].total_bytes);
  // Byte-hops exceed bytes (every message crosses >= 1 hop).
  EXPECT_GT(traffic.total_byte_hops(), traffic.total_bytes());
}

TEST(Regression, NocAllToAllDrainCycles) {
  const noc::MeshNocSimulator sim(noc::MeshTopology(4, 4), noc::NocConfig{});
  std::vector<noc::Message> msgs;
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t d = 0; d < 16; ++d) {
      if (s != d) msgs.push_back({s, d, 4096, 0});
    }
  }
  const auto stats = sim.run(msgs);
  EXPECT_EQ(stats.total_flits, 240u * 64);
  EXPECT_EQ(stats.completion_cycle, 1879u);
  EXPECT_EQ(stats.flit_hops, 40960u);
}

TEST(Regression, SystemEnergySplit) {
  SystemConfig cfg;
  CmpSystem system(cfg);
  const auto spec = nn::convnet_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const auto r = system.run_inference(spec, traffic);
  // Energy model constants are part of the contract.
  EXPECT_NEAR(r.compute_energy_pj / 1e6, 28.46, 0.5);  // ~28 uJ
  EXPECT_NEAR(r.noc_energy_pj / 1e6, 0.347, 0.05);     // ~0.35 uJ
}

}  // namespace
}  // namespace ls::sim
