// Tracing and metrics are observers: enabling them must not change any
// simulated result. Runs the same inference with the tracer off and on
// (in-memory capture) and asserts byte-identical InferenceResults via the
// defaulted operator==.

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/system.hpp"

namespace ls {
namespace {

sim::InferenceResult run_once(const nn::NetSpec& spec, std::size_t cores) {
  sim::SystemConfig cfg;
  cfg.cores = cores;
  // Force every burst through the flit simulator so both runs exercise the
  // full instrumented path rather than the memoization cache.
  cfg.noc_result_cache = false;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  return system.run_inference(spec, traffic);
}

class ObsDeterminismTest : public testing::TestWithParam<const char*> {};

TEST_P(ObsDeterminismTest, TracingDoesNotPerturbInference) {
  const std::string net = GetParam();
  const nn::NetSpec spec =
      net == "lenet" ? nn::lenet_spec() : nn::alexnet_spec();

  obs::Tracer& tr = obs::Tracer::instance();
  tr.stop();
  tr.clear();

  const sim::InferenceResult off = run_once(spec, 16);

  tr.start("");  // in-memory capture only
  const sim::InferenceResult on = run_once(spec, 16);
  tr.stop();

  EXPECT_GT(tr.event_count(), 0u) << "tracer captured nothing while enabled";
  EXPECT_TRUE(off == on) << "tracing changed the simulated result";
  EXPECT_EQ(off.total_cycles, on.total_cycles);
  EXPECT_EQ(off.layers.size(), on.layers.size());
  tr.clear();
}

INSTANTIATE_TEST_SUITE_P(Nets, ObsDeterminismTest,
                         testing::Values("lenet", "alexnet"));

TEST(ObsDeterminism, MetricsAccumulateHeatmapDuringInference) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  run_once(nn::lenet_spec(), 16);
  const obs::LinkHeatmap hm = reg.link_heatmap();
  EXPECT_EQ(hm.cols * hm.rows, 16u);
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < hm.cols * hm.rows; ++r) {
    total += hm.router_total(r);
  }
  EXPECT_GT(total, 0u) << "no per-link flits reached the registry";
  EXPECT_GT(reg.counter("sim.inferences").value(), 0u);
  reg.reset();
}

}  // namespace
}  // namespace ls
