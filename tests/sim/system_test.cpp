#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "core/grouping.hpp"
#include "nn/model_zoo.hpp"

namespace ls::sim {
namespace {

core::InferenceTraffic dense_traffic(const nn::NetSpec& spec,
                                     const CmpSystem& system) {
  return core::traffic_dense(spec, system.topology(),
                             system.config().bytes_per_value);
}

TEST(CmpSystem, LayersCoverComputeLayers) {
  SystemConfig cfg;
  CmpSystem system(cfg);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  const auto result = system.run_inference(spec, dense_traffic(spec, system));
  ASSERT_EQ(result.layers.size(), 3u);  // ip1, ip2, ip3
  EXPECT_EQ(result.layers[0].layer_name, "ip1");
  EXPECT_EQ(result.layers[0].comm_cycles, 0u);  // input replicated
  EXPECT_GT(result.layers[1].comm_cycles, 0u);
}

TEST(CmpSystem, TotalsAreSums) {
  SystemConfig cfg;
  CmpSystem system(cfg);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  const auto result = system.run_inference(spec, dense_traffic(spec, system));
  std::uint64_t compute = 0, comm = 0;
  double noc_e = 0.0;
  for (const auto& layer : result.layers) {
    compute += layer.compute_cycles;
    comm += layer.blocking_comm_cycles;
    noc_e += layer.noc_energy_pj;
  }
  EXPECT_EQ(result.compute_cycles, compute);
  EXPECT_EQ(result.comm_cycles, comm);
  EXPECT_EQ(result.total_cycles, compute + comm);
  EXPECT_DOUBLE_EQ(result.noc_energy_pj, noc_e);
  EXPECT_GT(result.comm_fraction(), 0.0);
  EXPECT_LT(result.comm_fraction(), 1.0);
}

TEST(CmpSystem, MoreCoresLessComputeTime) {
  const nn::NetSpec spec = nn::convnet_expt_spec();
  SystemConfig c4;
  c4.cores = 4;
  SystemConfig c16;
  c16.cores = 16;
  CmpSystem s4(c4), s16(c16);
  const auto r4 = s4.run_inference(spec, dense_traffic(spec, s4));
  const auto r16 = s16.run_inference(spec, dense_traffic(spec, s16));
  EXPECT_GT(r4.compute_cycles, r16.compute_cycles);
}

TEST(CmpSystem, CommGrowsWithCores) {
  const nn::NetSpec spec = nn::mlp_expt_spec();
  SystemConfig c4;
  c4.cores = 4;
  SystemConfig c16;
  c16.cores = 16;
  CmpSystem s4(c4), s16(c16);
  const auto r4 = s4.run_inference(spec, dense_traffic(spec, s4));
  const auto r16 = s16.run_inference(spec, dense_traffic(spec, s16));
  EXPECT_GT(r16.traffic_bytes, r4.traffic_bytes);
  EXPECT_GT(r16.comm_fraction(), r4.comm_fraction());
}

TEST(CmpSystem, GroupedSpecRemovesTrafficAndCompute) {
  const nn::NetSpec dense = nn::convnet_variant_expt_spec(32, 64, 128, 1);
  const nn::NetSpec grouped = nn::convnet_variant_expt_spec(32, 64, 128, 16);
  SystemConfig cfg;
  cfg.cores = 16;
  CmpSystem system(cfg);
  const auto rd = system.run_inference(dense, dense_traffic(dense, system));
  const auto rg =
      system.run_inference(grouped, dense_traffic(grouped, system));
  EXPECT_LT(rg.traffic_bytes, rd.traffic_bytes);
  EXPECT_LT(rg.compute_cycles, rd.compute_cycles);
  EXPECT_GT(speedup(rd, rg), 1.5);
}

TEST(CmpSystem, OverlapHidesCommBehindCompute) {
  const nn::NetSpec spec = nn::lenet_expt_spec();
  SystemConfig blocked;
  SystemConfig overlapped = blocked;
  overlapped.overlap_comm = true;
  CmpSystem sb(blocked), so(overlapped);
  const auto rb = sb.run_inference(spec, dense_traffic(spec, sb));
  const auto ro = so.run_inference(spec, dense_traffic(spec, so));
  EXPECT_LE(ro.comm_cycles, rb.comm_cycles);
  EXPECT_LE(ro.total_cycles, rb.total_cycles);
  // Energy is unaffected by overlap.
  EXPECT_DOUBLE_EQ(ro.noc_energy_pj, rb.noc_energy_pj);
}

TEST(CmpSystem, NocClockDividerScalesCommOnly) {
  const nn::NetSpec spec = nn::mlp_expt_spec();
  SystemConfig fast;
  SystemConfig slow = fast;
  slow.noc_clock_divider = 2.0;
  CmpSystem sf(fast), ss(slow);
  const auto rf = sf.run_inference(spec, dense_traffic(spec, sf));
  const auto rs = ss.run_inference(spec, dense_traffic(spec, ss));
  EXPECT_EQ(rs.compute_cycles, rf.compute_cycles);
  EXPECT_NEAR(static_cast<double>(rs.comm_cycles),
              2.0 * static_cast<double>(rf.comm_cycles),
              static_cast<double>(rf.layers.size())); // rounding per layer
  EXPECT_DOUBLE_EQ(rs.noc_energy_pj, rf.noc_energy_pj);
}

TEST(CmpSystem, MetricsHelpers) {
  InferenceResult base;
  base.total_cycles = 1000;
  base.traffic_bytes = 500;
  base.noc_energy_pj = 80.0;
  InferenceResult v;
  v.total_cycles = 500;
  v.traffic_bytes = 100;
  v.noc_energy_pj = 20.0;
  EXPECT_DOUBLE_EQ(speedup(base, v), 2.0);
  EXPECT_DOUBLE_EQ(traffic_rate(base, v), 0.2);
  EXPECT_DOUBLE_EQ(comm_energy_reduction(base, v), 0.75);
}

// Degenerate baselines/variants must not poison downstream tables with
// inf/NaN: each helper logs a warning and yields 0 instead.
TEST(CmpSystem, ZeroBaselineGuardsReturnZero) {
  InferenceResult base;
  base.total_cycles = 1000;
  base.traffic_bytes = 500;
  base.noc_energy_pj = 80.0;
  InferenceResult zero;  // all-zero result
  EXPECT_DOUBLE_EQ(speedup(base, zero), 0.0);       // variant ran 0 cycles
  EXPECT_DOUBLE_EQ(traffic_rate(zero, base), 0.0);  // baseline moved 0 bytes
  EXPECT_DOUBLE_EQ(comm_energy_reduction(zero, base), 0.0);  // 0 pJ baseline
  // Sane inputs stay exact.
  InferenceResult v;
  v.total_cycles = 500;
  v.traffic_bytes = 100;
  v.noc_energy_pj = 20.0;
  EXPECT_DOUBLE_EQ(speedup(base, v), 2.0);
}

TEST(CmpSystem, EnergySplitsComputeAndNoc) {
  SystemConfig cfg;
  CmpSystem system(cfg);
  const nn::NetSpec spec = nn::mlp_expt_spec();
  const auto r = system.run_inference(spec, dense_traffic(spec, system));
  EXPECT_GT(r.compute_energy_pj, 0.0);
  EXPECT_GT(r.noc_energy_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.total_energy_pj(),
                   r.compute_energy_pj + r.noc_energy_pj);
  // Compute (MAC + SRAM) energy dominates NoC energy for these models.
  EXPECT_GT(r.compute_energy_pj, r.noc_energy_pj);
}

}  // namespace
}  // namespace ls::sim
