// Mask-aware cycle model tests: the SparsityProfile discount must reduce
// compute cycles proportionally to the pruned-block MAC fraction while
// leaving every communication quantity untouched, and the
// sparse_cycle_model ablation switch must restore the dense result
// exactly.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/sparsity_profile.hpp"
#include "core/traffic.hpp"
#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"

namespace ls::sim {
namespace {

struct Fixture {
  nn::NetSpec spec = nn::lenet_expt_spec();
  nn::Network net;
  std::vector<core::LayerGroupSet> sets;

  explicit Fixture(std::size_t cores) : net(make_net()) {
    sets = core::build_group_sets(net, spec, cores);
  }

  nn::Network make_net() {
    util::Rng rng(11);
    return nn::build_network(spec, rng);
  }
};

TEST(SparsityProfile, LiveFractionsReflectKilledBlocks) {
  Fixture f(4);
  ASSERT_FALSE(f.sets.empty());
  // Kill producer panels 0 and 1 for every consumer of the first profiled
  // layer: each consumer keeps exactly half its weights (lenet_expt units
  // divide evenly by 4).
  core::LayerGroupSet& set = f.sets.front();
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t c = 0; c < set.cores; ++c) set.kill_block(p, c);
  }
  const auto profile = core::profile_from_groups(f.sets);
  ASSERT_EQ(profile.layers.size(), f.sets.size());
  const core::LayerSparsity* ls = profile.find(set.layer_name);
  ASSERT_NE(ls, nullptr);
  for (double frac : ls->live_fraction) EXPECT_DOUBLE_EQ(frac, 0.5);
  EXPECT_DOUBLE_EQ(ls->layer_live_fraction, 0.5);
  // Untouched layers stay dense.
  const core::LayerSparsity* other =
      profile.find(f.sets.back().layer_name);
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->layer_live_fraction, 1.0);
  // Layers never profiled read as dense via find().
  EXPECT_EQ(profile.find("no-such-layer"), nullptr);
}

TEST(SparseCycleModel, DiscountsComputeNotComm) {
  const std::size_t cores = 4;
  Fixture f(cores);
  core::LayerGroupSet& set = f.sets.front();
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t c = 0; c < set.cores; ++c) set.kill_block(p, c);
  }
  const auto profile = core::profile_from_groups(f.sets);

  SystemConfig cfg;
  cfg.cores = cores;
  CmpSystem system(cfg);
  const auto traffic = core::traffic_dense(
      f.spec, system.topology(), cfg.bytes_per_value);

  const InferenceResult dense = system.run_inference(f.spec, traffic);
  const InferenceResult sparse =
      system.run_inference(f.spec, traffic, &profile);

  ASSERT_EQ(dense.layers.size(), sparse.layers.size());
  for (std::size_t i = 0; i < dense.layers.size(); ++i) {
    const LayerTimeline& d = dense.layers[i];
    const LayerTimeline& s = sparse.layers[i];
    SCOPED_TRACE(d.layer_name);
    // Communication must be untouched by the compute discount.
    EXPECT_EQ(d.comm_cycles, s.comm_cycles);
    EXPECT_EQ(d.blocking_comm_cycles, s.blocking_comm_cycles);
    EXPECT_EQ(d.traffic_bytes, s.traffic_bytes);
    EXPECT_DOUBLE_EQ(d.noc_energy_pj, s.noc_energy_pj);
    if (d.layer_name == set.layer_name) {
      // Every consumer kept exactly half its MACs; compute cycles are
      // ceil(macs / rate) per core, so the ratio is 0.5 up to rounding.
      ASSERT_GT(d.compute_cycles, 0u);
      const double ratio = static_cast<double>(s.compute_cycles) /
                           static_cast<double>(d.compute_cycles);
      EXPECT_NEAR(ratio, 0.5, 0.02);
    } else {
      EXPECT_EQ(d.compute_cycles, s.compute_cycles);
    }
  }
  EXPECT_LT(sparse.compute_cycles, dense.compute_cycles);
  EXPECT_EQ(sparse.comm_cycles, dense.comm_cycles);
}

TEST(SparseCycleModel, AblationSwitchRestoresDenseResult) {
  const std::size_t cores = 4;
  Fixture f(cores);
  for (auto& set : f.sets) {
    for (std::size_t c = 0; c < set.cores; ++c) set.kill_block(0, c);
  }
  const auto profile = core::profile_from_groups(f.sets);

  SystemConfig cfg;
  cfg.cores = cores;
  const auto traffic = core::traffic_dense(
      f.spec, noc::MeshTopology::for_cores(cores), cfg.bytes_per_value);

  cfg.sparse_cycle_model = false;
  CmpSystem off(cfg);
  cfg.sparse_cycle_model = true;
  CmpSystem on(cfg);

  const InferenceResult dense = on.run_inference(f.spec, traffic);
  const InferenceResult gated = off.run_inference(f.spec, traffic, &profile);
  EXPECT_EQ(dense, gated);  // flag off: profile is ignored entirely

  const InferenceResult discounted =
      on.run_inference(f.spec, traffic, &profile);
  EXPECT_LT(discounted.compute_cycles, dense.compute_cycles);
  EXPECT_EQ(discounted.comm_cycles, dense.comm_cycles);
}

}  // namespace
}  // namespace ls::sim
