// Regression test for the run_stream metrics split: counters are
// process-lifetime monotonic totals, the `stream.last_*` gauges carry the
// most recent run. Before the split, successive runs in one process
// summed into "per-run" numbers that were actually totals.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "sim/system.hpp"
#include "util/stats.hpp"

namespace ls::sim {
namespace {

TEST(StreamMetrics, CountersAccumulateGaugesHoldLastRun) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();

  const nn::NetSpec spec = nn::convnet_spec();
  SystemConfig cfg;
  cfg.cores = 16;
  const CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);

  const StreamResult first = system.run_stream(schedule, 4);
  const StreamResult second = system.run_stream(schedule, 4);
  // Same schedule, same request count: deterministic repeat.
  ASSERT_EQ(first.makespan_cycles, second.makespan_cycles);

  // Gauges: this run only.
  EXPECT_DOUBLE_EQ(reg.gauge("stream.last_requests").value(), 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge("stream.last_makespan_cycles").value(),
                   static_cast<double>(second.makespan_cycles));
  // Counters: monotonic across both runs.
  EXPECT_EQ(reg.counter("stream.requests").value(), 8u);
  EXPECT_EQ(reg.counter("stream.makespan_cycles").value(),
            2 * second.makespan_cycles);
  const auto busy_total = reg.counter("stream.core_busy_cycles").value();
  EXPECT_EQ(busy_total % 2, 0u);  // two identical runs
  EXPECT_DOUBLE_EQ(reg.gauge("stream.last_core_busy_cycles").value(),
                   static_cast<double>(busy_total / 2));
  EXPECT_DOUBLE_EQ(reg.gauge("stream.last_noc_busy_cycles").value(),
                   static_cast<double>(
                       reg.counter("stream.noc_busy_cycles").value() / 2));
}

TEST(StreamMetrics, LatencyPercentileGaugesMatchExactOrderStatistics) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();

  const nn::NetSpec spec = nn::convnet_spec();
  SystemConfig cfg;
  cfg.cores = 16;
  const CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);
  const StreamResult r = system.run_stream(schedule, 8);

  std::vector<double> lat;
  for (const std::uint64_t f : r.request_finish_cycle) {
    lat.push_back(static_cast<double>(f));
  }
  EXPECT_DOUBLE_EQ(reg.gauge("stream.latency_p50_cycles").value(),
                   util::percentile(lat, 50.0));
  EXPECT_DOUBLE_EQ(reg.gauge("stream.latency_p95_cycles").value(),
                   util::percentile(lat, 95.0));
  EXPECT_DOUBLE_EQ(reg.gauge("stream.latency_p99_cycles").value(),
                   util::percentile(lat, 99.0));
  // Every request's latency landed in the histogram.
  EXPECT_EQ(reg.histogram("stream.request_latency_cycles").summary().count(),
            8u);
}

TEST(StreamMetrics, TimelineRecordingIsCompleteAndRepeatable) {
  const nn::NetSpec spec = nn::convnet_spec();
  SystemConfig cfg;
  cfg.cores = 16;
  const CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);

  StreamTimeline a;
  StreamTimeline b;
  const StreamResult ra = system.run_stream(schedule, 4, 0, &a);
  const StreamResult rb = system.run_stream(schedule, 4, 0, &b);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.items.size(), 4 * schedule.events.size());
  // The timeline out-param never perturbs results.
  const StreamResult rc = system.run_stream(schedule, 4);
  EXPECT_EQ(ra.makespan_cycles, rc.makespan_cycles);
  EXPECT_EQ(rb.request_finish_cycle, rc.request_finish_cycle);
  // Items agree with the reported per-request finishes and makespan.
  std::uint64_t max_finish = 0;
  for (const StreamTimelineItem& it : a.items) {
    EXPECT_LE(it.start_cycle, it.finish_cycle);
    max_finish = std::max(max_finish, it.finish_cycle);
  }
  EXPECT_EQ(max_finish, ra.makespan_cycles);
  // A fresh timeline clears stale contents.
  StreamTimeline reused = a;
  system.run_stream(schedule, 1, 0, &reused);
  EXPECT_EQ(reused.items.size(), schedule.events.size());
}

}  // namespace
}  // namespace ls::sim
