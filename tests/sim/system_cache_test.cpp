// The NoC burst-result cache must be correctness-neutral: a CmpSystem run
// with the cache enabled must produce an InferenceResult identical to one
// with every burst forced through the flit-level simulator. Sweeps core
// counts like experiment E5.

#include <gtest/gtest.h>

#include <vector>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "noc/sim_cache.hpp"
#include "sim/system.hpp"

namespace ls::sim {
namespace {

void expect_identical(const InferenceResult& a, const InferenceResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.compute_cycles, b.compute_cycles);
  EXPECT_EQ(a.comm_cycles, b.comm_cycles);
  EXPECT_EQ(a.traffic_bytes, b.traffic_bytes);
  EXPECT_DOUBLE_EQ(a.compute_energy_pj, b.compute_energy_pj);
  EXPECT_DOUBLE_EQ(a.noc_energy_pj, b.noc_energy_pj);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].layer_name, b.layers[i].layer_name);
    EXPECT_EQ(a.layers[i].compute_cycles, b.layers[i].compute_cycles);
    EXPECT_EQ(a.layers[i].comm_cycles, b.layers[i].comm_cycles);
    EXPECT_EQ(a.layers[i].blocking_comm_cycles,
              b.layers[i].blocking_comm_cycles);
    EXPECT_EQ(a.layers[i].noc_stats, b.layers[i].noc_stats);
    EXPECT_EQ(a.layers[i].traffic_bytes, b.layers[i].traffic_bytes);
    EXPECT_DOUBLE_EQ(a.layers[i].noc_energy_pj, b.layers[i].noc_energy_pj);
  }
}

TEST(SystemNocCache, CachedRunMatchesUncachedAcrossCoreSweep) {
  noc::NocRunCache::instance().clear();
  const nn::NetSpec spec = nn::convnet_expt_spec();
  for (std::size_t cores : {4u, 8u, 16u}) {
    SCOPED_TRACE(cores);
    SystemConfig cached_cfg;
    cached_cfg.cores = cores;
    cached_cfg.noc_result_cache = true;
    SystemConfig uncached_cfg = cached_cfg;
    uncached_cfg.noc_result_cache = false;

    CmpSystem cached(cached_cfg);
    CmpSystem uncached(uncached_cfg);
    const auto traffic = core::traffic_dense(
        spec, cached.topology(), cached_cfg.bytes_per_value);

    const InferenceResult without = uncached.run_inference(spec, traffic);
    const InferenceResult cold = cached.run_inference(spec, traffic);
    const InferenceResult warm = cached.run_inference(spec, traffic);
    expect_identical(cold, without);
    expect_identical(warm, without);
  }
  // The warm re-runs must actually have hit the cache.
  EXPECT_GT(noc::NocRunCache::instance().hits(), 0u);
}

TEST(SystemNocCache, RepeatRunsAreDeterministic) {
  noc::NocRunCache::instance().clear();
  SystemConfig cfg;
  cfg.cores = 16;
  CmpSystem system(cfg);
  const nn::NetSpec spec = nn::lenet_expt_spec();
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const InferenceResult first = system.run_inference(spec, traffic);
  const InferenceResult second = system.run_inference(spec, traffic);
  expect_identical(first, second);
}

}  // namespace
}  // namespace ls::sim
