// Death-test suite for the ls::check invariant layer (DESIGN.md
// "Correctness tooling"). Each test deliberately violates one invariant
// class and proves the corresponding LS_CHECK aborts with its diagnostic:
//
//   1. layer output-shape contract        (nn::Network::forward)
//   2. non-finite activations/inputs      (nn::Network::forward)
//   3. NoC flit conservation              (noc::MeshNocSimulator::run)
//   4. stale block-sparsity bitmap        (nn::BlockSparsity::map)
//   5. Param::version monotonicity        (nn::BlockSparsity::map)
//   6. thread-pool misuse                 (util::ThreadPool::set_num_threads)
//   7. placement bijectivity              (core::placement_cost)
//   8. schedule well-formedness           (sched::validate / validate_against)
//   9. tuning-knob preconditions          (sched::lower: placement
//      bijectivity, per-layer dim compatibility, dims/sparsity exclusion)
//
// This file is only compiled into checked builds (tests/CMakeLists.txt
// gates it on LS_CHECKS); in unchecked builds the macros are no-ops and
// nothing here would die.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "check/check.hpp"
#include "core/placement.hpp"
#include "core/traffic.hpp"
#include "nn/fc.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "nn/model_zoo.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "sched/builders.hpp"
#include "sched/schedule.hpp"
#include "tensor/tensor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ls {
namespace {

static_assert(check::kEnabled,
              "check_death_test must be built with LS_CHECKS=ON");

using tensor::Shape;
using tensor::Tensor;

// Several invariants live on code that runs (or may run) on pool threads,
// so every test uses the threadsafe death-test style: the child re-executes
// the binary instead of forking a possibly-multithreaded parent.
class CheckDeath : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

// --- 1. layer output-shape contract ---------------------------------------

// Declares {N, 4} via output_shape but actually emits its input unchanged.
class ShapeLiarLayer final : public nn::Layer {
 public:
  Tensor forward(const Tensor& in, bool) override { return in; }
  Tensor backward(const Tensor& grad) override { return grad; }
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override {
    return Shape{in[0], 4};
  }

 private:
  std::string name_ = "shape_liar";
};

TEST_F(CheckDeath, LayerShapeContractViolationDies) {
  nn::Network net("shape_net");
  net.emplace<ShapeLiarLayer>();
  const Tensor in(Shape{1, 8}, 1.0f);
  EXPECT_DEATH(net.forward(in), "produced shape");
}

// --- 2. non-finite values at layer boundaries ------------------------------

TEST_F(CheckDeath, NonFiniteNetworkInputDies) {
  util::Rng rng(7);
  nn::Network net("nan_net");
  net.emplace<nn::FullyConnected>("fc", 8, 4, rng);
  Tensor in(Shape{1, 8}, 1.0f);
  in[3] = std::nanf("");
  EXPECT_DEATH(net.forward(in), "non-finite input into network");
}

// Layer that injects an Inf into otherwise healthy activations.
class InfLayer final : public nn::Layer {
 public:
  Tensor forward(const Tensor& in, bool) override {
    Tensor out = in;
    out[0] = HUGE_VALF;
    return out;
  }
  Tensor backward(const Tensor& grad) override { return grad; }
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override { return in; }

 private:
  std::string name_ = "inf_layer";
};

TEST_F(CheckDeath, NonFiniteActivationsDie) {
  nn::Network net("inf_net");
  net.emplace<InfLayer>();
  const Tensor in(Shape{1, 8}, 1.0f);
  EXPECT_DEATH(net.forward(in), "non-finite activations out of layer");
}

// --- 3. NoC flit conservation ----------------------------------------------

TEST_F(CheckDeath, NocFlitConservationViolationDies) {
  const auto topo = noc::MeshTopology::for_cores(16);
  const noc::MeshNocSimulator sim(topo, noc::NocConfig{});
  const std::vector<noc::Message> msgs = {{0, 5, 256, 0}, {3, 12, 640, 0}};
  // Sanity: the unperturbed burst drains cleanly through the same checks.
  (void)sim.run(msgs);
  noc::testing::corrupt_next_run();
  EXPECT_DEATH(sim.run(msgs), "noc flit conservation");
}

// --- 4./5. block-sparsity bitmap + version contract -------------------------

// FC with a 4x4 block grid over a {16, 16} weight; block (p=0, c=0) is
// rows 0..4 x cols 0..4.
std::unique_ptr<nn::FullyConnected> make_sparse_fc(util::Rng& rng) {
  auto fc = std::make_unique<nn::FullyConnected>("fc_sparse", 16, 16, rng,
                                                 /*bias=*/false);
  fc->set_sparsity_partition(/*parts=*/4, /*in_units=*/4);
  for (std::size_t oc = 0; oc < 4; ++oc) {
    for (std::size_t k = 0; k < 4; ++k) {
      fc->weight().value.at2(oc, k) = 0.0f;
    }
  }
  fc->weight().bump();
  return fc;
}

TEST_F(CheckDeath, StaleSparsityBitmapDies) {
  util::Rng rng(11);
  const auto fc = make_sparse_fc(rng);
  const Tensor in(Shape{1, 16}, 0.5f);
  (void)fc->forward(in, false);  // scans: block (0, 0) marked zero
  // Revive one weight of the pruned block *without* bump(): the cached
  // bitmap is now stale and the next forward's cache-hit probe must abort.
  fc->weight().value.at2(1, 2) = 3.0f;
  EXPECT_DEATH(fc->forward(in, false), "sparsity bitmap stale");
}

TEST_F(CheckDeath, ParamVersionMovingBackwardsDies) {
  util::Rng rng(13);
  const auto fc = make_sparse_fc(rng);
  const Tensor in(Shape{1, 16}, 0.5f);
  (void)fc->forward(in, false);  // scans at version 1
  fc->weight().version = 0;
  EXPECT_DEATH(fc->forward(in, false), "version moved backwards");
}

// --- 6. thread-pool misuse ---------------------------------------------------

TEST_F(CheckDeath, PoolResizeFromInsideTaskDies) {
  EXPECT_DEATH(
      {
        util::ThreadPool::set_num_threads(4);
        util::parallel_for(0, 64, [](std::size_t i) {
          if (i == 0) util::ThreadPool::set_num_threads(2);
        });
      },
      "set_num_threads called from inside a pool task");
}

// --- 7. placement bijectivity ------------------------------------------------

TEST_F(CheckDeath, NonBijectivePlacementDies) {
  const auto topo = noc::MeshTopology::for_cores(4);
  core::Placement p;
  p.partition_to_core = {0, 0, 1, 2};  // core 0 duplicated, core 3 missing
  const core::InferenceTraffic traffic;
  EXPECT_DEATH(core::placement_cost(traffic, p, topo),
               "non-bijective placement");
}

// --- 8. schedule well-formedness ---------------------------------------------

// A valid lowered schedule, mutated one invariant at a time.
sched::Schedule lowered_convnet() {
  const nn::NetSpec spec = nn::convnet_spec();
  sched::BuildOptions opts;
  opts.cores = 16;
  return sched::build_traditional(
      spec,
      core::traffic_dense(spec, noc::MeshTopology::for_cores(opts.cores), 2),
      opts);
}

TEST_F(CheckDeath, ScheduleForwardDependencyDies) {
  sched::Schedule s = lowered_convnet();
  s.events[0].deps.push_back(s.events.size() - 1);  // dep points forward
  EXPECT_DEATH(sched::validate(s), "deps must point backwards");
}

TEST_F(CheckDeath, ScheduleCommByteMismatchDies) {
  sched::Schedule s = lowered_convnet();
  for (sched::Event& e : s.events) {
    if (e.kind != sched::EventKind::kComm) continue;
    e.traffic_bytes += 1;  // claims one byte its messages do not carry
    break;
  }
  EXPECT_DEATH(sched::validate(s), "but its messages carry");
}

TEST_F(CheckDeath, ScheduleOrphanCommEventDies) {
  sched::Schedule s = lowered_convnet();
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (s.events[i].kind != sched::EventKind::kComm) continue;
    s.events[i + 1].layer_name = "someone_else";  // breaks the pairing
    break;
  }
  EXPECT_DEATH(sched::validate(s),
               "not immediately followed by its compute event");
}

TEST_F(CheckDeath, ScheduleWrongCoreCountWorkDies) {
  sched::Schedule s = lowered_convnet();
  for (sched::Event& e : s.events) {
    if (e.kind != sched::EventKind::kCompute) continue;
    e.per_core_work.pop_back();  // work vector no longer covers the machine
    break;
  }
  EXPECT_DEATH(sched::validate(s), "carries work for");
}

TEST_F(CheckDeath, ScheduleMessageOutsideMachineDies) {
  sched::Schedule s = lowered_convnet();
  for (sched::Event& e : s.events) {
    if (e.kind != sched::EventKind::kComm) continue;
    e.messages.front().dst = s.cores + 7;
    e.traffic_bytes = 0;
    for (const noc::Message& m : e.messages) e.traffic_bytes += m.bytes;
    break;
  }
  EXPECT_DEATH(sched::validate(s), "outside the");
}

TEST_F(CheckDeath, ScheduleMissingLayerCoverageDies) {
  const nn::NetSpec spec = nn::convnet_spec();
  sched::Schedule s = lowered_convnet();
  // Drop the last layer (compute event plus its burst, keeping the
  // remainder structurally valid): the schedule no longer covers the net.
  ASSERT_EQ(s.events.back().kind, sched::EventKind::kCompute);
  s.events.pop_back();
  if (!s.events.empty() &&
      s.events.back().kind == sched::EventKind::kComm) {
    s.events.pop_back();
  }
  EXPECT_DEATH(sched::validate_against(s, spec), "compute layers but");
}

// --- 9. tuning-knob preconditions --------------------------------------------

// Lowers ConvNet with one tuning knob deliberately malformed.
sched::Schedule lower_with(std::vector<sched::PartitionDim> dims,
                           std::vector<std::size_t> placement) {
  const nn::NetSpec spec = nn::convnet_spec();
  sched::BuildOptions opts;
  opts.cores = 16;
  opts.layer_dims = std::move(dims);
  opts.placement = std::move(placement);
  return sched::build_traditional(
      spec,
      core::traffic_dense(spec, noc::MeshTopology::for_cores(opts.cores), 2),
      opts);
}

TEST_F(CheckDeath, NonBijectiveSchedulePlacementDies) {
  std::vector<std::size_t> placement(16);
  for (std::size_t i = 0; i < 16; ++i) placement[i] = i;
  placement[3] = 5;  // core 5 duplicated, core 3 missing
  EXPECT_DEATH(lower_with({}, placement), "not a bijective permutation");
}

TEST_F(CheckDeath, WrongLengthSchedulePlacementDies) {
  EXPECT_DEATH(lower_with({}, {0, 1, 2, 3}),  // 4 entries on 16 cores
               "placement maps");
}

TEST_F(CheckDeath, LayerDimsCountMismatchDies) {
  EXPECT_DEATH(lower_with({sched::PartitionDim::kKernel}, {}),
               "layer dims for");
}

TEST_F(CheckDeath, SpatialDimOnFcLayerDies) {
  // ConvNet computes: conv1..conv3, ip1, ip2 — height cannot split an FC.
  std::vector<sched::PartitionDim> dims(5, sched::PartitionDim::kKernel);
  dims[3] = sched::PartitionDim::kHeight;
  EXPECT_DEATH(lower_with(dims, {}), "incompatible with compute layer");
}

TEST_F(CheckDeath, ChannelDimOnLastLayerDies) {
  // Channel's reduce-scatter rides the next transition; ip2 has none.
  std::vector<sched::PartitionDim> dims(5, sched::PartitionDim::kKernel);
  dims[4] = sched::PartitionDim::kChannel;
  EXPECT_DEATH(lower_with(dims, {}), "incompatible with compute layer");
}

TEST_F(CheckDeath, NonKernelDimUnderSparsityProfileDies) {
  const nn::NetSpec spec = nn::convnet_spec();
  sched::BuildOptions opts;
  opts.cores = 16;
  opts.layer_dims.assign(5, sched::PartitionDim::kKernel);
  opts.layer_dims[0] = sched::PartitionDim::kHeight;
  const core::SparsityProfile profile;  // liveness is kernel-split-defined
  EXPECT_DEATH(
      sched::build_sparsified(
          spec,
          core::traffic_dense(spec, noc::MeshTopology::for_cores(opts.cores),
                              2),
          opts, &profile),
      "defined on the kernel");
}

}  // namespace
}  // namespace ls
