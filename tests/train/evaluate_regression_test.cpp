// evaluate() regression test: the scratch-buffer batching must report the
// same accuracy as the straightforward per-batch Dataset::slice loop it
// replaced, including when the final batch is shorter than batch_size.

#include <gtest/gtest.h>

#include <cstddef>

#include "data/dataset.hpp"
#include "nn/model_zoo.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace ls::train {
namespace {

// The pre-optimization evaluate(): one full Dataset copy per batch.
double evaluate_reference(nn::Network& net, const data::Dataset& test_set,
                          std::size_t batch_size) {
  std::size_t hits = 0;
  for (std::size_t lo = 0; lo < test_set.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, test_set.size());
    const data::Dataset batch = test_set.slice(lo, hi);
    const auto preds = net.predict(batch.images);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(test_set.size());
}

data::Dataset make_set(std::size_t samples) {
  data::SyntheticSpec spec;
  spec.samples = samples;
  spec.seed = 7;
  spec.sample_seed = 3;
  return data::make_synthetic(spec);
}

TEST(EvaluateRegression, MatchesSliceReferenceWithPartialFinalBatch) {
  util::Rng rng(5);
  nn::Network net = nn::build_network(nn::lenet_expt_spec(), rng);
  // 70 samples at batch 32 -> batches of 32, 32, and 6: exercises both the
  // scratch-buffer reuse and the short-final-batch reallocation.
  const data::Dataset set = make_set(70);
  const double got = evaluate(net, set, 32);
  const double want = evaluate_reference(net, set, 32);
  EXPECT_DOUBLE_EQ(got, want);
}

TEST(EvaluateRegression, ExactDivisorBatchAndSingleBatch) {
  util::Rng rng(6);
  nn::Network net = nn::build_network(nn::lenet_expt_spec(), rng);
  const data::Dataset set = make_set(64);
  EXPECT_DOUBLE_EQ(evaluate(net, set, 16), evaluate_reference(net, set, 16));
  // batch_size >= N: a single batch covering the whole set.
  EXPECT_DOUBLE_EQ(evaluate(net, set, 256),
                   evaluate_reference(net, set, 256));
}

TEST(EvaluateRegression, EmptySetReturnsZero) {
  util::Rng rng(8);
  nn::Network net = nn::build_network(nn::lenet_expt_spec(), rng);
  data::Dataset empty;  // no labels: evaluate must bail before reading images
  empty.num_classes = 10;
  EXPECT_DOUBLE_EQ(evaluate(net, empty, 32), 0.0);
}

}  // namespace
}  // namespace ls::train
