#include "train/group_lasso.hpp"

#include <gtest/gtest.h>

#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace ls::train {
namespace {

struct Fixture {
  util::Rng rng{11};
  nn::NetSpec spec = nn::mlp_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  std::size_t cores = 4;

  std::vector<core::LayerGroupSet> sets() {
    return core::build_group_sets(net, spec, cores);
  }
};

TEST(GroupLasso, ProximalShrinksOffDiagonalBlocks) {
  Fixture f;
  auto sets = f.sets();
  const double before = sets[0].block_norm(0, 1);
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), 1.0);
  reg.apply(0.01);
  EXPECT_LT(reg.groups()[0].block_norm(0, 1), before);
}

TEST(GroupLasso, DiagonalBlocksUntouched) {
  Fixture f;
  auto sets = f.sets();
  const double before = sets[0].block_norm(2, 2);
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), 1.0);
  reg.apply(0.05);
  EXPECT_DOUBLE_EQ(reg.groups()[0].block_norm(2, 2), before);
}

TEST(GroupLasso, ProximalKillsBlockWhenShrinkExceedsNorm) {
  Fixture f;
  auto sets = f.sets();
  // Scale block (0,1) down so one proximal step wipes it.
  for (std::size_t idx : sets[0].block(0, 1)) {
    sets[0].weight->value[idx] *= 1e-6f;
  }
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), 1.0);
  reg.apply(0.1);
  EXPECT_TRUE(reg.groups()[0].block_dead(0, 1));
}

TEST(GroupLasso, ShrinkFactorMatchesClosedForm) {
  Fixture f;
  auto sets = f.sets();
  const double norm = sets[0].block_norm(1, 3);
  const double lr = 0.02, lambda = 0.7;
  const double expected = norm * (1.0 - lr * lambda / norm);
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), lambda);
  reg.apply(lr);
  EXPECT_NEAR(reg.groups()[0].block_norm(1, 3), expected, 1e-5);
}

TEST(GroupLasso, MaskScalesPerBlockStrength) {
  Fixture f;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(f.cores);
  auto sets = f.sets();
  const double norm_near = sets[0].block_norm(0, 1);  // 1 hop
  const double norm_far = sets[0].block_norm(0, 3);   // farther
  GroupLassoRegularizer reg(std::move(sets), distance_mask(topo), 1.0);
  reg.apply(0.05);
  const double shrink_near =
      norm_near - reg.groups()[0].block_norm(0, 1);
  const double shrink_far = norm_far - reg.groups()[0].block_norm(0, 3);
  // Absolute shrink is lr * lambda_pc, independent of the norm, so the far
  // block must shrink by more.
  EXPECT_GT(shrink_far, shrink_near);
}

TEST(GroupLasso, SubgradientAddsToGradients) {
  Fixture f;
  auto sets = f.sets();
  nn::Param* w = sets[0].weight;
  w->grad.zero();
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), 1.0,
                            LassoMode::kSubgradient);
  reg.apply(0.01);
  EXPECT_GT(w->grad.max_abs(), 0.0f);
  // Gradient direction matches w / ||w||_g: same sign as the weight.
  const auto& set = reg.groups()[0];
  const std::size_t idx = set.block(0, 1)[5];
  EXPECT_GT(w->grad[idx] * w->value[idx], 0.0f);
}

TEST(GroupLasso, SubgradientLeavesValuesUnchanged) {
  Fixture f;
  auto sets = f.sets();
  const double norm = sets[0].block_norm(0, 2);
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), 1.0,
                            LassoMode::kSubgradient);
  reg.apply(0.01);
  EXPECT_DOUBLE_EQ(reg.groups()[0].block_norm(0, 2), norm);
}

TEST(GroupLasso, PenaltyIsMaskedNormSum) {
  Fixture f;
  auto sets = f.sets();
  double expected = 0.0;
  for (const auto& set : sets) {
    for (std::size_t p = 0; p < f.cores; ++p) {
      for (std::size_t c = 0; c < f.cores; ++c) {
        if (p != c) expected += 2.0 * set.block_norm(p, c);
      }
    }
  }
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), 2.0);
  EXPECT_NEAR(reg.penalty(), expected, 1e-6);
}

TEST(GroupLasso, EnforceDeadBlocksKillsTinyNorms) {
  Fixture f;
  auto sets = f.sets();
  for (std::size_t idx : sets[0].block(1, 2)) {
    sets[0].weight->value[idx] =
        sets[0].weight->value[idx] > 0 ? 1e-9f : -1e-9f;
  }
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(f.cores), 1.0);
  const std::size_t killed = reg.enforce_dead_blocks(1e-6);
  EXPECT_GE(killed, 1u);
  EXPECT_TRUE(reg.groups()[0].block_dead(1, 2));
}

TEST(GroupLasso, RejectsNegativeLambdaAndBadMask) {
  Fixture f;
  EXPECT_THROW(
      GroupLassoRegularizer(f.sets(), uniform_mask(f.cores), -0.1),
      std::invalid_argument);
  EXPECT_THROW(GroupLassoRegularizer(f.sets(), uniform_mask(8), 0.1),
               std::invalid_argument);
}

TEST(GroupLasso, RepeatedProximalConvergesToZeroWithoutGradients) {
  Fixture f;
  GroupLassoRegularizer reg(f.sets(), uniform_mask(f.cores), 1.0);
  for (int i = 0; i < 2000; ++i) reg.apply(0.01);
  for (const auto& set : reg.groups()) {
    EXPECT_NEAR(set.off_diagonal_dead_fraction(), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace ls::train
