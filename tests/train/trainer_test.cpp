// Integration tests for the training loop. These train tiny networks on
// tiny synthetic tasks, so they run in a couple of seconds total.

#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include "core/weight_groups.hpp"
#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace ls::train {
namespace {

data::Dataset tiny_task(std::uint64_t sample_seed) {
  data::SyntheticSpec s;
  s.num_classes = 4;
  s.channels = 1;
  s.height = 8;
  s.width = 8;
  s.samples = 160;
  s.noise = 0.15;
  s.max_shift = 1;
  s.seed = 5;
  s.sample_seed = sample_seed;
  return data::make_synthetic(s);
}

nn::NetSpec tiny_spec() {
  nn::NetSpec spec;
  spec.name = "tiny";
  spec.dataset = "tiny";
  spec.input = {1, 8, 8};
  spec.layers = {nn::LayerSpec::flatten("flat"), nn::LayerSpec::fc("fc1", 32),
                 nn::LayerSpec::relu("r1"), nn::LayerSpec::fc("fc2", 4)};
  return spec;
}

TEST(Trainer, LossDecreasesAndAccuracyBeatsChance) {
  util::Rng rng(1);
  nn::Network net = nn::build_network(tiny_spec(), rng);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  const TrainReport report =
      train_classifier(net, tiny_task(1), tiny_task(2), cfg);
  ASSERT_EQ(report.epoch_loss.size(), 4u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_GT(report.test_accuracy, 0.5);  // chance is 0.25
  EXPECT_GE(report.train_accuracy, report.test_accuracy - 0.1);
}

TEST(Trainer, DeterministicAcrossRuns) {
  TrainConfig cfg;
  cfg.epochs = 2;
  util::Rng rng_a(3), rng_b(3);
  nn::Network a = nn::build_network(tiny_spec(), rng_a);
  nn::Network b = nn::build_network(tiny_spec(), rng_b);
  const auto ra = train_classifier(a, tiny_task(1), tiny_task(2), cfg);
  const auto rb = train_classifier(b, tiny_task(1), tiny_task(2), cfg);
  EXPECT_EQ(ra.test_accuracy, rb.test_accuracy);
  EXPECT_EQ(ra.epoch_loss, rb.epoch_loss);
}

TEST(Trainer, GroupLassoProducesDeadBlocksAndReport) {
  util::Rng rng(5);
  const nn::NetSpec spec = tiny_spec();
  nn::Network net = nn::build_network(spec, rng);
  auto sets = core::build_group_sets(net, spec, 4);
  GroupLassoRegularizer reg(std::move(sets), uniform_mask(4), 1.0);
  TrainConfig cfg;
  cfg.epochs = 4;
  const TrainReport report =
      train_classifier(net, tiny_task(1), tiny_task(2), cfg, &reg);
  double dead = 0.0;
  for (const auto& set : reg.groups()) {
    dead = std::max(dead, set.off_diagonal_dead_fraction());
  }
  EXPECT_GT(dead, 0.1);
  EXPECT_GT(report.weight_sparsity, 0.01);
  EXPECT_FALSE(report.epoch_penalty.empty());
  // Penalty falls as blocks die.
  EXPECT_LT(report.epoch_penalty.back(), report.epoch_penalty.front());
}

TEST(Trainer, MaskedLassoSparesDiagonal) {
  util::Rng rng(6);
  const nn::NetSpec spec = tiny_spec();
  nn::Network net = nn::build_network(spec, rng);
  GroupLassoRegularizer reg(core::build_group_sets(net, spec, 4),
                            uniform_mask(4), 2.0);
  TrainConfig cfg;
  cfg.epochs = 3;
  train_classifier(net, tiny_task(1), tiny_task(2), cfg, &reg);
  for (const auto& set : reg.groups()) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_FALSE(set.block_dead(d, d)) << set.layer_name << " diag " << d;
    }
  }
}

TEST(Trainer, SubgradientModeAlsoTrains) {
  util::Rng rng(7);
  const nn::NetSpec spec = tiny_spec();
  nn::Network net = nn::build_network(spec, rng);
  GroupLassoRegularizer reg(core::build_group_sets(net, spec, 4),
                            uniform_mask(4), 0.05, LassoMode::kSubgradient);
  TrainConfig cfg;
  cfg.epochs = 3;
  const auto report =
      train_classifier(net, tiny_task(1), tiny_task(2), cfg, &reg);
  EXPECT_GT(report.test_accuracy, 0.5);
}

TEST(Evaluate, MatchesNetworkAccuracy) {
  util::Rng rng(8);
  nn::Network net = nn::build_network(tiny_spec(), rng);
  const data::Dataset test = tiny_task(2);
  const double batched = evaluate(net, test, 13);  // odd batch size
  const double direct = net.accuracy(test.images, test.labels);
  EXPECT_DOUBLE_EQ(batched, direct);
}

TEST(Trainer, LrDecayApplied) {
  // With lr_decay ~ 0 (and no momentum carrying residual velocity) the lr
  // collapses after epoch 0 and later epochs change nothing.
  util::Rng rng(9);
  nn::Network net = nn::build_network(tiny_spec(), rng);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.lr_decay = 1e-12;
  cfg.sgd.momentum = 0.0;
  cfg.sgd.weight_decay = 0.0;
  const auto report = train_classifier(net, tiny_task(1), tiny_task(2), cfg);
  EXPECT_EQ(report.epoch_loss.size(), 3u);
  EXPECT_NEAR(report.epoch_loss[1], report.epoch_loss[2], 0.02);
}

}  // namespace
}  // namespace ls::train
