// Determinism suite for the data-parallel trainer: for a fixed replica
// count the trained weights must be BYTE-identical for every pool size
// (the replicas' work is partitioned by replica index, the reduction runs
// serially in ascending order), and replicas=1 must delegate to the plain
// serial loop bit-for-bit.

#include "train/data_parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "nn/model_zoo.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ls::train {
namespace {

data::Dataset tiny_task(std::uint64_t sample_seed, std::size_t samples = 96) {
  data::SyntheticSpec s;
  s.num_classes = 4;
  s.channels = 1;
  s.height = 8;
  s.width = 8;
  s.samples = samples;
  s.noise = 0.15;
  s.max_shift = 1;
  s.seed = 5;
  s.sample_seed = sample_seed;
  return data::make_synthetic(s);
}

nn::NetSpec tiny_spec() {
  nn::NetSpec spec;
  spec.name = "tiny";
  spec.dataset = "tiny";
  spec.input = {1, 8, 8};
  spec.layers = {nn::LayerSpec::conv("c1", 4, 3, 1, 1),
                 nn::LayerSpec::relu("r0"), nn::LayerSpec::flatten("flat"),
                 nn::LayerSpec::fc("fc1", 24), nn::LayerSpec::relu("r1"),
                 nn::LayerSpec::fc("fc2", 4)};
  return spec;
}

TrainConfig tiny_cfg(std::size_t replicas) {
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  cfg.replicas = replicas;
  return cfg;
}

std::vector<float> flat_params(nn::Network& net) {
  std::vector<float> out;
  for (nn::Param* p : net.params()) {
    out.insert(out.end(), p->value.data(),
               p->value.data() + p->value.numel());
  }
  return out;
}

class ParallelTrainer : public ::testing::Test {
 protected:
  void TearDown() override { util::ThreadPool::set_num_threads(0); }
};

TEST_F(ParallelTrainer, ByteIdenticalAcrossThreadCounts) {
  const data::Dataset train_set = tiny_task(1), test_set = tiny_task(2);
  std::vector<float> base;
  TrainReport base_report;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool::set_num_threads(threads);
    util::Rng rng(3);
    nn::Network net = nn::build_network(tiny_spec(), rng);
    const TrainReport report = train_classifier_parallel(
        tiny_spec(), net, train_set, test_set, tiny_cfg(/*replicas=*/3));
    const std::vector<float> w = flat_params(net);
    if (base.empty()) {
      base = w;
      base_report = report;
      continue;
    }
    ASSERT_EQ(base.size(), w.size());
    EXPECT_EQ(0, std::memcmp(base.data(), w.data(),
                             base.size() * sizeof(float)))
        << "weights differ with " << threads << " threads";
    ASSERT_EQ(base_report.epoch_loss.size(), report.epoch_loss.size());
    for (std::size_t e = 0; e < report.epoch_loss.size(); ++e) {
      EXPECT_EQ(base_report.epoch_loss[e], report.epoch_loss[e]);
    }
    EXPECT_EQ(base_report.test_accuracy, report.test_accuracy);
  }
}

TEST_F(ParallelTrainer, SingleReplicaDelegatesToSerialTrainer) {
  const data::Dataset train_set = tiny_task(1), test_set = tiny_task(2);
  util::Rng rng_a(3), rng_b(3);
  nn::Network serial = nn::build_network(tiny_spec(), rng_a);
  nn::Network parallel = nn::build_network(tiny_spec(), rng_b);
  const TrainReport rs =
      train_classifier(serial, train_set, test_set, tiny_cfg(1));
  const TrainReport rp = train_classifier_parallel(
      tiny_spec(), parallel, train_set, test_set, tiny_cfg(1));
  const std::vector<float> ws = flat_params(serial);
  const std::vector<float> wp = flat_params(parallel);
  ASSERT_EQ(ws.size(), wp.size());
  EXPECT_EQ(0, std::memcmp(ws.data(), wp.data(), ws.size() * sizeof(float)));
  ASSERT_EQ(rs.epoch_loss.size(), rp.epoch_loss.size());
  for (std::size_t e = 0; e < rs.epoch_loss.size(); ++e) {
    EXPECT_EQ(rs.epoch_loss[e], rp.epoch_loss[e]);
  }
}

TEST_F(ParallelTrainer, ReplicatedTrainingStillLearns) {
  util::Rng rng(1);
  nn::Network net = nn::build_network(tiny_spec(), rng);
  TrainConfig cfg = tiny_cfg(/*replicas=*/4);
  cfg.epochs = 4;
  const TrainReport report = train_classifier_parallel(
      tiny_spec(), net, tiny_task(1), tiny_task(2), cfg);
  ASSERT_EQ(report.epoch_loss.size(), 4u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_GT(report.test_accuracy, 0.5);  // chance is 0.25
}

// 50 samples / batch 16 leaves a final 2-row batch, so with 3 replicas
// shard_bounds(2, 3, 0) is empty. A replica with an empty shard must
// contribute exactly zero to the gradient reduction — not its previous
// batch's stale gradients — so one epoch of parallel training must land
// within float-reassociation noise of the serial trainer (the stale-grad
// bug injects an extra lr-scaled full-shard gradient, orders of magnitude
// above that noise), and stay byte-identical across pool sizes.
TEST_F(ParallelTrainer, PartialFinalBatchSmallerThanReplicaCount) {
  const data::Dataset train_set = tiny_task(1, /*samples=*/50);
  const data::Dataset test_set = tiny_task(2, /*samples=*/50);
  TrainConfig cfg = tiny_cfg(/*replicas=*/3);
  cfg.epochs = 1;

  util::Rng rng_a(3), rng_b(3);
  nn::Network serial = nn::build_network(tiny_spec(), rng_a);
  nn::Network parallel = nn::build_network(tiny_spec(), rng_b);
  train_classifier(serial, train_set, test_set, cfg);
  train_classifier_parallel(tiny_spec(), parallel, train_set, test_set, cfg);
  const std::vector<float> ws = flat_params(serial);
  const std::vector<float> wp = flat_params(parallel);
  ASSERT_EQ(ws.size(), wp.size());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(ws[i] - wp[i]));
  }
  EXPECT_LT(max_diff, 1e-4f) << "empty-shard replica polluted the reduction";

  std::vector<float> base;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool::set_num_threads(threads);
    util::Rng rng(3);
    nn::Network net = nn::build_network(tiny_spec(), rng);
    train_classifier_parallel(tiny_spec(), net, train_set, test_set, cfg);
    const std::vector<float> w = flat_params(net);
    if (base.empty()) {
      base = w;
      continue;
    }
    ASSERT_EQ(base.size(), w.size());
    EXPECT_EQ(0, std::memcmp(base.data(), w.data(),
                             base.size() * sizeof(float)))
        << "partial-batch weights differ with " << threads << " threads";
  }
}

TEST_F(ParallelTrainer, MismatchedSpecThrows) {
  const data::Dataset train_set = tiny_task(1), test_set = tiny_task(2);
  util::Rng rng(3);
  nn::Network net = nn::build_network(tiny_spec(), rng);
  nn::NetSpec other = tiny_spec();
  other.layers[3] = nn::LayerSpec::fc("fc1", 48);  // different width
  EXPECT_THROW(train_classifier_parallel(other, net, train_set, test_set,
                                         tiny_cfg(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ls::train
