#include <gtest/gtest.h>

#include "train/masks.hpp"
#include "train/sgd.hpp"
#include "util/rng.hpp"

namespace ls::train {
namespace {

using nn::Param;
using tensor::Shape;
using tensor::Tensor;

TEST(Sgd, PlainGradientStep) {
  Param p("w", Tensor::from_data(Shape{2}, {1.0f, -1.0f}));
  p.grad = Tensor::from_data(Shape{2}, {0.5f, -0.5f});
  SgdConfig cfg;
  cfg.lr = 0.1;
  cfg.momentum = 0.0;
  cfg.weight_decay = 0.0;
  cfg.clip_grad_norm = 0.0;
  Sgd sgd({&p}, cfg);
  sgd.step();
  EXPECT_NEAR(p.value[0], 1.0 - 0.05, 1e-6);
  EXPECT_NEAR(p.value[1], -1.0 + 0.05, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Param p("w", Tensor::from_data(Shape{1}, {0.0f}));
  SgdConfig cfg;
  cfg.lr = 1.0;
  cfg.momentum = 0.5;
  cfg.weight_decay = 0.0;
  cfg.clip_grad_norm = 0.0;
  Sgd sgd({&p}, cfg);
  p.grad[0] = 1.0f;
  sgd.step();  // v = -1, w = -1
  EXPECT_NEAR(p.value[0], -1.0, 1e-6);
  sgd.step();  // v = -0.5 - 1 = -1.5, w = -2.5
  EXPECT_NEAR(p.value[0], -2.5, 1e-6);
}

TEST(Sgd, WeightDecayShrinksWithZeroGrad) {
  Param p("w", Tensor::from_data(Shape{1}, {2.0f}));
  SgdConfig cfg;
  cfg.lr = 0.1;
  cfg.momentum = 0.0;
  cfg.weight_decay = 0.5;
  cfg.clip_grad_norm = 0.0;
  Sgd sgd({&p}, cfg);
  sgd.step();
  EXPECT_NEAR(p.value[0], 2.0 - 0.1 * 0.5 * 2.0, 1e-6);
}

TEST(Sgd, GradClipBoundsUpdate) {
  Param p("w", Tensor::from_data(Shape{2}, {0.0f, 0.0f}));
  SgdConfig cfg;
  cfg.lr = 1.0;
  cfg.momentum = 0.0;
  cfg.weight_decay = 0.0;
  cfg.clip_grad_norm = 1.0;
  Sgd sgd({&p}, cfg);
  p.grad = Tensor::from_data(Shape{2}, {30.0f, 40.0f});  // norm 50
  sgd.step();
  // Clipped to unit norm: direction (0.6, 0.8).
  EXPECT_NEAR(p.value[0], -0.6, 1e-5);
  EXPECT_NEAR(p.value[1], -0.8, 1e-5);
}

TEST(Sgd, ClipInactiveBelowThreshold) {
  Param p("w", Tensor::from_data(Shape{1}, {0.0f}));
  SgdConfig cfg;
  cfg.lr = 1.0;
  cfg.momentum = 0.0;
  cfg.weight_decay = 0.0;
  cfg.clip_grad_norm = 10.0;
  Sgd sgd({&p}, cfg);
  p.grad[0] = 2.0f;
  sgd.step();
  EXPECT_NEAR(p.value[0], -2.0, 1e-6);
}

TEST(Sgd, RejectsNonPositiveLr) {
  Param p("w", Tensor::from_data(Shape{1}, {0.0f}));
  SgdConfig cfg;
  cfg.lr = 0.0;
  EXPECT_THROW(Sgd({&p}, cfg), std::invalid_argument);
}

TEST(Masks, UniformOffDiagonalOnes) {
  const StrengthMask m = uniform_mask(4);
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(m[p][c], p == c ? 0.0 : 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(mean_off_diagonal(m), 1.0);
}

TEST(Masks, DistanceMaskZeroDiagonal) {
  const noc::MeshTopology topo(4, 4);
  const StrengthMask m = distance_mask(topo);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(m[i][i], 0.0);
}

TEST(Masks, DistanceMaskMonotoneInHops) {
  const noc::MeshTopology topo(4, 4);
  const StrengthMask m = distance_mask(topo);
  // core0 -> core1 (1 hop) weaker than core0 -> core15 (6 hops).
  EXPECT_LT(m[0][1], m[0][15]);
  EXPECT_LT(m[0][5], m[0][15]);
}

TEST(Masks, DistanceMaskNormalizedToUnitMean) {
  const noc::MeshTopology topo(4, 4);
  EXPECT_NEAR(mean_off_diagonal(distance_mask(topo, 1.0)), 1.0, 1e-9);
}

TEST(Masks, ExponentSharpensContrast) {
  const noc::MeshTopology topo(4, 4);
  const StrengthMask m1 = distance_mask(topo, 1.0);
  const StrengthMask m2 = distance_mask(topo, 2.0);
  // Ratio far/near grows with the exponent.
  EXPECT_GT(m2[0][15] / m2[0][1], m1[0][15] / m1[0][1]);
}

TEST(Masks, SymmetricForSymmetricTopology) {
  const noc::MeshTopology topo(4, 4);
  const StrengthMask m = distance_mask(topo);
  for (std::size_t p = 0; p < 16; ++p) {
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_DOUBLE_EQ(m[p][c], m[c][p]);
    }
  }
}

}  // namespace
}  // namespace ls::train
