// Pinned regression suite for the sparse-kernel edge cases the sanitizer
// jobs guard: reductions whose K is not a multiple of the 4-wide unroll
// (the tail group straddles a live/dead panel boundary), block grids with
// more parts than units (empty panels ⇒ empty bounds spans), and
// im2col_masked's obligation to zero-fill every row a straddling unroll
// group of gemm_nn_sparse can still read. Each case runs the dense and
// sparse kernels on identical inputs and requires bit-identical output —
// an out-of-bounds read or a garbage multiply shows up as a diff here (and
// as a report under -DLS_SAN=address,undefined).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/block_sparsity.hpp"
#include "nn/gemm.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

struct Mask {
  std::size_t parts = 0;
  std::vector<std::size_t> k_bounds, out_bounds;
  std::vector<std::uint8_t> zero;
  gemm::BlockMask view() const {
    return {parts, k_bounds.data(), out_bounds.data(), zero.data()};
  }
};

// Every sparse variant stores its weight operand as (out_extent rows x
// red_extent cols) row-major with rows partitioned by out_bounds and
// columns by k_bounds. Marks the requested blocks zero and zeroes the
// matching weight spans so the bitmap is truthful.
Mask prune_blocks(std::vector<float>& w, std::size_t out_extent,
                  std::size_t red_extent, std::size_t parts,
                  const std::vector<std::pair<std::size_t, std::size_t>>& pc) {
  Mask m;
  m.parts = parts;
  m.out_bounds = balanced_bounds(out_extent, parts);
  m.k_bounds = balanced_bounds(red_extent, parts);
  m.zero.assign(parts * parts, 0);
  for (const auto& [p, c] : pc) {
    m.zero[p * parts + c] = 1;
    for (std::size_t i = m.out_bounds[c]; i < m.out_bounds[c + 1]; ++i) {
      for (std::size_t k = m.k_bounds[p]; k < m.k_bounds[p + 1]; ++k) {
        w[i * red_extent + k] = 0.0f;
      }
    }
  }
  return m;
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  return v;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// K = 7 with parts = 3 gives panels [0,3) [3,5) [5,7): every unroll group
// the kernel forms straddles a panel boundary or is the K%4 tail — the
// exact geometry where a skipped group must not skip live k's or read past
// the reduction extent.
TEST(GemmEdge, SparseNnOddKTailParity) {
  const std::size_t M = 5, N = 6, K = 7, parts = 3;
  auto A = random_vec(M * K, 21);
  const auto B = random_vec(K * N, 22);
  const Mask m = prune_blocks(A, M, K, parts, {{0, 1}, {2, 0}, {1, 2}});

  std::vector<float> dense(M * N, 0.0f), sparse(M * N, 0.0f);
  gemm::gemm_nn(M, N, K, A.data(), K, B.data(), N, dense.data(), N,
                /*accumulate=*/false);
  gemm::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, sparse.data(), N,
                       /*accumulate=*/false, /*parallel=*/false, m.view());
  expect_bitwise_equal(dense, sparse);
}

TEST(GemmEdge, SparseNtOddKTailParity) {
  const std::size_t M = 3, N = 5, K = 7, parts = 3;
  const auto A = random_vec(M * K, 31);
  auto B = random_vec(N * K, 32);  // weights: N x K
  const Mask m = prune_blocks(B, N, K, parts, {{0, 0}, {1, 1}, {2, 2}});

  std::vector<float> dense(M * N, 0.0f), sparse(M * N, 0.0f);
  gemm::gemm_nt(M, N, K, A.data(), K, B.data(), K, dense.data(), N,
                /*accumulate=*/false);
  gemm::gemm_nt_sparse(M, N, K, A.data(), K, B.data(), K, sparse.data(), N,
                       /*accumulate=*/false, /*parallel=*/false, m.view());
  expect_bitwise_equal(dense, sparse);
}

TEST(GemmEdge, SparseTnOddReductionParity) {
  // Weights: K x N, reduction rows are the consumer partition.
  const std::size_t M = 4, N = 5, K = 6, parts = 3;
  const auto A = random_vec(K * M, 41);
  auto B = random_vec(K * N, 42);
  const Mask m = prune_blocks(B, K, N, parts, {{0, 2}, {2, 1}});

  std::vector<float> dense(M * N, 0.0f), sparse(M * N, 0.0f);
  gemm::gemm_tn(M, N, K, A.data(), M, B.data(), N, dense.data(), N,
                /*accumulate=*/false);
  gemm::gemm_tn_sparse(M, N, K, A.data(), M, B.data(), N, sparse.data(), N,
                       /*accumulate=*/false, /*parallel=*/false, m.view());
  expect_bitwise_equal(dense, sparse);
}

// More parts than units: panels beyond the extent are empty (equal
// cumulative bounds). The kernels must treat an empty panel's zero bit as
// vacuous — no element is skipped, no empty span is dereferenced.
TEST(GemmEdge, PartsExceedUnitsEmptyPanels) {
  const std::size_t M = 2, N = 4, K = 3, parts = 4;
  auto A = random_vec(M * K, 51);
  const auto B = random_vec(K * N, 52);
  Mask m = prune_blocks(A, M, K, parts, {{0, 1}});
  // Blocks touching the empty panels stay marked zero, as the scanner
  // leaves them (all-of-nothing is vacuously zero).
  for (std::size_t p = 0; p < parts; ++p) m.zero[p * parts + 3] = 1;
  m.zero[3 * parts + 0] = 1;

  std::vector<float> dense(M * N, 0.0f), sparse(M * N, 0.0f);
  gemm::gemm_nn(M, N, K, A.data(), K, B.data(), N, dense.data(), N,
                /*accumulate=*/false);
  gemm::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, sparse.data(), N,
                       /*accumulate=*/false, /*parallel=*/false, m.view());
  expect_bitwise_equal(dense, sparse);
}

// Dead input channel whose im2col row span (9 rows per channel for a 3x3
// kernel) starts and ends off the 4-row unroll grid: im2col_masked leaves
// the span unpacked except for the rows a straddling group of
// gemm_nn_sparse still reads, which it must zero-fill. Pre-poisoning the
// col buffer proves no unpacked garbage reaches the accumulation.
TEST(GemmEdge, Im2colMaskedStraddlingGroupsZeroFilled) {
  gemm::PackShape s;
  s.channels = 3;
  s.H = s.W = 5;
  s.K = 3;
  s.stride = 1;
  s.pad = 1;
  s.OH = s.OW = 5;
  const std::size_t ck2 = s.patch();  // 27
  const std::size_t cols = s.cols();  // 25
  const std::size_t cout = 4, parts = 3;

  const auto in = random_vec(s.channels * s.H * s.W, 61);
  auto W = random_vec(cout * ck2, 62);

  // Producer panels = channels (9 elems each); channel 1 dead for every
  // consumer.
  Mask m;
  m.parts = parts;
  m.k_bounds = {0, 9, 18, 27};
  m.out_bounds = balanced_bounds(cout, parts);
  m.zero.assign(parts * parts, 0);
  for (std::size_t c = 0; c < parts; ++c) {
    m.zero[1 * parts + c] = 1;
    for (std::size_t oc = m.out_bounds[c]; oc < m.out_bounds[c + 1]; ++oc) {
      for (std::size_t k = 9; k < 18; ++k) W[oc * ck2 + k] = 0.0f;
    }
  }
  const std::vector<std::uint8_t> channel_skip = {0, 1, 0};

  std::vector<float> col_dense(ck2 * cols, 0.0f);
  gemm::im2col(s, in.data(), col_dense.data());
  std::vector<float> dense(cout * cols, 0.0f);
  gemm::gemm_nn(cout, cols, ck2, W.data(), ck2, col_dense.data(), cols,
                dense.data(), cols, /*accumulate=*/false);

  std::vector<float> col_masked(ck2 * cols, 999.0f);  // poison
  gemm::im2col_masked(s, in.data(), col_masked.data(), channel_skip.data());
  std::vector<float> sparse(cout * cols, 0.0f);
  gemm::gemm_nn_sparse(cout, cols, ck2, W.data(), ck2, col_masked.data(),
                       cols, sparse.data(), cols, /*accumulate=*/false,
                       /*parallel=*/false, m.view());
  expect_bitwise_equal(dense, sparse);
}

}  // namespace
}  // namespace ls::nn
