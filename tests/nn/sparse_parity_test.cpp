// Block-sparse execution parity suite (DESIGN.md "Sparse execution").
//
// The contract under test is *bit-identical* output: the sparse kernels
// only skip work whose dense contribution is a sum of exact-zero products,
// so dense and sparse paths must agree to the last bit (up to the sign of
// exact zeros — max_abs_diff treats -0 and +0 as equal). Covers the raw
// GEMM kernels, im2col channel skipping, the Conv2D/FullyConnected fast
// paths on LeNet/AlexNet-shaped networks at P in {4, 16}, the no-blocks-
// zero and all-blocks-zero edge cases, and the weight-version invalidation
// contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "core/weight_groups.hpp"
#include "nn/block_sparsity.hpp"
#include "nn/conv2d.hpp"
#include "nn/fc.hpp"
#include "nn/gemm.hpp"
#include "nn/model_zoo.hpp"
#include "nn/network.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(BalancedBounds, MatchesCoreBalancedRanges) {
  for (const auto& [units, parts] :
       {std::pair<std::size_t, std::size_t>{16, 4},
        {16, 16},
        {10, 4},
        {7, 3},
        {3, 16},
        {1, 1},
        {0, 4}}) {
    const auto bounds = balanced_bounds(units, parts);
    const auto ranges = core::balanced_ranges(units, parts);
    ASSERT_EQ(bounds.size(), parts + 1);
    ASSERT_EQ(ranges.size(), parts);
    for (std::size_t p = 0; p < parts; ++p) {
      EXPECT_EQ(bounds[p], ranges[p].begin) << units << "/" << parts;
      EXPECT_EQ(bounds[p + 1], ranges[p].end) << units << "/" << parts;
    }
  }
}

// --- Raw kernel parity ------------------------------------------------------

struct KernelMask {
  std::vector<std::size_t> k_bounds, out_bounds;
  std::vector<std::uint8_t> zero;
  gemm::BlockMask mask() const {
    return {out_bounds.size() - 1, k_bounds.data(), out_bounds.data(),
            zero.data()};
  }
};

// Builds a parts x parts mask with ~`frac` zero blocks and zeroes the
// corresponding spans of the row-major (out_extent x red_extent) weight
// matrix `w`, where rows are partitioned by out_bounds and columns by
// k_bounds.
KernelMask make_mask_and_prune(std::vector<float>& w, std::size_t out_extent,
                               std::size_t red_extent, std::size_t parts,
                               double frac, std::uint64_t seed) {
  KernelMask km;
  km.k_bounds = balanced_bounds(red_extent, parts);
  km.out_bounds = balanced_bounds(out_extent, parts);
  km.zero.assign(parts * parts, 0);
  util::Rng rng(seed);
  for (std::size_t p = 0; p < parts; ++p) {
    for (std::size_t c = 0; c < parts; ++c) {
      if (!rng.bernoulli(frac)) continue;
      km.zero[p * parts + c] = 1;
      for (std::size_t i = km.out_bounds[c]; i < km.out_bounds[c + 1]; ++i) {
        for (std::size_t k = km.k_bounds[p]; k < km.k_bounds[p + 1]; ++k) {
          w[i * red_extent + k] = 0.0f;
        }
      }
    }
  }
  return km;
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

TEST(SparseGemmParity, NnBitIdentical) {
  // Unaligned K and M so 4-groups straddle panel boundaries, both serial
  // and pool-parallel row chunking.
  for (const bool parallel : {false, true}) {
    const std::size_t M = parallel ? 67 : 10, N = 33, K = 37, parts = 3;
    auto A = random_vec(M * K, 1);
    const auto B = random_vec(K * N, 2);
    const KernelMask km = make_mask_and_prune(A, M, K, parts, 0.5, 3);
    std::vector<float> c_dense(M * N), c_sparse(M * N);
    gemm::gemm_nn(M, N, K, A.data(), K, B.data(), N, c_dense.data(), N,
                  false, parallel);
    gemm::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, c_sparse.data(),
                         N, false, parallel, km.mask());
    for (std::size_t i = 0; i < M * N; ++i) {
      ASSERT_EQ(c_dense[i], c_sparse[i]) << "parallel=" << parallel << " i="
                                         << i;
    }
  }
}

TEST(SparseGemmParity, NtBitIdentical) {
  for (const bool parallel : {false, true}) {
    const std::size_t M = 9, N = parallel ? 67 : 21, K = 41, parts = 4;
    const auto A = random_vec(M * K, 4);
    auto B = random_vec(N * K, 5);  // weights, N x K
    const KernelMask km = make_mask_and_prune(B, N, K, parts, 0.5, 6);
    std::vector<float> c_dense(M * N), c_sparse(M * N);
    gemm::gemm_nt(M, N, K, A.data(), K, B.data(), K, c_dense.data(), N,
                  false, parallel);
    gemm::gemm_nt_sparse(M, N, K, A.data(), K, B.data(), K, c_sparse.data(),
                         N, false, parallel, km.mask());
    for (std::size_t i = 0; i < M * N; ++i) {
      ASSERT_EQ(c_dense[i], c_sparse[i]) << "parallel=" << parallel;
    }
  }
}

TEST(SparseGemmParity, TnBitIdentical) {
  // B (K x N) is the weight: reduction dim K is the consumer partition,
  // columns N are producer panels.
  for (const bool parallel : {false, true}) {
    const std::size_t M = parallel ? 67 : 13, N = 29, K = 23, parts = 3;
    const auto A = random_vec(K * M, 7);
    auto B = random_vec(K * N, 8);
    // Prune with out_bounds over K (rows of B) and k_bounds over N.
    KernelMask km;
    km.k_bounds = balanced_bounds(N, parts);
    km.out_bounds = balanced_bounds(K, parts);
    km.zero.assign(parts * parts, 0);
    util::Rng rng(9);
    for (std::size_t p = 0; p < parts; ++p) {
      for (std::size_t c = 0; c < parts; ++c) {
        if (!rng.bernoulli(0.5)) continue;
        km.zero[p * parts + c] = 1;
        for (std::size_t k = km.out_bounds[c]; k < km.out_bounds[c + 1];
             ++k) {
          for (std::size_t j = km.k_bounds[p]; j < km.k_bounds[p + 1]; ++j) {
            B[k * N + j] = 0.0f;
          }
        }
      }
    }
    std::vector<float> c_dense(M * N), c_sparse(M * N);
    gemm::gemm_tn(M, N, K, A.data(), M, B.data(), N, c_dense.data(), N,
                  false, parallel);
    gemm::gemm_tn_sparse(M, N, K, A.data(), M, B.data(), N, c_sparse.data(),
                         N, false, parallel, km.mask());
    for (std::size_t i = 0; i < M * N; ++i) {
      ASSERT_EQ(c_dense[i], c_sparse[i]) << "parallel=" << parallel;
    }
  }
}

TEST(SparseGemmParity, AccumulateMode) {
  const std::size_t M = 12, N = 17, K = 20, parts = 4;
  auto A = random_vec(M * K, 10);
  const auto B = random_vec(K * N, 11);
  const KernelMask km = make_mask_and_prune(A, M, K, parts, 0.6, 12);
  auto c_dense = random_vec(M * N, 13);
  auto c_sparse = c_dense;
  gemm::gemm_nn(M, N, K, A.data(), K, B.data(), N, c_dense.data(), N, true,
                false);
  gemm::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, c_sparse.data(), N,
                       true, false, km.mask());
  for (std::size_t i = 0; i < M * N; ++i) {
    ASSERT_EQ(c_dense[i], c_sparse[i]);
  }
}

// --- im2col channel skipping -----------------------------------------------

TEST(Im2colMasked, PacksLiveRowsAndZeroesBoundaries) {
  gemm::PackShape s;
  s.channels = 5;
  s.H = s.W = 6;
  s.OH = s.OW = 4;
  s.K = 3;  // k2 = 9: runs land on unaligned row boundaries
  s.stride = 1;
  s.pad = 0;
  const auto in = random_vec(s.channels * s.H * s.W, 20);
  const std::size_t rows = s.patch(), cols = s.cols();

  std::vector<float> ref(rows * cols);
  gemm::im2col(s, in.data(), ref.data());

  // Skip channels 1,2 (col rows [9, 27)) and 4 (rows [36, 45)).
  const std::vector<std::uint8_t> skip = {0, 1, 1, 0, 1};
  const float kSentinel = 777.0f;
  std::vector<float> col(rows * cols, kSentinel);
  gemm::im2col_masked(s, in.data(), col.data(), skip.data());

  auto row_state = [&](std::size_t r) -> char {
    // 'l' live (must match ref), 'z' boundary zero, 'g' garbage (untouched)
    if (r < 9 || (r >= 27 && r < 36)) return 'l';
    if ((r >= 9 && r < 12) || (r >= 24 && r < 27) || r == 44) return 'z';
    return 'g';
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < cols; ++j) {
      const float v = col[r * cols + j];
      switch (row_state(r)) {
        case 'l':
          ASSERT_EQ(v, ref[r * cols + j]) << "row " << r;
          break;
        case 'z':
          ASSERT_EQ(v, 0.0f) << "row " << r;
          break;
        default:
          ASSERT_EQ(v, kSentinel) << "row " << r;  // interior not written
      }
    }
  }
}

// --- Layer / network level --------------------------------------------------

// Kills the same deterministic selection of blocks in every group set:
// ~frac of all (p, c) blocks, plus (when whole_columns) every block of the
// first producer panel so the im2col channel-skip path engages.
void kill_pattern(std::vector<core::LayerGroupSet>& sets, double frac,
                  bool whole_columns, std::uint64_t seed) {
  util::Rng rng(seed);
  for (core::LayerGroupSet& set : sets) {
    for (std::size_t p = 0; p < set.cores; ++p) {
      for (std::size_t c = 0; c < set.cores; ++c) {
        if (set.block(p, c).empty()) continue;
        const bool kill = (whole_columns && p == 0) || rng.bernoulli(frac);
        if (kill) set.kill_block(p, c);
      }
    }
  }
}

void expect_params_identical(Network& a, Network& b, const char* what) {
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(pa[i]->grad, pb[i]->grad), 0.0f)
        << what << ": " << pa[i]->name;
  }
}

// Dense reference and armed network share seeds and kill pattern; forward
// and backward must agree bit for bit.
void run_network_parity(const NetSpec& spec, std::size_t parts, double frac,
                        bool whole_columns) {
  SCOPED_TRACE(spec.name + " P=" + std::to_string(parts) +
               " frac=" + std::to_string(frac));
  util::Rng rng_a(321), rng_b(321), rng_in(654);
  Network dense = build_network(spec, rng_a);
  Network sparse = build_network(spec, rng_b);
  const std::size_t armed = enable_block_sparsity(sparse, spec, parts);
  ASSERT_GT(armed, 0u);

  auto dense_sets = core::build_group_sets(dense, spec, parts);
  auto sparse_sets = core::build_group_sets(sparse, spec, parts);
  kill_pattern(dense_sets, frac, whole_columns, 99);
  kill_pattern(sparse_sets, frac, whole_columns, 99);

  const Tensor in = Tensor::uniform(
      Shape{2, spec.input.c, spec.input.h, spec.input.w}, -1.f, 1.f, rng_in);
  const Tensor out_d = dense.forward(in, /*training=*/true);
  const Tensor out_s = sparse.forward(in, /*training=*/true);
  ASSERT_EQ(out_d.shape(), out_s.shape());
  EXPECT_EQ(tensor::max_abs_diff(out_d, out_s), 0.0f) << "forward";

  util::Rng rng_go(42);
  const Tensor grad = Tensor::uniform(out_d.shape(), -1.f, 1.f, rng_go);
  const Tensor din_d = dense.backward(grad);
  const Tensor din_s = sparse.backward(grad);
  EXPECT_EQ(tensor::max_abs_diff(din_d, din_s), 0.0f) << "input gradient";
  expect_params_identical(dense, sparse, "gradients");
}

TEST(SparseNetworkParity, LeNetPartitions) {
  for (const std::size_t parts : {4u, 16u}) {
    run_network_parity(lenet_expt_spec(), parts, 0.5, false);
    run_network_parity(lenet_expt_spec(), parts, 0.5, true);
  }
}

TEST(SparseNetworkParity, AlexNetPartitions) {
  for (const std::size_t parts : {4u, 16u}) {
    run_network_parity(caffenet_expt_spec(), parts, 0.5, true);
  }
}

TEST(SparseNetworkParity, NoBlocksZeroEdgeCase) {
  // Freshly initialized weights: nothing pruned, sparse path must
  // disengage and match exactly.
  run_network_parity(lenet_expt_spec(), 4, 0.0, false);
}

TEST(SparseNetworkParity, AllBlocksZeroEdgeCase) {
  run_network_parity(lenet_expt_spec(), 4, 1.0, false);
  run_network_parity(lenet_expt_spec(), 16, 1.0, true);
}

// --- Cache invalidation -----------------------------------------------------

TEST(BlockSparsityCache, RescanOnVersionBump) {
  util::Rng rng(7);
  Conv2DConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.kernel = 3;
  cfg.impl = ConvImpl::kGemm;
  Conv2D conv("c", cfg, rng);
  conv.set_sparsity_partition(4);
  ASSERT_NE(conv.sparsity(), nullptr);

  BlockSparsity probe(4, 8, 8, 9);
  EXPECT_FALSE(probe.map(conv.weight()).engaged());

  // Zero producer panel 0 / consumer 0 block by hand, then bump — the
  // cached bitmap must pick it up on the next map() call.
  const std::size_t cin = 8, k2 = 9;
  for (std::size_t oc = 0; oc < 2; ++oc) {    // consumer 0 owns oc 0..1
    for (std::size_t ic = 0; ic < 2; ++ic) {  // producer 0 owns ic 0..1
      for (std::size_t e = 0; e < k2; ++e) {
        conv.weight().value[(oc * cin + ic) * k2 + e] = 0.0f;
      }
    }
  }
  // Without a bump the stale map is served — that is the documented
  // contract (direct pokes must bump).
  EXPECT_FALSE(probe.map(conv.weight()).engaged());
  conv.weight().bump();
  const BlockMap& m = probe.map(conv.weight());
  EXPECT_TRUE(m.engaged());
  EXPECT_EQ(m.zero_blocks, 1u);
  EXPECT_EQ(m.zero_weight_elems, 2 * 2 * k2);
}

TEST(BlockSparsityCache, FcInUnitsValidated) {
  util::Rng rng(7);
  FullyConnected fc("f", 24, 10, rng);
  EXPECT_NO_THROW(fc.set_sparsity_partition(4, 8));   // 24 = 8 * 3
  EXPECT_ANY_THROW(fc.set_sparsity_partition(4, 7));  // 24 % 7 != 0
}

}  // namespace
}  // namespace ls::nn
