// Parity and contract suite for the vectorized GEMM backend (ls::nn::simd).
//
// Three contracts from gemm_simd.hpp:
//   * dense simd vs dense scalar agree to a K-scaled relative tolerance
//     (different accumulation grouping and FMA contraction, same math);
//   * sparse simd vs dense simd on the same pruned operand compare EQUAL
//     under == (span skipping removes only exact-zero contributions);
//   * outputs are byte-identical for every thread count, parallel or not.
// Plus the edge grid (K below/straddling the vector width, row/col tails)
// and the im2col garbage-row obligation: rows of the packed matrix that lie
// in panels dead for *all* consumers may hold arbitrary bits — poisoned
// with NaN here — and must never influence the sparse result.

#include "nn/gemm_simd.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "nn/block_sparsity.hpp"
#include "nn/gemm.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  return v;
}

// Accumulation-order differences compound with reduction length; the bound
// observed across the bench shapes is ~5e-8 * K relative, so 1e-5 + 3e-7*K
// leaves comfortable margin without masking real indexing bugs.
double tol_for(std::size_t K) {
  return 1e-5 + 3e-7 * static_cast<double>(K);
}

void expect_close(const std::vector<float>& ref, const std::vector<float>& got,
                  std::size_t K, const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  const double tol = tol_for(K);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double den = std::max(1.0, std::fabs(static_cast<double>(ref[i])));
    const double rel = std::fabs(static_cast<double>(ref[i]) - got[i]) / den;
    ASSERT_LE(rel, tol) << what << " at " << i << ": ref=" << ref[i]
                        << " got=" << got[i];
  }
}

struct Mask {
  std::size_t parts = 0;
  std::vector<std::size_t> k_bounds, out_bounds;
  std::vector<std::uint8_t> zero;
  gemm::BlockMask view() const {
    return {parts, k_bounds.data(), out_bounds.data(), zero.data()};
  }
};

// Weight operand stored (out_extent x red_extent) row-major; marks the
// requested (producer, consumer) blocks zero and zeroes the matching weight
// spans so the bitmap is truthful (the exact-equality contract assumes it).
Mask prune_blocks(std::vector<float>& w, std::size_t out_extent,
                  std::size_t red_extent, std::size_t parts,
                  const std::vector<std::pair<std::size_t, std::size_t>>& pc) {
  Mask m;
  m.parts = parts;
  m.out_bounds = balanced_bounds(out_extent, parts);
  m.k_bounds = balanced_bounds(red_extent, parts);
  m.zero.assign(parts * parts, 0);
  for (const auto& [p, c] : pc) {
    m.zero[p * parts + c] = 1;
    for (std::size_t i = m.out_bounds[c]; i < m.out_bounds[c + 1]; ++i) {
      for (std::size_t k = m.k_bounds[p]; k < m.k_bounds[p + 1]; ++k) {
        w[i * red_extent + k] = 0.0f;
      }
    }
  }
  return m;
}

struct Dims {
  std::size_t M, N, K;
};

// Tails on every axis: rows vs the 4-wide tile, cols vs the 16-lane strip,
// K below / at / straddling the strip row count, K=1, and a shape big
// enough to cross the kMc=64 x kNg=128 task grid.
const Dims kShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {4, 16, 16},   {5, 17, 16},  {8, 33, 1},
    {16, 48, 15}, {13, 100, 17}, {64, 128, 32}, {70, 150, 51}, {32, 256, 93},
};

TEST(GemmSimd, DenseNnMatchesScalar) {
  for (const Dims& d : kShapes) {
    const auto A = random_vec(d.M * d.K, 1);
    const auto B = random_vec(d.K * d.N, 2);
    std::vector<float> ref(d.M * d.N), got(d.M * d.N);
    gemm::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, ref.data(),
                  d.N, false, false);
    simd::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, got.data(),
                  d.N, false, false);
    expect_close(ref, got, d.K, "nn");
  }
}

TEST(GemmSimd, DenseNtMatchesScalar) {
  for (const Dims& d : kShapes) {
    const auto A = random_vec(d.M * d.K, 3);
    const auto B = random_vec(d.N * d.K, 4);  // stored (N x K)
    std::vector<float> ref(d.M * d.N), got(d.M * d.N);
    gemm::gemm_nt(d.M, d.N, d.K, A.data(), d.K, B.data(), d.K, ref.data(),
                  d.N, false, false);
    simd::gemm_nt(d.M, d.N, d.K, A.data(), d.K, B.data(), d.K, got.data(),
                  d.N, false, false);
    expect_close(ref, got, d.K, "nt");
  }
}

TEST(GemmSimd, DenseTnMatchesScalar) {
  for (const Dims& d : kShapes) {
    const auto A = random_vec(d.K * d.M, 5);  // stored (K x M)
    const auto B = random_vec(d.K * d.N, 6);
    std::vector<float> ref(d.M * d.N), got(d.M * d.N);
    gemm::gemm_tn(d.M, d.N, d.K, A.data(), d.M, B.data(), d.N, ref.data(),
                  d.N, false, false);
    simd::gemm_tn(d.M, d.N, d.K, A.data(), d.M, B.data(), d.N, got.data(),
                  d.N, false, false);
    expect_close(ref, got, d.K, "tn");
  }
}

TEST(GemmSimd, AccumulateAddsIntoPriorOutput) {
  const Dims d{13, 37, 29};
  const auto A = random_vec(d.M * d.K, 7);
  const auto B = random_vec(d.K * d.N, 8);
  const auto C0 = random_vec(d.M * d.N, 9);
  std::vector<float> once(C0), twice(C0);
  simd::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, once.data(),
                d.N, /*accumulate=*/true, false);
  simd::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, twice.data(),
                d.N, /*accumulate=*/true, false);
  simd::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, twice.data(),
                d.N, /*accumulate=*/true, false);
  for (std::size_t i = 0; i < once.size(); ++i) {
    // twice - once == once - C0 up to one rounding step of the second add.
    const float inc = once[i] - C0[i];
    EXPECT_NEAR(twice[i], once[i] + inc, 1e-4f + 1e-3f * std::fabs(inc));
  }
  // accumulate=false must overwrite, not add.
  std::vector<float> fresh(C0), zero_based(d.M * d.N, 0.0f);
  simd::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, fresh.data(),
                d.N, /*accumulate=*/false, false);
  simd::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N,
                zero_based.data(), d.N, /*accumulate=*/true, false);
  EXPECT_EQ(0, std::memcmp(fresh.data(), zero_based.data(),
                           fresh.size() * sizeof(float)));
}

// Sparse vs dense on the same pruned operand: exact equality, per variant.

TEST(GemmSimd, SparseNnExactlyMatchesDenseSimd) {
  const std::size_t M = 24, N = 70, K = 45, parts = 4;
  auto A = random_vec(M * K, 10);  // weights (M x K)
  const auto B = random_vec(K * N, 11);
  const Mask m = prune_blocks(A, M, K, parts, {{0, 1}, {2, 1}, {3, 0}, {1, 3}});
  std::vector<float> dense(M * N), sparse(M * N);
  simd::gemm_nn(M, N, K, A.data(), K, B.data(), N, dense.data(), N, false,
                false);
  simd::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, sparse.data(), N,
                       false, false, m.view());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(dense[i], sparse[i]) << "at " << i;
  }
}

TEST(GemmSimd, SparseNtExactlyMatchesDenseSimd) {
  const std::size_t M = 9, N = 40, K = 33, parts = 3;
  const auto A = random_vec(M * K, 12);
  auto B = random_vec(N * K, 13);  // weights (N x K)
  const Mask m = prune_blocks(B, N, K, parts, {{0, 2}, {1, 0}, {2, 2}});
  std::vector<float> dense(M * N), sparse(M * N);
  simd::gemm_nt(M, N, K, A.data(), K, B.data(), K, dense.data(), N, false,
                false);
  simd::gemm_nt_sparse(M, N, K, A.data(), K, B.data(), K, sparse.data(), N,
                       false, false, m.view());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(dense[i], sparse[i]) << "at " << i;
  }
}

TEST(GemmSimd, SparseTnExactlyMatchesDenseSimd) {
  // tn: B = weights (K x N), out_bounds partition K, k_bounds partition N.
  const std::size_t M = 18, N = 52, K = 28, parts = 4;
  const auto A = random_vec(K * M, 14);  // stored (K x M)
  auto B = random_vec(K * N, 15);
  Mask m;
  m.parts = parts;
  m.out_bounds = balanced_bounds(K, parts);
  m.k_bounds = balanced_bounds(N, parts);
  m.zero.assign(parts * parts, 0);
  for (const auto& [p, c] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 0}, {1, 3}, {3, 3}, {2, 1}}) {
    m.zero[p * parts + c] = 1;
    for (std::size_t k = m.out_bounds[c]; k < m.out_bounds[c + 1]; ++k) {
      for (std::size_t j = m.k_bounds[p]; j < m.k_bounds[p + 1]; ++j) {
        B[k * N + j] = 0.0f;
      }
    }
  }
  std::vector<float> dense(M * N), sparse(M * N);
  simd::gemm_tn(M, N, K, A.data(), M, B.data(), N, dense.data(), N, false,
                false);
  simd::gemm_tn_sparse(M, N, K, A.data(), M, B.data(), N, sparse.data(), N,
                       false, false, m.view());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(dense[i], sparse[i]) << "at " << i;
  }
}

TEST(GemmSimd, FullyPrunedConsumerYieldsZeroRows) {
  const std::size_t M = 16, N = 20, K = 24, parts = 2;
  auto A = random_vec(M * K, 16);
  const auto B = random_vec(K * N, 17);
  // Consumer 0 loses every producer: its C rows must be exactly zero.
  const Mask m = prune_blocks(A, M, K, parts, {{0, 0}, {1, 0}});
  std::vector<float> sparse(M * N, -1.0f);
  simd::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, sparse.data(), N,
                       /*accumulate=*/false, false, m.view());
  for (std::size_t i = m.out_bounds[0]; i < m.out_bounds[1]; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      ASSERT_EQ(sparse[i * N + j], 0.0f) << "row " << i << " col " << j;
    }
  }
}

TEST(GemmSimd, DeadPanelGarbageRowsNeverRead) {
  // Mirrors im2col_masked's contract: rows of the packed matrix in panels
  // dead for ALL consumers hold arbitrary bits. Poison them with NaN — any
  // read (packed or direct-strip) would propagate into C and fail here.
  const std::size_t M = 20, N = 37, K = 40, parts = 4;
  auto A = random_vec(M * K, 18);
  auto B = random_vec(K * N, 19);
  const Mask m = prune_blocks(
      A, M, K, parts, {{1, 0}, {1, 1}, {1, 2}, {1, 3}, {3, 0}, {3, 2}});
  // Producer panel 1 is dead for every consumer. The scalar kernel's 4-wide
  // unroll may still read zero-filled boundary rows there, so the reference
  // runs on a clean copy; the simd kernel must tolerate NaN in EVERY dead
  // row (it never packs or streams them).
  std::vector<float> B_clean(B);
  for (std::size_t k = m.k_bounds[1]; k < m.k_bounds[2]; ++k) {
    for (std::size_t j = 0; j < N; ++j) {
      B_clean[k * N + j] = 0.0f;
      B[k * N + j] = std::nanf("");
    }
  }
  std::vector<float> ref(M * N), got(M * N);
  gemm::gemm_nn_sparse(M, N, K, A.data(), K, B_clean.data(), N, ref.data(),
                       N, false, false, m.view());
  simd::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, got.data(), N,
                       false, false, m.view());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_FALSE(std::isnan(got[i])) << "NaN leaked into C at " << i;
  }
  expect_close(ref, got, K, "nn_sparse poisoned");
}

class GemmSimdThreads : public ::testing::Test {
 protected:
  void TearDown() override { util::ThreadPool::set_num_threads(0); }
};

TEST_F(GemmSimdThreads, BitIdenticalForAnyThreadCount) {
  const std::size_t M = 96, N = 200, K = 64, parts = 4;
  auto A = random_vec(M * K, 20);
  const auto B = random_vec(K * N, 21);
  const auto Bt = random_vec(N * K, 22);
  const Mask m = prune_blocks(A, M, K, parts, {{0, 3}, {2, 0}});
  const std::size_t threads[] = {1, 2, 5};
  std::vector<float> base_nn, base_nt, base_sp;
  for (const std::size_t t : threads) {
    util::ThreadPool::set_num_threads(t);
    std::vector<float> nn(M * N), nt(M * N), sp(M * N);
    simd::gemm_nn(M, N, K, A.data(), K, B.data(), N, nn.data(), N, false,
                  /*parallel=*/true);
    simd::gemm_nt(M, N, K, A.data(), K, Bt.data(), K, nt.data(), N, false,
                  /*parallel=*/true);
    simd::gemm_nn_sparse(M, N, K, A.data(), K, B.data(), N, sp.data(), N,
                         false, /*parallel=*/true, m.view());
    if (base_nn.empty()) {
      base_nn = nn;
      base_nt = nt;
      base_sp = sp;
      continue;
    }
    EXPECT_EQ(0,
              std::memcmp(base_nn.data(), nn.data(), nn.size() * sizeof(float)))
        << "nn with " << t << " threads";
    EXPECT_EQ(0,
              std::memcmp(base_nt.data(), nt.data(), nt.size() * sizeof(float)))
        << "nt with " << t << " threads";
    EXPECT_EQ(0,
              std::memcmp(base_sp.data(), sp.data(), sp.size() * sizeof(float)))
        << "nn_sparse with " << t << " threads";
  }
}

// Small-M dispatch: below the 4-row tile payoff (M < 8) the nn variants
// delegate to the scalar streaming kernel — FC backward dX runs at
// M = batch, where padding every row block to kMr duplicate pointers and
// amortizing a packed-B panel over a handful of FMAs loses to the plain
// loop. Delegation means literally calling the scalar kernel, so parity
// is bit-exact, and sparse/dense take the same path so the within-backend
// exactness contract survives the dispatch.
TEST(GemmSimd, SmallMDelegatesToScalarBitExact) {
  const Dims small[] = {{1, 257, 129}, {4, 300, 96}, {7, 64, 33}};
  for (const Dims& d : small) {
    const auto A = random_vec(d.M * d.K, 30);
    const auto B = random_vec(d.K * d.N, 31);
    std::vector<float> ref(d.M * d.N), got(d.M * d.N);
    gemm::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, ref.data(),
                  d.N, false, false);
    simd::gemm_nn(d.M, d.N, d.K, A.data(), d.K, B.data(), d.N, got.data(),
                  d.N, false, false);
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                             got.size() * sizeof(float)))
        << "M=" << d.M;
  }
  // Sparse small-M: same delegation, same bit-exactness.
  const std::size_t M = 6, N = 120, K = 80, parts = 3;
  auto W = random_vec(M * K, 32);
  const auto B = random_vec(K * N, 33);
  const Mask m = prune_blocks(W, M, K, parts, {{0, 2}, {1, 1}});
  std::vector<float> ref(M * N), got(M * N);
  gemm::gemm_nn_sparse(M, N, K, W.data(), K, B.data(), N, ref.data(), N,
                       false, false, m.view());
  simd::gemm_nn_sparse(M, N, K, W.data(), K, B.data(), N, got.data(), N,
                       false, false, m.view());
  EXPECT_EQ(0,
            std::memcmp(ref.data(), got.data(), got.size() * sizeof(float)));
}

// The dispatch must not cost anything: on an FC-backward-shaped problem
// the simd entry point (which now just forwards) stays within noise of
// calling the scalar kernel directly. Generous 1.5x margin — the two
// paths run identical code, so a real regression (falling back into the
// tile grid) shows up as a multiple, not a percentage.
TEST(GemmSimd, SmallMNoSlowerThanScalar) {
  const std::size_t M = 4, N = 1024, K = 1024;
  const auto A = random_vec(M * K, 34);
  const auto B = random_vec(K * N, 35);
  std::vector<float> out(M * N);
  constexpr int kIters = 20;
  const auto run = [&](auto&& fn) {
    fn();  // warm caches outside the timed region
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) fn();
    return (std::chrono::steady_clock::now() - t0).count();
  };
  const auto scalar_ns = run([&] {
    gemm::gemm_nn(M, N, K, A.data(), K, B.data(), N, out.data(), N, false,
                  false);
  });
  const auto simd_ns = run([&] {
    simd::gemm_nn(M, N, K, A.data(), K, B.data(), N, out.data(), N, false,
                  false);
  });
  EXPECT_LE(simd_ns, scalar_ns + scalar_ns / 2)
      << "small-M dispatch regressed: simd " << simd_ns << "ns vs scalar "
      << scalar_ns << "ns over " << kIters << " iters";
}

TEST(GemmSimd, BackendReportsVectorization) {
#if defined(LS_HAS_OMP_SIMD)
  EXPECT_TRUE(simd::vectorized());
#else
  EXPECT_FALSE(simd::vectorized());
  EXPECT_EQ(simd::default_backend(), simd::GemmBackend::kScalar);
#endif
}

}  // namespace
}  // namespace ls::nn
