#include "nn/layer_spec.hpp"

#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"

namespace ls::nn {
namespace {

TEST(LayerSpec, ConvShapePropagation) {
  NetSpec s;
  s.name = "t";
  s.input = {3, 32, 32};
  s.layers = {LayerSpec::conv("c1", 16, 5, 1, 2),
              LayerSpec::pool("p1", 2, 2),
              LayerSpec::conv("c2", 32, 3, 1, 1)};
  const auto a = analyze(s);
  EXPECT_EQ(a[0].out.c, 16u);
  EXPECT_EQ(a[0].out.h, 32u);
  EXPECT_EQ(a[1].out.h, 16u);
  EXPECT_EQ(a[2].out.c, 32u);
  EXPECT_EQ(a[2].out.h, 16u);
}

TEST(LayerSpec, ConvMacsAndWeights) {
  NetSpec s;
  s.input = {8, 10, 10};
  s.layers = {LayerSpec::conv("c", 16, 3, 1, 1)};
  const auto a = analyze(s);
  EXPECT_EQ(a[0].weight_count, 16u * 8 * 9);
  EXPECT_EQ(a[0].macs, 16u * 10 * 10 * 8 * 9);
}

TEST(LayerSpec, GroupedConvReducesMacsAndWeights) {
  NetSpec dense;
  dense.input = {8, 10, 10};
  dense.layers = {LayerSpec::conv("c", 16, 3, 1, 1, 1)};
  NetSpec grouped = dense;
  grouped.layers[0].groups = 4;
  EXPECT_EQ(analyze(grouped)[0].macs, analyze(dense)[0].macs / 4);
  EXPECT_EQ(analyze(grouped)[0].weight_count,
            analyze(dense)[0].weight_count / 4);
}

TEST(LayerSpec, FcAfterFlatten) {
  NetSpec s;
  s.input = {4, 3, 3};
  s.layers = {LayerSpec::flatten("f"), LayerSpec::fc("fc", 10)};
  const auto a = analyze(s);
  EXPECT_EQ(a[0].out.c, 36u);
  EXPECT_EQ(a[1].weight_count, 360u);
  EXPECT_EQ(a[1].macs, 360u);
}

TEST(LayerSpec, StridedConvShape) {
  NetSpec s;
  s.input = {3, 227, 227};
  s.layers = {LayerSpec::conv("c1", 96, 11, 4)};
  EXPECT_EQ(analyze(s)[0].out.h, 55u);
}

TEST(LayerSpec, ThrowsOnKernelTooLarge) {
  NetSpec s;
  s.input = {1, 4, 4};
  s.layers = {LayerSpec::conv("c", 4, 7)};
  EXPECT_THROW(analyze(s), std::invalid_argument);
}

TEST(LayerSpec, ThrowsOnBadGroups) {
  NetSpec s;
  s.input = {6, 8, 8};
  s.layers = {LayerSpec::conv("c", 9, 3, 1, 1, 4)};  // 6 % 4 != 0
  EXPECT_THROW(analyze(s), std::invalid_argument);
}

TEST(ModelZoo, MlpMatchesPaperDimensions) {
  const auto a = analyze(mlp_spec());
  // 784-512-304-10 (paper §V: "neuron number of 512/304/10").
  EXPECT_EQ(a[1].weight_count, 784u * 512);
  EXPECT_EQ(a[3].weight_count, 512u * 304);
  EXPECT_EQ(a[5].weight_count, 304u * 10);
}

TEST(ModelZoo, LeNetShapes) {
  const auto a = analyze(lenet_spec());
  // conv1: 20 maps of 24x24; pool1 -> 12x12; conv2: 50 maps of 8x8.
  EXPECT_EQ(a[0].out.c, 20u);
  EXPECT_EQ(a[0].out.h, 24u);
  EXPECT_EQ(a[1].out.h, 12u);
  EXPECT_EQ(a[2].out.c, 50u);
  EXPECT_EQ(a[2].out.h, 8u);
}

TEST(ModelZoo, AlexNetTotalWeightsNearSixtyMillion) {
  const std::size_t w = total_weights(alexnet_spec());
  EXPECT_GT(w, 55'000'000u);
  EXPECT_LT(w, 65'000'000u);
}

TEST(ModelZoo, Vgg19TotalWeightsNear140M) {
  const std::size_t w = total_weights(vgg19_spec());
  EXPECT_GT(w, 135'000'000u);
  EXPECT_LT(w, 150'000'000u);
}

TEST(ModelZoo, Vgg19MacsFarExceedAlexNet) {
  EXPECT_GT(total_macs(vgg19_spec()), 10u * total_macs(alexnet_spec()));
}

TEST(ModelZoo, VariantSpecGroupsApplied) {
  const NetSpec v = convnet_variant_spec(64, 128, 256, 16);
  bool saw = false;
  for (const auto& l : v.layers) {
    if (l.name == "conv2") {
      EXPECT_EQ(l.groups, 16u);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
  analyze(v);  // must be consistent
}

TEST(ModelZoo, ExptSpecsAnalyzeCleanly) {
  for (const NetSpec& s :
       {mlp_expt_spec(), lenet_expt_spec(), convnet_expt_spec(),
        caffenet_expt_spec(), convnet_variant_expt_spec(32, 96, 160, 16)}) {
    EXPECT_GT(analyze(s).size(), 0u) << s.name;
    EXPECT_GT(total_macs(s), 0u);
  }
}

TEST(ModelZoo, ToStringCoversKinds) {
  EXPECT_STREQ(to_string(LayerKind::kConv), "conv");
  EXPECT_STREQ(to_string(LayerKind::kFullyConnected), "fc");
  EXPECT_STREQ(to_string(LayerKind::kPool), "pool");
}

}  // namespace
}  // namespace ls::nn
