#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/pool.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

TEST(Pool2D, MaxPoolKnownValues) {
  Pool2D pool("p", PoolKind::kMax, 2, 2);
  const Tensor in = Tensor::from_data(
      Shape{1, 1, 4, 4},
      {1, 2, 5, 6, 3, 4, 7, 8, -1, -2, 0, 0, -3, -4, 0, 9});
  const Tensor out = pool.forward(in, false);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 0), -1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);
}

TEST(Pool2D, AvgPoolKnownValues) {
  Pool2D pool("p", PoolKind::kAvg, 2, 2);
  const Tensor in = Tensor::from_data(Shape{1, 1, 2, 4},
                                      {1, 3, 0, 8, 5, 7, 4, 4});
  const Tensor out = pool.forward(in, false);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 4.0f);
}

TEST(Pool2D, OverlappingStride) {
  Pool2D pool("p", PoolKind::kMax, 3, 2);
  EXPECT_EQ(pool.output_shape(Shape{1, 2, 7, 7}), Shape({1, 2, 3, 3}));
}

TEST(Pool2D, MaxBackwardRoutesToArgmax) {
  Pool2D pool("p", PoolKind::kMax, 2, 2);
  const Tensor in = Tensor::from_data(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
  pool.forward(in, true);
  const Tensor grad = Tensor::from_data(Shape{1, 1, 1, 1}, {5.0f});
  const Tensor gi = pool.backward(grad);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 5.0f);
  EXPECT_FLOAT_EQ(gi[2], 0.0f);
  EXPECT_FLOAT_EQ(gi[3], 0.0f);
}

TEST(Pool2D, AvgBackwardSpreadsUniformly) {
  Pool2D pool("p", PoolKind::kAvg, 2, 2);
  const Tensor in = Tensor::from_data(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  pool.forward(in, true);
  const Tensor gi = pool.backward(Tensor::from_data(Shape{1, 1, 1, 1}, {4.f}));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gi[i], 1.0f);
}

TEST(Pool2D, GradientSumConserved) {
  util::Rng rng(4);
  for (PoolKind kind : {PoolKind::kMax, PoolKind::kAvg}) {
    Pool2D pool("p", kind, 2, 2);
    Tensor in = Tensor::uniform(Shape{2, 3, 6, 6}, -1.f, 1.f, rng);
    const Tensor out = pool.forward(in, true);
    Tensor grad = Tensor::uniform(out.shape(), 0.f, 1.f, rng);
    const Tensor gi = pool.backward(grad);
    // Non-overlapping windows: upstream gradient mass is conserved.
    EXPECT_NEAR(gi.sum(), grad.sum(), 1e-3);
  }
}

TEST(Pool2D, RejectsBadWindow) {
  EXPECT_THROW(Pool2D("p", PoolKind::kMax, 0, 1), std::invalid_argument);
  Pool2D pool("p", PoolKind::kMax, 5, 5);
  EXPECT_THROW(pool.output_shape(Shape{1, 1, 4, 4}), std::invalid_argument);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu("r");
  const Tensor in = Tensor::from_data(Shape{4}, {-2, -0.5f, 0, 3});
  const Tensor out = relu.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
}

TEST(ReLU, BackwardMasksByInputSign) {
  ReLU relu("r");
  const Tensor in = Tensor::from_data(Shape{4}, {-2, -0.5f, 0.1f, 3});
  relu.forward(in, true);
  const Tensor gi = relu.backward(Tensor::full(Shape{4}, 2.0f));
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 0.0f);
  EXPECT_FLOAT_EQ(gi[2], 2.0f);
  EXPECT_FLOAT_EQ(gi[3], 2.0f);
}

TEST(ReLU, OutputShapeIdentity) {
  ReLU relu("r");
  EXPECT_EQ(relu.output_shape(Shape{2, 3, 4, 5}), Shape({2, 3, 4, 5}));
}

TEST(Flatten, ForwardBackwardRoundTrip) {
  Flatten flat("f");
  util::Rng rng(1);
  Tensor in = Tensor::uniform(Shape{2, 3, 4, 5}, -1.f, 1.f, rng);
  const Tensor out = flat.forward(in, true);
  EXPECT_EQ(out.shape(), Shape({2, 60}));
  const Tensor gi = flat.backward(out);
  EXPECT_EQ(gi.shape(), in.shape());
  EXPECT_LT(tensor::max_abs_diff(gi, in), 1e-7f);
}

}  // namespace
}  // namespace ls::nn
