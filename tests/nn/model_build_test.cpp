// Integration tests: NetSpec -> trainable Network consistency.

#include <gtest/gtest.h>

#include "nn/conv2d.hpp"
#include "nn/fc.hpp"
#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

TEST(BuildNetwork, LayerCountAndNamesMatchSpec) {
  util::Rng rng(1);
  const NetSpec spec = lenet_expt_spec();
  Network net = build_network(spec, rng);
  ASSERT_EQ(net.num_layers(), spec.layers.size());
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    EXPECT_EQ(net.layer(i).name(), spec.layers[i].name);
  }
}

TEST(BuildNetwork, ForwardShapeMatchesAnalysis) {
  util::Rng rng(2);
  for (const NetSpec& spec :
       {mlp_expt_spec(), lenet_expt_spec(), convnet_expt_spec()}) {
    Network net = build_network(spec, rng);
    const auto analysis = analyze(spec);
    const Tensor in(
        Shape{2, spec.input.c, spec.input.h, spec.input.w});
    const Tensor out = net.forward(in);
    const auto& last = analysis.back().out;
    EXPECT_EQ(out.shape()[0], 2u) << spec.name;
    EXPECT_EQ(out.shape()[1], last.c) << spec.name;
  }
}

TEST(BuildNetwork, ParamCountMatchesSpecWeights) {
  util::Rng rng(3);
  const NetSpec spec = convnet_expt_spec();
  Network net = build_network(spec, rng);
  std::size_t biases = 0;
  for (const auto& a : analyze(spec)) {
    if (a.spec.kind == LayerKind::kConv) biases += a.spec.out_channels;
    if (a.spec.kind == LayerKind::kFullyConnected) {
      biases += a.spec.out_features;
    }
  }
  EXPECT_EQ(net.num_params(), total_weights(spec) + biases);
}

TEST(BuildNetwork, GroupedVariantForwardRuns) {
  util::Rng rng(4);
  const NetSpec spec = convnet_variant_expt_spec(32, 64, 128, 16);
  Network net = build_network(spec, rng);
  const Tensor in(Shape{1, 3, 32, 32});
  const Tensor out = net.forward(in);
  EXPECT_EQ(out.shape(), Shape({1, 10}));
  const auto* conv2 =
      dynamic_cast<const Conv2D*>(&net.layer_by_name("conv2"));
  ASSERT_NE(conv2, nullptr);
  EXPECT_EQ(conv2->config().groups, 16u);
}

TEST(BuildNetwork, DeterministicForSameSeed) {
  util::Rng rng_a(5), rng_b(5);
  Network a = build_network(mlp_expt_spec(), rng_a);
  Network b = build_network(mlp_expt_spec(), rng_b);
  const Tensor in = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  EXPECT_LT(tensor::max_abs_diff(a.forward(in), b.forward(in)), 1e-7f);
}

TEST(BuildNetwork, Fixed16QuantizationPreservesPredictions) {
  // The noise-tolerance premise: deploying the trained float weights on the
  // 16-bit fixed-point cores must not change most predictions.
  util::Rng rng(6);
  const NetSpec spec = mlp_expt_spec();
  Network net = build_network(spec, rng);
  Tensor in = Tensor::uniform(Shape{8, 1, 28, 28}, 0.f, 1.f, rng);
  const auto before = net.predict(in);
  for (Param* p : net.params()) p->value.quantize_fixed16(12);
  const auto after = net.predict(in);
  std::size_t same = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] == after[i]) ++same;
  }
  EXPECT_GE(same, before.size() - 1);
}

}  // namespace
}  // namespace ls::nn
