// Property sweeps tying the executable Conv2D layer to the architecture
// analyzer: for every (kernel, stride, pad, groups) combination the two
// must agree on shapes, and with all-ones weights/inputs (no bias, no
// padding) the sum of the outputs equals the MAC count the analyzer
// predicts — a strong end-to-end consistency invariant between the
// functional layer and the cycle/traffic models built on analyze().

#include <gtest/gtest.h>

#include <ostream>

#include "nn/conv2d.hpp"
#include "nn/layer_spec.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

struct ConvCase {
  std::size_t in_c, out_c, kernel, stride, pad, groups, hw;

  friend void PrintTo(const ConvCase& c, std::ostream* os) {
    *os << c.in_c << "to" << c.out_c << "_k" << c.kernel << "s" << c.stride
        << "p" << c.pad << "g" << c.groups << "_hw" << c.hw;
  }
};

class ConvAnalyzerConsistency : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvAnalyzerConsistency, ShapesAgree) {
  const ConvCase& c = GetParam();
  util::Rng rng(1);
  Conv2DConfig cfg;
  cfg.in_channels = c.in_c;
  cfg.out_channels = c.out_c;
  cfg.kernel = c.kernel;
  cfg.stride = c.stride;
  cfg.pad = c.pad;
  cfg.groups = c.groups;
  Conv2D conv("c", cfg, rng);

  NetSpec spec;
  spec.name = "sweep";
  spec.input = {c.in_c, c.hw, c.hw};
  spec.layers = {LayerSpec::conv("c", c.out_c, c.kernel, c.stride, c.pad,
                                 c.groups)};
  const auto a = analyze(spec);

  const Shape out = conv.output_shape(Shape{1, c.in_c, c.hw, c.hw});
  EXPECT_EQ(out[1], a[0].out.c);
  EXPECT_EQ(out[2], a[0].out.h);
  EXPECT_EQ(out[3], a[0].out.w);
  EXPECT_EQ(conv.weight().value.numel(), a[0].weight_count);
}

TEST_P(ConvAnalyzerConsistency, OnesNetworkSumsToMacs) {
  const ConvCase& c = GetParam();
  if (c.pad != 0) GTEST_SKIP() << "invariant holds for unpadded conv only";
  util::Rng rng(1);
  Conv2DConfig cfg;
  cfg.in_channels = c.in_c;
  cfg.out_channels = c.out_c;
  cfg.kernel = c.kernel;
  cfg.stride = c.stride;
  cfg.pad = 0;
  cfg.groups = c.groups;
  cfg.bias = false;
  Conv2D conv("c", cfg, rng);
  conv.weight().value.fill(1.0f);

  NetSpec spec;
  spec.name = "sweep";
  spec.input = {c.in_c, c.hw, c.hw};
  spec.layers = {
      LayerSpec::conv("c", c.out_c, c.kernel, c.stride, 0, c.groups)};
  const auto a = analyze(spec);

  const Tensor in = Tensor::full(Shape{1, c.in_c, c.hw, c.hw}, 1.0f);
  const Tensor out = conv.forward(in, false);
  // Every MAC contributes exactly 1 to the output sum.
  EXPECT_DOUBLE_EQ(out.sum(), static_cast<double>(a[0].macs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvAnalyzerConsistency,
    ::testing::Values(ConvCase{3, 8, 3, 1, 0, 1, 12},
                      ConvCase{3, 8, 3, 1, 1, 1, 12},
                      ConvCase{4, 8, 5, 2, 0, 1, 13},
                      ConvCase{4, 8, 5, 2, 2, 4, 13},
                      ConvCase{8, 16, 1, 1, 0, 1, 7},
                      ConvCase{8, 16, 3, 1, 0, 8, 9},
                      ConvCase{6, 12, 7, 3, 0, 2, 21},
                      ConvCase{16, 16, 3, 1, 1, 16, 8},
                      ConvCase{1, 4, 2, 2, 0, 1, 8},
                      ConvCase{5, 10, 4, 1, 0, 5, 11}));

// Backward/forward agreement under grouping: the gradient of the sum of
// outputs w.r.t. an all-ones input counts how many windows each input
// element participates in; for stride=kernel (non-overlapping), that is
// exactly out_channels_per_group for every covered element.
TEST(ConvProperty, NonOverlappingWindowsGradient) {
  util::Rng rng(2);
  Conv2DConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 8;
  cfg.kernel = 2;
  cfg.stride = 2;
  cfg.pad = 0;
  cfg.groups = 2;
  cfg.bias = false;
  Conv2D conv("c", cfg, rng);
  conv.weight().value.fill(1.0f);
  const Tensor in = Tensor::full(Shape{1, 4, 6, 6}, 1.0f);
  const Tensor out = conv.forward(in, true);
  const Tensor grad_in = conv.backward(Tensor::full(out.shape(), 1.0f));
  // Each input element feeds 1 window x 4 out-channels of its group.
  for (std::size_t i = 0; i < grad_in.numel(); ++i) {
    EXPECT_FLOAT_EQ(grad_in[i], 4.0f) << i;
  }
}

}  // namespace
}  // namespace ls::nn
