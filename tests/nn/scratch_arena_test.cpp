// Pins the scratch-arena contract: after a warmup call at a given shape,
// steady-state conv forward/backward and SIMD GEMM calls perform zero
// scratch reallocations (the grow-only buffers are already large enough),
// and repeated calls never grow the footprint. A regression here means a
// kernel went back to per-call allocation churn.

#include "nn/scratch.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/gemm_simd.hpp"
#include "tensor/tensor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

class ScratchArena : public ::testing::Test {
 protected:
  // Everything on the calling thread so thread_stats() sees all activity.
  void SetUp() override { util::ThreadPool::set_num_threads(1); }
  void TearDown() override { util::ThreadPool::set_num_threads(0); }
};

TEST_F(ScratchArena, BufferGrowsMonotonically) {
  const auto before = scratch::thread_stats();
  float* big = scratch::buffer(scratch::Slot::kIm2col, 1024);
  ASSERT_NE(big, nullptr);
  const auto grown = scratch::thread_stats();
  EXPECT_GE(grown.bytes, before.bytes);
  // Shrinking or equal requests reuse the same allocation.
  float* again = scratch::buffer(scratch::Slot::kIm2col, 512);
  EXPECT_EQ(big, again);
  float* same = scratch::buffer(scratch::Slot::kIm2col, 1024);
  EXPECT_EQ(big, same);
  const auto after = scratch::thread_stats();
  EXPECT_EQ(grown.reallocs, after.reallocs);
  EXPECT_EQ(grown.bytes, after.bytes);
}

TEST_F(ScratchArena, SlotsAreDistinct) {
  float* a = scratch::buffer(scratch::Slot::kIm2col, 64);
  float* b = scratch::buffer(scratch::Slot::kIm2row, 64);
  float* c = scratch::buffer(scratch::Slot::kPackB, 64);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST_F(ScratchArena, ConvSteadyStateDoesNotReallocate) {
  util::Rng rng(11);
  Conv2DConfig cc;
  cc.in_channels = 3;
  cc.out_channels = 8;
  cc.kernel = 3;
  cc.stride = 1;
  cc.pad = 1;
  cc.impl = ConvImpl::kGemm;
  Conv2D conv("c", cc, rng);
  tensor::Tensor in(tensor::Shape{2, 3, 12, 12});
  util::Rng fill(12);
  for (std::size_t i = 0; i < in.numel(); ++i) {
    in.data()[i] = static_cast<float>(fill.uniform() - 0.5);
  }
  // Warmup: forward + backward at the steady shape.
  tensor::Tensor out = conv.forward(in, /*training=*/true);
  conv.backward(out);
  const auto warm = scratch::thread_stats();
  for (int it = 0; it < 5; ++it) {
    tensor::Tensor o = conv.forward(in, /*training=*/true);
    conv.backward(o);
  }
  const auto after = scratch::thread_stats();
  EXPECT_EQ(warm.reallocs, after.reallocs)
      << "conv steady state reallocated scratch";
  EXPECT_EQ(warm.bytes, after.bytes);
}

TEST_F(ScratchArena, SimdGemmSteadyStateDoesNotReallocate) {
  const std::size_t M = 32, N = 50, K = 40;
  std::vector<float> A(M * K, 0.5f), B(N * K, 0.25f), C(M * N);
  // nt packs strips (nn's full strips stream direct) — warm it, then loop.
  simd::gemm_nt(M, N, K, A.data(), K, B.data(), K, C.data(), N, false, false);
  const auto warm = scratch::thread_stats();
  for (int it = 0; it < 5; ++it) {
    simd::gemm_nt(M, N, K, A.data(), K, B.data(), K, C.data(), N, false,
                  false);
  }
  const auto after = scratch::thread_stats();
  EXPECT_EQ(warm.reallocs, after.reallocs)
      << "simd gemm steady state reallocated scratch";
  EXPECT_EQ(warm.bytes, after.bytes);
}

}  // namespace
}  // namespace ls::nn
