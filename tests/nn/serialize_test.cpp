#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "lsnn_checkpoint.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializeTest, RoundTripRestoresExactWeights) {
  util::Rng rng(1);
  Network a = build_network(lenet_expt_spec(), rng);
  save_params(a, path_);

  util::Rng rng2(999);  // different init
  Network b = build_network(lenet_expt_spec(), rng2);
  const Tensor in = Tensor::full(Shape{1, 1, 28, 28}, 0.5f);
  EXPECT_GT(tensor::max_abs_diff(a.forward(in), b.forward(in)), 1e-4f);

  load_params(b, path_);
  EXPECT_EQ(tensor::max_abs_diff(a.forward(in), b.forward(in)), 0.0f);
  const auto pa = a.params(), pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(pa[i]->value, pb[i]->value), 0.0f);
  }
}

TEST_F(SerializeTest, PreservesExactZeros) {
  util::Rng rng(2);
  Network a = build_network(mlp_expt_spec(), rng);
  a.params()[2]->value.zero();  // kill a whole weight matrix
  save_params(a, path_);
  util::Rng rng2(3);
  Network b = build_network(mlp_expt_spec(), rng2);
  load_params(b, path_);
  EXPECT_DOUBLE_EQ(b.sparsity(), a.sparsity());
}

TEST_F(SerializeTest, RejectsWrongArchitecture) {
  util::Rng rng(4);
  Network a = build_network(mlp_expt_spec(), rng);
  save_params(a, path_);
  Network b = build_network(lenet_expt_spec(), rng);
  EXPECT_THROW(load_params(b, path_), std::runtime_error);
}

TEST_F(SerializeTest, RejectsGarbageFile) {
  std::ofstream out(path_, std::ios::binary);
  out << "definitely not a checkpoint";
  out.close();
  util::Rng rng(5);
  Network net = build_network(mlp_expt_spec(), rng);
  EXPECT_THROW(load_params(net, path_), std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  util::Rng rng(6);
  Network a = build_network(mlp_expt_spec(), rng);
  save_params(a, path_);
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  Network b = build_network(mlp_expt_spec(), rng);
  EXPECT_THROW(load_params(b, path_), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  util::Rng rng(7);
  Network net = build_network(mlp_expt_spec(), rng);
  EXPECT_THROW(load_params(net, "/nonexistent/dir/x.bin"),
               std::runtime_error);
}

TEST_F(SerializeTest, FailedLoadLeavesNetworkUntouched) {
  util::Rng rng(8);
  Network a = build_network(mlp_expt_spec(), rng);
  save_params(a, path_);
  Network b = build_network(lenet_expt_spec(), rng);
  const Tensor in = Tensor::full(Shape{1, 1, 28, 28}, 0.3f);
  const Tensor before = b.forward(in);
  EXPECT_THROW(load_params(b, path_), std::runtime_error);
  EXPECT_EQ(tensor::max_abs_diff(before, b.forward(in)), 0.0f);
}

}  // namespace
}  // namespace ls::nn
