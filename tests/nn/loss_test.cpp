#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace ls::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(1);
  const Tensor logits = Tensor::uniform(Shape{5, 7}, -4.f, 4.f, rng);
  const Tensor probs = softmax(logits);
  for (std::size_t n = 0; n < 5; ++n) {
    double s = 0.0;
    for (std::size_t c = 0; c < 7; ++c) s += probs.at2(n, c);
    EXPECT_NEAR(s, 1.0, 1e-6);
  }
}

TEST(Softmax, InvariantToShift) {
  Tensor a = Tensor::from_data(Shape{1, 3}, {1.f, 2.f, 3.f});
  Tensor b = Tensor::from_data(Shape{1, 3}, {101.f, 102.f, 103.f});
  const Tensor pa = softmax(a), pb = softmax(b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(pa.at2(0, c), pb.at2(0, c), 1e-6);
  }
}

TEST(Softmax, NumericallyStableAtExtremes) {
  Tensor logits = Tensor::from_data(Shape{1, 2}, {1000.f, -1000.f});
  const Tensor p = softmax(logits);
  EXPECT_NEAR(p.at2(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(p.at2(0, 1), 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::zeros(Shape{2, 10});
  const LossResult r = softmax_cross_entropy(logits, {3, 7});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits = Tensor::zeros(Shape{1, 4});
  logits.at2(0, 2) = 50.0f;
  const LossResult r = softmax_cross_entropy(logits, {2});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientIsProbsMinusOneHot) {
  Tensor logits = Tensor::from_data(Shape{1, 3}, {0.5f, -0.2f, 1.0f});
  const Tensor probs = softmax(logits);
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_NEAR(r.grad_logits.at2(0, 0), probs.at2(0, 0), 1e-6);
  EXPECT_NEAR(r.grad_logits.at2(0, 1), probs.at2(0, 1) - 1.0f, 1e-6);
  EXPECT_NEAR(r.grad_logits.at2(0, 2), probs.at2(0, 2), 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientScaledByBatch) {
  Tensor logits = Tensor::zeros(Shape{4, 3});
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 0});
  // Each row's gradient magnitudes are (probs - onehot)/N.
  EXPECT_NEAR(r.grad_logits.at2(0, 0), (1.0 / 3.0 - 1.0) / 4.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  util::Rng rng(2);
  Tensor logits = Tensor::uniform(Shape{3, 5}, -2.f, 2.f, rng);
  const LossResult r = softmax_cross_entropy(logits, {0, 4, 2});
  for (std::size_t n = 0; n < 3; ++n) {
    double s = 0.0;
    for (std::size_t c = 0; c < 5; ++c) s += r.grad_logits.at2(n, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, NumericalGradientCheck) {
  util::Rng rng(3);
  Tensor logits = Tensor::uniform(Shape{2, 4}, -1.f, 1.f, rng);
  const std::vector<std::uint32_t> labels{1, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const double lp = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - eps;
    const double lm = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(r.grad_logits[i], (lp - lm) / (2 * eps), 1e-4);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  const Tensor logits = Tensor::zeros(Shape{2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::out_of_range);
}

TEST(ArgmaxRows, PicksMaxPerRow) {
  const Tensor logits =
      Tensor::from_data(Shape{2, 3}, {0.1f, 0.9f, 0.2f, 5.f, 1.f, 2.f});
  const auto preds = argmax_rows(logits);
  EXPECT_EQ(preds[0], 1u);
  EXPECT_EQ(preds[1], 0u);
}

}  // namespace
}  // namespace ls::nn
