#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace ls::nn {
namespace {

Conv2DConfig cfg(std::size_t cin, std::size_t cout, std::size_t k,
                 std::size_t stride = 1, std::size_t pad = 0,
                 std::size_t groups = 1) {
  Conv2DConfig c;
  c.in_channels = cin;
  c.out_channels = cout;
  c.kernel = k;
  c.stride = stride;
  c.pad = pad;
  c.groups = groups;
  return c;
}

TEST(Conv2D, OutputShape) {
  util::Rng rng(1);
  Conv2D conv("c", cfg(3, 8, 3, 1, 1), rng);
  const Shape out = conv.output_shape(Shape{2, 3, 16, 16});
  EXPECT_EQ(out, Shape({2, 8, 16, 16}));

  Conv2D strided("s", cfg(3, 8, 5, 2, 0), rng);
  EXPECT_EQ(strided.output_shape(Shape{1, 3, 17, 17}), Shape({1, 8, 7, 7}));
}

TEST(Conv2D, RejectsBadConfig) {
  util::Rng rng(1);
  EXPECT_THROW(Conv2D("c", cfg(3, 8, 3, 1, 0, 2), rng),
               std::invalid_argument);  // 3 % 2 != 0
  EXPECT_THROW(Conv2D("c", cfg(0, 8, 3), rng), std::invalid_argument);
}

TEST(Conv2D, RejectsChannelMismatch) {
  util::Rng rng(1);
  Conv2D conv("c", cfg(3, 8, 3), rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 4, 8, 8}), false),
               std::invalid_argument);
}

TEST(Conv2D, IdentityKernel) {
  util::Rng rng(1);
  Conv2D conv("c", cfg(1, 1, 1), rng);
  conv.weight().value[0] = 1.0f;
  conv.bias().value[0] = 0.0f;
  Tensor in = Tensor::uniform(Shape{1, 1, 4, 4}, -1.f, 1.f, rng);
  const Tensor out = conv.forward(in, false);
  EXPECT_LT(tensor::max_abs_diff(in, out), 1e-6f);
}

TEST(Conv2D, KnownSmallConvolution) {
  util::Rng rng(1);
  Conv2D conv("c", cfg(1, 1, 2), rng);
  // kernel [[1,2],[3,4]], bias 1
  conv.weight().value = Tensor::from_data(Shape{1, 1, 2, 2},
                                          {1.f, 2.f, 3.f, 4.f});
  conv.bias().value[0] = 1.0f;
  Tensor in = Tensor::from_data(Shape{1, 1, 3, 3},
                                {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor out = conv.forward(in, false);
  // out(0,0) = 1*1+2*2+3*4+4*5 + 1 = 38
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 38.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 1 * 2 + 2 * 3 + 3 * 5 + 4 * 6 + 1);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 1 * 5 + 2 * 6 + 3 * 8 + 4 * 9 + 1);
}

TEST(Conv2D, PaddingZeroExtends) {
  util::Rng rng(1);
  Conv2D conv("c", cfg(1, 1, 3, 1, 1), rng);
  conv.weight().value.fill(1.0f);
  conv.bias().value[0] = 0.0f;
  Tensor in = Tensor::full(Shape{1, 1, 3, 3}, 1.0f);
  const Tensor out = conv.forward(in, false);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);  // full window
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);  // corner sees 2x2
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 6.0f);  // edge sees 2x3
}

TEST(Conv2D, GroupedConvBlocksCrossGroupFlow) {
  util::Rng rng(1);
  // 2 groups: out 0..1 read in 0..1, out 2..3 read in 2..3.
  Conv2D conv("c", cfg(4, 4, 1, 1, 0, 2), rng);
  conv.weight().value.fill(1.0f);
  for (std::size_t i = 0; i < 4; ++i) conv.bias().value[i] = 0.0f;
  Tensor in(Shape{1, 4, 1, 1});
  in.at4(0, 0, 0, 0) = 1.0f;
  in.at4(0, 1, 0, 0) = 2.0f;
  in.at4(0, 2, 0, 0) = 10.0f;
  in.at4(0, 3, 0, 0) = 20.0f;
  const Tensor out = conv.forward(in, false);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 2, 0, 0), 30.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 3, 0, 0), 30.0f);
}

TEST(Conv2D, GroupedMatchesDenseWhenCrossWeightsZero) {
  util::Rng rng(7);
  Conv2D grouped("g", cfg(4, 6, 3, 1, 1, 2), rng);
  Conv2D dense("d", cfg(4, 6, 3, 1, 1, 1), rng);
  // Copy grouped weights into the dense layout, zeroing cross-group slots.
  dense.weight().value.zero();
  for (std::size_t oc = 0; oc < 6; ++oc) {
    const std::size_t g = oc / 3;
    for (std::size_t icg = 0; icg < 2; ++icg) {
      for (std::size_t kh = 0; kh < 3; ++kh) {
        for (std::size_t kw = 0; kw < 3; ++kw) {
          dense.weight().value.at4(oc, g * 2 + icg, kh, kw) =
              grouped.weight().value.at4(oc, icg, kh, kw);
        }
      }
    }
    dense.bias().value[oc] = grouped.bias().value[oc];
  }
  Tensor in = Tensor::uniform(Shape{2, 4, 5, 5}, -1.f, 1.f, rng);
  const Tensor a = grouped.forward(in, false);
  const Tensor b = dense.forward(in, false);
  EXPECT_LT(tensor::max_abs_diff(a, b), 1e-5f);
}

TEST(Conv2D, BackwardRequiresTrainingForward) {
  util::Rng rng(1);
  Conv2D conv("c", cfg(1, 1, 3), rng);
  conv.forward(Tensor(Shape{1, 1, 5, 5}), /*training=*/false);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 1, 3, 3})), std::logic_error);
}

// Numerical gradient check: perturb each weight / input element and compare
// the finite difference of a scalar loss (sum of outputs weighted by a
// fixed random tensor) against the analytic gradient.
TEST(Conv2D, GradientCheckWeightsAndInput) {
  util::Rng rng(11);
  Conv2D conv("c", cfg(2, 3, 3, 2, 1), rng);
  Tensor in = Tensor::uniform(Shape{2, 2, 5, 5}, -1.f, 1.f, rng);
  const Tensor out0 = conv.forward(in, true);
  Tensor upstream = Tensor::uniform(out0.shape(), -1.f, 1.f, rng);

  auto loss = [&](Conv2D& c, const Tensor& x) {
    const Tensor out = c.forward(x, false);
    double l = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i) l += out[i] * upstream[i];
    return l;
  };

  conv.weight().grad.zero();
  conv.bias().grad.zero();
  conv.forward(in, true);
  const Tensor grad_in = conv.backward(upstream);

  const float eps = 1e-3f;
  // Spot-check a spread of weight coordinates.
  for (std::size_t idx : {0u, 7u, 23u, 41u, 53u}) {
    const float orig = conv.weight().value[idx];
    conv.weight().value[idx] = orig + eps;
    const double lp = loss(conv, in);
    conv.weight().value[idx] = orig - eps;
    const double lm = loss(conv, in);
    conv.weight().value[idx] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(conv.weight().grad[idx], numeric, 2e-2) << "w" << idx;
  }
  // And input coordinates.
  for (std::size_t idx : {0u, 13u, 49u, 77u, 99u}) {
    const float orig = in[idx];
    in[idx] = orig + eps;
    const double lp = loss(conv, in);
    in[idx] = orig - eps;
    const double lm = loss(conv, in);
    in[idx] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_in[idx], numeric, 2e-2) << "x" << idx;
  }
}

TEST(Conv2D, BiasGradientIsUpstreamSum) {
  util::Rng rng(3);
  Conv2D conv("c", cfg(1, 2, 3), rng);
  Tensor in = Tensor::uniform(Shape{1, 1, 5, 5}, -1.f, 1.f, rng);
  const Tensor out = conv.forward(in, true);
  Tensor upstream = Tensor::full(out.shape(), 1.0f);
  conv.backward(upstream);
  const double per_channel = 3.0 * 3.0;  // 3x3 output positions
  EXPECT_NEAR(conv.bias().grad[0], per_channel, 1e-4);
  EXPECT_NEAR(conv.bias().grad[1], per_channel, 1e-4);
}

TEST(Conv2D, ParamsExposeWeightAndBias) {
  util::Rng rng(1);
  Conv2D conv("c", cfg(1, 1, 3), rng);
  EXPECT_EQ(conv.params().size(), 2u);
  Conv2DConfig nb = cfg(1, 1, 3);
  nb.bias = false;
  Conv2D conv2("c2", nb, rng);
  EXPECT_EQ(conv2.params().size(), 1u);
}

}  // namespace
}  // namespace ls::nn
