#include "nn/fc.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ls::nn {
namespace {

TEST(FullyConnected, OutputShape) {
  util::Rng rng(1);
  FullyConnected fc("fc", 12, 5, rng);
  EXPECT_EQ(fc.output_shape(Shape{3, 12}), Shape({3, 5}));
  // 4D input is flattened per sample.
  EXPECT_EQ(fc.output_shape(Shape{2, 3, 2, 2}), Shape({2, 5}));
  EXPECT_THROW(fc.output_shape(Shape{2, 13}), std::invalid_argument);
}

TEST(FullyConnected, KnownMatVec) {
  util::Rng rng(1);
  FullyConnected fc("fc", 3, 2, rng);
  fc.weight().value = Tensor::from_data(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  fc.params()[1]->value = Tensor::from_data(Shape{2}, {0.5f, -0.5f});
  const Tensor in = Tensor::from_data(Shape{1, 3}, {1, 1, 2});
  const Tensor out = fc.forward(in, false);
  EXPECT_FLOAT_EQ(out.at2(0, 0), 1 + 2 + 6 + 0.5f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 4 + 5 + 12 - 0.5f);
}

TEST(FullyConnected, BatchIndependence) {
  util::Rng rng(2);
  FullyConnected fc("fc", 8, 4, rng);
  Tensor batch = Tensor::uniform(Shape{3, 8}, -1.f, 1.f, rng);
  const Tensor out = fc.forward(batch, false);
  // Each row equals the single-sample result.
  for (std::size_t n = 0; n < 3; ++n) {
    Tensor one(Shape{1, 8});
    for (std::size_t i = 0; i < 8; ++i) one[i] = batch.at2(n, i);
    const Tensor o1 = fc.forward(one, false);
    for (std::size_t o = 0; o < 4; ++o) {
      EXPECT_NEAR(out.at2(n, o), o1.at2(0, o), 1e-6);
    }
  }
}

TEST(FullyConnected, GradientCheck) {
  util::Rng rng(5);
  FullyConnected fc("fc", 6, 4, rng);
  Tensor in = Tensor::uniform(Shape{2, 6}, -1.f, 1.f, rng);
  const Tensor out0 = fc.forward(in, true);
  Tensor upstream = Tensor::uniform(out0.shape(), -1.f, 1.f, rng);
  const Tensor grad_in = fc.backward(upstream);

  auto loss = [&](const Tensor& x) {
    const Tensor out = fc.forward(x, false);
    double l = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i) l += out[i] * upstream[i];
    return l;
  };
  const float eps = 1e-3f;
  for (std::size_t idx = 0; idx < fc.weight().value.numel(); idx += 5) {
    const float orig = fc.weight().value[idx];
    fc.weight().value[idx] = orig + eps;
    const double lp = loss(in);
    fc.weight().value[idx] = orig - eps;
    const double lm = loss(in);
    fc.weight().value[idx] = orig;
    EXPECT_NEAR(fc.weight().grad[idx], (lp - lm) / (2 * eps), 1e-2);
  }
  for (std::size_t idx = 0; idx < in.numel(); idx += 3) {
    const float orig = in[idx];
    in[idx] = orig + eps;
    const double lp = loss(in);
    in[idx] = orig - eps;
    const double lm = loss(in);
    in[idx] = orig;
    EXPECT_NEAR(grad_in[idx], (lp - lm) / (2 * eps), 1e-2);
  }
}

TEST(FullyConnected, BackwardPreservesInputShape) {
  util::Rng rng(3);
  FullyConnected fc("fc", 12, 5, rng);
  Tensor in = Tensor::uniform(Shape{2, 3, 2, 2}, -1.f, 1.f, rng);
  const Tensor out = fc.forward(in, true);
  const Tensor grad_in = fc.backward(Tensor::full(out.shape(), 1.0f));
  EXPECT_EQ(grad_in.shape(), in.shape());
}

TEST(FullyConnected, BackwardWithoutForwardThrows) {
  util::Rng rng(1);
  FullyConnected fc("fc", 4, 2, rng);
  EXPECT_THROW(fc.backward(Tensor(Shape{1, 2})), std::logic_error);
}

TEST(FullyConnected, NoBiasVariant) {
  util::Rng rng(1);
  FullyConnected fc("fc", 4, 2, rng, /*bias=*/false);
  EXPECT_EQ(fc.params().size(), 1u);
}

TEST(FullyConnected, RejectsZeroFeatures) {
  util::Rng rng(1);
  EXPECT_THROW(FullyConnected("fc", 0, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ls::nn
