#include "nn/network.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/fc.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

Network tiny_net(util::Rng& rng) {
  Network net("tiny");
  net.emplace<FullyConnected>("fc1", 4, 6, rng);
  net.emplace<ReLU>("relu1");
  net.emplace<FullyConnected>("fc2", 6, 3, rng);
  return net;
}

TEST(Network, ForwardShape) {
  util::Rng rng(1);
  Network net = tiny_net(rng);
  const Tensor out = net.forward(Tensor(Shape{5, 4}));
  EXPECT_EQ(out.shape(), Shape({5, 3}));
  EXPECT_EQ(net.num_layers(), 3u);
}

TEST(Network, ParamsCollectsAllLayers) {
  util::Rng rng(1);
  Network net = tiny_net(rng);
  EXPECT_EQ(net.params().size(), 4u);  // two fc layers x (w, b)
  EXPECT_EQ(net.num_params(), 4u * 6 + 6 + 6u * 3 + 3);
}

TEST(Network, LayerByName) {
  util::Rng rng(1);
  Network net = tiny_net(rng);
  EXPECT_EQ(net.layer_by_name("fc2").name(), "fc2");
  EXPECT_THROW(net.layer_by_name("nope"), std::invalid_argument);
}

TEST(Network, ZeroGradClearsGradients) {
  util::Rng rng(1);
  Network net = tiny_net(rng);
  const Tensor out = net.forward(Tensor::full(Shape{2, 4}, 1.0f), true);
  net.backward(Tensor::full(out.shape(), 1.0f));
  bool any_nonzero = false;
  for (Param* p : net.params()) {
    if (p->grad.max_abs() > 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  net.zero_grad();
  for (Param* p : net.params()) EXPECT_EQ(p->grad.max_abs(), 0.0f);
}

TEST(Network, EndToEndGradientCheck) {
  util::Rng rng(7);
  Network net = tiny_net(rng);
  Tensor in = Tensor::uniform(Shape{3, 4}, -1.f, 1.f, rng);
  const std::vector<std::uint32_t> labels{0, 2, 1};

  net.zero_grad();
  const Tensor logits = net.forward(in, true);
  const LossResult lr = softmax_cross_entropy(logits, labels);
  net.backward(lr.grad_logits);

  auto loss_value = [&]() {
    return softmax_cross_entropy(net.forward(in, false), labels).loss;
  };
  const float eps = 1e-3f;
  for (Param* p : net.params()) {
    for (std::size_t i = 0; i < p->value.numel(); i += 7) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double lp = loss_value();
      p->value[i] = orig - eps;
      const double lm = loss_value();
      p->value[i] = orig;
      EXPECT_NEAR(p->grad[i], (lp - lm) / (2 * eps), 1e-3)
          << p->name << "[" << i << "]";
    }
  }
}

TEST(Network, AccuracyAgainstKnownLabels) {
  util::Rng rng(1);
  Network net("fixed");
  auto& fc = net.emplace<FullyConnected>("fc", 2, 2, rng);
  // Logit0 = x0, logit1 = x1 -> predicts argmax coordinate.
  fc.weight().value = Tensor::from_data(Shape{2, 2}, {1, 0, 0, 1});
  fc.params()[1]->value.zero();
  const Tensor in = Tensor::from_data(Shape{2, 2}, {3.f, 1.f, 0.f, 2.f});
  EXPECT_DOUBLE_EQ(net.accuracy(in, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(net.accuracy(in, {1, 1}), 0.5);
}

TEST(Network, SparsityCountsZeros) {
  util::Rng rng(1);
  Network net = tiny_net(rng);
  // Only the 9 zero-initialized biases out of 51 params are zero.
  EXPECT_NEAR(net.sparsity(), 9.0 / 51.0, 1e-9);
  for (Param* p : net.params()) p->value.zero();
  EXPECT_DOUBLE_EQ(net.sparsity(), 1.0);
}

}  // namespace
}  // namespace ls::nn
