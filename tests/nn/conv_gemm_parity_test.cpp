// Parity suite: the im2col+GEMM conv kernel must match the naive loop nest
// within 1e-4 (forward output, input gradient, weight/bias gradients) across
// strides, padding, groups, and odd spatial shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ls::nn {
namespace {

struct ParityCase {
  std::string name;
  std::size_t N, cin, H, W;
  std::size_t cout, k, stride, pad, groups;
};

const std::vector<ParityCase> kCases = {
    {"lenet_c1", 2, 1, 28, 28, 16, 5, 1, 0, 1},
    {"lenet_c2", 2, 16, 12, 12, 32, 5, 1, 0, 1},
    {"strided", 3, 3, 15, 15, 8, 3, 2, 1, 1},
    {"padded", 2, 4, 9, 9, 6, 3, 1, 2, 1},
    {"grouped", 2, 8, 11, 11, 12, 3, 1, 1, 4},
    {"grouped_strided", 1, 6, 13, 10, 6, 5, 2, 2, 3},
    {"one_by_one", 2, 5, 7, 7, 9, 1, 1, 0, 1},
    {"odd_everything", 1, 3, 17, 11, 7, 3, 3, 1, 1},
    {"single_pixel_out", 1, 2, 5, 5, 4, 5, 1, 0, 2},
};

Conv2DConfig make_cfg(const ParityCase& c, ConvImpl impl) {
  Conv2DConfig cfg;
  cfg.in_channels = c.cin;
  cfg.out_channels = c.cout;
  cfg.kernel = c.k;
  cfg.stride = c.stride;
  cfg.pad = c.pad;
  cfg.groups = c.groups;
  cfg.impl = impl;
  return cfg;
}

float max_diff(const tensor::Tensor& a, const tensor::Tensor& b) {
  return tensor::max_abs_diff(a, b);
}

TEST(ConvGemmParity, ForwardAndBackwardMatchNaive) {
  constexpr float kTol = 1e-4f;
  for (const ParityCase& c : kCases) {
    SCOPED_TRACE(c.name);
    // Identical seeds give both layers identical weights.
    util::Rng rng_a(99), rng_b(99), rng_in(7);
    Conv2D gemm("g", make_cfg(c, ConvImpl::kGemm), rng_a);
    Conv2D naive("n", make_cfg(c, ConvImpl::kNaive), rng_b);
    ASSERT_EQ(gemm.resolved_impl(), ConvImpl::kGemm);
    ASSERT_EQ(naive.resolved_impl(), ConvImpl::kNaive);
    ASSERT_LT(max_diff(gemm.weight().value, naive.weight().value), 1e-7f);

    const Tensor in =
        Tensor::uniform(Shape{c.N, c.cin, c.H, c.W}, -1.f, 1.f, rng_in);
    const Tensor out_g = gemm.forward(in, /*training=*/true);
    const Tensor out_n = naive.forward(in, /*training=*/true);
    ASSERT_EQ(out_g.shape(), out_n.shape());
    EXPECT_LT(max_diff(out_g, out_n), kTol);

    // Backward from a fixed upstream gradient.
    util::Rng rng_go(13);
    const Tensor grad_out =
        Tensor::uniform(out_g.shape(), -1.f, 1.f, rng_go);
    const Tensor din_g = gemm.backward(grad_out);
    const Tensor din_n = naive.backward(grad_out);
    EXPECT_LT(max_diff(din_g, din_n), kTol) << "input gradient";
    EXPECT_LT(max_diff(gemm.weight().grad, naive.weight().grad), kTol)
        << "weight gradient";
    EXPECT_LT(max_diff(gemm.bias().grad, naive.bias().grad), kTol)
        << "bias gradient";
  }
}

TEST(ConvGemmParity, SetImplSwitchesKernelInPlace) {
  util::Rng rng(3), rng_in(5);
  Conv2DConfig cfg = make_cfg(kCases[2], ConvImpl::kGemm);
  Conv2D conv("c", cfg, rng);
  const Tensor in = Tensor::uniform(Shape{2, 3, 15, 15}, -1.f, 1.f, rng_in);
  const Tensor out_gemm = conv.forward(in, false);
  conv.set_impl(ConvImpl::kNaive);
  const Tensor out_naive = conv.forward(in, false);
  EXPECT_LT(max_diff(out_gemm, out_naive), 1e-4f);
}

}  // namespace
}  // namespace ls::nn
