#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ls::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(77);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, HashIsStable) {
  EXPECT_EQ(hash_u64(42), hash_u64(42));
  EXPECT_NE(hash_u64(42), hash_u64(43));
}

}  // namespace
}  // namespace ls::util
