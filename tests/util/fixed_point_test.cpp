#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

namespace ls::util {
namespace {

using F8 = Fixed16<8>;

TEST(Fixed16, RoundTripExactValues) {
  EXPECT_DOUBLE_EQ(F8::from_double(1.0).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(F8::from_double(-2.5).to_double(), -2.5);
  EXPECT_DOUBLE_EQ(F8::from_double(0.0).to_double(), 0.0);
}

TEST(Fixed16, QuantizationErrorBounded) {
  for (double v = -10.0; v < 10.0; v += 0.0137) {
    const double q = F8::from_double(v).to_double();
    EXPECT_NEAR(q, v, 1.0 / 256.0 / 2.0 + 1e-12) << v;
  }
}

TEST(Fixed16, SaturatesAtBounds) {
  EXPECT_EQ(F8::from_double(1e6).raw(), F8::kMaxRaw);
  EXPECT_EQ(F8::from_double(-1e6).raw(), F8::kMinRaw);
}

TEST(Fixed16, AdditionMatchesDouble) {
  const F8 a = F8::from_double(1.25), b = F8::from_double(2.5);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -1.25);
}

TEST(Fixed16, AdditionSaturates) {
  const F8 big = F8::from_raw(F8::kMaxRaw);
  EXPECT_EQ((big + big).raw(), F8::kMaxRaw);
  const F8 small = F8::from_raw(F8::kMinRaw);
  EXPECT_EQ((small + small).raw(), F8::kMinRaw);
}

TEST(Fixed16, MultiplicationMatchesDouble) {
  const F8 a = F8::from_double(1.5), b = F8::from_double(-2.0);
  EXPECT_DOUBLE_EQ((a * b).to_double(), -3.0);
}

TEST(Fixed16, MultiplicationSaturates) {
  const F8 a = F8::from_double(100.0);
  EXPECT_EQ((a * a).raw(), F8::kMaxRaw);
}

TEST(Fixed16, Ordering) {
  EXPECT_LT(F8::from_double(1.0), F8::from_double(2.0));
  EXPECT_EQ(F8::from_double(1.0), F8::from_double(1.0));
}

TEST(Fixed16, DifferentFracBitsPrecision) {
  const double v = 0.123456;
  const double e4 = std::abs(quantize_f16<4>(v) - v);
  const double e12 = std::abs(quantize_f16<12>(v) - v);
  EXPECT_LT(e12, e4);
}

}  // namespace
}  // namespace ls::util
