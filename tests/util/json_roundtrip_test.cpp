// JsonWriter -> parse_json round-trip pinning: whatever the writer can
// emit, the reader must reproduce — unicode escapes, control characters,
// integers up to the 2^53 exactness bound, and nesting up to the
// parser's depth cap.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/json.hpp"
#include "util/json_in.hpp"

namespace ls::util {
namespace {

JsonValue reparse(const JsonWriter& w) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(parse_json(w.str(), &v, &error)) << error << "\n" << w.str();
  return v;
}

TEST(JsonRoundTrip, ControlCharactersAndQuotesSurvive) {
  const std::string nasty = "line1\nline2\ttab \"quoted\" back\\slash \x01";
  JsonWriter w;
  w.begin_object();
  w.key("s");
  w.value(nasty);
  w.key(nasty);  // keys get escaped the same way
  w.value("v");
  w.end_object();
  const JsonValue doc = reparse(w);
  ASSERT_NE(doc.find("s"), nullptr);
  EXPECT_EQ(doc.find("s")->as_string(), nasty);
  ASSERT_NE(doc.find(nasty), nullptr);
  EXPECT_EQ(doc.find(nasty)->as_string(), "v");
}

TEST(JsonRoundTrip, Utf8PassesThroughAndEscapesDecode) {
  // The writer passes non-ASCII bytes through verbatim; the parser must
  // also decode explicit \u escapes (including a surrogate pair) to the
  // same UTF-8 bytes.
  const std::string utf8 = "mesh \xC3\x97 grid \xE2\x86\x92 \xF0\x9F\x94\xA5";
  JsonWriter w;
  w.begin_object();
  w.key("s");
  w.value(utf8);
  w.end_object();
  EXPECT_EQ(reparse(w).find("s")->as_string(), utf8);

  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(R"("× → 🔥")", &v, &error))
      << error;
  EXPECT_EQ(v.as_string(),
            "\xC3\x97 \xE2\x86\x92 \xF0\x9F\x94\xA5");
}

TEST(JsonRoundTrip, LargeIntegersAreExactUpTo2Pow53) {
  const std::uint64_t big = 1ull << 53;  // largest double-exact power
  JsonWriter w;
  w.begin_object();
  w.key("max_exact");
  w.value(big);
  w.key("near");
  w.value(big - 1);
  w.key("negative");
  w.value(static_cast<std::int64_t>(-(1ll << 53)));
  w.end_object();
  const JsonValue doc = reparse(w);
  EXPECT_EQ(doc.find("max_exact")->as_u64(), big);
  EXPECT_EQ(doc.find("near")->as_u64(), big - 1);
  EXPECT_DOUBLE_EQ(doc.find("negative")->as_double(),
                   -9007199254740992.0);
}

TEST(JsonRoundTrip, DoublesAndNonFinite) {
  JsonWriter w;
  w.begin_object();
  w.key("pi");
  w.value(3.141592653589793);
  w.key("tiny");
  w.value(5e-324);  // denormal min
  w.key("inf");
  w.value(1.0 / 0.0);  // JSON has no Inf: emitted as null
  w.end_object();
  const JsonValue doc = reparse(w);
  EXPECT_DOUBLE_EQ(doc.find("pi")->as_double(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(doc.find("tiny")->as_double(), 5e-324);
  EXPECT_TRUE(doc.find("inf")->is_null());
}

TEST(JsonRoundTrip, NestingUpToTheDepthCapParses) {
  // kMaxDepth = 256 counts every value on the parse stack, scalar leaf
  // included: the deepest accepted document is 255 containers around a
  // scalar. One level deeper is rejected with a diagnostic rather than a
  // stack overflow.
  constexpr int kDeepestContainers = 255;
  JsonWriter at_cap;
  for (int i = 0; i < kDeepestContainers; ++i) at_cap.begin_array();
  at_cap.value(std::uint64_t{42});
  for (int i = 0; i < kDeepestContainers; ++i) at_cap.end_array();
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(at_cap.str(), &v, &error)) << error;
  const JsonValue* leaf = &v;
  for (int i = 0; i < kDeepestContainers; ++i) {
    ASSERT_EQ(leaf->kind(), JsonValue::Kind::kArray);
    ASSERT_EQ(leaf->as_array().size(), 1u);
    leaf = &leaf->as_array()[0];
  }
  EXPECT_EQ(leaf->as_u64(), 42u);

  const std::string too_deep = "[" + at_cap.str() + "]";
  EXPECT_FALSE(parse_json(too_deep, &v, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(JsonRoundTrip, MixedDocumentStructureSurvives) {
  JsonWriter w;
  w.begin_object();
  w.key("arr");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.null();
  w.value(false);
  w.begin_object();
  w.key("k");
  w.value("v");
  w.end_object();
  w.end_array();
  w.end_object();
  const JsonValue doc = reparse(w);
  const auto& arr = doc.find("arr")->as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_EQ(arr[0].as_u64(), 1u);
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_FALSE(arr[2].as_bool());
  EXPECT_EQ(arr[3].find("k")->as_string(), "v");
}

}  // namespace
}  // namespace ls::util
