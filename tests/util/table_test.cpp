#include "util/table.hpp"

#include <gtest/gtest.h>

namespace ls::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"net", "speedup"});
  t.add_row({"MLP", "1.59x"});
  t.add_row({"LeNet", "1.51x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("net"), std::string::npos);
  EXPECT_NE(s.find("1.59x"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Double) { EXPECT_EQ(fmt_double(3.14159, 2), "3.14"); }

TEST(Format, Speedup) { EXPECT_EQ(fmt_speedup(1.586, 2), "1.59x"); }

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.81), "81%");
  EXPECT_EQ(fmt_percent(0.055, 1), "5.5%");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512B");
  EXPECT_EQ(fmt_bytes(225.0 * 1024), "225K");
  EXPECT_EQ(fmt_bytes(2.0 * 1024 * 1024), "2.0M");
}

}  // namespace
}  // namespace ls::util
