#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ls::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesBackslashAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("x");
  w.key("b").value(true);
  w.key("i").value(-3);
  w.key("u").value(7u);
  w.key("n").null();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(w.str(), "{\"s\":\"x\",\"b\":true,\"i\":-3,\"u\":7,\"n\":null}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object();
  w.key("rows").begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.key("id").value(i);
    w.key("vals").begin_array();
    w.value(1.5);
    w.value(2.5);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"rows\":[{\"id\":0,\"vals\":[1.5,2.5]},"
            "{\"id\":1,\"vals\":[1.5,2.5]}]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(0.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,null,0.5]");
}

TEST(JsonWriter, EscapesKeysAndStringValues) {
  JsonWriter w;
  w.begin_object();
  w.key("a\"b").value("line\nbreak");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\\\"b\":\"line\\nbreak\"}");
}

TEST(JsonWriter, RawInsertsVerbatim) {
  JsonWriter w;
  w.begin_object();
  w.key("args").raw("{\"flits\":12}");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"args\":{\"flits\":12}}");
}

TEST(JsonWriter, ThrowsOnValueWithoutKeyInObject) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);
}

TEST(JsonWriter, ThrowsOnKeyInArray) {
  JsonWriter w;
  w.begin_array();
  EXPECT_THROW(w.key("k"), std::logic_error);
}

TEST(JsonWriter, ThrowsOnMismatchedEnd) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.end_array(), std::logic_error);
  JsonWriter w2;
  EXPECT_THROW(w2.end_object(), std::logic_error);
}

TEST(JsonWriter, WriteFileRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.key("ok").value(true);
  w.end_object();
  const std::string path = testing::TempDir() + "json_writer_test.json";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), w.str() + "\n");  // write_file appends a newline
}

}  // namespace
}  // namespace ls::util
