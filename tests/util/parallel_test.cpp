#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "data/dataset.hpp"
#include "nn/model_zoo.hpp"
#include "nn/network.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace ls::util {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool::set_num_threads(4);
  std::vector<std::atomic<int>> hits(1337);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  ThreadPool::set_num_threads(0);
}

TEST(ParallelFor, DisjointWritesMatchSerialLoop) {
  ThreadPool::set_num_threads(3);
  std::vector<double> par(10'000), ser(10'000);
  auto f = [](std::size_t i) {
    return static_cast<double>(i) * 0.25 + 1.0 / (1.0 + static_cast<double>(i));
  };
  parallel_for(0, par.size(), [&](std::size_t i) { par[i] = f(i); });
  for (std::size_t i = 0; i < ser.size(); ++i) ser[i] = f(i);
  EXPECT_EQ(par, ser);
  ThreadPool::set_num_threads(0);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NestedCallRunsInline) {
  ThreadPool::set_num_threads(4);
  std::vector<std::atomic<int>> hits(64 * 32);
  parallel_for(0, 64, [&](std::size_t outer) {
    parallel_for(0, 32, [&](std::size_t inner) { ++hits[outer * 32 + inner]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  ThreadPool::set_num_threads(0);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool::set_num_threads(4);
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::size_t i) {
                     if (i == 503) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> count{0};
  parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::set_num_threads(0);
}

TEST(ParallelFor, RespectsExplicitThreadCount) {
  ThreadPool::set_num_threads(1);
  EXPECT_EQ(num_threads(), 1u);
  ThreadPool::set_num_threads(5);
  EXPECT_EQ(num_threads(), 5u);
  ThreadPool::set_num_threads(0);
  EXPECT_GE(num_threads(), 1u);
}

// The determinism policy in action: a full seeded training run (GEMM conv +
// FC kernels, all parallelized through this pool) must produce bit-identical
// weights for 1 worker and for many.
std::vector<float> train_lenet_and_dump_weights() {
  util::Rng rng(21);
  nn::NetSpec spec = nn::lenet_expt_spec();
  nn::Network net = nn::build_network(spec, rng);
  const data::Dataset train_set = data::mnist_like(192, /*sample_seed=*/3);
  const data::Dataset test_set = data::mnist_like(64, /*sample_seed=*/4);
  train::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  cfg.seed = 11;
  train::train_classifier(net, train_set, test_set, cfg);
  std::vector<float> weights;
  for (const nn::Param* p : net.params()) {
    weights.insert(weights.end(), p->value.data(),
                   p->value.data() + p->value.numel());
  }
  return weights;
}

TEST(ParallelFor, TrainerIsThreadCountInvariant) {
  ThreadPool::set_num_threads(1);
  const std::vector<float> serial = train_lenet_and_dump_weights();
  ThreadPool::set_num_threads(4);
  const std::vector<float> parallel = train_lenet_and_dump_weights();
  ThreadPool::set_num_threads(0);
  ASSERT_EQ(serial.size(), parallel.size());
  // Bit-identical, not approximately equal: the fast path may only change
  // *which thread* computes a value, never the arithmetic.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "weight " << i;
  }
}

}  // namespace
}  // namespace ls::util
