#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ls::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = 0.37 * i - 3.0;
    (i < 20 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  std::vector<double> v;
  EXPECT_THROW(percentile(v, 50.0), std::invalid_argument);
}

TEST(MeanStddev, Basic) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  EXPECT_NEAR(stddev(v), std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);
  h.add(99.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, RejectsBadSpec) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ls::util
