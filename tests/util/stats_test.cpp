#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ls::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = 0.37 * i - 3.0;
    (i < 20 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, MergeEmptyIntoEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(RunningStats, MergeSplitVsWholeEverySplitPoint) {
  std::vector<double> data;
  for (int i = 0; i < 24; ++i) data.push_back(1.5 * i * i - 7.0 * i + 0.25);
  RunningStats whole;
  for (double v : data) whole.add(v);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    RunningStats lo, hi;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (i < split ? lo : hi).add(data[i]);
    }
    lo.merge(hi);
    EXPECT_EQ(lo.count(), whole.count()) << "split=" << split;
    EXPECT_NEAR(lo.mean(), whole.mean(), 1e-9) << "split=" << split;
    EXPECT_NEAR(lo.variance(), whole.variance(), 1e-6) << "split=" << split;
    EXPECT_EQ(lo.min(), whole.min()) << "split=" << split;
    EXPECT_EQ(lo.max(), whole.max()) << "split=" << split;
  }
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 42.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  std::vector<double> v;
  EXPECT_THROW(percentile(v, 50.0), std::invalid_argument);
}

TEST(MeanStddev, Basic) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  EXPECT_NEAR(stddev(v), std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);
  h.add(99.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, BinEdgeSemantics) {
  // Bins are lo-inclusive / hi-exclusive; the global hi edge overflows.
  Histogram h(0.0, 4.0, 4);
  h.add(0.0);  // bin 0 (lo edge is inclusive)
  h.add(1.0);  // bin 1, not bin 0
  h.add(3.999999);
  h.add(4.0);  // hi edge counts as overflow
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 2.0);
}

TEST(Histogram, RejectsBadSpec) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ls::util
