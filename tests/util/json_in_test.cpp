// util::parse_json — the read side of the JSON pair. Focus: round-tripping
// JsonWriter output (the schedule-cache store's contract) and rejecting
// malformed input with a positioned error instead of garbage.

#include "util/json_in.hpp"

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace ls::util {
namespace {

TEST(JsonIn, ParsesScalarsAndContainers) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(
      R"({"a":1,"b":-2.5,"c":"hi","d":[true,false,null],"e":{}})", &v,
      &error))
      << error;
  EXPECT_EQ(v.find("a")->as_u64(), 1u);
  EXPECT_DOUBLE_EQ(v.find("b")->as_double(), -2.5);
  EXPECT_EQ(v.find("c")->as_string(), "hi");
  const auto& d = v.find("d")->as_array();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(d[0].as_bool());
  EXPECT_FALSE(d[1].as_bool());
  EXPECT_TRUE(d[2].is_null());
  EXPECT_TRUE(v.find("e")->as_object().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonIn, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("tab\there \"quoted\" \\ slash");
  w.key("big").value(std::uint64_t{9007199254740992ull});  // 2^53
  w.key("neg").value(std::int64_t{-42});
  w.key("pi").value(3.5);
  w.key("list").begin_array();
  for (int i = 0; i < 3; ++i) w.value(i);
  w.end_array();
  w.end_object();

  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(w.str(), &v, &error)) << error;
  EXPECT_EQ(v.find("name")->as_string(), "tab\there \"quoted\" \\ slash");
  EXPECT_EQ(v.find("big")->as_u64(), 9007199254740992ull);
  EXPECT_DOUBLE_EQ(v.find("neg")->as_double(), -42.0);
  EXPECT_DOUBLE_EQ(v.find("pi")->as_double(), 3.5);
  EXPECT_EQ(v.find("list")->as_array().size(), 3u);
}

TEST(JsonIn, ParsesEscapesAndUnicode) {
  JsonValue v;
  ASSERT_TRUE(parse_json(R"(["\u0041\u00e9\u20ac","\n\t\/"])", &v));
  EXPECT_EQ(v.as_array()[0].as_string(), "A\xc3\xa9\xe2\x82\xac");
  EXPECT_EQ(v.as_array()[1].as_string(), "\n\t/");
}

TEST(JsonIn, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"k\":\"\\x\"}", "[01e]", "nan"}) {
    EXPECT_FALSE(parse_json(bad, &v, &error)) << bad;
    EXPECT_NE(error.find("json parse error"), std::string::npos) << bad;
  }
}

TEST(JsonIn, TypeMismatchThrowsInsteadOfGarbage) {
  JsonValue v;
  ASSERT_TRUE(parse_json(R"({"s":"x","f":1.5,"neg":-1})", &v));
  EXPECT_THROW(v.find("s")->as_u64(), std::logic_error);
  EXPECT_THROW(v.find("f")->as_u64(), std::logic_error);   // not integral
  EXPECT_THROW(v.find("neg")->as_u64(), std::logic_error);  // negative
  EXPECT_THROW(v.find("s")->as_array(), std::logic_error);
  EXPECT_THROW(v.as_bool(), std::logic_error);
}

TEST(JsonIn, DeepNestingIsBounded) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  JsonValue v;
  std::string error;
  EXPECT_FALSE(parse_json(deep, &v, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
}

}  // namespace
}  // namespace ls::util
