#include "noc/sim_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "noc/simulator.hpp"
#include "noc/topology.hpp"

namespace ls::noc {
namespace {

std::vector<Message> burst_a() {
  return {{0, 5, 4096, 0}, {1, 6, 2048, 0}, {2, 7, 8192, 0}};
}

std::vector<Message> burst_b() {
  return {{0, 5, 4096, 0}, {1, 6, 2048, 0}, {2, 7, 8193, 0}};  // one byte off
}

TEST(NocRunCache, HitReturnsIdenticalStats) {
  MeshNocSimulator sim(MeshTopology::for_cores(16), NocConfig{});
  NocRunCache& cache = NocRunCache::instance();
  cache.clear();
  cache.set_enabled(true);

  const NocStats direct = sim.run(burst_a());
  const NocStats miss = cache.run(sim, burst_a());
  EXPECT_EQ(miss, direct);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  const NocStats hit = cache.run(sim, burst_a());
  EXPECT_EQ(hit, direct);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NocRunCache, DistinctBurstsDoNotCollide) {
  MeshNocSimulator sim(MeshTopology::for_cores(16), NocConfig{});
  NocRunCache& cache = NocRunCache::instance();
  cache.clear();
  cache.set_enabled(true);

  const NocStats a = cache.run(sim, burst_a());
  const NocStats b = cache.run(sim, burst_b());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(a.total_flits, 0u);
  EXPECT_EQ(a, sim.run(burst_a()));
  EXPECT_EQ(b, sim.run(burst_b()));
}

TEST(NocRunCache, StreamEpochPartitionsMemoSpace) {
  MeshNocSimulator sim(MeshTopology::for_cores(16), NocConfig{});
  NocRunCache& cache = NocRunCache::instance();
  cache.clear();
  cache.set_enabled(true);

  // Same burst under two epochs: separate memo entries (a stream-context-
  // dependent refinement of burst stats must never be served a single-pass
  // memo), but today identical stats.
  const NocStats epoch0 = cache.run(sim, burst_a(), 200'000'000ull, 0);
  const NocStats epoch1 = cache.run(sim, burst_a(), 200'000'000ull, 1);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(epoch0, epoch1);

  // Re-querying each epoch hits its own entry.
  cache.run(sim, burst_a(), 200'000'000ull, 1);
  cache.run(sim, burst_a(), 200'000'000ull, 0);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NocRunCache, KeyIncludesTopologyAndConfig) {
  NocRunCache& cache = NocRunCache::instance();
  cache.clear();
  cache.set_enabled(true);

  MeshNocSimulator mesh16(MeshTopology::for_cores(16), NocConfig{});
  MeshNocSimulator mesh64(MeshTopology::for_cores(64), NocConfig{});
  NocConfig slow;
  slow.router_latency = 5;
  MeshNocSimulator mesh16_slow(MeshTopology::for_cores(16), slow);

  cache.run(mesh16, burst_a());
  cache.run(mesh64, burst_a());
  cache.run(mesh16_slow, burst_a());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(NocRunCache, PlacementPermutedBurstsKeySeparately) {
  // Tuned schedules permute message endpoints through a core placement;
  // the cache key covers the ordered (src, dst, bytes) sequence, so a
  // permuted burst must never be served the identity burst's entry (the
  // stats differ — hop counts change with the placement).
  MeshNocSimulator sim(MeshTopology::for_cores(16), NocConfig{});
  NocRunCache& cache = NocRunCache::instance();
  cache.clear();
  cache.set_enabled(true);

  const std::vector<Message> identity = burst_a();
  std::vector<Message> permuted = identity;
  for (Message& m : permuted) {  // placement: core i -> core 15 - i
    m.src = 15 - m.src;
    m.dst = 15 - m.dst;
  }

  const NocStats a = cache.run(sim, identity);
  const NocStats b = cache.run(sim, permuted);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(a, sim.run(identity));
  EXPECT_EQ(b, sim.run(permuted));

  // Re-querying each burst hits its own entry and stays byte-identical.
  EXPECT_EQ(cache.run(sim, identity), a);
  EXPECT_EQ(cache.run(sim, permuted), b);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NocRunCache, DisabledBypassesEntirely) {
  MeshNocSimulator sim(MeshTopology::for_cores(16), NocConfig{});
  NocRunCache& cache = NocRunCache::instance();
  cache.clear();
  cache.set_enabled(false);

  const NocStats direct = sim.run(burst_a());
  EXPECT_EQ(cache.run(sim, burst_a()), direct);
  EXPECT_EQ(cache.run(sim, burst_a()), direct);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  cache.set_enabled(true);
}

TEST(NocRunCache, ClearResetsCountersAndEntries) {
  MeshNocSimulator sim(MeshTopology::for_cores(16), NocConfig{});
  NocRunCache& cache = NocRunCache::instance();
  cache.clear();
  cache.set_enabled(true);
  cache.run(sim, burst_a());
  cache.run(sim, burst_a());
  EXPECT_GT(cache.size() + cache.hits() + cache.misses(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

}  // namespace
}  // namespace ls::noc
