#include "noc/energy.hpp"

#include <gtest/gtest.h>

namespace ls::noc {
namespace {

TEST(Energy, FromStatsLinearInTraversals) {
  EnergyConfig cfg;
  cfg.router_pj_per_flit = 10.0;
  cfg.link_pj_per_flit = 5.0;
  NocStats stats;
  stats.total_flits = 100;
  stats.flit_hops = 300;
  stats.router_traversals = 400;
  const NocEnergy e = energy_from_stats(stats, cfg, 16);
  EXPECT_DOUBLE_EQ(e.router_pj, 4000.0);
  EXPECT_DOUBLE_EQ(e.link_pj, 1500.0);
  EXPECT_DOUBLE_EQ(e.total_pj(), 5500.0);
}

TEST(Energy, StaticTermScalesWithTimeAndRouters) {
  EnergyConfig cfg;
  cfg.static_pw_per_router_pj_per_cycle = 0.5;
  NocStats stats;
  stats.completion_cycle = 100;
  const NocEnergy e = energy_from_stats(stats, cfg, 4);
  EXPECT_DOUBLE_EQ(e.static_pj, 0.5 * 100 * 4);
}

TEST(Energy, TransferAnalyticMatchesCounts) {
  NocConfig noc;
  EnergyConfig cfg;
  // 128 bytes = 2 flits, 3 hops -> 2*4 router crossings, 2*3 link crossings.
  const NocEnergy e = energy_for_transfer(128, 3, noc, cfg);
  EXPECT_DOUBLE_EQ(e.router_pj, 2 * 4 * cfg.router_pj_per_flit);
  EXPECT_DOUBLE_EQ(e.link_pj, 2 * 3 * cfg.link_pj_per_flit);
}

TEST(Energy, ZeroForLocalOrEmptyTransfer) {
  NocConfig noc;
  EnergyConfig cfg;
  EXPECT_DOUBLE_EQ(energy_for_transfer(0, 3, noc, cfg).total_pj(), 0.0);
  EXPECT_DOUBLE_EQ(energy_for_transfer(128, 0, noc, cfg).total_pj(), 0.0);
}

TEST(Energy, MoreHopsCostMore) {
  NocConfig noc;
  EnergyConfig cfg;
  EXPECT_LT(energy_for_transfer(1024, 1, noc, cfg).total_pj(),
            energy_for_transfer(1024, 5, noc, cfg).total_pj());
}

}  // namespace
}  // namespace ls::noc
