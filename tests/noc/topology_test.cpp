#include "noc/topology.hpp"

#include <gtest/gtest.h>

namespace ls::noc {
namespace {

TEST(MeshTopology, ForCoresPicksNearSquare) {
  EXPECT_EQ(MeshTopology::for_cores(16).cols(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(16).rows(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(8).cols(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(8).rows(), 2u);
  EXPECT_EQ(MeshTopology::for_cores(32).cols(), 8u);
  EXPECT_EQ(MeshTopology::for_cores(32).rows(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(1).num_cores(), 1u);
}

TEST(MeshTopology, CoordRoundTrip) {
  const MeshTopology topo(4, 4);
  for (std::size_t c = 0; c < topo.num_cores(); ++c) {
    EXPECT_EQ(topo.core_at(topo.coord(c)), c);
  }
  EXPECT_THROW(topo.coord(16), std::out_of_range);
  EXPECT_THROW(topo.core_at({4, 0}), std::out_of_range);
}

TEST(MeshTopology, RowMajorLayout) {
  const MeshTopology topo(4, 4);
  EXPECT_EQ(topo.coord(0).x, 0u);
  EXPECT_EQ(topo.coord(0).y, 0u);
  EXPECT_EQ(topo.coord(3).x, 3u);
  EXPECT_EQ(topo.coord(3).y, 0u);
  EXPECT_EQ(topo.coord(4).x, 0u);
  EXPECT_EQ(topo.coord(4).y, 1u);
}

TEST(MeshTopology, HopsMatchesPaperFig6a) {
  // Fig. 6(a): distances from the first four cores of the 4x4 mesh. Core0's
  // row is 0,1,2,3; core1's begins 1,0,1,2; etc.
  const MeshTopology topo(4, 4);
  const std::size_t expected_core0[] = {0, 1, 2, 3, 1, 2, 3, 4,
                                        2, 3, 4, 5, 3, 4, 5, 6};
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_EQ(topo.hops(0, b), expected_core0[b]) << b;
  }
  EXPECT_EQ(topo.hops(1, 0), 1u);
  EXPECT_EQ(topo.hops(1, 2), 1u);
  EXPECT_EQ(topo.hops(3, 2), 1u);  // paper: "one hop from core3 to core2"
}

TEST(MeshTopology, HopsSymmetric) {
  const MeshTopology topo(8, 4);
  for (std::size_t a = 0; a < topo.num_cores(); ++a) {
    for (std::size_t b = 0; b < topo.num_cores(); ++b) {
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
    }
  }
}

TEST(MeshTopology, TriangleInequality) {
  const MeshTopology topo(4, 4);
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = 0; b < 16; ++b) {
      for (std::size_t c = 0; c < 16; ++c) {
        EXPECT_LE(topo.hops(a, c), topo.hops(a, b) + topo.hops(b, c));
      }
    }
  }
}

TEST(MeshTopology, DistanceMatrixMatchesHops) {
  const MeshTopology topo(4, 2);
  const auto m = topo.distance_matrix();
  ASSERT_EQ(m.size(), 8u);
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      EXPECT_EQ(m[a][b], topo.hops(a, b));
    }
  }
}

TEST(MeshTopology, MeanHopsAndDiameter) {
  const MeshTopology topo(2, 2);
  // Pairs: 4 at distance 1 (adjacent, x2 direction each) ... enumerate:
  // (0,1)=1 (0,2)=1 (0,3)=2 (1,2)=2 (1,3)=1 (2,3)=1 -> mean = 8/6
  EXPECT_NEAR(topo.mean_hops(), 8.0 / 6.0, 1e-12);
  EXPECT_EQ(topo.diameter(), 2u);
}

TEST(MeshTopology, MeanHopsGrowsWithScale) {
  EXPECT_LT(MeshTopology::for_cores(4).mean_hops(),
            MeshTopology::for_cores(16).mean_hops());
  EXPECT_LT(MeshTopology::for_cores(16).mean_hops(),
            MeshTopology::for_cores(64).mean_hops());
}

TEST(MeshTopology, BisectionLinks) {
  EXPECT_EQ(MeshTopology(4, 4).bisection_links(), 4u);
  EXPECT_EQ(MeshTopology(8, 4).bisection_links(), 4u);
}

TEST(MeshTopology, RejectsEmpty) {
  EXPECT_THROW(MeshTopology(0, 4), std::invalid_argument);
  EXPECT_THROW(MeshTopology::for_cores(0), std::invalid_argument);
}

TEST(MeshTopology, SingleCoreDegenerate) {
  const MeshTopology topo = MeshTopology::for_cores(1);
  EXPECT_EQ(topo.mean_hops(), 0.0);
  EXPECT_EQ(topo.hops(0, 0), 0u);
}

}  // namespace
}  // namespace ls::noc
