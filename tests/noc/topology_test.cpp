#include "noc/topology.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ls::noc {
namespace {

TEST(MeshTopology, ForCoresPicksNearSquare) {
  EXPECT_EQ(MeshTopology::for_cores(16).cols(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(16).rows(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(8).cols(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(8).rows(), 2u);
  EXPECT_EQ(MeshTopology::for_cores(32).cols(), 8u);
  EXPECT_EQ(MeshTopology::for_cores(32).rows(), 4u);
  EXPECT_EQ(MeshTopology::for_cores(1).num_cores(), 1u);
}

TEST(MeshTopology, CoordRoundTrip) {
  const MeshTopology topo(4, 4);
  for (std::size_t c = 0; c < topo.num_cores(); ++c) {
    EXPECT_EQ(topo.core_at(topo.coord(c)), c);
  }
  EXPECT_THROW(topo.coord(16), std::out_of_range);
  EXPECT_THROW(topo.core_at({4, 0}), std::out_of_range);
}

TEST(MeshTopology, RowMajorLayout) {
  const MeshTopology topo(4, 4);
  EXPECT_EQ(topo.coord(0).x, 0u);
  EXPECT_EQ(topo.coord(0).y, 0u);
  EXPECT_EQ(topo.coord(3).x, 3u);
  EXPECT_EQ(topo.coord(3).y, 0u);
  EXPECT_EQ(topo.coord(4).x, 0u);
  EXPECT_EQ(topo.coord(4).y, 1u);
}

TEST(MeshTopology, HopsMatchesPaperFig6a) {
  // Fig. 6(a): distances from the first four cores of the 4x4 mesh. Core0's
  // row is 0,1,2,3; core1's begins 1,0,1,2; etc.
  const MeshTopology topo(4, 4);
  const std::size_t expected_core0[] = {0, 1, 2, 3, 1, 2, 3, 4,
                                        2, 3, 4, 5, 3, 4, 5, 6};
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_EQ(topo.hops(0, b), expected_core0[b]) << b;
  }
  EXPECT_EQ(topo.hops(1, 0), 1u);
  EXPECT_EQ(topo.hops(1, 2), 1u);
  EXPECT_EQ(topo.hops(3, 2), 1u);  // paper: "one hop from core3 to core2"
}

TEST(MeshTopology, HopsSymmetric) {
  const MeshTopology topo(8, 4);
  for (std::size_t a = 0; a < topo.num_cores(); ++a) {
    for (std::size_t b = 0; b < topo.num_cores(); ++b) {
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
    }
  }
}

TEST(MeshTopology, TriangleInequality) {
  const MeshTopology topo(4, 4);
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = 0; b < 16; ++b) {
      for (std::size_t c = 0; c < 16; ++c) {
        EXPECT_LE(topo.hops(a, c), topo.hops(a, b) + topo.hops(b, c));
      }
    }
  }
}

TEST(MeshTopology, DistanceMatrixMatchesHops) {
  const MeshTopology topo(4, 2);
  const auto m = topo.distance_matrix();
  ASSERT_EQ(m.size(), 8u);
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      EXPECT_EQ(m[a][b], topo.hops(a, b));
    }
  }
}

TEST(MeshTopology, MeanHopsAndDiameter) {
  const MeshTopology topo(2, 2);
  // Pairs: 4 at distance 1 (adjacent, x2 direction each) ... enumerate:
  // (0,1)=1 (0,2)=1 (0,3)=2 (1,2)=2 (1,3)=1 (2,3)=1 -> mean = 8/6
  EXPECT_NEAR(topo.mean_hops(), 8.0 / 6.0, 1e-12);
  EXPECT_EQ(topo.diameter(), 2u);
}

TEST(MeshTopology, MeanHopsGrowsWithScale) {
  EXPECT_LT(MeshTopology::for_cores(4).mean_hops(),
            MeshTopology::for_cores(16).mean_hops());
  EXPECT_LT(MeshTopology::for_cores(16).mean_hops(),
            MeshTopology::for_cores(64).mean_hops());
}

TEST(MeshTopology, BisectionLinks) {
  EXPECT_EQ(MeshTopology(4, 4).bisection_links(), 4u);
  EXPECT_EQ(MeshTopology(8, 4).bisection_links(), 4u);
}

TEST(MeshTopology, RejectsEmpty) {
  EXPECT_THROW(MeshTopology(0, 4), std::invalid_argument);
  EXPECT_THROW(MeshTopology::for_cores(0), std::invalid_argument);
}

TEST(MeshTopology, SingleCoreDegenerate) {
  const MeshTopology topo = MeshTopology::for_cores(1);
  EXPECT_EQ(topo.mean_hops(), 0.0);
  EXPECT_EQ(topo.hops(0, 0), 0u);
}

TEST(MeshTopology, ForCoresRejectsChainDegenerates) {
  // Prime counts >= 5 only factor as 1xN chains; for_cores must refuse
  // them with a message naming the count instead of silently building a
  // chain that every mesh-shaped model downstream would mis-report on.
  for (const std::size_t cores : {5ul, 7ul, 11ul, 13ul, 17ul, 101ul}) {
    try {
      MeshTopology::for_cores(cores);
      FAIL() << "for_cores(" << cores << ") accepted a 1xN chain";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(std::to_string(cores)),
                std::string::npos)
          << "message does not name the count: " << e.what();
    }
  }
  // Tiny counts have no non-degenerate shape and stay legal.
  EXPECT_EQ(MeshTopology::for_cores(2).num_cores(), 2u);
  EXPECT_EQ(MeshTopology::for_cores(3).num_cores(), 3u);
  // Composite counts still resolve to their near-square factorization.
  EXPECT_EQ(MeshTopology::for_cores(6).rows(), 2u);
}

TEST(MeshTopology, MetricHelpersOnDegenerateAndNonSquareShapes) {
  // 1x1: no pairs, no cut, zero diameter.
  const MeshTopology single(1, 1);
  EXPECT_EQ(single.mean_hops(), 0.0);
  EXPECT_EQ(single.diameter(), 0u);
  EXPECT_EQ(single.bisection_links(), 1u);

  // 1xN chain (directly constructed; for_cores refuses to build one):
  // diameter N-1, one link crosses the mid-cut, mean hops (N+1)/3.
  const MeshTopology chain(5, 1);
  EXPECT_EQ(chain.diameter(), 4u);
  EXPECT_EQ(chain.bisection_links(), 1u);
  EXPECT_NEAR(chain.mean_hops(), 2.0, 1e-12);

  // Non-square 4x2: diameter (4-1)+(2-1), the vertical mid-cut crosses
  // the 2 rows, and mean hops matches the brute-force expectation.
  const MeshTopology rect(4, 2);
  EXPECT_EQ(rect.diameter(), 4u);
  EXPECT_EQ(rect.bisection_links(), 2u);
  double total = 0.0;
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      if (a != b) total += static_cast<double>(rect.hops(a, b));
    }
  }
  EXPECT_NEAR(rect.mean_hops(), total / (8.0 * 7.0), 1e-12);
}

TEST(Topology, SingleChipDegenerateMatchesMesh) {
  const Topology pkg = Topology::for_cores(16, 1);
  const MeshTopology mesh = MeshTopology::for_cores(16);
  EXPECT_EQ(pkg.num_chips(), 1u);
  EXPECT_EQ(pkg.num_cores(), 16u);
  EXPECT_EQ(pkg.cores_per_chip(), 16u);
  for (std::size_t a = 0; a < 16; ++a) {
    EXPECT_EQ(pkg.chip_of(a), 0u);
    EXPECT_EQ(pkg.local_core(a), a);
    for (std::size_t b = 0; b < 16; ++b) {
      EXPECT_EQ(pkg.hops(a, b), mesh.hops(a, b));
    }
  }
}

TEST(Topology, ChipMajorCoreNumbering) {
  const Topology pkg = Topology::for_cores(64, 4);
  EXPECT_EQ(pkg.cores_per_chip(), 16u);
  EXPECT_EQ(pkg.grid_cols(), 2u);
  EXPECT_EQ(pkg.grid_rows(), 2u);
  EXPECT_EQ(pkg.chip_of(0), 0u);
  EXPECT_EQ(pkg.chip_of(15), 0u);
  EXPECT_EQ(pkg.chip_of(16), 1u);
  EXPECT_EQ(pkg.chip_of(63), 3u);
  EXPECT_EQ(pkg.local_core(17), 1u);
  EXPECT_EQ(pkg.global_core(2, 5), 37u);
  EXPECT_EQ(pkg.gateway_core(0), 0u);
  EXPECT_EQ(pkg.gateway_core(3), 48u);
  EXPECT_TRUE(pkg.same_chip(16, 31));
  EXPECT_FALSE(pkg.same_chip(15, 16));
  EXPECT_THROW(pkg.chip_of(64), std::out_of_range);
  EXPECT_THROW(pkg.global_core(4, 0), std::out_of_range);
}

TEST(Topology, CrossChipHopsGoThroughGateways) {
  const Topology pkg = Topology::for_cores(32, 2);  // two 4x4 chips, 2x1 grid
  // Same chip: plain mesh distance.
  EXPECT_EQ(pkg.hops(0, 5), MeshTopology::for_cores(16).hops(0, 5));
  // Gateway to gateway of the adjacent chip: just the package crossing.
  EXPECT_EQ(pkg.hops(0, 16), 1u);
  // Interior core to interior core: walk to gateway, cross, walk out.
  const MeshTopology mesh = MeshTopology::for_cores(16);
  EXPECT_EQ(pkg.hops(5, 16 + 10), mesh.hops(5, 0) + 1 + mesh.hops(0, 10));
  EXPECT_EQ(pkg.chip_hops(0, 1), 1u);
  EXPECT_EQ(pkg.chip_hops(1, 1), 0u);
}

TEST(Topology, RejectsBadShapes) {
  EXPECT_THROW(Topology::for_cores(16, 0), std::invalid_argument);
  EXPECT_THROW(Topology::for_cores(17, 2), std::invalid_argument);
  EXPECT_THROW(Topology::for_cores(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ls::noc
