#include "noc/simulator.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ls::noc {
namespace {

NocConfig small_config() {
  NocConfig cfg;
  return cfg;
}

TEST(MeshNocSimulator, EmptyMessageSet) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  const NocStats stats = sim.run({});
  EXPECT_EQ(stats.total_flits, 0u);
  EXPECT_EQ(stats.completion_cycle, 0u);
}

TEST(MeshNocSimulator, SelfMessageIsFree) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  const NocStats stats = sim.run({{3, 3, 4096, 0}});
  EXPECT_EQ(stats.total_flits, 0u);
}

TEST(MeshNocSimulator, ZeroByteMessageIsFree) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  const NocStats stats = sim.run({{0, 1, 0, 0}});
  EXPECT_EQ(stats.total_flits, 0u);
}

TEST(MeshNocSimulator, FlitsForBytes) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  EXPECT_EQ(sim.flits_for_bytes(1), 1u);
  EXPECT_EQ(sim.flits_for_bytes(64), 1u);
  EXPECT_EQ(sim.flits_for_bytes(65), 2u);
  EXPECT_EQ(sim.flits_for_bytes(64 * 20), 20u);
}

TEST(MeshNocSimulator, SingleFlitNeighborLatency) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  const NocStats stats = sim.run({{0, 1, 16, 0}});
  EXPECT_EQ(stats.total_flits, 1u);
  EXPECT_EQ(stats.flit_hops, 1u);
  EXPECT_EQ(stats.router_traversals, 2u);
  // One hop: source router pipeline + link + sink router pipeline; the
  // exact constant tracks the configured stage count.
  EXPECT_GT(stats.completion_cycle, small_config().router_latency);
  EXPECT_LE(stats.completion_cycle, 3 * (small_config().router_latency + 1));
}

TEST(MeshNocSimulator, FlitHopsEqualManhattanDistance) {
  const MeshTopology topo(4, 4);
  const MeshNocSimulator sim(topo, small_config());
  for (std::size_t dst = 1; dst < 16; ++dst) {
    const NocStats stats = sim.run({{0, dst, 64, 0}});
    EXPECT_EQ(stats.flit_hops, topo.hops(0, dst)) << dst;
  }
}

TEST(MeshNocSimulator, MultiPacketMessage) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  // 64 flits -> 4 packets of 20/20/20/4 flits.
  const NocStats stats = sim.run({{0, 5, 64 * 64, 0}});
  EXPECT_EQ(stats.total_flits, 64u);
  EXPECT_EQ(stats.packets, 4u);
  EXPECT_EQ(stats.flit_hops, 64u * 2u);
}

TEST(MeshNocSimulator, LatencyGrowsWithDistance) {
  const MeshNocSimulator sim(MeshTopology(8, 4), small_config());
  const auto near = sim.run({{0, 1, 1024, 0}});
  const auto far = sim.run({{0, 31, 1024, 0}});
  EXPECT_GT(far.completion_cycle, near.completion_cycle);
}

TEST(MeshNocSimulator, SerializationDominatesLongMessages) {
  const NocConfig cfg = small_config();
  const MeshNocSimulator sim(MeshTopology(4, 4), cfg);
  const std::size_t flits = 1000;
  const auto stats = sim.run({{0, 1, flits * cfg.flit_bytes, 0}});
  // A single message serializes at >= 1 flit/cycle (each packet's flits
  // share one VC, and a VC pops one flit per cycle); the aggregate link
  // bandwidth of phys_channels flits/cycle is only reachable with traffic
  // on multiple VCs.
  EXPECT_GE(stats.completion_cycle, flits / cfg.phys_channels);
  EXPECT_LE(stats.completion_cycle, flits + 100);
}

TEST(MeshNocSimulator, ZeroLoadLatencyIsLowerBound) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  const Message m{0, 15, 4096, 0};
  const auto stats = sim.run({m});
  EXPECT_GE(stats.completion_cycle, sim.zero_load_latency(m));
  // Uncontended run should be close to zero-load.
  EXPECT_LE(stats.completion_cycle, sim.zero_load_latency(m) * 2);
}

TEST(MeshNocSimulator, ContentionSlowsDelivery) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  // Eight sources all target core 0: ejection is the bottleneck.
  std::vector<Message> burst;
  for (std::size_t s = 1; s <= 8; ++s) burst.push_back({s, 0, 4096, 0});
  const auto alone = sim.run({{8, 0, 4096, 0}});
  const auto together = sim.run(burst);
  EXPECT_GT(together.completion_cycle, alone.completion_cycle);
}

TEST(MeshNocSimulator, AllToAllDrains) {
  const MeshTopology topo(4, 4);
  const MeshNocSimulator sim(topo, small_config());
  std::vector<Message> msgs;
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t d = 0; d < 16; ++d) {
      if (s != d) msgs.push_back({s, d, 512, 0});
    }
  }
  const auto stats = sim.run(msgs);
  EXPECT_EQ(stats.total_flits, 240u * 8u);
  EXPECT_EQ(stats.packets, 240u);
  EXPECT_GT(stats.avg_packet_latency, 0.0);
  EXPECT_GE(stats.max_packet_latency,
            static_cast<std::uint64_t>(stats.avg_packet_latency));
}

TEST(MeshNocSimulator, DeterministicAcrossRuns) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  util::Rng rng(9);
  std::vector<Message> msgs;
  for (int i = 0; i < 64; ++i) {
    const std::size_t s = rng.uniform_index(16);
    std::size_t d = rng.uniform_index(16);
    if (d == s) d = (d + 1) % 16;
    msgs.push_back({s, d, 64 * (1 + rng.uniform_index(30)), 0});
  }
  const auto a = sim.run(msgs);
  const auto b = sim.run(msgs);
  EXPECT_EQ(a.completion_cycle, b.completion_cycle);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.avg_packet_latency, b.avg_packet_latency);
}

TEST(MeshNocSimulator, StaggeredInjectionRespectsInjectCycle) {
  const MeshNocSimulator sim(MeshTopology(4, 4), small_config());
  const auto early = sim.run({{0, 3, 64, 0}});
  const auto late = sim.run({{0, 3, 64, 1000}});
  EXPECT_GE(late.completion_cycle, 1000u);
  EXPECT_LT(early.completion_cycle, 1000u);
}

TEST(MeshNocSimulator, MorePhysicalChannelsFaster) {
  NocConfig one = small_config();
  one.phys_channels = 1;
  NocConfig two = small_config();
  two.phys_channels = 2;
  const MeshTopology topo(4, 4);
  std::vector<Message> msgs;
  for (std::size_t s = 0; s < 16; ++s) {
    msgs.push_back({s, 15 - s, 8192, 0});
  }
  const auto slow = MeshNocSimulator(topo, one).run(msgs);
  const auto fast = MeshNocSimulator(topo, two).run(msgs);
  EXPECT_LT(fast.completion_cycle, slow.completion_cycle);
}

TEST(MeshNocSimulator, RejectsBadEndpoints) {
  const MeshNocSimulator sim(MeshTopology(2, 2), small_config());
  EXPECT_THROW(sim.run({{0, 7, 64, 0}}), std::out_of_range);
}

TEST(MeshNocSimulator, RejectsDegenerateConfig) {
  NocConfig cfg = small_config();
  cfg.vcs = 0;
  EXPECT_THROW(MeshNocSimulator(MeshTopology(2, 2), cfg),
               std::invalid_argument);
  cfg = small_config();
  cfg.vcs = 9;
  EXPECT_THROW(MeshNocSimulator(MeshTopology(2, 2), cfg),
               std::invalid_argument);
  cfg = small_config();
  cfg.flit_bytes = 0;
  EXPECT_THROW(MeshNocSimulator(MeshTopology(2, 2), cfg),
               std::invalid_argument);
}

// Property sweep: conservation (every injected flit ejects exactly once)
// across topologies and message patterns.
class NocConservation
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(NocConservation, FlitsConserved) {
  const auto [cores, msg_bytes] = GetParam();
  const MeshTopology topo = MeshTopology::for_cores(cores);
  const MeshNocSimulator sim(topo, small_config());
  util::Rng rng(cores * 1000 + msg_bytes);
  std::vector<Message> msgs;
  std::size_t expect_flits = 0;
  for (std::size_t i = 0; i < 3 * cores; ++i) {
    const std::size_t s = rng.uniform_index(cores);
    std::size_t d = rng.uniform_index(cores);
    if (cores > 1 && d == s) d = (d + 1) % cores;
    msgs.push_back({s, d, msg_bytes, 0});
    if (s != d && msg_bytes > 0) expect_flits += sim.flits_for_bytes(msg_bytes);
  }
  const auto stats = sim.run(msgs);
  EXPECT_EQ(stats.total_flits, expect_flits);
  // Every flit crosses hops+1 routers; totals must be consistent.
  EXPECT_EQ(stats.router_traversals, stats.flit_hops + stats.total_flits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NocConservation,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(1, 64, 640, 5000)));

}  // namespace
}  // namespace ls::noc
