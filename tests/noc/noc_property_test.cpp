// Property tests: lower bounds the simulator may never beat, across random
// message sets. Contention can only add latency on top of zero-load and
// bandwidth bounds, so any violation is a simulator bug.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "noc/simulator.hpp"
#include "util/rng.hpp"

namespace ls::noc {
namespace {

class NocBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NocBounds, CompletionRespectsZeroLoadAndBandwidthBounds) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const std::size_t cores = 16;
  const MeshTopology topo = MeshTopology::for_cores(cores);
  const NocConfig cfg;
  const MeshNocSimulator sim(topo, cfg);

  std::vector<Message> msgs;
  const std::size_t count = 8 + rng.uniform_index(24);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t s = rng.uniform_index(cores);
    std::size_t d = rng.uniform_index(cores);
    if (d == s) d = (d + 1) % cores;
    msgs.push_back({s, d, 64 * (1 + rng.uniform_index(64)), 0});
  }
  const NocStats stats = sim.run(msgs);

  // Bound 1: no message beats its zero-load latency.
  std::uint64_t zero_load_max = 0;
  for (const Message& m : msgs) {
    zero_load_max = std::max(zero_load_max, sim.zero_load_latency(m));
  }
  EXPECT_GE(stats.completion_cycle, zero_load_max);

  // Bound 2: per-node ejection bandwidth (phys_channels flits/cycle).
  std::map<std::size_t, std::uint64_t> eject_flits;
  for (const Message& m : msgs) {
    eject_flits[m.dst] += sim.flits_for_bytes(m.bytes);
  }
  std::uint64_t eject_bound = 0;
  for (const auto& [node, flits] : eject_flits) {
    eject_bound = std::max(eject_bound, flits / cfg.phys_channels);
  }
  EXPECT_GE(stats.completion_cycle, eject_bound);

  // Bound 3: per-node injection bandwidth.
  std::map<std::size_t, std::uint64_t> inject_flits;
  for (const Message& m : msgs) {
    inject_flits[m.src] += sim.flits_for_bytes(m.bytes);
  }
  std::uint64_t inject_bound = 0;
  for (const auto& [node, flits] : inject_flits) {
    inject_bound = std::max(inject_bound, flits / cfg.phys_channels);
  }
  EXPECT_GE(stats.completion_cycle, inject_bound);

  // Consistency: hop accounting.
  std::uint64_t expect_hops = 0;
  for (const Message& m : msgs) {
    expect_hops += sim.flits_for_bytes(m.bytes) * topo.hops(m.src, m.dst);
  }
  EXPECT_EQ(stats.flit_hops, expect_hops);

  // Consistency: busiest link carries at least flit_hops / total links.
  EXPECT_GE(stats.max_link_flits * std::max<std::size_t>(1, stats.links_used),
            stats.flit_hops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NocBounds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace ls::noc
