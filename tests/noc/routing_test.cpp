// Tests for the routing variants and link-utilization statistics.

#include <gtest/gtest.h>

#include "noc/simulator.hpp"

namespace ls::noc {
namespace {

TEST(Routing, YxDeliversSameFlitHops) {
  const MeshTopology topo(4, 4);
  NocConfig xy;
  NocConfig yx;
  yx.routing = Routing::kYX;
  std::vector<Message> msgs;
  for (std::size_t s = 0; s < 16; ++s) {
    msgs.push_back({s, 15 - s, 2048, 0});
  }
  const auto rxy = MeshNocSimulator(topo, xy).run(msgs);
  const auto ryx = MeshNocSimulator(topo, yx).run(msgs);
  // Both are minimal: identical hop counts, possibly different timing.
  EXPECT_EQ(rxy.flit_hops, ryx.flit_hops);
  EXPECT_EQ(rxy.total_flits, ryx.total_flits);
}

TEST(Routing, XyAndYxUseDifferentPaths) {
  // A single diagonal message: XY goes east-then-south, YX south-then-
  // east; the congestion signature (links used) differs when combined
  // with a conflicting flow.
  const MeshTopology topo(4, 4);
  NocConfig xy;
  NocConfig yx;
  yx.routing = Routing::kYX;
  // Flows 0->5 and 1->5 (128 flits each). Under XY, 0->5 turns at router
  // 1 and shares the southbound 1->5 link with the second flow (one link
  // carries 256 flits); under YX, 0->5 goes south first and the flows
  // only merge at the destination router.
  std::vector<Message> msgs = {{0, 5, 8192, 0}, {1, 5, 8192, 0}};
  const auto sxy = MeshNocSimulator(topo, xy).run(msgs);
  const auto syx = MeshNocSimulator(topo, yx).run(msgs);
  EXPECT_EQ(sxy.max_link_flits, 256u);
  EXPECT_EQ(syx.max_link_flits, 128u);
}

TEST(LinkStats, SingleMessageUsesHopLinks) {
  const MeshTopology topo(4, 4);
  const MeshNocSimulator sim(topo, {});
  const auto stats = sim.run({{0, 3, 640, 0}});  // 10 flits, 3 hops
  EXPECT_EQ(stats.links_used, 3u);
  EXPECT_EQ(stats.max_link_flits, 10u);
}

TEST(LinkStats, HotspotConcentratesOnFinalLinks) {
  const MeshTopology topo(4, 4);
  const MeshNocSimulator sim(topo, {});
  std::vector<Message> msgs;
  for (std::size_t s = 1; s < 16; ++s) msgs.push_back({s, 0, 640, 0});
  const auto stats = sim.run(msgs);
  // The west-bound link into core 0 carries most column-0 and row-0
  // traffic: its load must far exceed the average.
  const double avg = static_cast<double>(stats.flit_hops) /
                     static_cast<double>(stats.links_used);
  EXPECT_GT(static_cast<double>(stats.max_link_flits), 1.5 * avg);
}

TEST(LinkStats, UniformTrafficSpreadsLoad) {
  const MeshTopology topo(4, 4);
  const MeshNocSimulator sim(topo, {});
  std::vector<Message> ring;
  for (std::size_t s = 0; s < 16; ++s) ring.push_back({s, (s + 1) % 16, 640, 0});
  const auto stats = sim.run(ring);
  EXPECT_GT(stats.links_used, 10u);
}

}  // namespace
}  // namespace ls::noc
