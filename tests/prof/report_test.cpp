#include "prof/report.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "prof/attribution.hpp"
#include "prof/model_error.hpp"
#include "sim/system.hpp"
#include "tune/tuner.hpp"
#include "util/json_in.hpp"

namespace ls::prof {
namespace {

TEST(ProfileReport, FullReportRoundTripsThroughParser) {
  const nn::NetSpec spec = nn::convnet_spec();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);
  sim::StreamTimeline tl;
  const sim::StreamResult s = system.run_stream(schedule, 4, 0, &tl);
  const ModelErrorReport model_error =
      compare_model(schedule, tune::cost_model_for(cfg), s.single_pass);
  const StreamAttribution attribution = attribute_stream(schedule, tl);
  const StreamLatency latency = stream_latency(schedule, tl);

  tune::TunerConfig tcfg;
  tcfg.budget = 120;
  tcfg.restarts = 2;
  tune::TuneTelemetry telemetry;
  const tune::TuneOutcome tuned =
      tune::tune(spec, traffic, cfg, tcfg, sched::Strategy::kTraditional,
                 &telemetry);

  ProfileInputs in;
  in.net_name = spec.name;
  in.cores = cfg.cores;
  in.requests = 4;
  in.single_pass = &s.single_pass;
  in.model_error = &model_error;
  in.stream = &attribution;
  in.latency = &latency;
  in.tune_outcome = &tuned;
  in.tune_telemetry = &telemetry;
  const std::string json = build_profile_json(in);

  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::parse_json(json, &doc, &error)) << error;

  // Header.
  const util::JsonValue* profile = doc.find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->find("net")->as_string(), spec.name);
  EXPECT_EQ(profile->find("cores")->as_u64(), 16u);
  EXPECT_EQ(profile->find("requests")->as_u64(), 4u);

  // Single-pass blame parses back and sums to the total.
  const util::JsonValue* sp = doc.find("single_pass");
  ASSERT_NE(sp, nullptr);
  const util::JsonValue* blame = sp->find("blame");
  ASSERT_NE(blame, nullptr);
  EXPECT_EQ(blame->find("total_cycles")->as_u64(),
            s.single_pass.total_cycles);

  // Model error carries one entry per compute layer.
  const util::JsonValue* me = doc.find("model_error");
  ASSERT_NE(me, nullptr);
  EXPECT_EQ(me->find("layers")->as_array().size(),
            s.single_pass.layers.size());

  // Stream section: blame sums to the makespan, latency percentiles and
  // the per-request rows survive the round trip.
  const util::JsonValue* stream = doc.find("stream");
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->find("makespan_cycles")->as_u64(),
            s.makespan_cycles);
  EXPECT_EQ(stream->find("blame")->find("total_cycles")->as_u64(),
            s.makespan_cycles);
  const util::JsonValue* lat = stream->find("latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("p50_cycles")->as_double(),
                   latency.p50_cycles);
  EXPECT_EQ(lat->find("requests")->as_array().size(), 4u);

  // Tuner telemetry: restarts + validation scatter with exactly one best.
  const util::JsonValue* tn = doc.find("tune");
  ASSERT_NE(tn, nullptr);
  EXPECT_EQ(tn->find("restarts")->as_array().size(),
            telemetry.restarts.size());
  const auto& scatter = tn->find("validation_scatter")->as_array();
  EXPECT_EQ(scatter.size(), telemetry.validations.size());
  std::size_t best = 0;
  for (const auto& v : scatter) best += v.find("is_best")->as_bool();
  EXPECT_EQ(best, 1u);
}

TEST(ProfileReport, SectionsAreOptional) {
  const nn::NetSpec spec = nn::lenet_spec();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sim::InferenceResult r = system.run_inference(spec, traffic);

  ProfileInputs in;
  in.net_name = spec.name;
  in.cores = cfg.cores;
  in.single_pass = &r;
  const std::string json = build_profile_json(in);

  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::parse_json(json, &doc, &error)) << error;
  EXPECT_NE(doc.find("single_pass"), nullptr);
  EXPECT_EQ(doc.find("model_error"), nullptr);
  EXPECT_EQ(doc.find("stream"), nullptr);
  EXPECT_EQ(doc.find("tune"), nullptr);
}

}  // namespace
}  // namespace ls::prof
