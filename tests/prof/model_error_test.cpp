#include "prof/model_error.hpp"

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "tune/tuner.hpp"

namespace ls::prof {
namespace {

struct Fixture {
  nn::NetSpec spec;
  sim::SystemConfig cfg;
  sched::Schedule schedule;
  sim::InferenceResult actual;

  explicit Fixture(nn::NetSpec s, std::size_t cores) : spec(std::move(s)) {
    cfg.cores = cores;
    const sim::CmpSystem system(cfg);
    const auto traffic =
        core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
    schedule = system.build_schedule(spec, traffic);
    actual = system.execute(schedule);
  }
};

TEST(ModelError, ComputeHalfIsExact) {
  // The scorer prices compute events with the executor's own core model,
  // so per-layer compute error must be identically zero — any drift means
  // the two have diverged.
  const Fixture f(nn::convnet_spec(), 16);
  const ModelErrorReport r =
      compare_model(f.schedule, tune::cost_model_for(f.cfg), f.actual);
  ASSERT_EQ(r.layers.size(), f.actual.layers.size());
  for (const LayerModelError& e : r.layers) {
    EXPECT_EQ(e.est_compute_cycles, e.act_compute_cycles) << e.layer_name;
    EXPECT_DOUBLE_EQ(e.compute_rel_error, 0.0) << e.layer_name;
  }
}

TEST(ModelError, LayersAlignWithExecutedTimeline) {
  const Fixture f(nn::alexnet_spec(), 16);
  const ModelErrorReport r =
      compare_model(f.schedule, tune::cost_model_for(f.cfg), f.actual);
  ASSERT_EQ(r.layers.size(), f.actual.layers.size());
  for (std::size_t i = 0; i < r.layers.size(); ++i) {
    EXPECT_EQ(r.layers[i].layer_name, f.actual.layers[i].layer_name);
    // Actuals echo the executed timeline's raw drain.
    EXPECT_EQ(r.layers[i].act_comm_cycles, f.actual.layers[i].comm_cycles);
    EXPECT_EQ(r.layers[i].act_compute_cycles,
              f.actual.layers[i].compute_cycles);
  }
  EXPECT_EQ(r.act_total_cycles, f.actual.total_cycles);
  EXPECT_EQ(r.est_total_cycles,
            sched::estimate_cycles(f.schedule, tune::cost_model_for(f.cfg))
                .total_cycles);
}

TEST(ModelError, ZeroTrafficLayerIsPerfectAndExcludedFromStats) {
  // The first layer has no transition burst (inputs preloaded): both
  // sides are zero, error is zero, and it does not dilute the error
  // distribution.
  const Fixture f(nn::convnet_spec(), 16);
  const ModelErrorReport r =
      compare_model(f.schedule, tune::cost_model_for(f.cfg), f.actual);
  ASSERT_FALSE(r.layers.empty());
  const LayerModelError& first = r.layers.front();
  EXPECT_EQ(first.est_comm_cycles, 0u);
  EXPECT_EQ(first.act_comm_cycles, 0u);
  EXPECT_DOUBLE_EQ(first.comm_rel_error, 0.0);
  std::size_t with_traffic = 0;
  for (const LayerModelError& e : r.layers) {
    with_traffic += (e.est_comm_cycles != 0 || e.act_comm_cycles != 0);
  }
  EXPECT_EQ(r.comm_rel_error.count(), with_traffic);
  EXPECT_EQ(r.comm_abs_rel_error_hist.total(), with_traffic);
}

}  // namespace
}  // namespace ls::prof
