#include "prof/bench_compare.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/json_in.hpp"

namespace ls::prof {
namespace {

util::JsonValue parse(const std::string& text) {
  util::JsonValue v;
  std::string error;
  EXPECT_TRUE(util::parse_json(text, &v, &error)) << error;
  return v;
}

TEST(BenchCompare, DirectionHeuristics) {
  EXPECT_EQ(metric_direction("fwd_speedup"), MetricDirection::kHigherBetter);
  EXPECT_EQ(metric_direction("throughput_per_mcycle"),
            MetricDirection::kHigherBetter);
  EXPECT_EQ(metric_direction("compute_occupancy"),
            MetricDirection::kHigherBetter);
  EXPECT_EQ(metric_direction("mm_simd_gflops"),
            MetricDirection::kHigherBetter);
  EXPECT_EQ(metric_direction("gemm_fwd_ms"), MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("makespan_cycles"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("comm_rel_error"),
            MetricDirection::kLowerBetter);
  EXPECT_EQ(metric_direction("cores"), MetricDirection::kInfo);
  EXPECT_EQ(metric_direction("evals"), MetricDirection::kInfo);
  EXPECT_EQ(metric_direction("some_label"), MetricDirection::kInfo);
}

TEST(BenchCompare, IdenticalDocumentsPass) {
  const std::string doc =
      R"({"bench":"x","rows":[{"net":"A","cores":16,"makespan_cycles":100,)"
      R"("throughput_per_mcycle":5.0}]})";
  const DiffResult r = diff_bench(parse(doc), parse(doc));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_TRUE(r.mismatches.empty());
  EXPECT_FALSE(r.diffs.empty());
}

TEST(BenchCompare, DetectsDirectionalRegressions) {
  const auto base = parse(
      R"({"makespan_cycles":100,"throughput_per_mcycle":10.0,"cores":16})");
  // Cycles up 20%, throughput down 20%, cores changed (info only).
  const auto cur = parse(
      R"({"makespan_cycles":120,"throughput_per_mcycle":8.0,"cores":32})");
  const DiffResult r = diff_bench(base, cur);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.regressions, 2u);
  for (const MetricDiff& d : r.diffs) {
    if (d.leaf == "cores") {
      EXPECT_FALSE(d.regressed);
    }
  }
}

TEST(BenchCompare, ImprovementsAndSmallDriftPass) {
  const auto base = parse(
      R"({"makespan_cycles":100,"throughput_per_mcycle":10.0})");
  // Cycles down (good), throughput up (good) — never a regression; and a
  // 2% adverse drift stays under the default 5% threshold.
  EXPECT_TRUE(diff_bench(base, parse(R"({"makespan_cycles":80,)"
                                     R"("throughput_per_mcycle":12.0})"))
                  .ok());
  EXPECT_TRUE(diff_bench(base, parse(R"({"makespan_cycles":102,)"
                                     R"("throughput_per_mcycle":9.8})"))
                  .ok());
}

TEST(BenchCompare, PerMetricThresholdOverride) {
  const auto base = parse(R"({"speedup_sim":2.0})");
  const auto cur = parse(R"({"speedup_sim":1.8})");  // -10%
  EXPECT_FALSE(diff_bench(base, cur).ok());  // default 5%
  DiffOptions loose;
  loose.thresholds["speedup_sim"] = 0.15;
  EXPECT_TRUE(diff_bench(base, cur, loose).ok());
  DiffOptions tight;
  tight.default_threshold = 0.5;
  tight.thresholds["speedup_sim"] = 0.01;
  EXPECT_FALSE(diff_bench(base, cur, tight).ok());
}

TEST(BenchCompare, StructuralMismatchesFail) {
  const auto base =
      parse(R"({"rows":[{"a":1},{"a":2}],"name":"x","flag":true})");
  // Missing key.
  EXPECT_FALSE(diff_bench(base, parse(R"({"rows":[{"a":1},{"a":2}],)"
                                      R"("flag":true})"))
                   .ok());
  // Extra key.
  EXPECT_FALSE(
      diff_bench(base, parse(R"({"rows":[{"a":1},{"a":2}],"name":"x",)"
                             R"("flag":true,"extra":0})"))
          .ok());
  // Array size change.
  EXPECT_FALSE(
      diff_bench(base,
                 parse(R"({"rows":[{"a":1}],"name":"x","flag":true})"))
          .ok());
  // Type change.
  EXPECT_FALSE(
      diff_bench(base, parse(R"({"rows":[{"a":1},{"a":"2"}],"name":"x",)"
                             R"("flag":true})"))
          .ok());
  // String / bool value changes.
  EXPECT_FALSE(
      diff_bench(base, parse(R"({"rows":[{"a":1},{"a":2}],"name":"y",)"
                             R"("flag":true})"))
          .ok());
  EXPECT_FALSE(
      diff_bench(base, parse(R"({"rows":[{"a":1},{"a":2}],"name":"x",)"
                             R"("flag":false})"))
          .ok());
}

TEST(BenchCompare, ArrayElementsAlignByIndex) {
  const auto base = parse(
      R"({"rows":[{"makespan_cycles":100},{"makespan_cycles":200}]})");
  const auto cur = parse(
      R"({"rows":[{"makespan_cycles":100},{"makespan_cycles":400}]})");
  const DiffResult r = diff_bench(base, cur);
  EXPECT_EQ(r.regressions, 1u);
  ASSERT_EQ(r.diffs.size(), 2u);
  EXPECT_FALSE(r.diffs[0].regressed);
  EXPECT_TRUE(r.diffs[1].regressed);
  EXPECT_EQ(r.diffs[1].path, "rows[1].makespan_cycles");
}

TEST(BenchCompare, ZeroBaselineUsesAbsoluteDelta) {
  const auto base = parse(R"({"comm_rel_error":0.0})");
  const auto cur = parse(R"({"comm_rel_error":0.5})");
  const DiffResult r = diff_bench(base, cur);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.diffs[0].rel_change, 0.5);
  EXPECT_TRUE(r.diffs[0].regressed);
}

}  // namespace
}  // namespace ls::prof
