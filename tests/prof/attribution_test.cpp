#include "prof/attribution.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/traffic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"

namespace ls::prof {
namespace {

/// Minimal schedule skeleton: attribution only reads kinds and deps.
sched::Schedule two_event_chain() {
  sched::Schedule s;
  s.net_name = "synthetic";
  s.cores = 1;
  sched::Event comm;
  comm.kind = sched::EventKind::kComm;
  comm.layer_name = "l0";
  sched::Event compute;
  compute.kind = sched::EventKind::kCompute;
  compute.layer_name = "l0";
  compute.deps = {0};
  s.events = {comm, compute};
  return s;
}

TEST(Attribution, HandBuiltSingleRequestBlame) {
  const sched::Schedule s = two_event_chain();
  sim::StreamTimeline tl;
  tl.items = {{0, 0, 0, 10}, {0, 1, 10, 30}};
  const StreamAttribution a = attribute_stream(s, tl);
  EXPECT_EQ(a.makespan_cycles, 30u);
  EXPECT_EQ(a.blame.compute_cycles, 20u);
  EXPECT_EQ(a.blame.noc_cycles, 0u);
  EXPECT_EQ(a.blame.dep_stall_on_comm_cycles, 10u);
  EXPECT_EQ(a.blame.dep_stall_on_compute_cycles, 0u);
  EXPECT_EQ(a.blame.total(), a.makespan_cycles);
  ASSERT_EQ(a.critical_chain.size(), 2u);
  EXPECT_EQ(a.critical_chain[0], 0u);  // time order
  EXPECT_EQ(a.critical_chain[1], 1u);
  EXPECT_EQ(a.items[0].slack_cycles, 0u);
  EXPECT_EQ(a.items[1].slack_cycles, 0u);
}

TEST(Attribution, HandBuiltTwoRequestPipelineBlameAndSlack) {
  const sched::Schedule s = two_event_chain();
  // r0: burst [0,10) compute [10,30); r1: burst [10,20) under r0's
  // compute, compute [30,50) back-to-back on the core gang.
  sim::StreamTimeline tl;
  tl.items = {
      {0, 0, 0, 10}, {0, 1, 10, 30}, {1, 0, 10, 20}, {1, 1, 30, 50}};
  const StreamAttribution a = attribute_stream(s, tl);
  EXPECT_EQ(a.makespan_cycles, 50u);
  // Chain: r1 compute (terminal, 20) <- resource <- r0 compute (20)
  // <- dep <- r0 burst (stall-on-comm, 10).
  EXPECT_EQ(a.blame.compute_cycles, 40u);
  EXPECT_EQ(a.blame.noc_cycles, 0u);
  EXPECT_EQ(a.blame.dep_stall_on_comm_cycles, 10u);
  EXPECT_EQ(a.blame.total(), a.makespan_cycles);
  // r1's burst finishes at 20 but its compute only needs it by 30.
  EXPECT_FALSE(a.items[2].on_critical_chain);
  EXPECT_EQ(a.items[2].slack_cycles, 10u);
  EXPECT_TRUE(a.items[0].on_critical_chain);
  EXPECT_TRUE(a.items[1].on_critical_chain);
  EXPECT_TRUE(a.items[3].on_critical_chain);
}

TEST(Attribution, EmptyTimelineYieldsEmptyAttribution) {
  const sched::Schedule s = two_event_chain();
  const sim::StreamTimeline tl;
  const StreamAttribution a = attribute_stream(s, tl);
  EXPECT_EQ(a.makespan_cycles, 0u);
  EXPECT_EQ(a.blame.total(), 0u);
  EXPECT_TRUE(a.items.empty());
  EXPECT_TRUE(a.critical_chain.empty());
}

class RealStreamAttribution : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealStreamAttribution, BlameSumsToMakespanOnExecutedConvNet) {
  const std::size_t requests = GetParam();
  const nn::NetSpec spec = nn::convnet_spec();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);

  sim::StreamTimeline tl;
  const sim::StreamResult r = system.run_stream(schedule, requests, 0, &tl);
  ASSERT_EQ(tl.items.size(), requests * schedule.events.size());

  const StreamAttribution a = attribute_stream(schedule, tl);
  EXPECT_EQ(a.makespan_cycles, r.makespan_cycles);
  // The tentpole invariant: blame buckets tile the makespan exactly.
  EXPECT_EQ(a.blame.total(), a.makespan_cycles);

  // The critical chain is gapless and anchored at both ends.
  ASSERT_FALSE(a.critical_chain.empty());
  EXPECT_EQ(tl.items[a.critical_chain.front()].start_cycle, 0u);
  EXPECT_EQ(tl.items[a.critical_chain.back()].finish_cycle,
            a.makespan_cycles);
  for (std::size_t i = 1; i < a.critical_chain.size(); ++i) {
    EXPECT_EQ(tl.items[a.critical_chain[i - 1]].finish_cycle,
              tl.items[a.critical_chain[i]].start_cycle);
  }
  // Chain items have zero slack; every slack is sane.
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].on_critical_chain) {
      EXPECT_EQ(a.items[i].slack_cycles, 0u);
    }
    EXPECT_LE(a.items[i].slack_cycles, a.makespan_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(Requests, RealStreamAttribution,
                         ::testing::Values(1, 2, 8));

TEST(Attribution, SingleRequestStreamMatchesSerialPass) {
  // One streamed request is the serial timeline: its makespan equals the
  // non-overlapped single pass, and all communication blame lands in the
  // dependency-stall bucket (the paper's computation-blocking metric).
  const nn::NetSpec spec = nn::convnet_spec();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);
  sim::StreamTimeline tl;
  const sim::StreamResult r = system.run_stream(schedule, 1, 0, &tl);
  const StreamAttribution a = attribute_stream(schedule, tl);
  EXPECT_EQ(a.makespan_cycles, r.single_pass.total_cycles);
  EXPECT_EQ(a.blame.noc_cycles, 0u);  // nothing to contend with
  EXPECT_EQ(a.blame.compute_cycles + a.blame.dep_stall_on_compute_cycles,
            r.single_pass.compute_cycles);
  EXPECT_EQ(a.blame.dep_stall_on_comm_cycles, r.single_pass.comm_cycles);
}

TEST(Attribution, SinglePassBlameSumsToTotal) {
  const nn::NetSpec spec = nn::lenet_spec();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sim::InferenceResult r = system.run_inference(spec, traffic);
  const BlameBreakdown b = attribute_single_pass(r);
  EXPECT_EQ(b.total(), r.total_cycles);
  EXPECT_EQ(b.compute_cycles, r.compute_cycles);
  EXPECT_EQ(b.dep_stall_on_comm_cycles, r.comm_cycles);
}

TEST(Attribution, StreamLatencyDecomposes) {
  const nn::NetSpec spec = nn::convnet_spec();
  sim::SystemConfig cfg;
  cfg.cores = 16;
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule = system.build_schedule(spec, traffic);
  sim::StreamTimeline tl;
  const sim::StreamResult r = system.run_stream(schedule, 8, 0, &tl);

  const StreamLatency lat = stream_latency(schedule, tl);
  ASSERT_EQ(lat.requests.size(), 8u);
  for (const RequestLatency& rl : lat.requests) {
    EXPECT_EQ(rl.latency_cycles, r.request_finish_cycle[rl.request]);
    EXPECT_EQ(rl.compute_cycles + rl.comm_cycles + rl.queue_wait_cycles,
              rl.latency_cycles);
    // Every request runs the same schedule: identical busy work.
    EXPECT_EQ(rl.compute_cycles, lat.requests[0].compute_cycles);
    EXPECT_EQ(rl.comm_cycles, lat.requests[0].comm_cycles);
  }
  // Percentiles are order statistics of the actual finishes.
  EXPECT_GE(lat.p95_cycles, lat.p50_cycles);
  EXPECT_GE(lat.p99_cycles, lat.p95_cycles);
  EXPECT_LE(lat.p99_cycles, static_cast<double>(r.makespan_cycles));
}

}  // namespace
}  // namespace ls::prof
