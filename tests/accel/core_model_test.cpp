#include "accel/core_model.hpp"

#include <gtest/gtest.h>

namespace ls::accel {
namespace {

TEST(CoreModel, ZeroWorkZeroCost) {
  const CoreModel model;
  const LayerCoreCost cost = model.layer_cost({});
  EXPECT_EQ(cost.cycles(), 0u);
  EXPECT_EQ(cost.energy_pj, 0.0);
}

TEST(CoreModel, ComputeCyclesMatchPeakThroughput) {
  AccelConfig cfg;
  cfg.pe_utilization = 1.0;
  const CoreModel model(cfg);
  LayerPartitionWork work;
  work.macs = 256 * 1000;  // exactly 1000 cycles at 256 MACs/cycle
  EXPECT_EQ(model.layer_cost(work).compute_cycles, 1000u);
}

TEST(CoreModel, UtilizationInflatesCycles) {
  AccelConfig full;
  full.pe_utilization = 1.0;
  AccelConfig half;
  half.pe_utilization = 0.5;
  LayerPartitionWork work;
  work.macs = 256 * 100;
  EXPECT_EQ(CoreModel(half).layer_cost(work).compute_cycles,
            2 * CoreModel(full).layer_cost(work).compute_cycles);
}

TEST(CoreModel, CeilingOnPartialCycle) {
  AccelConfig cfg;
  cfg.pe_utilization = 1.0;
  LayerPartitionWork work;
  work.macs = 257;
  EXPECT_EQ(CoreModel(cfg).layer_cost(work).compute_cycles, 2u);
}

TEST(CoreModel, ResidentWeightsNoDramCycles) {
  AccelConfig cfg;
  cfg.model_weight_streaming = true;
  const CoreModel model(cfg);
  LayerPartitionWork work;
  work.macs = 1000;
  work.weight_bytes = cfg.weight_buffer_bytes;  // exactly fits
  EXPECT_EQ(model.layer_cost(work).dram_cycles, 0u);
}

TEST(CoreModel, OversizedWeightsStreamWhenEnabled) {
  AccelConfig cfg;
  cfg.model_weight_streaming = true;
  cfg.dram_bytes_per_cycle = 4.0;
  const CoreModel model(cfg);
  LayerPartitionWork work;
  work.macs = 1;
  work.weight_bytes = cfg.weight_buffer_bytes + 4000;  // 135072 bytes
  const LayerCoreCost cost = model.layer_cost(work);
  EXPECT_EQ(cost.dram_cycles, 135072u / 4);
  EXPECT_GT(cost.cycles(), cost.compute_cycles);
}

TEST(CoreModel, StreamingDisabledByDefault) {
  const CoreModel model;
  LayerPartitionWork work;
  work.macs = 1;
  work.weight_bytes = 10 * 1024 * 1024;
  EXPECT_EQ(model.layer_cost(work).dram_cycles, 0u);
}

TEST(CoreModel, LatencyIsMaxOfComputeAndStreaming) {
  AccelConfig cfg;
  cfg.model_weight_streaming = true;
  cfg.pe_utilization = 1.0;
  const CoreModel model(cfg);
  LayerPartitionWork work;
  work.macs = 256 * 1'000'000;  // 1M compute cycles
  work.weight_bytes = cfg.weight_buffer_bytes + 400;  // tiny streaming
  const LayerCoreCost cost = model.layer_cost(work);
  EXPECT_EQ(cost.cycles(), cost.compute_cycles);
}

TEST(CoreModel, EnergyScalesWithMacs) {
  const CoreModel model;
  LayerPartitionWork small;
  small.macs = 1000;
  LayerPartitionWork big;
  big.macs = 10000;
  EXPECT_NEAR(model.layer_cost(big).energy_pj,
              10.0 * model.layer_cost(small).energy_pj, 1e-6);
}

TEST(CoreModel, RejectsDegenerateConfig) {
  AccelConfig cfg;
  cfg.pe_rows = 0;
  EXPECT_THROW(CoreModel{cfg}, std::invalid_argument);
  cfg = AccelConfig{};
  cfg.pe_utilization = 0.0;
  EXPECT_THROW(CoreModel{cfg}, std::invalid_argument);
  cfg = AccelConfig{};
  cfg.pe_utilization = 1.5;
  EXPECT_THROW(CoreModel{cfg}, std::invalid_argument);
}

TEST(CoreModel, Table2Defaults) {
  // TABLE II: 16x16 PEs, 128KB SB, 32KB data buffers, 16-bit values.
  const AccelConfig cfg;
  EXPECT_EQ(cfg.macs_per_cycle(), 256u);
  EXPECT_EQ(cfg.weight_buffer_bytes, 128u * 1024);
  EXPECT_EQ(cfg.data_buffer_bytes, 32u * 1024);
  EXPECT_EQ(cfg.bytes_per_value, 2u);
}

}  // namespace
}  // namespace ls::accel
