#pragma once
// Analytic cycle/energy model of a DianNao-style neural accelerator core
// (the "in-house simulator that faithfully simulates DianNao [2]" of the
// paper's §V; see the substitution table in DESIGN.md).
//
// Matches TABLE II: 16x16 PEs per core, one 128 KB weight buffer (SB), two
// 32 KB data buffers (NBin/NBout), 16-bit fixed-point arithmetic. The model
// charges:
//   * compute cycles  = MACs / (PE count x utilization)
//   * weight-streaming cycles when the layer partition's weights exceed the
//     SB (DianNao double-buffers, so streaming overlaps compute; the layer
//     cost is the max of the two)
// and energy for MACs, SRAM traffic, and DRAM traffic.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ls::accel {

struct AccelConfig {
  std::size_t pe_rows = 16;
  std::size_t pe_cols = 16;
  std::size_t weight_buffer_bytes = 128 * 1024;
  std::size_t data_buffer_bytes = 32 * 1024;  ///< each of NBin / NBout
  std::size_t bytes_per_value = 2;            ///< 16-bit fixed point
  /// Average PE-array utilization on dense conv/fc tiles. Real mappings
  /// lose cycles to edge tiles and drain/fill; 0.85 is typical for
  /// DianNao-class dataflows.
  double pe_utilization = 0.85;
  /// Per-core share of memory-controller bandwidth when streaming weights
  /// (bytes per core cycle). The chip-level LPDDR3 channel is modeled in
  /// ls::sim, which divides bandwidth across concurrently-streaming cores.
  double dram_bytes_per_cycle = 4.0;
  /// When true, layer partitions whose weights exceed the SB charge
  /// weight-streaming cycles/energy. Off by default: the paper's latency
  /// metric follows the DaDianNao convention of weights resident on-chip,
  /// counting only compute and inter-core synchronization. Enable for the
  /// memory-bound ablation.
  bool model_weight_streaming = false;

  // Energy coefficients (pJ), representative 65 nm DianNao-class values.
  double mac_pj = 0.9;              ///< one 16-bit MAC
  double sram_read_pj_per_byte = 0.35;
  double sram_write_pj_per_byte = 0.45;
  double dram_pj_per_byte = 35.0;

  std::size_t macs_per_cycle() const { return pe_rows * pe_cols; }
};

/// Workload of one layer partition assigned to one core.
struct LayerPartitionWork {
  std::uint64_t macs = 0;          ///< multiply-accumulates
  std::uint64_t weight_bytes = 0;  ///< weights this core must hold/stream
  std::uint64_t input_bytes = 0;   ///< activation bytes read
  std::uint64_t output_bytes = 0;  ///< activation bytes produced

  friend bool operator==(const LayerPartitionWork&,
                         const LayerPartitionWork&) = default;
};

struct LayerCoreCost {
  std::uint64_t compute_cycles = 0;
  std::uint64_t dram_cycles = 0;  ///< weight streaming (overlapped)
  double energy_pj = 0.0;

  /// Effective latency: streaming is double-buffered behind compute.
  std::uint64_t cycles() const {
    return compute_cycles > dram_cycles ? compute_cycles : dram_cycles;
  }
};

/// Gang cost of one layer across all cores: the slowest partition gates
/// the layer (cores run in parallel), energies add.
struct PartitionCost {
  std::uint64_t worst_cycles = 0;
  double energy_pj = 0.0;
};

class CoreModel {
 public:
  explicit CoreModel(const AccelConfig& cfg = {});

  /// Cost of running one layer partition on one core.
  LayerCoreCost layer_cost(const LayerPartitionWork& work) const;

  /// Cost of one layer's per-core partitions (a Schedule ComputeEvent):
  /// evaluates layer_cost per core in index order — energy accumulation
  /// order is part of the bit-exactness contract with the pre-IR executor.
  /// When `per_core_cycles` is non-null it receives each core's cycles
  /// (resized to the partition count; idle cores report 0).
  PartitionCost partition_cost(
      std::span<const LayerPartitionWork> per_core,
      std::vector<std::uint64_t>* per_core_cycles = nullptr) const;

  const AccelConfig& config() const { return cfg_; }

 private:
  AccelConfig cfg_;
};

}  // namespace ls::accel
