#include "accel/core_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ls::accel {

CoreModel::CoreModel(const AccelConfig& cfg) : cfg_(cfg) {
  if (cfg_.pe_rows == 0 || cfg_.pe_cols == 0 || cfg_.bytes_per_value == 0 ||
      cfg_.pe_utilization <= 0.0 || cfg_.pe_utilization > 1.0 ||
      cfg_.dram_bytes_per_cycle <= 0.0) {
    throw std::invalid_argument("degenerate accelerator config");
  }
}

LayerCoreCost CoreModel::layer_cost(const LayerPartitionWork& work) const {
  LayerCoreCost cost;
  if (work.macs == 0) return cost;

  const double effective_macs_per_cycle =
      static_cast<double>(cfg_.macs_per_cycle()) * cfg_.pe_utilization;
  cost.compute_cycles = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(work.macs) / effective_macs_per_cycle));

  // Weights resident in the SB need one DRAM fill which we amortize away
  // (steady-state inference reuses them); weights beyond the SB must be
  // streamed every pass — only charged when the memory-bound ablation is on.
  if (cfg_.model_weight_streaming &&
      work.weight_bytes > cfg_.weight_buffer_bytes) {
    const std::uint64_t streamed = work.weight_bytes;
    cost.dram_cycles = static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(streamed) / cfg_.dram_bytes_per_cycle));
    cost.energy_pj += static_cast<double>(streamed) * cfg_.dram_pj_per_byte;
  }

  // Every MAC reads a weight and an activation from SRAM and the results
  // are written back once.
  cost.energy_pj += static_cast<double>(work.macs) * cfg_.mac_pj;
  cost.energy_pj += static_cast<double>(work.macs) *
                    static_cast<double>(2 * cfg_.bytes_per_value) *
                    cfg_.sram_read_pj_per_byte;
  cost.energy_pj += static_cast<double>(work.output_bytes) *
                    cfg_.sram_write_pj_per_byte;
  return cost;
}

PartitionCost CoreModel::partition_cost(
    std::span<const LayerPartitionWork> per_core,
    std::vector<std::uint64_t>* per_core_cycles) const {
  PartitionCost total;
  if (per_core_cycles != nullptr) {
    per_core_cycles->assign(per_core.size(), 0);
  }
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    const LayerCoreCost cost = layer_cost(per_core[c]);
    const std::uint64_t cycles = cost.cycles();
    if (per_core_cycles != nullptr) (*per_core_cycles)[c] = cycles;
    if (cycles > total.worst_cycles) total.worst_cycles = cycles;
    total.energy_pj += cost.energy_pj;
  }
  return total;
}

}  // namespace ls::accel
