#pragma once
// Training loop tying together SGD, group-Lasso regularization, and the
// synthetic datasets.

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "nn/network.hpp"
#include "train/group_lasso.hpp"
#include "train/sgd.hpp"

namespace ls::train {

struct TrainConfig {
  std::size_t epochs = 4;
  std::size_t batch_size = 32;
  SgdConfig sgd{};
  double lr_decay = 0.7;  ///< multiplicative per-epoch decay
  std::uint64_t seed = 7;
  bool verbose = false;
  /// Data-parallel gradient replicas for train_classifier_parallel (1 =
  /// the plain serial loop; see train/data_parallel.hpp).
  std::size_t replicas = 1;
};

struct TrainReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_penalty;  ///< group-Lasso penalty trajectory
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double weight_sparsity = 0.0;       ///< exact-zero fraction after training
  std::size_t dead_blocks_killed = 0;
};

/// Trains `net` as a classifier; if `reg` is non-null the group-Lasso
/// update runs every step (proximal after SGD, subgradient before) and dead
/// blocks are enforced at the end.
TrainReport train_classifier(nn::Network& net, const data::Dataset& train_set,
                             const data::Dataset& test_set,
                             const TrainConfig& cfg,
                             GroupLassoRegularizer* reg = nullptr);

/// Accuracy evaluated in minibatches (bounds peak memory on big test sets).
double evaluate(nn::Network& net, const data::Dataset& test_set,
                std::size_t batch_size = 64);

}  // namespace ls::train
