#pragma once
// Data-parallel classifier training: R structurally-identical network
// replicas each run forward/backward on a contiguous shard of every batch,
// and the shard gradients are reduced into the primary network in fixed
// replica order before each optimizer step.
//
// Determinism contract (matches util::parallel_for's): for a fixed
// cfg.replicas the trained weights are byte-identical for ANY pool size,
// including 1. Each replica writes only replica-local state inside the
// parallel region (its own layer caches, gradients, and scratch), shard
// boundaries depend only on (batch size, replicas), and the reduction and
// optimizer step run serially on the caller in ascending replica order.
// Changing cfg.replicas changes the floating-point summation grouping and
// therefore the bits — replica count is part of the experiment config, the
// thread count is not.
//
// The replicas are plain build_network clones: weights are overwritten from
// the primary every batch, and none of them arm block-sparsity partitions
// or regularizer bookkeeping — group-Lasso (and SGD state) lives only on
// the primary, exactly as in train_classifier.

#include "data/dataset.hpp"
#include "nn/model_zoo.hpp"
#include "nn/network.hpp"
#include "train/trainer.hpp"

namespace ls::train {

/// Trains `net` like train_classifier, with per-batch gradients computed
/// by cfg.replicas replica networks built from `spec` (which must be the
/// spec `net` was built from — validated against the parameter shapes).
/// cfg.replicas <= 1 delegates to train_classifier unchanged.
TrainReport train_classifier_parallel(const nn::NetSpec& spec,
                                      nn::Network& net,
                                      const data::Dataset& train_set,
                                      const data::Dataset& test_set,
                                      const TrainConfig& cfg,
                                      GroupLassoRegularizer* reg = nullptr);

}  // namespace ls::train
