#include "train/data_parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace ls::train {

namespace {

// Shard r of a B-row batch: contiguous, balanced to within one row, and a
// function of (B, R) only — never of the thread count.
struct Shard {
  std::size_t lo, hi;
};

Shard shard_bounds(std::size_t B, std::size_t R, std::size_t r) {
  return {B * r / R, B * (r + 1) / R};
}

}  // namespace

TrainReport train_classifier_parallel(const nn::NetSpec& spec,
                                      nn::Network& net,
                                      const data::Dataset& train_set,
                                      const data::Dataset& test_set,
                                      const TrainConfig& cfg,
                                      GroupLassoRegularizer* reg) {
  const std::size_t R = cfg.replicas;
  if (R <= 1) return train_classifier(net, train_set, test_set, cfg, reg);

  // Replica networks. The init weights are irrelevant (overwritten by the
  // per-batch sync), but each replica still gets its own RNG stream so any
  // future stochastic layer draws independent, replica-indexed noise.
  std::vector<nn::Network> replicas;
  replicas.reserve(R);
  for (std::size_t r = 0; r < R; ++r) {
    util::Rng rng(cfg.seed + 0x9e3779b97f4a7c15ull * (r + 1));
    replicas.push_back(nn::build_network(spec, rng));
  }
  std::vector<nn::Param*> primary = net.params();
  std::vector<std::vector<nn::Param*>> shadows(R);
  for (std::size_t r = 0; r < R; ++r) {
    shadows[r] = replicas[r].params();
    if (shadows[r].size() != primary.size()) {
      throw std::invalid_argument(
          "train_classifier_parallel: spec does not match net (parameter "
          "count differs)");
    }
    for (std::size_t p = 0; p < primary.size(); ++p) {
      if (shadows[r][p]->value.numel() != primary[p]->value.numel()) {
        throw std::invalid_argument(
            "train_classifier_parallel: spec does not match net (shape "
            "mismatch at " +
            primary[p]->name + ")");
      }
    }
  }

  TrainReport report;
  Sgd sgd(net.params(), cfg.sgd);
  data::Batcher batcher(train_set, cfg.batch_size, cfg.seed);

  static obs::Counter& batch_count =
      obs::Registry::instance().counter("train.batches");
  static obs::Counter& epoch_count =
      obs::Registry::instance().counter("train.epochs");

  const tensor::Shape& full = train_set.images.shape();
  const std::size_t sample_elems = full.numel() / full[0];

  double lr = cfg.sgd.lr;
  std::vector<double> shard_loss(R);  // per-replica loss *sums* (not means)
  // Persistent per-replica staging: shard tensors and label vectors are
  // reused across batches (reallocated only when the shard shape changes,
  // i.e. at most twice per epoch when the final batch is partial), so the
  // steady-state batch loop performs no per-batch allocations.
  std::vector<tensor::Tensor> shards(R);
  std::vector<std::vector<std::uint32_t>> shard_labels(R);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::Span epoch_span;
    if (obs::trace_enabled()) {
      epoch_span.begin(net.name() + ".epoch-" + std::to_string(epoch),
                       "train");
    }
    sgd.set_lr(lr);
    batcher.reset();
    tensor::Tensor images;
    std::vector<std::uint32_t> labels;
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    while (batcher.next(images, labels)) {
      obs::Span batch_span("train.batch", "train");
      const std::size_t B = images.shape()[0];
      // Weights changed last step: sync every replica to the primary.
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t p = 0; p < primary.size(); ++p) {
          std::memcpy(shadows[r][p]->value.data(), primary[p]->value.data(),
                      primary[p]->value.numel() * sizeof(float));
          shadows[r][p]->bump();
        }
      }
      std::fill(shard_loss.begin(), shard_loss.end(), 0.0);
      util::parallel_for(0, R, [&](std::size_t r) {
        // zero_grad must precede the empty-shard return: the fixed-order
        // reduction below reads every replica's grads unconditionally, so a
        // replica whose shard is empty (final partial batch with B < R)
        // must contribute zeros, not its previous batch's gradients.
        replicas[r].zero_grad();
        const Shard s = shard_bounds(B, R, r);
        const std::size_t rows = s.hi - s.lo;
        if (rows == 0) return;
        tensor::Tensor& shard = shards[r];
        const tensor::Shape want{rows, full[1], full[2], full[3]};
        if (!(shard.shape() == want)) shard = tensor::Tensor(want);
        std::memcpy(shard.data(), images.data() + s.lo * sample_elems,
                    rows * sample_elems * sizeof(float));
        shard_labels[r].assign(
            labels.begin() + static_cast<std::ptrdiff_t>(s.lo),
            labels.begin() + static_cast<std::ptrdiff_t>(s.hi));
        const tensor::Tensor logits =
            replicas[r].forward(shard, /*training=*/true);
        nn::LossResult loss =
            nn::softmax_cross_entropy(logits, shard_labels[r]);
        shard_loss[r] = loss.loss * static_cast<double>(rows);
        // softmax_cross_entropy divides by the shard size; rescale so the
        // shard gradients sum to the full batch-mean gradient.
        const float scale =
            static_cast<float>(rows) / static_cast<float>(B);
        float* g = loss.grad_logits.data();
        for (std::size_t i = 0; i < loss.grad_logits.numel(); ++i) {
          g[i] *= scale;
        }
        replicas[r].backward(loss.grad_logits);
      });
      // Fixed-order reduction: ascending replica index, so the summation
      // tree never depends on scheduling.
      net.zero_grad();
      double batch_loss = 0.0;
      for (std::size_t r = 0; r < R; ++r) {
        batch_loss += shard_loss[r];
        for (std::size_t p = 0; p < primary.size(); ++p) {
          float* dst = primary[p]->grad.data();
          const float* src = shadows[r][p]->grad.data();
          const std::size_t n = primary[p]->grad.numel();
          for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
        }
      }
      epoch_loss += batch_loss / static_cast<double>(B);
      ++batches;
      batch_count.inc();
      if (reg != nullptr && reg->mode() == LassoMode::kSubgradient) {
        reg->apply(lr);
      }
      sgd.step();
      if (reg != nullptr && reg->mode() == LassoMode::kProximal) {
        reg->apply(lr);
      }
    }
    epoch_count.inc();
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, batches));
    if (obs::trace_enabled()) {
      char args[64];
      std::snprintf(args, sizeof(args), "{\"loss\":%.6f,\"batches\":%zu}",
                    epoch_loss, batches);
      epoch_span.set_args(args);
    }
    report.epoch_loss.push_back(epoch_loss);
    report.epoch_penalty.push_back(reg ? reg->penalty() : 0.0);
    if (cfg.verbose) {
      LS_LOG_INFO("%s epoch %zu: loss=%.4f penalty=%.4f (replicas=%zu)",
                  net.name().c_str(), epoch, epoch_loss,
                  report.epoch_penalty.back(), R);
    }
    lr *= cfg.lr_decay;
  }

  if (reg != nullptr) {
    report.dead_blocks_killed = reg->enforce_dead_blocks();
  }
  report.train_accuracy = evaluate(net, train_set);
  report.test_accuracy = evaluate(net, test_set);
  report.weight_sparsity = net.sparsity();
  return report;
}

}  // namespace ls::train
