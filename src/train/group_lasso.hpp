#pragma once
// Group-Lasso regularization over core-block weight groups (paper Eq. 1-3).
//
// The optimization target is L(W) = L_D(W) + lambda R(W) + lambda_g
// sum_l R_g(W^l), with R_g the sum of L2 norms of the P x P weight blocks.
// We implement the R_g term with the standard proximal operator applied
// after each SGD step:
//
//     w_g <- w_g * max(0, 1 - eta * lambda_g(p,c) / ||w_g||_2)
//
// which drives whole blocks to *exactly* zero (a subgradient penalty only
// shrinks them asymptotically — the proximal form is what makes the dead-
// block traffic analysis exact; the subgradient variant is kept as an
// ablation). The per-block coefficient lambda_g(p,c) = lambda_g *
// mask[p][c] is where communication awareness enters (SS vs SS_Mask).

#include <vector>

#include "core/weight_groups.hpp"
#include "train/masks.hpp"

namespace ls::train {

enum class LassoMode {
  kProximal,     ///< exact block zeros (default)
  kSubgradient,  ///< classic gradient of the penalty (ablation)
};

class GroupLassoRegularizer {
 public:
  GroupLassoRegularizer(std::vector<core::LayerGroupSet> groups,
                        StrengthMask mask, double lambda_g,
                        LassoMode mode = LassoMode::kProximal);

  /// Applies one regularization update. For kProximal call *after*
  /// Sgd::step with the same learning rate; for kSubgradient call *before*
  /// (it accumulates into the gradients).
  void apply(double lr);

  /// Current penalty value lambda_g * sum of masked block norms.
  double penalty() const;

  /// Zeroes every block whose L2 norm falls below `threshold` (final
  /// cleanup after training; the proximal operator leaves blocks either
  /// exactly zero or clearly alive, so a tiny threshold suffices).
  /// Returns the number of blocks killed.
  std::size_t enforce_dead_blocks(double threshold = 1e-6);

  const std::vector<core::LayerGroupSet>& groups() const { return groups_; }
  std::vector<core::LayerGroupSet>& groups() { return groups_; }
  LassoMode mode() const { return mode_; }

 private:
  std::vector<core::LayerGroupSet> groups_;
  StrengthMask mask_;
  double lambda_g_;
  LassoMode mode_;
};

}  // namespace ls::train
