#pragma once
// Sparsity-strength masks for group-Lasso training (paper §IV.C.3).
//
// A mask is a P x P matrix of multiplicative strength factors on the
// group-Lasso coefficient of weight block (p, c):
//
// * uniform_mask    — every off-diagonal block gets factor 1: the "SS"
//   scheme (structured sparsity, distance-unaware).
// * distance_mask   — factor grows with the NoC hop distance between cores
//   p and c (Fig. 6(a)): the "SS_Mask" scheme. Long-distance blocks are
//   pruned first; adjacent-core blocks may keep their weights to preserve
//   accuracy.
//
// Diagonal blocks (p == c) cause no communication and always get factor 0,
// matching the paper ("the weights on the diagonal groups will not cause
// any communication ... we assign lower sparsity strength to these groups
// to keep their values").

#include <cstddef>
#include <vector>

#include "noc/topology.hpp"

namespace ls::train {

using StrengthMask = std::vector<std::vector<double>>;

/// SS: factor 1 off-diagonal, 0 on the diagonal.
StrengthMask uniform_mask(std::size_t cores);

/// SS_Mask: factor = (hops(p,c) / mean_hops)^exponent off-diagonal, 0 on
/// the diagonal. exponent = 1 reproduces the paper's linear distance
/// priority; higher exponents push sparsity harder onto distant pairs
/// (ablation).
StrengthMask distance_mask(const noc::MeshTopology& topo,
                           double exponent = 1.0);

/// Mean off-diagonal factor (used to normalize masks so SS and SS_Mask
/// apply comparable total regularization pressure).
double mean_off_diagonal(const StrengthMask& mask);

}  // namespace ls::train
