#include "train/masks.hpp"

#include <cmath>
#include <stdexcept>

namespace ls::train {

StrengthMask uniform_mask(std::size_t cores) {
  if (cores == 0) throw std::invalid_argument("zero cores");
  StrengthMask mask(cores, std::vector<double>(cores, 1.0));
  for (std::size_t i = 0; i < cores; ++i) mask[i][i] = 0.0;
  return mask;
}

StrengthMask distance_mask(const noc::MeshTopology& topo, double exponent) {
  const std::size_t n = topo.num_cores();
  const double mean = topo.mean_hops();
  StrengthMask mask(n, std::vector<double>(n, 0.0));
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t c = 0; c < n; ++c) {
      if (p == c) continue;
      const double h = static_cast<double>(topo.hops(p, c));
      mask[p][c] = std::pow(h / mean, exponent);
    }
  }
  return mask;
}

double mean_off_diagonal(const StrengthMask& mask) {
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t p = 0; p < mask.size(); ++p) {
    for (std::size_t c = 0; c < mask[p].size(); ++c) {
      if (p == c) continue;
      total += mask[p][c];
      ++count;
    }
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

}  // namespace ls::train
