#include "train/group_lasso.hpp"

#include <cmath>
#include <stdexcept>

namespace ls::train {

GroupLassoRegularizer::GroupLassoRegularizer(
    std::vector<core::LayerGroupSet> groups, StrengthMask mask,
    double lambda_g, LassoMode mode)
    : groups_(std::move(groups)),
      mask_(std::move(mask)),
      lambda_g_(lambda_g),
      mode_(mode) {
  if (lambda_g_ < 0.0) throw std::invalid_argument("negative lambda_g");
  for (const auto& set : groups_) {
    if (mask_.size() != set.cores) {
      throw std::invalid_argument("mask size does not match core count");
    }
  }
}

void GroupLassoRegularizer::apply(double lr) {
  for (core::LayerGroupSet& set : groups_) {
    if (mode_ == LassoMode::kProximal) set.weight->bump();
    for (std::size_t p = 0; p < set.cores; ++p) {
      for (std::size_t c = 0; c < set.cores; ++c) {
        const double strength = lambda_g_ * mask_[p][c];
        if (strength == 0.0) continue;
        const auto& idx = set.block(p, c);
        if (idx.empty()) continue;

        double sq = 0.0;
        for (std::size_t i : idx) {
          const double w = set.weight->value[i];
          sq += w * w;
        }
        const double norm = std::sqrt(sq);
        if (norm == 0.0) continue;

        if (mode_ == LassoMode::kProximal) {
          const double shrink = 1.0 - lr * strength / norm;
          if (shrink <= 0.0) {
            for (std::size_t i : idx) set.weight->value[i] = 0.0f;
          } else {
            const auto s = static_cast<float>(shrink);
            for (std::size_t i : idx) set.weight->value[i] *= s;
          }
        } else {
          // d/dw (strength * ||w_g||) = strength * w / ||w_g||
          const auto g = static_cast<float>(strength / norm);
          for (std::size_t i : idx) {
            set.weight->grad[i] += g * set.weight->value[i];
          }
        }
      }
    }
  }
}

double GroupLassoRegularizer::penalty() const {
  double total = 0.0;
  for (const core::LayerGroupSet& set : groups_) {
    for (std::size_t p = 0; p < set.cores; ++p) {
      for (std::size_t c = 0; c < set.cores; ++c) {
        const double strength = lambda_g_ * mask_[p][c];
        if (strength == 0.0) continue;
        total += strength * set.block_norm(p, c);
      }
    }
  }
  return total;
}

std::size_t GroupLassoRegularizer::enforce_dead_blocks(double threshold) {
  std::size_t killed = 0;
  for (core::LayerGroupSet& set : groups_) {
    for (std::size_t p = 0; p < set.cores; ++p) {
      for (std::size_t c = 0; c < set.cores; ++c) {
        const auto& idx = set.block(p, c);
        if (idx.empty()) continue;
        const double norm = set.block_norm(p, c);
        if (norm > 0.0 && norm < threshold) {
          set.kill_block(p, c);
          ++killed;
        }
      }
    }
  }
  return killed;
}

}  // namespace ls::train
