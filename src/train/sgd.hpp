#pragma once
// Stochastic gradient descent with momentum and L2 weight decay.

#include <vector>

#include "nn/layer.hpp"

namespace ls::train {

struct SgdConfig {
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;  ///< the generic R(.) term of paper Eq. (1)
  /// Global gradient-norm clip (0 disables). Keeps the from-scratch conv
  /// nets stable at the aggressive learning rates the short training
  /// budgets need.
  double clip_grad_norm = 5.0;
};

class Sgd {
 public:
  Sgd(std::vector<nn::Param*> params, const SgdConfig& cfg);

  /// One update from the currently-accumulated gradients.
  void step();

  /// Adjusts the learning rate (for decay schedules).
  void set_lr(double lr) { cfg_.lr = lr; }
  double lr() const { return cfg_.lr; }

 private:
  std::vector<nn::Param*> params_;
  SgdConfig cfg_;
  std::vector<tensor::Tensor> velocity_;
};

}  // namespace ls::train
