#include "train/sgd.hpp"

#include <cmath>
#include <stdexcept>

namespace ls::train {

Sgd::Sgd(std::vector<nn::Param*> params, const SgdConfig& cfg)
    : params_(std::move(params)), cfg_(cfg) {
  if (cfg_.lr <= 0.0) throw std::invalid_argument("non-positive lr");
  velocity_.reserve(params_.size());
  for (nn::Param* p : params_) {
    velocity_.emplace_back(p->value.shape(), 0.0f);
  }
}

void Sgd::step() {
  float clip_scale = 1.0f;
  if (cfg_.clip_grad_norm > 0.0) {
    double sq = 0.0;
    for (nn::Param* p : params_) sq += p->grad.sum_squares();
    const double norm = std::sqrt(sq);
    if (norm > cfg_.clip_grad_norm) {
      clip_scale = static_cast<float>(cfg_.clip_grad_norm / norm);
    }
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param& p = *params_[i];
    tensor::Tensor& v = velocity_[i];
    const auto lr = static_cast<float>(cfg_.lr);
    const auto mom = static_cast<float>(cfg_.momentum);
    const auto wd = static_cast<float>(cfg_.weight_decay);
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      const float g = clip_scale * p.grad[j] + wd * p.value[j];
      v[j] = mom * v[j] - lr * g;
      p.value[j] += v[j];
    }
    p.bump();  // invalidate cached block-sparsity bitmaps
  }
}

}  // namespace ls::train
