#include "train/trainer.hpp"

#include <cstdio>
#include <cstring>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace ls::train {

double evaluate(nn::Network& net, const data::Dataset& test_set,
                std::size_t batch_size) {
  if (test_set.size() == 0) return 0.0;
  // One scratch batch tensor reused across the loop instead of a full
  // Dataset copy per batch (slice() copies images *and* labels); it only
  // reallocates for the final short batch. Labels are read in place.
  const tensor::Shape& full = test_set.images.shape();
  const std::size_t sample_elems = full.numel() / full[0];
  tensor::Tensor batch;
  std::size_t hits = 0;
  for (std::size_t lo = 0; lo < test_set.size(); lo += batch_size) {
    const std::size_t hi = std::min(lo + batch_size, test_set.size());
    const std::size_t rows = hi - lo;
    if (batch.empty() || batch.shape()[0] != rows) {
      batch = tensor::Tensor(
          tensor::Shape{rows, full[1], full[2], full[3]});
    }
    std::memcpy(batch.data(), test_set.images.data() + lo * sample_elems,
                rows * sample_elems * sizeof(float));
    const auto preds = net.predict(batch);
    for (std::size_t i = 0; i < rows; ++i) {
      if (preds[i] == test_set.labels[lo + i]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(test_set.size());
}

TrainReport train_classifier(nn::Network& net, const data::Dataset& train_set,
                             const data::Dataset& test_set,
                             const TrainConfig& cfg,
                             GroupLassoRegularizer* reg) {
  TrainReport report;
  Sgd sgd(net.params(), cfg.sgd);
  data::Batcher batcher(train_set, cfg.batch_size, cfg.seed);

  static obs::Counter& batch_count =
      obs::Registry::instance().counter("train.batches");
  static obs::Counter& epoch_count =
      obs::Registry::instance().counter("train.epochs");

  double lr = cfg.sgd.lr;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::Span epoch_span;
    if (obs::trace_enabled()) {
      epoch_span.begin(net.name() + ".epoch-" + std::to_string(epoch),
                       "train");
    }
    sgd.set_lr(lr);
    batcher.reset();
    tensor::Tensor images;
    std::vector<std::uint32_t> labels;
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    while (batcher.next(images, labels)) {
      obs::Span batch_span("train.batch", "train");
      net.zero_grad();
      const tensor::Tensor logits = net.forward(images, /*training=*/true);
      nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
      epoch_loss += loss.loss;
      ++batches;
      batch_count.inc();
      net.backward(loss.grad_logits);
      if (reg != nullptr && reg->mode() == LassoMode::kSubgradient) {
        reg->apply(lr);  // adds the penalty gradient before the step
      }
      sgd.step();
      if (reg != nullptr && reg->mode() == LassoMode::kProximal) {
        reg->apply(lr);  // proximal shrink after the step
      }
    }
    epoch_count.inc();
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, batches));
    if (obs::trace_enabled()) {
      char args[64];
      std::snprintf(args, sizeof(args), "{\"loss\":%.6f,\"batches\":%zu}",
                    epoch_loss, batches);
      epoch_span.set_args(args);
    }
    report.epoch_loss.push_back(epoch_loss);
    report.epoch_penalty.push_back(reg ? reg->penalty() : 0.0);
    if (cfg.verbose) {
      LS_LOG_INFO("%s epoch %zu: loss=%.4f penalty=%.4f", net.name().c_str(),
                  epoch, epoch_loss, report.epoch_penalty.back());
    }
    lr *= cfg.lr_decay;
  }

  if (reg != nullptr) {
    report.dead_blocks_killed = reg->enforce_dead_blocks();
  }
  report.train_accuracy = evaluate(net, train_set);
  report.test_accuracy = evaluate(net, test_set);
  report.weight_sparsity = net.sparsity();
  return report;
}

}  // namespace ls::train
