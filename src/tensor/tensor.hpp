#pragma once
// Dense float tensor with NCHW-style row-major layout.
//
// This is the numeric substrate for the from-scratch neural-network library
// (ls::nn) that the paper's training-side contribution (group-Lasso
// communication-aware sparsification) is built on. We keep it deliberately
// small: contiguous float storage, shape algebra, and the handful of
// element-wise helpers the layers need.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ls::tensor {

/// Shape of a tensor; rank 1..4. For activations the convention is
/// {N, C, H, W}; for conv weights {Cout, Cin, Kh, Kw}; for FC weights
/// {Out, In}.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::vector<std::size_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::size_t dim(std::size_t i) const;
  std::size_t operator[](std::size_t i) const { return dim(i); }
  std::size_t numel() const;
  bool empty() const { return dims_.empty(); }

  const std::vector<std::size_t>& dims() const { return dims_; }
  std::string to_string() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<std::size_t> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// He/Kaiming-normal initialization for a weight tensor with the given
  /// fan-in, drawn from the supplied RNG for reproducibility.
  static Tensor he_normal(Shape shape, std::size_t fan_in, util::Rng& rng);
  static Tensor uniform(Shape shape, float lo, float hi, util::Rng& rng);
  static Tensor from_data(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Checked flat access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// 4D accessors for {N,C,H,W} tensors.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// 2D accessors for {rows, cols} tensors.
  float& at2(std::size_t r, std::size_t c);
  float at2(std::size_t r, std::size_t c) const;

  /// Reinterprets the data with a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  /// this *= alpha
  void scale(float alpha);

  double sum() const;
  double sum_squares() const;
  float max_abs() const;
  /// Count of exactly-zero elements (used for sparsity reporting).
  std::size_t count_zeros() const;

  /// True iff every element is finite (no NaN/Inf). Probe for the checked-
  /// build layer-boundary guards (src/check); also useful in tests.
  bool all_finite() const;

  /// Quantize every element through 16-bit fixed point (FracBits fractional
  /// bits) — models deployment on the fixed-point accelerator cores.
  void quantize_fixed16(int frac_bits);

 private:
  std::size_t flat4(std::size_t n, std::size_t c, std::size_t h,
                    std::size_t w) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Element-wise |a-b| max; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ls::tensor
