#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/fixed_point.hpp"

namespace ls::tensor {

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {
  if (dims_.empty() || dims_.size() > 4) {
    throw std::invalid_argument("shape rank must be 1..4");
  }
  for (std::size_t d : dims_) {
    if (d == 0) throw std::invalid_argument("zero-sized dimension");
  }
}

Shape::Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
  if (dims_.empty() || dims_.size() > 4) {
    throw std::invalid_argument("shape rank must be 1..4");
  }
  for (std::size_t d : dims_) {
    if (d == 0) throw std::invalid_argument("zero-sized dimension");
  }
}

std::size_t Shape::dim(std::size_t i) const {
  if (i >= dims_.size()) throw std::out_of_range("shape dim index");
  return dims_[i];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t d : dims_) n *= d;
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << ',';
    out << dims_[i];
  }
  out << '}';
  return out.str();
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_.numel(), fill) {}

Tensor Tensor::he_normal(Shape shape, std::size_t fan_in, util::Rng& rng) {
  Tensor t(shape);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, util::Rng& rng) {
  Tensor t(shape);
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  if (shape.numel() != data.size()) {
    throw std::invalid_argument("from_data size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

float& Tensor::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("tensor flat index");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("tensor flat index");
  return data_[i];
}

std::size_t Tensor::flat4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const {
  if (shape_.rank() != 4) throw std::logic_error("at4 on non-4D tensor");
  const std::size_t C = shape_[1], H = shape_[2], W = shape_[3];
  if (n >= shape_[0] || c >= C || h >= H || w >= W) {
    throw std::out_of_range("tensor 4D index");
  }
  return ((n * C + c) * H + h) * W + w;
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                   std::size_t w) {
  return data_[flat4(n, c, h, w)];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  return data_[flat4(n, c, h, w)];
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  if (shape_.rank() != 2) throw std::logic_error("at2 on non-2D tensor");
  if (r >= shape_[0] || c >= shape_[1]) throw std::out_of_range("tensor 2D index");
  return data_[r * shape_[1] + c];
}

float Tensor::at2(std::size_t r, std::size_t c) const {
  if (shape_.rank() != 2) throw std::logic_error("at2 on non-2D tensor");
  if (r >= shape_[0] || c >= shape_[1]) throw std::out_of_range("tensor 2D index");
  return data_[r * shape_[1] + c];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("reshape numel mismatch");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::axpy(float alpha, const Tensor& other) {
  if (!(shape_ == other.shape_)) {
    throw std::invalid_argument("axpy shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::sum_squares() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::size_t Tensor::count_zeros() const {
  std::size_t n = 0;
  for (float v : data_) {
    if (v == 0.0f) ++n;
  }
  return n;
}

bool Tensor::all_finite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void Tensor::quantize_fixed16(int frac_bits) {
  auto quant = [frac_bits](float v) {
    switch (frac_bits) {
      case 4:
        return static_cast<float>(util::quantize_f16<4>(v));
      case 8:
        return static_cast<float>(util::quantize_f16<8>(v));
      case 12:
        return static_cast<float>(util::quantize_f16<12>(v));
      default:
        throw std::invalid_argument("unsupported frac_bits (use 4/8/12)");
    }
  };
  for (auto& v : data_) v = quant(v);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) {
    throw std::invalid_argument("max_abs_diff shape mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace ls::tensor
