#pragma once
// Zero-cost-when-off runtime invariant layer (DESIGN.md "Correctness
// tooling").
//
// LS_CHECK(cond) and LS_CHECK_MSG(cond, fmt, ...) compile to nothing unless
// the build defines LS_ENABLE_CHECKS (cmake -DLS_CHECKS=ON; every LS_SAN
// sanitizer preset turns it on too). A failing check in a checked build
// prints "file:line: LS_CHECK(expr) failed: message" to stderr and aborts —
// which is what the tests/check death suite keys on.
//
// Policy:
//  * LS_CHECK guards *internal invariants*: conditions that cannot be false
//    unless this repo (or a caller breaking a documented contract, e.g.
//    mutating a Param without bump()) has a bug. Validation of user input
//    keeps throwing std::invalid_argument / std::out_of_range as before.
//  * The unchecked build must not pay for a check. The condition expression
//    sits under sizeof, so it is never evaluated when checks are off; whole
//    scan loops that exist only to feed checks belong under
//    `if constexpr (ls::check::kEnabled)`.
//  * Checks must not perturb results: probes may read anything but write
//    nothing observable.

#include <cstddef>

namespace ls::check {

/// True in checked builds. Use to gate expensive probe loops so the
/// unchecked build carries no trace of them.
inline constexpr bool kEnabled =
#ifdef LS_ENABLE_CHECKS
    true;
#else
    false;
#endif

/// Prints the failure report to stderr and aborts. `fmt` may be null (plain
/// LS_CHECK); otherwise printf-style formatting.
[[noreturn]] void fail(const char* file, int line, const char* expr,
                       const char* fmt = nullptr, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

/// Declared but never defined: referenced only inside sizeof so message
/// arguments count as used in unchecked builds without being evaluated.
template <typename... Args>
int unevaluated(Args&&...);

}  // namespace ls::check

#ifdef LS_ENABLE_CHECKS
#define LS_CHECK(cond) \
  ((cond) ? (void)0 : ::ls::check::fail(__FILE__, __LINE__, #cond))
#define LS_CHECK_MSG(cond, ...) \
  ((cond) ? (void)0          \
          : ::ls::check::fail(__FILE__, __LINE__, #cond, __VA_ARGS__))
#else
#define LS_CHECK(cond) ((void)sizeof(!(cond)))
#define LS_CHECK_MSG(cond, ...) \
  ((void)sizeof(!(cond)),       \
   (void)sizeof(::ls::check::unevaluated(__VA_ARGS__)))
#endif
