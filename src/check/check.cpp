#include "check/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ls::check {

void fail(const char* file, int line, const char* expr, const char* fmt,
          ...) {
  std::fprintf(stderr, "%s:%d: LS_CHECK(%s) failed", file, line, expr);
  if (fmt != nullptr) {
    std::fprintf(stderr, ": ");
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace ls::check
