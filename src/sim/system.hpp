#pragma once
// CMP system model: P accelerator cores on a 2D-mesh NoC running one
// partitioned single-pass inference (paper Fig. 2).
//
// Per compute layer the model charges
//   * compute cycles — max over cores of the DianNao core model on that
//     core's kernel partition (cores run in parallel, the slowest gates),
//   * communication cycles — the flit-level NoC simulation of the
//     synchronization burst into that layer ("computation-blocking
//     communication", the paper's §V.A.1 metric), charged before the layer
//     starts. The overlap ablation hides communication behind the
//     *previous* layer's compute instead.
// Energies come from the accelerator model and the DSENT-style NoC model.

#include <cstdint>
#include <string>
#include <vector>

#include "accel/core_model.hpp"
#include "core/sparsity_profile.hpp"
#include "core/traffic.hpp"
#include "noc/energy.hpp"
#include "noc/simulator.hpp"
#include "nn/layer_spec.hpp"

namespace ls::sim {

struct SystemConfig {
  std::size_t cores = 16;
  accel::AccelConfig accel{};
  noc::NocConfig noc{};
  noc::EnergyConfig noc_energy{};
  std::size_t bytes_per_value = 2;  ///< 16-bit fixed point on-chip
  /// Chip-level LPDDR3 bandwidth in bytes per core cycle (TABLE II: one
  /// channel; 12.8 GB/s at a 1 GHz core clock).
  double chip_dram_bytes_per_cycle = 12.8;
  /// If true, communication overlaps the previous layer's compute
  /// (ablation; the paper's metric is non-overlapped).
  bool overlap_comm = false;
  /// Core cycles per NoC cycle. Embedded NoCs often clock below the
  /// accelerator datapath; > 1 scales every communication latency up by
  /// that ratio (energy is unaffected — it is per-traversal, not per-time).
  double noc_clock_divider = 1.0;
  /// Memoize layer-transition burst simulations in the process-wide
  /// noc::NocRunCache. Correctness-neutral (a hit returns byte-identical
  /// stats); disable to force every burst through the flit-level simulator
  /// (e.g. when timing the simulator itself).
  bool noc_result_cache = true;
  /// Apply the structured-sparsity discount when run_inference is given a
  /// SparsityProfile: each core's macs and weight_bytes scale by its
  /// live-weight fraction (pruned blocks execute nothing on a sparsity-
  /// aware core). Communication cycles are never touched — traffic is
  /// modeled separately (traffic_live). Ablation switch for the
  /// sparse-model tests.
  bool sparse_cycle_model = true;
};

struct LayerTimeline {
  std::string layer_name;
  std::uint64_t compute_cycles = 0;  ///< max over cores
  std::uint64_t comm_cycles = 0;     ///< NoC drain time into this layer
  std::uint64_t blocking_comm_cycles = 0;  ///< after overlap (== comm if none)
  double compute_energy_pj = 0.0;
  double noc_energy_pj = 0.0;
  std::size_t traffic_bytes = 0;
  noc::NocStats noc_stats{};

  friend bool operator==(const LayerTimeline&, const LayerTimeline&) = default;
};

struct InferenceResult {
  std::vector<LayerTimeline> layers;
  std::uint64_t total_cycles = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t comm_cycles = 0;  ///< blocking communication total
  double compute_energy_pj = 0.0;
  double noc_energy_pj = 0.0;
  std::size_t traffic_bytes = 0;

  double total_energy_pj() const { return compute_energy_pj + noc_energy_pj; }
  /// Fraction of inference latency spent blocked on communication
  /// (motivational metric of paper §III.B).
  double comm_fraction() const {
    return total_cycles ? static_cast<double>(comm_cycles) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }

  /// Exact equality — used by the obs determinism test (tracing/metrics
  /// must not perturb results).
  friend bool operator==(const InferenceResult&,
                         const InferenceResult&) = default;
};

class CmpSystem {
 public:
  explicit CmpSystem(const SystemConfig& cfg);

  /// Runs one partitioned inference of `spec` with the given layer-
  /// transition traffic (produced by core::traffic_dense / traffic_live on
  /// the same spec). When `sparsity` is non-null (and
  /// SystemConfig::sparse_cycle_model is on), per-core compute work is
  /// discounted by the profile's live-MAC fractions; unprofiled layers
  /// stay dense.
  InferenceResult run_inference(
      const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
      const core::SparsityProfile* sparsity = nullptr) const;

  const SystemConfig& config() const { return cfg_; }
  const noc::MeshTopology& topology() const { return topo_; }

 private:
  SystemConfig cfg_;
  noc::MeshTopology topo_;
  accel::CoreModel core_model_;
};

/// baseline cycles / variant cycles.
double speedup(const InferenceResult& baseline, const InferenceResult& v);

/// 1 - variant NoC energy / baseline NoC energy.
double comm_energy_reduction(const InferenceResult& baseline,
                             const InferenceResult& v);

/// variant traffic bytes / baseline traffic bytes.
double traffic_rate(const InferenceResult& baseline,
                    const InferenceResult& v);

}  // namespace ls::sim
