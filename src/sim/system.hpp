#pragma once
// CMP system model: P accelerator cores on a 2D-mesh NoC executing
// Schedule-IR plans (paper Fig. 2; DESIGN.md §4f).
//
// CmpSystem is an *executor over schedules* (src/sched): run_inference is a
// thin build-then-execute wrapper that lowers the spec + traffic into the
// IR and charges, per compute layer,
//   * compute cycles — max over cores of the DianNao core model on that
//     core's kernel partition (cores run in parallel, the slowest gates),
//   * communication cycles — the flit-level NoC simulation of the
//     synchronization burst into that layer ("computation-blocking
//     communication", the paper's §V.A.1 metric), charged before the layer
//     starts. The overlap ablation hides communication behind the
//     *previous* layer's compute instead (policy is schedule data).
// Energies come from the accelerator model and the DSENT-style NoC model.
//
// run_stream executes the same schedule for many independent requests,
// software-pipelined: request k+1's layer-transition bursts overlap
// request k's compute. The cores are one gang resource (every compute
// layer occupies all P cores), the NoC one burst resource; both are
// work-conserving and serve the earliest-ready event (request index breaks
// ties). Burst latencies still come from the flit model via the memoizing
// burst cache; cross-request NoC contention is queueing on the burst
// resource. Throughput is reported in inferences per 1e6 cycles.

#include <cstdint>
#include <string>
#include <vector>

#include "accel/core_model.hpp"
#include "core/sparsity_profile.hpp"
#include "core/traffic.hpp"
#include "noc/energy.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "nn/layer_spec.hpp"
#include "sched/schedule.hpp"

namespace ls::sim {

struct SystemConfig {
  std::size_t cores = 16;  ///< total cores across all chips
  /// Chips in the package (DESIGN.md §4k). Each chip is its own
  /// cores/chips-core mesh with its own DRAM channel; chips are joined by
  /// `inter_chip` serial links and execute pipeline stages of a multi-chip
  /// schedule. 1 = the flat single-chip machine, bit-identical to the
  /// pre-hierarchy system.
  std::size_t chips = 1;
  /// Width/latency class of the chip-boundary links (chips > 1 only).
  noc::InterChipLinkClass inter_chip{};
  accel::AccelConfig accel{};
  noc::NocConfig noc{};
  noc::EnergyConfig noc_energy{};
  std::size_t bytes_per_value = 2;  ///< 16-bit fixed point on-chip
  /// Chip-level LPDDR3 bandwidth in bytes per core cycle (TABLE II: one
  /// channel; 12.8 GB/s at a 1 GHz core clock).
  double chip_dram_bytes_per_cycle = 12.8;
  /// If true, communication overlaps the previous layer's compute
  /// (ablation; the paper's metric is non-overlapped).
  bool overlap_comm = false;
  /// Core cycles per NoC cycle. Embedded NoCs often clock below the
  /// accelerator datapath; > 1 scales every communication latency up by
  /// that ratio (energy is unaffected — it is per-traversal, not per-time).
  double noc_clock_divider = 1.0;
  /// Memoize layer-transition burst simulations in the process-wide
  /// noc::NocRunCache. Correctness-neutral (a hit returns byte-identical
  /// stats); disable to force every burst through the flit-level simulator
  /// (e.g. when timing the simulator itself).
  bool noc_result_cache = true;
  /// Apply the structured-sparsity discount when run_inference is given a
  /// SparsityProfile: each core's macs and weight_bytes scale by its
  /// live-weight fraction (pruned blocks execute nothing on a sparsity-
  /// aware core). Communication cycles are never touched — traffic is
  /// modeled separately (traffic_live). Ablation switch for the
  /// sparse-model tests.
  bool sparse_cycle_model = true;
};

struct LayerTimeline {
  std::string layer_name;
  std::uint64_t compute_cycles = 0;  ///< max over cores
  std::uint64_t comm_cycles = 0;     ///< NoC drain time into this layer
  std::uint64_t blocking_comm_cycles = 0;  ///< after overlap (== comm if none)
  double compute_energy_pj = 0.0;
  double noc_energy_pj = 0.0;
  std::size_t traffic_bytes = 0;
  noc::NocStats noc_stats{};

  friend bool operator==(const LayerTimeline&, const LayerTimeline&) = default;
};

struct InferenceResult {
  std::vector<LayerTimeline> layers;
  std::uint64_t total_cycles = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t comm_cycles = 0;  ///< blocking communication total
  double compute_energy_pj = 0.0;
  double noc_energy_pj = 0.0;
  std::size_t traffic_bytes = 0;

  double total_energy_pj() const { return compute_energy_pj + noc_energy_pj; }
  /// Fraction of inference latency spent blocked on communication
  /// (motivational metric of paper §III.B).
  double comm_fraction() const {
    return total_cycles ? static_cast<double>(comm_cycles) /
                              static_cast<double>(total_cycles)
                        : 0.0;
  }

  /// Exact equality — used by the obs determinism test (tracing/metrics
  /// must not perturb results) and the schedule-path golden equivalence
  /// suite (`ctest -L sched`).
  friend bool operator==(const InferenceResult&,
                         const InferenceResult&) = default;
};

/// One dispatched event instance of a streamed run: request `request`
/// executing schedule event `event` over [start_cycle, finish_cycle).
struct StreamTimelineItem {
  std::size_t request = 0;
  sched::EventId event = 0;
  std::uint64_t start_cycle = 0;
  std::uint64_t finish_cycle = 0;

  friend bool operator==(const StreamTimelineItem&,
                         const StreamTimelineItem&) = default;
};

/// Execution record of run_stream, in dispatch order. Dispatch order
/// sequences each resource (consecutive items of a kind ran back to back
/// on it) and topologically orders the dep + resource precedence graph —
/// exactly the contract prof::attribute_stream consumes for critical-path
/// and slack analysis.
struct StreamTimeline {
  std::vector<StreamTimelineItem> items;
};

/// Multi-request streaming outcome (run_stream). Requests are independent
/// inferences of the same schedule, all released at cycle 0.
struct StreamResult {
  std::size_t requests = 0;
  /// One request executed alone — identical to run_inference over the same
  /// schedule (and bit-identical to it for n = 1 streams).
  InferenceResult single_pass{};
  /// Completion cycle of the whole stream.
  std::uint64_t makespan_cycles = 0;
  /// Completion cycle of request 0 — the pipeline-fill latency.
  std::uint64_t fill_cycles = 0;
  /// Per-request completion cycles (size = requests).
  std::vector<std::uint64_t> request_finish_cycle;
  /// Inferences per 1e6 cycles over the whole stream.
  double throughput_per_mcycle = 0.0;
  /// Busy fraction of the core gangs / the NoCs over the makespan — how
  /// full the software pipeline keeps each resource. Multi-chip systems
  /// average across chips (each chip is its own gang + NoC).
  double compute_occupancy = 0.0;
  double noc_occupancy = 0.0;
  /// Busy fraction of the chip-boundary links (0 on single-chip systems).
  double inter_chip_occupancy = 0.0;
  /// makespan of n back-to-back non-overlapped single passes divided by
  /// the streamed makespan (>1 means pipelining won).
  double speedup_vs_back_to_back = 0.0;
};

class CmpSystem {
 public:
  explicit CmpSystem(const SystemConfig& cfg);

  /// Runs one partitioned inference of `spec` with the given layer-
  /// transition traffic (produced by core::traffic_dense / traffic_live on
  /// the same spec). When `sparsity` is non-null (and
  /// SystemConfig::sparse_cycle_model is on), per-core compute work is
  /// discounted by the profile's live-MAC fractions; unprofiled layers
  /// stay dense. Thin wrapper: lowers to the Schedule IR via
  /// build_schedule and executes it.
  InferenceResult run_inference(
      const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
      const core::SparsityProfile* sparsity = nullptr) const;

  /// Lowers spec + traffic (+ profile) into a Schedule using this system's
  /// configuration (cores, bytes/value, overlap policy, sparse model).
  /// Multi-chip systems lower via sched::lower_pipelined — `traffic` must
  /// then be the layer-transition analysis at cores/chips cores (the
  /// per-chip mesh every stage runs on).
  sched::Schedule build_schedule(
      const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
      const core::SparsityProfile* sparsity = nullptr) const;

  /// Executes any well-formed schedule (checked-build validated). Burst
  /// simulations go through the memoizing cache under `stream_epoch`
  /// (see noc::NocRunCache::run; 0 = the shared single-pass memo space).
  InferenceResult execute(const sched::Schedule& schedule,
                          std::uint64_t stream_epoch = 0) const;

  /// Software-pipelined execution of `requests` independent inferences of
  /// `schedule` (see the header comment for the resource model). The
  /// overlap ablation flag on comm events is ignored here: streaming
  /// overlap is structural — a burst runs whenever the NoC is free and its
  /// producer layer finished, typically under another request's compute.
  /// When `timeline` is non-null the per-item execution record is written
  /// into it (dispatch order) for the profiling layer (src/prof).
  StreamResult run_stream(const sched::Schedule& schedule,
                          std::size_t requests, std::uint64_t stream_epoch = 0,
                          StreamTimeline* timeline = nullptr) const;

  const SystemConfig& config() const { return cfg_; }
  /// One chip's mesh (== the whole machine when chips == 1).
  const noc::MeshTopology& topology() const { return topo_; }
  /// The full package: per-chip mesh + chip grid + boundary link class.
  const noc::Topology& package() const { return package_; }

 private:
  SystemConfig cfg_;
  noc::MeshTopology topo_;
  noc::Topology package_;
  accel::CoreModel core_model_;
};

/// baseline cycles / variant cycles. A zero-cycle variant (degenerate
/// reference) logs a warning and yields 0 instead of inf.
double speedup(const InferenceResult& baseline, const InferenceResult& v);

/// 1 - variant NoC energy / baseline NoC energy. A zero-energy baseline
/// logs a warning and yields 0 instead of NaN/-inf.
double comm_energy_reduction(const InferenceResult& baseline,
                             const InferenceResult& v);

/// variant traffic bytes / baseline traffic bytes. A zero-traffic baseline
/// logs a warning and yields 0 instead of inf/NaN.
double traffic_rate(const InferenceResult& baseline,
                    const InferenceResult& v);

namespace testing {
/// The pre-Schedule-IR per-layer loop, kept verbatim as the golden
/// reference for the schedule-path equivalence suite (`ctest -L sched`).
/// Numerics only: no tracing, no metrics side effects — observability
/// independence is pinned separately by the obs determinism test.
InferenceResult reference_run_inference(
    const SystemConfig& cfg, const nn::NetSpec& spec,
    const core::InferenceTraffic& traffic,
    const core::SparsityProfile* sparsity = nullptr);
}  // namespace testing

}  // namespace ls::sim
