#include "sim/experiment.hpp"

#include <stdexcept>

#include "core/sparsity_profile.hpp"
#include "core/weight_groups.hpp"
#include "nn/block_sparsity.hpp"
#include "sched/builders.hpp"
#include "util/log.hpp"

namespace ls::sim {

data::Dataset dataset_for(const nn::NetSpec& spec, std::size_t samples,
                          std::uint64_t seed) {
  data::SyntheticSpec ds;
  ds.channels = spec.input.c;
  ds.height = spec.input.h;
  ds.width = spec.input.w;
  ds.samples = samples;
  // Prototypes depend only on the dataset tag; `seed` varies the sample
  // split so dataset_for(spec, n, 1) and dataset_for(spec, n, 2) are train
  // and test splits of the same task.
  ds.seed = util::hash_u64(std::hash<std::string>{}(spec.dataset));
  ds.sample_seed = seed;
  // Difficulty is tuned so the dense baselines land in the mid/high 90s
  // like the paper's MNIST/Cifar networks — hard enough that pruning the
  // wrong weight blocks costs measurable accuracy.
  if (spec.input.h <= 28) {
    ds.noise = 0.30;
    ds.max_shift = 2;
  } else {
    ds.noise = 0.35;
    ds.max_shift = spec.input.h / 10;
  }
  return data::make_synthetic(ds);
}

namespace {

// Lowers the strategy's inputs through the matching Schedule-IR builder and
// executes the schedule. This is where the per-strategy runners collapse:
// they no longer own any simulation arithmetic, only the training recipe
// and which (spec, traffic, profile) triple they hand the builder.
StrategyOutcome simulate_with_traffic(
    const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
    const ExperimentConfig& cfg, const StrategyOutcome* baseline,
    sched::Strategy strategy,
    const core::SparsityProfile* sparsity = nullptr) {
  SystemConfig sys = cfg.system;
  sys.cores = cfg.cores;
  CmpSystem system(sys);
  sched::BuildOptions opts;
  opts.cores = sys.cores;
  opts.bytes_per_value = sys.bytes_per_value;
  opts.overlap_comm = sys.overlap_comm;
  opts.sparse_cycle_model = sys.sparse_cycle_model;
  sched::Schedule schedule;
  switch (strategy) {
    case sched::Strategy::kTraditional:
      schedule = sched::build_traditional(spec, traffic, opts);
      break;
    case sched::Strategy::kStructureLevel:
      schedule = sched::build_structure_level(spec, traffic, opts);
      break;
    case sched::Strategy::kSparsified:
      schedule = sched::build_sparsified(spec, traffic, opts, sparsity);
      break;
    case sched::Strategy::kHybrid:
      schedule = sched::build_hybrid(spec, traffic, opts, sparsity);
      break;
  }
  StrategyOutcome out;
  out.result = system.execute(schedule);
  const std::size_t bytes = traffic.total_bytes();
  out.mean_traffic_hops =
      bytes ? static_cast<double>(traffic.total_byte_hops()) /
                  static_cast<double>(bytes)
            : 0.0;
  if (baseline != nullptr) {
    out.speedup = speedup(baseline->result, out.result);
    out.traffic_rate = traffic_rate(baseline->result, out.result);
    out.comm_energy_reduction =
        comm_energy_reduction(baseline->result, out.result);
    const double base_total = baseline->result.total_energy_pj();
    out.total_energy_reduction =
        base_total > 0.0 ? 1.0 - out.result.total_energy_pj() / base_total
                         : 0.0;
  }
  return out;
}

}  // namespace

std::vector<StrategyOutcome> run_sparsified_experiment(
    const nn::NetSpec& spec, const data::Dataset& train_set,
    const data::Dataset& test_set, const ExperimentConfig& cfg) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cfg.cores);
  std::vector<StrategyOutcome> outcomes;
  outcomes.reserve(3);  // references into the vector are taken below

  // --- Baseline: dense training, traditional parallelization -----------
  {
    util::Rng rng(cfg.seed);
    nn::Network net = nn::build_network(spec, rng);
    const train::TrainReport report =
        train::train_classifier(net, train_set, test_set, cfg.train);
    const auto traffic =
        core::traffic_dense(spec, topo, cfg.system.bytes_per_value);
    StrategyOutcome out = simulate_with_traffic(
        spec, traffic, cfg, nullptr, sched::Strategy::kTraditional);
    out.scheme = "Baseline";
    out.accuracy = report.test_accuracy;
    out.weight_sparsity = report.weight_sparsity;
    outcomes.push_back(std::move(out));
  }
  const StrategyOutcome& baseline = outcomes.front();

  // --- SS and SS_Mask ----------------------------------------------------
  struct SchemeDef {
    const char* name;
    bool distance_aware;
    double lambda;
  };
  const SchemeDef schemes[] = {
      {"SS", false, cfg.lambda_ss},
      {"SS_Mask", true, cfg.lambda_mask},
  };
  for (const SchemeDef& scheme : schemes) {
    util::Rng rng(cfg.seed);  // same init as baseline: isolates the
                              // regularizer's effect
    nn::Network net = nn::build_network(spec, rng);
    // Arm the block-sparse execution path on the layers group-Lasso prunes
    // (same eligibility as build_group_sets). Bit-exact vs dense, so the
    // training outcome is unchanged; evaluation speeds up as blocks die.
    nn::enable_block_sparsity(net, spec, cfg.cores);
    auto group_sets = core::build_group_sets(net, spec, cfg.cores);
    train::StrengthMask mask =
        scheme.distance_aware
            ? train::distance_mask(topo, cfg.mask_exponent)
            : train::uniform_mask(cfg.cores);
    train::GroupLassoRegularizer reg(std::move(group_sets), std::move(mask),
                                     scheme.lambda);
    const train::TrainReport report =
        train::train_classifier(net, train_set, test_set, cfg.train, &reg);

    const auto traffic = core::traffic_live(
        net, spec, topo, cfg.system.bytes_per_value, cfg.granularity);
    // The analytic model sees the same structured sparsity the kernels do.
    const core::SparsityProfile profile =
        core::profile_from_groups(reg.groups());
    StrategyOutcome out =
        simulate_with_traffic(spec, traffic, cfg, &baseline,
                              sched::Strategy::kSparsified, &profile);
    out.scheme = scheme.name;
    out.accuracy = report.test_accuracy;
    out.weight_sparsity = report.weight_sparsity;
    double dead = 0.0;
    std::size_t sets = 0;
    for (const auto& set : reg.groups()) {
      dead += set.off_diagonal_dead_fraction();
      ++sets;
    }
    out.dead_block_fraction = sets ? dead / static_cast<double>(sets) : 0.0;
    if (cfg.verbose) {
      LS_LOG_INFO("%s/%s: acc=%.3f traffic=%.2f speedup=%.2f dead=%.2f",
                  spec.name.c_str(), scheme.name, out.accuracy,
                  out.traffic_rate, out.speedup, out.dead_block_fraction);
    }
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

StrategyOutcome run_hybrid_variant(const nn::NetSpec& grouped_spec,
                                   const data::Dataset& train_set,
                                   const data::Dataset& test_set,
                                   const ExperimentConfig& cfg,
                                   const StrategyOutcome* baseline) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cfg.cores);
  util::Rng rng(cfg.seed);
  nn::Network net = nn::build_network(grouped_spec, rng);
  // build_group_sets skips grouped conv layers, so the regularizer only
  // touches the still-dense layers.
  train::GroupLassoRegularizer reg(
      core::build_group_sets(net, grouped_spec, cfg.cores),
      train::distance_mask(topo, cfg.mask_exponent), cfg.lambda_mask);
  const train::TrainReport report =
      train::train_classifier(net, train_set, test_set, cfg.train, &reg);
  const auto traffic = core::traffic_live(
      net, grouped_spec, topo, cfg.system.bytes_per_value, cfg.granularity);
  const core::SparsityProfile profile =
      core::profile_from_groups(reg.groups());
  StrategyOutcome out =
      simulate_with_traffic(grouped_spec, traffic, cfg, baseline,
                            sched::Strategy::kHybrid, &profile);
  out.scheme = "Hybrid(" + grouped_spec.name + ")";
  out.accuracy = report.test_accuracy;
  out.weight_sparsity = report.weight_sparsity;
  double dead = 0.0;
  std::size_t sets = 0;
  for (const auto& set : reg.groups()) {
    dead += set.off_diagonal_dead_fraction();
    ++sets;
  }
  out.dead_block_fraction = sets ? dead / static_cast<double>(sets) : 0.0;
  return out;
}

StrategyOutcome run_structure_level_variant(
    const nn::NetSpec& grouped_spec, const data::Dataset& train_set,
    const data::Dataset& test_set, const ExperimentConfig& cfg,
    const StrategyOutcome* baseline) {
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cfg.cores);
  util::Rng rng(cfg.seed);
  nn::Network net = nn::build_network(grouped_spec, rng);
  const train::TrainReport report =
      train::train_classifier(net, train_set, test_set, cfg.train);
  const auto traffic =
      core::traffic_dense(grouped_spec, topo, cfg.system.bytes_per_value);
  StrategyOutcome out = simulate_with_traffic(
      grouped_spec, traffic, cfg, baseline, sched::Strategy::kStructureLevel);
  out.scheme = grouped_spec.name;
  out.accuracy = report.test_accuracy;
  return out;
}

}  // namespace ls::sim
