#include "sim/system.hpp"

#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "check/check.hpp"
#include "core/partition.hpp"
#include "noc/sim_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace ls::sim {

namespace {

// Emits one inference's model-time timeline onto the sim-cycles trace
// process: per-layer NoC burst spans on a dedicated "noc" track (tid = P)
// and per-core compute spans on core tracks (tid = core). `cursor` is the
// serialized model time at which the layer starts.
void trace_layer_timeline(const LayerTimeline& tl,
                          const std::vector<std::uint64_t>& per_core_cycles,
                          std::uint64_t cursor, std::size_t P) {
  obs::Tracer& tr = obs::Tracer::instance();
  if (tl.blocking_comm_cycles > 0) {
    char args[128];
    std::snprintf(args, sizeof(args),
                  "{\"bytes\":%zu,\"flits\":%llu,\"comm_cycles\":%llu}",
                  tl.traffic_bytes,
                  static_cast<unsigned long long>(tl.noc_stats.total_flits),
                  static_cast<unsigned long long>(tl.comm_cycles));
    tr.complete(tl.layer_name + " (burst)", "noc.burst", cursor,
                tl.blocking_comm_cycles, obs::kSimPid, P, args);
  }
  const std::uint64_t compute_start = cursor + tl.blocking_comm_cycles;
  for (std::size_t c = 0; c < per_core_cycles.size(); ++c) {
    if (per_core_cycles[c] == 0) continue;
    tr.complete(tl.layer_name, "compute", compute_start, per_core_cycles[c],
                obs::kSimPid, c);
  }
}

// Per-layer always-on metrics (counters accumulate across runs, like any
// process-wide metrics registry).
void record_layer_metrics(const LayerTimeline& tl) {
  obs::Registry& reg = obs::Registry::instance();
  const std::string prefix = "sim.layer." + tl.layer_name;
  reg.counter(prefix + ".compute_cycles").inc(tl.compute_cycles);
  reg.counter(prefix + ".comm_cycles").inc(tl.blocking_comm_cycles);
  reg.counter(prefix + ".traffic_bytes").inc(tl.traffic_bytes);
}

}  // namespace

CmpSystem::CmpSystem(const SystemConfig& cfg)
    : cfg_(cfg), topo_(noc::MeshTopology::for_cores(cfg.cores)) {
  // Each streaming core gets an equal share of the memory channel.
  accel::AccelConfig per_core = cfg_.accel;
  per_core.dram_bytes_per_cycle =
      cfg_.chip_dram_bytes_per_cycle / static_cast<double>(cfg_.cores);
  core_model_ = accel::CoreModel(per_core);
}

InferenceResult CmpSystem::run_inference(
    const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
    const core::SparsityProfile* sparsity) const {
  const auto analysis = nn::analyze(spec);
  const std::size_t P = cfg_.cores;

  const bool tracing = obs::trace_enabled();
  obs::Span run_span;
  if (tracing) {
    run_span.begin("sim.run_inference(" + spec.name + ")", "sim");
    obs::Tracer& tr = obs::Tracer::instance();
    for (std::size_t c = 0; c < P; ++c) {
      tr.set_virtual_thread_name(obs::kSimPid, c,
                                 "core-" + std::to_string(c));
    }
    tr.set_virtual_thread_name(obs::kSimPid, P, "noc");
  }

  std::unordered_map<std::string, const core::TransitionTraffic*> by_layer;
  for (const auto& t : traffic.transitions) {
    by_layer.emplace(t.layer_name, &t);
  }

  noc::MeshNocSimulator noc_sim(topo_, cfg_.noc);

  // Per-layer bursts inject at cycle 0 of their own burst, so the NoC
  // simulations are independent: dispatch them onto the shared pool (each
  // through the memoizing burst cache unless disabled), then assemble the
  // timeline serially — the overlap ablation needs the previous layer's
  // compute time.
  struct LayerJob {
    const nn::LayerAnalysis* a = nullptr;
    const core::TransitionTraffic* traffic = nullptr;  // null: no burst
    noc::NocStats stats{};
  };
  std::vector<LayerJob> jobs;
  for (const nn::LayerAnalysis& a : analysis) {
    if (!a.is_compute()) continue;
    LayerJob job;
    job.a = &a;
    const auto it = by_layer.find(a.spec.name);
    if (it != by_layer.end() && !it->second->messages.empty()) {
      job.traffic = it->second;
    }
    jobs.push_back(job);
  }
  util::parallel_for(0, jobs.size(), [&](std::size_t i) {
    if (jobs[i].traffic == nullptr) return;
    jobs[i].stats =
        cfg_.noc_result_cache
            ? noc::NocRunCache::instance().run(noc_sim,
                                               jobs[i].traffic->messages)
            : noc_sim.run(jobs[i].traffic->messages);
  });

  InferenceResult result;
  std::uint64_t prev_compute = 0;
  std::uint64_t cursor = 0;  // serialized model time, for the trace
  std::vector<std::uint64_t> per_core_cycles(P, 0);
  for (const LayerJob& job : jobs) {
    const nn::LayerAnalysis& a = *job.a;

    LayerTimeline tl;
    tl.layer_name = a.spec.name;

    // --- Communication into this layer --------------------------------
    if (job.traffic != nullptr) {
      // The flit-level simulation and the analytic traffic model must
      // account for the same burst: the simulator's flit count is exactly
      // the packetization of the transition's messages, and the message
      // bytes sum to the transition's total. Every downstream number
      // (comm cycles, NoC energy, heatmaps) rides on this.
      if constexpr (check::kEnabled) {
        std::size_t expected_flits = 0;
        std::size_t message_bytes = 0;
        for (const noc::Message& m : job.traffic->messages) {
          message_bytes += m.bytes;
          if (m.src != m.dst && m.bytes > 0) {
            expected_flits += noc_sim.flits_for_bytes(m.bytes);
          }
        }
        LS_CHECK_MSG(message_bytes == job.traffic->total_bytes,
                     "traffic accounting into '%s': messages carry %zu "
                     "bytes but the transition claims %zu",
                     a.spec.name.c_str(), message_bytes,
                     job.traffic->total_bytes);
        LS_CHECK_MSG(job.stats.total_flits == expected_flits,
                     "traffic accounting into '%s': simulator drained %llu "
                     "flits but the traffic model injects %zu",
                     a.spec.name.c_str(),
                     static_cast<unsigned long long>(job.stats.total_flits),
                     expected_flits);
      }
      tl.noc_stats = job.stats;
      tl.comm_cycles = static_cast<std::uint64_t>(
          static_cast<double>(tl.noc_stats.completion_cycle) *
          cfg_.noc_clock_divider);
      tl.traffic_bytes = job.traffic->total_bytes;
      tl.noc_energy_pj =
          noc::energy_from_stats(tl.noc_stats, cfg_.noc_energy, P).total_pj();
    }
    tl.blocking_comm_cycles = tl.comm_cycles;
    if (cfg_.overlap_comm) {
      tl.blocking_comm_cycles =
          tl.comm_cycles > prev_compute ? tl.comm_cycles - prev_compute : 0;
    }

    // --- Compute on the P cores ----------------------------------------
    const std::size_t out_units = a.spec.kind == nn::LayerKind::kConv
                                      ? a.spec.out_channels
                                      : a.spec.out_features;
    const auto out_ranges = core::balanced_ranges(out_units, P);
    const std::size_t weight_bytes_total =
        a.weight_count * cfg_.bytes_per_value;
    const std::size_t in_bytes = a.in.numel() * cfg_.bytes_per_value;
    // Structured-sparsity discount: a sparsity-aware core executes only
    // the MACs of its live weight blocks, and streams only live weights.
    // Inputs/outputs are unaffected (activations stay dense), and so are
    // comm cycles — live traffic is already modeled by traffic_live.
    const core::LayerSparsity* layer_sparsity = nullptr;
    if (cfg_.sparse_cycle_model && sparsity != nullptr) {
      layer_sparsity = sparsity->find(a.spec.name);
    }
    std::uint64_t worst = 0;
    std::uint64_t macs_discounted = 0;
    per_core_cycles.assign(P, 0);
    for (std::size_t c = 0; c < P; ++c) {
      const double share = out_units
                               ? static_cast<double>(out_ranges[c].count()) /
                                     static_cast<double>(out_units)
                               : 0.0;
      if (share == 0.0) continue;
      const double live = layer_sparsity != nullptr &&
                                  c < layer_sparsity->live_fraction.size()
                              ? layer_sparsity->live_fraction[c]
                              : 1.0;
      accel::LayerPartitionWork work;
      const auto dense_macs = static_cast<std::uint64_t>(
          static_cast<double>(a.macs) * share + 0.5);
      work.macs = static_cast<std::uint64_t>(
          static_cast<double>(a.macs) * share * live + 0.5);
      macs_discounted += dense_macs - work.macs;
      work.weight_bytes = static_cast<std::uint64_t>(
          static_cast<double>(weight_bytes_total) * share * live + 0.5);
      work.input_bytes = in_bytes;  // every core reads the full input
      work.output_bytes = static_cast<std::uint64_t>(
          static_cast<double>(a.out.numel() * cfg_.bytes_per_value) * share +
          0.5);
      const accel::LayerCoreCost cost = core_model_.layer_cost(work);
      per_core_cycles[c] = cost.cycles();
      worst = std::max(worst, cost.cycles());
      tl.compute_energy_pj += cost.energy_pj;
    }
    if (macs_discounted > 0) {
      static auto& discounted =
          obs::Registry::instance().counter("sparse.sim.macs_discounted");
      discounted.inc(macs_discounted);
    }
    tl.compute_cycles = worst;
    prev_compute = worst;

    if (tracing) trace_layer_timeline(tl, per_core_cycles, cursor, P);
    record_layer_metrics(tl);
    if (!tl.noc_stats.per_link_flits.empty()) {
      obs::Registry::instance().accumulate_link_flits(
          topo_.cols(), topo_.rows(), tl.noc_stats.per_link_flits);
    }
    cursor += tl.blocking_comm_cycles + tl.compute_cycles;

    result.compute_cycles += tl.compute_cycles;
    result.comm_cycles += tl.blocking_comm_cycles;
    result.compute_energy_pj += tl.compute_energy_pj;
    result.noc_energy_pj += tl.noc_energy_pj;
    result.traffic_bytes += tl.traffic_bytes;
    result.layers.push_back(std::move(tl));
  }
  result.total_cycles = result.compute_cycles + result.comm_cycles;
  obs::Registry::instance().counter("sim.inferences").inc();
  obs::Registry::instance().counter("sim.total_cycles").inc(
      result.total_cycles);
  return result;
}

double speedup(const InferenceResult& baseline, const InferenceResult& v) {
  if (v.total_cycles == 0) throw std::invalid_argument("zero-cycle variant");
  return static_cast<double>(baseline.total_cycles) /
         static_cast<double>(v.total_cycles);
}

double comm_energy_reduction(const InferenceResult& baseline,
                             const InferenceResult& v) {
  if (baseline.noc_energy_pj <= 0.0) return 0.0;
  return 1.0 - v.noc_energy_pj / baseline.noc_energy_pj;
}

double traffic_rate(const InferenceResult& baseline,
                    const InferenceResult& v) {
  if (baseline.traffic_bytes == 0) return 0.0;
  return static_cast<double>(v.traffic_bytes) /
         static_cast<double>(baseline.traffic_bytes);
}

}  // namespace ls::sim
