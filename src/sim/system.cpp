#include "sim/system.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "check/check.hpp"
#include "core/partition.hpp"
#include "noc/sim_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/builders.hpp"
#include "sched/cost_model.hpp"
#include "sched/verify.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace ls::sim {

namespace {

// Emits one inference's model-time timeline onto the sim-cycles trace
// process: per-layer NoC burst spans on a dedicated "noc" track (tid = P)
// and per-core compute spans on core tracks (tid = core). `cursor` is the
// serialized model time at which the layer starts.
void trace_layer_timeline(const LayerTimeline& tl,
                          const std::vector<std::uint64_t>& per_core_cycles,
                          std::uint64_t cursor, std::size_t P) {
  obs::Tracer& tr = obs::Tracer::instance();
  if (tl.blocking_comm_cycles > 0) {
    char args[128];
    std::snprintf(args, sizeof(args),
                  "{\"bytes\":%zu,\"flits\":%llu,\"comm_cycles\":%llu}",
                  tl.traffic_bytes,
                  static_cast<unsigned long long>(tl.noc_stats.total_flits),
                  static_cast<unsigned long long>(tl.comm_cycles));
    tr.complete(tl.layer_name + " (burst)", "noc.burst", cursor,
                tl.blocking_comm_cycles, obs::kSimPid, P, args);
  }
  const std::uint64_t compute_start = cursor + tl.blocking_comm_cycles;
  for (std::size_t c = 0; c < per_core_cycles.size(); ++c) {
    if (per_core_cycles[c] == 0) continue;
    tr.complete(tl.layer_name, "compute", compute_start, per_core_cycles[c],
                obs::kSimPid, c);
  }
}

// Per-layer always-on metrics (counters accumulate across runs, like any
// process-wide metrics registry).
void record_layer_metrics(const LayerTimeline& tl) {
  obs::Registry& reg = obs::Registry::instance();
  const std::string prefix = "sim.layer." + tl.layer_name;
  reg.counter(prefix + ".compute_cycles").inc(tl.compute_cycles);
  reg.counter(prefix + ".comm_cycles").inc(tl.blocking_comm_cycles);
  reg.counter(prefix + ".traffic_bytes").inc(tl.traffic_bytes);
}

void name_sim_tracks(std::size_t P) {
  obs::Tracer& tr = obs::Tracer::instance();
  for (std::size_t c = 0; c < P; ++c) {
    tr.set_virtual_thread_name(obs::kSimPid, c, "core-" + std::to_string(c));
  }
  tr.set_virtual_thread_name(obs::kSimPid, P, "noc");
}

// The mesh every schedule event runs on is one chip's; chips must tile the
// core count exactly (chip-major core numbering has no remainder chip).
std::size_t cores_per_chip_checked(const SystemConfig& cfg) {
  if (cfg.chips == 0 || cfg.cores % cfg.chips != 0) {
    throw std::invalid_argument(
        "CmpSystem: " + std::to_string(cfg.chips) +
        " chips cannot tile " + std::to_string(cfg.cores) + " cores");
  }
  return cfg.cores / cfg.chips;
}

}  // namespace

CmpSystem::CmpSystem(const SystemConfig& cfg)
    : cfg_(cfg),
      topo_(noc::MeshTopology::for_cores(cores_per_chip_checked(cfg))),
      package_(topo_, cfg.chips, cfg.inter_chip) {
  // Each streaming core gets an equal share of its chip's memory channel
  // (every chip has its own — the whole machine's share when chips == 1).
  accel::AccelConfig per_core = cfg_.accel;
  per_core.dram_bytes_per_cycle =
      cfg_.chip_dram_bytes_per_cycle / static_cast<double>(topo_.num_cores());
  core_model_ = accel::CoreModel(per_core);
}

sched::Schedule CmpSystem::build_schedule(
    const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
    const core::SparsityProfile* sparsity) const {
  sched::BuildOptions opts;
  opts.cores = topo_.num_cores();  // per chip == cfg_.cores when chips == 1
  opts.bytes_per_value = cfg_.bytes_per_value;
  opts.overlap_comm = cfg_.overlap_comm;
  opts.sparse_cycle_model = cfg_.sparse_cycle_model;
  const sched::Strategy strategy = sparsity != nullptr
                                       ? sched::Strategy::kSparsified
                                       : sched::Strategy::kTraditional;
  if (cfg_.chips > 1) {
    return sched::lower_pipelined(spec, traffic, opts, cfg_.chips, sparsity,
                                  strategy);
  }
  return sched::lower(spec, traffic, opts, sparsity, strategy);
}

InferenceResult CmpSystem::run_inference(
    const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
    const core::SparsityProfile* sparsity) const {
  const sched::Schedule schedule = build_schedule(spec, traffic, sparsity);
  // The builder must have lowered every compute layer of the spec, in
  // order — the IR detour cannot drop work.
  sched::validate_against(schedule, spec);
  return execute(schedule);
}

InferenceResult CmpSystem::execute(const sched::Schedule& schedule,
                                   std::uint64_t stream_epoch) const {
  // Front door: statically verify before simulating a single flit. Unlike
  // sched::validate (LS_CHECK, checked builds only), this rejects
  // malformed schedules — stale tuned caches, hand-edited dumps — with a
  // structured diagnostic in every build.
  if (schedule.cores != cfg_.cores) {
    throw std::invalid_argument(
        "schedule '" + schedule.net_name + "' targets " +
        std::to_string(schedule.cores) + " cores but this system has " +
        std::to_string(cfg_.cores));
  }
  if (schedule.chips != cfg_.chips) {
    throw std::invalid_argument(
        "schedule '" + schedule.net_name + "' targets " +
        std::to_string(schedule.chips) + " chips but this system has " +
        std::to_string(cfg_.chips));
  }
  sched::VerifyOptions vopts;
  vopts.accel = core_model_.config();
  vopts.noc = cfg_.noc;
  if (const sched::VerifyReport report = sched::verify(schedule, vopts);
      !report.ok()) {
    throw std::invalid_argument("schedule '" + schedule.net_name +
                                "' failed static verification:\n" +
                                report.to_string());
  }
  sched::validate(schedule);
  const std::size_t P = cfg_.cores;

  const bool tracing = obs::trace_enabled();
  obs::Span run_span;
  if (tracing) {
    run_span.begin("sim.execute(" + schedule.net_name + ")", "sim");
    name_sim_tracks(P);
  }

  noc::MeshNocSimulator noc_sim(topo_, cfg_.noc);

  // Per-layer bursts inject at cycle 0 of their own burst, so the NoC
  // simulations are independent: dispatch them onto the shared pool (each
  // through the memoizing burst cache unless disabled), then assemble the
  // timeline serially — the overlap ablation needs the previous layer's
  // compute time.
  // Inter-chip transfers never touch the flit simulator — they are priced
  // analytically on the serial link during assembly below. Multi-chip
  // on-chip bursts are localized onto their chip's mesh coordinates first;
  // single-chip schedules pass the event's message vector through
  // untouched, so burst-cache keys (and stats) stay bit-identical to the
  // flat machine.
  std::vector<noc::NocStats> burst_stats(schedule.events.size());
  std::vector<std::vector<noc::Message>> localized;
  if (schedule.chips > 1) {
    localized.resize(schedule.events.size());
    const std::size_t cpc = topo_.num_cores();
    for (std::size_t i = 0; i < schedule.events.size(); ++i) {
      const sched::Event& e = schedule.events[i];
      if (e.kind != sched::EventKind::kComm || e.inter_chip) continue;
      const std::size_t base = e.chip * cpc;
      localized[i].reserve(e.messages.size());
      for (const noc::Message& m : e.messages) {
        localized[i].push_back({m.src - base, m.dst - base, m.bytes, 0});
      }
    }
  }
  util::parallel_for(0, schedule.events.size(), [&](std::size_t i) {
    const sched::Event& e = schedule.events[i];
    if (e.kind != sched::EventKind::kComm || e.inter_chip) return;
    const auto& msgs = schedule.chips > 1 ? localized[i] : e.messages;
    burst_stats[i] =
        cfg_.noc_result_cache
            ? noc::NocRunCache::instance().run(noc_sim, msgs,
                                               200'000'000ull, stream_epoch)
            : noc_sim.run(msgs);
  });

  InferenceResult result;
  std::uint64_t prev_compute = 0;
  std::uint64_t cursor = 0;  // serialized model time, for the trace
  std::vector<std::uint64_t> per_core_cycles(P, 0);
  const sched::Event* pending_comm = nullptr;
  const noc::NocStats* pending_stats = nullptr;
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const sched::Event& e = schedule.events[i];
    if (e.kind == sched::EventKind::kComm) {
      pending_comm = &e;
      pending_stats = &burst_stats[i];
      continue;
    }

    LayerTimeline tl;
    tl.layer_name = e.layer_name;

    // --- Communication into this layer --------------------------------
    if (pending_comm != nullptr && pending_comm->inter_chip) {
      // Gateway-to-gateway transfer: priced analytically on the boundary
      // link (its own clock domain — the NoC divider does not apply) with
      // per-byte wire energy; no flit simulation.
      tl.comm_cycles = sched::inter_chip_transfer_cycles(
          cfg_.inter_chip, pending_comm->traffic_bytes);
      tl.traffic_bytes = pending_comm->traffic_bytes;
      tl.noc_energy_pj = static_cast<double>(pending_comm->traffic_bytes) *
                         cfg_.inter_chip.energy_pj_per_byte;
    } else if (pending_comm != nullptr) {
      // The flit-level simulation and the schedule's burst must account
      // for the same traffic: the simulator's flit count is exactly the
      // packetization of the comm event's messages (validate() already
      // tied message bytes to the event's claimed total). Every downstream
      // number (comm cycles, NoC energy, heatmaps) rides on this.
      if constexpr (check::kEnabled) {
        std::size_t expected_flits = 0;
        for (const noc::Message& m : pending_comm->messages) {
          if (m.src != m.dst && m.bytes > 0) {
            expected_flits += noc_sim.flits_for_bytes(m.bytes);
          }
        }
        LS_CHECK_MSG(pending_stats->total_flits == expected_flits,
                     "traffic accounting into '%s': simulator drained %llu "
                     "flits but the schedule's burst packetizes to %zu",
                     e.layer_name.c_str(),
                     static_cast<unsigned long long>(
                         pending_stats->total_flits),
                     expected_flits);
      }
      tl.noc_stats = *pending_stats;
      tl.comm_cycles = static_cast<std::uint64_t>(
          static_cast<double>(tl.noc_stats.completion_cycle) *
          cfg_.noc_clock_divider);
      tl.traffic_bytes = pending_comm->traffic_bytes;
      tl.noc_energy_pj =
          noc::energy_from_stats(tl.noc_stats, cfg_.noc_energy,
                                 topo_.num_cores())  // routers on one chip
              .total_pj();
    }
    tl.blocking_comm_cycles = tl.comm_cycles;
    if (pending_comm != nullptr && pending_comm->overlap_with_prev_compute) {
      tl.blocking_comm_cycles =
          tl.comm_cycles > prev_compute ? tl.comm_cycles - prev_compute : 0;
    }
    pending_comm = nullptr;
    pending_stats = nullptr;

    // --- Compute on the P cores ----------------------------------------
    const accel::PartitionCost cost =
        core_model_.partition_cost(e.per_core_work, &per_core_cycles);
    tl.compute_energy_pj = cost.energy_pj;
    tl.compute_cycles = cost.worst_cycles;
    prev_compute = cost.worst_cycles;
    if (e.macs_discounted > 0) {
      static auto& discounted =
          obs::Registry::instance().counter("sparse.sim.macs_discounted");
      discounted.inc(e.macs_discounted);
    }

    if (tracing) trace_layer_timeline(tl, per_core_cycles, cursor, P);
    record_layer_metrics(tl);
    if (!tl.noc_stats.per_link_flits.empty()) {
      obs::Registry::instance().accumulate_link_flits(
          topo_.cols(), topo_.rows(), tl.noc_stats.per_link_flits);
    }
    cursor += tl.blocking_comm_cycles + tl.compute_cycles;

    result.compute_cycles += tl.compute_cycles;
    result.comm_cycles += tl.blocking_comm_cycles;
    result.compute_energy_pj += tl.compute_energy_pj;
    result.noc_energy_pj += tl.noc_energy_pj;
    result.traffic_bytes += tl.traffic_bytes;
    result.layers.push_back(std::move(tl));
  }
  result.total_cycles = result.compute_cycles + result.comm_cycles;
  obs::Registry::instance().counter("sim.inferences").inc();
  obs::Registry::instance().counter("sim.total_cycles").inc(
      result.total_cycles);
  return result;
}

StreamResult CmpSystem::run_stream(const sched::Schedule& schedule,
                                   std::size_t requests,
                                   std::uint64_t stream_epoch,
                                   StreamTimeline* timeline) const {
  StreamResult out;
  out.requests = requests;
  out.single_pass = execute(schedule, stream_epoch);
  if (timeline != nullptr) timeline->items.clear();
  if (requests == 0) return out;

  const bool tracing = obs::trace_enabled();
  obs::Span run_span;
  if (tracing) {
    run_span.begin("sim.run_stream(" + schedule.net_name + ")", "sim");
    name_sim_tracks(cfg_.cores);
  }

  // Per-event durations, read off the single-pass timeline. A comm event is
  // always immediately followed by its compute event (validate()), so the
  // layer index advances on computes and a comm event reads the *next*
  // layer's drain time. Streaming charges the full drain (comm_cycles, not
  // the single-pass overlap-ablated blocking time): overlap here is
  // structural, decided by the resource model below.
  const std::size_t E = schedule.events.size();
  std::vector<std::uint64_t> dur(E, 0);
  std::vector<const sched::Event*> events(E);
  {
    std::size_t layer = 0;
    for (std::size_t i = 0; i < E; ++i) {
      const sched::Event& e = schedule.events[i];
      events[i] = &e;
      if (e.kind == sched::EventKind::kComm) {
        dur[i] = out.single_pass.layers[layer].comm_cycles;
      } else {
        dur[i] = out.single_pass.layers[layer].compute_cycles;
        ++layer;
      }
    }
  }

  // Per-chip-resource list scheduling: each chip's core gang runs one
  // compute event at a time, each chip's NoC one burst at a time, and each
  // chip boundary's serial link one inter-chip transfer at a time (one
  // gang + one NoC total on a single-chip system — the historical
  // two-resource model, decision for decision). Work-conserving greedy:
  // always start the pending event with the earliest feasible start (deps
  // done and its resource free); lower request index breaks ties, so older
  // requests drain first. Each request has exactly one pending event (its
  // events chain), so the candidate set is tiny.
  const std::size_t C = schedule.chips;
  std::vector<std::vector<std::uint64_t>> end(
      requests, std::vector<std::uint64_t>(E, 0));
  std::vector<std::size_t> next(requests, 0);
  std::vector<std::uint64_t> gang_free(C, 0);
  std::vector<std::uint64_t> noc_free(C, 0);
  std::vector<std::uint64_t> link_free(C > 1 ? C - 1 : 0, 0);
  std::uint64_t core_busy = 0;
  std::uint64_t noc_busy = 0;
  std::uint64_t link_busy = 0;
  std::uint64_t makespan = 0;
  // Per-core compute spans for the stream trace (recomputed once per
  // event; the executor does not retain them).
  std::vector<std::vector<std::uint64_t>> per_core_cycles;
  if (tracing) {
    per_core_cycles.resize(E);
    for (std::size_t i = 0; i < E; ++i) {
      if (events[i]->kind == sched::EventKind::kCompute) {
        core_model_.partition_cost(events[i]->per_core_work,
                                   &per_core_cycles[i]);
      }
    }
  }
  if (timeline != nullptr) timeline->items.reserve(requests * E);
  // Flow-arrow bookkeeping: the last burst span dispatched per request, so
  // the compute span it feeds can be linked to it across tracks.
  struct PendingFlow {
    bool armed = false;
    std::uint64_t start = 0;
    std::uint64_t finish = 0;
  };
  std::vector<PendingFlow> pending_flow(tracing ? requests : 0);
  std::size_t inflight = 0;   // requests started but not finished
  std::size_t remaining = requests * E;
  while (remaining > 0) {
    std::size_t best_r = requests;
    std::uint64_t best_start = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t r = 0; r < requests; ++r) {
      if (next[r] == E) continue;
      const sched::Event& e = *events[next[r]];
      std::uint64_t ready = 0;
      for (const sched::EventId dep : e.deps) {
        ready = std::max(ready, end[r][dep]);
      }
      const std::uint64_t res_free =
          e.kind == sched::EventKind::kComm
              ? (e.inter_chip ? link_free[e.chip - 1] : noc_free[e.chip])
              : gang_free[e.chip];
      const std::uint64_t start = std::max(ready, res_free);
      if (start < best_start) {
        best_start = start;
        best_r = r;
      }
    }
    const std::size_t id = next[best_r];
    const sched::Event& e = *events[id];
    const std::uint64_t finish = best_start + dur[id];
    end[best_r][id] = finish;
    if (timeline != nullptr) {
      timeline->items.push_back({best_r, id, best_start, finish});
    }
    if (tracing && id == 0) {
      ++inflight;
      obs::Tracer::instance().counter("stream.inflight", "stream", best_start,
                                      static_cast<double>(inflight),
                                      obs::kSimPid);
    }
    if (e.kind == sched::EventKind::kComm) {
      if (e.inter_chip) {
        link_free[e.chip - 1] = finish;
        link_busy += dur[id];
      } else {
        noc_free[e.chip] = finish;
        noc_busy += dur[id];
      }
      if (tracing && dur[id] > 0) {
        char args[64];
        std::snprintf(args, sizeof(args), "{\"request\":%zu}", best_r);
        obs::Tracer::instance().complete(
            e.layer_name + " (burst r" + std::to_string(best_r) + ")",
            "stream.burst", best_start, dur[id], obs::kSimPid, cfg_.cores,
            args);
        pending_flow[best_r] = {true, best_start, finish};
      }
    } else {
      gang_free[e.chip] = finish;
      core_busy += dur[id];
      if (tracing) {
        char args[64];
        std::snprintf(args, sizeof(args), "{\"request\":%zu}", best_r);
        std::size_t first_busy_core = cfg_.cores;
        for (std::size_t c = 0; c < per_core_cycles[id].size(); ++c) {
          if (per_core_cycles[id][c] == 0) continue;
          if (first_busy_core == cfg_.cores) first_busy_core = c;
          obs::Tracer::instance().complete(
              e.layer_name + " r" + std::to_string(best_r), "stream.compute",
              best_start, per_core_cycles[id][c], obs::kSimPid, c, args);
        }
        // Flow arrow from the feeding burst span (NoC track) into this
        // compute span (first busy core track): the request's data path
        // stays followable across tracks in the Perfetto UI.
        PendingFlow& pf = pending_flow[best_r];
        if (pf.armed && dur[id] > 0 && first_busy_core < cfg_.cores) {
          const std::uint64_t flow_id =
              static_cast<std::uint64_t>(best_r) * E + id;
          const std::string flow_name = "stream.req" + std::to_string(best_r);
          obs::Tracer& tr = obs::Tracer::instance();
          tr.flow(true, flow_name, "stream",
                  pf.finish > pf.start ? pf.finish - 1 : pf.start, flow_id,
                  obs::kSimPid, cfg_.cores);
          tr.flow(false, flow_name, "stream", best_start, flow_id,
                  obs::kSimPid, first_busy_core);
        }
        pf.armed = false;
      }
    }
    makespan = std::max(makespan, finish);
    ++next[best_r];
    --remaining;
    if (tracing && next[best_r] == E) {
      --inflight;
      obs::Tracer::instance().counter("stream.inflight", "stream", finish,
                                      static_cast<double>(inflight),
                                      obs::kSimPid);
    }
  }

  out.makespan_cycles = makespan;
  out.request_finish_cycle.resize(requests);
  for (std::size_t r = 0; r < requests; ++r) {
    out.request_finish_cycle[r] = E > 0 ? end[r][E - 1] : 0;
  }
  out.fill_cycles = out.request_finish_cycle.empty()
                        ? 0
                        : out.request_finish_cycle.front();
  if (makespan > 0) {
    out.throughput_per_mcycle =
        static_cast<double>(requests) * 1e6 / static_cast<double>(makespan);
    // Multi-chip occupancies average over the C gangs / C NoCs / C-1
    // boundary links; C == 1 reduces to the historical single-resource
    // busy fractions exactly.
    out.compute_occupancy = static_cast<double>(core_busy) /
                            (static_cast<double>(makespan) *
                             static_cast<double>(C));
    out.noc_occupancy = static_cast<double>(noc_busy) /
                        (static_cast<double>(makespan) *
                         static_cast<double>(C));
    if (C > 1) {
      out.inter_chip_occupancy = static_cast<double>(link_busy) /
                                 (static_cast<double>(makespan) *
                                  static_cast<double>(C - 1));
    }
    // Back-to-back reference: n serialized non-overlapped passes (full
    // drain charged per layer, which is what core_busy + noc_busy sum to
    // for one request).
    std::uint64_t one_pass = 0;
    for (const LayerTimeline& tl : out.single_pass.layers) {
      one_pass += tl.compute_cycles + tl.comm_cycles;
    }
    out.speedup_vs_back_to_back =
        static_cast<double>(requests) * static_cast<double>(one_pass) /
        static_cast<double>(makespan);
  }

  obs::Registry& reg = obs::Registry::instance();
  // Counters are process-lifetime monotonic totals across every run_stream
  // call; the `stream.last_*` gauges hold this run's values (successive
  // runs in one process used to sum into misleading per-run "totals").
  reg.counter("stream.requests").inc(requests);
  reg.counter("stream.makespan_cycles").inc(makespan);
  reg.counter("stream.core_busy_cycles").inc(core_busy);
  reg.counter("stream.noc_busy_cycles").inc(noc_busy);
  reg.counter("stream.inter_chip_busy_cycles").inc(link_busy);
  reg.gauge("stream.last_requests").set(static_cast<double>(requests));
  reg.gauge("stream.last_makespan_cycles").set(static_cast<double>(makespan));
  reg.gauge("stream.last_core_busy_cycles")
      .set(static_cast<double>(core_busy));
  reg.gauge("stream.last_noc_busy_cycles").set(static_cast<double>(noc_busy));
  reg.gauge("stream.throughput_per_mcycle").set(out.throughput_per_mcycle);
  reg.gauge("stream.compute_occupancy").set(out.compute_occupancy);
  reg.gauge("stream.noc_occupancy").set(out.noc_occupancy);
  reg.gauge("stream.inter_chip_occupancy").set(out.inter_chip_occupancy);
  if (!out.request_finish_cycle.empty()) {
    std::vector<double> latencies;
    latencies.reserve(requests);
    obs::HistogramMetric& lat_hist =
        reg.histogram("stream.request_latency_cycles", 0.0,
                      static_cast<double>(std::max<std::uint64_t>(makespan, 1)),
                      64);
    for (const std::uint64_t fin : out.request_finish_cycle) {
      latencies.push_back(static_cast<double>(fin));
      lat_hist.observe(static_cast<double>(fin));
    }
    // Exact (order-statistic) per-run percentiles; the histogram above is
    // the process-lifetime binned view.
    reg.gauge("stream.latency_p50_cycles")
        .set(util::percentile(latencies, 50.0));
    reg.gauge("stream.latency_p95_cycles")
        .set(util::percentile(latencies, 95.0));
    reg.gauge("stream.latency_p99_cycles")
        .set(util::percentile(latencies, 99.0));
  }
  return out;
}

double speedup(const InferenceResult& baseline, const InferenceResult& v) {
  if (v.total_cycles == 0) {
    LS_LOG_WARN("speedup: variant ran for 0 cycles — returning 0");
    return 0.0;
  }
  return static_cast<double>(baseline.total_cycles) /
         static_cast<double>(v.total_cycles);
}

double comm_energy_reduction(const InferenceResult& baseline,
                             const InferenceResult& v) {
  if (baseline.noc_energy_pj <= 0.0) {
    LS_LOG_WARN("comm_energy_reduction: baseline NoC energy is 0 — "
                "returning 0");
    return 0.0;
  }
  return 1.0 - v.noc_energy_pj / baseline.noc_energy_pj;
}

double traffic_rate(const InferenceResult& baseline,
                    const InferenceResult& v) {
  if (baseline.traffic_bytes == 0) {
    LS_LOG_WARN("traffic_rate: baseline moved 0 bytes — returning 0");
    return 0.0;
  }
  return static_cast<double>(v.traffic_bytes) /
         static_cast<double>(baseline.traffic_bytes);
}

namespace testing {

InferenceResult reference_run_inference(const SystemConfig& cfg,
                                        const nn::NetSpec& spec,
                                        const core::InferenceTraffic& traffic,
                                        const core::SparsityProfile* sparsity) {
  const auto analysis = nn::analyze(spec);
  const std::size_t P = cfg.cores;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(P);
  accel::AccelConfig per_core = cfg.accel;
  per_core.dram_bytes_per_cycle =
      cfg.chip_dram_bytes_per_cycle / static_cast<double>(P);
  const accel::CoreModel core_model(per_core);

  std::unordered_map<std::string, const core::TransitionTraffic*> by_layer;
  for (const auto& t : traffic.transitions) {
    by_layer.emplace(t.layer_name, &t);
  }

  noc::MeshNocSimulator noc_sim(topo, cfg.noc);

  struct LayerJob {
    const nn::LayerAnalysis* a = nullptr;
    const core::TransitionTraffic* traffic = nullptr;  // null: no burst
    noc::NocStats stats{};
  };
  std::vector<LayerJob> jobs;
  for (const nn::LayerAnalysis& a : analysis) {
    if (!a.is_compute()) continue;
    LayerJob job;
    job.a = &a;
    const auto it = by_layer.find(a.spec.name);
    if (it != by_layer.end() && !it->second->messages.empty()) {
      job.traffic = it->second;
    }
    jobs.push_back(job);
  }
  util::parallel_for(0, jobs.size(), [&](std::size_t i) {
    if (jobs[i].traffic == nullptr) return;
    jobs[i].stats =
        cfg.noc_result_cache
            ? noc::NocRunCache::instance().run(noc_sim,
                                               jobs[i].traffic->messages)
            : noc_sim.run(jobs[i].traffic->messages);
  });

  InferenceResult result;
  std::uint64_t prev_compute = 0;
  for (const LayerJob& job : jobs) {
    const nn::LayerAnalysis& a = *job.a;

    LayerTimeline tl;
    tl.layer_name = a.spec.name;

    if (job.traffic != nullptr) {
      tl.noc_stats = job.stats;
      tl.comm_cycles = static_cast<std::uint64_t>(
          static_cast<double>(tl.noc_stats.completion_cycle) *
          cfg.noc_clock_divider);
      tl.traffic_bytes = job.traffic->total_bytes;
      tl.noc_energy_pj =
          noc::energy_from_stats(tl.noc_stats, cfg.noc_energy, P).total_pj();
    }
    tl.blocking_comm_cycles = tl.comm_cycles;
    if (cfg.overlap_comm) {
      tl.blocking_comm_cycles =
          tl.comm_cycles > prev_compute ? tl.comm_cycles - prev_compute : 0;
    }

    const std::size_t out_units = a.spec.kind == nn::LayerKind::kConv
                                      ? a.spec.out_channels
                                      : a.spec.out_features;
    const auto out_ranges = core::balanced_ranges(out_units, P);
    const std::size_t weight_bytes_total =
        a.weight_count * cfg.bytes_per_value;
    const std::size_t in_bytes = a.in.numel() * cfg.bytes_per_value;
    const core::LayerSparsity* layer_sparsity = nullptr;
    if (cfg.sparse_cycle_model && sparsity != nullptr) {
      layer_sparsity = sparsity->find(a.spec.name);
    }
    std::uint64_t worst = 0;
    for (std::size_t c = 0; c < P; ++c) {
      const double share = out_units
                               ? static_cast<double>(out_ranges[c].count()) /
                                     static_cast<double>(out_units)
                               : 0.0;
      if (share == 0.0) continue;
      const double live = layer_sparsity != nullptr &&
                                  c < layer_sparsity->live_fraction.size()
                              ? layer_sparsity->live_fraction[c]
                              : 1.0;
      accel::LayerPartitionWork work;
      work.macs = static_cast<std::uint64_t>(
          static_cast<double>(a.macs) * share * live + 0.5);
      work.weight_bytes = static_cast<std::uint64_t>(
          static_cast<double>(weight_bytes_total) * share * live + 0.5);
      work.input_bytes = in_bytes;  // every core reads the full input
      work.output_bytes = static_cast<std::uint64_t>(
          static_cast<double>(a.out.numel() * cfg.bytes_per_value) * share +
          0.5);
      const accel::LayerCoreCost cost = core_model.layer_cost(work);
      worst = std::max(worst, cost.cycles());
      tl.compute_energy_pj += cost.energy_pj;
    }
    tl.compute_cycles = worst;
    prev_compute = worst;

    result.compute_cycles += tl.compute_cycles;
    result.comm_cycles += tl.blocking_comm_cycles;
    result.compute_energy_pj += tl.compute_energy_pj;
    result.noc_energy_pj += tl.noc_energy_pj;
    result.traffic_bytes += tl.traffic_bytes;
    result.layers.push_back(std::move(tl));
  }
  result.total_cycles = result.compute_cycles + result.comm_cycles;
  return result;
}

}  // namespace testing

}  // namespace ls::sim
