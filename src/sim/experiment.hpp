#pragma once
// End-to-end experiment pipelines shared by the bench binaries.
//
// * Sparsified pipeline (TABLE IV / VI): train the same architecture three
//   times — dense baseline, SS (uniform group-Lasso), SS_Mask (distance-
//   weighted group-Lasso) — then extract live traffic from the trained
//   weights and run the CMP simulation of one inference for each. Reported
//   exactly like the paper: accuracy, NoC traffic rate, system speedup,
//   NoC energy reduction (all relative to the dense baseline under
//   traditional parallelization).
//
// * Structure-level pipeline (TABLE III / V, Fig. 7/8): train grouped
//   variants of an architecture and compare their simulated inference
//   against the ungrouped (n = 1) baseline.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/model_zoo.hpp"
#include "sim/system.hpp"
#include "train/trainer.hpp"

namespace ls::sim {

struct ExperimentConfig {
  std::size_t cores = 16;
  train::TrainConfig train{};
  double lambda_ss = 2e-3;    ///< group-Lasso strength for SS
  double lambda_mask = 2e-3;  ///< base strength for SS_Mask (mask scales it)
  double mask_exponent = 1.0;
  core::Granularity granularity = core::Granularity::kFeatureMap;
  SystemConfig system{};
  std::uint64_t seed = 42;
  bool verbose = false;
};

struct StrategyOutcome {
  std::string scheme;  ///< "Baseline", "SS", "SS_Mask", "n=16", ...
  double accuracy = 0.0;
  double traffic_rate = 1.0;
  double speedup = 1.0;
  double comm_energy_reduction = 0.0;
  double total_energy_reduction = 0.0;
  double dead_block_fraction = 0.0;
  double weight_sparsity = 0.0;
  /// Byte-weighted mean hop distance of the surviving NoC traffic. The
  /// SS_Mask mechanism shows up here directly: its residual traffic flows
  /// between nearby cores ("one or two hops away", §V.A.2).
  double mean_traffic_hops = 0.0;
  InferenceResult result{};
};

/// Builds the matching synthetic dataset for a spec (by its dataset tag and
/// input shape).
data::Dataset dataset_for(const nn::NetSpec& spec, std::size_t samples,
                          std::uint64_t seed);

/// TABLE IV / VI pipeline: returns {Baseline, SS, SS_Mask} outcomes.
std::vector<StrategyOutcome> run_sparsified_experiment(
    const nn::NetSpec& spec, const data::Dataset& train_set,
    const data::Dataset& test_set, const ExperimentConfig& cfg);

/// TABLE III / V pipeline: trains `spec` with conv grouping factor n on its
/// default targets (all conv layers but the first) and simulates it;
/// `baseline` must be the n=1 outcome of the same pipeline (pass nullptr
/// when computing the baseline itself).
StrategyOutcome run_structure_level_variant(
    const nn::NetSpec& grouped_spec, const data::Dataset& train_set,
    const data::Dataset& test_set, const ExperimentConfig& cfg,
    const StrategyOutcome* baseline);

/// Extension: hybrid of the paper's two techniques. Trains `grouped_spec`
/// (whose grouped conv layers are communication-free by construction)
/// *with* distance-masked group-Lasso on the remaining dense layers, so
/// the FC/ungrouped transitions sparsify too. Traffic comes from the
/// trained weights (traffic_live).
StrategyOutcome run_hybrid_variant(const nn::NetSpec& grouped_spec,
                                   const data::Dataset& train_set,
                                   const data::Dataset& test_set,
                                   const ExperimentConfig& cfg,
                                   const StrategyOutcome* baseline);

}  // namespace ls::sim
