#include "sim/pipeline_model.hpp"

#include <stdexcept>

namespace ls::sim {

PipelineResult run_pipeline(const nn::NetSpec& spec,
                            const core::PipelineAssignment& assignment,
                            const SystemConfig& cfg) {
  if (assignment.stages.empty()) {
    throw std::invalid_argument("empty pipeline assignment");
  }
  if (assignment.stages.size() > cfg.cores) {
    throw std::invalid_argument("more stages than cores");
  }
  const auto analysis = nn::analyze(spec);
  std::vector<nn::LayerAnalysis> compute_layers;
  for (const auto& a : analysis) {
    if (a.is_compute()) compute_layers.push_back(a);
  }

  const accel::CoreModel core_model(cfg.accel);
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cfg.cores);
  const noc::MeshNocSimulator noc_sim(topo, cfg.noc);

  PipelineResult result;
  result.load_imbalance = assignment.imbalance();

  for (std::size_t s = 0; s < assignment.stages.size(); ++s) {
    const core::PipelineStage& stage = assignment.stages[s];
    // The whole stage runs on one core: per-layer costs add up.
    std::uint64_t compute = 0;
    for (std::size_t li = stage.begin; li < stage.end; ++li) {
      const nn::LayerAnalysis& a = compute_layers.at(li);
      accel::LayerPartitionWork work;
      work.macs = a.macs;
      work.weight_bytes = a.weight_count * cfg.bytes_per_value;
      work.input_bytes = a.in.numel() * cfg.bytes_per_value;
      work.output_bytes = a.out.numel() * cfg.bytes_per_value;
      compute += core_model.layer_cost(work).cycles();
    }
    result.stage_compute_cycles.push_back(compute);

    std::uint64_t transfer = 0;
    if (s + 1 < assignment.stages.size() && stage.boundary_bytes > 0) {
      const noc::Message m{s, s + 1, stage.boundary_bytes, 0};
      transfer = static_cast<std::uint64_t>(
          static_cast<double>(noc_sim.run({m}).completion_cycle) *
          cfg.noc_clock_divider);
    }
    result.stage_transfer_cycles.push_back(transfer);

    result.single_pass_cycles += compute + transfer;
    result.initiation_interval =
        std::max(result.initiation_interval, compute + transfer);
  }
  return result;
}

}  // namespace ls::sim
