#pragma once
// System model for inter-layer pipeline parallelism (core/pipeline.hpp):
// each stage runs whole layers on one core; activations hop to the next
// stage's core over the NoC. Reported against intra-layer parallelism by
// bench_pipeline_vs_intra, reproducing the paper's §II.B argument.

#include "core/pipeline.hpp"
#include "sim/system.hpp"

namespace ls::sim {

struct PipelineResult {
  /// One inference through the pipe: stages run strictly one after
  /// another (no intra-inference overlap is possible for a single pass).
  std::uint64_t single_pass_cycles = 0;
  /// Steady-state initiation interval with many inferences in flight:
  /// gated by the slowest stage (compute or its outbound transfer).
  std::uint64_t initiation_interval = 0;
  double load_imbalance = 1.0;  ///< max/mean stage MACs
  std::vector<std::uint64_t> stage_compute_cycles;
  std::vector<std::uint64_t> stage_transfer_cycles;
};

/// Evaluates a pipeline assignment of `spec` on the system configuration.
/// Stage s is placed on core s of the mesh (consecutive stages are 1-2
/// hops apart under the row-major layout).
PipelineResult run_pipeline(const nn::NetSpec& spec,
                            const core::PipelineAssignment& assignment,
                            const SystemConfig& cfg);

}  // namespace ls::sim
