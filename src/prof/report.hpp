#pragma once
// profile.json assembly: renders the attribution/model-error/latency/tuner
// artifacts into one JSON document (util::JsonWriter, so the output parses
// back with util::parse_json — the profile subcommand asserts that).

#include <cstddef>
#include <string>

#include "prof/attribution.hpp"
#include "prof/model_error.hpp"
#include "sim/system.hpp"
#include "tune/tuner.hpp"

namespace ls::prof {

/// Everything the profile report can carry. `single_pass` is required;
/// every other section is emitted only when its pointer is non-null.
struct ProfileInputs {
  std::string net_name;
  std::size_t cores = 0;
  std::size_t requests = 0;
  const sim::InferenceResult* single_pass = nullptr;
  const ModelErrorReport* model_error = nullptr;
  const StreamAttribution* stream = nullptr;
  const StreamLatency* latency = nullptr;
  const tune::TuneOutcome* tune_outcome = nullptr;
  const tune::TuneTelemetry* tune_telemetry = nullptr;
};

/// Renders the report. Tuner trajectories are thinned to accepted moves
/// (plus per-restart totals) — rejected moves are counted, not listed.
std::string build_profile_json(const ProfileInputs& in);

}  // namespace ls::prof
