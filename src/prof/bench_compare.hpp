#pragma once
// Structural diff of two bench-report JSON documents (the committed
// BENCH_*.json baselines vs a fresh run) with per-metric regression
// thresholds — the library behind tools/bench_diff.
//
// Both documents are walked in lockstep. Numeric leaves become
// MetricDiffs; whether a change is a regression depends on the metric's
// direction, inferred from the leaf key (speedups and throughputs should
// not drop, latencies and cycle counts should not rise, configuration
// echoes like "cores" are informational). Structural differences — a key
// present on one side, arrays of different length, a type change — are
// reported as mismatches, not silently skipped: a bench that stopped
// emitting a metric must not pass the gate by omission.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/json_in.hpp"

namespace ls::prof {

enum class MetricDirection {
  kLowerBetter,   ///< cycle counts, milliseconds, errors
  kHigherBetter,  ///< speedups, throughput, occupancy
  kInfo,          ///< configuration echoes; never a regression
};

/// Direction heuristic for a leaf key ("gemm_fwd_ms", "speedup_sim", ...).
MetricDirection metric_direction(std::string_view leaf_key);

struct MetricDiff {
  std::string path;  ///< dotted path, array elements as [i]
  std::string leaf;  ///< the leaf key the direction came from
  double base = 0.0;
  double current = 0.0;
  /// (current - base) / |base|; absolute delta when base == 0.
  double rel_change = 0.0;
  MetricDirection direction = MetricDirection::kInfo;
  bool regressed = false;
};

struct DiffOptions {
  /// A directional metric regresses when it moves the wrong way by more
  /// than this relative fraction.
  double default_threshold = 0.05;
  /// Per-leaf-key overrides (e.g. {"speedup_sim", 0.10}).
  std::map<std::string, double, std::less<>> thresholds;
};

struct DiffResult {
  std::vector<MetricDiff> diffs;          ///< every numeric leaf compared
  std::vector<std::string> mismatches;    ///< structural differences
  std::size_t regressions = 0;

  bool ok() const { return regressions == 0 && mismatches.empty(); }
};

/// Diffs `current` against `base` (see header comment).
DiffResult diff_bench(const util::JsonValue& base,
                      const util::JsonValue& current,
                      const DiffOptions& opts = {});

}  // namespace ls::prof
