#include "prof/attribution.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "check/check.hpp"
#include "util/stats.hpp"

namespace ls::prof {

namespace {

bool is_comm(const sched::Schedule& schedule, sched::EventId e) {
  return schedule.events[e].kind == sched::EventKind::kComm;
}

/// Dense id of the resource an event occupies, mirroring run_stream's
/// model: gangs [0, C), per-chip NoCs [C, 2C), boundary links [2C, 3C-1).
/// A single-chip schedule uses exactly two ids — the historical gang/NoC
/// pair — so the resource-order chain is unchanged there.
std::size_t resource_of(const sched::Schedule& schedule, sched::EventId e) {
  const sched::Event& ev = schedule.events[e];
  const std::size_t C = schedule.chips;
  if (ev.kind == sched::EventKind::kCompute) return ev.chip;
  if (!ev.inter_chip) return C + ev.chip;
  return 2 * C + (ev.chip - 1);
}

bool is_inter_chip(const sched::Schedule& schedule, sched::EventId e) {
  return schedule.events[e].inter_chip;
}

/// (request, event) -> timeline index. Events are < schedule.events.size()
/// so a flat key is collision-free.
std::unordered_map<std::uint64_t, std::size_t> index_items(
    const sched::Schedule& schedule, const sim::StreamTimeline& timeline) {
  std::unordered_map<std::uint64_t, std::size_t> map;
  map.reserve(timeline.items.size());
  const std::uint64_t E = schedule.events.size();
  for (std::size_t i = 0; i < timeline.items.size(); ++i) {
    const sim::StreamTimelineItem& it = timeline.items[i];
    map.emplace(static_cast<std::uint64_t>(it.request) * E + it.event, i);
  }
  return map;
}

}  // namespace

StreamAttribution attribute_stream(const sched::Schedule& schedule,
                                   const sim::StreamTimeline& timeline) {
  StreamAttribution out;
  const std::vector<sim::StreamTimelineItem>& items = timeline.items;
  const std::size_t n = items.size();
  out.items.resize(n);
  if (n == 0) return out;

  const std::uint64_t E = schedule.events.size();
  const auto by_key = index_items(schedule, timeline);

  // Resource predecessor/successor: the adjacent item on the same resource
  // in dispatch order (dispatch order sequences each resource).
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> res_pred(n, kNone);
  std::vector<std::size_t> res_succ(n, kNone);
  {
    std::vector<std::size_t> last(3 * std::max<std::size_t>(schedule.chips, 1),
                                  kNone);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t& l = last[resource_of(schedule, items[i].event)];
      res_pred[i] = l;
      if (l != kNone) res_succ[l] = i;
      l = i;
    }
  }

  // Makespan item: the latest finish; the last dispatched one on ties (its
  // start is the largest, keeping the backward walk's steps maximal).
  std::size_t peak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (items[i].finish_cycle >= items[peak].finish_cycle) peak = i;
  }
  out.makespan_cycles = items[peak].finish_cycle;

  // Backward blame walk (see header). Each chain item's duration is blamed
  // by how the walk *entered* it: through its resource -> the resource was
  // busy with it (compute/noc); through a dependency edge -> the
  // successor's resource waited on it (dep stall). The terminal item is
  // "entered" through its own execution.
  std::size_t cur = peak;
  bool entered_via_dep = false;
  sched::EventKind dep_kind = sched::EventKind::kCompute;
  bool dep_inter_chip = false;
  while (true) {
    const sim::StreamTimelineItem& it = items[cur];
    const std::uint64_t dur = it.finish_cycle - it.start_cycle;
    const bool comm = is_comm(schedule, it.event);
    const bool inter = is_inter_chip(schedule, it.event);
    if (entered_via_dep) {
      if (dep_inter_chip) {
        out.blame.dep_stall_on_inter_chip_cycles += dur;
      } else {
        (dep_kind == sched::EventKind::kComm
             ? out.blame.dep_stall_on_comm_cycles
             : out.blame.dep_stall_on_compute_cycles) += dur;
      }
    } else if (inter) {
      out.blame.inter_chip_cycles += dur;
    } else {
      (comm ? out.blame.noc_cycles : out.blame.compute_cycles) += dur;
    }
    out.items[cur].on_critical_chain = true;
    out.critical_chain.push_back(cur);
    if (it.start_cycle == 0) break;

    // Prefer the resource step when both explanations meet the start: the
    // resource genuinely ran back-to-back, so the wait was contention.
    const std::size_t rp = res_pred[cur];
    if (rp != kNone && items[rp].finish_cycle == it.start_cycle) {
      cur = rp;
      entered_via_dep = false;
      continue;
    }
    std::size_t via = kNone;
    for (const sched::EventId dep : schedule.events[it.event].deps) {
      const auto found =
          by_key.find(static_cast<std::uint64_t>(it.request) * E + dep);
      if (found != by_key.end() &&
          items[found->second].finish_cycle == it.start_cycle) {
        via = found->second;
        break;
      }
    }
    LS_CHECK_MSG(via != kNone,
                 "attribute_stream: item r%zu/e%zu starts at %llu with no "
                 "predecessor finishing there — timeline is not from a "
                 "work-conserving run",
                 it.request, it.event,
                 static_cast<unsigned long long>(it.start_cycle));
    if (via == kNone) {  // unchecked builds: bail out with what we have
      break;
    }
    dep_kind = schedule.events[items[via].event].kind;
    dep_inter_chip = is_inter_chip(schedule, items[via].event);
    cur = via;
    entered_via_dep = true;
  }
  std::reverse(out.critical_chain.begin(), out.critical_chain.end());
  LS_CHECK_MSG(out.blame.total() == out.makespan_cycles,
               "attribute_stream: blame %llu != makespan %llu",
               static_cast<unsigned long long>(out.blame.total()),
               static_cast<unsigned long long>(out.makespan_cycles));

  // Slack: CPM late-finish backward pass over the fixed dispatch sequence.
  // Successors are the next same-resource item plus dependency successors;
  // both are dispatched later, so one reverse sweep sees every successor's
  // late start before its predecessors need it.
  std::vector<std::uint64_t> late_finish(n, out.makespan_cycles);
  for (std::size_t ri = n; ri-- > 0;) {
    const sim::StreamTimelineItem& it = items[ri];
    const std::uint64_t dur = it.finish_cycle - it.start_cycle;
    const std::uint64_t late_start = late_finish[ri] - dur;
    if (res_pred[ri] != kNone) {
      late_finish[res_pred[ri]] =
          std::min(late_finish[res_pred[ri]], late_start);
    }
    for (const sched::EventId dep : schedule.events[it.event].deps) {
      const auto found =
          by_key.find(static_cast<std::uint64_t>(it.request) * E + dep);
      if (found != by_key.end()) {
        late_finish[found->second] =
            std::min(late_finish[found->second], late_start);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.items[i].slack_cycles = late_finish[i] - items[i].finish_cycle;
    LS_CHECK_MSG(
        !out.items[i].on_critical_chain || out.items[i].slack_cycles == 0,
        "attribute_stream: critical-chain item %zu has slack %llu", i,
        static_cast<unsigned long long>(out.items[i].slack_cycles));
  }
  return out;
}

BlameBreakdown attribute_single_pass(const sim::InferenceResult& result) {
  BlameBreakdown blame;
  blame.compute_cycles = result.compute_cycles;
  blame.dep_stall_on_comm_cycles = result.comm_cycles;
  LS_CHECK_MSG(blame.total() == result.total_cycles,
               "attribute_single_pass: blame %llu != total %llu",
               static_cast<unsigned long long>(blame.total()),
               static_cast<unsigned long long>(result.total_cycles));
  return blame;
}

StreamLatency stream_latency(const sched::Schedule& schedule,
                             const sim::StreamTimeline& timeline) {
  StreamLatency out;
  // Ordered map: iteration below feeds the report in request order, so the
  // accumulation-to-output path never passes through hash order (lslint's
  // unordered-iteration rule; the JSON report is byte-stable because of it).
  std::map<std::size_t, RequestLatency> by_request;
  for (const sim::StreamTimelineItem& it : timeline.items) {
    RequestLatency& r = by_request[it.request];
    r.request = it.request;
    r.latency_cycles = std::max(r.latency_cycles, it.finish_cycle);
    const std::uint64_t dur = it.finish_cycle - it.start_cycle;
    (is_comm(schedule, it.event) ? r.comm_cycles : r.compute_cycles) += dur;
  }
  out.requests.reserve(by_request.size());
  for (auto& [req, r] : by_request) {  // ascending request id
    r.queue_wait_cycles = r.latency_cycles - r.compute_cycles - r.comm_cycles;
    out.requests.push_back(r);
  }
  if (!out.requests.empty()) {
    std::vector<double> lat;
    lat.reserve(out.requests.size());
    for (const RequestLatency& r : out.requests) {
      lat.push_back(static_cast<double>(r.latency_cycles));
    }
    out.p50_cycles = util::percentile(lat, 50.0);
    out.p95_cycles = util::percentile(lat, 95.0);
    out.p99_cycles = util::percentile(lat, 99.0);
  }
  return out;
}

}  // namespace ls::prof
