#pragma once
// Cost-model error attribution (DESIGN.md §4h): per-layer comparison of
// the analytic scorer (sched::estimate_cycles, what the autotuner ranks
// candidates with) against the flit-level executor's actuals
// (CmpSystem::execute over the same schedule).
//
// The compute half of the estimate is the executor's own
// accel::CoreModel::partition_cost, so its error is identically zero —
// reported anyway as a tripwire: a nonzero compute error means the scorer
// and executor have drifted apart. The comm half is the link-contention
// approximation; its per-layer relative error is the quantity that decides
// whether the tuner's analytic shortlist can be trusted.

#include <cstdint>
#include <string>
#include <vector>

#include "sched/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sim/system.hpp"
#include "util/stats.hpp"

namespace ls::prof {

/// One compute layer's estimate-vs-actual pair. Comm cycles compare the
/// *raw* drain (pre-overlap) on both sides — overlap policy is applied
/// identically by both models, so the raw burst is the modeled quantity.
struct LayerModelError {
  std::string layer_name;
  std::uint64_t est_compute_cycles = 0;
  std::uint64_t act_compute_cycles = 0;
  std::uint64_t est_comm_cycles = 0;  ///< raw drain estimate
  std::uint64_t act_comm_cycles = 0;  ///< raw drain actual
  /// (est - act) / act; 0 when act == 0 and est == 0, +inf-free: an
  /// actual of 0 with a nonzero estimate reports est as absolute error
  /// against a 1-cycle floor.
  double compute_rel_error = 0.0;
  double comm_rel_error = 0.0;
};

struct ModelErrorReport {
  std::vector<LayerModelError> layers;
  /// Signed relative comm error distribution across layers with traffic.
  util::RunningStats comm_rel_error{};
  /// Histogram of |comm_rel_error| in [0, 1] (16 bins; exact zero-traffic
  /// layers excluded).
  util::Histogram comm_abs_rel_error_hist{0.0, 1.0, 16};
  /// Totals, for the headline number.
  std::uint64_t est_total_cycles = 0;
  std::uint64_t act_total_cycles = 0;
};

/// Compares the analytic estimate of `schedule` under `cost` against the
/// executed single pass `actual` (CmpSystem::execute of the same
/// schedule). Also feeds the `prof.model_error.*` metrics histograms.
ModelErrorReport compare_model(const sched::Schedule& schedule,
                               const sched::CostModelConfig& cost,
                               const sim::InferenceResult& actual);

}  // namespace ls::prof
