#include "prof/model_error.hpp"

#include <cmath>
#include <cstdlib>

#include "check/check.hpp"
#include "obs/metrics.hpp"

namespace ls::prof {

namespace {

double rel_error(std::uint64_t est, std::uint64_t act) {
  if (act == 0) {
    // No actual cycles: a matching zero estimate is a perfect call;
    // anything else is pure over-estimate, measured against a 1-cycle
    // floor so the ratio stays finite.
    return est == 0 ? 0.0 : static_cast<double>(est);
  }
  return (static_cast<double>(est) - static_cast<double>(act)) /
         static_cast<double>(act);
}

}  // namespace

ModelErrorReport compare_model(const sched::Schedule& schedule,
                               const sched::CostModelConfig& cost,
                               const sim::InferenceResult& actual) {
  const sched::CycleEstimate est = sched::estimate_cycles(schedule, cost);
  LS_CHECK_MSG(est.events.size() == schedule.events.size(),
               "compare_model('%s'): estimate covers %zu of %zu events",
               schedule.net_name.c_str(), est.events.size(),
               schedule.events.size());

  ModelErrorReport report;
  report.est_total_cycles = est.total_cycles;
  report.act_total_cycles = actual.total_cycles;

  // Walk the event list with the executor's layer pairing: a comm event
  // charges into the *next* compute event's layer; layers advance on
  // computes (schedule invariant: comm is immediately followed by its
  // compute).
  std::size_t layer = 0;
  std::uint64_t pending_est_comm = 0;
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    if (schedule.events[i].kind == sched::EventKind::kComm) {
      pending_est_comm = est.events[i].raw_comm_cycles;
      continue;
    }
    LS_CHECK_MSG(layer < actual.layers.size(),
                 "compare_model('%s'): schedule has more compute events "
                 "than the result has layers (%zu)",
                 schedule.net_name.c_str(), actual.layers.size());
    if (layer >= actual.layers.size()) break;
    const sim::LayerTimeline& tl = actual.layers[layer];

    LayerModelError e;
    e.layer_name = tl.layer_name;
    e.est_compute_cycles = est.events[i].cycles;
    e.act_compute_cycles = tl.compute_cycles;
    e.est_comm_cycles = pending_est_comm;
    e.act_comm_cycles = tl.comm_cycles;  // raw drain (pre-overlap)
    e.compute_rel_error =
        rel_error(e.est_compute_cycles, e.act_compute_cycles);
    e.comm_rel_error = rel_error(e.est_comm_cycles, e.act_comm_cycles);
    if (e.est_comm_cycles != 0 || e.act_comm_cycles != 0) {
      report.comm_rel_error.add(e.comm_rel_error);
      report.comm_abs_rel_error_hist.add(std::abs(e.comm_rel_error));
    }
    report.layers.push_back(std::move(e));
    pending_est_comm = 0;
    ++layer;
  }

  obs::Registry& reg = obs::Registry::instance();
  obs::HistogramMetric& comm_hist =
      reg.histogram("prof.model_error.comm_abs_rel", 0.0, 1.0, 16);
  for (const LayerModelError& e : report.layers) {
    if (e.est_comm_cycles != 0 || e.act_comm_cycles != 0) {
      comm_hist.observe(std::abs(e.comm_rel_error));
    }
    if (e.compute_rel_error != 0.0) {
      reg.counter("prof.model_error.compute_drift_layers").inc();
    }
  }
  return report;
}

}  // namespace ls::prof
