#include "prof/report.hpp"

#include "check/check.hpp"
#include "util/json.hpp"

namespace ls::prof {

namespace {

void write_blame(util::JsonWriter& w, const BlameBreakdown& b) {
  w.begin_object();
  w.key("compute_cycles");
  w.value(b.compute_cycles);
  w.key("noc_cycles");
  w.value(b.noc_cycles);
  w.key("inter_chip_cycles");
  w.value(b.inter_chip_cycles);
  w.key("dep_stall_on_compute_cycles");
  w.value(b.dep_stall_on_compute_cycles);
  w.key("dep_stall_on_comm_cycles");
  w.value(b.dep_stall_on_comm_cycles);
  w.key("dep_stall_on_inter_chip_cycles");
  w.value(b.dep_stall_on_inter_chip_cycles);
  w.key("total_cycles");
  w.value(b.total());
  w.end_object();
}

void write_stats(util::JsonWriter& w, const util::RunningStats& s) {
  w.begin_object();
  w.key("count");
  w.value(static_cast<std::uint64_t>(s.count()));
  w.key("mean");
  w.value(s.mean());
  w.key("stddev");
  w.value(s.stddev());
  w.key("min");
  w.value(s.min());
  w.key("max");
  w.value(s.max());
  w.end_object();
}

void write_histogram(util::JsonWriter& w, const util::Histogram& h) {
  w.begin_object();
  w.key("lo");
  w.value(h.bin_low(0));
  w.key("hi");
  w.value(h.bin_high(h.bins() - 1));
  w.key("underflow");
  w.value(static_cast<std::uint64_t>(h.underflow()));
  w.key("overflow");
  w.value(static_cast<std::uint64_t>(h.overflow()));
  w.key("counts");
  w.begin_array();
  for (std::size_t i = 0; i < h.bins(); ++i) {
    w.value(static_cast<std::uint64_t>(h.bin_count(i)));
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string build_profile_json(const ProfileInputs& in) {
  LS_CHECK_MSG(in.single_pass != nullptr,
               "build_profile_json('%s'): single_pass is required",
               in.net_name.c_str());
  util::JsonWriter w;
  w.begin_object();

  w.key("profile");
  w.begin_object();
  w.key("net");
  w.value(in.net_name);
  w.key("cores");
  w.value(static_cast<std::uint64_t>(in.cores));
  w.key("requests");
  w.value(static_cast<std::uint64_t>(in.requests));
  w.end_object();

  if (in.single_pass != nullptr) {
    const sim::InferenceResult& r = *in.single_pass;
    w.key("single_pass");
    w.begin_object();
    w.key("total_cycles");
    w.value(r.total_cycles);
    w.key("compute_cycles");
    w.value(r.compute_cycles);
    w.key("comm_cycles");
    w.value(r.comm_cycles);
    w.key("comm_fraction");
    w.value(r.comm_fraction());
    w.key("blame");
    write_blame(w, attribute_single_pass(r));
    w.end_object();
  }

  if (in.model_error != nullptr) {
    const ModelErrorReport& m = *in.model_error;
    w.key("model_error");
    w.begin_object();
    w.key("est_total_cycles");
    w.value(m.est_total_cycles);
    w.key("act_total_cycles");
    w.value(m.act_total_cycles);
    w.key("comm_rel_error");
    write_stats(w, m.comm_rel_error);
    w.key("comm_abs_rel_error_hist");
    write_histogram(w, m.comm_abs_rel_error_hist);
    w.key("layers");
    w.begin_array();
    for (const LayerModelError& e : m.layers) {
      w.begin_object();
      w.key("layer");
      w.value(e.layer_name);
      w.key("est_compute_cycles");
      w.value(e.est_compute_cycles);
      w.key("act_compute_cycles");
      w.value(e.act_compute_cycles);
      w.key("est_comm_cycles");
      w.value(e.est_comm_cycles);
      w.key("act_comm_cycles");
      w.value(e.act_comm_cycles);
      w.key("compute_rel_error");
      w.value(e.compute_rel_error);
      w.key("comm_rel_error");
      w.value(e.comm_rel_error);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (in.stream != nullptr || in.latency != nullptr) {
    w.key("stream");
    w.begin_object();
    if (in.stream != nullptr) {
      const StreamAttribution& s = *in.stream;
      w.key("makespan_cycles");
      w.value(s.makespan_cycles);
      w.key("blame");
      write_blame(w, s.blame);
      w.key("critical_chain_items");
      w.value(static_cast<std::uint64_t>(s.critical_chain.size()));
      std::size_t zero_slack = 0;
      for (const ItemAttribution& it : s.items) {
        zero_slack += it.slack_cycles == 0 ? 1 : 0;
      }
      w.key("zero_slack_items");
      w.value(static_cast<std::uint64_t>(zero_slack));
      w.key("total_items");
      w.value(static_cast<std::uint64_t>(s.items.size()));
    }
    if (in.latency != nullptr) {
      const StreamLatency& l = *in.latency;
      w.key("latency");
      w.begin_object();
      w.key("p50_cycles");
      w.value(l.p50_cycles);
      w.key("p95_cycles");
      w.value(l.p95_cycles);
      w.key("p99_cycles");
      w.value(l.p99_cycles);
      w.key("requests");
      w.begin_array();
      for (const RequestLatency& r : l.requests) {
        w.begin_object();
        w.key("request");
        w.value(static_cast<std::uint64_t>(r.request));
        w.key("latency_cycles");
        w.value(r.latency_cycles);
        w.key("compute_cycles");
        w.value(r.compute_cycles);
        w.key("comm_cycles");
        w.value(r.comm_cycles);
        w.key("queue_wait_cycles");
        w.value(r.queue_wait_cycles);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }

  if (in.tune_outcome != nullptr || in.tune_telemetry != nullptr) {
    w.key("tune");
    w.begin_object();
    if (in.tune_outcome != nullptr) {
      const tune::TuneOutcome& o = *in.tune_outcome;
      w.key("baseline_est_cycles");
      w.value(o.baseline_est_cycles);
      w.key("baseline_sim_cycles");
      w.value(o.baseline_sim_cycles);
      w.key("best_est_cycles");
      w.value(o.best_est_cycles);
      w.key("best_sim_cycles");
      w.value(o.best_sim_cycles);
      w.key("speedup_sim");
      w.value(o.speedup_sim());
      w.key("evals");
      w.value(o.evals);
      w.key("validated");
      w.value(static_cast<std::uint64_t>(o.validated));
    }
    if (in.tune_telemetry != nullptr) {
      const tune::TuneTelemetry& t = *in.tune_telemetry;
      w.key("moves_accepted");
      w.value(t.moves_accepted);
      w.key("moves_rejected");
      w.value(t.moves_rejected);
      w.key("restarts");
      w.begin_array();
      for (const tune::TuneRestartTrace& r : t.restarts) {
        w.begin_object();
        w.key("restart");
        w.value(static_cast<std::uint64_t>(r.restart));
        w.key("start_est_cycles");
        w.value(r.start_est_cycles);
        w.key("final_est_cycles");
        w.value(r.final_est_cycles);
        w.key("moves_scored");
        w.value(static_cast<std::uint64_t>(r.moves.size()));
        // Accepted moves only: the descent trajectory. Rejected moves
        // are the bulk of the budget and carry no shape.
        w.key("accepted");
        w.begin_array();
        for (const tune::TuneMove& m : r.moves) {
          if (!m.accepted) continue;
          w.begin_object();
          w.key("eval");
          w.value(m.eval);
          w.key("est_cycles");
          w.value(m.est_cycles);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.key("validation_scatter");
      w.begin_array();
      for (const tune::TuneValidationPoint& v : t.validations) {
        w.begin_object();
        w.key("est_cycles");
        w.value(v.est_cycles);
        w.key("sim_cycles");
        w.value(v.sim_cycles);
        w.key("is_best");
        w.value(v.is_best);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }

  w.end_object();
  return w.str();
}

}  // namespace ls::prof
