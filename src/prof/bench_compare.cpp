#include "prof/bench_compare.hpp"

#include <cmath>

namespace ls::prof {

namespace {

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

const char* kind_name(util::JsonValue::Kind k) {
  switch (k) {
    case util::JsonValue::Kind::kNull: return "null";
    case util::JsonValue::Kind::kBool: return "bool";
    case util::JsonValue::Kind::kNumber: return "number";
    case util::JsonValue::Kind::kString: return "string";
    case util::JsonValue::Kind::kArray: return "array";
    case util::JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

struct Walker {
  const DiffOptions& opts;
  DiffResult& out;

  double threshold_for(const std::string& leaf) const {
    const auto it = opts.thresholds.find(leaf);
    return it != opts.thresholds.end() ? it->second
                                       : opts.default_threshold;
  }

  void number(const std::string& path, const std::string& leaf, double base,
              double cur) {
    MetricDiff d;
    d.path = path;
    d.leaf = leaf;
    d.base = base;
    d.current = cur;
    d.rel_change =
        base != 0.0 ? (cur - base) / std::abs(base) : cur - base;
    d.direction = metric_direction(leaf);
    const double bad_move = d.direction == MetricDirection::kHigherBetter
                                ? -d.rel_change
                                : d.direction == MetricDirection::kLowerBetter
                                      ? d.rel_change
                                      : 0.0;
    d.regressed = bad_move > threshold_for(leaf);
    if (d.regressed) ++out.regressions;
    out.diffs.push_back(std::move(d));
  }

  void walk(const std::string& path, const std::string& leaf,
            const util::JsonValue& base, const util::JsonValue& cur) {
    if (base.kind() != cur.kind()) {
      out.mismatches.push_back(path + ": type " + kind_name(base.kind()) +
                               " -> " + kind_name(cur.kind()));
      return;
    }
    switch (base.kind()) {
      case util::JsonValue::Kind::kNumber:
        number(path, leaf, base.as_double(), cur.as_double());
        break;
      case util::JsonValue::Kind::kBool:
        if (base.as_bool() != cur.as_bool()) {
          out.mismatches.push_back(path + ": bool value changed");
        }
        break;
      case util::JsonValue::Kind::kString:
        // Strings are labels (net/layer names, dim lists). A change is
        // worth surfacing but graded by the leaf's direction: config
        // echoes ("bench", "net") changing is structural.
        if (base.as_string() != cur.as_string()) {
          out.mismatches.push_back(path + ": \"" + base.as_string() +
                                   "\" -> \"" + cur.as_string() + "\"");
        }
        break;
      case util::JsonValue::Kind::kNull:
        break;
      case util::JsonValue::Kind::kArray: {
        const auto& ba = base.as_array();
        const auto& ca = cur.as_array();
        if (ba.size() != ca.size()) {
          out.mismatches.push_back(path + ": array size " +
                                   std::to_string(ba.size()) + " -> " +
                                   std::to_string(ca.size()));
          return;
        }
        for (std::size_t i = 0; i < ba.size(); ++i) {
          walk(path + "[" + std::to_string(i) + "]", leaf, ba[i], ca[i]);
        }
        break;
      }
      case util::JsonValue::Kind::kObject: {
        const auto& bo = base.as_object();
        const auto& co = cur.as_object();
        for (const auto& [key, bval] : bo) {
          const auto it = co.find(key);
          if (it == co.end()) {
            out.mismatches.push_back(path + "." + key +
                                     ": missing in current");
            continue;
          }
          walk(path.empty() ? key : path + "." + key, key, bval,
               it->second);
        }
        for (const auto& [key, cval] : co) {
          if (bo.find(key) == bo.end()) {
            out.mismatches.push_back(path + "." + key +
                                     ": missing in baseline");
          }
        }
        break;
      }
    }
  }
};

}  // namespace

MetricDirection metric_direction(std::string_view leaf_key) {
  // Configuration echoes and run metadata: never graded.
  for (const std::string_view info :
       {"cores", "requests", "threads", "seed", "budget", "evals",
        "validated", "sparsity_pct", "bins", "count", "bin_count",
        "epochs", "batch"}) {
    if (leaf_key == info) return MetricDirection::kInfo;
  }
  // Higher is better: rates and ratios the optimizations exist to raise.
  if (contains(leaf_key, "speedup") || contains(leaf_key, "throughput") ||
      contains(leaf_key, "occupancy") || contains(leaf_key, "accuracy") ||
      contains(leaf_key, "hit") || contains(leaf_key, "gflops")) {
    return MetricDirection::kHigherBetter;
  }
  // Lower is better: times, cycle counts, errors, traffic.
  if (ends_with(leaf_key, "_ms") || ends_with(leaf_key, "_us") ||
      contains(leaf_key, "cycles") || contains(leaf_key, "error") ||
      contains(leaf_key, "bytes") || contains(leaf_key, "flits") ||
      contains(leaf_key, "loss")) {
    return MetricDirection::kLowerBetter;
  }
  return MetricDirection::kInfo;
}

DiffResult diff_bench(const util::JsonValue& base,
                      const util::JsonValue& current,
                      const DiffOptions& opts) {
  DiffResult out;
  Walker w{opts, out};
  w.walk("", "", base, current);
  return out;
}

}  // namespace ls::prof
