#pragma once
// Critical-path analysis and makespan blame over executed schedules
// (DESIGN.md §4h "Profiling & attribution").
//
// run_stream's per-chip-resource list scheduler (one core gang + one NoC
// per chip, one serial link per chip boundary; a single gang + NoC on a
// flat machine) is work-conserving: an item starts at
// max(ready, resource_free), so every item's start coincides with either
// its resource predecessor's finish or a dependency's finish.
// That makes the critical chain *gapless* — walking backward from the
// item that finishes at the makespan always lands on a predecessor whose
// finish equals the current start, down to cycle 0. The chain's segments
// therefore tile [0, makespan) exactly, and blaming each segment by how
// the walk stepped into it yields a decomposition that provably sums to
// the makespan (LS_CHECK-enforced):
//   * compute        — a compute segment reached through the core-gang
//     resource: the cores were the bottleneck during it,
//   * noc            — a comm segment reached through the NoC resource:
//     cross-request burst queueing was the bottleneck,
//   * inter_chip     — an inter-chip transfer reached through its boundary
//     link: the serial link itself was the bottleneck,
//   * dep_stall_on_* — a segment reached through a dependency edge: the
//     successor's resource sat free while this predecessor (compute or
//     comm) held the chain. For a single-request stream this bucket's
//     comm flavor is exactly the paper's "computation-blocking
//     communication".
// Per-item slack comes from the standard CPM backward pass over the
// fixed dispatch sequence (dependency + resource-order edges); items
// with zero slack are on *a* critical path.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"
#include "sim/system.hpp"

namespace ls::prof {

/// Makespan decomposition; buckets sum exactly to the makespan.
struct BlameBreakdown {
  std::uint64_t compute_cycles = 0;
  std::uint64_t noc_cycles = 0;
  /// Chip-boundary serial-link occupancy on the chain (multi-chip only).
  std::uint64_t inter_chip_cycles = 0;
  std::uint64_t dep_stall_on_compute_cycles = 0;
  std::uint64_t dep_stall_on_comm_cycles = 0;
  /// Chain held by an inter-chip transfer a successor waited on.
  std::uint64_t dep_stall_on_inter_chip_cycles = 0;

  std::uint64_t total() const {
    return compute_cycles + noc_cycles + inter_chip_cycles +
           dep_stall_on_compute_cycles + dep_stall_on_comm_cycles +
           dep_stall_on_inter_chip_cycles;
  }
  friend bool operator==(const BlameBreakdown&,
                         const BlameBreakdown&) = default;
};

/// Per-dispatched-item profile, parallel to StreamTimeline::items.
struct ItemAttribution {
  /// Latest finish that would not delay the makespan (CPM late-finish
  /// minus actual finish). Zero on at least one full chain.
  std::uint64_t slack_cycles = 0;
  /// Item lies on the blame walk's critical chain.
  bool on_critical_chain = false;
};

struct StreamAttribution {
  std::uint64_t makespan_cycles = 0;
  BlameBreakdown blame{};
  /// Parallel to the timeline's items (dispatch order).
  std::vector<ItemAttribution> items;
  /// Indices into the timeline of the critical chain, in time order.
  std::vector<std::size_t> critical_chain;
};

/// Per-request latency split: the request's own execution time by event
/// kind plus the cycles it spent runnable-but-waiting (queueing on a
/// busy resource or released but not started). The three parts sum to
/// the request's completion cycle (all requests release at cycle 0).
struct RequestLatency {
  std::size_t request = 0;
  std::uint64_t latency_cycles = 0;  ///< completion cycle
  std::uint64_t compute_cycles = 0;
  std::uint64_t comm_cycles = 0;
  std::uint64_t queue_wait_cycles = 0;

  friend bool operator==(const RequestLatency&,
                         const RequestLatency&) = default;
};

struct StreamLatency {
  std::vector<RequestLatency> requests;
  /// Exact order-statistic percentiles of latency_cycles.
  double p50_cycles = 0.0;
  double p95_cycles = 0.0;
  double p99_cycles = 0.0;
};

/// Critical-chain blame + per-item slack for one executed stream.
/// `timeline` must be the record run_stream produced for `schedule` (the
/// dispatch-order contract in sim/system.hpp); an empty timeline yields
/// an empty attribution.
StreamAttribution attribute_stream(const sched::Schedule& schedule,
                                   const sim::StreamTimeline& timeline);

/// Serial-timeline blame for one single-pass execution: compute cycles
/// are compute blame, blocking communication is dependency stall on comm
/// (the cores sit idle while the burst drains; inter-chip transfer time is
/// folded in — the serial pass has no resource overlap to distinguish).
/// Sums to total_cycles.
BlameBreakdown attribute_single_pass(const sim::InferenceResult& result);

/// Per-request latency decomposition of an executed stream.
StreamLatency stream_latency(const sched::Schedule& schedule,
                             const sim::StreamTimeline& timeline);

}  // namespace ls::prof
