#include "sched/verify.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "check/check.hpp"
#include "noc/topology.hpp"

namespace ls::sched {

namespace {

bool idle(const accel::LayerPartitionWork& w) {
  return w.macs == 0 && w.weight_bytes == 0 && w.input_bytes == 0 &&
         w.output_bytes == 0;
}

/// printf-style violation collector; messages are only formatted on the
/// failure path, so the clean-schedule fast path does no string work.
class Collector {
 public:
  explicit Collector(VerifyReport* report) : report_(report) {}

  [[gnu::format(printf, 4, 5)]] void add(VerifyCode code, EventId event,
                                         const char* fmt, ...) {
    char buf[256];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    report_->violations.push_back({code, event, buf});
  }

 private:
  VerifyReport* report_;
};

}  // namespace

const char* to_string(VerifyCode code) {
  switch (code) {
    case VerifyCode::kCyclicDependence:
      return "cyclic-dependence";
    case VerifyCode::kPlacementNotBijective:
      return "placement-not-bijective";
    case VerifyCode::kUnpairedEvent:
      return "unpaired-event";
    case VerifyCode::kOrphanBurstEndpoint:
      return "orphan-burst-endpoint";
    case VerifyCode::kByteTotalMismatch:
      return "byte-total-mismatch";
    case VerifyCode::kOffMeshRoute:
      return "off-mesh-route";
    case VerifyCode::kCapacityOverflow:
      return "capacity-overflow";
    case VerifyCode::kNondeterministicReduction:
      return "nondeterministic-reduction";
    case VerifyCode::kChipBoundaryViolation:
      return "chip-boundary-violation";
  }
  return "?";
}

std::string VerifyReport::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    if (v.event == kNoEvent) {
      out += "schedule [";
    } else {
      char head[32];
      std::snprintf(head, sizeof(head), "event %zu [", v.event);
      out += head;
    }
    out += sched::to_string(v.code);
    out += "]: ";
    out += v.message;
    out += '\n';
  }
  return out;
}

VerifyReport verify(const Schedule& schedule, const VerifyOptions& options) {
  VerifyReport report;
  Collector out(&report);

  if (schedule.cores == 0) {
    out.add(VerifyCode::kPlacementNotBijective, kNoEvent,
            "schedule '%s' has zero cores — no core range to cover",
            schedule.net_name.c_str());
    return report;  // every later check indexes by core id
  }
  const std::size_t P = schedule.cores;

  // --- Chip hierarchy shape ----------------------------------------------
  if (schedule.chips == 0 || P % schedule.chips != 0) {
    out.add(VerifyCode::kChipBoundaryViolation, kNoEvent,
            "%zu chips do not evenly divide %zu cores", schedule.chips, P);
    return report;  // the per-chip core ranges below would be meaningless
  }
  const std::size_t chips = schedule.chips;
  const std::size_t cpc = P / chips;  // cores per chip (chip-major ranges)
  if (chips > 1 && !schedule.placement.empty()) {
    out.add(VerifyCode::kChipBoundaryViolation, kNoEvent,
            "multi-chip schedules use the identity placement; permutations "
            "are per-chip-mesh concepts");
  }

  // --- Placement bijectivity and the inverse map -------------------------
  // inv[core] = partition the lowering mapped onto `core`; identity when no
  // permutation was recorded. The burst-order check runs in partition
  // space, so it needs the inverse even for permuted placements.
  std::vector<std::size_t> inv(P);
  for (std::size_t i = 0; i < P; ++i) inv[i] = i;
  bool placement_ok = true;
  if (!schedule.placement.empty()) {
    if (schedule.placement.size() != P) {
      out.add(VerifyCode::kPlacementNotBijective, kNoEvent,
              "placement maps %zu partitions on a %zu-core machine",
              schedule.placement.size(), P);
      placement_ok = false;
    } else {
      std::vector<bool> seen(P, false);
      for (std::size_t part = 0; part < P; ++part) {
        const std::size_t core = schedule.placement[part];
        if (core >= P || seen[core]) {
          out.add(VerifyCode::kPlacementNotBijective, kNoEvent,
                  "placement is not a bijective permutation (core %zu "
                  "out of range or repeated)",
                  core);
          placement_ok = false;
          break;
        }
        seen[core] = true;
        inv[core] = part;
      }
    }
  }

  // The mesh every on-chip route must stay on: each chip's own mesh —
  // which on a single-chip schedule is exactly the historical whole-machine
  // mesh. for_cores only throws on zero cores (rejected above) and on 1xN
  // chain counts, which were never legal machine shapes here either.
  const noc::MeshTopology mesh = noc::MeshTopology::for_cores(cpc);

  // Walk events once, tracking the most recent compute event (the producer
  // a comm burst drains from) and the pipeline-stage chip sequence.
  const Event* producer = nullptr;
  const Event* last_compute = nullptr;
  EventId last_compute_id = kNoEvent;
  std::size_t last_compute_chip = 0;
  std::vector<bool> chip_seen(chips, false);
  for (EventId id = 0; id < schedule.events.size(); ++id) {
    const Event& e = schedule.events[id];

    if (e.chip >= chips) {
      out.add(VerifyCode::kChipBoundaryViolation, id,
              "event '%s' claims chip %zu on a %zu-chip package",
              e.layer_name.c_str(), e.chip, chips);
      continue;  // every chip-range check below would misfire
    }

    if (e.layer_name.empty()) {
      out.add(VerifyCode::kUnpairedEvent, id, "event has no layer name");
    }
    for (const EventId dep : e.deps) {
      if (dep >= id) {
        out.add(VerifyCode::kCyclicDependence, id,
                "'%s' depends on event %zu — dependencies must point "
                "strictly backwards (topological order, deadlock freedom)",
                e.layer_name.c_str(), dep);
      }
    }

    if (e.kind == EventKind::kComm) {
      if (e.messages.empty()) {
        out.add(VerifyCode::kUnpairedEvent, id,
                "comm event '%s' carries no messages — empty bursts must "
                "be elided at build time",
                e.layer_name.c_str());
      }
      const Event* consumer = nullptr;
      if (id + 1 >= schedule.events.size() ||
          schedule.events[id + 1].kind != EventKind::kCompute ||
          schedule.events[id + 1].layer_name != e.layer_name) {
        out.add(VerifyCode::kUnpairedEvent, id,
                "comm event '%s' is not immediately followed by its "
                "compute event",
                e.layer_name.c_str());
      } else {
        consumer = &schedule.events[id + 1];
      }
      if (producer == nullptr) {
        out.add(VerifyCode::kUnpairedEvent, id,
                "comm event '%s' has no producing compute event to drain "
                "from",
                e.layer_name.c_str());
      }
      if (consumer != nullptr && consumer->chip != e.chip) {
        out.add(VerifyCode::kChipBoundaryViolation, id,
                "comm event '%s' runs on chip %zu but feeds a compute "
                "event on chip %zu",
                e.layer_name.c_str(), e.chip, consumer->chip);
      }

      if (e.inter_chip) {
        // An inter-chip transfer is a single gateway-to-gateway message
        // entering chip e.chip from its predecessor: bytes cross chip
        // boundaries only at gateway links.
        if (e.chip == 0) {
          out.add(VerifyCode::kChipBoundaryViolation, id,
                  "inter-chip event '%s' enters chip 0 — there is no "
                  "boundary before the first chip",
                  e.layer_name.c_str());
        } else if (e.messages.size() != 1) {
          out.add(VerifyCode::kChipBoundaryViolation, id,
                  "inter-chip event '%s' carries %zu messages — the "
                  "serial link carries one gateway-to-gateway transfer",
                  e.layer_name.c_str(), e.messages.size());
        } else {
          const noc::Message& msg = e.messages.front();
          const std::size_t want_src = (e.chip - 1) * cpc;
          const std::size_t want_dst = e.chip * cpc;
          if (msg.src != want_src || msg.dst != want_dst) {
            out.add(VerifyCode::kChipBoundaryViolation, id,
                    "inter-chip message %zu -> %zu is not the gateway "
                    "link %zu -> %zu",
                    msg.src, msg.dst, want_src, want_dst);
          }
        }
        std::size_t ic_bytes = 0;
        for (const noc::Message& msg : e.messages) ic_bytes += msg.bytes;
        if (ic_bytes != e.traffic_bytes) {
          out.add(VerifyCode::kByteTotalMismatch, id,
                  "comm event '%s' declares %zu bytes but its messages "
                  "carry %zu",
                  e.layer_name.c_str(), e.traffic_bytes, ic_bytes);
        }
        continue;  // mesh-route/orphan/order checks are on-chip concepts
      }

      // After a channel-split producer the burst carries the reduce-scatter
      // back to the kernel-wise layout: its endpoints are kernel-range
      // owners, not necessarily workers of either adjacent compute event
      // (builders.cpp), so endpoint membership is unverifiable without the
      // net spec and is skipped for that one transition shape.
      const bool endpoints_checkable =
          producer != nullptr && consumer != nullptr &&
          producer->partition_dim != PartitionDim::kChannel &&
          producer->per_core_work.size() == P &&
          consumer->per_core_work.size() == P;

      std::size_t bytes = 0;
      bool prev_on_mesh = false;
      std::size_t prev_src = 0;
      std::size_t prev_dst = 0;
      const std::size_t base = e.chip * cpc;
      for (std::size_t m = 0; m < e.messages.size(); ++m) {
        const noc::Message& msg = e.messages[m];
        bytes += msg.bytes;
        // On-chip bursts stay inside their chip's core range; the route
        // check below then runs in chip-local coordinates (base == 0 on
        // single-chip schedules, where this is the historical check).
        if (schedule.chips > 1 &&
            (msg.src < base || msg.src >= base + cpc || msg.dst < base ||
             msg.dst >= base + cpc)) {
          out.add(VerifyCode::kChipBoundaryViolation, id,
                  "message %zu (%zu -> %zu) leaves chip %zu's core range "
                  "[%zu, %zu) without an inter-chip event",
                  m, msg.src, msg.dst, e.chip, base, base + cpc);
          prev_on_mesh = false;
          continue;
        }
        // Route validity: the XY/YX dimension-ordered path exists iff both
        // endpoints map to mesh coordinates — DOR hops between in-bounds
        // coordinates never leave the rectangle.
        if (msg.src - base >= mesh.num_cores() ||
            msg.dst - base >= mesh.num_cores()) {
          out.add(VerifyCode::kOffMeshRoute, id,
                  "message %zu (%zu -> %zu) cannot be %s-routed on the "
                  "%zux%zu mesh",
                  m, msg.src, msg.dst,
                  options.noc.routing == noc::Routing::kXY ? "XY" : "YX",
                  mesh.cols(), mesh.rows());
          prev_on_mesh = false;
          continue;
        }
        if (endpoints_checkable) {
          if (idle(producer->per_core_work[msg.src])) {
            out.add(VerifyCode::kOrphanBurstEndpoint, id,
                    "message %zu sends from core %zu, which holds no work "
                    "in producing layer '%s'",
                    m, msg.src, producer->layer_name.c_str());
          }
          if (idle(consumer->per_core_work[msg.dst])) {
            out.add(VerifyCode::kOrphanBurstEndpoint, id,
                    "message %zu delivers to core %zu, which holds no "
                    "work in consuming layer '%s'",
                    m, msg.dst, e.layer_name.c_str());
          }
        }
        // Determinism precondition: every builder emits bursts in strictly
        // ascending (producer partition, consumer partition) order, which
        // is what makes the channel-split reduce-scatter's accumulation
        // order (and the burst-cache key) reproducible. Checked in
        // partition space via the inverse placement.
        if (placement_ok && prev_on_mesh) {
          const bool ascending =
              inv[prev_src] < inv[msg.src] ||
              (inv[prev_src] == inv[msg.src] && inv[prev_dst] < inv[msg.dst]);
          if (!ascending) {
            out.add(VerifyCode::kNondeterministicReduction, id,
                    "message %zu (%zu -> %zu) breaks the strictly "
                    "ascending (producer, consumer) partition order the "
                    "reduction contract requires",
                    m, msg.src, msg.dst);
          }
        }
        prev_on_mesh = true;
        prev_src = msg.src;
        prev_dst = msg.dst;
      }
      if (bytes != e.traffic_bytes) {
        out.add(VerifyCode::kByteTotalMismatch, id,
                "comm event '%s' declares %zu bytes but its messages "
                "carry %zu",
                e.layer_name.c_str(), e.traffic_bytes, bytes);
      }
    } else {
      if (e.per_core_work.size() != P) {
        out.add(VerifyCode::kPlacementNotBijective, id,
                "compute event '%s' carries work for %zu cores on a "
                "%zu-core machine",
                e.layer_name.c_str(), e.per_core_work.size(), P);
      }
      if (!e.messages.empty() || e.traffic_bytes != 0) {
        out.add(VerifyCode::kUnpairedEvent, id,
                "compute event '%s' carries comm payload",
                e.layer_name.c_str());
      }
      if (options.check_capacity &&
          options.accel.dram_bytes_per_cycle <= 0.0) {
        for (std::size_t c = 0; c < e.per_core_work.size(); ++c) {
          if (e.per_core_work[c].weight_bytes >
              options.accel.weight_buffer_bytes) {
            out.add(VerifyCode::kCapacityOverflow, id,
                    "core %zu holds %llu weight bytes in layer '%s' — "
                    "over the %zu-byte buffer with no DRAM path to "
                    "stream them",
                    c,
                    static_cast<unsigned long long>(
                        e.per_core_work[c].weight_bytes),
                    e.layer_name.c_str(),
                    options.accel.weight_buffer_bytes);
          }
        }
      }
      if (schedule.chips > 1) {
        const std::size_t base = e.chip * cpc;
        for (std::size_t c = 0; c < e.per_core_work.size(); ++c) {
          if (!idle(e.per_core_work[c]) && (c < base || c >= base + cpc)) {
            out.add(VerifyCode::kChipBoundaryViolation, id,
                    "compute event '%s' assigns work to core %zu outside "
                    "chip %zu's core range [%zu, %zu)",
                    e.layer_name.c_str(), c, e.chip, base, base + cpc);
            break;
          }
        }
      }
      // Stage/chip bijectivity, half 1: the compute sequence visits chips
      // in non-decreasing order (stages are contiguous layer runs).
      if (e.chip < last_compute_chip) {
        out.add(VerifyCode::kChipBoundaryViolation, id,
                "compute event '%s' runs on chip %zu after chip %zu — "
                "pipeline stages must map to non-decreasing chip ids",
                e.layer_name.c_str(), e.chip, last_compute_chip);
      }
      chip_seen[e.chip] = true;
      last_compute_chip = e.chip;
      producer = &e;
      last_compute = &e;
      last_compute_id = id;
    }
  }
  if (last_compute != nullptr &&
      last_compute->partition_dim == PartitionDim::kChannel) {
    out.add(VerifyCode::kNondeterministicReduction, last_compute_id,
            "last compute event '%s' is channel-split — its partial-sum "
            "reduce-scatter has no following transition to ride on",
            last_compute->layer_name.c_str());
  }
  // Stage/chip bijectivity, half 2: the stage map is onto — every chip of
  // a multi-chip package owns at least one compute event.
  if (chips > 1) {
    for (std::size_t s = 0; s < chips; ++s) {
      if (!chip_seen[s]) {
        out.add(VerifyCode::kChipBoundaryViolation, kNoEvent,
                "no pipeline stage maps to chip %zu — every chip must own "
                "at least one compute layer",
                s);
      }
    }
  }
  return report;
}

namespace testing {

namespace {

EventId first_comm(const Schedule& s) {
  for (EventId id = 0; id < s.events.size(); ++id) {
    if (s.events[id].kind == EventKind::kComm) return id;
  }
  LS_CHECK_MSG(false, "corrupt(): schedule has no comm event");
  return kNoEvent;
}

EventId first_compute(const Schedule& s) {
  for (EventId id = 0; id < s.events.size(); ++id) {
    if (s.events[id].kind == EventKind::kCompute) return id;
  }
  LS_CHECK_MSG(false, "corrupt(): schedule has no compute event");
  return kNoEvent;
}

}  // namespace

EventId corrupt(Schedule* s, Corruption kind) {
  switch (kind) {
    case Corruption::kCyclicDependence: {
      // A self-edge: the minimal non-backwards dependency.
      const EventId id = first_compute(*s);
      s->events[id].deps.push_back(id);
      return id;
    }
    case Corruption::kNonBijectivePlacement: {
      if (s->placement.empty()) {
        s->placement.resize(s->cores);
        for (std::size_t i = 0; i < s->cores; ++i) s->placement[i] = i;
      }
      s->placement[0] = s->placement[s->cores - 1];  // duplicate one core
      return kNoEvent;
    }
    case Corruption::kOrphanBurstEndpoint: {
      // Idle the consumer core the first message delivers to; the burst
      // now feeds a core with no work in the consuming layer.
      const EventId id = first_comm(*s);
      Event& consumer = s->events[id + 1];
      consumer.per_core_work[s->events[id].messages.front().dst] = {};
      return id;
    }
    case Corruption::kByteTotalMismatch: {
      const EventId id = first_comm(*s);
      s->events[id].traffic_bytes += 1;
      return id;
    }
    case Corruption::kOffMeshRoute: {
      const EventId id = first_comm(*s);
      s->events[id].messages.front().dst = s->cores + 1;
      return id;
    }
    case Corruption::kCapacityOverflow: {
      const EventId id = first_compute(*s);
      for (accel::LayerPartitionWork& w : s->events[id].per_core_work) {
        if (idle(w)) continue;
        w.weight_bytes = std::numeric_limits<std::uint64_t>::max();
        break;
      }
      return id;
    }
    case Corruption::kNondeterministicReduction: {
      // Swapping two messages preserves the byte total but breaks the
      // strictly ascending (producer, consumer) emission order.
      const EventId id = first_comm(*s);
      auto& msgs = s->events[id].messages;
      LS_CHECK_MSG(msgs.size() >= 2,
                   "corrupt(): burst too small to reorder");
      std::swap(msgs.front(), msgs.back());
      return id;
    }
    case Corruption::kChipBoundaryViolation: {
      // Bend the first inter-chip transfer off its destination gateway
      // (onto the gateway's mesh neighbour on the same chip).
      for (EventId id = 0; id < s->events.size(); ++id) {
        Event& e = s->events[id];
        if (e.kind != EventKind::kComm || !e.inter_chip) continue;
        e.messages.front().dst += 1;
        return id;
      }
      LS_CHECK_MSG(false, "corrupt(): schedule has no inter-chip event");
      return kNoEvent;
    }
  }
  return kNoEvent;
}

}  // namespace testing

}  // namespace ls::sched
