#include "sched/schedule.hpp"

#include "check/check.hpp"
#include "sched/cost_model.hpp"
#include "util/json.hpp"

namespace ls::sched {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kComm:
      return "comm";
    case EventKind::kCompute:
      return "compute";
  }
  return "?";
}

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kTraditional:
      return "traditional";
    case Strategy::kStructureLevel:
      return "structure_level";
    case Strategy::kSparsified:
      return "sparsified";
    case Strategy::kHybrid:
      return "hybrid";
  }
  return "?";
}

const char* to_string(PartitionDim dim) {
  switch (dim) {
    case PartitionDim::kKernel:
      return "kernel";
    case PartitionDim::kBatch:
      return "batch";
    case PartitionDim::kHeight:
      return "height";
    case PartitionDim::kWidth:
      return "width";
    case PartitionDim::kChannel:
      return "channel";
  }
  return "?";
}

bool parse_partition_dim(const std::string& name, PartitionDim* out) {
  for (const PartitionDim dim :
       {PartitionDim::kKernel, PartitionDim::kBatch, PartitionDim::kHeight,
        PartitionDim::kWidth, PartitionDim::kChannel}) {
    if (name == to_string(dim)) {
      *out = dim;
      return true;
    }
  }
  return false;
}

std::size_t Schedule::compute_event_count() const {
  std::size_t n = 0;
  for (const Event& e : events) n += e.kind == EventKind::kCompute ? 1 : 0;
  return n;
}

std::size_t Schedule::comm_event_count() const {
  std::size_t n = 0;
  for (const Event& e : events) n += e.kind == EventKind::kComm ? 1 : 0;
  return n;
}

std::size_t Schedule::traffic_bytes() const {
  std::size_t n = 0;
  for (const Event& e : events) n += e.traffic_bytes;
  return n;
}

void validate(const Schedule& schedule) {
  if constexpr (check::kEnabled) {
    LS_CHECK_MSG(schedule.cores > 0, "schedule '%s' has zero cores",
                 schedule.net_name.c_str());
    LS_CHECK_MSG(schedule.chips > 0 && schedule.cores % schedule.chips == 0,
                 "schedule '%s': %zu chips do not evenly divide %zu cores",
                 schedule.net_name.c_str(), schedule.chips, schedule.cores);
    if (!schedule.placement.empty()) {
      // Invariant class 9: a recorded placement must be a bijection of
      // 0..cores-1 — anything else silently drops or duplicates partitions.
      LS_CHECK_MSG(schedule.placement.size() == schedule.cores,
                   "schedule '%s': placement maps %zu partitions on a "
                   "%zu-core machine",
                   schedule.net_name.c_str(), schedule.placement.size(),
                   schedule.cores);
      std::vector<bool> seen(schedule.cores, false);
      for (const std::size_t core : schedule.placement) {
        LS_CHECK_MSG(core < schedule.cores && !seen[core],
                     "schedule '%s': placement is not a bijective "
                     "permutation (core %zu out of range or repeated)",
                     schedule.net_name.c_str(), core);
        seen[core] = true;
      }
    }
    for (std::size_t id = 0; id < schedule.events.size(); ++id) {
      const Event& e = schedule.events[id];
      LS_CHECK_MSG(!e.layer_name.empty(),
                   "schedule '%s': event %zu has no layer name",
                   schedule.net_name.c_str(), id);
      LS_CHECK_MSG(e.chip < schedule.chips,
                   "schedule '%s': event %zu ('%s') claims chip %zu on a "
                   "%zu-chip package",
                   schedule.net_name.c_str(), id, e.layer_name.c_str(),
                   e.chip, schedule.chips);
      LS_CHECK_MSG(!e.inter_chip || e.kind == EventKind::kComm,
                   "schedule '%s': event %zu ('%s') is inter-chip but not "
                   "a comm event",
                   schedule.net_name.c_str(), id, e.layer_name.c_str());
      LS_CHECK_MSG(!e.inter_chip || e.chip > 0,
                   "schedule '%s': inter-chip event %zu ('%s') enters chip "
                   "0 — there is no boundary before the first chip",
                   schedule.net_name.c_str(), id, e.layer_name.c_str());
      for (const EventId dep : e.deps) {
        LS_CHECK_MSG(dep < id,
                     "schedule '%s': event %zu ('%s') depends on %zu — deps "
                     "must point backwards (topological order / acyclicity)",
                     schedule.net_name.c_str(), id, e.layer_name.c_str(), dep);
      }
      if (e.kind == EventKind::kComm) {
        LS_CHECK_MSG(!e.messages.empty(),
                     "schedule '%s': comm event %zu ('%s') carries no "
                     "messages — empty bursts must be elided at build time",
                     schedule.net_name.c_str(), id, e.layer_name.c_str());
        std::size_t bytes = 0;
        for (const noc::Message& m : e.messages) {
          bytes += m.bytes;
          LS_CHECK_MSG(m.src < schedule.cores && m.dst < schedule.cores,
                       "schedule '%s': comm event %zu ('%s') message "
                       "%zu->%zu is outside the %zu-core machine",
                       schedule.net_name.c_str(), id, e.layer_name.c_str(),
                       m.src, m.dst, schedule.cores);
        }
        LS_CHECK_MSG(bytes == e.traffic_bytes,
                     "schedule '%s': comm event %zu ('%s') claims %zu bytes "
                     "but its messages carry %zu",
                     schedule.net_name.c_str(), id, e.layer_name.c_str(),
                     e.traffic_bytes, bytes);
        LS_CHECK_MSG(id + 1 < schedule.events.size() &&
                         schedule.events[id + 1].kind == EventKind::kCompute &&
                         schedule.events[id + 1].layer_name == e.layer_name,
                     "schedule '%s': comm event %zu ('%s') is not "
                     "immediately followed by its compute event",
                     schedule.net_name.c_str(), id, e.layer_name.c_str());
      } else {
        LS_CHECK_MSG(e.per_core_work.size() == schedule.cores,
                     "schedule '%s': compute event %zu ('%s') carries work "
                     "for %zu cores on a %zu-core machine",
                     schedule.net_name.c_str(), id, e.layer_name.c_str(),
                     e.per_core_work.size(), schedule.cores);
        LS_CHECK_MSG(e.messages.empty() && e.traffic_bytes == 0,
                     "schedule '%s': compute event %zu ('%s') carries comm "
                     "payload",
                     schedule.net_name.c_str(), id, e.layer_name.c_str());
      }
    }
  } else {
    (void)schedule;
  }
}

void validate_against(const Schedule& schedule, const nn::NetSpec& spec) {
  if constexpr (check::kEnabled) {
    validate(schedule);
    std::vector<std::string> expected;
    for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
      if (a.is_compute()) expected.push_back(a.spec.name);
    }
    std::vector<const Event*> computes;
    for (const Event& e : schedule.events) {
      if (e.kind == EventKind::kCompute) computes.push_back(&e);
    }
    LS_CHECK_MSG(computes.size() == expected.size(),
                 "schedule '%s' covers %zu compute layers but '%s' has %zu",
                 schedule.net_name.c_str(), computes.size(),
                 spec.name.c_str(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      LS_CHECK_MSG(computes[i]->layer_name == expected[i],
                   "schedule '%s': compute event %zu is '%s' but layer %zu "
                   "of '%s' is '%s'",
                   schedule.net_name.c_str(), i,
                   computes[i]->layer_name.c_str(), i, spec.name.c_str(),
                   expected[i].c_str());
    }
  } else {
    (void)schedule;
    (void)spec;
  }
}

void to_json(const Schedule& schedule, util::JsonWriter& w,
             const CycleEstimate* estimate) {
  w.begin_object();
  w.key("net").value(schedule.net_name);
  w.key("strategy").value(to_string(schedule.strategy));
  w.key("cores").value(static_cast<std::uint64_t>(schedule.cores));
  // Single-chip dumps stay byte-identical to the pre-hierarchy format:
  // chip fields only appear once a schedule actually spans chips.
  if (schedule.chips > 1) {
    w.key("chips").value(static_cast<std::uint64_t>(schedule.chips));
  }
  if (!schedule.placement.empty()) {
    w.key("placement");
    w.begin_array();
    for (const std::size_t core : schedule.placement) {
      w.value(static_cast<std::uint64_t>(core));
    }
    w.end_array();
  }
  w.key("traffic_bytes")
      .value(static_cast<std::uint64_t>(schedule.traffic_bytes()));
  if (estimate != nullptr) {
    w.key("est_total_cycles").value(estimate->total_cycles);
    w.key("est_compute_cycles").value(estimate->compute_cycles);
    w.key("est_comm_cycles").value(estimate->comm_cycles);
  }
  w.key("events");
  w.begin_array();
  for (std::size_t id = 0; id < schedule.events.size(); ++id) {
    const Event& e = schedule.events[id];
    w.begin_object();
    w.key("id").value(static_cast<std::uint64_t>(id));
    w.key("kind").value(to_string(e.kind));
    w.key("layer").value(e.layer_name);
    if (schedule.chips > 1) {
      w.key("chip").value(static_cast<std::uint64_t>(e.chip));
      if (e.kind == EventKind::kComm) {
        w.key("inter_chip").value(e.inter_chip);
      }
    }
    if (estimate != nullptr && id < estimate->events.size()) {
      // The analytic scorer's view of this event: what it contributes to
      // the serial timeline (after overlap) and, for comm events, the
      // estimated raw drain before overlap.
      w.key("est_cycles").value(estimate->events[id].cycles);
      if (e.kind == EventKind::kComm) {
        w.key("est_raw_comm_cycles")
            .value(estimate->events[id].raw_comm_cycles);
      }
    }
    w.key("deps");
    w.begin_array();
    for (const EventId dep : e.deps) {
      w.value(static_cast<std::uint64_t>(dep));
    }
    w.end_array();
    if (e.kind == EventKind::kComm) {
      w.key("bytes").value(static_cast<std::uint64_t>(e.traffic_bytes));
      w.key("overlap").value(e.overlap_with_prev_compute);
      w.key("messages");
      w.begin_array();
      for (const noc::Message& m : e.messages) {
        w.begin_array();
        w.value(static_cast<std::uint64_t>(m.src));
        w.value(static_cast<std::uint64_t>(m.dst));
        w.value(static_cast<std::uint64_t>(m.bytes));
        w.end_array();
      }
      w.end_array();
    } else {
      w.key("dim").value(to_string(e.partition_dim));
      w.key("macs_discounted").value(e.macs_discounted);
      w.key("per_core");
      w.begin_array();
      for (std::size_t c = 0; c < e.per_core_work.size(); ++c) {
        const accel::LayerPartitionWork& work = e.per_core_work[c];
        if (work.macs == 0 && work.weight_bytes == 0 &&
            work.input_bytes == 0 && work.output_bytes == 0) {
          continue;  // idle core
        }
        w.begin_object();
        w.key("core").value(static_cast<std::uint64_t>(c));
        w.key("macs").value(work.macs);
        w.key("weight_bytes").value(work.weight_bytes);
        w.key("input_bytes").value(work.input_bytes);
        w.key("output_bytes").value(work.output_bytes);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string to_json(const Schedule& schedule, const CycleEstimate* estimate) {
  util::JsonWriter w;
  to_json(schedule, w, estimate);
  return w.str();
}

}  // namespace ls::sched
