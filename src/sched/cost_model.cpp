#include "sched/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "check/check.hpp"
#include "noc/topology.hpp"

namespace ls::sched {

namespace {

// Directed-link load accumulator for one burst. Links are indexed as
// (router, direction) with 4 mesh directions per router; the local
// injection/ejection ports are tracked separately per core (they are
// single-channel — phys_channels multiplies mesh links only).
class LinkLoads {
 public:
  explicit LinkLoads(std::size_t cores)
      : link_(cores * 4, 0), inject_(cores, 0), eject_(cores, 0) {}

  void route(const noc::MeshTopology& topo, const noc::NocConfig& cfg,
             std::size_t src, std::size_t dst, std::uint64_t flits) {
    inject_[src] += flits;
    eject_[dst] += flits;
    noc::Coord at = topo.coord(src);
    const noc::Coord to = topo.coord(dst);
    const bool x_first = cfg.routing == noc::Routing::kXY;
    for (int phase = 0; phase < 2; ++phase) {
      const bool x_phase = (phase == 0) == x_first;
      while (x_phase ? at.x != to.x : at.y != to.y) {
        std::size_t dir;  // 0=east 1=west 2=south 3=north
        noc::Coord next = at;
        if (x_phase) {
          dir = to.x > at.x ? 0 : 1;
          next.x = to.x > at.x ? at.x + 1 : at.x - 1;
        } else {
          dir = to.y > at.y ? 2 : 3;
          next.y = to.y > at.y ? at.y + 1 : at.y - 1;
        }
        link_[topo.core_at(at) * 4 + dir] += flits;
        at = next;
      }
    }
  }

  /// Cycles the most contended resource needs to pass its flits.
  std::uint64_t bottleneck_cycles(std::size_t phys_channels) const {
    std::uint64_t worst = 0;
    for (const std::uint64_t load : link_) {
      worst = std::max(worst, (load + phys_channels - 1) / phys_channels);
    }
    for (const std::uint64_t load : inject_) worst = std::max(worst, load);
    for (const std::uint64_t load : eject_) worst = std::max(worst, load);
    return worst;
  }

 private:
  std::vector<std::uint64_t> link_;
  std::vector<std::uint64_t> inject_;
  std::vector<std::uint64_t> eject_;
};

std::uint64_t estimate_burst(const noc::MeshNocSimulator& sim,
                             const std::vector<noc::Message>& messages) {
  const noc::MeshTopology& topo = sim.topology();
  const noc::NocConfig& cfg = sim.config();
  LinkLoads loads(topo.num_cores());
  std::uint64_t max_zero_load = 0;
  for (const noc::Message& m : messages) {
    if (m.src == m.dst || m.bytes == 0) continue;
    loads.route(topo, cfg, m.src, m.dst,
                static_cast<std::uint64_t>(sim.flits_for_bytes(m.bytes)));
    max_zero_load = std::max(max_zero_load, sim.zero_load_latency(m));
  }
  // Serialization-bound bursts drain at the bottleneck resource's rate
  // (plus the head-flit pipeline of the last packet through it);
  // latency-bound bursts finish with their slowest lone message.
  return std::max(max_zero_load,
                  loads.bottleneck_cycles(cfg.phys_channels) +
                      cfg.router_latency);
}

}  // namespace

std::uint64_t inter_chip_transfer_cycles(const noc::InterChipLinkClass& link,
                                         std::uint64_t bytes) {
  const double bw =
      link.bytes_per_cycle * static_cast<double>(link.links_per_boundary);
  LS_CHECK_MSG(bw > 0.0, "inter-chip link has zero bandwidth");
  return link.latency_cycles +
         static_cast<std::uint64_t>(
             std::ceil(static_cast<double>(bytes) / bw));
}

CycleEstimate estimate_cycles(const Schedule& schedule,
                              const CostModelConfig& cfg) {
  LS_CHECK_MSG(schedule.cores > 0, "estimate_cycles: schedule '%s' has no "
               "cores", schedule.net_name.c_str());
  LS_CHECK_MSG(schedule.chips > 0 && schedule.cores % schedule.chips == 0,
               "estimate_cycles: schedule '%s' has %zu chips over %zu cores",
               schedule.net_name.c_str(), schedule.chips, schedule.cores);
  // Bursts ride each chip's own mesh; on a single-chip schedule this is
  // exactly the historical whole-machine mesh.
  const std::size_t cores_per_chip = schedule.cores / schedule.chips;
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores_per_chip);
  const noc::MeshNocSimulator sim(topo, cfg.noc);
  // Same per-core DRAM-share construction as CmpSystem: the compute half
  // of the estimate is bit-identical to the executor's numbers. Every chip
  // has its own DRAM channel, shared by its cores.
  accel::AccelConfig per_core = cfg.accel;
  per_core.dram_bytes_per_cycle =
      cfg.chip_dram_bytes_per_cycle / static_cast<double>(cores_per_chip);
  const accel::CoreModel core_model(per_core);

  CycleEstimate est;
  est.events.resize(schedule.events.size());
  std::uint64_t prev_compute = 0;
  std::vector<noc::Message> local;
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const Event& e = schedule.events[i];
    if (e.kind == EventKind::kComm) {
      // prev_compute still holds the *previous* layer's compute here — the
      // consumer compute event that follows is what updates it — so the
      // overlap arithmetic matches CmpSystem::execute exactly.
      std::uint64_t raw = 0;
      if (e.inter_chip) {
        raw = inter_chip_transfer_cycles(cfg.inter_chip, e.traffic_bytes);
      } else if (schedule.chips > 1) {
        // Localize the burst onto its owning chip's mesh coordinates.
        const std::size_t base = e.chip * cores_per_chip;
        local.clear();
        local.reserve(e.messages.size());
        for (const noc::Message& m : e.messages) {
          local.push_back({m.src - base, m.dst - base, m.bytes, 0});
        }
        raw = static_cast<std::uint64_t>(
            static_cast<double>(estimate_burst(sim, local)) *
            cfg.noc_clock_divider);
      } else {
        raw = static_cast<std::uint64_t>(
            static_cast<double>(estimate_burst(sim, e.messages)) *
            cfg.noc_clock_divider);
      }
      std::uint64_t blocking = raw;
      if (e.overlap_with_prev_compute) {
        blocking = raw > prev_compute ? raw - prev_compute : 0;
      }
      est.events[i].raw_comm_cycles = raw;
      est.events[i].cycles = blocking;
      est.comm_cycles += blocking;
      continue;
    }
    const accel::PartitionCost cost =
        core_model.partition_cost(e.per_core_work);
    est.events[i].cycles = cost.worst_cycles;
    est.compute_cycles += cost.worst_cycles;
    prev_compute = cost.worst_cycles;
  }
  est.total_cycles = est.compute_cycles + est.comm_cycles;
  return est;
}

}  // namespace ls::sched
