#pragma once
// Schedule builders: lower a network architecture plus its layer-transition
// traffic (and, for the sparsified strategies, a SparsityProfile) into the
// Schedule IR (schedule.hpp).
//
// All four strategies share one lowering — that is the point of the IR.
// They differ only in their *inputs*:
//   * traditional       — the dense spec with core::traffic_dense,
//   * structure-level   — the grouped spec with core::traffic_dense (the
//     grouping transform already removed the inter-group transitions),
//   * sparsified        — SS / SS_Mask: the dense spec with
//     core::traffic_live from the group-Lasso-trained weights plus the
//     matching SparsityProfile discounting per-core compute,
//   * hybrid            — the grouped spec with live traffic + profile.
// The thin strategy entry points below exist so call sites state intent
// (and get strategy-appropriate invariant checks) while `lower()` stays the
// single source of truth for what a layer transition costs.
//
// Lowering is bit-exact with the pre-IR CmpSystem::run_inference loop: the
// per-core share/live arithmetic (including its +0.5 roundings and
// accumulation order) is reproduced here so an executor over the built
// schedule yields byte-identical InferenceResults — the golden equivalence
// suite (`ctest -L sched`) pins this.

#include <cstddef>

#include "core/sparsity_profile.hpp"
#include "core/traffic.hpp"
#include "nn/layer_spec.hpp"
#include "sched/schedule.hpp"

namespace ls::sched {

/// Lowering knobs — the subset of ls::sim::SystemConfig the builder needs.
/// (A separate struct keeps ls_sched below ls_sim in the module DAG.)
struct BuildOptions {
  std::size_t cores = 16;
  std::size_t bytes_per_value = 2;
  /// Stamp the overlap ablation onto every comm event.
  bool overlap_comm = false;
  /// Apply SparsityProfile discounts to per-core work (mirrors
  /// SystemConfig::sparse_cycle_model).
  bool sparse_cycle_model = true;
  /// Per-compute-layer parallelization dimension, in layer order (empty =
  /// kernel-wise everywhere, the historical default). The size must match
  /// the spec's compute-layer count and every dim must be compatible with
  /// its layer's shape (invariant class 9; see dim_compatible()):
  /// height/width need an ungrouped conv with a splittable spatial axis,
  /// channel needs >= 2 input units, is kernel-only on grouped convs, and
  /// cannot sit on the last compute layer (its reduce-scatter rides on the
  /// next layer transition). Non-kernel dims also require a null
  /// SparsityProfile — liveness discounts are defined on the kernel split.
  std::vector<PartitionDim> layer_dims;
  /// Partition index -> physical mesh core permutation (empty = identity).
  /// Remaps every message endpoint and the per-core work vector; with
  /// kernel dims and an identity placement the lowering is bit-exact with
  /// the historical path.
  std::vector<std::size_t> placement;
};

/// Whether `dim` is a legal choice for compute layer `layer_index` (index
/// into the spec's compute layers, in order) — the tuner's move filter and
/// the lowering's invariant-class-9 precondition.
bool dim_compatible(const nn::NetSpec& spec, std::size_t layer_index,
                    PartitionDim dim);

/// The shared lowering: one compute event per compute layer of `spec`
/// (per-core work split by core::balanced_ranges, discounted by `sparsity`
/// when given), preceded by a comm event wherever `traffic` carries a
/// non-empty burst into that layer. Events form a linear dependency chain.
Schedule lower(const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
               const BuildOptions& opts,
               const core::SparsityProfile* sparsity = nullptr,
               Strategy strategy = Strategy::kTraditional);

/// Traditional parallelization: dense traffic, no sparsity.
Schedule build_traditional(const nn::NetSpec& spec,
                           const core::InferenceTraffic& dense_traffic,
                           const BuildOptions& opts);

/// Structure-level (grouped) parallelization: the grouped spec's dense
/// traffic — grouping removed the transitions instead of sparsifying them.
Schedule build_structure_level(const nn::NetSpec& grouped_spec,
                               const core::InferenceTraffic& dense_traffic,
                               const BuildOptions& opts);

/// SS / SS_Mask sparsified parallelization: live traffic extracted from the
/// trained weights plus the matching per-core sparsity discounts. The two
/// schemes differ only in training (uniform vs distance-weighted lasso
/// strength); their lowering is identical.
Schedule build_sparsified(const nn::NetSpec& spec,
                          const core::InferenceTraffic& live_traffic,
                          const BuildOptions& opts,
                          const core::SparsityProfile* sparsity);

/// Hybrid: grouped spec + live traffic + sparsity discounts on the
/// still-dense layers.
Schedule build_hybrid(const nn::NetSpec& grouped_spec,
                      const core::InferenceTraffic& live_traffic,
                      const BuildOptions& opts,
                      const core::SparsityProfile* sparsity);

// ---------------------------------------------------------------------------
// Multi-chip stage pipelining (DESIGN.md §4k).

/// Stage-partitions the net's compute layers across `chips` pipeline
/// stages: returns one stage id per compute layer (in layer order),
/// contiguous and non-decreasing with every stage non-empty, balanced by
/// MAC prefix sums so stages carry roughly equal compute. Requires at
/// least `chips` compute layers (invariant class 9 in checked builds).
std::vector<std::size_t> partition_stages(const nn::NetSpec& spec,
                                          std::size_t chips);

/// Multi-chip lowering: runs the shared `lower()` at the per-chip core
/// count (opts.cores = cores per chip; `traffic` must be the per-chip-mesh
/// analysis at that count), then maps each pipeline stage onto its chip's
/// chip-major core range. Intra-stage transitions keep their mesh bursts,
/// localized to the owning chip; stage-boundary transitions are replaced
/// by a single gateway-to-gateway inter-chip transfer of the consumer
/// layer's unique input activations (the serial link carries each byte
/// once — no per-core fan-out off-die). The result spans
/// chips * opts.cores cores with Schedule::chips = chips; chips == 1
/// degenerates to `lower()` exactly. opts.placement must be empty or the
/// identity (placement permutations are per-chip-mesh concepts), and a
/// channel split may not sit on the last layer of any stage (its
/// reduce-scatter cannot ride a gateway link).
Schedule lower_pipelined(const nn::NetSpec& spec,
                         const core::InferenceTraffic& traffic,
                         const BuildOptions& opts, std::size_t chips,
                         const core::SparsityProfile* sparsity = nullptr,
                         Strategy strategy = Strategy::kTraditional);

}  // namespace ls::sched
