#pragma once
// Static schedule verifier (DESIGN.md §4j "Static analysis").
//
// `sched::validate` (schedule.hpp) is an LS_CHECK layer: it aborts on the
// first structural violation and compiles to nothing in unchecked builds.
// That is the right tool for catching builder bugs in CI, but the wrong
// one for *data*: tuned-schedule caches are loaded from disk, hand-edited,
// and consumed blind by serving — a malformed schedule must be rejected
// with a diagnostic in every build, before a single flit is simulated.
//
// verify() is that front door: a pure function over any Schedule that
// proves, without executing anything,
//   * acyclicity        — every dependency edge points to an earlier event
//     (the event list is a topological order, so execution cannot
//     deadlock),
//   * placement         — the recorded partition->core permutation is a
//     bijection of 0..cores-1, and every compute event covers exactly the
//     core range (per-core work vector of `cores` entries),
//   * event pairing     — every comm burst is immediately followed by the
//     compute event it feeds (same layer) and has a producing compute
//     event to drain from,
//   * burst endpoints   — every message's source core holds work in the
//     producing layer and its destination holds work in the consuming
//     layer (skipped after a channel-split producer, whose reduce-scatter
//     targets the kernel-wise layout instead — see builders.cpp),
//   * byte totals       — a comm event's declared bytes equal the sum of
//     its messages (the flit simulator packetizes the messages; the cost
//     model prices the total — they must agree),
//   * route validity    — every message's XY/YX dimension-ordered route
//     stays on the configured mesh (for a rectangular mesh this reduces
//     to endpoint containment: DOR paths between in-bounds coordinates
//     never leave the rectangle),
//   * capacity          — no core is assigned more weight bytes than its
//     weight buffer can hold when the accelerator model has no DRAM path
//     to stream them (dram_bytes_per_cycle == 0),
//   * reduction order   — messages within a burst are strictly ascending
//     by (producer partition, consumer partition), the deterministic
//     emission order every builder uses; duplicates or inversions would
//     make the channel-split reduce-scatter's accumulation order
//     ambiguous. A channel-split compute event must also not be last (its
//     reduce-scatter rides on the next layer transition),
//   * chip hierarchy    — multi-chip schedules only: compute chip ids form
//     a non-decreasing onto map of pipeline stages over 0..chips-1, work
//     and on-chip bursts stay inside their chip's chip-major core range,
//     routes are checked on the per-chip mesh, and every inter-chip
//     transfer is a single gateway(chip-1) -> gateway(chip) message —
//     bytes cross chip boundaries only at gateway links.
//
// Violations are collected into a VerifyReport — code, event id, message —
// never thrown or aborted, so callers decide: CmpSystem::execute rejects
// with std::invalid_argument, the tuner skips the candidate, and
// `ls_experiment verify` audits a whole cache file and exits nonzero.
//
// Cost: O(events + messages + cores) with small constants — cheap enough
// to run on every execute() and negligible (<1%) next to the analytic
// cost model's per-link routing walk in the tuner loop.

#include <cstddef>
#include <string>
#include <vector>

#include "accel/core_model.hpp"
#include "noc/simulator.hpp"
#include "sched/schedule.hpp"

namespace ls::sched {

enum class VerifyCode {
  // A dependency edge that is not strictly backwards (cycle risk).
  kCyclicDependence,
  // Placement permutation or per-core coverage broken.
  kPlacementNotBijective,
  // Comm/compute pairing or payload shape broken.
  kUnpairedEvent,
  // A message endpoint that is idle in its producer/consumer layer.
  kOrphanBurstEndpoint,
  // Declared burst bytes differ from the sum of its messages.
  kByteTotalMismatch,
  // A dimension-ordered route that leaves the configured mesh.
  kOffMeshRoute,
  // Weight bytes exceed the buffer with no DRAM path to stream them.
  kCapacityOverflow,
  // Burst ordering / reduce-scatter determinism precondition broken.
  kNondeterministicReduction,
  // Multi-chip stage/chip structure broken: chip ids not a non-decreasing
  // onto map of pipeline stages, work or on-chip bursts leaking across a
  // chip's core range, or an inter-chip transfer not shaped
  // gateway(chip-1) -> gateway(chip).
  kChipBoundaryViolation,
};

/// Stable kebab-case rule name ("cyclic-dependence", ...), used in
/// diagnostics and by the `ls_experiment verify` report.
const char* to_string(VerifyCode code);

/// Sentinel event id for schedule-level violations (placement, cores).
inline constexpr EventId kNoEvent = static_cast<EventId>(-1);

struct Violation {
  VerifyCode code = VerifyCode::kCyclicDependence;
  /// The event the violation pinpoints (kNoEvent for schedule-level).
  EventId event = kNoEvent;
  std::string message;
};

struct VerifyReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// One "event N [rule-id]: message" line per violation.
  std::string to_string() const;
};

struct VerifyOptions {
  /// Capacity bounds (weight buffer bytes, DRAM path). Callers with a
  /// configured system should pass its per-core accel config.
  accel::AccelConfig accel{};
  noc::NocConfig noc{};
  /// Disables the kCapacityOverflow class (the other invariants are
  /// unconditional structure, capacity is a model parameter).
  bool check_capacity = true;
};

/// Pure static pass over `schedule`; returns every violation found (empty
/// report == sound). Never throws, never aborts, active in all builds.
VerifyReport verify(const Schedule& schedule,
                    const VerifyOptions& options = {});

namespace testing {

/// Invariant class 10 corruption seeds, one per verifier violation class.
/// Mirrors VerifyCode so the negative suite can assert the exact code.
enum class Corruption {
  kCyclicDependence,
  kNonBijectivePlacement,
  kOrphanBurstEndpoint,
  kByteTotalMismatch,
  kOffMeshRoute,
  kCapacityOverflow,
  kNondeterministicReduction,
  /// Multi-chip schedules only: bends an inter-chip message off its
  /// destination gateway.
  kChipBoundaryViolation,
};

/// Seeds exactly one `kind` corruption into an otherwise-valid schedule
/// and returns the event id verify() must pinpoint (kNoEvent for
/// schedule-level corruptions). Requires a lowered schedule with at least
/// one multi-message comm event and two cores.
EventId corrupt(Schedule* schedule, Corruption kind);

}  // namespace testing

}  // namespace ls::sched
