#include "sched/builders.hpp"

#include <unordered_map>

#include "core/partition.hpp"

namespace ls::sched {

Schedule lower(const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
               const BuildOptions& opts,
               const core::SparsityProfile* sparsity, Strategy strategy) {
  const auto analysis = nn::analyze(spec);
  const std::size_t P = opts.cores;

  std::unordered_map<std::string, const core::TransitionTraffic*> by_layer;
  for (const auto& t : traffic.transitions) {
    by_layer.emplace(t.layer_name, &t);
  }

  Schedule schedule;
  schedule.net_name = spec.name;
  schedule.strategy = strategy;
  schedule.cores = P;

  for (const nn::LayerAnalysis& a : analysis) {
    if (!a.is_compute()) continue;

    // The id of the previous layer's compute event (if any) — both the
    // burst and this layer's compute hang off it.
    const bool have_prev = !schedule.events.empty();
    const EventId prev_compute = have_prev ? schedule.events.size() - 1 : 0;

    // --- Comm event: the synchronization burst into this layer ------------
    bool have_comm = false;
    const auto it = by_layer.find(a.spec.name);
    if (it != by_layer.end() && !it->second->messages.empty()) {
      Event comm;
      comm.kind = EventKind::kComm;
      comm.layer_name = a.spec.name;
      comm.messages = it->second->messages;
      comm.traffic_bytes = it->second->total_bytes;
      comm.overlap_with_prev_compute = opts.overlap_comm;
      if (have_prev) comm.deps.push_back(prev_compute);
      schedule.events.push_back(std::move(comm));
      have_comm = true;
    }

    // --- Compute event: the layer's per-core kernel partitions ------------
    // Work splitting reproduces the pre-IR executor loop bit-for-bit: same
    // share/live expressions, same +0.5 roundings.
    Event compute;
    compute.kind = EventKind::kCompute;
    compute.layer_name = a.spec.name;
    if (have_comm) compute.deps.push_back(schedule.events.size() - 1);
    if (have_prev) compute.deps.push_back(prev_compute);

    const std::size_t out_units = a.spec.kind == nn::LayerKind::kConv
                                      ? a.spec.out_channels
                                      : a.spec.out_features;
    const auto out_ranges = core::balanced_ranges(out_units, P);
    const std::size_t weight_bytes_total =
        a.weight_count * opts.bytes_per_value;
    const std::size_t in_bytes = a.in.numel() * opts.bytes_per_value;
    const core::LayerSparsity* layer_sparsity = nullptr;
    if (opts.sparse_cycle_model && sparsity != nullptr) {
      layer_sparsity = sparsity->find(a.spec.name);
    }
    compute.per_core_work.assign(P, accel::LayerPartitionWork{});
    for (std::size_t c = 0; c < P; ++c) {
      const double share = out_units
                               ? static_cast<double>(out_ranges[c].count()) /
                                     static_cast<double>(out_units)
                               : 0.0;
      if (share == 0.0) continue;
      const double live = layer_sparsity != nullptr &&
                                  c < layer_sparsity->live_fraction.size()
                              ? layer_sparsity->live_fraction[c]
                              : 1.0;
      accel::LayerPartitionWork& work = compute.per_core_work[c];
      const auto dense_macs = static_cast<std::uint64_t>(
          static_cast<double>(a.macs) * share + 0.5);
      work.macs = static_cast<std::uint64_t>(
          static_cast<double>(a.macs) * share * live + 0.5);
      compute.macs_discounted += dense_macs - work.macs;
      work.weight_bytes = static_cast<std::uint64_t>(
          static_cast<double>(weight_bytes_total) * share * live + 0.5);
      work.input_bytes = in_bytes;  // every core reads the full input
      work.output_bytes = static_cast<std::uint64_t>(
          static_cast<double>(a.out.numel() * opts.bytes_per_value) * share +
          0.5);
    }
    schedule.events.push_back(std::move(compute));
  }

  validate_against(schedule, spec);
  return schedule;
}

Schedule build_traditional(const nn::NetSpec& spec,
                           const core::InferenceTraffic& dense_traffic,
                           const BuildOptions& opts) {
  return lower(spec, dense_traffic, opts, nullptr, Strategy::kTraditional);
}

Schedule build_structure_level(const nn::NetSpec& grouped_spec,
                               const core::InferenceTraffic& dense_traffic,
                               const BuildOptions& opts) {
  return lower(grouped_spec, dense_traffic, opts, nullptr,
               Strategy::kStructureLevel);
}

Schedule build_sparsified(const nn::NetSpec& spec,
                          const core::InferenceTraffic& live_traffic,
                          const BuildOptions& opts,
                          const core::SparsityProfile* sparsity) {
  return lower(spec, live_traffic, opts, sparsity, Strategy::kSparsified);
}

Schedule build_hybrid(const nn::NetSpec& grouped_spec,
                      const core::InferenceTraffic& live_traffic,
                      const BuildOptions& opts,
                      const core::SparsityProfile* sparsity) {
  return lower(grouped_spec, live_traffic, opts, sparsity, Strategy::kHybrid);
}

}  // namespace ls::sched
