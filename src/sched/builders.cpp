#include "sched/builders.hpp"

#include <algorithm>
#include <unordered_map>

#include "check/check.hpp"
#include "core/partition.hpp"

namespace ls::sched {

namespace {

// ---------------------------------------------------------------------------
// Geometry of the non-kernel partition dimensions.
//
// Every compute layer's output volume is an axis-aligned (C, H, W) box
// (H = W = 1 for FC layers, with the feature axis on C). Each partition
// dimension assigns partition j an axis-aligned *owned* sub-box of the
// layer's output, and a *needed* sub-box of the layer's input; the bytes
// partition p must send partition c across a layer transition are the
// volume of the intersection of p's owned box (mapped forward through the
// interstitial pool/relu/flatten layers into the consumer's coordinate
// frame, proportionally on each axis) with c's needed box. The kernel-wise
// fast path never goes through this model: transitions whose producer and
// consumer are both kernel-split reuse the caller-provided traffic
// analysis verbatim (preserving grouped-conv connectivity and weight
// liveness bit-exactly), so the geometric model only prices transitions an
// autotuner actually moved off the default.

struct Box {
  std::size_t c0 = 0, c1 = 0, h0 = 0, h1 = 0, w0 = 0, w1 = 0;
  std::size_t volume() const {
    if (c1 <= c0 || h1 <= h0 || w1 <= w0) return 0;
    return (c1 - c0) * (h1 - h0) * (w1 - w0);
  }
};

Box intersect(const Box& a, const Box& b) {
  Box r;
  r.c0 = std::max(a.c0, b.c0);
  r.c1 = std::min(a.c1, b.c1);
  r.h0 = std::max(a.h0, b.h0);
  r.h1 = std::min(a.h1, b.h1);
  r.w0 = std::max(a.w0, b.w0);
  r.w1 = std::min(a.w1, b.w1);
  return r;
}

/// Output-volume geometry of a compute layer (FC: features on the C axis).
struct OutGeom {
  std::size_t c = 0, h = 1, w = 1;
};

OutGeom out_geom(const nn::LayerAnalysis& a) {
  if (a.spec.kind == nn::LayerKind::kConv) {
    return {a.out.c, a.out.h, a.out.w};
  }
  return {a.spec.out_features, 1, 1};
}

std::size_t out_units(const nn::LayerAnalysis& a) {
  return a.spec.kind == nn::LayerKind::kConv ? a.spec.out_channels
                                             : a.spec.out_features;
}

std::size_t in_units(const nn::LayerAnalysis& a) { return a.in.c; }

/// Proportional interval map [lo, hi) from an axis of `from` units onto an
/// axis of `to` units (floor/ceil: the image is a superset of the exact
/// pre-image, so halo bytes are never under-counted at axis boundaries).
void map_axis(std::size_t lo, std::size_t hi, std::size_t from,
              std::size_t to, std::size_t* out_lo, std::size_t* out_hi) {
  if (from == 0 || lo >= hi) {
    *out_lo = *out_hi = 0;
    return;
  }
  *out_lo = lo * to / from;
  *out_hi = std::min(to, (hi * to + from - 1) / from);
}

/// Partition j's owned box of `a`'s output volume under dim `d`. kChannel
/// owns the kernel-wise layout: its reduce-scatter (emitted onto the next
/// transition) lands the reduced slices exactly where kernel-wise
/// partitioning would put them.
Box owned_box(const nn::LayerAnalysis& a, PartitionDim d, std::size_t j,
              std::size_t P) {
  const OutGeom g = out_geom(a);
  Box box{0, g.c, 0, g.h, 0, g.w};
  switch (d) {
    case PartitionDim::kKernel:
    case PartitionDim::kChannel: {
      const auto r = core::balanced_ranges(out_units(a), P)[j];
      // FC feature axis == channel axis (OutGeom), conv likewise.
      box.c0 = r.begin;
      box.c1 = r.end;
      break;
    }
    case PartitionDim::kBatch:
      if (j != 0) box = Box{};
      break;
    case PartitionDim::kHeight: {
      const auto r = core::balanced_ranges(g.h, P)[j];
      box.h0 = r.begin;
      box.h1 = r.end;
      break;
    }
    case PartitionDim::kWidth: {
      const auto r = core::balanced_ranges(g.w, P)[j];
      box.w0 = r.begin;
      box.w1 = r.end;
      break;
    }
  }
  return box;
}

/// Partition j's needed box of `a`'s *input* volume under consumer dim `d`,
/// expressed in the producer's output geometry `prev` (axes mapped
/// proportionally; conv halo rows/cols from kernel/stride/pad).
Box needed_box(const nn::LayerAnalysis& a, PartitionDim d, std::size_t j,
               std::size_t P, const OutGeom& prev) {
  const Box full{0, prev.c, 0, prev.h, 0, prev.w};
  const std::size_t Hi = a.in.h;
  const std::size_t Wi = a.in.w;
  switch (d) {
    case PartitionDim::kKernel:
      // A partition with no output units computes nothing and gathers
      // nothing (out_units < P leaves trailing partitions empty).
      return core::balanced_ranges(out_units(a), P)[j].count() > 0 ? full
                                                                   : Box{};
    case PartitionDim::kBatch:
      return j == 0 ? full : Box{};
    case PartitionDim::kHeight: {
      const auto r = core::balanced_ranges(a.out.h, P)[j];
      if (r.count() == 0) return Box{};
      const std::size_t s = a.spec.stride;
      const std::size_t k = a.spec.kernel;
      const std::size_t pad = a.spec.pad;
      const std::size_t lo = r.begin * s > pad ? r.begin * s - pad : 0;
      const std::size_t hi_raw = (r.end - 1) * s + k;
      const std::size_t hi = hi_raw > pad ? std::min(Hi, hi_raw - pad) : 0;
      Box box = full;
      map_axis(lo, hi, Hi, prev.h, &box.h0, &box.h1);
      return box;
    }
    case PartitionDim::kWidth: {
      const auto r = core::balanced_ranges(a.out.w, P)[j];
      if (r.count() == 0) return Box{};
      const std::size_t s = a.spec.stride;
      const std::size_t k = a.spec.kernel;
      const std::size_t pad = a.spec.pad;
      const std::size_t lo = r.begin * s > pad ? r.begin * s - pad : 0;
      const std::size_t hi_raw = (r.end - 1) * s + k;
      const std::size_t hi = hi_raw > pad ? std::min(Wi, hi_raw - pad) : 0;
      Box box = full;
      map_axis(lo, hi, Wi, prev.w, &box.w0, &box.w1);
      return box;
    }
    case PartitionDim::kChannel: {
      const auto r = core::balanced_ranges(in_units(a), P)[j];
      if (r.count() == 0) return Box{};
      Box box = full;
      map_axis(r.begin, r.end, in_units(a), prev.c, &box.c0, &box.c1);
      return box;
    }
  }
  return full;
}

/// Byte matrix accumulator emitting placement-mapped messages in
/// deterministic partition (p, c) order.
class TransitionAccum {
 public:
  explicit TransitionAccum(std::size_t P) : P_(P), bytes_(P * P, 0) {}

  void add(std::size_t p, std::size_t c, std::size_t bytes) {
    if (p == c || bytes == 0) return;
    bytes_[p * P_ + c] += bytes;
  }

  void emit(const std::vector<std::size_t>& place, Event* comm) const {
    for (std::size_t p = 0; p < P_; ++p) {
      for (std::size_t c = 0; c < P_; ++c) {
        const std::size_t b = bytes_[p * P_ + c];
        if (b == 0) continue;
        comm->messages.push_back({place[p], place[c], b, 0});
        comm->traffic_bytes += b;
      }
    }
  }

 private:
  std::size_t P_;
  std::vector<std::size_t> bytes_;
};

bool identity_placement(const std::vector<std::size_t>& place) {
  for (std::size_t i = 0; i < place.size(); ++i) {
    if (place[i] != i) return false;
  }
  return true;
}

}  // namespace

bool dim_compatible(const nn::NetSpec& spec, std::size_t layer_index,
                    PartitionDim dim) {
  std::vector<nn::LayerAnalysis> computes;
  for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
    if (a.is_compute()) computes.push_back(a);
  }
  if (layer_index >= computes.size()) return false;
  const nn::LayerAnalysis& a = computes[layer_index];
  const bool conv = a.spec.kind == nn::LayerKind::kConv;
  const bool grouped = conv && a.spec.groups > 1;
  switch (dim) {
    case PartitionDim::kKernel:
      return true;
    case PartitionDim::kBatch:
      return !grouped;  // grouped connectivity is modeled kernel-wise only
    case PartitionDim::kHeight:
      return conv && !grouped && a.out.h >= 2;
    case PartitionDim::kWidth:
      return conv && !grouped && a.out.w >= 2;
    case PartitionDim::kChannel:
      // The reduce-scatter rides on the *next* layer transition, so the
      // last compute layer cannot be channel-split.
      return !grouped && in_units(a) >= 2 &&
             layer_index + 1 < computes.size();
  }
  return false;
}

Schedule lower(const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
               const BuildOptions& opts,
               const core::SparsityProfile* sparsity, Strategy strategy) {
  const auto analysis = nn::analyze(spec);
  const std::size_t P = opts.cores;

  std::vector<const nn::LayerAnalysis*> computes;
  for (const nn::LayerAnalysis& a : analysis) {
    if (a.is_compute()) computes.push_back(&a);
  }

  // --- Tuning knobs: per-layer dims and the placement permutation ---------
  // (invariant class 9: malformed choices abort in checked builds).
  LS_CHECK_MSG(opts.layer_dims.empty() ||
                   opts.layer_dims.size() == computes.size(),
               "lower('%s'): %zu layer dims for %zu compute layers",
               spec.name.c_str(), opts.layer_dims.size(), computes.size());
  std::vector<std::size_t> place = opts.placement;
  if (place.empty()) {
    place.resize(P);
    for (std::size_t i = 0; i < P; ++i) place[i] = i;
  }
  LS_CHECK_MSG(place.size() == P,
               "lower('%s'): placement maps %zu partitions on a %zu-core "
               "machine",
               spec.name.c_str(), place.size(), P);
  if constexpr (check::kEnabled) {
    std::vector<bool> seen(P, false);
    for (const std::size_t core : place) {
      LS_CHECK_MSG(core < P && !seen[core],
                   "lower('%s'): placement is not a bijective permutation "
                   "(core %zu out of range or repeated)",
                   spec.name.c_str(), core);
      seen[core] = true;
    }
  }
  const auto dim_of = [&](std::size_t li) {
    return opts.layer_dims.empty() ? PartitionDim::kKernel
                                   : opts.layer_dims[li];
  };
  bool any_non_kernel = false;
  for (std::size_t li = 0; li < computes.size(); ++li) {
    if (dim_of(li) == PartitionDim::kKernel) continue;
    any_non_kernel = true;
    LS_CHECK_MSG(dim_compatible(spec, li, dim_of(li)),
                 "lower('%s'): dim '%s' is incompatible with compute layer "
                 "%zu ('%s')",
                 spec.name.c_str(), to_string(dim_of(li)), li,
                 computes[li]->spec.name.c_str());
  }
  LS_CHECK_MSG(!any_non_kernel || sparsity == nullptr,
               "lower('%s'): sparsity discounts are defined on the kernel "
               "split; clear layer_dims or drop the profile",
               spec.name.c_str());

  std::unordered_map<std::string, const core::TransitionTraffic*> by_layer;
  for (const auto& t : traffic.transitions) {
    by_layer.emplace(t.layer_name, &t);
  }

  Schedule schedule;
  schedule.net_name = spec.name;
  schedule.strategy = strategy;
  schedule.cores = P;
  if (!identity_placement(place)) schedule.placement = place;

  const nn::LayerAnalysis* prev_a = nullptr;
  std::size_t li = 0;
  for (const nn::LayerAnalysis* ap : computes) {
    const nn::LayerAnalysis& a = *ap;
    const PartitionDim dim = dim_of(li);
    const PartitionDim prev_dim = li > 0 ? dim_of(li - 1) : PartitionDim::kKernel;

    // The id of the previous layer's compute event (if any) — both the
    // burst and this layer's compute hang off it.
    const bool have_prev = !schedule.events.empty();
    const EventId prev_compute = have_prev ? schedule.events.size() - 1 : 0;

    // --- Comm event: the synchronization burst into this layer ------------
    Event comm;
    comm.kind = EventKind::kComm;
    comm.layer_name = a.spec.name;
    comm.overlap_with_prev_compute = opts.overlap_comm;
    if (prev_a != nullptr && dim == PartitionDim::kKernel &&
        prev_dim == PartitionDim::kKernel) {
      // Kernel-wise transition: reuse the caller's traffic analysis (it
      // carries grouped-conv connectivity and weight liveness the
      // geometric model does not), remapped through the placement.
      const auto it = by_layer.find(a.spec.name);
      if (it != by_layer.end() && !it->second->messages.empty()) {
        comm.messages.reserve(it->second->messages.size());
        for (const noc::Message& m : it->second->messages) {
          comm.messages.push_back({place[m.src], place[m.dst], m.bytes, 0});
        }
        comm.traffic_bytes = it->second->total_bytes;
      }
    } else if (prev_a != nullptr) {
      // A tuned dimension on either side: geometric ownership model. Boxes
      // intersect in the producer's output geometry; the bytes that
      // actually cross the NoC are the consumer's *input* activations
      // (post-pool/relu/flatten), so the intersected volume is rescaled by
      // the consumer-input : producer-output element ratio — which makes
      // the kernel->kernel degenerate case of this model agree with the
      // unit-based TransitionBuilder arithmetic exactly.
      const OutGeom prev_geom = out_geom(*prev_a);
      const double consumer_scale =
          static_cast<double>(a.in.numel()) /
          static_cast<double>(prev_geom.c * prev_geom.h * prev_geom.w);
      TransitionAccum accum(P);
      for (std::size_t c = 0; c < P; ++c) {
        const Box need = needed_box(a, dim, c, P, prev_geom);
        if (need.volume() == 0) continue;
        for (std::size_t p = 0; p < P; ++p) {
          if (p == c) continue;
          const std::size_t vol =
              intersect(owned_box(*prev_a, prev_dim, p, P), need).volume();
          accum.add(p, c,
                    static_cast<std::size_t>(
                        static_cast<double>(vol) * consumer_scale *
                            static_cast<double>(opts.bytes_per_value) +
                        0.5));
        }
      }
      if (prev_dim == PartitionDim::kChannel) {
        // Reduce-scatter of the producer's partial sums back to the
        // kernel-wise layout: partition p sends its partials of q's
        // output slice to q.
        const auto kernel_ranges =
            core::balanced_ranges(out_units(*prev_a), P);
        const std::size_t spatial = prev_geom.h * prev_geom.w;
        for (std::size_t p = 0; p < P; ++p) {
          for (std::size_t q = 0; q < P; ++q) {
            if (p == q) continue;
            accum.add(p, q,
                      kernel_ranges[q].count() * spatial *
                          opts.bytes_per_value);
          }
        }
      }
      accum.emit(place, &comm);
    }
    const bool have_comm = !comm.messages.empty();
    if (have_comm) {
      if (have_prev) comm.deps.push_back(prev_compute);
      schedule.events.push_back(std::move(comm));
    }

    // --- Compute event: the layer's per-core kernel partitions ------------
    Event compute;
    compute.kind = EventKind::kCompute;
    compute.layer_name = a.spec.name;
    compute.partition_dim = dim;
    if (have_comm) compute.deps.push_back(schedule.events.size() - 1);
    if (have_prev) compute.deps.push_back(prev_compute);
    compute.per_core_work.assign(P, accel::LayerPartitionWork{});

    const std::size_t units = out_units(a);
    const std::size_t weight_bytes_total =
        a.weight_count * opts.bytes_per_value;
    const std::size_t in_bytes = a.in.numel() * opts.bytes_per_value;
    const std::size_t out_bytes_total =
        a.out.numel() * opts.bytes_per_value;

    switch (dim) {
      case PartitionDim::kKernel: {
        // Work splitting reproduces the pre-IR executor loop bit-for-bit:
        // same share/live expressions, same +0.5 roundings.
        const auto out_ranges = core::balanced_ranges(units, P);
        const core::LayerSparsity* layer_sparsity = nullptr;
        if (opts.sparse_cycle_model && sparsity != nullptr) {
          layer_sparsity = sparsity->find(a.spec.name);
        }
        for (std::size_t c = 0; c < P; ++c) {
          const double share =
              units ? static_cast<double>(out_ranges[c].count()) /
                          static_cast<double>(units)
                    : 0.0;
          if (share == 0.0) continue;
          const double live = layer_sparsity != nullptr &&
                                      c < layer_sparsity->live_fraction.size()
                                  ? layer_sparsity->live_fraction[c]
                                  : 1.0;
          accel::LayerPartitionWork& work = compute.per_core_work[place[c]];
          const auto dense_macs = static_cast<std::uint64_t>(
              static_cast<double>(a.macs) * share + 0.5);
          work.macs = static_cast<std::uint64_t>(
              static_cast<double>(a.macs) * share * live + 0.5);
          compute.macs_discounted += dense_macs - work.macs;
          work.weight_bytes = static_cast<std::uint64_t>(
              static_cast<double>(weight_bytes_total) * share * live + 0.5);
          work.input_bytes = in_bytes;  // every core reads the full input
          work.output_bytes = static_cast<std::uint64_t>(
              static_cast<double>(out_bytes_total) * share + 0.5);
        }
        break;
      }
      case PartitionDim::kBatch: {
        // Batch of one: partition 0 executes the whole layer.
        accel::LayerPartitionWork& work = compute.per_core_work[place[0]];
        work.macs = a.macs;
        work.weight_bytes = weight_bytes_total;
        work.input_bytes = in_bytes;
        work.output_bytes = out_bytes_total;
        break;
      }
      case PartitionDim::kHeight:
      case PartitionDim::kWidth: {
        // Spatial split: MACs and outputs scale with the slice, every core
        // holds the full kernel set, and inputs are the halo-extended
        // slice of the input volume.
        const std::size_t axis =
            dim == PartitionDim::kHeight ? a.out.h : a.out.w;
        const std::size_t in_axis =
            dim == PartitionDim::kHeight ? a.in.h : a.in.w;
        const auto ranges = core::balanced_ranges(axis, P);
        const std::size_t s = a.spec.stride;
        const std::size_t k = a.spec.kernel;
        const std::size_t pad = a.spec.pad;
        for (std::size_t c = 0; c < P; ++c) {
          const auto r = ranges[c];
          if (r.count() == 0) continue;
          const double share = static_cast<double>(r.count()) /
                               static_cast<double>(axis);
          accel::LayerPartitionWork& work = compute.per_core_work[place[c]];
          work.macs = static_cast<std::uint64_t>(
              static_cast<double>(a.macs) * share + 0.5);
          work.weight_bytes = weight_bytes_total;
          const std::size_t lo = r.begin * s > pad ? r.begin * s - pad : 0;
          const std::size_t hi_raw = (r.end - 1) * s + k;
          const std::size_t hi =
              hi_raw > pad ? std::min(in_axis, hi_raw - pad) : 0;
          const std::size_t halo_rows = hi > lo ? hi - lo : 0;
          work.input_bytes = in_bytes / in_axis * halo_rows;
          work.output_bytes = static_cast<std::uint64_t>(
              static_cast<double>(out_bytes_total) * share + 0.5);
        }
        break;
      }
      case PartitionDim::kChannel: {
        // Input-channel split: each core computes partial sums for the
        // whole output volume over its channel slice.
        const std::size_t in_u = in_units(a);
        const auto ranges = core::balanced_ranges(in_u, P);
        for (std::size_t c = 0; c < P; ++c) {
          const auto r = ranges[c];
          if (r.count() == 0) continue;
          const double share = static_cast<double>(r.count()) /
                               static_cast<double>(in_u);
          accel::LayerPartitionWork& work = compute.per_core_work[place[c]];
          work.macs = static_cast<std::uint64_t>(
              static_cast<double>(a.macs) * share + 0.5);
          work.weight_bytes = static_cast<std::uint64_t>(
              static_cast<double>(weight_bytes_total) * share + 0.5);
          work.input_bytes = in_bytes / in_u * r.count();
          work.output_bytes = out_bytes_total;  // full partial-sum volume
        }
        break;
      }
    }
    schedule.events.push_back(std::move(compute));
    prev_a = &a;
    ++li;
  }

  validate_against(schedule, spec);
  return schedule;
}

std::vector<std::size_t> partition_stages(const nn::NetSpec& spec,
                                          std::size_t chips) {
  std::vector<std::uint64_t> macs;
  for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
    if (a.is_compute()) macs.push_back(a.macs);
  }
  const std::size_t n = macs.size();
  LS_CHECK_MSG(chips >= 1, "partition_stages('%s'): zero chips",
               spec.name.c_str());
  LS_CHECK_MSG(n >= chips,
               "partition_stages('%s'): %zu compute layers cannot fill %zu "
               "pipeline stages",
               spec.name.c_str(), n, chips);
  std::uint64_t total = 0;
  for (const std::uint64_t m : macs) total += m;

  // Greedy prefix-sum cuts at total*(s+1)/chips, with a forced cut once
  // the remaining layers only just cover the remaining stages — which
  // guarantees every stage owns at least one layer.
  std::vector<std::size_t> stages(n, 0);
  std::size_t s = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    stages[i] = s;
    acc += macs[i];
    const std::size_t remaining_layers = n - 1 - i;
    const std::size_t remaining_stages = chips - 1 - s;
    if (s + 1 < chips && (remaining_layers == remaining_stages ||
                          acc * chips >= total * (s + 1))) {
      ++s;
    }
  }
  return stages;
}

Schedule lower_pipelined(const nn::NetSpec& spec,
                         const core::InferenceTraffic& traffic,
                         const BuildOptions& opts, std::size_t chips,
                         const core::SparsityProfile* sparsity,
                         Strategy strategy) {
  LS_CHECK_MSG(chips >= 1, "lower_pipelined('%s'): zero chips",
               spec.name.c_str());
  if (chips == 1) return lower(spec, traffic, opts, sparsity, strategy);
  LS_CHECK_MSG(opts.placement.empty() || identity_placement(opts.placement),
               "lower_pipelined('%s'): placement permutations are per-chip "
               "concepts; use the identity on multi-chip schedules",
               spec.name.c_str());

  const std::vector<std::size_t> stages = partition_stages(spec, chips);
  const std::size_t Pc = opts.cores;  // cores per chip

  // Channel splits reduce-scatter on the *next* transition; a gateway
  // link cannot carry that collective, so the last layer of every stage
  // must not be channel-split.
  if constexpr (check::kEnabled) {
    for (std::size_t li = 0; li + 1 < stages.size(); ++li) {
      LS_CHECK_MSG(stages[li] == stages[li + 1] || opts.layer_dims.empty() ||
                       opts.layer_dims[li] != PartitionDim::kChannel,
                   "lower_pipelined('%s'): compute layer %zu is "
                   "channel-split but ends pipeline stage %zu",
                   spec.name.c_str(), li, stages[li]);
    }
  }

  // One per-chip lowering of the whole net, then stage-by-stage relocation
  // onto the chip-major global core ranges.
  const Schedule base = lower(spec, traffic, opts, sparsity, strategy);

  std::vector<std::size_t> in_bytes_by_layer;
  for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
    if (a.is_compute()) {
      in_bytes_by_layer.push_back(a.in.numel() * opts.bytes_per_value);
    }
  }

  Schedule out;
  out.net_name = base.net_name;
  out.strategy = base.strategy;
  out.cores = Pc * chips;
  out.chips = chips;

  // Rebuild the linear event chain: every compute layer contributes an
  // optional comm event plus its compute event, with the same dependency
  // shape lower() emits (comm <- prev compute, compute <- comm + prev
  // compute).
  std::size_t li = 0;
  const Event* pending_comm = nullptr;
  for (const Event& e : base.events) {
    if (e.kind == EventKind::kComm) {
      pending_comm = &e;
      continue;
    }
    const std::size_t s = stages[li];
    const std::size_t core_base = s * Pc;
    const bool have_prev = !out.events.empty();
    const EventId prev_compute = have_prev ? out.events.size() - 1 : 0;
    const bool boundary = li > 0 && stages[li - 1] != s;

    Event comm;
    comm.kind = EventKind::kComm;
    comm.layer_name = e.layer_name;
    comm.overlap_with_prev_compute = opts.overlap_comm;
    comm.chip = s;
    if (boundary) {
      // Stage boundary: the whole consumer input crosses the package once,
      // gateway to gateway, whatever burst the per-chip lowering had here.
      comm.inter_chip = true;
      const std::size_t bytes = in_bytes_by_layer[li];
      comm.messages.push_back({(s - 1) * Pc, s * Pc, bytes, 0});
      comm.traffic_bytes = bytes;
    } else if (pending_comm != nullptr) {
      // Intra-stage transition: the per-chip mesh burst, relocated onto
      // this stage's chip.
      comm.messages.reserve(pending_comm->messages.size());
      for (const noc::Message& m : pending_comm->messages) {
        comm.messages.push_back(
            {core_base + m.src, core_base + m.dst, m.bytes, 0});
      }
      comm.traffic_bytes = pending_comm->traffic_bytes;
    }
    const bool have_comm = !comm.messages.empty();
    if (have_comm) {
      if (have_prev) comm.deps.push_back(prev_compute);
      out.events.push_back(std::move(comm));
    }

    Event compute;
    compute.kind = EventKind::kCompute;
    compute.layer_name = e.layer_name;
    compute.partition_dim = e.partition_dim;
    compute.macs_discounted = e.macs_discounted;
    compute.chip = s;
    if (have_comm) compute.deps.push_back(out.events.size() - 1);
    if (have_prev) compute.deps.push_back(prev_compute);
    compute.per_core_work.assign(out.cores, accel::LayerPartitionWork{});
    for (std::size_t c = 0; c < Pc; ++c) {
      compute.per_core_work[core_base + c] = e.per_core_work[c];
    }
    out.events.push_back(std::move(compute));

    pending_comm = nullptr;
    ++li;
  }

  validate_against(out, spec);
  return out;
}

Schedule build_traditional(const nn::NetSpec& spec,
                           const core::InferenceTraffic& dense_traffic,
                           const BuildOptions& opts) {
  return lower(spec, dense_traffic, opts, nullptr, Strategy::kTraditional);
}

Schedule build_structure_level(const nn::NetSpec& grouped_spec,
                               const core::InferenceTraffic& dense_traffic,
                               const BuildOptions& opts) {
  return lower(grouped_spec, dense_traffic, opts, nullptr,
               Strategy::kStructureLevel);
}

Schedule build_sparsified(const nn::NetSpec& spec,
                          const core::InferenceTraffic& live_traffic,
                          const BuildOptions& opts,
                          const core::SparsityProfile* sparsity) {
  return lower(spec, live_traffic, opts, sparsity, Strategy::kSparsified);
}

Schedule build_hybrid(const nn::NetSpec& grouped_spec,
                      const core::InferenceTraffic& live_traffic,
                      const BuildOptions& opts,
                      const core::SparsityProfile* sparsity) {
  return lower(grouped_spec, live_traffic, opts, sparsity, Strategy::kHybrid);
}

}  // namespace ls::sched
