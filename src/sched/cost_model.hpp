#pragma once
// Analytic cycle scorer over the Schedule IR (DESIGN.md §4g "Schedule
// autotuning").
//
// The autotuner (src/tune) scores thousands of candidate schedules; running
// the flit-level NoC simulation for each would dominate the search, so this
// model prices a schedule in closed form:
//   * compute events — exactly the executor's numbers: the same
//     accel::CoreModel::partition_cost over the event's per-core work (the
//     compute half of the estimate is *not* an approximation),
//   * comm events — a link-contention approximation of the mesh: every
//     message is packetized into flits and routed along its dimension-
//     ordered path; the burst estimate is the larger of (a) the most-loaded
//     resource — a directed link (divided by the physical-channel count), a
//     source's injection port, or a destination's ejection port — plus the
//     head-flit pipeline latency, and (b) the slowest single message's
//     zero-load latency. This tracks the flit simulator closely on both
//     serialization-bound (few hot links) and latency-bound (long sparse
//     paths) bursts; winners are still validated flit-level before being
//     declared (tuner top-k validation).
// Events combine exactly like CmpSystem::execute: overlap-tagged comm
// events charge only the drain time exceeding the previous layer's compute.

#include <cstdint>
#include <vector>

#include "accel/core_model.hpp"
#include "noc/simulator.hpp"
#include "noc/topology.hpp"
#include "sched/schedule.hpp"

namespace ls::sched {

/// The subset of ls::sim::SystemConfig the scorer needs (kept separate so
/// ls_sched stays below ls_sim in the module DAG).
struct CostModelConfig {
  accel::AccelConfig accel{};
  /// Chip-level DRAM bandwidth in bytes per core cycle, divided across the
  /// cores of one chip exactly like CmpSystem's constructor does (each
  /// chip of a multi-chip package has its own channel).
  double chip_dram_bytes_per_cycle = 12.8;
  noc::NocConfig noc{};
  /// Core cycles per NoC cycle (scales every on-chip comm estimate).
  double noc_clock_divider = 1.0;
  /// Width/latency class of the package's chip-boundary links (multi-chip
  /// schedules only). Inter-chip transfers are priced in core cycles
  /// directly — the serial link has its own clock domain, so the NoC
  /// divider does not apply to it.
  noc::InterChipLinkClass inter_chip{};
};

/// Analytic core-cycle price of one gateway-to-gateway transfer: the fixed
/// crossing latency plus serialization over the boundary's parallel lanes.
/// Shared by the cost model, the executor, and run_stream so the three
/// views of an inter-chip event always agree.
std::uint64_t inter_chip_transfer_cycles(const noc::InterChipLinkClass& link,
                                         std::uint64_t bytes);

/// Per-event view of the estimate, parallel to Schedule::events.
struct EventEstimate {
  /// Contribution to the serial timeline: compute cycles for compute
  /// events, blocking (post-overlap) comm cycles for comm events.
  std::uint64_t cycles = 0;
  /// Comm events only: the estimated full drain before overlap.
  std::uint64_t raw_comm_cycles = 0;
};

struct CycleEstimate {
  std::uint64_t total_cycles = 0;
  std::uint64_t compute_cycles = 0;
  /// Blocking communication total (after per-event overlap policy).
  std::uint64_t comm_cycles = 0;
  std::vector<EventEstimate> events;
};

/// Analytic estimate of executing `schedule` once (see header comment for
/// the model). Deterministic and allocation-light: safe to call thousands
/// of times from the tuner's search loop.
CycleEstimate estimate_cycles(const Schedule& schedule,
                              const CostModelConfig& cfg);

}  // namespace ls::sched
