#pragma once
// Schedule IR: the explicit execution plan of one partitioned inference
// (DESIGN.md §4f "Schedule IR & streaming engine").
//
// The paper's parallelization strategies (traditional, structure-level
// grouping, SS/SS_Mask sparsified, hybrid) differ only in *what* work each
// layer transition implies — which bytes move between cores and how many
// MACs each core executes. This module reifies that as data: a Schedule is
// a topologically-ordered list of events,
//   * CommEvent    — the synchronization burst into a compute layer
//     (explicit noc::Message list, total bytes, overlap policy),
//   * ComputeEvent — the layer's per-core kernel partitions as
//     accel::LayerPartitionWork (sparsity discounts already applied),
// with explicit dependency edges. Builders (builders.hpp) lower
// NetSpec + InferenceTraffic (+ optional SparsityProfile) into a Schedule;
// ls::sim::CmpSystem is an executor over schedules — the same engine runs
// every strategy, single-pass or software-pipelined across many requests.
//
// Invariants (validate(); LS_CHECK-enforced in checked builds):
//   * dependencies point backwards (the event list is a topological order,
//     so the graph is acyclic by construction),
//   * every comm event is immediately followed by the compute event it
//     feeds (same layer), which is what the executor's layer pairing and
//     the overlap ablation rely on,
//   * event payloads stay inside the machine: per-core work vectors have
//     exactly `cores` entries, message endpoints are < cores, and a comm
//     event's bytes equal the sum of its messages.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/core_model.hpp"
#include "noc/simulator.hpp"
#include "nn/layer_spec.hpp"

namespace ls::util {
class JsonWriter;
}

namespace ls::sched {

/// Index of an earlier event in Schedule::events.
using EventId = std::size_t;

enum class EventKind { kComm, kCompute };

const char* to_string(EventKind kind);

/// Which strategy a builder lowered. Purely descriptive — the executor
/// treats every schedule identically; the tag survives into dumps/traces.
enum class Strategy { kTraditional, kStructureLevel, kSparsified, kHybrid };

const char* to_string(Strategy strategy);

struct Event {
  EventKind kind = EventKind::kCompute;
  /// Consumer compute layer this event belongs to.
  std::string layer_name;
  /// Events that must complete first (always earlier in the list).
  std::vector<EventId> deps;

  // --- kComm payload ------------------------------------------------------
  /// The layer-transition burst, in injection order (order matters to the
  /// flit simulator and to the burst-cache key).
  std::vector<noc::Message> messages;
  std::size_t traffic_bytes = 0;
  /// Overlap-ablation policy: hide this burst behind the previous layer's
  /// compute (charged only where it exceeds it). Captured at build time so
  /// policy is schedule data, not executor state.
  bool overlap_with_prev_compute = false;

  // --- kCompute payload ---------------------------------------------------
  /// Per-core kernel partition work, indexed by core id (size = cores).
  /// Cores with no share of the layer hold all-zero work.
  std::vector<accel::LayerPartitionWork> per_core_work;
  /// MACs removed from the dense partitioning by the sparsity discount
  /// (feeds the `sparse.sim.macs_discounted` counter).
  std::uint64_t macs_discounted = 0;
};

struct Schedule {
  std::string net_name;
  Strategy strategy = Strategy::kTraditional;
  std::size_t cores = 0;
  /// Topologically ordered: every event's deps precede it.
  std::vector<Event> events;

  std::size_t compute_event_count() const;
  std::size_t comm_event_count() const;
  /// Total bytes moved by all comm events.
  std::size_t traffic_bytes() const;
};

/// Checked-build structural validation (see header comment for the
/// invariant list). Compiles to nothing when LS_CHECKS is off; in checked
/// builds a malformed schedule aborts with a diagnostic. The executor runs
/// this before executing any schedule.
void validate(const Schedule& schedule);

/// Additionally checks the schedule against the architecture it claims to
/// implement: one compute event per compute layer of `spec`, in order.
void validate_against(const Schedule& schedule, const nn::NetSpec& spec);

/// Serializes the schedule into `w` as one JSON object (events with kinds,
/// deps, per-core work, and the full message list) — the
/// `ls_experiment infer --schedule-dump` format, for inspection/diffing.
void to_json(const Schedule& schedule, util::JsonWriter& w);

/// Convenience: to_json rendered to a string.
std::string to_json(const Schedule& schedule);

}  // namespace ls::sched
