#pragma once
// Schedule IR: the explicit execution plan of one partitioned inference
// (DESIGN.md §4f "Schedule IR & streaming engine").
//
// The paper's parallelization strategies (traditional, structure-level
// grouping, SS/SS_Mask sparsified, hybrid) differ only in *what* work each
// layer transition implies — which bytes move between cores and how many
// MACs each core executes. This module reifies that as data: a Schedule is
// a topologically-ordered list of events,
//   * CommEvent    — the synchronization burst into a compute layer
//     (explicit noc::Message list, total bytes, overlap policy),
//   * ComputeEvent — the layer's per-core kernel partitions as
//     accel::LayerPartitionWork (sparsity discounts already applied),
// with explicit dependency edges. Builders (builders.hpp) lower
// NetSpec + InferenceTraffic (+ optional SparsityProfile) into a Schedule;
// ls::sim::CmpSystem is an executor over schedules — the same engine runs
// every strategy, single-pass or software-pipelined across many requests.
//
// Invariants (validate(); LS_CHECK-enforced in checked builds):
//   * dependencies point backwards (the event list is a topological order,
//     so the graph is acyclic by construction),
//   * every comm event is immediately followed by the compute event it
//     feeds (same layer), which is what the executor's layer pairing and
//     the overlap ablation rely on,
//   * event payloads stay inside the machine: per-core work vectors have
//     exactly `cores` entries, message endpoints are < cores, and a comm
//     event's bytes equal the sum of its messages.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/core_model.hpp"
#include "noc/simulator.hpp"
#include "nn/layer_spec.hpp"

namespace ls::util {
class JsonWriter;
}

namespace ls::sched {

/// Index of an earlier event in Schedule::events.
using EventId = std::size_t;

enum class EventKind { kComm, kCompute };

const char* to_string(EventKind kind);

/// Which strategy a builder lowered. Purely descriptive — the executor
/// treats every schedule identically; the tag survives into dumps/traces.
enum class Strategy { kTraditional, kStructureLevel, kSparsified, kHybrid };

const char* to_string(Strategy strategy);

/// Per-layer parallelization dimension (Jia et al., "Exploring Hidden
/// Dimensions"): which axis of the layer's work is split across the P
/// cores. The choice changes both the per-core kernel partitions and the
/// layer-transition synchronization burst the lowering emits:
///   * kKernel  — split output channels / neurons (the paper's scheme and
///     the historical default; every consumer gathers the full input),
///   * kBatch   — no intra-layer split: with the simulator's batch of one,
///     partition 0 executes the whole layer and gathers the full input,
///   * kHeight  — split output rows; consumers exchange only kernel-halo
///     input rows with spatial neighbours (conv only),
///   * kWidth   — split output columns, halo exchange on the column axis,
///   * kChannel — split *input* channels; each core computes partial sums
///     for the whole output volume, and a reduce-scatter back to the
///     kernel-wise layout rides on the next layer transition (hence not
///     allowed on the last compute layer).
enum class PartitionDim { kKernel, kBatch, kHeight, kWidth, kChannel };

const char* to_string(PartitionDim dim);

/// Parses the to_string form back ("kernel" -> kKernel, ...). Returns
/// false on an unknown name (used by the tuned-schedule cache loader).
bool parse_partition_dim(const std::string& name, PartitionDim* out);

struct Event {
  EventKind kind = EventKind::kCompute;
  /// Consumer compute layer this event belongs to.
  std::string layer_name;
  /// Events that must complete first (always earlier in the list).
  std::vector<EventId> deps;
  /// Pipeline stage / chip this event executes on (multi-chip schedules,
  /// DESIGN.md §4k). Always 0 on single-chip schedules. A compute event
  /// runs on chip `chip`'s core gang; an on-chip comm event rides chip
  /// `chip`'s mesh; an inter-chip comm event crosses the boundary *into*
  /// chip `chip` (from chip-1's gateway to chip's gateway).
  std::size_t chip = 0;
  /// Comm events only: this burst crosses a chip boundary over the
  /// package's InterChipLinkClass serial link instead of a mesh. Its one
  /// message must run gateway(chip-1) -> gateway(chip).
  bool inter_chip = false;

  // --- kComm payload ------------------------------------------------------
  /// The layer-transition burst, in injection order (order matters to the
  /// flit simulator and to the burst-cache key).
  std::vector<noc::Message> messages;
  std::size_t traffic_bytes = 0;
  /// Overlap-ablation policy: hide this burst behind the previous layer's
  /// compute (charged only where it exceeds it). Captured at build time so
  /// policy is schedule data, not executor state.
  bool overlap_with_prev_compute = false;

  // --- kCompute payload ---------------------------------------------------
  /// Per-core kernel partition work, indexed by *physical* core id
  /// (size = cores; the build-time placement permutation is already
  /// applied). Cores with no share of the layer hold all-zero work.
  std::vector<accel::LayerPartitionWork> per_core_work;
  /// MACs removed from the dense partitioning by the sparsity discount
  /// (feeds the `sparse.sim.macs_discounted` counter).
  std::uint64_t macs_discounted = 0;
  /// Which axis the layer was split on (descriptive: the per_core_work and
  /// the surrounding comm events already encode the consequences).
  PartitionDim partition_dim = PartitionDim::kKernel;
};

struct Schedule {
  std::string net_name;
  Strategy strategy = Strategy::kTraditional;
  std::size_t cores = 0;
  /// Chips the schedule spans (cores are chip-major: chip s owns cores
  /// [s*cores/chips, (s+1)*cores/chips)). 1 = the flat single-chip case,
  /// whose schedules are byte-identical to the pre-hierarchy IR.
  std::size_t chips = 1;
  /// Partition -> physical-core permutation the lowering applied (empty =
  /// identity). Events already carry physical core ids; this records the
  /// mapping for dumps and for invariant class 9 (bijectivity).
  std::vector<std::size_t> placement;
  /// Topologically ordered: every event's deps precede it.
  std::vector<Event> events;

  std::size_t compute_event_count() const;
  std::size_t comm_event_count() const;
  /// Total bytes moved by all comm events.
  std::size_t traffic_bytes() const;
};

/// Checked-build structural validation (see header comment for the
/// invariant list). Compiles to nothing when LS_CHECKS is off; in checked
/// builds a malformed schedule aborts with a diagnostic. The executor runs
/// this before executing any schedule.
void validate(const Schedule& schedule);

/// Additionally checks the schedule against the architecture it claims to
/// implement: one compute event per compute layer of `spec`, in order.
void validate_against(const Schedule& schedule, const nn::NetSpec& spec);

struct CycleEstimate;  // cost_model.hpp

/// Serializes the schedule into `w` as one JSON object (events with kinds,
/// deps, per-core work, and the full message list) — the
/// `ls_experiment infer --schedule-dump` format, for inspection/diffing.
/// When `estimate` is non-null (sched::estimate_cycles over this same
/// schedule), every event additionally carries its analytic cycle estimate
/// so tuner decisions are inspectable from the dump alone.
void to_json(const Schedule& schedule, util::JsonWriter& w,
             const CycleEstimate* estimate = nullptr);

/// Convenience: to_json rendered to a string.
std::string to_json(const Schedule& schedule,
                    const CycleEstimate* estimate = nullptr);

}  // namespace ls::sched
