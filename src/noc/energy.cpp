#include "noc/energy.hpp"

namespace ls::noc {

NocEnergy energy_from_stats(const NocStats& stats, const EnergyConfig& cfg,
                            std::size_t num_routers) {
  NocEnergy e;
  e.router_pj =
      static_cast<double>(stats.router_traversals) * cfg.router_pj_per_flit;
  e.link_pj = static_cast<double>(stats.flit_hops) * cfg.link_pj_per_flit;
  e.static_pj = cfg.static_pw_per_router_pj_per_cycle *
                static_cast<double>(stats.completion_cycle) *
                static_cast<double>(num_routers);
  return e;
}

NocEnergy energy_for_transfer(std::size_t bytes, std::size_t hops,
                              const NocConfig& noc, const EnergyConfig& cfg) {
  NocEnergy e;
  if (bytes == 0 || hops == 0) return e;
  const std::size_t flits = (bytes + noc.flit_bytes - 1) / noc.flit_bytes;
  e.router_pj = static_cast<double>(flits) * static_cast<double>(hops + 1) *
                cfg.router_pj_per_flit;
  e.link_pj = static_cast<double>(flits) * static_cast<double>(hops) *
              cfg.link_pj_per_flit;
  return e;
}

}  // namespace ls::noc
