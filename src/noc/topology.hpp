#pragma once
// 2D mesh topology: core coordinates and hop distances.
//
// The paper's SS_Mask technique keys the group-Lasso strength of weight
// block (p, c) to the Manhattan hop distance between cores p and c under
// dimension-ordered routing (Fig. 6(a)), so the distance matrix defined
// here is shared by the NoC simulator, the traffic/energy models, and the
// trainer's strength masks.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ls::noc {

struct Coord {
  std::size_t x = 0;  ///< column
  std::size_t y = 0;  ///< row
  friend bool operator==(const Coord&, const Coord&) = default;
};

class MeshTopology {
 public:
  MeshTopology(std::size_t cols, std::size_t rows);

  /// Near-square mesh for the given core count (16 -> 4x4, 8 -> 4x2,
  /// 32 -> 8x4). Throws if cores is not expressible as cols x rows with
  /// cols, rows >= 1.
  static MeshTopology for_cores(std::size_t cores);

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }
  std::size_t num_cores() const { return cols_ * rows_; }

  Coord coord(std::size_t core) const;
  std::size_t core_at(Coord c) const;

  /// Manhattan hop distance (the DOR path length).
  std::size_t hops(std::size_t a, std::size_t b) const;

  /// Full num_cores x num_cores hop-distance matrix (Fig. 6(a) factor mask
  /// source).
  std::vector<std::vector<std::size_t>> distance_matrix() const;

  /// Mean hop distance over all ordered pairs (a != b).
  double mean_hops() const;

  /// Network diameter (max hop distance).
  std::size_t diameter() const;

  /// Bisection link count (links crossing the vertical mid-cut; a proxy for
  /// bisection bandwidth in the scalability discussion of §V.B).
  std::size_t bisection_links() const;

 private:
  std::size_t cols_;
  std::size_t rows_;
};

}  // namespace ls::noc
