#pragma once
// 2D mesh topology: core coordinates and hop distances — plus the
// hierarchical multi-chip generalization (DESIGN.md §4k).
//
// The paper's SS_Mask technique keys the group-Lasso strength of weight
// block (p, c) to the Manhattan hop distance between cores p and c under
// dimension-ordered routing (Fig. 6(a)), so the distance matrix defined
// here is shared by the NoC simulator, the traffic/energy models, and the
// trainer's strength masks.
//
// `Topology` scales the picture out: a ChipGrid of identical 2D meshes
// joined by inter-chip links with their own width/latency class. The flat
// single-chip case is the degenerate C=1 instance and delegates every
// query to the inner mesh unchanged, so hop matrices, DOR routes, strength
// masks, and the energy model stay bit-identical to the pre-hierarchy
// code.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ls::noc {

struct Coord {
  std::size_t x = 0;  ///< column
  std::size_t y = 0;  ///< row
  friend bool operator==(const Coord&, const Coord&) = default;
};

class MeshTopology {
 public:
  MeshTopology(std::size_t cols, std::size_t rows);

  /// Near-square mesh for the given core count (16 -> 4x4, 8 -> 4x2,
  /// 32 -> 8x4). Throws std::invalid_argument when the count is zero or
  /// when its most-square factorization degenerates to a 1xN chain of 4+
  /// cores (prime counts >= 5): a chain is not a mesh, and every model
  /// downstream (DOR routing, bisection cut, SS_Mask distances) would
  /// silently mis-report on one. Counts of 1-3 cores stay legal — there
  /// is no non-degenerate alternative at those sizes.
  static MeshTopology for_cores(std::size_t cores);

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }
  std::size_t num_cores() const { return cols_ * rows_; }

  Coord coord(std::size_t core) const;
  std::size_t core_at(Coord c) const;

  /// Manhattan hop distance (the DOR path length).
  std::size_t hops(std::size_t a, std::size_t b) const;

  /// Full num_cores x num_cores hop-distance matrix (Fig. 6(a) factor mask
  /// source).
  std::vector<std::vector<std::size_t>> distance_matrix() const;

  /// Mean hop distance over all ordered pairs (a != b).
  double mean_hops() const;

  /// Network diameter (max hop distance).
  std::size_t diameter() const;

  /// Bisection link count (links crossing the vertical mid-cut; a proxy for
  /// bisection bandwidth in the scalability discussion of §V.B).
  std::size_t bisection_links() const;

 private:
  std::size_t cols_;
  std::size_t rows_;
};

/// Width/latency class of the serial links joining adjacent chips in a
/// package. Far slower than an on-chip mesh hop: a SerDes crossing pays a
/// fixed latency and a per-byte serialization cost instead of riding the
/// 512-bit flit fabric.
struct InterChipLinkClass {
  double bytes_per_cycle = 16.0;     ///< serialized link bandwidth
  std::size_t latency_cycles = 50;   ///< fixed crossing latency (SerDes+pkg)
  std::size_t links_per_boundary = 1;  ///< parallel lanes per chip boundary
  double energy_pj_per_byte = 1.0;   ///< off-die signaling energy

  friend bool operator==(const InterChipLinkClass&,
                         const InterChipLinkClass&) = default;
};

/// Hierarchical package topology: `num_chips` identical 2D meshes arranged
/// in a near-square ChipGrid, joined by InterChipLinkClass links between
/// consecutive chip ids (the stage-pipeline daisy chain). Core ids are
/// global and chip-major: chip s owns [s*cores_per_chip, (s+1)*cores_per_chip).
/// Each chip's gateway — the core its boundary links attach to — is its
/// local core 0.
class Topology {
 public:
  Topology(MeshTopology chip_mesh, std::size_t chips,
           InterChipLinkClass link = {});

  /// The degenerate single-chip package: all queries delegate to `mesh`.
  static Topology single_chip(MeshTopology mesh);

  /// Package of `chips` chips of total_cores/chips cores each (near-square
  /// per-chip meshes via MeshTopology::for_cores). Throws when chips is
  /// zero or does not divide total_cores.
  static Topology for_cores(std::size_t total_cores, std::size_t chips,
                            InterChipLinkClass link = {});

  const MeshTopology& chip_mesh() const { return mesh_; }
  const InterChipLinkClass& inter_chip() const { return link_; }
  std::size_t num_chips() const { return chips_; }
  std::size_t cores_per_chip() const { return mesh_.num_cores(); }
  std::size_t num_cores() const { return chips_ * mesh_.num_cores(); }

  /// Near-square grid the chips are arranged in (2 -> 2x1, 4 -> 2x2).
  std::size_t grid_cols() const { return grid_cols_; }
  std::size_t grid_rows() const { return grid_rows_; }

  std::size_t chip_of(std::size_t core) const;
  std::size_t local_core(std::size_t core) const;
  std::size_t global_core(std::size_t chip, std::size_t local) const;
  std::size_t gateway_core(std::size_t chip) const;
  bool same_chip(std::size_t a, std::size_t b) const {
    return chip_of(a) == chip_of(b);
  }

  /// Manhattan distance between chips in the ChipGrid.
  std::size_t chip_hops(std::size_t chip_a, std::size_t chip_b) const;

  /// Hop distance between global cores: the plain mesh distance on one
  /// chip; across chips, the DOR walk to the source gateway, the ChipGrid
  /// distance, and the walk from the destination gateway.
  std::size_t hops(std::size_t a, std::size_t b) const;

 private:
  MeshTopology mesh_;
  std::size_t chips_;
  std::size_t grid_cols_;
  std::size_t grid_rows_;
  InterChipLinkClass link_;
};

}  // namespace ls::noc
