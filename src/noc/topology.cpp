#include "noc/topology.hpp"

#include <cmath>
#include <cstdlib>

namespace ls::noc {

MeshTopology::MeshTopology(std::size_t cols, std::size_t rows)
    : cols_(cols), rows_(rows) {
  if (cols == 0 || rows == 0) throw std::invalid_argument("empty mesh");
}

MeshTopology MeshTopology::for_cores(std::size_t cores) {
  if (cores == 0) throw std::invalid_argument("zero cores");
  // Pick the most-square factorization with cols >= rows.
  std::size_t best_rows = 1;
  for (std::size_t r = 1; r * r <= cores; ++r) {
    if (cores % r == 0) best_rows = r;
  }
  return MeshTopology(cores / best_rows, best_rows);
}

Coord MeshTopology::coord(std::size_t core) const {
  if (core >= num_cores()) throw std::out_of_range("core id");
  return Coord{core % cols_, core / cols_};
}

std::size_t MeshTopology::core_at(Coord c) const {
  if (c.x >= cols_ || c.y >= rows_) throw std::out_of_range("mesh coord");
  return c.y * cols_ + c.x;
}

std::size_t MeshTopology::hops(std::size_t a, std::size_t b) const {
  const Coord ca = coord(a), cb = coord(b);
  const auto dx = static_cast<std::ptrdiff_t>(ca.x) -
                  static_cast<std::ptrdiff_t>(cb.x);
  const auto dy = static_cast<std::ptrdiff_t>(ca.y) -
                  static_cast<std::ptrdiff_t>(cb.y);
  return static_cast<std::size_t>(std::abs(dx) + std::abs(dy));
}

std::vector<std::vector<std::size_t>> MeshTopology::distance_matrix() const {
  const std::size_t n = num_cores();
  std::vector<std::vector<std::size_t>> m(n, std::vector<std::size_t>(n, 0));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) m[a][b] = hops(a, b);
  }
  return m;
}

double MeshTopology::mean_hops() const {
  const std::size_t n = num_cores();
  if (n < 2) return 0.0;
  double total = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) total += static_cast<double>(hops(a, b));
    }
  }
  return total / static_cast<double>(n * (n - 1));
}

std::size_t MeshTopology::diameter() const {
  return (cols_ - 1) + (rows_ - 1);
}

std::size_t MeshTopology::bisection_links() const {
  // Cut across the wider dimension.
  return cols_ >= rows_ ? rows_ : cols_;
}

}  // namespace ls::noc
