#include "noc/topology.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

namespace ls::noc {

MeshTopology::MeshTopology(std::size_t cols, std::size_t rows)
    : cols_(cols), rows_(rows) {
  if (cols == 0 || rows == 0) throw std::invalid_argument("empty mesh");
}

MeshTopology MeshTopology::for_cores(std::size_t cores) {
  if (cores == 0) throw std::invalid_argument("zero cores");
  // Pick the most-square factorization with cols >= rows.
  std::size_t best_rows = 1;
  for (std::size_t r = 1; r * r <= cores; ++r) {
    if (cores % r == 0) best_rows = r;
  }
  if (best_rows == 1 && cores >= 4) {
    throw std::invalid_argument(
        "MeshTopology::for_cores(" + std::to_string(cores) +
        "): near-square factorization degenerates to a 1x" +
        std::to_string(cores) +
        " chain; pick a core count with a 2D factorization");
  }
  return MeshTopology(cores / best_rows, best_rows);
}

Coord MeshTopology::coord(std::size_t core) const {
  if (core >= num_cores()) throw std::out_of_range("core id");
  return Coord{core % cols_, core / cols_};
}

std::size_t MeshTopology::core_at(Coord c) const {
  if (c.x >= cols_ || c.y >= rows_) throw std::out_of_range("mesh coord");
  return c.y * cols_ + c.x;
}

std::size_t MeshTopology::hops(std::size_t a, std::size_t b) const {
  const Coord ca = coord(a), cb = coord(b);
  const auto dx = static_cast<std::ptrdiff_t>(ca.x) -
                  static_cast<std::ptrdiff_t>(cb.x);
  const auto dy = static_cast<std::ptrdiff_t>(ca.y) -
                  static_cast<std::ptrdiff_t>(cb.y);
  return static_cast<std::size_t>(std::abs(dx) + std::abs(dy));
}

std::vector<std::vector<std::size_t>> MeshTopology::distance_matrix() const {
  const std::size_t n = num_cores();
  std::vector<std::vector<std::size_t>> m(n, std::vector<std::size_t>(n, 0));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) m[a][b] = hops(a, b);
  }
  return m;
}

double MeshTopology::mean_hops() const {
  const std::size_t n = num_cores();
  if (n < 2) return 0.0;
  double total = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) total += static_cast<double>(hops(a, b));
    }
  }
  return total / static_cast<double>(n * (n - 1));
}

std::size_t MeshTopology::diameter() const {
  return (cols_ - 1) + (rows_ - 1);
}

std::size_t MeshTopology::bisection_links() const {
  // Cut across the wider dimension.
  return cols_ >= rows_ ? rows_ : cols_;
}

namespace {

// Most-square cols x rows arrangement for the chip grid. Chip counts are
// small and chain-shaped packages are physically real (2 chips side by
// side), so — unlike MeshTopology::for_cores — 1xN is legal here.
void chip_grid_shape(std::size_t chips, std::size_t* cols,
                     std::size_t* rows) {
  std::size_t best_rows = 1;
  for (std::size_t r = 1; r * r <= chips; ++r) {
    if (chips % r == 0) best_rows = r;
  }
  *rows = best_rows;
  *cols = chips / best_rows;
}

}  // namespace

Topology::Topology(MeshTopology chip_mesh, std::size_t chips,
                   InterChipLinkClass link)
    : mesh_(chip_mesh), chips_(chips), link_(link) {
  if (chips == 0) throw std::invalid_argument("zero chips");
  chip_grid_shape(chips_, &grid_cols_, &grid_rows_);
}

Topology Topology::single_chip(MeshTopology mesh) {
  return Topology(mesh, 1);
}

Topology Topology::for_cores(std::size_t total_cores, std::size_t chips,
                             InterChipLinkClass link) {
  if (chips == 0) throw std::invalid_argument("zero chips");
  if (total_cores == 0 || total_cores % chips != 0) {
    throw std::invalid_argument(
        "Topology::for_cores(" + std::to_string(total_cores) + ", " +
        std::to_string(chips) + "): chips must divide the core count");
  }
  return Topology(MeshTopology::for_cores(total_cores / chips), chips, link);
}

std::size_t Topology::chip_of(std::size_t core) const {
  if (core >= num_cores()) throw std::out_of_range("core id");
  return core / cores_per_chip();
}

std::size_t Topology::local_core(std::size_t core) const {
  if (core >= num_cores()) throw std::out_of_range("core id");
  return core % cores_per_chip();
}

std::size_t Topology::global_core(std::size_t chip, std::size_t local) const {
  if (chip >= chips_) throw std::out_of_range("chip id");
  if (local >= cores_per_chip()) throw std::out_of_range("local core id");
  return chip * cores_per_chip() + local;
}

std::size_t Topology::gateway_core(std::size_t chip) const {
  return global_core(chip, 0);
}

std::size_t Topology::chip_hops(std::size_t chip_a, std::size_t chip_b) const {
  if (chip_a >= chips_ || chip_b >= chips_) {
    throw std::out_of_range("chip id");
  }
  const auto dx = static_cast<std::ptrdiff_t>(chip_a % grid_cols_) -
                  static_cast<std::ptrdiff_t>(chip_b % grid_cols_);
  const auto dy = static_cast<std::ptrdiff_t>(chip_a / grid_cols_) -
                  static_cast<std::ptrdiff_t>(chip_b / grid_cols_);
  return static_cast<std::size_t>(std::abs(dx) + std::abs(dy));
}

std::size_t Topology::hops(std::size_t a, std::size_t b) const {
  const std::size_t ca = chip_of(a), cb = chip_of(b);
  if (ca == cb) return mesh_.hops(local_core(a), local_core(b));
  // Cross-chip: walk to the source gateway, cross the package, walk from
  // the destination gateway.
  return mesh_.hops(local_core(a), 0) + chip_hops(ca, cb) +
         mesh_.hops(0, local_core(b));
}

}  // namespace ls::noc
