#pragma once
// DSENT-style NoC energy model (see DESIGN.md substitution table).
//
// DSENT reports per-traversal energies for router datapath + control and
// for the inter-router links; total interconnect energy is then a linear
// function of flit x router crossings and flit x link crossings, which the
// simulator counts exactly. Coefficients below are representative 32 nm,
// ~1 GHz, 512-bit-datapath values; the experiments only use energy
// *ratios* (paper reports "energy reduction" percentages), so the absolute
// scale cancels out.

#include "noc/simulator.hpp"

namespace ls::noc {

struct EnergyConfig {
  double router_pj_per_flit = 11.7;  ///< buffer wr+rd, VC/SW alloc, crossbar
  double link_pj_per_flit = 7.9;     ///< 1 mm 512-bit link traversal
  double static_pw_per_router_pj_per_cycle = 0.0;  ///< optional leakage term
};

struct NocEnergy {
  double router_pj = 0.0;
  double link_pj = 0.0;
  double static_pj = 0.0;
  double total_pj() const { return router_pj + link_pj + static_pj; }
};

/// Energy of a simulated transfer, from the simulator's traversal counts.
NocEnergy energy_from_stats(const NocStats& stats, const EnergyConfig& cfg,
                            std::size_t num_routers);

/// Analytic energy of moving `bytes` from src to dst (hops known), without
/// simulation — used by the fast traffic-only estimators.
NocEnergy energy_for_transfer(std::size_t bytes, std::size_t hops,
                              const NocConfig& noc, const EnergyConfig& cfg);

}  // namespace ls::noc
