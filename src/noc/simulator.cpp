#include "noc/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <queue>
#include <stdexcept>

#include "check/check.hpp"
#include "obs/trace.hpp"

namespace ls::noc {

namespace {

std::atomic<bool> g_corrupt_next_run{false};

}  // namespace

namespace testing {

void corrupt_next_run() {
  if constexpr (check::kEnabled) g_corrupt_next_run.store(true);
}

}  // namespace testing

namespace {

// Router ports. kLocal is both injection (as input) and ejection (as
// output direction).
enum Port : std::size_t { kLocal = 0, kNorth, kSouth, kWest, kEast, kNumPorts };

Port opposite(Port p) {
  switch (p) {
    case kNorth:
      return kSouth;
    case kSouth:
      return kNorth;
    case kWest:
      return kEast;
    case kEast:
      return kWest;
    default:
      return kLocal;
  }
}

struct Flit {
  std::uint32_t packet = 0;
  std::uint16_t dst = 0;
  bool tail = false;
};

struct InFlight {
  std::uint64_t arrival = 0;
  Flit flit;
  std::size_t router = 0;
  std::size_t port = 0;
  std::size_t vc = 0;
};

struct InFlightLater {
  bool operator()(const InFlight& a, const InFlight& b) const {
    return a.arrival > b.arrival;
  }
};

}  // namespace

MeshNocSimulator::MeshNocSimulator(MeshTopology topo, NocConfig cfg)
    : topo_(topo), cfg_(cfg) {
  if (cfg_.flit_bytes == 0 || cfg_.max_packet_flits == 0 || cfg_.vcs == 0 ||
      cfg_.vc_depth == 0 || cfg_.phys_channels == 0) {
    throw std::invalid_argument("degenerate NoC config");
  }
  if (cfg_.vcs > 8) {
    throw std::invalid_argument("at most 8 virtual channels supported");
  }
}

std::size_t MeshNocSimulator::flits_for_bytes(std::size_t bytes) const {
  return (bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
}

std::uint64_t MeshNocSimulator::zero_load_latency(const Message& m) const {
  const std::size_t flits = std::max<std::size_t>(1, flits_for_bytes(m.bytes));
  const std::size_t hops = topo_.hops(m.src, m.dst);
  // Head flit pays (router_latency + 1 link cycle) per hop plus the final
  // router; body flits stream behind at the link rate.
  const std::uint64_t head =
      static_cast<std::uint64_t>(hops + 1) * cfg_.router_latency +
      static_cast<std::uint64_t>(hops);
  const std::uint64_t serialization =
      (flits - 1) / cfg_.phys_channels;
  return head + serialization;
}

NocStats MeshNocSimulator::run(const std::vector<Message>& messages,
                               std::uint64_t max_cycles) const {
  obs::Span burst_span;
  if (obs::trace_enabled()) burst_span.begin("noc.burst", "noc");

  const std::size_t n = topo_.num_cores();
  const std::size_t vcs = cfg_.vcs;

  // Input buffers: [router][port][vc] FIFO of flits.
  std::vector<std::deque<Flit>> fifo(n * kNumPorts * vcs);
  // Occupancy counts FIFO contents plus in-flight flits headed there
  // (credit accounting happens at send time).
  std::vector<std::size_t> occupancy(n * kNumPorts * vcs, 0);
  auto buf_idx = [vcs](std::size_t router, std::size_t port, std::size_t vc) {
    return (router * kNumPorts + port) * vcs + vc;
  };

  // Packet bookkeeping.
  struct PacketInfo {
    std::uint64_t inject = 0;
    std::uint64_t delivered = 0;
    bool done = false;
  };
  std::vector<PacketInfo> packets;

  // Pending injection flits per source node, in order.
  struct PendingFlit {
    std::uint64_t ready = 0;
    Flit flit;
    std::size_t vc = 0;
  };
  std::vector<std::deque<PendingFlit>> inject_q(n);

  NocStats stats;
  obs::Span phase_span;
  if (obs::trace_enabled()) phase_span.begin("noc.packetize", "noc");
  std::uint64_t next_packet = 0;
  for (const Message& m : messages) {
    if (m.src >= n || m.dst >= n) throw std::out_of_range("message endpoint");
    if (m.src == m.dst || m.bytes == 0) continue;  // no NoC traffic
    std::size_t flits_left = flits_for_bytes(m.bytes);
    while (flits_left > 0) {
      const std::size_t in_pkt = std::min(flits_left, cfg_.max_packet_flits);
      const auto pkt_id = static_cast<std::uint32_t>(next_packet++);
      const std::size_t vc = pkt_id % vcs;
      packets.push_back({m.inject_cycle, 0, false});
      for (std::size_t f = 0; f < in_pkt; ++f) {
        Flit flit;
        flit.packet = pkt_id;
        flit.dst = static_cast<std::uint16_t>(m.dst);
        flit.tail = (f + 1 == in_pkt);
        inject_q[m.src].push_back({m.inject_cycle, flit, vc});
        ++stats.total_flits;
      }
      flits_left -= in_pkt;
    }
  }
  phase_span.end();
  stats.packets = packets.size();
  if (stats.total_flits == 0) return stats;

#ifdef LS_ENABLE_CHECKS
  // One-shot test fault: duplicate a pending flit so the network carries
  // one more flit than the packetizer accounted for. The conservation
  // checks after the drain loop must catch this.
  if (g_corrupt_next_run.exchange(false)) {
    for (auto& q : inject_q) {
      if (!q.empty()) {
        q.push_back(q.front());
        break;
      }
    }
  }
#endif

  if (obs::trace_enabled()) phase_span.begin("noc.drain", "noc");

  std::priority_queue<InFlight, std::vector<InFlight>, InFlightLater> in_flight;

  // Round-robin pointers per (router, output port).
  std::vector<std::size_t> rr(n * kNumPorts, 0);
  // Flit counts per directed inter-router link (router x direction).
  std::vector<std::uint64_t> link_flits(n * kNumPorts, 0);

  auto route_dir = [this](std::size_t router, std::size_t dst) -> Port {
    const Coord here = topo_.coord(router);
    const Coord there = topo_.coord(dst);
    if (cfg_.routing == Routing::kXY) {
      if (there.x > here.x) return kEast;
      if (there.x < here.x) return kWest;
      if (there.y > here.y) return kSouth;
      if (there.y < here.y) return kNorth;
    } else {
      if (there.y > here.y) return kSouth;
      if (there.y < here.y) return kNorth;
      if (there.x > here.x) return kEast;
      if (there.x < here.x) return kWest;
    }
    return kLocal;
  };
  auto neighbor = [this](std::size_t router, Port dir) -> std::size_t {
    const Coord c = topo_.coord(router);
    switch (dir) {
      case kNorth:
        return topo_.core_at({c.x, c.y - 1});
      case kSouth:
        return topo_.core_at({c.x, c.y + 1});
      case kWest:
        return topo_.core_at({c.x - 1, c.y});
      case kEast:
        return topo_.core_at({c.x + 1, c.y});
      default:
        return router;
    }
  };

  std::uint64_t delivered_flits = 0;
  std::uint64_t total_pkt_latency = 0;
  std::uint64_t cycle = 0;

  for (; delivered_flits < stats.total_flits; ++cycle) {
    if (cycle > max_cycles) {
      throw std::runtime_error("NoC simulation exceeded max_cycles");
    }

    // 1. Land in-flight flits whose arrival time is now.
    while (!in_flight.empty() && in_flight.top().arrival <= cycle) {
      const InFlight f = in_flight.top();
      in_flight.pop();
      fifo[buf_idx(f.router, f.port, f.vc)].push_back(f.flit);
      // occupancy was already incremented at send time
    }

    // 2. Injection: move pending flits into the local input port.
    for (std::size_t src = 0; src < n; ++src) {
      std::size_t injected = 0;
      while (!inject_q[src].empty() && injected < cfg_.phys_channels) {
        const PendingFlit& pf = inject_q[src].front();
        if (pf.ready > cycle) break;
        const std::size_t bi = buf_idx(src, kLocal, pf.vc);
        if (occupancy[bi] >= cfg_.vc_depth) break;
        ++occupancy[bi];
        fifo[bi].push_back(pf.flit);
        inject_q[src].pop_front();
        ++injected;
      }
    }

    // 3. Switch allocation: per router, per output direction, grant up to
    // phys_channels head flits (round-robin over input port x vc).
    for (std::size_t r = 0; r < n; ++r) {
      // Track single-dequeue-per-cycle per input (port,vc).
      bool popped[kNumPorts][8] = {};
      for (std::size_t out = 0; out < kNumPorts; ++out) {
        const auto dir = static_cast<Port>(out);
        std::size_t granted = 0;
        const std::size_t slots = kNumPorts * vcs;
        std::size_t& ptr = rr[r * kNumPorts + out];
        for (std::size_t step = 0; step < slots && granted < cfg_.phys_channels;
             ++step) {
          const std::size_t slot = (ptr + step) % slots;
          const std::size_t in_port = slot / vcs;
          const std::size_t vc = slot % vcs;
          if (popped[in_port][vc]) continue;
          auto& q = fifo[buf_idx(r, in_port, vc)];
          if (q.empty()) continue;
          const Flit& head = q.front();
          if (route_dir(r, head.dst) != dir) continue;

          if (dir == kLocal) {
            // Ejection.
            PacketInfo& pkt = packets[head.packet];
            if (head.tail) {
              pkt.delivered = cycle;
              pkt.done = true;
              const std::uint64_t lat = cycle - pkt.inject;
              total_pkt_latency += lat;
              stats.max_packet_latency =
                  std::max(stats.max_packet_latency, lat);
            }
            ++stats.router_traversals;
            ++delivered_flits;
            --occupancy[buf_idx(r, in_port, vc)];
            q.pop_front();
            popped[in_port][vc] = true;
            ++granted;
            continue;
          }

          const std::size_t next_r = neighbor(r, dir);
          const std::size_t next_bi = buf_idx(next_r, opposite(dir), vc);
          if (occupancy[next_bi] >= cfg_.vc_depth) continue;  // no credit
          ++occupancy[next_bi];
          --occupancy[buf_idx(r, in_port, vc)];
          InFlight fl;
          fl.arrival = cycle + cfg_.router_latency + 1;
          fl.flit = head;
          fl.router = next_r;
          fl.port = opposite(dir);
          fl.vc = vc;
          in_flight.push(fl);
          ++link_flits[r * kNumPorts + out];
          ++stats.flit_hops;
          ++stats.router_traversals;
          q.pop_front();
          popped[in_port][vc] = true;
          ++granted;
        }
        ptr = (ptr + 1) % slots;
      }
    }
  }

  phase_span.end();

  // Conservation invariants (checked builds): every flit the packetizer
  // injected must have drained — nothing left in source queues, router
  // buffers, or on a link — credits must be fully returned, every packet
  // delivered, and the per-link counters must sum to exactly the hop count.
  // These are the conserved quantities the paper's communication metrics
  // (and the ls::obs heatmap) are built on.
  if constexpr (check::kEnabled) {
    std::size_t undrained = in_flight.size();
    for (const auto& q : inject_q) undrained += q.size();
    for (const auto& q : fifo) undrained += q.size();
    LS_CHECK_MSG(undrained == 0,
                 "noc flit conservation: %llu flits injected, %llu "
                 "delivered, %zu left undrained",
                 static_cast<unsigned long long>(stats.total_flits),
                 static_cast<unsigned long long>(delivered_flits), undrained);
    LS_CHECK_MSG(delivered_flits == stats.total_flits,
                 "noc flit conservation: delivered %llu != injected %llu",
                 static_cast<unsigned long long>(delivered_flits),
                 static_cast<unsigned long long>(stats.total_flits));
    std::size_t credits_out = 0;
    for (const std::size_t occ : occupancy) credits_out += occ;
    LS_CHECK_MSG(credits_out == 0,
                 "noc flit conservation: %zu buffer credits unreturned",
                 credits_out);
    std::uint64_t link_sum = 0;
    for (const std::uint64_t count : link_flits) link_sum += count;
    LS_CHECK_MSG(link_sum == stats.flit_hops,
                 "noc flit conservation: per-link heatmap total %llu != "
                 "flit_hops %llu",
                 static_cast<unsigned long long>(link_sum),
                 static_cast<unsigned long long>(stats.flit_hops));
    LS_CHECK_MSG(
        stats.router_traversals == stats.flit_hops + delivered_flits,
        "noc flit conservation: router traversals %llu != hops %llu + "
        "ejections %llu",
        static_cast<unsigned long long>(stats.router_traversals),
        static_cast<unsigned long long>(stats.flit_hops),
        static_cast<unsigned long long>(delivered_flits));
    for (std::size_t p = 0; p < packets.size(); ++p) {
      LS_CHECK_MSG(packets[p].done,
                   "noc flit conservation: packet %zu never delivered", p);
    }
  }

  for (const std::uint64_t count : link_flits) {
    if (count > 0) {
      ++stats.links_used;
      stats.max_link_flits = std::max(stats.max_link_flits, count);
    }
  }
  stats.completion_cycle = cycle;
  stats.avg_packet_latency =
      stats.packets ? static_cast<double>(total_pkt_latency) /
                          static_cast<double>(stats.packets)
                    : 0.0;
  stats.per_link_flits = std::move(link_flits);

  if (obs::trace_enabled()) {
    char args[96];
    std::snprintf(args, sizeof(args),
                  "{\"flits\":%llu,\"packets\":%llu,\"cycles\":%llu}",
                  static_cast<unsigned long long>(stats.total_flits),
                  static_cast<unsigned long long>(stats.packets),
                  static_cast<unsigned long long>(stats.completion_cycle));
    burst_span.set_args(args);
  }
  return stats;
}

}  // namespace ls::noc
