#include "noc/sim_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace ls::noc {

namespace {

struct BurstKey {
  std::size_t cols = 0;
  std::size_t rows = 0;
  NocConfig cfg{};
  std::uint64_t max_cycles = 0;
  std::uint64_t stream_epoch = 0;  ///< memo-space partition (0 = single-pass)
  std::vector<Message> messages;   ///< in injection order

  friend bool operator==(const BurstKey&, const BurstKey&) = default;
};

std::size_t hash_mix(std::size_t seed, std::size_t v) {
  // splitmix-style combiner
  v += 0x9e3779b97f4a7c15ull + seed;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

struct BurstKeyHash {
  std::size_t operator()(const BurstKey& k) const {
    std::size_t h = hash_mix(0, k.cols);
    h = hash_mix(h, k.rows);
    h = hash_mix(h, k.cfg.flit_bytes);
    h = hash_mix(h, k.cfg.max_packet_flits);
    h = hash_mix(h, k.cfg.vcs);
    h = hash_mix(h, k.cfg.vc_depth);
    h = hash_mix(h, k.cfg.router_latency);
    h = hash_mix(h, k.cfg.phys_channels);
    h = hash_mix(h, static_cast<std::size_t>(k.cfg.routing));
    h = hash_mix(h, static_cast<std::size_t>(k.max_cycles));
    h = hash_mix(h, static_cast<std::size_t>(k.stream_epoch));
    // Hash a sorted canonical form so equal multisets collide into the
    // same bucket regardless of ordering; equality stays exact.
    std::vector<Message> sorted = k.messages;
    std::sort(sorted.begin(), sorted.end(),
              [](const Message& a, const Message& b) {
                return std::tie(a.inject_cycle, a.src, a.dst, a.bytes) <
                       std::tie(b.inject_cycle, b.src, b.dst, b.bytes);
              });
    for (const Message& m : sorted) {
      h = hash_mix(h, m.src);
      h = hash_mix(h, m.dst);
      h = hash_mix(h, m.bytes);
      h = hash_mix(h, static_cast<std::size_t>(m.inject_cycle));
    }
    return h;
  }
};

bool enabled_from_env() {
  if (const char* env = std::getenv("LS_NOC_CACHE")) {
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
  }
  return true;
}

}  // namespace

struct NocRunCache::Impl {
  mutable std::mutex mu;
  std::unordered_map<BurstKey, NocStats, BurstKeyHash> map;
  std::atomic<bool> enabled{enabled_from_env()};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

NocRunCache::NocRunCache() : impl_(new Impl) {}
NocRunCache::~NocRunCache() { delete impl_; }

NocRunCache& NocRunCache::instance() {
  static NocRunCache cache;
  return cache;
}

NocStats NocRunCache::run(const MeshNocSimulator& sim,
                          const std::vector<Message>& messages,
                          std::uint64_t max_cycles,
                          std::uint64_t stream_epoch) {
  if (!impl_->enabled.load(std::memory_order_relaxed)) {
    return sim.run(messages, max_cycles);
  }
  BurstKey key;
  key.cols = sim.topology().cols();
  key.rows = sim.topology().rows();
  key.cfg = sim.config();
  key.max_cycles = max_cycles;
  key.stream_epoch = stream_epoch;
  key.messages = messages;
  static obs::Counter& hit_metric =
      obs::Registry::instance().counter("noc.cache.hits");
  static obs::Counter& miss_metric =
      obs::Registry::instance().counter("noc.cache.misses");
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    const auto it = impl_->map.find(key);
    if (it != impl_->map.end()) {
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      hit_metric.inc();
      return it->second;
    }
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  miss_metric.inc();
  // Simulate outside the lock: bursts are the expensive part and distinct
  // layers can run concurrently. A racing duplicate computes the same
  // stats, so emplace-after is harmless.
  const NocStats stats = sim.run(messages, max_cycles);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->map.emplace(std::move(key), stats);
  }
  return stats;
}

void NocRunCache::set_enabled(bool enabled) {
  impl_->enabled.store(enabled, std::memory_order_relaxed);
}

bool NocRunCache::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void NocRunCache::clear() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->map.clear();
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
}

std::size_t NocRunCache::size() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->map.size();
}

std::uint64_t NocRunCache::hits() const {
  return impl_->hits.load(std::memory_order_relaxed);
}

std::uint64_t NocRunCache::misses() const {
  return impl_->misses.load(std::memory_order_relaxed);
}

}  // namespace ls::noc
