#pragma once
// Memoizing cache in front of MeshNocSimulator::run.
//
// Core-count sweeps (E5/E7) and the hybrid/ablation benches re-simulate
// byte-identical layer-transition bursts many times: the baseline net's
// traffic is simulated once per variant it is compared against, and
// repeated CmpSystem runs over the same trained net repeat every burst.
// A burst's NocStats depend only on (mesh shape, NocConfig, max_cycles,
// message sequence), and MeshNocSimulator::run is a pure function of
// those, so the result can be memoized process-wide.
//
// Key notes (see DESIGN.md "Performance architecture"):
//  * Keys compare the *ordered* message sequence, not just the multiset —
//    packet ids, VC assignment, and injection order follow message order,
//    so two orderings of the same multiset can drain differently. Hashing
//    uses a sorted canonical form so equal multisets share a bucket, but
//    equality is exact; a hit therefore always returns the byte-identical
//    stats the simulator itself would produce. That makes the cache
//    correctness-neutral by construction.
//  * Bypass the cache when measuring *simulator* wall-time (bench_noc_micro
//    calls MeshNocSimulator::run directly, which never consults it), when
//    sweeping unbounded distinct bursts where the memo map would only grow
//    (clear() between sweep points), or via LS_NOC_CACHE=0 / set_enabled.
//
// Thread-safe: CmpSystem dispatches per-layer bursts onto the shared pool
// and all of them may consult the cache concurrently. Misses simulate
// outside the lock; a racing duplicate insert is harmless because equal
// keys always map to equal stats.

#include <cstdint>
#include <vector>

#include "noc/simulator.hpp"

namespace ls::noc {

class NocRunCache {
 public:
  /// Process-wide cache. Starts enabled unless LS_NOC_CACHE=0.
  static NocRunCache& instance();

  /// Memoized equivalent of `sim.run(messages, max_cycles)`.
  ///
  /// `stream_epoch` partitions the memo space: entries recorded under one
  /// epoch are invisible to every other. Epoch 0 is the shared single-pass
  /// space every plain run_inference uses. The streaming engine
  /// (ls::sim::CmpSystem::run_stream) keys its bursts by the caller-chosen
  /// epoch so a stream-context-dependent refinement of burst stats (e.g.
  /// charging residual-drain contention between overlapped requests) can
  /// never be served a single-pass memo, and vice versa; today the stats
  /// are context-independent, so epoch 0 deliberately shares entries with
  /// the single-pass space.
  NocStats run(const MeshNocSimulator& sim,
               const std::vector<Message>& messages,
               std::uint64_t max_cycles = 200'000'000ull,
               std::uint64_t stream_epoch = 0);

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Drops all memoized bursts (and resets hit/miss counters).
  void clear();

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  NocRunCache(const NocRunCache&) = delete;
  NocRunCache& operator=(const NocRunCache&) = delete;

 private:
  NocRunCache();
  ~NocRunCache();
  struct Impl;
  Impl* impl_;
};

}  // namespace ls::noc
