#pragma once
// Flit-level 2D-mesh NoC simulator (BookSim2 substitute; see DESIGN.md).
//
// Models the configuration of the paper's TABLE II: 512-bit flits, 20-flit
// packets, 3-stage routers, dimension-ordered (XY) routing, virtual
// channels with credit-based flow control, and 2 physical channels per
// link direction. The layer-transition synchronization traffic of a
// partitioned inference is injected as a burst of messages and simulated
// until delivery; the completion cycle is the "computation-blocking
// communication" time the paper's speedup metric is built on.

#include <cstdint>
#include <vector>

#include "noc/topology.hpp"

namespace ls::noc {

/// Dimension-ordered routing variant: XY routes the X dimension first
/// (the paper's configuration), YX the Y dimension. Both are minimal and
/// deadlock-free on a mesh.
enum class Routing { kXY, kYX };

struct NocConfig {
  std::size_t flit_bytes = 64;       ///< 512-bit flit (TABLE II)
  std::size_t max_packet_flits = 20; ///< packet size cap (TABLE II)
  std::size_t vcs = 3;               ///< virtual channels (TABLE II)
  std::size_t vc_depth = 4;          ///< buffer slots per VC
  std::size_t router_latency = 3;    ///< router pipeline stages (TABLE II)
  std::size_t phys_channels = 2;     ///< parallel links per direction
  Routing routing = Routing::kXY;    ///< dimensional-ordered (TABLE II)

  friend bool operator==(const NocConfig&, const NocConfig&) = default;
};

/// One unicast transfer of `bytes` payload from core src to core dst,
/// injected at `inject_cycle`.
struct Message {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t bytes = 0;
  std::uint64_t inject_cycle = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

struct NocStats {
  std::uint64_t completion_cycle = 0;  ///< cycle the last flit ejects
  std::uint64_t total_flits = 0;
  std::uint64_t flit_hops = 0;            ///< link traversals
  std::uint64_t router_traversals = 0;    ///< router crossings (hops + 1 each)
  std::uint64_t packets = 0;
  double avg_packet_latency = 0.0;
  std::uint64_t max_packet_latency = 0;
  /// Flits carried by the busiest inter-router link — the congestion
  /// hotspot the layer-transition burst creates.
  std::uint64_t max_link_flits = 0;
  /// Links that carried at least one flit.
  std::size_t links_used = 0;
  /// Flits per directed link: 5 entries per router in port order
  /// [local, north, south, west, east] (local stays 0 — ejection is not a
  /// mesh link). Feeds the ls::obs mesh link heatmap.
  std::vector<std::uint64_t> per_link_flits;

  friend bool operator==(const NocStats&, const NocStats&) = default;
};

namespace testing {
/// Checked-build fault injection: arms a one-shot fault so the *next*
/// MeshNocSimulator::run duplicates one packetized flit, breaking the
/// injected == drained conservation invariant. Exists solely so the
/// tests/check death suite can prove the conservation LS_CHECKs fire; a
/// no-op in unchecked builds (the run stays unperturbed).
void corrupt_next_run();
}  // namespace testing

class MeshNocSimulator {
 public:
  MeshNocSimulator(MeshTopology topo, NocConfig cfg);

  /// Simulates the message set to completion. Throws if the network fails
  /// to drain within `max_cycles` (indicates a configuration/logic error —
  /// XY routing with credits cannot deadlock).
  NocStats run(const std::vector<Message>& messages,
               std::uint64_t max_cycles = 200'000'000ull) const;

  /// Closed-form zero-load check value: serialization + per-hop pipeline
  /// latency of a single message, ignoring contention. Used by tests.
  std::uint64_t zero_load_latency(const Message& m) const;

  const MeshTopology& topology() const { return topo_; }
  const NocConfig& config() const { return cfg_; }

  /// Number of flits needed for `bytes` of payload.
  std::size_t flits_for_bytes(std::size_t bytes) const;

 private:
  MeshTopology topo_;
  NocConfig cfg_;
};

}  // namespace ls::noc
