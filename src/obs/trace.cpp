#include "obs/trace.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace ls::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
void install_pool_hooks();
}  // namespace detail

namespace {

using steady = std::chrono::steady_clock;

struct Event {
  std::string name;
  const char* cat = "";
  char ph = 'X';  ///< 'X' complete, 'C' counter sample, 's'/'f' flow edge
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  std::uint32_t pid = kWallPid;
  std::uint64_t tid = 0;
  double counter_value = 0.0;  ///< 'C' events
  std::uint64_t flow_id = 0;   ///< 's'/'f' events
  std::string args;            ///< pre-rendered JSON object or empty
};

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mu;
  std::vector<Event> events;
  steady::time_point t0 = steady::now();
  std::string path;
  bool written = false;
  std::map<std::uint64_t, std::string> thread_names;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> virt_names;
};

Tracer::Tracer() : impl_(new Impl) { detail::install_pool_hooks(); }
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start(std::string path) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.clear();
  impl_->t0 = steady::now();
  impl_->path = std::move(path);
  impl_->written = false;
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.clear();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events.size();
}

void Tracer::complete(std::string name, const char* cat, std::uint64_t ts_us,
                      std::uint64_t dur_us, std::uint32_t pid,
                      std::uint64_t tid, std::string args_json) {
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.ts = ts_us;
  e.dur = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args_json);
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void Tracer::counter(std::string name, const char* cat, std::uint64_t ts_us,
                     double value, std::uint32_t pid) {
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'C';
  e.ts = ts_us;
  e.pid = pid;
  e.counter_value = value;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void Tracer::flow(bool start, std::string name, const char* cat,
                  std::uint64_t ts_us, std::uint64_t id, std::uint32_t pid,
                  std::uint64_t tid) {
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = start ? 's' : 'f';
  e.ts = ts_us;
  e.pid = pid;
  e.tid = tid;
  e.flow_id = id;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(steady::now() -
                                                            impl_->t0)
          .count());
}

std::uint64_t Tracer::current_tid() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id = next.fetch_add(1);
  return id;
}

void Tracer::set_current_thread_name(std::string name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->thread_names[current_tid()] = std::move(name);
}

void Tracer::set_virtual_thread_name(std::uint32_t pid, std::uint64_t tid,
                                     std::string name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->virt_names[{pid, tid}] = std::move(name);
}

namespace {

void append_meta(util::JsonWriter& w, const char* what, std::uint32_t pid,
                 std::uint64_t tid, bool with_tid, const std::string& name) {
  w.begin_object();
  w.key("name");
  w.value(what);
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(static_cast<std::uint64_t>(pid));
  if (with_tid) {
    w.key("tid");
    w.value(tid);
  }
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(name);
  w.end_object();
  w.end_object();
}

}  // namespace

bool Tracer::write(const std::string& path) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  const std::string& out_path = path.empty() ? impl_->path : path;
  if (out_path.empty()) return false;

  util::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  append_meta(w, "process_name", kWallPid, 0, false, "wall-clock");
  append_meta(w, "process_name", kSimPid, 0, false, "sim-cycles (1cy = 1us)");
  for (const auto& [tid, name] : impl_->thread_names) {
    append_meta(w, "thread_name", kWallPid, tid, true, name);
  }
  for (const auto& [key, name] : impl_->virt_names) {
    append_meta(w, "thread_name", key.first, key.second, true, name);
  }
  for (const Event& e : impl_->events) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("cat");
    w.value(e.cat);
    w.key("ph");
    const char ph[2] = {e.ph, '\0'};
    w.value(ph);
    w.key("ts");
    w.value(e.ts);
    if (e.ph == 'X') {
      w.key("dur");
      w.value(e.dur);
    }
    w.key("pid");
    w.value(static_cast<std::uint64_t>(e.pid));
    if (e.ph != 'C') {
      w.key("tid");
      w.value(e.tid);
    }
    if (e.ph == 's' || e.ph == 'f') {
      w.key("id");
      w.value(e.flow_id);
      if (e.ph == 'f') {
        w.key("bp");
        w.value("e");
      }
    }
    if (e.ph == 'C') {
      w.key("args");
      w.begin_object();
      w.key("value");
      w.value(e.counter_value);
      w.end_object();
    } else if (!e.args.empty()) {
      w.key("args");
      w.raw(e.args);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const bool ok = w.write_file(out_path);
  if (ok && out_path == impl_->path) impl_->written = true;
  return ok;
}

void Tracer::finish() {
  stop();
  bool pending = false;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    pending = !impl_->path.empty() && !impl_->written;
  }
  if (pending) write();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

void Span::begin(std::string name, const char* cat, std::string args_json) {
  end();  // a re-armed span closes its previous interval first
  name_ = std::move(name);
  cat_ = cat;
  args_ = std::move(args_json);
  start_us_ = Tracer::instance().now_us();
  active_ = true;
}

void Span::set_args(std::string args_json) { args_ = std::move(args_json); }

void Span::end() {
  if (!active_) return;
  active_ = false;
  Tracer& tr = Tracer::instance();
  const std::uint64_t now = tr.now_us();
  tr.complete(std::move(name_), cat_, start_us_, now - start_us_, kWallPid,
              Tracer::current_tid(), std::move(args_));
}

// ---------------------------------------------------------------------------
// Thread-pool hooks: one trace "thread" per pool worker, always-on task
// counters. Installed once, the first time Tracer or Registry is touched;
// processes that never use obs keep a hook-free pool.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kNoStart = ~std::uint64_t{0};
thread_local std::uint64_t tls_task_start = kNoStart;
thread_local std::uint64_t tls_job_start = kNoStart;
thread_local bool tls_worker_named = false;

void hook_task_begin(std::size_t worker) {
  if (worker != SIZE_MAX && !tls_worker_named) {
    tls_worker_named = true;
    Tracer::instance().set_current_thread_name("pool-worker-" +
                                               std::to_string(worker));
  }
  if (trace_enabled()) tls_task_start = Tracer::instance().now_us();
}

void hook_task_end(std::size_t worker, std::size_t items) {
  (void)worker;
  static Counter& tasks = Registry::instance().counter("pool.tasks");
  static Counter& done = Registry::instance().counter("pool.items");
  tasks.inc();
  done.inc(items);
  if (tls_task_start == kNoStart) return;
  const std::uint64_t start = tls_task_start;
  tls_task_start = kNoStart;
  Tracer& tr = Tracer::instance();
  char args[48];
  std::snprintf(args, sizeof(args), "{\"items\":%zu}", items);
  tr.complete("pool.task", "pool", start, tr.now_us() - start, kWallPid,
              Tracer::current_tid(), args);
}

void hook_job_begin(std::size_t count) {
  (void)count;
  static Counter& jobs = Registry::instance().counter("pool.jobs");
  jobs.inc();
  if (trace_enabled()) tls_job_start = Tracer::instance().now_us();
}

void hook_job_end(std::size_t count) {
  if (tls_job_start == kNoStart) return;
  const std::uint64_t start = tls_job_start;
  tls_job_start = kNoStart;
  Tracer& tr = Tracer::instance();
  char args[48];
  std::snprintf(args, sizeof(args), "{\"count\":%zu}", count);
  tr.complete("parallel_for", "pool", start, tr.now_us() - start, kWallPid,
              Tracer::current_tid(), args);
}

}  // namespace

namespace detail {
void install_pool_hooks() {
  static std::once_flag once;
  std::call_once(once, [] {
    util::PoolHooks hooks;
    hooks.task_begin = hook_task_begin;
    hooks.task_end = hook_task_end;
    hooks.job_begin = hook_job_begin;
    hooks.job_end = hook_job_end;
    util::set_pool_hooks(hooks);
  });
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Environment plumbing
// ---------------------------------------------------------------------------

namespace {
// Arms LS_TRACE / LS_METRICS in every binary that links the instrumented
// stack: any reference into this translation unit (the tracer, a span,
// the pool hooks) pulls this initializer in, so benches and examples get
// the env plumbing without calling init_from_env() themselves.
const bool g_env_armed = [] {
  init_from_env();
  return true;
}();
}  // namespace

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    // Touch both singletons now so the atexit handler below runs before
    // their destructors (reverse registration order).
    Tracer::instance();
    Registry::instance();
    if (const char* trace = std::getenv("LS_TRACE");
        trace != nullptr && trace[0] != '\0') {
      Tracer::instance().start(trace);
    }
    if (const char* metrics = std::getenv("LS_METRICS");
        metrics != nullptr && metrics[0] != '\0') {
      Registry::instance().set_output(metrics);
    }
    std::atexit([] {
      Tracer::instance().finish();
      Registry::instance().finish();
    });
  });
}

}  // namespace ls::obs
