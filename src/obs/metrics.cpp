#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace ls::obs {

namespace detail {
void install_pool_hooks();  // defined in trace.cpp
}

const char* const kLinkPortNames[kLinkPorts] = {"local", "north", "south",
                                                "west", "east"};

// ---------------------------------------------------------------------------
// HistogramMetric
// ---------------------------------------------------------------------------

void HistogramMetric::observe(double x) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.add(x);
  if (hist_) hist_->add(x);
}

void HistogramMetric::configure_bins(double lo, double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!hist_) hist_.emplace(lo, hi, bins);
}

util::RunningStats HistogramMetric::summary() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::optional<util::Histogram> HistogramMetric::bins() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hist_;
}

std::optional<double> HistogramMetric::quantile(double q) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (stats_.count() == 0 || !hist_) return std::nullopt;
  const double raw = hist_->quantile(q);
  // The binned estimate carries no position inside the under/overflow
  // mass — it reports the configured range edges. We track the exact
  // observed extrema, so boundary mass resolves to them instead.
  if (raw <= hist_->lo()) return stats_.min();
  if (raw >= hist_->hi()) return stats_.max();
  return std::clamp(raw, stats_.min(), stats_.max());
}

void HistogramMetric::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.reset();
  hist_.reset();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::uint64_t LinkHeatmap::router_total(std::size_t router) const {
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < kLinkPorts; ++p) {
    total += flits[router * kLinkPorts + p];
  }
  return total;
}

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map for deterministic export order; node-based so references
  // handed out stay stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>> histos;
  LinkHeatmap heatmap;
  std::string path;
  bool written = false;
};

Registry::Registry() : impl_(new Impl) { detail::install_pool_hooks(); }
Registry::~Registry() { delete impl_; }

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

HistogramMetric& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->histos.find(name);
  if (it == impl_->histos.end()) {
    it = impl_->histos
             .emplace(std::string(name), std::make_unique<HistogramMetric>())
             .first;
  }
  return *it->second;
}

HistogramMetric& Registry::histogram(std::string_view name, double lo,
                                     double hi, std::size_t bins) {
  HistogramMetric& h = histogram(name);
  h.configure_bins(lo, hi, bins);
  return h;
}

void Registry::accumulate_link_flits(std::size_t cols, std::size_t rows,
                                     std::span<const std::uint64_t> flits) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  LinkHeatmap& hm = impl_->heatmap;
  if (hm.cols != cols || hm.rows != rows ||
      hm.flits.size() != flits.size()) {
    hm.cols = cols;
    hm.rows = rows;
    hm.flits.assign(flits.size(), 0);
  }
  for (std::size_t i = 0; i < flits.size(); ++i) hm.flits[i] += flits[i];
}

LinkHeatmap Registry::link_heatmap() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->heatmap;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  util::JsonWriter w;
  w.begin_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : impl_->counters) {
    w.key(name);
    w.value(c->value());
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : impl_->gauges) {
    w.key(name);
    w.value(g->value());
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : impl_->histos) {
    const util::RunningStats s = h->summary();
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(static_cast<std::uint64_t>(s.count()));
    w.key("mean");
    w.value(s.mean());
    w.key("stddev");
    w.value(s.stddev());
    w.key("min");
    w.value(s.min());
    w.key("max");
    w.value(s.max());
    if (const auto p50 = h->quantile(0.50)) {
      w.key("p50");
      w.value(*p50);
      w.key("p95");
      w.value(*h->quantile(0.95));
      w.key("p99");
      w.value(*h->quantile(0.99));
    }
    if (const auto bins = h->bins()) {
      w.key("bins");
      w.begin_object();
      w.key("lo");
      w.value(bins->bin_low(0));
      w.key("hi");
      w.value(bins->bin_high(bins->bins() - 1));
      w.key("underflow");
      w.value(static_cast<std::uint64_t>(bins->underflow()));
      w.key("overflow");
      w.value(static_cast<std::uint64_t>(bins->overflow()));
      w.key("counts");
      w.begin_array();
      for (std::size_t i = 0; i < bins->bins(); ++i) {
        w.value(static_cast<std::uint64_t>(bins->bin_count(i)));
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();

  const LinkHeatmap& hm = impl_->heatmap;
  w.key("noc_link_heatmap");
  w.begin_object();
  w.key("cols");
  w.value(static_cast<std::uint64_t>(hm.cols));
  w.key("rows");
  w.value(static_cast<std::uint64_t>(hm.rows));
  w.key("ports");
  w.begin_array();
  for (const char* p : kLinkPortNames) w.value(p);
  w.end_array();
  w.key("links");
  w.begin_array();
  const std::size_t routers = hm.flits.size() / kLinkPorts;
  for (std::size_t r = 0; r < routers; ++r) {
    w.begin_array();
    for (std::size_t p = 0; p < kLinkPorts; ++p) {
      w.value(hm.flits[r * kLinkPorts + p]);
    }
    w.end_array();
  }
  w.end_array();
  w.key("router_totals");
  w.begin_array();
  for (std::size_t r = 0; r < routers; ++r) w.value(hm.router_total(r));
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

bool Registry::write(const std::string& path) const {
  util::JsonWriter w;
  w.raw(to_json());
  return w.write_file(path);
}

void Registry::set_output(std::string path) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->path = std::move(path);
  impl_->written = false;
}

void Registry::finish() {
  std::string path;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (impl_->written || impl_->path.empty()) return;
    impl_->written = true;
    path = impl_->path;
  }
  write(path);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  // Reset in place: references handed out by counter()/gauge()/histogram()
  // must stay valid for the life of the process.
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->set(0.0);
  for (auto& [name, h] : impl_->histos) h->reset();
  impl_->heatmap = LinkHeatmap{};
}

}  // namespace ls::obs
