#pragma once
// ls::obs metrics registry — process-wide named counters, gauges and
// histograms, plus the NoC per-link flit heatmap, exported as one JSON
// document (`ls_experiment --metrics out.json` / LS_METRICS=out.json).
//
// Counters and gauges are lock-free atomics and cheap enough to leave
// always-on; the registry map itself is mutex-guarded, so hot paths should
// capture the returned reference once (function-local static) instead of
// re-looking-up by name. References returned by the registry stay valid
// for the life of the process.

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "util/stats.hpp"

namespace ls::obs {

class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Welford summary (util::RunningStats) plus an optional fixed-range
/// binned util::Histogram when constructed with a range.
class HistogramMetric {
 public:
  void observe(double x);
  void configure_bins(double lo, double hi, std::size_t bins);

  util::RunningStats summary() const;
  std::optional<util::Histogram> bins() const;

  /// Quantile query (q clamped to [0, 1]) by binned interpolation,
  /// clamped to the observed [min, max] so single samples and
  /// out-of-range observations (under/overflow mass) resolve to values
  /// that were actually seen. nullopt when nothing has been observed or
  /// no bins are configured — RunningStats alone cannot answer quantiles.
  /// The metrics export surfaces p50/p95/p99 through this.
  std::optional<double> quantile(double q) const;

  void reset();

 private:
  mutable std::mutex mu_;
  util::RunningStats stats_;
  std::optional<util::Histogram> hist_;
};

/// Per-link flit counts accumulated over every simulated burst, laid out
/// as noc::NocStats::per_link_flits: kLinkPorts entries per router in port
/// order [local, north, south, west, east] (local stays 0 — ejection is
/// not a mesh link).
inline constexpr std::size_t kLinkPorts = 5;
extern const char* const kLinkPortNames[kLinkPorts];

struct LinkHeatmap {
  std::size_t cols = 0;
  std::size_t rows = 0;
  std::vector<std::uint64_t> flits;  ///< kLinkPorts per router, row-major

  std::uint64_t router_total(std::size_t router) const;
};

class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name);
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t bins);

  /// Accumulates one burst's per-link flits (resets if the mesh shape
  /// changed since the last accumulation).
  void accumulate_link_flits(std::size_t cols, std::size_t rows,
                             std::span<const std::uint64_t> flits);
  LinkHeatmap link_heatmap() const;

  /// Whole registry as a JSON document.
  std::string to_json() const;
  bool write(const std::string& path) const;

  /// Arms export: finish() (or process exit via init_from_env) writes the
  /// registry to `path` once.
  void set_output(std::string path);
  void finish();

  /// Test hook: drops every metric and the heatmap.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  ~Registry();
  struct Impl;
  Impl* impl_;
};

}  // namespace ls::obs
