#pragma once
// ls::obs event tracer — RAII spans collected into a Chrome-trace-event
// JSON file that Perfetto / chrome://tracing loads directly.
//
// Two time domains share one file, separated by trace "process" id:
//   * pid 1 "wall-clock": real-thread spans (kernel calls, pool tasks,
//     trainer epochs/batches, flit-sim phases), ts = microseconds since
//     Tracer::start(), tid = a small per-thread ordinal.
//   * pid 2 "sim-cycles": the CMP system model's virtual timeline
//     (per-core layer compute spans, per-layer NoC burst spans), ts = model
//     cycle rendered as 1 cycle = 1 us, tid = core index (or the NoC track).
//
// Cost model: tracing is off by default and gated by one relaxed atomic
// load — no compile-time flag needed, and instrumented hot paths only pay
// that load when disabled. When enabled, span ends append to a
// mutex-guarded vector (spans are layer/epoch/burst grained, so contention
// is negligible). Tracing never feeds back into simulated results; the
// tier-1 determinism test asserts InferenceResult is identical on/off.

#include <atomic>
#include <cstdint>
#include <string>

namespace ls::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

/// One relaxed load; instrumentation guards on this before building names.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

inline constexpr std::uint32_t kWallPid = 1;  ///< wall-clock events
inline constexpr std::uint32_t kSimPid = 2;   ///< simulated-cycle events

class Tracer {
 public:
  /// Process-wide tracer.
  static Tracer& instance();

  /// Clears captured events, records t0, enables capture. `path` is where
  /// finish()/write() will export ("" = in-memory only, for tests).
  void start(std::string path);
  /// Disables capture; captured events are retained for write().
  void stop();
  /// Writes the trace to `path` (or the start() path when empty). Returns
  /// false if no path is known or the file cannot be written.
  bool write(const std::string& path = {});
  /// stop() + write-once to the pending path; safe to call repeatedly.
  void finish();
  void clear();

  std::size_t event_count() const;

  /// Records one complete ("ph":"X") event. `args_json` is either empty or
  /// a pre-rendered JSON object (inserted verbatim).
  void complete(std::string name, const char* cat, std::uint64_t ts_us,
                std::uint64_t dur_us, std::uint32_t pid, std::uint64_t tid,
                std::string args_json = {});

  /// Records a counter-track sample ("ph":"C"): the value of series `name`
  /// at ts_us. Perfetto renders each name as its own counter track under
  /// the process; samples may arrive out of ts order.
  void counter(std::string name, const char* cat, std::uint64_t ts_us,
               double value, std::uint32_t pid);

  /// Records one edge of a flow arrow ("ph":"s" start / "ph":"f" finish,
  /// binding-point "enclosing slice"). Both edges of flow `id` must land
  /// inside a complete event on their (pid, tid) track for the viewer to
  /// draw the arrow — used to chain a streamed request's burst span on the
  /// NoC track to the compute span it feeds on a core track.
  void flow(bool start, std::string name, const char* cat,
            std::uint64_t ts_us, std::uint64_t id, std::uint32_t pid,
            std::uint64_t tid);

  /// Microseconds since start() on the steady clock.
  std::uint64_t now_us() const;

  /// Small sequential ordinal of the calling thread (stable per thread).
  static std::uint64_t current_tid();

  /// Trace-viewer metadata rows. Idempotent; cheap enough to call per-run.
  void set_current_thread_name(std::string name);
  void set_virtual_thread_name(std::uint32_t pid, std::uint64_t tid,
                               std::string name);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();
  ~Tracer();
  struct Impl;
  Impl* impl_;
};

/// RAII wall-clock span. Default-constructed spans are inert; begin() arms
/// them, the destructor (or end()) records the complete event. The
/// enabled-guarded begin() pattern keeps dynamic-name construction off the
/// disabled path:
///
///   obs::Span span;
///   if (obs::trace_enabled()) span.begin(name_ + ".fwd", "kernel");
class Span {
 public:
  Span() = default;
  /// Convenience for static names; no-op when tracing is disabled.
  Span(const char* name, const char* cat) {
    if (trace_enabled()) begin(name, cat);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void begin(std::string name, const char* cat, std::string args_json = {});
  /// Replaces the args recorded at end() (e.g. results known only later).
  void set_args(std::string args_json);
  void end();

 private:
  bool active_ = false;
  std::uint64_t start_us_ = 0;
  std::string name_;
  const char* cat_ = "";
  std::string args_;
};

/// Reads LS_TRACE / LS_METRICS and arms the tracer / metrics registry
/// accordingly (export happens at finish() or process exit). Called by the
/// tools; harmless to call more than once.
void init_from_env();

}  // namespace ls::obs
