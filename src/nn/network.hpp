#pragma once
// Sequential network container: owns layers, runs forward/backward, and
// exposes parameters to the trainer and to the partitioners in ls::core.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"

namespace ls::nn {

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer; returns a reference to it for further configuration.
  Layer& add(std::unique_ptr<Layer> layer);

  /// Convenience typed add.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& in, bool training = false);

  /// Backward from dL/dlogits; returns dL/dinput.
  Tensor backward(const Tensor& grad_logits);

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// All learnable parameters across layers.
  std::vector<Param*> params();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Finds a layer by name; throws if absent.
  Layer& layer_by_name(const std::string& name);

  const std::string& name() const { return name_; }

  /// Total learnable scalar count.
  std::size_t num_params();

  /// Fraction of learnable weights that are exactly zero.
  double sparsity();

  /// Predicted class per sample.
  std::vector<std::uint32_t> predict(const Tensor& in);

  /// Classification accuracy against labels.
  double accuracy(const Tensor& in, const std::vector<std::uint32_t>& labels);

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace ls::nn
