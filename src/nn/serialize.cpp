#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

namespace ls::nn {

namespace {

constexpr char kMagic[4] = {'L', 'S', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("truncated checkpoint");
  return v;
}

}  // namespace

void save_params(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const auto params = net.params();
  write_pod(out, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_pod(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(),
              static_cast<std::streamsize>(p->name.size()));
    write_pod(out, static_cast<std::uint32_t>(p->value.shape().rank()));
    for (std::size_t d : p->value.shape().dims()) {
      write_pod(out, static_cast<std::uint64_t>(d));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("write failure on " + path);
}

void load_params(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(path + " is not an LSNN checkpoint");
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("unsupported checkpoint version in " + path);
  }
  const auto count = read_pod<std::uint32_t>(in);

  // Stage everything first so a malformed file leaves the net untouched.
  std::map<std::string, tensor::Tensor> staged;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto rank = read_pod<std::uint32_t>(in);
    if (rank == 0 || rank > 4) {
      throw std::runtime_error("bad tensor rank in " + path);
    }
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    tensor::Tensor t{tensor::Shape(dims)};
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("truncated checkpoint " + path);
    staged.emplace(std::move(name), std::move(t));
  }

  const auto params = net.params();
  if (params.size() != staged.size()) {
    throw std::runtime_error("parameter count mismatch loading " + path);
  }
  for (Param* p : params) {
    const auto it = staged.find(p->name);
    if (it == staged.end()) {
      throw std::runtime_error("missing parameter " + p->name + " in " + path);
    }
    if (!(it->second.shape() == p->value.shape())) {
      throw std::runtime_error("shape mismatch for " + p->name + " in " +
                               path);
    }
  }
  for (Param* p : params) {
    p->value = std::move(staged.at(p->name));
    p->bump();  // invalidate cached block-sparsity bitmaps
  }
}

}  // namespace ls::nn
