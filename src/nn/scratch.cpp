#include "nn/scratch.hpp"

#include "util/alloc.hpp"

namespace ls::nn::scratch {

namespace {

struct Arena {
  util::AlignedBuffer slots[static_cast<std::size_t>(Slot::kSlotCount)];
  std::uint64_t reallocs = 0;
};

Arena& tls_arena() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace

float* buffer(Slot slot, std::size_t floats) {
  Arena& a = tls_arena();
  util::AlignedBuffer& b = a.slots[static_cast<std::size_t>(slot)];
  a.reallocs += b.reserve(floats);
  return b.data();
}

Stats thread_stats() {
  const Arena& a = tls_arena();
  Stats s;
  s.reallocs = a.reallocs;
  for (const util::AlignedBuffer& b : a.slots) {
    s.bytes += b.capacity() * sizeof(float);
  }
  return s;
}

}  // namespace ls::nn::scratch
