#pragma once
// Fully-connected (inner-product) layer. Accepts {N, In} or any 4D input
// which it treats as flattened per sample.

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace ls::nn {

class FullyConnected final : public Layer {
 public:
  FullyConnected(std::string name, std::size_t in_features,
                 std::size_t out_features, util::Rng& rng, bool bias = true);

  Tensor forward(const Tensor& in, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  /// Weight layout: {Out, In}.
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }

 private:
  std::string name_;
  std::size_t in_features_;
  std::size_t out_features_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;  ///< flattened {N, In}
  Shape cached_input_shape_;
};

}  // namespace ls::nn
