#pragma once
// Fully-connected (inner-product) layer. Accepts {N, In} or any 4D input
// which it treats as flattened per sample.

#include <memory>

#include "nn/gemm_simd.hpp"
#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace ls::nn {

class BlockSparsity;

class FullyConnected final : public Layer {
 public:
  FullyConnected(std::string name, std::size_t in_features,
                 std::size_t out_features, util::Rng& rng, bool bias = true);
  ~FullyConnected() override;

  Tensor forward(const Tensor& in, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  /// Weight layout: {Out, In}.
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }

  /// Switches the GEMM backend at runtime (parity tests, benches). The
  /// default follows LS_CONV_IMPL: "simd" selects the packed vectorized
  /// kernels, anything else the scalar ones.
  void set_backend(simd::GemmBackend backend) { backend_ = backend; }
  simd::GemmBackend backend() const { return backend_; }

  /// Arms the block-sparse forward path: `in_units` is the producer
  /// feature-map count (in_features must be a multiple of it — each unit
  /// spans the flattened H*W footprint of one map, matching
  /// core::build_group_sets). Backward stays dense: group-Lasso training
  /// needs gradients into currently-zero blocks so they can revive.
  void set_sparsity_partition(std::size_t parts, std::size_t in_units);
  void clear_sparsity_partition();
  const BlockSparsity* sparsity() const { return sparsity_.get(); }

 private:
  const struct BlockMap* sparse_map();

  std::string name_;
  std::size_t in_features_;
  std::size_t out_features_;
  bool has_bias_;
  simd::GemmBackend backend_ = simd::default_backend();
  Param weight_;
  Param bias_;
  Tensor cached_input_;  ///< flattened {N, In}
  Shape cached_input_shape_;
  std::unique_ptr<BlockSparsity> sparsity_;
};

}  // namespace ls::nn
