#pragma once
// Binary parameter checkpointing.
//
// The sparsified experiments train the same architecture several times;
// checkpoints let users train once (e.g. in examples/sparsify_train) and
// re-analyze traffic offline, and they document the exact on-disk format a
// deployment toolchain would consume.
//
// Format (little-endian):
//   magic "LSNN" | u32 version | u32 param count |
//   per param: u32 name length | name bytes | u32 rank | u64 dims... |
//              f32 data...

#include <string>

#include "nn/network.hpp"

namespace ls::nn {

/// Writes every parameter of `net` to `path`. Throws std::runtime_error on
/// I/O failure.
void save_params(Network& net, const std::string& path);

/// Loads parameters into `net`; every stored name must match a parameter
/// of identical shape (extra/missing/mismatched parameters throw, nothing
/// is partially applied — the network is only mutated after full
/// validation).
void load_params(Network& net, const std::string& path);

}  // namespace ls::nn
