#pragma once
// Softmax + cross-entropy loss head.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ls::nn {

struct LossResult {
  double loss = 0.0;           ///< mean cross-entropy over the batch
  tensor::Tensor grad_logits;  ///< dL/dlogits, already divided by batch size
};

/// Computes softmax cross-entropy for logits {N, classes} and integer labels.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::uint32_t>& labels);

/// Row-wise softmax probabilities of logits {N, classes}.
tensor::Tensor softmax(const tensor::Tensor& logits);

/// Argmax class per row of logits {N, classes}.
std::vector<std::uint32_t> argmax_rows(const tensor::Tensor& logits);

}  // namespace ls::nn
