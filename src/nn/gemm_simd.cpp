#include "nn/gemm_simd.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "check/check.hpp"
#include "nn/gemm.hpp"
#include "nn/scratch.hpp"
#include "util/parallel.hpp"

// -fopenmp-simd (detected by CMake) activates `#pragma omp simd` without
// pulling in an OpenMP runtime. Without it the macro expands to nothing and
// the microkernel is a plain loop the optimizer may still vectorize — but
// default_backend() then refuses to select kSimd so LS_CONV_IMPL=simd never
// silently runs a scalar microkernel.
#if defined(LS_HAS_OMP_SIMD)
#define LS_PRAGMA_SIMD _Pragma("omp simd")
#else
#define LS_PRAGMA_SIMD
#endif

namespace ls::nn::simd {

namespace {

// Register blocking: the 4 x 16 accumulator tile is 8 YMM registers on the
// AVX2 clone (8 independent FMA chains — enough to cover the 4-5 cycle FMA
// latency at 2 FMAs/cycle), plus two B vectors and the A broadcast. The
// baseline clone splits the same tile across XMM pairs; it spills a little,
// but it is only reached on pre-AVX2 hardware. The accumulators live in
// tile_body's locals, never behind a pointer the packed-B loads could
// alias — that is what lets the compiler keep them register-resident
// across the k loop.
constexpr std::size_t kMr = 4;   ///< microkernel rows (C rows per tile)
constexpr std::size_t kNr = 16;  ///< microkernel cols (vector lanes)

// Task blocking: one parallel task owns a kMc x kNg region of C. The packed
// B panel is shared: run_grid packs every strip exactly once per call (a
// strip's bits depend only on the operand, never on which task or thread
// packs it), then the task grid reads it. Task and strip boundaries are
// compile-time constants, so any thread count produces identical bits.
constexpr std::size_t kMc = 64;   ///< C rows per task block
constexpr std::size_t kNg = 128;  ///< C cols per task block

// Work below this many MACs is not worth a pool dispatch (same threshold as
// the scalar backend).
constexpr std::size_t kParallelMinWork = 1 << 14;

// Below this many C rows the kMr-row tile machinery is pure overhead: the
// tile body pads every row block to kMr with duplicate pointers and the
// packed-B panel is amortized over too few FMAs, so the scalar streaming
// loop wins (FC backward dX runs at M = batch, typically 1-8). The nn
// variants delegate to the scalar kernel there; the threshold keeps the
// grid path for anything with at least two full row tiles. Sparse and
// dense small-M shapes must take the same path so the within-backend
// sparse == dense bit-exactness contract survives the dispatch.
constexpr std::size_t kSmallMRows = 2 * kMr;

// ---------------------------------------------------------------------------
// Microkernel: one Mr x Nr accumulator tile over the task's live k spans.
//
// The A operand is NOT packed: its four tile rows are raw operand pointers
// pa[r] with element stride `ka` (1 when rows are contiguous in k, the
// leading dimension when the variant walks a stored-transposed operand), so
// broadcasting pa[r][k * ka] streams the operand in place. The B operand is
// an Nr-wide strip with row stride `bs`: either a packed buffer (bs = kNr,
// lane tails zeroed) or — when the source already has the lanes contiguous
// per k and the strip is full-width — the operand itself (bs = ldb, no copy).
//
// Each C element sees one flat ascending-k reduction: spans are disjoint
// ascending [begin, end) pairs, and vector lanes run along the output
// dimension, never across k. A masked-out span would only have added exact
// +/-0 products (pruned weights are zero in memory), so the sparse entry
// points calling this with a consumer's live spans produce bit-identical
// results to the dense entry points on the same pruned operand (up to the
// sign of exact zeros — outputs compare equal under ==).
//
// TransposedC flips the writeback: the nt variants compute C^T so the big
// operand (the one with k-contiguous rows) can stream unpacked; acc element
// (r, lane) then lands at cb[lane * ldc + r] instead of cb[r * ldc + lane].
// ---------------------------------------------------------------------------
template <bool TransposedC>
[[gnu::always_inline]] inline void tile_body(const float* const pa[kMr],
                                             std::size_t ka, const float* bp,
                                             std::size_t bs,
                                             const std::size_t* spans,
                                             std::size_t n_spans, float* cb,
                                             std::size_t ldc,
                                             std::size_t rows,
                                             std::size_t cols) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  const float* pa0 = pa[0];
  const float* pa1 = pa[1];
  const float* pa2 = pa[2];
  const float* pa3 = pa[3];
  for (std::size_t s = 0; s < n_spans; ++s) {
    const std::size_t k1 = spans[2 * s + 1];
    for (std::size_t k = spans[2 * s]; k < k1; ++k) {
      const float* b = bp + k * bs;
      const float a0 = pa0[k * ka];
      const float a1 = pa1[k * ka];
      const float a2 = pa2[k * ka];
      const float a3 = pa3[k * ka];
      LS_PRAGMA_SIMD
      for (std::size_t j = 0; j < kNr; ++j) {
        acc0[j] += a0 * b[j];
        acc1[j] += a1 * b[j];
        acc2[j] += a2 * b[j];
        acc3[j] += a3 * b[j];
      }
    }
  }
  const float* acc[kMr] = {acc0, acc1, acc2, acc3};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < cols; ++j) {
      if constexpr (TransposedC) {
        cb[j * ldc + r] += acc[r][j];
      } else {
        cb[r * ldc + j] += acc[r][j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ISA dispatch. The repo compiles for the portable x86-64 baseline (SSE2),
// where the scalar backend already sits near the vector peak — the simd
// win comes from also compiling the microkernel as an AVX2+FMA clone
// (`target` attribute, no global -march change: the rest of the binary
// stays portable) and selecting it once at startup via cpuid. tile_body is
// always_inline with baseline-only options, so each wrapper's target set
// legally absorbs it. FMA contraction perturbs accumulation vs the SSE
// clone, which is fine: cross-backend parity is tolerance-based, and both
// the dense and sparse simd paths run the SAME clone, preserving their
// exact-equality contract.
// ---------------------------------------------------------------------------

using TileFn = void (*)(const float* const[kMr], std::size_t, const float*,
                        std::size_t, const std::size_t*, std::size_t, float*,
                        std::size_t, std::size_t, std::size_t);

void tile_base_n(const float* const pa[kMr], std::size_t ka, const float* bp,
                 std::size_t bs, const std::size_t* spans, std::size_t n_spans,
                 float* cb, std::size_t ldc, std::size_t rows,
                 std::size_t cols) {
  tile_body<false>(pa, ka, bp, bs, spans, n_spans, cb, ldc, rows, cols);
}

void tile_base_t(const float* const pa[kMr], std::size_t ka, const float* bp,
                 std::size_t bs, const std::size_t* spans, std::size_t n_spans,
                 float* cb, std::size_t ldc, std::size_t rows,
                 std::size_t cols) {
  tile_body<true>(pa, ka, bp, bs, spans, n_spans, cb, ldc, rows, cols);
}

#if defined(__x86_64__) && defined(__GNUC__)
#define LS_SIMD_AVX2_CLONES 1

[[gnu::target("avx2,fma")]] void tile_avx2_n(
    const float* const pa[kMr], std::size_t ka, const float* bp,
    std::size_t bs, const std::size_t* spans, std::size_t n_spans, float* cb,
    std::size_t ldc, std::size_t rows, std::size_t cols) {
  tile_body<false>(pa, ka, bp, bs, spans, n_spans, cb, ldc, rows, cols);
}

[[gnu::target("avx2,fma")]] void tile_avx2_t(
    const float* const pa[kMr], std::size_t ka, const float* bp,
    std::size_t bs, const std::size_t* spans, std::size_t n_spans, float* cb,
    std::size_t ldc, std::size_t rows, std::size_t cols) {
  tile_body<true>(pa, ka, bp, bs, spans, n_spans, cb, ldc, rows, cols);
}
#endif

template <bool TransposedC>
TileFn tile_fn() {
#if defined(LS_SIMD_AVX2_CLONES)
  static const bool avx2 =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (avx2) return TransposedC ? tile_avx2_t : tile_avx2_n;
#endif
  return TransposedC ? tile_base_t : tile_base_n;
}

// Strip sources for the B operand. Transposition is absorbed here, never in
// the microkernel. `direct(j, w)` returns an in-place strip pointer (row
// stride ldb) when the source already holds the strip's kNr lanes
// contiguously per k — the (K x N) row-major layout with a full-width strip
// — so nothing is copied; it returns nullptr when the strip must be packed.
// The packer `operator()` zeroes the lane tail (lane >= w) and fills only k
// in [k0, k1): span gaps stay whatever the scratch buffer held — the kernel
// only reads packed spans, which is what lets gemm_nn_sparse tolerate the
// garbage rows im2col_masked leaves in fully-pruned panels. Direct strips
// read the same rows, so the garbage is equally unreachable there.

struct PackBNn {  // operand stored (K x N) row-major
  const float* B;
  std::size_t ldb;
  const float* direct(std::size_t j, std::size_t w) const {
    return w == kNr ? B + j : nullptr;
  }
  std::size_t direct_stride() const { return ldb; }
  void operator()(std::size_t j, std::size_t w, std::size_t k0,
                  std::size_t k1, float* bp) const {
    for (std::size_t k = k0; k < k1; ++k) {
      const float* b_row = B + k * ldb + j;
      float* dst = bp + k * kNr;
      for (std::size_t lane = 0; lane < kNr; ++lane) {
        dst[lane] = lane < w ? b_row[lane] : 0.0f;
      }
    }
  }
};

struct PackBNt {  // operand stored (N x K), packed as its transpose
  const float* B;
  std::size_t ldb;
  const float* direct(std::size_t, std::size_t) const { return nullptr; }
  std::size_t direct_stride() const { return 0; }
  void operator()(std::size_t j, std::size_t w, std::size_t k0,
                  std::size_t k1, float* bp) const {
    for (std::size_t lane = 0; lane < kNr; ++lane) {
      if (lane < w) {
        const float* b_row = B + (j + lane) * ldb;
        for (std::size_t k = k0; k < k1; ++k) bp[k * kNr + lane] = b_row[k];
      } else {
        for (std::size_t k = k0; k < k1; ++k) bp[k * kNr + lane] = 0.0f;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// One task block: C[i0:i1, j0:j1] (or its transpose) over the live spans.
// `A` + (row_stride, k_stride) addresses the unpacked operand: tile row i
// is A + i * row_stride, element k of it at offset k * k_stride. `bp` holds
// this col block's packed strips, consecutive in strip order and skipping
// direct strips (run_grid packs each exactly once, shared read-only across
// every row block that consumes it); `pack_b.direct()` resolves the rest in
// place.
// ---------------------------------------------------------------------------
template <bool TransposedC, class PackB>
void run_block(const float* A, std::size_t row_stride, std::size_t k_stride,
               std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
               std::size_t K, const std::size_t* spans, std::size_t n_spans,
               const float* bp, const PackB& pack_b, float* C,
               std::size_t ldc, bool accumulate) {
  const std::size_t rows = i1 - i0;
  const std::size_t cols = j1 - j0;
  if (rows == 0 || cols == 0) return;
  if (!accumulate) {
    // In the transposed orientation the (i, j) block of the *logical*
    // output occupies C[j0:j1, i0:i1] of the stored matrix.
    if constexpr (TransposedC) {
      for (std::size_t j = j0; j < j1; ++j) {
        std::memset(C + j * ldc + i0, 0, rows * sizeof(float));
      }
    } else {
      for (std::size_t i = i0; i < i1; ++i) {
        std::memset(C + i * ldc + j0, 0, cols * sizeof(float));
      }
    }
  }
  if (n_spans == 0 || K == 0) return;  // fully pruned: region is zero/prior
  const TileFn tile = tile_fn<TransposedC>();
  const std::size_t n_tiles = (rows + kMr - 1) / kMr;
  const std::size_t n_strips = (cols + kNr - 1) / kNr;
  std::size_t packed = 0;
  for (std::size_t st = 0; st < n_strips; ++st) {
    const std::size_t j = j0 + st * kNr;
    const std::size_t w = std::min(kNr, j1 - j);
    const float* bpp = pack_b.direct(j, w);
    std::size_t bs = pack_b.direct_stride();
    if (bpp == nullptr) {
      bpp = bp + packed++ * K * kNr;
      bs = kNr;
    }
    for (std::size_t t = 0; t < n_tiles; ++t) {
      const std::size_t i = i0 + t * kMr;
      const std::size_t tr = std::min(kMr, i1 - i);
      // Tail tiles duplicate the last valid row pointer: the duplicate
      // lanes compute real (unread) values, and writeback stops at tr.
      const float* pa[kMr];
      for (std::size_t r = 0; r < kMr; ++r) {
        pa[r] = A + std::min(i + r, i1 - 1) * row_stride;
      }
      float* cb = TransposedC ? C + j * ldc + i : C + i * ldc + j;
      tile(pa, k_stride, bpp, bs, spans, n_spans, cb, ldc, tr, w);
    }
  }
}

// ---------------------------------------------------------------------------
// Task grids. A task is one (row block, col block) cell; the dense grids
// use fixed kMc/kNg cells, the sparse grids align cell edges to the mask's
// consumer (or producer) panel boundaries so every task has exactly one
// live-span list.
// ---------------------------------------------------------------------------

struct Block {
  std::size_t b0 = 0, b1 = 0;  ///< [begin, end) index range
  std::uint32_t panel = 0;     ///< owning mask panel (0 for dense)
};

std::vector<Block> dense_blocks(std::size_t n, std::size_t step) {
  std::vector<Block> bs;
  for (std::size_t b0 = 0; b0 < n; b0 += step) {
    bs.push_back({b0, std::min(n, b0 + step), 0});
  }
  return bs;
}

// Splits each panel of `bounds` into blocks of at most `step`. Empty panels
// contribute nothing (their index range is covered by neighbours).
std::vector<Block> panel_blocks(const std::size_t* bounds, std::size_t parts,
                                std::size_t step) {
  std::vector<Block> bs;
  for (std::size_t p = 0; p < parts; ++p) {
    for (std::size_t b0 = bounds[p]; b0 < bounds[p + 1]; b0 += step) {
      bs.push_back({b0, std::min(bounds[p + 1], b0 + step),
                    static_cast<std::uint32_t>(p)});
    }
  }
  return bs;
}

// Merged ascending [begin, end) span pairs per panel.
struct PanelSpans {
  std::vector<std::size_t> offsets;  ///< parts + 1 indices into spans
  std::vector<std::size_t> spans;    ///< begin/end pairs

  const std::size_t* data(std::size_t panel) const {
    return spans.data() + offsets[panel];
  }
  std::size_t count(std::size_t panel) const {
    return (offsets[panel + 1] - offsets[panel]) / 2;
  }
};

// Live k spans per consumer c: union over producers p with !zero[p][c] of
// the k_bounds[p] ranges (contiguous live panels merge into one span).
PanelSpans consumer_live_spans(const gemm::BlockMask& mask) {
  PanelSpans ps;
  ps.offsets.assign(mask.parts + 1, 0);
  for (std::size_t c = 0; c < mask.parts; ++c) {
    ps.offsets[c] = ps.spans.size();
    for (std::size_t p = 0; p < mask.parts; ++p) {
      if (mask.zero[p * mask.parts + c]) continue;
      const std::size_t lo = mask.k_bounds[p], hi = mask.k_bounds[p + 1];
      if (lo >= hi) continue;
      if (ps.spans.size() > ps.offsets[c] && ps.spans.back() == lo) {
        ps.spans.back() = hi;
      } else {
        ps.spans.push_back(lo);
        ps.spans.push_back(hi);
      }
    }
  }
  ps.offsets[mask.parts] = ps.spans.size();
  return ps;
}

// Live spans per *producer* p over the consumer bounds (for the tn variant,
// where the reduction dimension is the consumer partition).
PanelSpans producer_live_spans(const gemm::BlockMask& mask) {
  PanelSpans ps;
  ps.offsets.assign(mask.parts + 1, 0);
  for (std::size_t p = 0; p < mask.parts; ++p) {
    ps.offsets[p] = ps.spans.size();
    for (std::size_t c = 0; c < mask.parts; ++c) {
      if (mask.zero[p * mask.parts + c]) continue;
      const std::size_t lo = mask.out_bounds[c], hi = mask.out_bounds[c + 1];
      if (lo >= hi) continue;
      if (ps.spans.size() > ps.offsets[p] && ps.spans.back() == lo) {
        ps.spans.back() = hi;
      } else {
        ps.spans.push_back(lo);
        ps.spans.push_back(hi);
      }
    }
  }
  ps.offsets[mask.parts] = ps.spans.size();
  return ps;
}

// Union across consumers of the live producer k ranges — exactly the rows a
// masked im2col fills. The shared packed panel covers this union (a task
// then reduces over its own consumer's subset), so rows dead for *all*
// consumers are never packed and their garbage is never read.
std::vector<std::size_t> union_live_spans(const gemm::BlockMask& mask) {
  std::vector<std::size_t> spans;
  for (std::size_t p = 0; p < mask.parts; ++p) {
    bool live = false;
    for (std::size_t c = 0; c < mask.parts && !live; ++c) {
      live = !mask.zero[p * mask.parts + c];
    }
    if (!live) continue;
    const std::size_t lo = mask.k_bounds[p], hi = mask.k_bounds[p + 1];
    if (lo >= hi) continue;
    if (!spans.empty() && spans.back() == lo) {
      spans.back() = hi;
    } else {
      spans.push_back(lo);
      spans.push_back(hi);
    }
  }
  return spans;
}

// Same probe as the scalar backend's: a mismatched mask silently skips or
// double-counts k spans, so checked builds verify extents at every entry.
void check_mask_extents(const gemm::BlockMask& mask, std::size_t red_extent,
                        std::size_t out_extent) {
  LS_CHECK(mask.parts > 0);
  LS_CHECK_MSG(mask.k_bounds[mask.parts] == red_extent,
               "block mask k extent %zu != gemm reduction extent %zu",
               mask.k_bounds[mask.parts], red_extent);
  LS_CHECK_MSG(mask.out_bounds[mask.parts] == out_extent,
               "block mask out extent %zu != gemm output extent %zu",
               mask.out_bounds[mask.parts], out_extent);
  for (std::size_t p = 0; p < mask.parts; ++p) {
    LS_CHECK_MSG(mask.k_bounds[p] <= mask.k_bounds[p + 1] &&
                     mask.out_bounds[p] <= mask.out_bounds[p + 1],
                 "block mask bounds not monotonic at panel %zu", p);
  }
}

// Runs the (row block x col block) task grid, parallel when worthwhile.
// `spans_of` maps a task's blocks to its live k list; blocks never straddle
// mask panels, so the lookup is per-task. `pack_spans_of` gives the k spans
// a col block's shared strips must cover — a superset of every task's
// compute spans (the union of consumer live lists for the sparse nn/nt
// grids, the col block's own list for tn). Packing happens once per call
// into the caller's scratch slot; both phases split the same way for every
// thread count, and a strip's packed bits do not depend on who packs it,
// so determinism is preserved. parallel_for's fork/join orders the pack
// phase before every compute task.
template <bool TransposedC, class SpansOf, class PackSpansOf, class PackB>
void run_grid(const float* A, std::size_t row_stride, std::size_t k_stride,
              const std::vector<Block>& rbs, const std::vector<Block>& cbs,
              std::size_t K, float* C, std::size_t ldc, bool accumulate,
              bool parallel, std::size_t work, const SpansOf& spans_of,
              const PackSpansOf& pack_spans_of, const PackB& pack_b) {
  const std::size_t n_tasks = rbs.size() * cbs.size();
  if (n_tasks == 0) return;
  // Packed-strip table: col block ci's packed strips (the ones direct()
  // cannot serve in place) occupy [strip_base[ci], strip_base[ci + 1]).
  std::vector<std::size_t> strip_base(cbs.size() + 1, 0);
  for (std::size_t ci = 0; ci < cbs.size(); ++ci) {
    std::size_t n_packed = 0;
    for (std::size_t j = cbs[ci].b0; j < cbs[ci].b1; j += kNr) {
      const std::size_t w = std::min(kNr, cbs[ci].b1 - j);
      if (pack_b.direct(j, w) == nullptr) ++n_packed;
    }
    strip_base[ci + 1] = strip_base[ci] + n_packed;
  }
  float* bp =
      scratch::buffer(scratch::Slot::kPackB, strip_base.back() * K * kNr);
  auto pack_cb = [&](std::size_t ci) {
    const Block& cb = cbs[ci];
    std::size_t n_spans = 0;
    const std::size_t* spans = pack_spans_of(cb, &n_spans);
    std::size_t packed = 0;
    for (std::size_t j = cb.b0; j < cb.b1; j += kNr) {
      const std::size_t w = std::min(kNr, cb.b1 - j);
      if (pack_b.direct(j, w) != nullptr) continue;
      float* dst = bp + (strip_base[ci] + packed++) * K * kNr;
      for (std::size_t s = 0; s < n_spans; ++s) {
        pack_b(j, w, spans[2 * s], spans[2 * s + 1], dst);
      }
    }
  };
  auto task = [&](std::size_t t) {
    const Block& rb = rbs[t / cbs.size()];
    const std::size_t ci = t % cbs.size();
    const Block& cb = cbs[ci];
    std::size_t n_spans = 0;
    const std::size_t* spans = spans_of(rb, cb, &n_spans);
    run_block<TransposedC>(A, row_stride, k_stride, rb.b0, rb.b1, cb.b0,
                           cb.b1, K, spans, n_spans,
                           bp + strip_base[ci] * K * kNr, pack_b, C, ldc,
                           accumulate);
  };
  if (parallel && n_tasks > 1 && work >= kParallelMinWork) {
    if (strip_base.back() > 0) util::parallel_for(0, cbs.size(), pack_cb);
    util::parallel_for(0, n_tasks, task);
  } else {
    if (strip_base.back() > 0) {
      for (std::size_t ci = 0; ci < cbs.size(); ++ci) pack_cb(ci);
    }
    for (std::size_t t = 0; t < n_tasks; ++t) task(t);
  }
}

}  // namespace

bool vectorized() {
#if defined(LS_HAS_OMP_SIMD)
  return true;
#else
  return false;
#endif
}

const char* microkernel_isa() {
#if defined(LS_SIMD_AVX2_CLONES)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return "avx2+fma";
  }
#endif
  return "portable";
}

GemmBackend default_backend() {
  static const GemmBackend backend = [] {
    const char* env = std::getenv("LS_CONV_IMPL");
    if (env != nullptr && std::string_view(env) == "simd" && vectorized()) {
      return GemmBackend::kSimd;
    }
    return GemmBackend::kScalar;
  }();
  return backend;
}

void gemm_nn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  if (M == 0 || N == 0) return;
  if (M < kSmallMRows) {
    gemm::gemm_nn(M, N, K, A, lda, B, ldb, C, ldc, accumulate, parallel);
    return;
  }
  const std::size_t full[2] = {0, K};
  const auto all = [&](const Block&, const Block&, std::size_t* n) {
    *n = K > 0 ? 1 : 0;
    return full;
  };
  const auto pack_all = [&](const Block&, std::size_t* n) {
    *n = K > 0 ? 1 : 0;
    return full;
  };
  run_grid<false>(A, lda, 1, dense_blocks(M, kMc), dense_blocks(N, kNg), K, C,
                  ldc, accumulate, parallel, M * N * K, all, pack_all,
                  PackBNn{B, ldb});
}

void gemm_tn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  // A is stored (K x M): logical row i is the stored column at A + i, with
  // k advancing by lda — contiguous kMr-wide reads per k, no packing.
  if (M == 0 || N == 0) return;
  const std::size_t full[2] = {0, K};
  const auto all = [&](const Block&, const Block&, std::size_t* n) {
    *n = K > 0 ? 1 : 0;
    return full;
  };
  const auto pack_all = [&](const Block&, std::size_t* n) {
    *n = K > 0 ? 1 : 0;
    return full;
  };
  run_grid<false>(A, 1, lda, dense_blocks(M, kMc), dense_blocks(N, kNg), K, C,
                  ldc, accumulate, parallel, M * N * K, all, pack_all,
                  PackBNn{B, ldb});
}

void gemm_nt(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  // Computed as C^T(N x M) = B(N x K) * A^T: B's rows are k-contiguous and
  // stream unpacked; only A (usually the small operand — FC activations)
  // gets strip-packed. Writeback transposes back into C.
  if (M == 0 || N == 0) return;
  const std::size_t full[2] = {0, K};
  const auto all = [&](const Block&, const Block&, std::size_t* n) {
    *n = K > 0 ? 1 : 0;
    return full;
  };
  const auto pack_all = [&](const Block&, std::size_t* n) {
    *n = K > 0 ? 1 : 0;
    return full;
  };
  run_grid<true>(B, ldb, 1, dense_blocks(N, kMc), dense_blocks(M, kNg), K, C,
                 ldc, accumulate, parallel, M * N * K, all, pack_all,
                 PackBNt{A, lda});
}

void gemm_nn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel,
                    const gemm::BlockMask& mask) {
  if (M == 0 || N == 0) return;
  if constexpr (check::kEnabled) check_mask_extents(mask, K, M);
  if (M < kSmallMRows) {
    gemm::gemm_nn_sparse(M, N, K, A, lda, B, ldb, C, ldc, accumulate,
                         parallel, mask);
    return;
  }
  const PanelSpans live = consumer_live_spans(mask);
  const std::vector<std::size_t> pack_spans = union_live_spans(mask);
  // Row blocks align to consumer panels: every task has one consumer, so
  // its live list covers exactly the packed B rows it reads. Strips are
  // packed over the union of all consumers' lists; dead-for-all panels are
  // outside the union — the garbage rows im2col_masked leaves there are
  // never packed, never touched.
  run_grid<false>(A, lda, 1, panel_blocks(mask.out_bounds, mask.parts, kMc),
                  dense_blocks(N, kNg), K, C, ldc, accumulate, parallel,
                  M * N * K,
                  [&](const Block& rb, const Block&, std::size_t* n) {
                    *n = live.count(rb.panel);
                    return live.data(rb.panel);
                  },
                  [&](const Block&, std::size_t* n) {
                    *n = pack_spans.size() / 2;
                    return pack_spans.data();
                  },
                  PackBNn{B, ldb});
}

void gemm_nt_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel,
                    const gemm::BlockMask& mask) {
  if (M == 0 || N == 0) return;
  if constexpr (check::kEnabled) check_mask_extents(mask, K, N);
  const PanelSpans live = consumer_live_spans(mask);
  const std::vector<std::size_t> pack_spans = union_live_spans(mask);
  // Transposed orientation: the grid's row dimension is N (the weight rows
  // of B), which is exactly the consumer partition — row blocks align to
  // consumer panels and skip their dead k spans of the weight operand. The
  // packed activations cover the union of the consumers' live spans.
  run_grid<true>(B, ldb, 1, panel_blocks(mask.out_bounds, mask.parts, kMc),
                 dense_blocks(M, kNg), K, C, ldc, accumulate, parallel,
                 M * N * K,
                 [&](const Block& rb, const Block&, std::size_t* n) {
                   *n = live.count(rb.panel);
                   return live.data(rb.panel);
                 },
                 [&](const Block&, std::size_t* n) {
                   *n = pack_spans.size() / 2;
                   return pack_spans.data();
                 },
                 PackBNt{A, lda});
}

void gemm_tn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel,
                    const gemm::BlockMask& mask) {
  if (M == 0 || N == 0) return;
  if constexpr (check::kEnabled) check_mask_extents(mask, N, K);
  const PanelSpans live = producer_live_spans(mask);
  // Col blocks align to *producer* panels over N; each column's live k
  // spans are the consumer ranges whose (producer, consumer) block is live.
  // Spans depend only on the col block here, so pack spans == compute spans.
  run_grid<false>(A, 1, lda, dense_blocks(M, kMc),
                  panel_blocks(mask.k_bounds, mask.parts, kNg), K, C, ldc,
                  accumulate, parallel, M * N * K,
                  [&](const Block&, const Block& cb, std::size_t* n) {
                    *n = live.count(cb.panel);
                    return live.data(cb.panel);
                  },
                  [&](const Block& cb, std::size_t* n) {
                    *n = live.count(cb.panel);
                    return live.data(cb.panel);
                  },
                  PackBNn{B, ldb});
}

}  // namespace ls::nn::simd
