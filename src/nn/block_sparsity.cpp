#include "nn/block_sparsity.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "check/check.hpp"
#include "nn/conv2d.hpp"
#include "nn/fc.hpp"
#include "nn/layer.hpp"
#include "nn/layer_spec.hpp"
#include "nn/network.hpp"

namespace ls::nn {

std::vector<std::size_t> balanced_bounds(std::size_t units,
                                         std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("balanced_bounds: zero parts");
  std::vector<std::size_t> bounds(parts + 1, 0);
  const std::size_t base = units / parts;
  const std::size_t extra = units % parts;
  for (std::size_t p = 0; p < parts; ++p) {
    bounds[p + 1] = bounds[p] + base + (p < extra ? 1 : 0);
  }
  return bounds;
}

double BlockMap::block_density() const {
  const std::size_t total = parts * parts;
  return total ? 1.0 - static_cast<double>(zero_blocks) /
                           static_cast<double>(total)
               : 1.0;
}

BlockSparsity::BlockSparsity(std::size_t parts, std::size_t in_units,
                             std::size_t out_units,
                             std::size_t elems_per_in_unit) {
  if (parts == 0) throw std::invalid_argument("block sparsity: zero parts");
  if (elems_per_in_unit == 0) {
    throw std::invalid_argument("block sparsity: zero elems per in unit");
  }
  map_.parts = parts;
  map_.out_bounds = balanced_bounds(out_units, parts);
  map_.k_bounds = balanced_bounds(in_units, parts);
  for (std::size_t& b : map_.k_bounds) b *= elems_per_in_unit;
  map_.channel_skip.assign(in_units, 0);
  map_.zero.assign(parts * parts, 0);
}

namespace {

// Checked-build probe: every block the bitmap marks zero must still be
// exactly zero in memory. A mismatch means the weights were mutated without
// Param::bump() — the stale-cache hazard the invalidation contract above
// exists to prevent — and the sparse kernels would silently skip live
// blocks.
void verify_zero_blocks(const BlockMap& map, const Param& weight) {
  const std::size_t parts = map.parts;
  const std::size_t red_extent = map.k_bounds[parts];
  const float* w = weight.value.data();
  for (std::size_t p = 0; p < parts; ++p) {
    for (std::size_t c = 0; c < parts; ++c) {
      if (!map.zero[p * parts + c]) continue;
      for (std::size_t oc = map.out_bounds[c]; oc < map.out_bounds[c + 1];
           ++oc) {
        const float* row = w + oc * red_extent;
        for (std::size_t k = map.k_bounds[p]; k < map.k_bounds[p + 1]; ++k) {
          LS_CHECK_MSG(
              row[k] == 0.0f,
              "sparsity bitmap stale for '%s': block (p=%zu,c=%zu) is "
              "marked zero but weight[%zu][%zu] = %g — value mutated "
              "without Param::bump()?",
              weight.name.c_str(), p, c, oc, k, static_cast<double>(row[k]));
        }
      }
    }
  }
}

}  // namespace

const BlockMap& BlockSparsity::map(const Param& weight) {
  LS_CHECK_MSG(!scanned_ || weight.version >= scanned_version_,
               "Param '%s' version moved backwards (%llu -> %llu); versions "
               "are monotonic by contract",
               weight.name.c_str(),
               static_cast<unsigned long long>(scanned_version_),
               static_cast<unsigned long long>(weight.version));
  if (scanned_ && scanned_version_ == weight.version) {
    if constexpr (check::kEnabled) verify_zero_blocks(map_, weight);
    return map_;
  }

  const std::size_t parts = map_.parts;
  const std::size_t out_extent = map_.out_bounds[parts];
  const std::size_t red_extent = map_.k_bounds[parts];
  if (weight.value.numel() != out_extent * red_extent) {
    throw std::logic_error("block sparsity: weight extent mismatch");
  }

  // Blocks start presumed zero; any nonzero element clears the bit. The
  // weight is row-major (out_extent x red_extent) for both conv
  // ({Cout, Cin, K, K}) and fc ({Out, In}), so block (p, c) is the
  // contiguous k_bounds[p]..[p+1] span of every row in out panel c.
  std::memset(map_.zero.data(), 1, map_.zero.size());
  const float* w = weight.value.data();
  for (std::size_t c = 0; c < parts; ++c) {
    for (std::size_t oc = map_.out_bounds[c]; oc < map_.out_bounds[c + 1];
         ++oc) {
      const float* row = w + oc * red_extent;
      for (std::size_t p = 0; p < parts; ++p) {
        std::uint8_t& z = map_.zero[p * parts + c];
        if (!z) continue;
        for (std::size_t k = map_.k_bounds[p]; k < map_.k_bounds[p + 1];
             ++k) {
          if (row[k] != 0.0f) {
            z = 0;
            break;
          }
        }
      }
    }
  }

  // Empty panels (parts > units) leave their bits set — harmless for the
  // kernels — but only blocks with actual weight elements count toward
  // zero_blocks, so engaged() stays false until something real is pruned.
  map_.zero_blocks = 0;
  map_.zero_weight_elems = 0;
  std::vector<std::uint8_t> panel_dead(parts, 1);
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t k_cnt = map_.k_bounds[p + 1] - map_.k_bounds[p];
    for (std::size_t c = 0; c < parts; ++c) {
      const std::size_t elems =
          k_cnt * (map_.out_bounds[c + 1] - map_.out_bounds[c]);
      if (map_.zero[p * parts + c]) {
        if (elems > 0) {
          ++map_.zero_blocks;
          map_.zero_weight_elems += elems;
        }
      } else {
        panel_dead[p] = 0;
      }
    }
  }

  // channel_skip: in-units whose producer panel is dead for every consumer.
  const std::size_t in_units = map_.channel_skip.size();
  const std::size_t elems =
      in_units ? red_extent / in_units : 0;
  for (std::size_t u = 0; u < in_units; ++u) {
    // owner panel of unit u: the panel whose (unscaled) bounds contain u.
    std::size_t p = 0;
    const std::size_t k = u * elems;
    while (p + 1 < parts && map_.k_bounds[p + 1] <= k) ++p;
    map_.channel_skip[u] = panel_dead[p];
  }

  scanned_version_ = weight.version;
  scanned_ = true;
  return map_;
}

bool sparse_runtime_enabled() {
  static const bool enabled = [] {
    if (const char* env = std::getenv("LS_SPARSE")) {
      if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
        return false;
      }
    }
    return true;
  }();
  return enabled;
}

std::size_t enable_block_sparsity(Network& net, const NetSpec& spec,
                                  std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("zero parts");
  const auto analysis = analyze(spec);
  if (analysis.size() != net.num_layers()) {
    throw std::invalid_argument("spec/network layer count mismatch");
  }

  std::size_t armed = 0;
  bool seen_first_compute = false;
  std::size_t prev_out_units = spec.input.c;
  for (std::size_t li = 0; li < analysis.size(); ++li) {
    const LayerAnalysis& a = analysis[li];
    if (!a.is_compute()) continue;
    if (!seen_first_compute) {
      // First compute layer reads the replicated input: nothing is pruned
      // there (no group-Lasso blocks), so the dense path stays.
      seen_first_compute = true;
      prev_out_units = a.out.c;
      continue;
    }
    if (a.spec.kind == LayerKind::kConv && a.spec.groups > 1) {
      prev_out_units = a.out.c;
      continue;  // structure-level grouped layer; not block-sparse material
    }

    Layer& layer = net.layer(li);
    if (a.spec.kind == LayerKind::kConv) {
      auto* conv = dynamic_cast<Conv2D*>(&layer);
      if (conv == nullptr || conv->name() != a.spec.name) {
        throw std::logic_error("spec/network mismatch at " + a.spec.name);
      }
      conv->set_sparsity_partition(parts);
      prev_out_units = conv->config().out_channels;
    } else {
      auto* fc = dynamic_cast<FullyConnected*>(&layer);
      if (fc == nullptr || fc->name() != a.spec.name) {
        throw std::logic_error("spec/network mismatch at " + a.spec.name);
      }
      fc->set_sparsity_partition(parts, prev_out_units);
      prev_out_units = fc->out_features();
    }
    ++armed;
  }
  return armed;
}

}  // namespace ls::nn
