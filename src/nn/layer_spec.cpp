#include "nn/layer_spec.hpp"

#include <stdexcept>

namespace ls::nn {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kPool:
      return "pool";
    case LayerKind::kReLU:
      return "relu";
    case LayerKind::kFlatten:
      return "flatten";
  }
  return "?";
}

LayerSpec LayerSpec::conv(std::string name, std::size_t out_channels,
                          std::size_t kernel, std::size_t stride,
                          std::size_t pad, std::size_t groups) {
  LayerSpec s;
  s.kind = LayerKind::kConv;
  s.name = std::move(name);
  s.out_channels = out_channels;
  s.kernel = kernel;
  s.stride = stride;
  s.pad = pad;
  s.groups = groups;
  return s;
}

LayerSpec LayerSpec::fc(std::string name, std::size_t out_features) {
  LayerSpec s;
  s.kind = LayerKind::kFullyConnected;
  s.name = std::move(name);
  s.out_features = out_features;
  return s;
}

LayerSpec LayerSpec::pool(std::string name, std::size_t window,
                          std::size_t stride) {
  LayerSpec s;
  s.kind = LayerKind::kPool;
  s.name = std::move(name);
  s.window = window;
  s.pool_stride = stride;
  return s;
}

LayerSpec LayerSpec::relu(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kReLU;
  s.name = std::move(name);
  return s;
}

LayerSpec LayerSpec::flatten(std::string name) {
  LayerSpec s;
  s.kind = LayerKind::kFlatten;
  s.name = std::move(name);
  return s;
}

std::vector<LayerAnalysis> analyze(const NetSpec& spec) {
  std::vector<LayerAnalysis> out;
  out.reserve(spec.layers.size());
  ActShape cur = spec.input;
  for (const LayerSpec& layer : spec.layers) {
    LayerAnalysis a;
    a.spec = layer;
    a.in = cur;
    switch (layer.kind) {
      case LayerKind::kConv: {
        if (layer.groups == 0 || cur.c % layer.groups != 0 ||
            layer.out_channels % layer.groups != 0) {
          throw std::invalid_argument("conv groups mismatch in " + layer.name);
        }
        if (cur.h + 2 * layer.pad < layer.kernel ||
            cur.w + 2 * layer.pad < layer.kernel) {
          throw std::invalid_argument("conv kernel too large in " + layer.name);
        }
        const std::size_t oh =
            (cur.h + 2 * layer.pad - layer.kernel) / layer.stride + 1;
        const std::size_t ow =
            (cur.w + 2 * layer.pad - layer.kernel) / layer.stride + 1;
        a.out = {layer.out_channels, oh, ow};
        const std::size_t cin_g = cur.c / layer.groups;
        a.weight_count =
            layer.out_channels * cin_g * layer.kernel * layer.kernel;
        a.macs = a.out.numel() * cin_g * layer.kernel * layer.kernel;
        break;
      }
      case LayerKind::kFullyConnected: {
        const std::size_t in_features = cur.numel();
        a.out = {layer.out_features, 1, 1};
        a.weight_count = layer.out_features * in_features;
        a.macs = a.weight_count;
        break;
      }
      case LayerKind::kPool: {
        if (cur.h < layer.window || cur.w < layer.window) {
          throw std::invalid_argument("pool window too large in " + layer.name);
        }
        a.out = {cur.c, (cur.h - layer.window) / layer.pool_stride + 1,
                 (cur.w - layer.window) / layer.pool_stride + 1};
        break;
      }
      case LayerKind::kReLU:
        a.out = cur;
        break;
      case LayerKind::kFlatten:
        a.out = {cur.numel(), 1, 1};
        break;
    }
    cur = a.out;
    out.push_back(a);
  }
  return out;
}

std::size_t total_macs(const NetSpec& spec) {
  std::size_t total = 0;
  for (const auto& a : analyze(spec)) total += a.macs;
  return total;
}

std::size_t total_weights(const NetSpec& spec) {
  std::size_t total = 0;
  for (const auto& a : analyze(spec)) total += a.weight_count;
  return total;
}

}  // namespace ls::nn
