#pragma once
// Network architectures used throughout the paper's evaluation.
//
// Two families:
//
// * Full-scale specs (`mlp`, `lenet`, `convnet`, `alexnet`, `vgg19`) with
//   the published layer dimensions. These drive the *analytic* models
//   (TABLE I traffic volumes, accelerator cycle counts) and are never
//   trained here.
//
// * Experiment specs (`*_expt`) — same layer *structure* but with channel
//   counts scaled so that from-scratch CPU training completes in seconds on
//   the synthetic datasets (see DESIGN.md substitution table). These are the
//   networks actually trained for TABLE III/IV/V/VI.
//
// `build_network` instantiates any spec into a trainable ls::nn::Network.

#include "nn/layer_spec.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"

namespace ls::nn {

// --- Full-scale specs (analytics only) -----------------------------------

/// 3-layer MLP 784-512-304-10 on MNIST (paper §V).
NetSpec mlp_spec();

/// Caffe LeNet: conv 20@5x5, pool, conv 50@5x5, pool, ip 500, ip 10.
NetSpec lenet_spec();

/// Caffe cifar10_quick ConvNet: conv 32/32/64 @5x5, ip 64, ip 10.
NetSpec convnet_spec();

/// CaffeNet/AlexNet-shape (dense conv2, 227x227 input).
NetSpec alexnet_spec();

/// VGG19 (224x224 input).
NetSpec vgg19_spec();

/// ConvNet variant of TABLE III with the given conv kernel counts
/// (conv1-conv2-conv3) and group count n applied to conv2 and conv3.
NetSpec convnet_variant_spec(std::size_t c1, std::size_t c2, std::size_t c3,
                             std::size_t groups);

// --- Experiment specs (trainable, scaled) --------------------------------

/// MLP is small enough to train at full published size.
NetSpec mlp_expt_spec();

/// Scaled LeNet: conv 16@5x5, pool, conv 32@5x5, pool, fc 128, fc 10 on
/// 28x28x1 input.
NetSpec lenet_expt_spec();

/// Scaled ConvNet on 32x32x3 input: conv 16/32/64, fc 10.
NetSpec convnet_expt_spec();

/// Scaled CaffeNet on 64x64x3 input: conv 16/32/64, fc 128, fc 10.
NetSpec caffenet_expt_spec();

/// Scaled TABLE III ConvNet variant on 32x32x3 "ImageNet10" input.
/// Parallel#1/#2 use (32, 64, 128); Parallel#3 uses (32, 96, 160).
NetSpec convnet_variant_expt_spec(std::size_t c1, std::size_t c2,
                                  std::size_t c3, std::size_t groups);

// --- Instantiation --------------------------------------------------------

/// Builds a trainable Network from a spec (He-normal init from rng).
Network build_network(const NetSpec& spec, util::Rng& rng);

}  // namespace ls::nn
