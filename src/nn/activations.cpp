#include "nn/activations.hpp"

#include <stdexcept>

namespace ls::nn {

Tensor ReLU::forward(const Tensor& in, bool training) {
  Tensor out = in;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  if (training) cached_input_ = in;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error("relu backward without training forward");
  }
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_in[i] = 0.0f;
  }
  return grad_in;
}

Shape Flatten::output_shape(const Shape& in) const {
  std::size_t features = 1;
  for (std::size_t i = 1; i < in.rank(); ++i) features *= in[i];
  return Shape{in[0], features};
}

Tensor Flatten::forward(const Tensor& in, bool training) {
  if (training) cached_input_shape_ = in.shape();
  return in.reshaped(output_shape(in.shape()));
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (cached_input_shape_.empty()) {
    throw std::logic_error("flatten backward without training forward");
  }
  return grad_out.reshaped(cached_input_shape_);
}

}  // namespace ls::nn
