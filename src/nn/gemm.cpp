#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "util/parallel.hpp"

namespace ls::nn::gemm {

namespace {

// Blocking constants. IB (rows per parallel chunk) is part of the
// determinism contract only in that it is a compile-time constant: chunk
// boundaries never depend on the thread count. KC groups the k reduction
// for cache reuse; because k blocks are visited in ascending order the
// per-element accumulation order is fixed.
constexpr std::size_t kRowBlock = 16;   // IB: C rows per parallel chunk
constexpr std::size_t kColBlock = 512;  // NC: C columns per cache block
constexpr std::size_t kRedBlock = 128;  // KC: k elements per cache block

// Work below this many MACs is not worth a pool dispatch.
constexpr std::size_t kParallelMinWork = 1 << 14;

std::size_t chunks_for(std::size_t rows) {
  return (rows + kRowBlock - 1) / kRowBlock;
}

void nn_block(std::size_t i0, std::size_t i1, std::size_t N, std::size_t K,
              const float* A, std::size_t lda, const float* B,
              std::size_t ldb, float* C, std::size_t ldc, bool accumulate) {
  for (std::size_t jj = 0; jj < N; jj += kColBlock) {
    const std::size_t jend = std::min(N, jj + kColBlock);
    if (!accumulate) {
      for (std::size_t i = i0; i < i1; ++i) {
        std::memset(C + i * ldc + jj, 0, (jend - jj) * sizeof(float));
      }
    }
    for (std::size_t kk = 0; kk < K; kk += kRedBlock) {
      const std::size_t kend = std::min(K, kk + kRedBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* a_row = A + i * lda;
        float* c_row = C + i * ldc;
        std::size_t k = kk;
        for (; k + 4 <= kend; k += 4) {
          const float a0 = a_row[k], a1 = a_row[k + 1];
          const float a2 = a_row[k + 2], a3 = a_row[k + 3];
          const float* b0 = B + k * ldb;
          const float* b1 = b0 + ldb;
          const float* b2 = b1 + ldb;
          const float* b3 = b2 + ldb;
          for (std::size_t j = jj; j < jend; ++j) {
            c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; k < kend; ++k) {
          const float a = a_row[k];
          const float* b = B + k * ldb;
          for (std::size_t j = jj; j < jend; ++j) c_row[j] += a * b[j];
        }
      }
    }
  }
}

void tn_block(std::size_t i0, std::size_t i1, std::size_t N, std::size_t K,
              const float* A, std::size_t lda, const float* B,
              std::size_t ldb, float* C, std::size_t ldc, bool accumulate) {
  if (!accumulate) {
    for (std::size_t i = i0; i < i1; ++i) {
      std::memset(C + i * ldc, 0, N * sizeof(float));
    }
  }
  // k outermost keeps the per-element reduction in ascending k order; the
  // C chunk (<= kRowBlock rows) stays cache-resident across k.
  for (std::size_t k = 0; k < K; ++k) {
    const float* a_col = A + k * lda;
    const float* b_row = B + k * ldb;
    for (std::size_t i = i0; i < i1; ++i) {
      const float a = a_col[i];
      float* c_row = C + i * ldc;
      for (std::size_t j = 0; j < N; ++j) c_row[j] += a * b_row[j];
    }
  }
}

void nt_block(std::size_t j0, std::size_t j1, std::size_t M, std::size_t K,
              const float* A, std::size_t lda, const float* B,
              std::size_t ldb, float* C, std::size_t ldc, bool accumulate) {
  for (std::size_t i = 0; i < M; ++i) {
    const float* a_row = A + i * lda;
    float* c_row = C + i * ldc;
    for (std::size_t j = j0; j < j1; ++j) {
      const float* b_row = B + j * ldb;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      std::size_t k = 0;
      for (; k + 4 <= K; k += 4) {
        acc0 += a_row[k] * b_row[k];
        acc1 += a_row[k + 1] * b_row[k + 1];
        acc2 += a_row[k + 2] * b_row[k + 2];
        acc3 += a_row[k + 3] * b_row[k + 3];
      }
      float tail = 0.0f;
      for (; k < K; ++k) tail += a_row[k] * b_row[k];
      const float sum = ((acc0 + acc1) + (acc2 + acc3)) + tail;
      c_row[j] = accumulate ? c_row[j] + sum : sum;
    }
  }
}

}  // namespace

void gemm_nn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  if (M == 0 || N == 0) return;
  if (parallel && M * N * K >= kParallelMinWork && M > kRowBlock) {
    util::parallel_for(0, chunks_for(M), [&](std::size_t c) {
      const std::size_t i0 = c * kRowBlock;
      nn_block(i0, std::min(M, i0 + kRowBlock), N, K, A, lda, B, ldb, C, ldc,
               accumulate);
    });
    return;
  }
  nn_block(0, M, N, K, A, lda, B, ldb, C, ldc, accumulate);
}

void gemm_tn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  if (M == 0 || N == 0) return;
  if (parallel && M * N * K >= kParallelMinWork && M > kRowBlock) {
    util::parallel_for(0, chunks_for(M), [&](std::size_t c) {
      const std::size_t i0 = c * kRowBlock;
      tn_block(i0, std::min(M, i0 + kRowBlock), N, K, A, lda, B, ldb, C, ldc,
               accumulate);
    });
    return;
  }
  tn_block(0, M, N, K, A, lda, B, ldb, C, ldc, accumulate);
}

void gemm_nt(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  if (M == 0 || N == 0) return;
  if (parallel && M * N * K >= kParallelMinWork && N > kRowBlock) {
    util::parallel_for(0, chunks_for(N), [&](std::size_t c) {
      const std::size_t j0 = c * kRowBlock;
      nt_block(j0, std::min(N, j0 + kRowBlock), M, K, A, lda, B, ldb, C, ldc,
               accumulate);
    });
    return;
  }
  nt_block(0, N, M, K, A, lda, B, ldb, C, ldc, accumulate);
}

void im2col(const PackShape& s, const float* in, float* col) {
  const std::size_t cols = s.cols();
  for (std::size_t c = 0; c < s.channels; ++c) {
    const float* in_c = in + c * s.H * s.W;
    for (std::size_t kh = 0; kh < s.K; ++kh) {
      for (std::size_t kw = 0; kw < s.K; ++kw) {
        float* dst = col + ((c * s.K + kh) * s.K + kw) * cols;
        for (std::size_t oh = 0; oh < s.OH; ++oh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * s.stride + kh) -
              static_cast<std::ptrdiff_t>(s.pad);
          float* dst_row = dst + oh * s.OW;
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(s.H)) {
            std::memset(dst_row, 0, s.OW * sizeof(float));
            continue;
          }
          const float* in_row =
              in_c + static_cast<std::size_t>(ih) * s.W;
          for (std::size_t ow = 0; ow < s.OW; ++ow) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * s.stride + kw) -
                static_cast<std::ptrdiff_t>(s.pad);
            dst_row[ow] =
                (iw < 0 || iw >= static_cast<std::ptrdiff_t>(s.W))
                    ? 0.0f
                    : in_row[static_cast<std::size_t>(iw)];
          }
        }
      }
    }
  }
}

void im2row(const PackShape& s, const float* in, float* row) {
  const std::size_t patch = s.patch();
  for (std::size_t oh = 0; oh < s.OH; ++oh) {
    for (std::size_t ow = 0; ow < s.OW; ++ow) {
      float* dst = row + (oh * s.OW + ow) * patch;
      for (std::size_t c = 0; c < s.channels; ++c) {
        const float* in_c = in + c * s.H * s.W;
        for (std::size_t kh = 0; kh < s.K; ++kh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * s.stride + kh) -
              static_cast<std::ptrdiff_t>(s.pad);
          float* d = dst + (c * s.K + kh) * s.K;
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(s.H)) {
            std::memset(d, 0, s.K * sizeof(float));
            continue;
          }
          const float* in_row = in_c + static_cast<std::size_t>(ih) * s.W;
          for (std::size_t kw = 0; kw < s.K; ++kw) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * s.stride + kw) -
                static_cast<std::ptrdiff_t>(s.pad);
            d[kw] = (iw < 0 || iw >= static_cast<std::ptrdiff_t>(s.W))
                        ? 0.0f
                        : in_row[static_cast<std::size_t>(iw)];
          }
        }
      }
    }
  }
}

void row2im_add(const PackShape& s, const float* row, float* in_grad) {
  const std::size_t patch = s.patch();
  for (std::size_t oh = 0; oh < s.OH; ++oh) {
    for (std::size_t ow = 0; ow < s.OW; ++ow) {
      const float* src = row + (oh * s.OW + ow) * patch;
      for (std::size_t c = 0; c < s.channels; ++c) {
        float* in_c = in_grad + c * s.H * s.W;
        for (std::size_t kh = 0; kh < s.K; ++kh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * s.stride + kh) -
              static_cast<std::ptrdiff_t>(s.pad);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(s.H)) continue;
          const float* sr = src + (c * s.K + kh) * s.K;
          float* in_row = in_c + static_cast<std::size_t>(ih) * s.W;
          for (std::size_t kw = 0; kw < s.K; ++kw) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * s.stride + kw) -
                static_cast<std::ptrdiff_t>(s.pad);
            if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(s.W)) continue;
            in_row[static_cast<std::size_t>(iw)] += sr[kw];
          }
        }
      }
    }
  }
}

}  // namespace ls::nn::gemm
