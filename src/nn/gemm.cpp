#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "check/check.hpp"
#include "util/parallel.hpp"

namespace ls::nn::gemm {

namespace {

// Blocking constants. IB (rows per parallel chunk) is part of the
// determinism contract only in that it is a compile-time constant: chunk
// boundaries never depend on the thread count. KC groups the k reduction
// for cache reuse; because k blocks are visited in ascending order the
// per-element accumulation order is fixed.
constexpr std::size_t kRowBlock = 16;   // IB: C rows per parallel chunk
constexpr std::size_t kColBlock = 512;  // NC: C columns per cache block
constexpr std::size_t kRedBlock = 128;  // KC: k elements per cache block

// Work below this many MACs is not worth a pool dispatch.
constexpr std::size_t kParallelMinWork = 1 << 14;

std::size_t chunks_for(std::size_t rows) {
  return (rows + kRowBlock - 1) / kRowBlock;
}

void nn_block(std::size_t i0, std::size_t i1, std::size_t N, std::size_t K,
              const float* A, std::size_t lda, const float* B,
              std::size_t ldb, float* C, std::size_t ldc, bool accumulate) {
  for (std::size_t jj = 0; jj < N; jj += kColBlock) {
    const std::size_t jend = std::min(N, jj + kColBlock);
    if (!accumulate) {
      for (std::size_t i = i0; i < i1; ++i) {
        std::memset(C + i * ldc + jj, 0, (jend - jj) * sizeof(float));
      }
    }
    for (std::size_t kk = 0; kk < K; kk += kRedBlock) {
      const std::size_t kend = std::min(K, kk + kRedBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* a_row = A + i * lda;
        float* c_row = C + i * ldc;
        std::size_t k = kk;
        for (; k + 4 <= kend; k += 4) {
          const float a0 = a_row[k], a1 = a_row[k + 1];
          const float a2 = a_row[k + 2], a3 = a_row[k + 3];
          const float* b0 = B + k * ldb;
          const float* b1 = b0 + ldb;
          const float* b2 = b1 + ldb;
          const float* b3 = b2 + ldb;
          for (std::size_t j = jj; j < jend; ++j) {
            c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; k < kend; ++k) {
          const float a = a_row[k];
          const float* b = B + k * ldb;
          for (std::size_t j = jj; j < jend; ++j) c_row[j] += a * b[j];
        }
      }
    }
  }
}

void tn_block(std::size_t i0, std::size_t i1, std::size_t N, std::size_t K,
              const float* A, std::size_t lda, const float* B,
              std::size_t ldb, float* C, std::size_t ldc, bool accumulate) {
  if (!accumulate) {
    for (std::size_t i = i0; i < i1; ++i) {
      std::memset(C + i * ldc, 0, N * sizeof(float));
    }
  }
  // k outermost keeps the per-element reduction in ascending k order; the
  // C chunk (<= kRowBlock rows) stays cache-resident across k.
  for (std::size_t k = 0; k < K; ++k) {
    const float* a_col = A + k * lda;
    const float* b_row = B + k * ldb;
    for (std::size_t i = i0; i < i1; ++i) {
      const float a = a_col[i];
      float* c_row = C + i * ldc;
      for (std::size_t j = 0; j < N; ++j) c_row[j] += a * b_row[j];
    }
  }
}

// Checked-build probe at every sparse entry point: the mask's panel bounds
// must be monotonic and span exactly the reduction/output extents the call
// is using — a mismatched mask silently skips (or double-counts) k spans.
void check_mask_extents(const BlockMask& mask, std::size_t red_extent,
                        std::size_t out_extent) {
  LS_CHECK(mask.parts > 0);
  LS_CHECK_MSG(mask.k_bounds[mask.parts] == red_extent,
               "block mask k extent %zu != gemm reduction extent %zu",
               mask.k_bounds[mask.parts], red_extent);
  LS_CHECK_MSG(mask.out_bounds[mask.parts] == out_extent,
               "block mask out extent %zu != gemm output extent %zu",
               mask.out_bounds[mask.parts], out_extent);
  for (std::size_t p = 0; p < mask.parts; ++p) {
    LS_CHECK_MSG(mask.k_bounds[p] <= mask.k_bounds[p + 1] &&
                     mask.out_bounds[p] <= mask.out_bounds[p + 1],
                 "block mask bounds not monotonic at panel %zu", p);
  }
}

// --- Block-sparse helpers --------------------------------------------------
//
// live4[c * n_groups + m] != 0 iff the absolute 4-aligned k group
// [4m, 4m+4) intersects a producer panel p that is live for consumer c.
// Groups wholly inside pruned panels are skipped by the sparse kernels;
// straddling groups are computed in full — their pruned members are exact
// zeros in memory, so the unroll expression matches the dense kernel's.
std::size_t groups_of(std::size_t K) { return (K + 3) / 4; }

std::vector<std::uint8_t> build_group_live(const BlockMask& mask,
                                           std::size_t K) {
  const std::size_t n_groups = groups_of(K);
  std::vector<std::uint8_t> live(mask.parts * n_groups, 0);
  for (std::size_t c = 0; c < mask.parts; ++c) {
    std::uint8_t* row = live.data() + c * n_groups;
    for (std::size_t p = 0; p < mask.parts; ++p) {
      if (mask.zero[p * mask.parts + c]) continue;
      const std::size_t lo = mask.k_bounds[p], hi = mask.k_bounds[p + 1];
      if (lo >= hi) continue;
      for (std::size_t m = lo / 4; m <= (hi - 1) / 4; ++m) row[m] = 1;
    }
  }
  return live;
}

// Expands consumer panel bounds into a per-index consumer id.
std::vector<std::uint32_t> expand_consumers(const std::size_t* bounds,
                                            std::size_t parts,
                                            std::size_t n) {
  std::vector<std::uint32_t> owner(n, 0);
  for (std::size_t c = 0; c < parts; ++c) {
    for (std::size_t i = bounds[c]; i < bounds[c + 1] && i < n; ++i) {
      owner[i] = static_cast<std::uint32_t>(c);
    }
  }
  return owner;
}

// Merged live [begin, end) column intervals per consumer, for the tn
// variant (flat accumulation — no alignment needed).
struct LiveIntervals {
  std::vector<std::size_t> offsets;  ///< parts + 1 into spans
  std::vector<std::size_t> spans;    ///< begin/end pairs
};

LiveIntervals build_live_intervals(const BlockMask& mask) {
  LiveIntervals li;
  li.offsets.assign(mask.parts + 1, 0);
  for (std::size_t c = 0; c < mask.parts; ++c) {
    li.offsets[c] = li.spans.size();
    for (std::size_t p = 0; p < mask.parts; ++p) {
      if (mask.zero[p * mask.parts + c]) continue;
      const std::size_t lo = mask.k_bounds[p], hi = mask.k_bounds[p + 1];
      if (lo >= hi) continue;
      if (!li.spans.empty() && li.spans.size() > li.offsets[c] &&
          li.spans[li.spans.size() - 1] == lo) {
        li.spans[li.spans.size() - 1] = hi;  // merge contiguous panels
      } else {
        li.spans.push_back(lo);
        li.spans.push_back(hi);
      }
    }
  }
  li.offsets[mask.parts] = li.spans.size();
  return li;
}

void nn_block_sparse(std::size_t i0, std::size_t i1, std::size_t N,
                     std::size_t K, const float* A, std::size_t lda,
                     const float* B, std::size_t ldb, float* C,
                     std::size_t ldc, bool accumulate,
                     const std::uint32_t* row_consumer,
                     const std::uint8_t* live4, std::size_t n_groups) {
  for (std::size_t jj = 0; jj < N; jj += kColBlock) {
    const std::size_t jend = std::min(N, jj + kColBlock);
    if (!accumulate) {
      for (std::size_t i = i0; i < i1; ++i) {
        std::memset(C + i * ldc + jj, 0, (jend - jj) * sizeof(float));
      }
    }
    for (std::size_t kk = 0; kk < K; kk += kRedBlock) {
      const std::size_t kend = std::min(K, kk + kRedBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* a_row = A + i * lda;
        float* c_row = C + i * ldc;
        const std::uint8_t* live = live4 + row_consumer[i] * n_groups;
        std::size_t k = kk;
        for (; k + 4 <= kend; k += 4) {
          if (!live[k >> 2]) continue;
          const float a0 = a_row[k], a1 = a_row[k + 1];
          const float a2 = a_row[k + 2], a3 = a_row[k + 3];
          const float* b0 = B + k * ldb;
          const float* b1 = b0 + ldb;
          const float* b2 = b1 + ldb;
          const float* b3 = b2 + ldb;
          for (std::size_t j = jj; j < jend; ++j) {
            c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; k < kend; ++k) {
          if (!live[k >> 2]) continue;
          const float a = a_row[k];
          const float* b = B + k * ldb;
          for (std::size_t j = jj; j < jend; ++j) c_row[j] += a * b[j];
        }
      }
    }
  }
}

// Merged runs of consecutive live 4-aligned k groups per consumer, so the
// nt inner reduction iterates contiguous spans (vectorizable) instead of
// branching on liveness per group of 4.
struct LiveGroupRuns {
  std::vector<std::size_t> offsets;  ///< parts + 1 into runs
  std::vector<std::size_t> runs;     ///< begin/end group-index pairs
};

LiveGroupRuns build_live_group_runs(const std::uint8_t* live4,
                                    std::size_t parts, std::size_t n_groups) {
  LiveGroupRuns r;
  r.offsets.assign(parts + 1, 0);
  for (std::size_t c = 0; c < parts; ++c) {
    r.offsets[c] = r.runs.size();
    const std::uint8_t* row = live4 + c * n_groups;
    std::size_t g = 0;
    while (g < n_groups) {
      if (!row[g]) {
        ++g;
        continue;
      }
      std::size_t e = g;
      while (e < n_groups && row[e]) ++e;
      r.runs.push_back(g);
      r.runs.push_back(e);
      g = e;
    }
  }
  r.offsets[parts] = r.runs.size();
  return r;
}

void nt_block_sparse(std::size_t j0, std::size_t j1, std::size_t M,
                     std::size_t K, const float* A, std::size_t lda,
                     const float* B, std::size_t ldb, float* C,
                     std::size_t ldc, bool accumulate,
                     const std::uint32_t* col_consumer,
                     const LiveGroupRuns& lr) {
  for (std::size_t i = 0; i < M; ++i) {
    const float* a_row = A + i * lda;
    float* c_row = C + i * ldc;
    for (std::size_t j = j0; j < j1; ++j) {
      const float* b_row = B + j * ldb;
      const std::size_t c = col_consumer[j];
      const std::size_t s0 = lr.offsets[c], s1 = lr.offsets[c + 1];
      // Ascending live runs with the dense kernel's accumulator structure:
      // acc0..3 over whole 4-aligned groups, `tail` over the final partial
      // group. Skipped groups added exact zeros in the dense kernel, so
      // the result is bit-identical.
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      float tail = 0.0f;
      for (std::size_t s = s0; s < s1; s += 2) {
        const std::size_t kb = lr.runs[s] * 4;
        const std::size_t klim = std::min(K, lr.runs[s + 1] * 4);
        // Counted loop over whole groups with run-base pointers: gcc emits
        // the same SIMD reduction as the dense kernel; the open-coded
        // `k + 4 <= klim` form stays scalar.
        const std::size_t n_full = (klim - kb) / 4;
        const float* ap = a_row + kb;
        const float* bp = b_row + kb;
        for (std::size_t m = 0; m < n_full; ++m) {
          acc0 += ap[4 * m] * bp[4 * m];
          acc1 += ap[4 * m + 1] * bp[4 * m + 1];
          acc2 += ap[4 * m + 2] * bp[4 * m + 2];
          acc3 += ap[4 * m + 3] * bp[4 * m + 3];
        }
        for (std::size_t k = kb + 4 * n_full; k < klim; ++k) {
          tail += a_row[k] * b_row[k];
        }
      }
      const float sum = ((acc0 + acc1) + (acc2 + acc3)) + tail;
      c_row[j] = accumulate ? c_row[j] + sum : sum;
    }
  }
}

void tn_block_sparse(std::size_t i0, std::size_t i1, std::size_t N,
                     std::size_t K, const float* A, std::size_t lda,
                     const float* B, std::size_t ldb, float* C,
                     std::size_t ldc, bool accumulate,
                     const std::uint32_t* k_consumer,
                     const LiveIntervals& li) {
  if (!accumulate) {
    for (std::size_t i = i0; i < i1; ++i) {
      std::memset(C + i * ldc, 0, N * sizeof(float));
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    const float* a_col = A + k * lda;
    const float* b_row = B + k * ldb;
    const std::size_t c = k_consumer[k];
    const std::size_t s0 = li.offsets[c], s1 = li.offsets[c + 1];
    if (s0 == s1) continue;  // every producer pruned for this consumer
    for (std::size_t i = i0; i < i1; ++i) {
      const float a = a_col[i];
      float* c_row = C + i * ldc;
      for (std::size_t s = s0; s < s1; s += 2) {
        const std::size_t jb = li.spans[s], je = li.spans[s + 1];
        for (std::size_t j = jb; j < je; ++j) c_row[j] += a * b_row[j];
      }
    }
  }
}

void nt_block(std::size_t j0, std::size_t j1, std::size_t M, std::size_t K,
              const float* A, std::size_t lda, const float* B,
              std::size_t ldb, float* C, std::size_t ldc, bool accumulate) {
  for (std::size_t i = 0; i < M; ++i) {
    const float* a_row = A + i * lda;
    float* c_row = C + i * ldc;
    for (std::size_t j = j0; j < j1; ++j) {
      const float* b_row = B + j * ldb;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      std::size_t k = 0;
      for (; k + 4 <= K; k += 4) {
        acc0 += a_row[k] * b_row[k];
        acc1 += a_row[k + 1] * b_row[k + 1];
        acc2 += a_row[k + 2] * b_row[k + 2];
        acc3 += a_row[k + 3] * b_row[k + 3];
      }
      float tail = 0.0f;
      for (; k < K; ++k) tail += a_row[k] * b_row[k];
      const float sum = ((acc0 + acc1) + (acc2 + acc3)) + tail;
      c_row[j] = accumulate ? c_row[j] + sum : sum;
    }
  }
}

}  // namespace

void gemm_nn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  if (M == 0 || N == 0) return;
  if (parallel && M * N * K >= kParallelMinWork && M > kRowBlock) {
    util::parallel_for(0, chunks_for(M), [&](std::size_t c) {
      const std::size_t i0 = c * kRowBlock;
      nn_block(i0, std::min(M, i0 + kRowBlock), N, K, A, lda, B, ldb, C, ldc,
               accumulate);
    });
    return;
  }
  nn_block(0, M, N, K, A, lda, B, ldb, C, ldc, accumulate);
}

void gemm_tn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  if (M == 0 || N == 0) return;
  if (parallel && M * N * K >= kParallelMinWork && M > kRowBlock) {
    util::parallel_for(0, chunks_for(M), [&](std::size_t c) {
      const std::size_t i0 = c * kRowBlock;
      tn_block(i0, std::min(M, i0 + kRowBlock), N, K, A, lda, B, ldb, C, ldc,
               accumulate);
    });
    return;
  }
  tn_block(0, M, N, K, A, lda, B, ldb, C, ldc, accumulate);
}

void gemm_nt(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel) {
  if (M == 0 || N == 0) return;
  if (parallel && M * N * K >= kParallelMinWork && N > kRowBlock) {
    util::parallel_for(0, chunks_for(N), [&](std::size_t c) {
      const std::size_t j0 = c * kRowBlock;
      nt_block(j0, std::min(N, j0 + kRowBlock), M, K, A, lda, B, ldb, C, ldc,
               accumulate);
    });
    return;
  }
  nt_block(0, N, M, K, A, lda, B, ldb, C, ldc, accumulate);
}

void gemm_nn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel, const BlockMask& mask) {
  if (M == 0 || N == 0) return;
  if constexpr (check::kEnabled) check_mask_extents(mask, K, M);
  const auto row_consumer = expand_consumers(mask.out_bounds, mask.parts, M);
  const auto live4 = build_group_live(mask, K);
  const std::size_t n_groups = groups_of(K);
  if (parallel && M * N * K >= kParallelMinWork && M > kRowBlock) {
    util::parallel_for(0, chunks_for(M), [&](std::size_t c) {
      const std::size_t i0 = c * kRowBlock;
      nn_block_sparse(i0, std::min(M, i0 + kRowBlock), N, K, A, lda, B, ldb,
                      C, ldc, accumulate, row_consumer.data(), live4.data(),
                      n_groups);
    });
    return;
  }
  nn_block_sparse(0, M, N, K, A, lda, B, ldb, C, ldc, accumulate,
                  row_consumer.data(), live4.data(), n_groups);
}

void gemm_nt_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel, const BlockMask& mask) {
  if (M == 0 || N == 0) return;
  if constexpr (check::kEnabled) check_mask_extents(mask, K, N);
  const auto col_consumer = expand_consumers(mask.out_bounds, mask.parts, N);
  const auto live4 = build_group_live(mask, K);
  const auto runs =
      build_live_group_runs(live4.data(), mask.parts, groups_of(K));
  if (parallel && M * N * K >= kParallelMinWork && N > kRowBlock) {
    util::parallel_for(0, chunks_for(N), [&](std::size_t c) {
      const std::size_t j0 = c * kRowBlock;
      nt_block_sparse(j0, std::min(N, j0 + kRowBlock), M, K, A, lda, B, ldb,
                      C, ldc, accumulate, col_consumer.data(), runs);
    });
    return;
  }
  nt_block_sparse(0, N, M, K, A, lda, B, ldb, C, ldc, accumulate,
                  col_consumer.data(), runs);
}

void gemm_tn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel, const BlockMask& mask) {
  if (M == 0 || N == 0) return;
  if constexpr (check::kEnabled) check_mask_extents(mask, N, K);
  const auto k_consumer = expand_consumers(mask.out_bounds, mask.parts, K);
  const auto li = build_live_intervals(mask);
  if (parallel && M * N * K >= kParallelMinWork && M > kRowBlock) {
    util::parallel_for(0, chunks_for(M), [&](std::size_t c) {
      const std::size_t i0 = c * kRowBlock;
      tn_block_sparse(i0, std::min(M, i0 + kRowBlock), N, K, A, lda, B, ldb,
                      C, ldc, accumulate, k_consumer.data(), li);
    });
    return;
  }
  tn_block_sparse(0, M, N, K, A, lda, B, ldb, C, ldc, accumulate,
                  k_consumer.data(), li);
}

namespace {

void pack_channel(const PackShape& s, const float* in_c, float* col,
                  std::size_t c) {
  const std::size_t cols = s.cols();
  for (std::size_t kh = 0; kh < s.K; ++kh) {
    for (std::size_t kw = 0; kw < s.K; ++kw) {
      float* dst = col + ((c * s.K + kh) * s.K + kw) * cols;
      for (std::size_t oh = 0; oh < s.OH; ++oh) {
        const std::ptrdiff_t ih =
            static_cast<std::ptrdiff_t>(oh * s.stride + kh) -
            static_cast<std::ptrdiff_t>(s.pad);
        float* dst_row = dst + oh * s.OW;
        if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(s.H)) {
          std::memset(dst_row, 0, s.OW * sizeof(float));
          continue;
        }
        const float* in_row = in_c + static_cast<std::size_t>(ih) * s.W;
        for (std::size_t ow = 0; ow < s.OW; ++ow) {
          const std::ptrdiff_t iw =
              static_cast<std::ptrdiff_t>(ow * s.stride + kw) -
              static_cast<std::ptrdiff_t>(s.pad);
          dst_row[ow] = (iw < 0 || iw >= static_cast<std::ptrdiff_t>(s.W))
                            ? 0.0f
                            : in_row[static_cast<std::size_t>(iw)];
        }
      }
    }
  }
}

}  // namespace

void im2col(const PackShape& s, const float* in, float* col) {
  for (std::size_t c = 0; c < s.channels; ++c) {
    pack_channel(s, in + c * s.H * s.W, col, c);
  }
}

void im2col_masked(const PackShape& s, const float* in, float* col,
                   const std::uint8_t* channel_skip) {
  const std::size_t cols = s.cols();
  const std::size_t k2 = s.K * s.K;
  std::size_t c = 0;
  while (c < s.channels) {
    if (!channel_skip[c]) {
      pack_channel(s, in + c * s.H * s.W, col, c);
      ++c;
      continue;
    }
    std::size_t b = c + 1;
    while (b < s.channels && channel_skip[b]) ++b;
    // Maximal skipped run [c, b) covers col rows [r0, r1). The sparse GEMM
    // only skips whole absolute 4-aligned unroll groups; a group straddling
    // the run boundary (and the K%4 tail) still reads rows inside the run,
    // so zero-fill those boundary rows. Interior rows stay garbage — no
    // live group can reach them.
    const std::size_t r0 = c * k2, r1 = b * k2;
    const std::size_t up = std::min(r1, (r0 + 3) & ~std::size_t{3});
    const std::size_t down = std::max(up, r1 & ~std::size_t{3});
    for (std::size_t r = r0; r < up; ++r) {
      std::memset(col + r * cols, 0, cols * sizeof(float));
    }
    for (std::size_t r = down; r < r1; ++r) {
      std::memset(col + r * cols, 0, cols * sizeof(float));
    }
    c = b;
  }
}

void im2row(const PackShape& s, const float* in, float* row) {
  const std::size_t patch = s.patch();
  for (std::size_t oh = 0; oh < s.OH; ++oh) {
    for (std::size_t ow = 0; ow < s.OW; ++ow) {
      float* dst = row + (oh * s.OW + ow) * patch;
      for (std::size_t c = 0; c < s.channels; ++c) {
        const float* in_c = in + c * s.H * s.W;
        for (std::size_t kh = 0; kh < s.K; ++kh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * s.stride + kh) -
              static_cast<std::ptrdiff_t>(s.pad);
          float* d = dst + (c * s.K + kh) * s.K;
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(s.H)) {
            std::memset(d, 0, s.K * sizeof(float));
            continue;
          }
          const float* in_row = in_c + static_cast<std::size_t>(ih) * s.W;
          for (std::size_t kw = 0; kw < s.K; ++kw) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * s.stride + kw) -
                static_cast<std::ptrdiff_t>(s.pad);
            d[kw] = (iw < 0 || iw >= static_cast<std::ptrdiff_t>(s.W))
                        ? 0.0f
                        : in_row[static_cast<std::size_t>(iw)];
          }
        }
      }
    }
  }
}

void row2im_add(const PackShape& s, const float* row, float* in_grad) {
  const std::size_t patch = s.patch();
  for (std::size_t oh = 0; oh < s.OH; ++oh) {
    for (std::size_t ow = 0; ow < s.OW; ++ow) {
      const float* src = row + (oh * s.OW + ow) * patch;
      for (std::size_t c = 0; c < s.channels; ++c) {
        float* in_c = in_grad + c * s.H * s.W;
        for (std::size_t kh = 0; kh < s.K; ++kh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * s.stride + kh) -
              static_cast<std::ptrdiff_t>(s.pad);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(s.H)) continue;
          const float* sr = src + (c * s.K + kh) * s.K;
          float* in_row = in_c + static_cast<std::size_t>(ih) * s.W;
          for (std::size_t kw = 0; kw < s.K; ++kw) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * s.stride + kw) -
                static_cast<std::ptrdiff_t>(s.pad);
            if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(s.W)) continue;
            in_row[static_cast<std::size_t>(iw)] += sr[kw];
          }
        }
      }
    }
  }
}

}  // namespace ls::nn::gemm
