#include "nn/conv2d.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "nn/block_sparsity.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_simd.hpp"
#include "nn/scratch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace ls::nn {

namespace {

// Kernel-span args: {"impl":...,"N":batch} — rendered only when tracing.
std::string conv_span_args(const char* impl, std::size_t batch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"impl\":\"%s\",\"N\":%zu}", impl, batch);
  return buf;
}
Shape weight_shape(const Conv2DConfig& cfg) {
  return Shape{cfg.out_channels, cfg.in_channels / cfg.groups, cfg.kernel,
               cfg.kernel};
}

void validate(const Conv2DConfig& cfg) {
  if (cfg.in_channels == 0 || cfg.out_channels == 0 || cfg.kernel == 0 ||
      cfg.stride == 0) {
    throw std::invalid_argument("conv2d: zero-sized config field");
  }
  if (cfg.groups == 0 || cfg.in_channels % cfg.groups != 0 ||
      cfg.out_channels % cfg.groups != 0) {
    throw std::invalid_argument(
        "conv2d: groups must divide in_channels and out_channels");
  }
}

ConvImpl env_default_impl() {
  static const ConvImpl impl = [] {
    if (const char* env = std::getenv("LS_CONV_IMPL")) {
      if (std::strcmp(env, "naive") == 0) return ConvImpl::kNaive;
      if (std::strcmp(env, "simd") == 0 && simd::vectorized()) {
        return ConvImpl::kSimd;
      }
    }
    return ConvImpl::kGemm;
  }();
  return impl;
}
}  // namespace

Conv2D::Conv2D(std::string name, const Conv2DConfig& cfg, util::Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(name_ + ".w",
              (validate(cfg),
               Tensor::he_normal(weight_shape(cfg),
                                 cfg.in_channels / cfg.groups * cfg.kernel *
                                     cfg.kernel,
                                 rng))),
      bias_(name_ + ".b", Tensor::zeros(Shape{cfg.out_channels})) {}

Conv2D::~Conv2D() = default;

ConvImpl Conv2D::resolved_impl() const {
  return cfg_.impl == ConvImpl::kAuto ? env_default_impl() : cfg_.impl;
}

void Conv2D::set_sparsity_partition(std::size_t parts) {
  if (cfg_.groups != 1) {
    throw std::invalid_argument(
        "block sparsity requires groups == 1 at " + name_);
  }
  sparsity_ = std::make_unique<BlockSparsity>(
      parts, cfg_.in_channels, cfg_.out_channels,
      cfg_.kernel * cfg_.kernel);
}

void Conv2D::clear_sparsity_partition() { sparsity_.reset(); }

const BlockMap* Conv2D::sparse_map() {
  if (!sparsity_ || cfg_.groups != 1 || !sparse_runtime_enabled()) {
    return nullptr;
  }
  const BlockMap& m = sparsity_->map(weight_);
  return m.engaged() ? &m : nullptr;
}

Shape Conv2D::output_shape(const Shape& in) const {
  if (in.rank() != 4) throw std::invalid_argument("conv2d expects NCHW input");
  if (in[1] != cfg_.in_channels) {
    throw std::invalid_argument("conv2d input channel mismatch for " + name_);
  }
  const std::size_t H = in[2], W = in[3];
  if (H + 2 * cfg_.pad < cfg_.kernel || W + 2 * cfg_.pad < cfg_.kernel) {
    throw std::invalid_argument("conv2d kernel larger than padded input");
  }
  const std::size_t oh = (H + 2 * cfg_.pad - cfg_.kernel) / cfg_.stride + 1;
  const std::size_t ow = (W + 2 * cfg_.pad - cfg_.kernel) / cfg_.stride + 1;
  return Shape{in[0], cfg_.out_channels, oh, ow};
}

Tensor Conv2D::forward(const Tensor& in, bool training) {
  return resolved_impl() == ConvImpl::kNaive ? naive_forward(in, training)
                                             : gemm_forward(in, training);
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  return resolved_impl() == ConvImpl::kNaive ? naive_backward(grad_out)
                                             : gemm_backward(grad_out);
}

// ---------------------------------------------------------------------------
// im2col + GEMM fast path.
//
// Forward parallelizes over (sample, group) tasks; each task packs its
// group's input window into a thread-local im2col buffer and runs one
// row-parallel GEMM (the GEMM's internal parallel_for runs inline when the
// outer loop already fans out — see util::ThreadPool). Backward keeps the
// sample loop serial so weight-gradient accumulation has a fixed order,
// and parallelizes the two GEMMs inside each sample over rows instead.
// ---------------------------------------------------------------------------

Tensor Conv2D::gemm_forward(const Tensor& in, bool training) {
  const bool use_simd = resolved_impl() == ConvImpl::kSimd;
  obs::Span span;
  if (obs::trace_enabled()) {
    span.begin(name_ + ".fwd", "kernel",
               conv_span_args(use_simd ? "im2col+simd" : "im2col+gemm",
                              in.shape()[0]));
  }
  const Shape out_shape = output_shape(in.shape());
  Tensor out(out_shape);
  const std::size_t N = in.shape()[0];
  const std::size_t C = cfg_.in_channels;
  const std::size_t H = in.shape()[2], W = in.shape()[3];
  const std::size_t OC = cfg_.out_channels;
  const std::size_t cin_g = C / cfg_.groups;
  const std::size_t cout_g = OC / cfg_.groups;

  gemm::PackShape ps;
  ps.channels = cin_g;
  ps.H = H;
  ps.W = W;
  ps.OH = out_shape[2];
  ps.OW = out_shape[3];
  ps.K = cfg_.kernel;
  ps.stride = cfg_.stride;
  ps.pad = cfg_.pad;
  const std::size_t ck2 = ps.patch();
  const std::size_t ohw = ps.cols();

  const float* in_base = in.data();
  const float* w_base = weight_.value.data();
  float* out_base = out.data();

  // Resolve the block-zero bitmap once, outside the fan-out (the rescan is
  // not thread-safe). Null when unarmed, disabled, or nothing is pruned.
  const BlockMap* bm = sparse_map();
  if (bm != nullptr) {
    static auto& blocks_skipped =
        obs::Registry::instance().counter("sparse.blocks_skipped");
    static auto& macs_skipped =
        obs::Registry::instance().counter("sparse.macs_skipped");
    blocks_skipped.inc(bm->zero_blocks * N);
    macs_skipped.inc(bm->zero_weight_elems * ohw * N);
    obs::Registry::instance()
        .gauge("sparse.layer." + name_ + ".block_density")
        .set(bm->block_density());
  }

  util::parallel_for(0, N * cfg_.groups, [&](std::size_t t) {
    const std::size_t n = t / cfg_.groups;
    const std::size_t g = t % cfg_.groups;
    float* col = scratch::buffer(scratch::Slot::kIm2col, ck2 * ohw);
    const float* in_g = in_base + (n * C + g * cin_g) * H * W;
    if (bm != nullptr) {
      gemm::im2col_masked(ps, in_g, col, bm->channel_skip.data());
    } else {
      gemm::im2col(ps, in_g, col);
    }
    float* out_g = out_base + (n * OC + g * cout_g) * ohw;
    for (std::size_t ocg = 0; ocg < cout_g; ++ocg) {
      const float b = cfg_.bias ? bias_.value[g * cout_g + ocg] : 0.0f;
      std::fill(out_g + ocg * ohw, out_g + (ocg + 1) * ohw, b);
    }
    if (bm != nullptr) {
      if (use_simd) {
        simd::gemm_nn_sparse(cout_g, ohw, ck2, w_base + g * cout_g * ck2, ck2,
                             col, ohw, out_g, ohw, /*accumulate=*/true,
                             /*parallel=*/true, bm->mask());
      } else {
        gemm::gemm_nn_sparse(cout_g, ohw, ck2, w_base + g * cout_g * ck2, ck2,
                             col, ohw, out_g, ohw, /*accumulate=*/true,
                             /*parallel=*/true, bm->mask());
      }
    } else if (use_simd) {
      simd::gemm_nn(cout_g, ohw, ck2, w_base + g * cout_g * ck2, ck2, col,
                    ohw, out_g, ohw, /*accumulate=*/true, /*parallel=*/true);
    } else {
      gemm::gemm_nn(cout_g, ohw, ck2, w_base + g * cout_g * ck2, ck2, col,
                    ohw, out_g, ohw, /*accumulate=*/true, /*parallel=*/true);
    }
  });

  if (training) cached_input_ = in;
  return out;
}

Tensor Conv2D::gemm_backward(const Tensor& grad_out) {
  const bool use_simd = resolved_impl() == ConvImpl::kSimd;
  obs::Span span;
  if (obs::trace_enabled()) {
    span.begin(name_ + ".bwd", "kernel",
               conv_span_args(use_simd ? "im2col+simd" : "im2col+gemm",
                              grad_out.shape()[0]));
  }
  if (cached_input_.empty()) {
    throw std::logic_error("conv2d backward without training forward");
  }
  const Tensor& in = cached_input_;
  Tensor grad_in(in.shape(), 0.0f);
  const Shape out_shape = grad_out.shape();
  const std::size_t N = in.shape()[0];
  const std::size_t C = cfg_.in_channels;
  const std::size_t H = in.shape()[2], W = in.shape()[3];
  const std::size_t OC = cfg_.out_channels;
  const std::size_t cin_g = C / cfg_.groups;
  const std::size_t cout_g = OC / cfg_.groups;

  gemm::PackShape ps;
  ps.channels = cin_g;
  ps.H = H;
  ps.W = W;
  ps.OH = out_shape[2];
  ps.OW = out_shape[3];
  ps.K = cfg_.kernel;
  ps.stride = cfg_.stride;
  ps.pad = cfg_.pad;
  const std::size_t ck2 = ps.patch();
  const std::size_t ohw = ps.cols();

  const float* in_base = in.data();
  const float* go_base = grad_out.data();
  const float* w_base = weight_.value.data();
  float* wg_base = weight_.grad.data();
  float* gi_base = grad_in.data();

  // Arena instead of per-call vectors: the serial sample loop below runs on
  // this thread, so one warmup-sized buffer each serves every iteration (and
  // every later call at this shape) without reallocating.
  float* row = scratch::buffer(scratch::Slot::kIm2row, ohw * ck2);
  float* drow = scratch::buffer(scratch::Slot::kBwdDrow, ohw * ck2);

  // Block sparsity in backward only accelerates the data-gradient GEMM.
  // The weight-gradient GEMM must stay dense: group-Lasso training needs
  // gradients *into* currently-zero blocks so they can revive.
  const BlockMap* bm = sparse_map();

  // Serial over (sample, group) so every weight-gradient element
  // accumulates in a fixed order; the GEMMs inside parallelize over rows.
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t g = 0; g < cfg_.groups; ++g) {
      gemm::im2row(ps, in_base + (n * C + g * cin_g) * H * W, row);
      const float* go_g = go_base + (n * OC + g * cout_g) * ohw;

      // dW_g += dOut_g (cout_g x ohw) * row (ohw x ck2)
      if (use_simd) {
        simd::gemm_nn(cout_g, ck2, ohw, go_g, ohw, row, ck2,
                      wg_base + g * cout_g * ck2, ck2, /*accumulate=*/true,
                      /*parallel=*/true);
      } else {
        gemm::gemm_nn(cout_g, ck2, ohw, go_g, ohw, row, ck2,
                      wg_base + g * cout_g * ck2, ck2, /*accumulate=*/true,
                      /*parallel=*/true);
      }

      if (cfg_.bias) {
        for (std::size_t ocg = 0; ocg < cout_g; ++ocg) {
          const float* go_c = go_g + ocg * ohw;
          float acc = 0.0f;
          for (std::size_t s = 0; s < ohw; ++s) acc += go_c[s];
          bias_.grad[g * cout_g + ocg] += acc;
        }
      }

      // dRow (ohw x ck2) = dOut_g^T * W_g (cout_g x ck2). In the sparse
      // variant the reduction dim (cout) is the consumer partition and the
      // columns (ck2) are producer panels; pruned spans stay zero.
      if (bm != nullptr) {
        if (use_simd) {
          simd::gemm_tn_sparse(ohw, ck2, cout_g, go_g, ohw,
                               w_base + g * cout_g * ck2, ck2, drow, ck2,
                               /*accumulate=*/false, /*parallel=*/true,
                               bm->mask());
        } else {
          gemm::gemm_tn_sparse(ohw, ck2, cout_g, go_g, ohw,
                               w_base + g * cout_g * ck2, ck2, drow, ck2,
                               /*accumulate=*/false, /*parallel=*/true,
                               bm->mask());
        }
      } else if (use_simd) {
        simd::gemm_tn(ohw, ck2, cout_g, go_g, ohw, w_base + g * cout_g * ck2,
                      ck2, drow, ck2, /*accumulate=*/false,
                      /*parallel=*/true);
      } else {
        gemm::gemm_tn(ohw, ck2, cout_g, go_g, ohw, w_base + g * cout_g * ck2,
                      ck2, drow, ck2, /*accumulate=*/false,
                      /*parallel=*/true);
      }
      gemm::row2im_add(ps, drow, gi_base + (n * C + g * cin_g) * H * W);
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// Naive reference path (the original loop nest).
// ---------------------------------------------------------------------------

Tensor Conv2D::naive_forward(const Tensor& in, bool training) {
  obs::Span span;
  if (obs::trace_enabled()) {
    span.begin(name_ + ".fwd", "kernel",
               conv_span_args("naive", in.shape()[0]));
  }
  const Shape out_shape = output_shape(in.shape());
  Tensor out(out_shape);
  const std::size_t N = in.shape()[0];
  const std::size_t C = cfg_.in_channels;
  const std::size_t H = in.shape()[2], W = in.shape()[3];
  const std::size_t OC = cfg_.out_channels;
  const std::size_t OH = out_shape[2], OW = out_shape[3];
  const std::size_t K = cfg_.kernel;
  const std::size_t S = cfg_.stride, P = cfg_.pad;
  const std::size_t cin_g = C / cfg_.groups;
  const std::size_t cout_g = OC / cfg_.groups;

  const float* in_base = in.data();
  const float* w_base = weight_.value.data();
  float* out_base = out.data();

  for (std::size_t n = 0; n < N; ++n) {
    const float* in_n = in_base + n * C * H * W;
    float* out_n = out_base + n * OC * OH * OW;
    for (std::size_t g = 0; g < cfg_.groups; ++g) {
      for (std::size_t ocg = 0; ocg < cout_g; ++ocg) {
        const std::size_t oc = g * cout_g + ocg;
        const float b = cfg_.bias ? bias_.value[oc] : 0.0f;
        float* out_c = out_n + oc * OH * OW;
        const float* w_oc = w_base + oc * cin_g * K * K;
        for (std::size_t oh = 0; oh < OH; ++oh) {
          for (std::size_t ow = 0; ow < OW; ++ow) {
            float acc = b;
            const std::ptrdiff_t ih0 =
                static_cast<std::ptrdiff_t>(oh * S) -
                static_cast<std::ptrdiff_t>(P);
            const std::ptrdiff_t iw0 =
                static_cast<std::ptrdiff_t>(ow * S) -
                static_cast<std::ptrdiff_t>(P);
            const std::size_t kh_lo =
                ih0 < 0 ? static_cast<std::size_t>(-ih0) : 0;
            const std::size_t kh_hi = std::min(
                K, static_cast<std::size_t>(
                       std::max<std::ptrdiff_t>(
                           0, static_cast<std::ptrdiff_t>(H) - ih0)));
            const std::size_t kw_lo =
                iw0 < 0 ? static_cast<std::size_t>(-iw0) : 0;
            const std::size_t kw_hi = std::min(
                K, static_cast<std::size_t>(
                       std::max<std::ptrdiff_t>(
                           0, static_cast<std::ptrdiff_t>(W) - iw0)));
            const std::size_t kw_n = kw_hi > kw_lo ? kw_hi - kw_lo : 0;
            for (std::size_t icg = 0; icg < cin_g; ++icg) {
              const float* in_c = in_n + (g * cin_g + icg) * H * W;
              const float* w_ic = w_oc + icg * K * K;
              for (std::size_t kh = kh_lo; kh < kh_hi; ++kh) {
                const float* in_row =
                    in_c +
                    static_cast<std::size_t>(
                        ih0 + static_cast<std::ptrdiff_t>(kh)) *
                        W +
                    static_cast<std::size_t>(
                        iw0 + static_cast<std::ptrdiff_t>(kw_lo));
                const float* w_row = w_ic + kh * K + kw_lo;
                for (std::size_t kw = 0; kw < kw_n; ++kw) {
                  acc += in_row[kw] * w_row[kw];
                }
              }
            }
            out_c[oh * OW + ow] = acc;
          }
        }
      }
    }
  }
  if (training) cached_input_ = in;
  return out;
}

Tensor Conv2D::naive_backward(const Tensor& grad_out) {
  obs::Span span;
  if (obs::trace_enabled()) {
    span.begin(name_ + ".bwd", "kernel",
               conv_span_args("naive", grad_out.shape()[0]));
  }
  if (cached_input_.empty()) {
    throw std::logic_error("conv2d backward without training forward");
  }
  const Tensor& in = cached_input_;
  Tensor grad_in(in.shape(), 0.0f);
  const Shape out_shape = grad_out.shape();
  const std::size_t N = in.shape()[0];
  const std::size_t H = in.shape()[2], W = in.shape()[3];
  const std::size_t OH = out_shape[2], OW = out_shape[3];
  const std::size_t K = cfg_.kernel;
  const std::size_t cin_g = cfg_.in_channels / cfg_.groups;
  const std::size_t cout_g = cfg_.out_channels / cfg_.groups;

  const std::size_t C = cfg_.in_channels;
  const std::size_t OC = cfg_.out_channels;
  const std::size_t S = cfg_.stride, P = cfg_.pad;
  const float* in_base = in.data();
  const float* go_base = grad_out.data();
  const float* w_base = weight_.value.data();
  float* wg_base = weight_.grad.data();
  float* gi_base = grad_in.data();

  for (std::size_t n = 0; n < N; ++n) {
    const float* in_n = in_base + n * C * H * W;
    float* gi_n = gi_base + n * C * H * W;
    const float* go_n = go_base + n * OC * OH * OW;
    for (std::size_t g = 0; g < cfg_.groups; ++g) {
      for (std::size_t ocg = 0; ocg < cout_g; ++ocg) {
        const std::size_t oc = g * cout_g + ocg;
        const float* go_c = go_n + oc * OH * OW;
        const float* w_oc = w_base + oc * cin_g * K * K;
        float* wg_oc = wg_base + oc * cin_g * K * K;
        for (std::size_t oh = 0; oh < OH; ++oh) {
          for (std::size_t ow = 0; ow < OW; ++ow) {
            const float go = go_c[oh * OW + ow];
            if (go == 0.0f) continue;
            if (cfg_.bias) bias_.grad[oc] += go;
            const std::ptrdiff_t ih0 =
                static_cast<std::ptrdiff_t>(oh * S) -
                static_cast<std::ptrdiff_t>(P);
            const std::ptrdiff_t iw0 =
                static_cast<std::ptrdiff_t>(ow * S) -
                static_cast<std::ptrdiff_t>(P);
            const std::size_t kh_lo =
                ih0 < 0 ? static_cast<std::size_t>(-ih0) : 0;
            const std::size_t kh_hi = std::min(
                K, static_cast<std::size_t>(
                       std::max<std::ptrdiff_t>(
                           0, static_cast<std::ptrdiff_t>(H) - ih0)));
            const std::size_t kw_lo =
                iw0 < 0 ? static_cast<std::size_t>(-iw0) : 0;
            const std::size_t kw_hi = std::min(
                K, static_cast<std::size_t>(
                       std::max<std::ptrdiff_t>(
                           0, static_cast<std::ptrdiff_t>(W) - iw0)));
            const std::size_t kw_n = kw_hi > kw_lo ? kw_hi - kw_lo : 0;
            for (std::size_t icg = 0; icg < cin_g; ++icg) {
              const std::size_t ic = g * cin_g + icg;
              const float* in_c = in_n + ic * H * W;
              float* gi_c = gi_n + ic * H * W;
              const float* w_ic = w_oc + icg * K * K;
              float* wg_ic = wg_oc + icg * K * K;
              for (std::size_t kh = kh_lo; kh < kh_hi; ++kh) {
                const std::size_t row = static_cast<std::size_t>(
                    (ih0 + static_cast<std::ptrdiff_t>(kh)) *
                        static_cast<std::ptrdiff_t>(W) +
                    iw0 + static_cast<std::ptrdiff_t>(kw_lo));
                const float* in_row = in_c + row;
                float* gi_row = gi_c + row;
                const float* w_row = w_ic + kh * K + kw_lo;
                float* wg_row = wg_ic + kh * K + kw_lo;
                for (std::size_t kw = 0; kw < kw_n; ++kw) {
                  wg_row[kw] += go * in_row[kw];
                  gi_row[kw] += go * w_row[kw];
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2D::params() {
  std::vector<Param*> p{&weight_};
  if (cfg_.bias) p.push_back(&bias_);
  return p;
}

}  // namespace ls::nn
