#pragma once
// Stateless activation layers.

#include "nn/layer.hpp"

namespace ls::nn {

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name) : name_(std::move(name)) {}

  Tensor forward(const Tensor& in, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override { return in; }

 private:
  std::string name_;
  Tensor cached_input_;
};

/// Reshapes {N,C,H,W} to {N, C*H*W}. Identity on 2D input.
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name) : name_(std::move(name)) {}

  Tensor forward(const Tensor& in, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override;

 private:
  std::string name_;
  Shape cached_input_shape_;
};

}  // namespace ls::nn
