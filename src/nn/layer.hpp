#pragma once
// Layer interface for the from-scratch neural-network library.
//
// Training support (full backward pass) is required because the paper's core
// contribution — communication-aware sparsified parallelization — is a
// *training-time* technique: group-Lasso regularization with per-group
// strength derived from NoC hop distances (paper §IV.C).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ls::nn {

using tensor::Shape;
using tensor::Tensor;

/// A learnable parameter: value plus the gradient accumulated by backward().
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Monotonic weight-version counter — the invalidation contract for the
  /// block-sparsity bitmap cache (DESIGN.md "Sparse execution"). Every code
  /// path that mutates `value` must bump() afterwards; Sgd::step, the
  /// proximal group-Lasso update, LayerGroupSet::kill_block and
  /// serialize::load_params all do. Code that pokes `value` directly (tests,
  /// ad-hoc surgery) must bump() itself or stale bitmaps will skip
  /// now-nonzero blocks.
  std::uint64_t version = 0;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape(), 0.0f) {}

  void bump() { ++version; }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer on `in`, caching whatever backward() needs when
  /// `training` is true.
  virtual Tensor forward(const Tensor& in, bool training) = 0;

  /// Propagates `grad_out` (dL/d-output) back, accumulating parameter
  /// gradients and returning dL/d-input. Must follow a training-mode
  /// forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameters (empty for stateless layers). Pointers remain
  /// valid for the life of the layer.
  virtual std::vector<Param*> params() { return {}; }

  /// Human-readable layer name, e.g. "conv2".
  virtual const std::string& name() const = 0;

  /// Output shape for a given input shape (without running data through).
  virtual Shape output_shape(const Shape& in) const = 0;
};

}  // namespace ls::nn
