#pragma once
// Vectorized tiled GEMM backend (DESIGN.md §4i "Vectorized kernels").
//
// Drop-in alternative to the scalar kernels in gemm.hpp, selected at
// runtime via LS_CONV_IMPL=simd. Register tile Mr x Nr = 4x16: A is read
// unpacked through four raw row pointers (a strided element walk the
// microkernel absorbs), B is packed once per call into 16-column strips in
// the caller's scratch slot — except full-width nn strips, which are read
// directly from the operand. gemm_nt computes C^T so B streams
// k-contiguously and the writeback transposes; gemm_tn folds the A
// transpose into the row stride. The inner loop is written for the
// compiler's vectorizer (`#pragma omp simd` under -fopenmp-simd), with
// AVX2+FMA function-multi-versioned clones selected once by cpuid where
// the toolchain supports them (microkernel_isa()).
//
// Determinism contract (same as gemm.hpp): every output element is one
// flat ascending-k reduction with a single writeback; vector lanes run
// along output dimensions only, never across k. Tile and task boundaries
// are compile-time constants, and parallelism only partitions rows/columns
// of C — never k — so results are bit-identical for any thread count.
//
// Numerics vs the scalar backend: the scalar kernels fold 4 k terms into
// one rounding chain per step, so simd and scalar outputs agree only to
// float tolerance (~5e-8*K relative; the parity suite in
// tests/nn/gemm_simd_test.cpp pins 1e-5 + 3e-7*K). Within the simd
// backend, the sparse variants are bit-exact against the dense variants on
// the same pruned weights (compared with ==): skipped work only ever
// removes contributions that are exact +/-0.0 from the same reduction
// chain.
//
// Sparse panel skipping: dead (producer, consumer) blocks skip BOTH the
// packing and the compute of the covered panel region. Packing covers the
// union of live producer spans across consumers — exactly the rows
// im2col_masked fills — so the gemm_nn_sparse B operand may contain
// garbage in rows whose whole producer panel is dead for every consumer;
// those rows are never read (not even at unroll boundaries, unlike the
// scalar kernel).

#include <cstddef>

#include "nn/gemm.hpp"

namespace ls::nn::simd {

/// True when the microkernel was compiled with `#pragma omp simd` active
/// (-fopenmp-simd found). The packed kernels are correct either way; the
/// runtime dispatch (default_backend) falls back to the scalar backend
/// when the pragma is unavailable, honoring the "no silent slow path"
/// rule for LS_CONV_IMPL=simd.
bool vectorized();

/// The instruction set the microkernel dispatches to at runtime: "avx2+fma"
/// when the cpuid-selected clones are in use, "portable" for the baseline
/// build target. Benches record it so perf gates only bind where the vector
/// clones actually run.
const char* microkernel_isa();

/// Backend selection shared by Conv2D and FullyConnected.
enum class GemmBackend { kScalar, kSimd };

/// Resolves LS_CONV_IMPL once: "simd" selects kSimd (when vectorized()),
/// anything else — including "naive", which only affects the conv loop
/// nest — selects kScalar.
GemmBackend default_backend();

// Entry points mirror ls::nn::gemm exactly; see gemm.hpp for the operand
// and BlockMask conventions.

/// C(MxN) = A(MxK) * B(KxN)   [+= when accumulate]
void gemm_nn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// C(MxN) = A^T * B where A is stored (KxM).
void gemm_tn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// C(MxN) = A * B^T where B is stored (NxK).
void gemm_nt(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// Block-sparse gemm_nn: A = weights, rows of C partitioned by
/// mask.out_bounds (consumers), reduction by mask.k_bounds (producers).
void gemm_nn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel,
                    const gemm::BlockMask& mask);

/// Block-sparse gemm_nt: B = weights, columns of C partitioned by
/// mask.out_bounds (consumers), reduction by mask.k_bounds (producers).
void gemm_nt_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel,
                    const gemm::BlockMask& mask);

/// Block-sparse gemm_tn: B = weights (KxN), the reduction dimension K is
/// the consumer partition (mask.out_bounds over K) and columns of C are
/// producer panels (mask.k_bounds over N).
void gemm_tn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel,
                    const gemm::BlockMask& mask);

}  // namespace ls::nn::simd
