#pragma once
// Architecture-level network descriptors.
//
// The simulators (ls::accel, ls::noc, ls::sim) and the analytic traffic
// model (paper TABLE I) operate on layer *shapes*, not trained weights, so
// full-scale AlexNet/VGG19 can be analyzed without training them. A NetSpec
// can also be instantiated into a trainable ls::nn::Network when its size
// permits (see model_zoo.hpp).

#include <cstddef>
#include <string>
#include <vector>

namespace ls::nn {

enum class LayerKind { kConv, kFullyConnected, kPool, kReLU, kFlatten };

const char* to_string(LayerKind kind);

/// One layer of a network architecture. Only the fields relevant to the
/// kind are meaningful.
struct LayerSpec {
  LayerKind kind = LayerKind::kReLU;
  std::string name;

  // conv
  std::size_t out_channels = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t groups = 1;

  // fully connected
  std::size_t out_features = 0;

  // pool
  std::size_t window = 0;
  std::size_t pool_stride = 0;

  static LayerSpec conv(std::string name, std::size_t out_channels,
                        std::size_t kernel, std::size_t stride = 1,
                        std::size_t pad = 0, std::size_t groups = 1);
  static LayerSpec fc(std::string name, std::size_t out_features);
  static LayerSpec pool(std::string name, std::size_t window,
                        std::size_t stride);
  static LayerSpec relu(std::string name);
  static LayerSpec flatten(std::string name);
};

/// Activation volume {C, H, W} between layers (H=W=1 after flatten/fc).
struct ActShape {
  std::size_t c = 0;
  std::size_t h = 1;
  std::size_t w = 1;
  std::size_t numel() const { return c * h * w; }
};

/// Per-layer derived quantities computed by analyze().
struct LayerAnalysis {
  LayerSpec spec;
  ActShape in;
  ActShape out;
  std::size_t macs = 0;          ///< multiply-accumulates for one inference
  std::size_t weight_count = 0;  ///< learnable weights (no biases)
  bool is_compute() const {
    return spec.kind == LayerKind::kConv ||
           spec.kind == LayerKind::kFullyConnected;
  }
};

/// A complete network architecture plus its nominal dataset.
struct NetSpec {
  std::string name;
  std::string dataset;
  ActShape input;
  std::vector<LayerSpec> layers;
};

/// Propagates shapes through the network and computes per-layer MACs and
/// weight counts. Throws on inconsistent specs (e.g. kernel > input).
std::vector<LayerAnalysis> analyze(const NetSpec& spec);

/// Total MACs over all layers.
std::size_t total_macs(const NetSpec& spec);

/// Total learnable weights over all layers.
std::size_t total_weights(const NetSpec& spec);

}  // namespace ls::nn
