#pragma once
// Max / average 2D pooling.

#include <cstdint>

#include "nn/layer.hpp"

namespace ls::nn {

enum class PoolKind { kMax, kAvg };

class Pool2D final : public Layer {
 public:
  Pool2D(std::string name, PoolKind kind, std::size_t window,
         std::size_t stride);

  Tensor forward(const Tensor& in, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override;

  PoolKind kind() const { return kind_; }
  std::size_t window() const { return window_; }
  std::size_t stride() const { return stride_; }

 private:
  std::string name_;
  PoolKind kind_;
  std::size_t window_;
  std::size_t stride_;
  Shape cached_input_shape_;
  std::vector<std::uint32_t> argmax_;  ///< flat input index per output (max)
};

}  // namespace ls::nn
