#pragma once
// Thread-local scratch arena for the conv/FC kernel fast paths.
//
// Every hot kernel needs large transient buffers: the im2col/im2row
// packings, the backward dRow staging area, and the SIMD backend's packed
// A/B panels. Allocating them per call dominated small-layer runtime and
// fragmented the heap under the trainer's batch loop; this arena hands out
// one grow-only aligned buffer per purpose and per thread, so after a
// warmup call at the largest shape a steady-state forward/backward performs
// zero allocations (pinned by tests/nn/scratch_arena_test.cpp).
//
// Threading model: buffers are thread_local. A kernel may use a slot only
// on the thread that acquired it — the usual pattern is "acquire inside the
// parallel_for body" (each worker gets its own buffer) or "acquire on the
// calling thread before fanning out readers" (the SIMD GEMM packs B once on
// the caller, then worker tasks read it). Two live buffers on one thread
// must use different slots; each kernel stage below owns a distinct slot so
// nesting (im2col -> packed GEMM) never aliases.

#include <cstddef>
#include <cstdint>

namespace ls::nn::scratch {

/// One slot per concurrently-live buffer a kernel stage needs.
enum class Slot : std::size_t {
  kIm2col = 0,   ///< conv forward im2col packing
  kIm2row,       ///< conv backward im2row packing
  kBwdDrow,      ///< conv backward dRow staging
  kPackA,        ///< reserved (the SIMD GEMM reads A unpacked)
  kPackB,        ///< SIMD GEMM packed B panels (caller, read by workers)
  kEvalBatch,    ///< reserved (the trainer stages shards in persistent
                 ///< per-replica tensors; tensor::Tensor owns its storage,
                 ///< so the float arena cannot back it)
  kSlotCount,
};

/// Returns the calling thread's buffer for `slot`, grown (64-byte aligned,
/// contents unspecified) to hold at least `floats` elements. The pointer is
/// valid until the next buffer() call on the same thread with the same slot
/// and a larger size.
float* buffer(Slot slot, std::size_t floats);

/// Allocation-churn counters for the calling thread's arena.
struct Stats {
  std::uint64_t reallocs = 0;  ///< total buffer growths since thread start
  std::uint64_t bytes = 0;     ///< current total capacity across slots
};
Stats thread_stats();

}  // namespace ls::nn::scratch
