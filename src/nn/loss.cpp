#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ls::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor softmax(const Tensor& logits) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax expects {N, classes}");
  }
  const std::size_t N = logits.shape()[0], C = logits.shape()[1];
  Tensor probs(logits.shape());
  for (std::size_t n = 0; n < N; ++n) {
    const float* row = logits.data() + n * C;
    float* out = probs.data() + n * C;
    const float mx = *std::max_element(row, row + C);
    double denom = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      out[c] = std::exp(row[c] - mx);
      denom += out[c];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < C; ++c) out[c] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::uint32_t>& labels) {
  const std::size_t N = logits.shape()[0], C = logits.shape()[1];
  if (labels.size() != N) {
    throw std::invalid_argument("label count != batch size");
  }
  LossResult result;
  result.grad_logits = softmax(logits);
  double total = 0.0;
  const auto inv_n = 1.0f / static_cast<float>(N);
  for (std::size_t n = 0; n < N; ++n) {
    if (labels[n] >= C) throw std::out_of_range("label out of range");
    float* row = result.grad_logits.data() + n * C;
    const double p = std::max(static_cast<double>(row[labels[n]]), 1e-12);
    total -= std::log(p);
    row[labels[n]] -= 1.0f;
    for (std::size_t c = 0; c < C; ++c) row[c] *= inv_n;
  }
  result.loss = total / static_cast<double>(N);
  return result;
}

std::vector<std::uint32_t> argmax_rows(const Tensor& logits) {
  const std::size_t N = logits.shape()[0], C = logits.shape()[1];
  std::vector<std::uint32_t> out(N);
  for (std::size_t n = 0; n < N; ++n) {
    const float* row = logits.data() + n * C;
    out[n] = static_cast<std::uint32_t>(
        std::max_element(row, row + C) - row);
  }
  return out;
}

}  // namespace ls::nn
