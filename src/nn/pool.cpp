#include "nn/pool.hpp"

#include <limits>
#include <stdexcept>

namespace ls::nn {

Pool2D::Pool2D(std::string name, PoolKind kind, std::size_t window,
               std::size_t stride)
    : name_(std::move(name)), kind_(kind), window_(window), stride_(stride) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("pool: zero window or stride");
  }
}

Shape Pool2D::output_shape(const Shape& in) const {
  if (in.rank() != 4) throw std::invalid_argument("pool expects NCHW input");
  if (in[2] < window_ || in[3] < window_) {
    throw std::invalid_argument("pool window larger than input");
  }
  const std::size_t oh = (in[2] - window_) / stride_ + 1;
  const std::size_t ow = (in[3] - window_) / stride_ + 1;
  return Shape{in[0], in[1], oh, ow};
}

Tensor Pool2D::forward(const Tensor& in, bool training) {
  const Shape out_shape = output_shape(in.shape());
  Tensor out(out_shape);
  const std::size_t N = in.shape()[0], C = in.shape()[1];
  const std::size_t H = in.shape()[2], W = in.shape()[3];
  const std::size_t OH = out_shape[2], OW = out_shape[3];
  if (training && kind_ == PoolKind::kMax) {
    argmax_.assign(out.numel(), 0);
  }
  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow, ++out_idx) {
          if (kind_ == PoolKind::kMax) {
            float best = -std::numeric_limits<float>::infinity();
            std::size_t best_idx = 0;
            for (std::size_t kh = 0; kh < window_; ++kh) {
              for (std::size_t kw = 0; kw < window_; ++kw) {
                const std::size_t ih = oh * stride_ + kh;
                const std::size_t iw = ow * stride_ + kw;
                const std::size_t idx = ((n * C + c) * H + ih) * W + iw;
                if (in[idx] > best) {
                  best = in[idx];
                  best_idx = idx;
                }
              }
            }
            out[out_idx] = best;
            if (training) argmax_[out_idx] = static_cast<std::uint32_t>(best_idx);
          } else {
            float acc = 0.0f;
            for (std::size_t kh = 0; kh < window_; ++kh) {
              for (std::size_t kw = 0; kw < window_; ++kw) {
                const std::size_t ih = oh * stride_ + kh;
                const std::size_t iw = ow * stride_ + kw;
                acc += in[((n * C + c) * H + ih) * W + iw];
              }
            }
            out[out_idx] = acc / static_cast<float>(window_ * window_);
          }
        }
      }
    }
  }
  if (training) cached_input_shape_ = in.shape();
  return out;
}

Tensor Pool2D::backward(const Tensor& grad_out) {
  if (cached_input_shape_.empty()) {
    throw std::logic_error("pool backward without training forward");
  }
  Tensor grad_in(cached_input_shape_, 0.0f);
  if (kind_ == PoolKind::kMax) {
    for (std::size_t i = 0; i < grad_out.numel(); ++i) {
      grad_in[argmax_[i]] += grad_out[i];
    }
    return grad_in;
  }
  const Shape out_shape = grad_out.shape();
  const std::size_t N = out_shape[0], C = out_shape[1];
  const std::size_t OH = out_shape[2], OW = out_shape[3];
  const std::size_t H = cached_input_shape_[2], W = cached_input_shape_[3];
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  std::size_t out_idx = 0;
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow, ++out_idx) {
          const float g = grad_out[out_idx] * inv;
          for (std::size_t kh = 0; kh < window_; ++kh) {
            for (std::size_t kw = 0; kw < window_; ++kw) {
              const std::size_t ih = oh * stride_ + kh;
              const std::size_t iw = ow * stride_ + kw;
              grad_in[((n * C + c) * H + ih) * W + iw] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace ls::nn
