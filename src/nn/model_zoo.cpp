#include "nn/model_zoo.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/fc.hpp"
#include "nn/pool.hpp"

namespace ls::nn {

NetSpec mlp_spec() {
  NetSpec s;
  s.name = "MLP";
  s.dataset = "MNIST";
  s.input = {1, 28, 28};
  s.layers = {
      LayerSpec::flatten("flatten"), LayerSpec::fc("ip1", 512),
      LayerSpec::relu("relu1"),      LayerSpec::fc("ip2", 304),
      LayerSpec::relu("relu2"),      LayerSpec::fc("ip3", 10),
  };
  return s;
}

NetSpec lenet_spec() {
  NetSpec s;
  s.name = "LeNet";
  s.dataset = "MNIST";
  s.input = {1, 28, 28};
  s.layers = {
      LayerSpec::conv("conv1", 20, 5),
      LayerSpec::pool("pool1", 2, 2),
      LayerSpec::conv("conv2", 50, 5),
      LayerSpec::pool("pool2", 2, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 500),
      LayerSpec::relu("relu1"),
      LayerSpec::fc("ip2", 10),
  };
  return s;
}

NetSpec convnet_spec() {
  NetSpec s;
  s.name = "ConvNet";
  s.dataset = "Cifar-10";
  s.input = {3, 32, 32};
  s.layers = {
      LayerSpec::conv("conv1", 32, 5, 1, 2),
      LayerSpec::pool("pool1", 2, 2),
      LayerSpec::relu("relu1"),
      LayerSpec::conv("conv2", 32, 5, 1, 2),
      LayerSpec::relu("relu2"),
      LayerSpec::pool("pool2", 2, 2),
      LayerSpec::conv("conv3", 64, 5, 1, 2),
      LayerSpec::relu("relu3"),
      LayerSpec::pool("pool3", 2, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 64),
      LayerSpec::fc("ip2", 10),
  };
  return s;
}

NetSpec alexnet_spec() {
  NetSpec s;
  s.name = "AlexNet";
  s.dataset = "ImageNet";
  s.input = {3, 227, 227};
  s.layers = {
      LayerSpec::conv("conv1", 96, 11, 4),
      LayerSpec::relu("relu1"),
      LayerSpec::pool("pool1", 3, 2),
      LayerSpec::conv("conv2", 256, 5, 1, 2),
      LayerSpec::relu("relu2"),
      LayerSpec::pool("pool2", 3, 2),
      LayerSpec::conv("conv3", 384, 3, 1, 1),
      LayerSpec::relu("relu3"),
      LayerSpec::conv("conv4", 384, 3, 1, 1),
      LayerSpec::relu("relu4"),
      LayerSpec::conv("conv5", 256, 3, 1, 1),
      LayerSpec::relu("relu5"),
      LayerSpec::pool("pool5", 3, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 4096),
      LayerSpec::relu("relu6"),
      LayerSpec::fc("ip2", 4096),
      LayerSpec::relu("relu7"),
      LayerSpec::fc("ip3", 1000),
  };
  return s;
}

NetSpec vgg19_spec() {
  NetSpec s;
  s.name = "VGG19";
  s.dataset = "ImageNet";
  s.input = {3, 224, 224};
  auto block = [&](const std::string& base, std::size_t channels,
                   std::size_t convs) {
    for (std::size_t i = 1; i <= convs; ++i) {
      s.layers.push_back(LayerSpec::conv(base + "_" + std::to_string(i),
                                         channels, 3, 1, 1));
      s.layers.push_back(
          LayerSpec::relu("relu_" + base + "_" + std::to_string(i)));
    }
    s.layers.push_back(LayerSpec::pool("pool_" + base, 2, 2));
  };
  s.name = "VGG19";
  block("conv1", 64, 2);
  block("conv2", 128, 2);
  block("conv3", 256, 4);
  block("conv4", 512, 4);
  block("conv5", 512, 4);
  s.layers.push_back(LayerSpec::flatten("flatten"));
  s.layers.push_back(LayerSpec::fc("ip1", 4096));
  s.layers.push_back(LayerSpec::relu("relu_ip1"));
  s.layers.push_back(LayerSpec::fc("ip2", 4096));
  s.layers.push_back(LayerSpec::relu("relu_ip2"));
  s.layers.push_back(LayerSpec::fc("ip3", 1000));
  return s;
}

NetSpec convnet_variant_spec(std::size_t c1, std::size_t c2, std::size_t c3,
                             std::size_t groups) {
  NetSpec s;
  s.name = "ConvNet-" + std::to_string(c1) + "-" + std::to_string(c2) + "-" +
           std::to_string(c3) + "-g" + std::to_string(groups);
  s.dataset = "ImageNet10";
  s.input = {3, 64, 64};
  s.layers = {
      LayerSpec::conv("conv1", c1, 5, 1, 2),
      LayerSpec::relu("relu1"),
      LayerSpec::pool("pool1", 2, 2),
      LayerSpec::conv("conv2", c2, 3, 1, 1, groups),
      LayerSpec::relu("relu2"),
      LayerSpec::pool("pool2", 2, 2),
      LayerSpec::conv("conv3", c3, 3, 1, 1, groups),
      LayerSpec::relu("relu3"),
      LayerSpec::pool("pool3", 2, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 64),
      LayerSpec::relu("relu_ip1"),
      LayerSpec::fc("ip2", 10),
  };
  return s;
}

NetSpec mlp_expt_spec() {
  NetSpec s = mlp_spec();
  s.name = "MLP";
  return s;  // full published size is already CPU-trainable
}

NetSpec lenet_expt_spec() {
  NetSpec s;
  s.name = "LeNet";
  s.dataset = "mnist-like";
  s.input = {1, 28, 28};
  s.layers = {
      LayerSpec::conv("conv1", 16, 5),
      LayerSpec::pool("pool1", 2, 2),
      LayerSpec::conv("conv2", 32, 5),
      LayerSpec::pool("pool2", 2, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 128),
      LayerSpec::relu("relu1"),
      LayerSpec::fc("ip2", 10),
  };
  return s;
}

NetSpec convnet_expt_spec() {
  NetSpec s;
  s.name = "ConvNet";
  s.dataset = "cifar-like";
  s.input = {3, 32, 32};
  s.layers = {
      LayerSpec::conv("conv1", 16, 5, 1, 2),
      LayerSpec::relu("relu1"),
      LayerSpec::pool("pool1", 2, 2),
      LayerSpec::conv("conv2", 32, 3, 1, 1),
      LayerSpec::relu("relu2"),
      LayerSpec::pool("pool2", 2, 2),
      LayerSpec::conv("conv3", 64, 3, 1, 1),
      LayerSpec::relu("relu3"),
      LayerSpec::pool("pool3", 2, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 64),
      LayerSpec::relu("relu_ip1"),
      LayerSpec::fc("ip2", 10),
  };
  return s;
}

NetSpec caffenet_expt_spec() {
  NetSpec s;
  s.name = "CaffeNet";
  s.dataset = "imagenet10-like";
  s.input = {3, 64, 64};
  s.layers = {
      LayerSpec::conv("conv1", 16, 7, 2),
      LayerSpec::relu("relu1"),
      LayerSpec::pool("pool1", 2, 2),
      LayerSpec::conv("conv2", 32, 5, 1, 2),
      LayerSpec::relu("relu2"),
      LayerSpec::pool("pool2", 2, 2),
      LayerSpec::conv("conv3", 64, 3, 1, 1),
      LayerSpec::relu("relu3"),
      LayerSpec::pool("pool3", 2, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 128),
      LayerSpec::relu("relu_ip1"),
      LayerSpec::fc("ip2", 10),
  };
  return s;
}

NetSpec convnet_variant_expt_spec(std::size_t c1, std::size_t c2,
                                  std::size_t c3, std::size_t groups) {
  NetSpec s;
  s.name = "ConvNet-" + std::to_string(c1) + "-" + std::to_string(c2) + "-" +
           std::to_string(c3) + "-g" + std::to_string(groups);
  s.dataset = "imagenet10-like";
  s.input = {3, 32, 32};
  s.layers = {
      LayerSpec::conv("conv1", c1, 5, 1, 2),
      LayerSpec::relu("relu1"),
      LayerSpec::pool("pool1", 2, 2),
      LayerSpec::conv("conv2", c2, 3, 1, 1, groups),
      LayerSpec::relu("relu2"),
      LayerSpec::pool("pool2", 2, 2),
      LayerSpec::conv("conv3", c3, 3, 1, 1, groups),
      LayerSpec::relu("relu3"),
      LayerSpec::pool("pool3", 2, 2),
      LayerSpec::flatten("flatten"),
      LayerSpec::fc("ip1", 64),
      LayerSpec::relu("relu_ip1"),
      LayerSpec::fc("ip2", 10),
  };
  return s;
}

Network build_network(const NetSpec& spec, util::Rng& rng) {
  Network net(spec.name);
  const auto analysis = analyze(spec);  // validates the spec
  for (const LayerAnalysis& a : analysis) {
    const LayerSpec& l = a.spec;
    switch (l.kind) {
      case LayerKind::kConv: {
        Conv2DConfig cfg;
        cfg.in_channels = a.in.c;
        cfg.out_channels = l.out_channels;
        cfg.kernel = l.kernel;
        cfg.stride = l.stride;
        cfg.pad = l.pad;
        cfg.groups = l.groups;
        net.emplace<Conv2D>(l.name, cfg, rng);
        break;
      }
      case LayerKind::kFullyConnected:
        net.emplace<FullyConnected>(l.name, a.in.numel(), l.out_features, rng);
        break;
      case LayerKind::kPool:
        net.emplace<Pool2D>(l.name, PoolKind::kMax, l.window, l.pool_stride);
        break;
      case LayerKind::kReLU:
        net.emplace<ReLU>(l.name);
        break;
      case LayerKind::kFlatten:
        net.emplace<Flatten>(l.name);
        break;
    }
  }
  return net;
}

}  // namespace ls::nn
