#include "nn/fc.hpp"

#include <stdexcept>

namespace ls::nn {

FullyConnected::FullyConnected(std::string name, std::size_t in_features,
                               std::size_t out_features, util::Rng& rng,
                               bool bias)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_(name_ + ".w", Tensor::he_normal(Shape{out_features, in_features},
                                              in_features, rng)),
      bias_(name_ + ".b", Tensor::zeros(Shape{out_features})) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("fc: zero-sized features");
  }
}

Shape FullyConnected::output_shape(const Shape& in) const {
  std::size_t features = 1;
  for (std::size_t i = 1; i < in.rank(); ++i) features *= in[i];
  if (in.rank() == 1) features = in[0];
  const std::size_t n = in.rank() == 1 ? 1 : in[0];
  if (features != in_features_) {
    throw std::invalid_argument("fc input feature mismatch for " + name_);
  }
  return Shape{n, out_features_};
}

Tensor FullyConnected::forward(const Tensor& in, bool training) {
  const Shape out_shape = output_shape(in.shape());
  const std::size_t N = out_shape[0];
  Tensor flat = in.reshaped(Shape{N, in_features_});
  Tensor out(out_shape);
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t o = 0; o < out_features_; ++o) {
      float acc = has_bias_ ? bias_.value[o] : 0.0f;
      const float* w = weight_.value.data() + o * in_features_;
      const float* x = flat.data() + n * in_features_;
      for (std::size_t i = 0; i < in_features_; ++i) acc += w[i] * x[i];
      out.at2(n, o) = acc;
    }
  }
  if (training) {
    cached_input_ = flat;
    cached_input_shape_ = in.shape();
  }
  return out;
}

Tensor FullyConnected::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error("fc backward without training forward");
  }
  const std::size_t N = cached_input_.shape()[0];
  Tensor grad_flat(Shape{N, in_features_}, 0.0f);
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t o = 0; o < out_features_; ++o) {
      const float go = grad_out.at2(n, o);
      if (go == 0.0f) continue;
      if (has_bias_) bias_.grad[o] += go;
      float* wg = weight_.grad.data() + o * in_features_;
      const float* w = weight_.value.data() + o * in_features_;
      const float* x = cached_input_.data() + n * in_features_;
      float* gx = grad_flat.data() + n * in_features_;
      for (std::size_t i = 0; i < in_features_; ++i) {
        wg[i] += go * x[i];
        gx[i] += go * w[i];
      }
    }
  }
  return grad_flat.reshaped(cached_input_shape_);
}

std::vector<Param*> FullyConnected::params() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

}  // namespace ls::nn
