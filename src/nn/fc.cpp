#include "nn/fc.hpp"

#include <cstring>
#include <stdexcept>

#include "nn/block_sparsity.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ls::nn {

FullyConnected::FullyConnected(std::string name, std::size_t in_features,
                               std::size_t out_features, util::Rng& rng,
                               bool bias)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_(name_ + ".w", Tensor::he_normal(Shape{out_features, in_features},
                                              in_features, rng)),
      bias_(name_ + ".b", Tensor::zeros(Shape{out_features})) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("fc: zero-sized features");
  }
}

FullyConnected::~FullyConnected() = default;

void FullyConnected::set_sparsity_partition(std::size_t parts,
                                            std::size_t in_units) {
  if (in_units == 0 || in_features_ % in_units != 0) {
    throw std::invalid_argument(
        "fc block sparsity: in_features not a multiple of in_units at " +
        name_);
  }
  sparsity_ = std::make_unique<BlockSparsity>(parts, in_units, out_features_,
                                              in_features_ / in_units);
}

void FullyConnected::clear_sparsity_partition() { sparsity_.reset(); }

const BlockMap* FullyConnected::sparse_map() {
  if (!sparsity_ || !sparse_runtime_enabled()) return nullptr;
  const BlockMap& m = sparsity_->map(weight_);
  return m.engaged() ? &m : nullptr;
}

Shape FullyConnected::output_shape(const Shape& in) const {
  std::size_t features = 1;
  for (std::size_t i = 1; i < in.rank(); ++i) features *= in[i];
  if (in.rank() == 1) features = in[0];
  const std::size_t n = in.rank() == 1 ? 1 : in[0];
  if (features != in_features_) {
    throw std::invalid_argument("fc input feature mismatch for " + name_);
  }
  return Shape{n, out_features_};
}

Tensor FullyConnected::forward(const Tensor& in, bool training) {
  obs::Span span;
  if (obs::trace_enabled()) span.begin(name_ + ".fwd", "kernel");
  const Shape out_shape = output_shape(in.shape());
  const std::size_t N = out_shape[0];
  Tensor flat = in.reshaped(Shape{N, in_features_});
  Tensor out(out_shape);
  if (has_bias_) {
    for (std::size_t n = 0; n < N; ++n) {
      std::memcpy(out.data() + n * out_features_, bias_.value.data(),
                  out_features_ * sizeof(float));
    }
  }
  // out (N x Out) += X (N x In) * W^T, column-parallel over output units.
  const BlockMap* bm = sparse_map();
  if (bm != nullptr) {
    static auto& blocks_skipped =
        obs::Registry::instance().counter("sparse.blocks_skipped");
    static auto& macs_skipped =
        obs::Registry::instance().counter("sparse.macs_skipped");
    blocks_skipped.inc(bm->zero_blocks * N);
    macs_skipped.inc(bm->zero_weight_elems * N);
    obs::Registry::instance()
        .gauge("sparse.layer." + name_ + ".block_density")
        .set(bm->block_density());
    if (backend_ == simd::GemmBackend::kSimd) {
      simd::gemm_nt_sparse(N, out_features_, in_features_, flat.data(),
                           in_features_, weight_.value.data(), in_features_,
                           out.data(), out_features_, /*accumulate=*/true,
                           /*parallel=*/true, bm->mask());
    } else {
      gemm::gemm_nt_sparse(N, out_features_, in_features_, flat.data(),
                           in_features_, weight_.value.data(), in_features_,
                           out.data(), out_features_, /*accumulate=*/true,
                           /*parallel=*/true, bm->mask());
    }
  } else if (backend_ == simd::GemmBackend::kSimd) {
    simd::gemm_nt(N, out_features_, in_features_, flat.data(), in_features_,
                  weight_.value.data(), in_features_, out.data(),
                  out_features_,
                  /*accumulate=*/true, /*parallel=*/true);
  } else {
    gemm::gemm_nt(N, out_features_, in_features_, flat.data(), in_features_,
                  weight_.value.data(), in_features_, out.data(),
                  out_features_,
                  /*accumulate=*/true, /*parallel=*/true);
  }
  if (training) {
    cached_input_ = flat;
    cached_input_shape_ = in.shape();
  }
  return out;
}

Tensor FullyConnected::backward(const Tensor& grad_out) {
  obs::Span span;
  if (obs::trace_enabled()) span.begin(name_ + ".bwd", "kernel");
  if (cached_input_.empty()) {
    throw std::logic_error("fc backward without training forward");
  }
  const std::size_t N = cached_input_.shape()[0];
  Tensor grad_flat(Shape{N, in_features_}, 0.0f);
  if (has_bias_) {
    for (std::size_t n = 0; n < N; ++n) {
      const float* go = grad_out.data() + n * out_features_;
      for (std::size_t o = 0; o < out_features_; ++o) bias_.grad[o] += go[o];
    }
  }
  // dW (Out x In) += dOut^T (Out x N) * X (N x In); k = sample index runs
  // ascending, matching the reference accumulation order.
  if (backend_ == simd::GemmBackend::kSimd) {
    simd::gemm_tn(out_features_, in_features_, N, grad_out.data(),
                  out_features_, cached_input_.data(), in_features_,
                  weight_.grad.data(), in_features_, /*accumulate=*/true,
                  /*parallel=*/true);
    // dX (N x In) = dOut (N x Out) * W (Out x In)
    simd::gemm_nn(N, in_features_, out_features_, grad_out.data(),
                  out_features_, weight_.value.data(), in_features_,
                  grad_flat.data(), in_features_, /*accumulate=*/false,
                  /*parallel=*/true);
  } else {
    gemm::gemm_tn(out_features_, in_features_, N, grad_out.data(),
                  out_features_, cached_input_.data(), in_features_,
                  weight_.grad.data(), in_features_, /*accumulate=*/true,
                  /*parallel=*/true);
    // dX (N x In) = dOut (N x Out) * W (Out x In)
    gemm::gemm_nn(N, in_features_, out_features_, grad_out.data(),
                  out_features_, weight_.value.data(), in_features_,
                  grad_flat.data(), in_features_, /*accumulate=*/false,
                  /*parallel=*/true);
  }
  return grad_flat.reshaped(cached_input_shape_);
}

std::vector<Param*> FullyConnected::params() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

}  // namespace ls::nn
