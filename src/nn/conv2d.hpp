#pragma once
// 2D convolution with optional channel grouping.
//
// Grouping (`groups > 1`) is the mechanism behind the paper's
// *structure-level parallelization* (§IV.B, Fig. 4): with g groups, output
// channels in group i only read input channels in group i, so when group i's
// producer and consumer kernels are mapped to the same core, the layer
// transition needs no inter-core communication.
//
// Three compute kernels (DESIGN.md "Performance architecture" and §4i
// "Vectorized kernels"):
//   * kGemm  — im2col packing + cache-blocked scalar GEMM, parallelized over
//     the (batch, group) and output-channel dimensions on the shared pool.
//     Default; used by every trainer/bench path.
//   * kSimd  — same im2col structure, but the GEMMs run on the packed
//     register-tiled backend in nn::simd (LS_CONV_IMPL=simd). Falls back to
//     kGemm when the toolchain lacks `#pragma omp simd`.
//   * kNaive — the original 7-deep loop nest, kept as the reference for the
//     parity suite and for microbenchmark baselines.
// All kernels are deterministic for any thread count; they differ only in
// floating-point accumulation grouping (parity within 1e-4, see
// tests/nn/conv_gemm_parity_test.cpp and tests/nn/gemm_simd_test.cpp).

#include <cstddef>
#include <memory>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace ls::nn {

class BlockSparsity;

/// Conv/FC compute kernel selection. kAuto resolves to the LS_CONV_IMPL
/// environment variable ("gemm" | "naive" | "simd"), defaulting to kGemm.
enum class ConvImpl { kAuto, kGemm, kNaive, kSimd };

struct Conv2DConfig {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;     ///< square kernel Kh == Kw
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t groups = 1;     ///< channel groups; 1 = dense layer
  bool bias = true;
  ConvImpl impl = ConvImpl::kAuto;  ///< compute kernel selection
};

class Conv2D final : public Layer {
 public:
  Conv2D(std::string name, const Conv2DConfig& cfg, util::Rng& rng);
  ~Conv2D() override;

  Tensor forward(const Tensor& in, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override;

  const Conv2DConfig& config() const { return cfg_; }
  /// Weight layout: {Cout, Cin/groups, K, K}.
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }

  /// Switches the compute kernel at runtime (parity tests, benches).
  void set_impl(ConvImpl impl) { cfg_.impl = impl; }
  /// The kernel forward/backward will actually run (kAuto resolved).
  ConvImpl resolved_impl() const;

  /// Arms the block-sparse fast path (DESIGN.md "Sparse execution"):
  /// in/out channels are split `parts` ways (balanced_bounds) and all-zero
  /// weight blocks are skipped by the GEMM path. Requires groups == 1.
  /// Dense behavior is unchanged until blocks are actually pruned, and
  /// LS_SPARSE=off force-disables the path at runtime.
  void set_sparsity_partition(std::size_t parts);
  void clear_sparsity_partition();
  const BlockSparsity* sparsity() const { return sparsity_.get(); }

 private:
  Tensor naive_forward(const Tensor& in, bool training);
  Tensor naive_backward(const Tensor& grad_out);
  Tensor gemm_forward(const Tensor& in, bool training);
  Tensor gemm_backward(const Tensor& grad_out);

  /// Cached bitmap when armed and eligible, nullptr for the dense path.
  /// Rescans on weight-version change; cheap when nothing moved.
  const struct BlockMap* sparse_map();

  std::string name_;
  Conv2DConfig cfg_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  std::unique_ptr<BlockSparsity> sparsity_;
};

}  // namespace ls::nn
