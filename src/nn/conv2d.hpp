#pragma once
// 2D convolution with optional channel grouping.
//
// Grouping (`groups > 1`) is the mechanism behind the paper's
// *structure-level parallelization* (§IV.B, Fig. 4): with g groups, output
// channels in group i only read input channels in group i, so when group i's
// producer and consumer kernels are mapped to the same core, the layer
// transition needs no inter-core communication.

#include <cstddef>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace ls::nn {

struct Conv2DConfig {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;     ///< square kernel Kh == Kw
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t groups = 1;     ///< channel groups; 1 = dense layer
  bool bias = true;
};

class Conv2D final : public Layer {
 public:
  Conv2D(std::string name, const Conv2DConfig& cfg, util::Rng& rng);

  Tensor forward(const Tensor& in, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  const std::string& name() const override { return name_; }
  Shape output_shape(const Shape& in) const override;

  const Conv2DConfig& config() const { return cfg_; }
  /// Weight layout: {Cout, Cin/groups, K, K}.
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::string name_;
  Conv2DConfig cfg_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace ls::nn
