#pragma once
// Cache-blocked GEMM micro-kernels + im2col/im2row packing for the conv
// and FC fast paths (DESIGN.md "Performance architecture").
//
// All three variants share the determinism contract the parity and
// partitioned-inference bit-exactness suites rely on: for every output
// element C[i][j] the reduction over k runs in ascending k order with a
// fixed unroll grouping, independent of matrix blocking and of how many
// threads the pool splits the row range across. Parallelism only ever
// partitions *rows (or columns) of C*, never the k dimension, so a given
// (shape, input) pair produces bit-identical output for any thread count.
//
// Leading dimensions are element strides of the row-major operands, as in
// BLAS. `accumulate == false` overwrites C, `true` adds into it.

#include <cstddef>
#include <cstdint>

namespace ls::nn::gemm {

/// C(MxN) = A(MxK) * B(KxN)   [+= when accumulate]
void gemm_nn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// C(MxN) = A^T * B where A is stored (KxM): C[i][j] += sum_k A[k][i]*B[k][j]
void gemm_tn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// C(MxN) = A * B^T where B is stored (NxK): C[i][j] += dot(A[i][:], B[j][:])
void gemm_nt(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

// ---------------------------------------------------------------------------
// Block-sparse variants (DESIGN.md "Sparse execution").
//
// The weight operand of each variant is partitioned into a parts x parts
// grid of (producer panel, consumer panel) blocks; zero[p * parts + c] != 0
// declares block (p, c) all-zero *in memory* — the kernels trust the caller
// (nn::BlockSparsity scans and caches the bitmap). Work that only touches
// all-zero weights is skipped.
//
// Bit-exactness contract: the sparse kernels replicate the dense kernels'
// per-element accumulation structure (ascending k, the same absolute
// 4-aligned unroll groups) and only skip an unroll group when every k in it
// lies in panels pruned for that element's consumer. A skipped group's
// contribution in the dense kernel is a sum of products with exact 0.0f
// weights, i.e. +/-0.0, and x + (+/-0.0) == x for every finite x — so the
// sparse and dense paths agree to the last bit, up to the sign of exact
// zeros (outputs compare equal under ==; see
// tests/nn/sparse_parity_test.cpp).
// ---------------------------------------------------------------------------

/// Block-zero descriptor shared by the sparse kernels. Bounds are cumulative
/// (parts + 1 entries, ascending, possibly with empty panels); the grid is
/// indexed zero[p * parts + c] with p the producer panel and c the consumer
/// panel. Which matrix dimension each bound array partitions depends on the
/// variant — see each function.
struct BlockMask {
  std::size_t parts = 0;
  const std::size_t* k_bounds = nullptr;    ///< producer panels
  const std::size_t* out_bounds = nullptr;  ///< consumer panels
  const std::uint8_t* zero = nullptr;       ///< parts x parts, (p, c)
};

/// gemm_nn with A = weights (M x K): rows of C are consumer panels
/// (mask.out_bounds over M, so out_bounds[parts] == M) and the reduction
/// dimension is producer panels (mask.k_bounds over K). Used by the conv
/// im2col forward: k-panels whose weight block is all-zero for a given
/// output-channel row are skipped.
void gemm_nn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel, const BlockMask& mask);

/// gemm_nt with B = weights (N x K): columns of C are consumer panels
/// (mask.out_bounds over N) and the reduction dimension is producer panels
/// (mask.k_bounds over K). Used by the FC forward.
void gemm_nt_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel, const BlockMask& mask);

/// gemm_tn with B = weights (K x N): here the *reduction* dimension is the
/// consumer partition (mask.out_bounds over K — the weight rows) and the
/// columns of C are producer panels (mask.k_bounds over N). Used by the conv
/// backward data-gradient GEMM: for each consumer row k, only the live
/// producer column intervals are touched. Skipping is exact because this
/// kernel's per-element accumulation is flat ascending-k.
void gemm_tn_sparse(std::size_t M, std::size_t N, std::size_t K,
                    const float* A, std::size_t lda, const float* B,
                    std::size_t ldb, float* C, std::size_t ldc,
                    bool accumulate, bool parallel, const BlockMask& mask);

/// Geometry of one conv im2col/im2row packing: a single sample's single
/// channel group, NCHW layout.
struct PackShape {
  std::size_t channels = 0;  ///< input channels in this group
  std::size_t H = 0, W = 0;  ///< input spatial dims
  std::size_t OH = 0, OW = 0;
  std::size_t K = 0;  ///< square kernel
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t patch() const { return channels * K * K; }  ///< ck2
  std::size_t cols() const { return OH * OW; }            ///< output pixels
};

/// Packs `in` (channels*H*W floats, one sample/group) into `col`
/// (patch() x cols()): col[(c*K+kh)*K+kw][oh*OW+ow], zero-filling padding.
/// Row order (c, kh, kw) matches the naive loop nest's accumulation order.
void im2col(const PackShape& s, const float* in, float* col);

/// im2col that skips packing input channels whose entire weight-block
/// column is pruned (`channel_skip[c] != 0`). Skipped channels' col rows
/// are left untouched *except* the rows a 4-aligned unroll group of
/// gemm_nn_sparse could still read (group straddling a live/dead boundary,
/// or the K%4 tail): those are zero-filled so the sparse GEMM never
/// multiplies garbage. Packing is ~30% of conv forward time, so fully
/// pruned columns skip that share too.
void im2col_masked(const PackShape& s, const float* in, float* col,
                   const std::uint8_t* channel_skip);

/// Transposed packing into `row` (cols() x patch()):
/// row[oh*OW+ow][(c*K+kh)*K+kw]. Used by the backward pass so both GEMMs
/// stream unit-stride.
void im2row(const PackShape& s, const float* in, float* row);

/// Scatter-adds `row` (cols() x patch(), the layout im2row produces) into
/// `in_grad` (channels*H*W floats). Inverse of im2row for gradients;
/// padding cells are dropped.
void row2im_add(const PackShape& s, const float* row, float* in_grad);

}  // namespace ls::nn::gemm
