#pragma once
// Cache-blocked GEMM micro-kernels + im2col/im2row packing for the conv
// and FC fast paths (DESIGN.md "Performance architecture").
//
// All three variants share the determinism contract the parity and
// partitioned-inference bit-exactness suites rely on: for every output
// element C[i][j] the reduction over k runs in ascending k order with a
// fixed unroll grouping, independent of matrix blocking and of how many
// threads the pool splits the row range across. Parallelism only ever
// partitions *rows (or columns) of C*, never the k dimension, so a given
// (shape, input) pair produces bit-identical output for any thread count.
//
// Leading dimensions are element strides of the row-major operands, as in
// BLAS. `accumulate == false` overwrites C, `true` adds into it.

#include <cstddef>

namespace ls::nn::gemm {

/// C(MxN) = A(MxK) * B(KxN)   [+= when accumulate]
void gemm_nn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// C(MxN) = A^T * B where A is stored (KxM): C[i][j] += sum_k A[k][i]*B[k][j]
void gemm_tn(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// C(MxN) = A * B^T where B is stored (NxK): C[i][j] += dot(A[i][:], B[j][:])
void gemm_nt(std::size_t M, std::size_t N, std::size_t K, const float* A,
             std::size_t lda, const float* B, std::size_t ldb, float* C,
             std::size_t ldc, bool accumulate, bool parallel = false);

/// Geometry of one conv im2col/im2row packing: a single sample's single
/// channel group, NCHW layout.
struct PackShape {
  std::size_t channels = 0;  ///< input channels in this group
  std::size_t H = 0, W = 0;  ///< input spatial dims
  std::size_t OH = 0, OW = 0;
  std::size_t K = 0;  ///< square kernel
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t patch() const { return channels * K * K; }  ///< ck2
  std::size_t cols() const { return OH * OW; }            ///< output pixels
};

/// Packs `in` (channels*H*W floats, one sample/group) into `col`
/// (patch() x cols()): col[(c*K+kh)*K+kw][oh*OW+ow], zero-filling padding.
/// Row order (c, kh, kw) matches the naive loop nest's accumulation order.
void im2col(const PackShape& s, const float* in, float* col);

/// Transposed packing into `row` (cols() x patch()):
/// row[oh*OW+ow][(c*K+kh)*K+kw]. Used by the backward pass so both GEMMs
/// stream unit-stride.
void im2row(const PackShape& s, const float* in, float* row);

/// Scatter-adds `row` (cols() x patch(), the layout im2row produces) into
/// `in_grad` (channels*H*W floats). Inverse of im2row for gradients;
/// padding cells are dropped.
void row2im_add(const PackShape& s, const float* row, float* in_grad);

}  // namespace ls::nn::gemm
