#pragma once
// Per-layer block-zero bitmaps over a P-way partitioned weight tensor
// (DESIGN.md "Sparse execution").
//
// The paper's group-Lasso training drives whole (producer core, consumer
// core) weight blocks to exact zero. This module scans a layer's weight
// tensor into a parts x parts bitmap of all-zero blocks and hands it to the
// block-sparse GEMM kernels (gemm.hpp) so pruned blocks cost no compute.
//
// Invalidation contract: the scan is cached per layer and keyed on
// Param::version, which every weight mutation path bumps (Sgd::step,
// proximal group-Lasso apply, LayerGroupSet::kill_block, load_params).
// Code that pokes weight values directly must call Param::bump() itself or
// the cached bitmap goes stale.
//
// Layering: ls::nn cannot depend on ls::core (core already depends on nn),
// so the P-way unit split is replicated here as balanced_bounds(); a
// consistency test pins it to core::balanced_ranges
// (tests/nn/sparse_parity_test.cpp).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/gemm.hpp"

namespace ls::nn {

class Network;
struct NetSpec;
struct Param;

/// Cumulative bounds of the P-way balanced unit split: parts + 1 entries,
/// bounds[p]..bounds[p+1] is panel p. Must match core::balanced_ranges —
/// the first units % parts panels get one extra unit.
std::vector<std::size_t> balanced_bounds(std::size_t units,
                                         std::size_t parts);

/// One scan result: which (producer panel p, consumer panel c) weight
/// blocks are entirely zero, in the coordinates the GEMM kernels use.
struct BlockMap {
  std::size_t parts = 0;
  /// Producer bounds over the weight's reduction extent (conv: Cin*K*K,
  /// fc: in_features) — in-unit bounds scaled by elements per unit.
  std::vector<std::size_t> k_bounds;
  /// Consumer bounds over the weight's output extent (Cout / out_features).
  std::vector<std::size_t> out_bounds;
  /// parts x parts, indexed zero[p * parts + c]; 1 = block all-zero.
  std::vector<std::uint8_t> zero;
  /// Per in-unit: 1 iff the unit's producer panel is dead for *every*
  /// consumer — its im2col rows need not be packed at all.
  std::vector<std::uint8_t> channel_skip;

  std::size_t zero_blocks = 0;
  /// Weight elements inside zero blocks; MACs scale with this (each weight
  /// element contributes the same output-pixel count).
  std::size_t zero_weight_elems = 0;

  /// Sparse path engages only when something is actually prunable, so the
  /// dense (0% sparsity) path carries no per-element bitmap checks.
  bool engaged() const { return zero_blocks > 0; }
  /// Live fraction of the parts x parts block grid.
  double block_density() const;

  gemm::BlockMask mask() const {
    return {parts, k_bounds.data(), out_bounds.data(), zero.data()};
  }
};

/// Per-layer cache of the scan, owned by Conv2D/FullyConnected once
/// set_sparsity_partition() arms them.
class BlockSparsity {
 public:
  /// `elems_per_in_unit`: reduction elements each in-unit spans (conv:
  /// K*K, fc: in_features / in_units).
  BlockSparsity(std::size_t parts, std::size_t in_units,
                std::size_t out_units, std::size_t elems_per_in_unit);

  /// Returns the bitmap for `weight`, rescanning iff weight.version moved
  /// since the last scan. Not thread-safe: call once per forward/backward
  /// before fanning out.
  const BlockMap& map(const Param& weight);

  std::size_t parts() const { return map_.parts; }

 private:
  BlockMap map_;
  std::uint64_t scanned_version_ = 0;
  bool scanned_ = false;
};

/// Process-wide kill switch: LS_SPARSE=off|0 forces the dense path even on
/// layers with a sparsity partition. Read once.
bool sparse_runtime_enabled();

/// Arms the block-sparse fast path on every eligible compute layer of
/// `net`, mirroring core::build_group_sets eligibility: the first compute
/// layer (replicated input — never pruned) and grouped convs are skipped.
/// Returns the number of layers armed.
std::size_t enable_block_sparsity(Network& net, const NetSpec& spec,
                                  std::size_t parts);

}  // namespace ls::nn
