#include "nn/network.hpp"

#include <stdexcept>
#include <utility>

#include "check/check.hpp"

namespace ls::nn {

Layer& Network::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Network::forward(const Tensor& in, bool training) {
  // Checked builds guard every layer boundary: the produced tensor must
  // match the layer's declared output_shape and stay finite. Catches layers
  // whose forward() drifts from their shape contract and pinpoints the
  // first layer that produces NaN/Inf instead of letting it surface as a
  // garbage loss many steps later.
  if constexpr (check::kEnabled) {
    LS_CHECK_MSG(in.all_finite(), "non-finite input into network '%s'",
                 name_.c_str());
    Tensor x = in;
    for (auto& layer : layers_) {
      const Shape expected = layer->output_shape(x.shape());
      Tensor out = layer->forward(x, training);
      LS_CHECK_MSG(out.shape() == expected,
                   "layer '%s' produced shape %s but declared %s",
                   layer->name().c_str(), out.shape().to_string().c_str(),
                   expected.to_string().c_str());
      LS_CHECK_MSG(out.all_finite(),
                   "non-finite activations out of layer '%s'",
                   layer->name().c_str());
      x = std::move(out);
    }
    return x;
  }
  Tensor x = in;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Network::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Network::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::vector<Param*> Network::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

Layer& Network::layer_by_name(const std::string& name) {
  for (auto& layer : layers_) {
    if (layer->name() == name) return *layer;
  }
  throw std::invalid_argument("no layer named " + name + " in " + name_);
}

std::size_t Network::num_params() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

double Network::sparsity() {
  std::size_t zeros = 0, total = 0;
  for (Param* p : params()) {
    zeros += p->value.count_zeros();
    total += p->value.numel();
  }
  return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

std::vector<std::uint32_t> Network::predict(const Tensor& in) {
  return argmax_rows(forward(in, /*training=*/false));
}

double Network::accuracy(const Tensor& in,
                         const std::vector<std::uint32_t>& labels) {
  const auto preds = predict(in);
  if (preds.size() != labels.size()) {
    throw std::invalid_argument("accuracy: label count mismatch");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(preds.size());
}

}  // namespace ls::nn
